//===- bench/ablation_lmad_cap.cpp - LMAD budget ablation (A1) -----------===//
//
// The paper fixes "a maximum of 30 LMADs for a given (instruction-id,
// group) pair", noting that "reducing the number of LMADs will reduce
// the running time, but affect the profile quality. Increasing the
// number of LMADs gives a less lossy profile but increases the running
// time." This ablation sweeps the cap and reports, per setting: profile
// size, MDF accuracy (correct-or-within-10%), stride score, sample
// quality and collection time, aggregated over all 7 benchmarks.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "analysis/MdfError.h"
#include "analysis/Stride.h"
#include "baseline/ExactDependence.h"
#include "baseline/ExactStride.h"
#include "common/BenchCommon.h"
#include "leap/Leap.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <cstdio>

using namespace orp;
using namespace orp::bench;

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Ablation A1 — LMAD budget per (instruction, group) pair",
              "The paper's cap of 30 balances quality and cost.");

  // Collect exact references and the probe streams once.
  struct PerBench {
    trace::BufferSink Buffer;
    analysis::MdfMap ExactMdf;
    analysis::StrideMap ExactStride;
  };
  std::vector<std::unique_ptr<PerBench>> Benches;
  for (const std::string &Name : specNames()) {
    auto B = std::make_unique<PerBench>();
    RunConfig Config;
    Config.Scale = Scale;
    core::ProfilingSession Session(Config.Policy, Config.EnvSeed);
    baseline::ExactDependenceProfiler Exact;
    baseline::ExactStrideProfiler Strides;
    Session.addRawSink(&B->Buffer);
    Session.addRawSink(&Exact);
    Session.addRawSink(&Strides);
    runInSession(Session, Name, Config);
    B->ExactMdf = Exact.mdf();
    B->ExactStride = Strides.stronglyStrided();
    Benches.push_back(std::move(B));
  }

  TablePrinter Table({"max LMADs", "profile KB", "mdf within10%",
                      "stride score", "acc captured", "time/run"});
  for (unsigned Cap : {1, 2, 4, 8, 15, 30, 60, 120, 240}) {
    RunningStat Bytes, Mdf, Stride, Captured, Seconds;
    for (const auto &B : Benches) {
      omc::ObjectManager Omc;
      core::Cdc Cdc(Omc);
      leap::LeapProfiler Leap(Cap);
      Cdc.addConsumer(&Leap);
      Timer T;
      B->Buffer.replayTo(Cdc);
      Seconds.add(T.seconds());
      Bytes.add(static_cast<double>(Leap.serializedSizeBytes()));
      Captured.add(Leap.accessesCapturedPercent());

      auto Est = analysis::LeapDependenceAnalyzer(Leap).computeMdf();
      auto Cmp = analysis::compareMdf(B->ExactMdf, Est);
      Mdf.add(100.0 * Cmp.fractionCorrectOrWithin10());

      auto Found = analysis::findStronglyStrided(Leap);
      uint64_t Correct = 0;
      for (const auto &[Instr, Info] : B->ExactStride)
        if (Found.count(Instr))
          ++Correct;
      Stride.add(B->ExactStride.empty()
                     ? 100.0
                     : percentOf(static_cast<double>(Correct),
                                 static_cast<double>(
                                     B->ExactStride.size())));
    }
    Table.addRow({TablePrinter::fmt(uint64_t(Cap)),
                  TablePrinter::fmt(Bytes.sum() / 1024.0, 1),
                  TablePrinter::fmtPercent(Mdf.mean(), 1),
                  TablePrinter::fmtPercent(Stride.mean(), 1),
                  TablePrinter::fmtPercent(Captured.mean(), 1),
                  TablePrinter::fmt(Seconds.mean(), 3) + "s"});
  }
  Table.print();
  std::printf("\n(The paper's operating point is 30.)\n");
  return 0;
}
