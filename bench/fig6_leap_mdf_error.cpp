//===- bench/fig6_leap_mdf_error.cpp - Figure 6 reproduction -------------===//
//
// Figure 6 of the paper: "The error distribution of the LEAP memory-
// dependence results" — for every dependent (store, load) pair found by
// the lossless raw-address profiler, the error of LEAP's estimated
// dependence frequency, bucketed at 10% granularity. The paper reports
// that a dominating majority (75%) of the dependent pairs are either
// completely correct (center bucket) or off by no more than 10%.
//
//===----------------------------------------------------------------------===//

#include "analysis/MdfError.h"
#include "common/BenchCommon.h"
#include "common/MdfExperiment.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace orp;
using namespace orp::bench;

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Figure 6 — LEAP memory-dependence error distribution",
              "~75% of dependent pairs are exactly correct or off by no "
              "more than 10%.");

  Histogram Combined(-105.0, 105.0, 21);
  TablePrinter Table({"benchmark", "dep pairs", "exact-correct",
                      "within +-10%", "false pos"});
  RunningStat Within10;
  for (const std::string &Name : specNames()) {
    MdfResults R = runMdfExperiment(Name, Scale);
    analysis::MdfComparison Cmp = analysis::compareMdf(R.Exact, R.Leap);
    for (unsigned B = 0; B != Cmp.ErrorHist.numBuckets(); ++B) {
      double Mid =
          (Cmp.ErrorHist.bucketLo(B) + Cmp.ErrorHist.bucketHi(B)) / 2;
      Combined.add(Mid, Cmp.ErrorHist.bucketCount(B));
    }
    Within10.add(100.0 * Cmp.fractionCorrectOrWithin10());
    Table.addRow({Name, TablePrinter::fmt(Cmp.DependentPairs),
                  TablePrinter::fmt(Cmp.ExactlyCorrect),
                  TablePrinter::fmtPercent(
                      100.0 * Cmp.fractionCorrectOrWithin10(), 1),
                  TablePrinter::fmt(Cmp.FalsePositivePairs)});
  }
  Table.print();

  std::printf("\nCombined error distribution over all benchmarks "
              "(error = LEAP - exact, percentage points):\n\n%s\n",
              Combined.renderAscii().c_str());
  std::printf("Dependent pairs exactly correct or within 10%%: %.1f%% "
              "(paper: ~75%%)\n",
              100.0 * Combined.fractionIn(-10.0, 10.0));
  return 0;
}
