//===- bench/fig5_whomp_compression.cpp - Figure 5 reproduction ----------===//
//
// Figure 5 of the paper: "The compression ratio of the OMSG over the
// conventional raw address Sequitur grammar", plus the Section 3.2
// timing claim that OMSG collection time is about the same as RASG
// collection time (the paper measured OMSG 1% faster on average).
//
// For each of the 7 benchmark analogues this harness runs the workload
// once with both profilers attached to the same probe stream, then
// reports serialized profile sizes, the percent size reduction of OMSG
// relative to RASG (the paper's metric, average ~22%), and the isolated
// collection time of each profiler.
//
//===----------------------------------------------------------------------===//

#include "baseline/RasgProfiler.h"
#include "common/BenchCommon.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "trace/Events.h"
#include "whomp/Whomp.h"

#include <cstdio>

using namespace orp;
using namespace orp::bench;

namespace {

struct Result {
  size_t OmsgBytes;
  size_t RasgBytes;
  double OmsgSeconds;
  double RasgSeconds;
  uint64_t Accesses;
};

Result measureOne(const std::string &Name, uint64_t Scale) {
  // Capture the probe stream once, then time each profiler on a replay
  // so the two collection times are measured in isolation.
  RunConfig Config;
  Config.Scale = Scale;
  core::ProfilingSession Session(Config.Policy, Config.EnvSeed);
  trace::BufferSink Buffer;
  Session.addRawSink(&Buffer);
  runInSession(Session, Name, Config);

  Result R;
  R.Accesses = Buffer.accesses().size();

  // OMSG collection: object-relative translation + 4-way horizontal
  // decomposition + Sequitur per dimension. The replay re-runs the OMC
  // translation, exactly as live collection would.
  {
    omc::ObjectManager Omc;
    core::Cdc Cdc(Omc);
    whomp::WhompProfiler Whomp;
    Cdc.addConsumer(&Whomp);
    Timer T;
    Buffer.replayTo(Cdc);
    R.OmsgSeconds = T.seconds();
    R.OmsgBytes = Whomp.sizes().total();
  }

  // RASG collection: Sequitur over the raw (instruction, address) stream.
  {
    baseline::RasgProfiler Rasg;
    Timer T;
    Buffer.replayTo(Rasg);
    R.RasgSeconds = T.seconds();
    R.RasgBytes = Rasg.serializedSizeBytes();
  }
  return R;
}

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Figure 5 — OMSG vs. RASG lossless profile size",
              "OMSG is on average 22% more compact than RASG, at roughly "
              "equal collection time (OMSG ~1% faster).");

  TablePrinter Table({"benchmark", "accesses", "RASG bytes", "OMSG bytes",
                      "OMSG saves", "RASG time", "OMSG time", ""});
  RunningStat Savings;
  RunningStat TimeRatio;
  for (const std::string &Name : specNames()) {
    Result R = measureOne(Name, Scale);
    double SavePct = percentOf(static_cast<double>(R.RasgBytes) -
                                   static_cast<double>(R.OmsgBytes),
                               static_cast<double>(R.RasgBytes));
    Savings.add(SavePct);
    TimeRatio.add(R.OmsgSeconds / R.RasgSeconds);
    Table.addRow({Name, TablePrinter::fmt(R.Accesses),
                  TablePrinter::fmt(static_cast<uint64_t>(R.RasgBytes)),
                  TablePrinter::fmt(static_cast<uint64_t>(R.OmsgBytes)),
                  TablePrinter::fmtPercent(SavePct, 1),
                  TablePrinter::fmt(R.RasgSeconds, 3) + "s",
                  TablePrinter::fmt(R.OmsgSeconds, 3) + "s",
                  bar(SavePct)});
  }
  Table.print();

  std::printf("\nAverage OMSG size reduction over RASG: %.1f%% "
              "(paper: 22%%)\n",
              Savings.mean());
  std::printf("Average OMSG/RASG collection-time ratio: %.2f "
              "(paper: ~0.99)\n",
              TimeRatio.mean());
  return 0;
}
