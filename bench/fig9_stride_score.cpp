//===- bench/fig9_stride_score.cpp - Figure 9 reproduction ---------------===//
//
// Figure 9 of the paper: "Stride score for LEAP" — the percentage of
// strongly-strided instructions (one stride covering >= 70% of an
// instruction's accesses, within objects) that LEAP identifies out of
// the "real" ones found by the lossless stride profiler. The paper
// reports an average of 88% across the benchmarks.
//
//===----------------------------------------------------------------------===//

#include "analysis/Stride.h"
#include "baseline/ExactStride.h"
#include "common/BenchCommon.h"
#include "leap/Leap.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace orp;
using namespace orp::bench;

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Figure 9 — strongly-strided instruction score",
              "LEAP correctly identifies ~88% of the strongly-strided "
              "instructions found by the lossless stride profiler.");

  TablePrinter Table(
      {"benchmark", "real strided", "LEAP found", "correct", "score", ""});
  RunningStat Scores;
  for (const std::string &Name : specNames()) {
    RunConfig Config;
    Config.Scale = Scale;
    core::ProfilingSession Session(Config.Policy, Config.EnvSeed);
    leap::LeapProfiler Leap;
    baseline::ExactStrideProfiler Exact;
    Session.addConsumer(&Leap);
    Session.addRawSink(&Exact);
    runInSession(Session, Name, Config);

    analysis::StrideMap Real = Exact.stronglyStrided();
    analysis::StrideMap Found = analysis::findStronglyStrided(Leap);
    uint64_t Correct = 0;
    for (const auto &[Instr, Info] : Real)
      if (Found.count(Instr))
        ++Correct;
    double Score = Real.empty()
                       ? 100.0
                       : percentOf(static_cast<double>(Correct),
                                   static_cast<double>(Real.size()));
    Scores.add(Score);
    Table.addRow({Name, TablePrinter::fmt(uint64_t(Real.size())),
                  TablePrinter::fmt(uint64_t(Found.size())),
                  TablePrinter::fmt(Correct),
                  TablePrinter::fmtPercent(Score, 1), bar(Score)});
  }
  Table.print();

  std::printf("\nAverage stride score: %.1f%% (paper: 88%%)\n",
              Scores.mean());
  return 0;
}
