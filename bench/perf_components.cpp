//===- bench/perf_components.cpp - Component micro-benchmarks ------------===//
//
// google-benchmark throughput measurements for the building blocks:
// Sequitur append rate on several stream shapes, OMC translation rate
// vs. live-object count, LMAD compressor point rate, and the end-to-end
// probe->CDC->profiler pipeline cost per access (the per-access cost
// behind Table 1's dilation factor).
//
//===----------------------------------------------------------------------===//

#include "advisor/HotColdClassifier.h"
#include "advisor/TieredReplay.h"
#include "core/ProfilingSession.h"
#include "leap/Leap.h"
#include "leap/LeapProfileData.h"
#include "lmad/LmadCompressor.h"
#include "omc/ObjectManager.h"
#include "sequitur/Sequitur.h"
#include "support/Random.h"
#include "support/VarInt.h"
#include "telemetry/Metric.h"
#include "traceio/BlockCodec.h"
#include "traceio/TraceReader.h"
#include "traceio/TraceReplayer.h"
#include "traceio/TraceWriter.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <benchmark/benchmark.h>

using namespace orp;

namespace {

//===----------------------------------------------------------------------===//
// Sequitur
//===----------------------------------------------------------------------===//

void BM_SequiturPeriodic(benchmark::State &State) {
  const int Period = static_cast<int>(State.range(0));
  for (auto _ : State) {
    sequitur::SequiturGrammar G;
    for (int I = 0; I != 20000; ++I)
      G.append(static_cast<uint64_t>(I % Period));
    benchmark::DoNotOptimize(G.numRules());
  }
  State.SetItemsProcessed(State.iterations() * 20000);
}
BENCHMARK(BM_SequiturPeriodic)->Arg(4)->Arg(64)->Arg(1024);

void BM_SequiturRandom(benchmark::State &State) {
  const uint64_t Alphabet = static_cast<uint64_t>(State.range(0));
  Rng R(1);
  std::vector<uint64_t> Input(20000);
  for (uint64_t &V : Input)
    V = R.nextBelow(Alphabet);
  for (auto _ : State) {
    sequitur::SequiturGrammar G;
    G.appendAll(Input);
    benchmark::DoNotOptimize(G.numRules());
  }
  State.SetItemsProcessed(State.iterations() * 20000);
}
BENCHMARK(BM_SequiturRandom)->Arg(2)->Arg(256)->Arg(1 << 20);

//===----------------------------------------------------------------------===//
// OMC translation
//===----------------------------------------------------------------------===//

void BM_OmcTranslate(benchmark::State &State) {
  const uint64_t LiveObjects = static_cast<uint64_t>(State.range(0));
  omc::ObjectManager Omc;
  uint64_t Cursor = 0x10000;
  std::vector<uint64_t> Bases;
  for (uint64_t I = 0; I != LiveObjects; ++I) {
    Omc.onAlloc(trace::AllocEvent{static_cast<trace::AllocSiteId>(I % 13),
                                  Cursor, 64, I, false});
    Bases.push_back(Cursor);
    Cursor += 96;
  }
  Rng R(7);
  std::vector<uint64_t> Queries(4096);
  for (uint64_t &Q : Queries)
    Q = Bases[R.nextBelow(Bases.size())] + R.nextBelow(64);
  for (auto _ : State) {
    for (uint64_t Q : Queries)
      benchmark::DoNotOptimize(Omc.translate(Q));
  }
  State.SetItemsProcessed(State.iterations() * Queries.size());
}
BENCHMARK(BM_OmcTranslate)->Arg(100)->Arg(10000)->Arg(300000);

/// The vpr/parser pattern: each instruction keeps hitting its own
/// object, but the instructions interleave, so a single shared MRU entry
/// misses on every access. Arg(0) uses the shared-entry translate(Addr),
/// Arg(1) the per-instruction MRU translate(Addr, Instr) the CDC uses.
void BM_OmcTranslateAlternating(benchmark::State &State) {
  const bool UseInstrMru = State.range(0) != 0;
  constexpr uint64_t Objects = 8;
  omc::ObjectManager Omc;
  uint64_t Bases[Objects];
  uint64_t Cursor = 0x10000;
  for (uint64_t I = 0; I != Objects; ++I) {
    Omc.onAlloc(trace::AllocEvent{static_cast<trace::AllocSiteId>(I),
                                  Cursor, 4096, I, false});
    Bases[I] = Cursor;
    Cursor += 8192;
  }
  uint64_t Offset = 0;
  for (auto _ : State) {
    for (uint64_t I = 0; I != Objects; ++I) {
      uint64_t Addr = Bases[I] + Offset;
      if (UseInstrMru)
        benchmark::DoNotOptimize(
            Omc.translate(Addr, static_cast<trace::InstrId>(I)));
      else
        benchmark::DoNotOptimize(Omc.translate(Addr));
    }
    Offset = (Offset + 8) & 0xfff;
  }
  State.SetItemsProcessed(State.iterations() * Objects);
}
BENCHMARK(BM_OmcTranslateAlternating)->Arg(0)->Arg(1);

//===----------------------------------------------------------------------===//
// Event-block decode (.orpt v1 interleaved vs v2 columnar)
//===----------------------------------------------------------------------===//

/// Synthesizes one event block of accesses whose address deltas need
/// exactly range(1) sleb bytes, encodes it in format version range(0),
/// and measures raw payload decode throughput — the inner loop of both
/// file replay and daemon EVENTS-frame ingest. Items = decoded events.
void BM_BlockDecode(benchmark::State &State) {
  const unsigned Version = static_cast<unsigned>(State.range(0));
  const unsigned DeltaBytes = static_cast<unsigned>(State.range(1));
  constexpr uint64_t NumEvents = 16384;

  // Largest magnitude an sleb of DeltaBytes still holds (6 payload bits
  // in the final byte, 7 in each before it); deltas draw from the upper
  // half of that range so every one encodes at the intended width.
  const uint64_t MaxMag = (1ull << (7 * DeltaBytes - 1)) - 1;
  Rng R(42);
  struct Ev {
    uint32_t Instr;
    uint64_t Addr, Time, Size;
    bool IsStore;
  };
  std::vector<Ev> Events(NumEvents);
  uint64_t Addr = 1ull << 60, Time = 0;
  for (uint64_t I = 0; I != NumEvents; ++I) {
    uint64_t Mag = MaxMag / 2 + 1 + R.nextBelow(MaxMag / 2);
    Addr = (I & 1) ? Addr - Mag : Addr + Mag;
    ++Time;
    Events[I] = {static_cast<uint32_t>(R.nextBelow(512)), Addr, Time,
                 (I % 4 == 0) ? 4ull : 8ull, (I & 3) == 0};
  }

  std::vector<uint8_t> Payload;
  if (Version == 1) {
    uint64_t PrevAddr = 0, PrevTime = 0;
    for (const Ev &E : Events) {
      uint8_t Tag = traceio::kOpAccess;
      if (E.IsStore)
        Tag |= traceio::kTagStore;
      if (E.Size == 8)
        Tag |= traceio::kTagSize8;
      Payload.push_back(Tag);
      encodeULEB128(E.Instr, Payload);
      encodeSLEB128(static_cast<int64_t>(E.Addr - PrevAddr), Payload);
      encodeSLEB128(static_cast<int64_t>(E.Time - PrevTime), Payload);
      if (E.Size != 8)
        encodeULEB128(E.Size, Payload);
      PrevAddr = E.Addr;
      PrevTime = E.Time;
    }
  } else {
    std::vector<uint8_t> Cols[5];
    uint64_t PrevAddr = 0, PrevTime = 0;
    for (const Ev &E : Events) {
      uint8_t Tag = traceio::kOpAccess;
      if (E.IsStore)
        Tag |= traceio::kTagStore;
      if (E.Size == 8)
        Tag |= traceio::kTagSize8;
      Cols[0].push_back(Tag);
      encodeULEB128(E.Instr, Cols[1]);
      encodeSLEB128(static_cast<int64_t>(E.Addr - PrevAddr), Cols[2]);
      encodeSLEB128(static_cast<int64_t>(E.Time - PrevTime), Cols[3]);
      if (E.Size != 8)
        encodeULEB128(E.Size, Cols[4]);
      PrevAddr = E.Addr;
      PrevTime = E.Time;
    }
    for (const std::vector<uint8_t> &Col : Cols) {
      encodeULEB128(Col.size(), Payload);
      Payload.insert(Payload.end(), Col.begin(), Col.end());
    }
  }

  std::string Err;
  traceio::DecodedBlock Block;
  uint64_t Sink = 0;
  for (auto _ : State) {
    bool Ok;
    if (Version == 1) {
      Ok = traceio::decodeEventBlock(
          Payload.data(), Payload.size(), NumEvents,
          [&](const traceio::TraceEvent &E) { Sink += E.Addr; }, Err);
    } else {
      Ok = traceio::decodeEventBlockV2(Payload.data(), Payload.size(),
                                       NumEvents, Block, Err);
      for (const trace::AccessEvent &E : Block.Accesses)
        Sink += E.Addr;
    }
    if (!Ok) {
      State.SkipWithError(Err.c_str());
      return;
    }
    benchmark::DoNotOptimize(Sink);
  }
  State.SetItemsProcessed(static_cast<int64_t>(State.iterations()) *
                          static_cast<int64_t>(NumEvents));
}
BENCHMARK(BM_BlockDecode)
    ->ArgNames({"ver", "delta_bytes"})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({1, 8})
    ->Args({2, 8});

//===----------------------------------------------------------------------===//
// LMAD compression
//===----------------------------------------------------------------------===//

void BM_LmadLinearStream(benchmark::State &State) {
  for (auto _ : State) {
    lmad::LmadCompressor C(3);
    for (int64_t I = 0; I != 20000; ++I)
      C.addPoint(lmad::Point{I, I * 8, I * 2});
    benchmark::DoNotOptimize(C.capturedPoints());
  }
  State.SetItemsProcessed(State.iterations() * 20000);
}
BENCHMARK(BM_LmadLinearStream);

void BM_LmadIrregularStream(benchmark::State &State) {
  Rng R(3);
  std::vector<lmad::Point> Points(20000);
  for (auto &P : Points)
    P = lmad::Point{static_cast<int64_t>(R.nextBelow(100)),
                    static_cast<int64_t>(R.nextBelow(4096)),
                    static_cast<int64_t>(R.nextBelow(100000))};
  for (auto _ : State) {
    lmad::LmadCompressor C(3);
    for (const auto &P : Points)
      C.addPoint(P);
    benchmark::DoNotOptimize(C.overflow().Dropped);
  }
  State.SetItemsProcessed(State.iterations() * 20000);
}
BENCHMARK(BM_LmadIrregularStream);

//===----------------------------------------------------------------------===//
// End-to-end pipeline cost per access
//===----------------------------------------------------------------------===//

void BM_PipelineNativeProbe(benchmark::State &State) {
  trace::MemoryInterface M;
  uint64_t Addr = M.heapAlloc(0, 4096);
  for (auto _ : State)
    M.load(0, Addr + (State.iterations() & 0xfff) / 8 * 8);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_PipelineNativeProbe);

void BM_PipelineLeapProbe(benchmark::State &State) {
  core::ProfilingSession S;
  leap::LeapProfiler Leap;
  S.addConsumer(&Leap);
  uint64_t Addr = S.memory().heapAlloc(0, 4096);
  for (auto _ : State)
    S.memory().load(0, Addr + (State.iterations() & 0xfff) / 8 * 8);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_PipelineLeapProbe);

void BM_PipelineWhompProbe(benchmark::State &State) {
  core::ProfilingSession S;
  whomp::WhompProfiler Whomp;
  S.addConsumer(&Whomp);
  uint64_t Addr = S.memory().heapAlloc(0, 4096);
  for (auto _ : State)
    S.memory().load(0, Addr + (State.iterations() & 0xfff) / 8 * 8);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_PipelineWhompProbe);

/// Batch-size sweep over the probe->CDC->WHOMP path. Arg is the
/// MemoryInterface flush threshold; 1 reproduces the old per-event
/// delivery, the default is 128.
void BM_PipelineWhompBatch(benchmark::State &State) {
  core::ProfilingSession S;
  whomp::WhompProfiler Whomp;
  S.addConsumer(&Whomp);
  S.memory().setBatchCapacity(static_cast<size_t>(State.range(0)));
  uint64_t Addr = S.memory().heapAlloc(0, 4096);
  for (auto _ : State)
    S.memory().load(0, Addr + (State.iterations() & 0xfff) / 8 * 8);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_PipelineWhompBatch)->Arg(1)->Arg(16)->Arg(64)->Arg(128)->Arg(256);

/// Whole-pipeline WHOMP benchmark: a complete instrumented run of one
/// workload analogue through probes, batching, OMC translation and the
/// 4-dimension OMSG. Items = profiled accesses, i.e. items/s is the
/// sustained WHOMP profiling rate on realistic access patterns.
void BM_PipelineWhompWorkload(benchmark::State &State) {
  workloads::WorkloadConfig Config;
  uint64_t Accesses = 0;
  for (auto _ : State) {
    core::ProfilingSession S;
    whomp::WhompProfiler Whomp;
    S.addConsumer(&Whomp);
    auto W = workloads::createVprA();
    benchmark::DoNotOptimize(
        W->run(S.memory(), S.registry(), Config));
    S.finish();
    Accesses += S.memory().accessCount();
    benchmark::DoNotOptimize(Whomp.sizes().total());
  }
  State.SetItemsProcessed(static_cast<int64_t>(Accesses));
}
BENCHMARK(BM_PipelineWhompWorkload)->Unit(benchmark::kMillisecond);

/// Thread-scaling sweep over the full replay pipeline (the --threads
/// flag of orp-trace replay): record one vpr-a trace up front, then
/// per iteration replay it with double-buffered decode plus threaded
/// WHOMP and LEAP. Args are {thread count, telemetry on/off}; {1, on}
/// is the serial baseline, and every arg produces byte-identical
/// profiles. The on/off pairs at equal thread counts measure the
/// telemetry subsystem's overhead (EXPERIMENTS.md gates it at 3%).
/// Items = replayed events.
void BM_PipelineReplayThreads(benchmark::State &State) {
  static const std::string TracePath = [] {
    std::string Path = "perf_replay_threads.orpt";
    core::ProfilingSession S;
    traceio::TraceWriter Writer(Path, S.registry(),
                                memsim::AllocPolicy::FirstFit, /*Seed=*/0);
    S.addRawSink(&Writer);
    workloads::WorkloadConfig Config;
    Config.Scale = 2;
    workloads::createVprA()->run(S.memory(), S.registry(), Config);
    S.finish();
    Writer.close();
    return Path;
  }();
  unsigned Threads = static_cast<unsigned>(State.range(0));
  bool Telemetry = State.range(1) != 0;
  traceio::TraceReader Reader;
  if (!Reader.open(TracePath)) {
    State.SkipWithError("cannot open replay trace");
    return;
  }
  telemetry::setEnabled(Telemetry);
  uint64_t Events = 0;
  for (auto _ : State) {
    traceio::TraceReplayer Replayer(Reader);
    Replayer.setThreads(Threads);
    auto Session = Replayer.makeSession();
    whomp::WhompProfiler Whomp(Threads);
    leap::LeapProfiler Leap(lmad::LmadCompressor::DefaultMaxLmads,
                            Threads);
    Session->addConsumer(&Whomp);
    Session->addConsumer(&Leap);
    if (!Replayer.replayInto(*Session)) {
      State.SkipWithError("replay failed on a valid trace");
      return;
    }
    Events += Replayer.eventsReplayed();
    benchmark::DoNotOptimize(Whomp.sizes().total());
    benchmark::DoNotOptimize(Leap.serializedSizeBytes());
  }
  telemetry::setEnabled(true);
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_PipelineReplayThreads)
    ->Args({1, 1})
    ->Args({1, 0})
    ->Args({2, 1})
    ->Args({2, 0})
    ->Args({4, 1})
    ->Args({4, 0})
    ->Args({8, 1})
    ->Args({8, 0})
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

//===----------------------------------------------------------------------===//
// Tiered placement simulation
//===----------------------------------------------------------------------===//

/// Tiered address-space replay rate per policy (0 = first-touch,
/// 1 = lru, 2 = advised) at a 25% fast-tier fraction. Measures the
/// payoff half of the advisor loop: trace-event translation through the
/// OMC rebuild plus the per-access tier bookkeeping.
/// Items = replayed events.
void BM_TieredSim(benchmark::State &State) {
  static const std::string TracePath = [] {
    std::string Path = "perf_tiered.orpt";
    core::ProfilingSession S;
    traceio::TraceWriter Writer(Path, S.registry(),
                                memsim::AllocPolicy::FirstFit, /*Seed=*/7);
    S.addRawSink(&Writer);
    workloads::WorkloadConfig Config;
    workloads::createMcfA()->run(S.memory(), S.registry(), Config);
    S.finish();
    Writer.close();
    return Path;
  }();
  traceio::TraceReader Reader;
  if (!Reader.open(TracePath)) {
    State.SkipWithError("cannot open tiered-sim trace");
    return;
  }
  // Profile once, outside the timed region, so the advised policy has a
  // real report to place from.
  static const advisor::AdvisorReport Report = [&Reader] {
    whomp::WhompProfiler Whomp;
    leap::LeapProfiler Leap;
    traceio::TraceReplayer Replayer(Reader);
    auto Session = Replayer.makeSession();
    Session->addConsumer(&Whomp);
    Session->addConsumer(&Leap);
    (void)Replayer.replayInto(*Session);
    advisor::HotColdClassifier Classifier;
    return Classifier.classify(
        leap::LeapProfileData::fromProfiler(Leap),
        whomp::OmsgArchive::build(Whomp, &Session->omc()));
  }();
  advisor::TieredSimOptions Opts;
  Opts.Policy = static_cast<memsim::TierPolicy>(State.range(0));
  uint64_t PeakLive = 0;
  std::string Err;
  if (!advisor::peakLiveBytes(Reader, PeakLive, Err)) {
    State.SkipWithError("peak-live scan failed on a valid trace");
    return;
  }
  Opts.FastCapacityBytes = PeakLive / 4;
  if (Opts.Policy == memsim::TierPolicy::Advised)
    Opts.Advice = &Report;
  uint64_t Events = 0;
  for (auto _ : State) {
    advisor::TieredSimResult Result;
    if (!advisor::simulateTiered(Reader, Opts, Result, Err)) {
      State.SkipWithError("tiered simulation failed on a valid trace");
      return;
    }
    Events += Result.Accesses + Result.Allocs + Result.Frees;
    benchmark::DoNotOptimize(Result.Stats.FastHits);
  }
  State.SetItemsProcessed(static_cast<int64_t>(Events));
}
BENCHMARK(BM_TieredSim)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
