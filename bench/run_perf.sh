#!/usr/bin/env bash
# Runs the perf_components micro-benchmark suite and writes the raw
# google-benchmark JSON to BENCH_pipeline.json — the machine-readable
# throughput record referenced by EXPERIMENTS.md and uploaded by the CI
# perf-smoke job.
#
# Usage: bench/run_perf.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR  CMake build tree containing bench/perf_components
#              (default: build)
#   OUT_JSON   output path (default: BENCH_pipeline.json in the cwd)
#
# Environment:
#   ORP_BENCH_MIN_TIME  per-benchmark min running time in seconds
#                       (default 0.2; CI uses 0.05 for a smoke signal)
#   ORP_BENCH_FILTER    benchmark name regex (default: the Sequitur, OMC
#                       and pipeline families the PR gates on)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_pipeline.json}"
MIN_TIME="${ORP_BENCH_MIN_TIME:-0.2}"
FILTER="${ORP_BENCH_FILTER:-BM_Sequitur|BM_OmcTranslate|BM_Pipeline}"

BIN="$BUILD_DIR/bench/perf_components"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found; build the tree first" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# Note: this google-benchmark release expects a plain double for
# --benchmark_min_time (no "s" suffix).
"$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$OUT_JSON" \
  --benchmark_out_format=json

echo "wrote $OUT_JSON"
