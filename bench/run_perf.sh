#!/usr/bin/env bash
# Runs the perf_components micro-benchmark suite and writes the raw
# google-benchmark JSON to BENCH_pipeline.json — the machine-readable
# throughput record referenced by EXPERIMENTS.md and uploaded by the CI
# perf-smoke job.
#
# Alongside the benchmark record it replays the same trace through
# `orp-trace stats` and writes the telemetry snapshot (counter/gauge/
# histogram state of the whole pipeline) next to it, so every perf
# record ships with the introspection data explaining it.
#
# Usage: bench/run_perf.sh [BUILD_DIR] [OUT_JSON]
#   BUILD_DIR  CMake build tree containing bench/perf_components
#              (default: build)
#   OUT_JSON   output path (default: BENCH_pipeline.json in the cwd);
#              the telemetry snapshot lands at ${OUT_JSON%.json}_metrics.json
#
# Environment:
#   ORP_BENCH_MIN_TIME  per-benchmark min running time in seconds
#                       (default 0.2; CI uses 0.05 for a smoke signal)
#   ORP_BENCH_FILTER    benchmark name regex (default: the Sequitur, OMC
#                       and pipeline families the PR gates on)
set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_JSON="${2:-BENCH_pipeline.json}"
MIN_TIME="${ORP_BENCH_MIN_TIME:-0.2}"
FILTER="${ORP_BENCH_FILTER:-BM_Sequitur|BM_OmcTranslate|BM_BlockDecode|BM_Pipeline|BM_TieredSim}"

BIN="$BUILD_DIR/bench/perf_components"
if [ ! -x "$BIN" ]; then
  echo "error: $BIN not found; build the tree first" >&2
  echo "  cmake -B $BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release && cmake --build $BUILD_DIR -j" >&2
  exit 1
fi

# Note: this google-benchmark release expects a plain double for
# --benchmark_min_time (no "s" suffix).
"$BIN" \
  --benchmark_filter="$FILTER" \
  --benchmark_min_time="$MIN_TIME" \
  --benchmark_out="$OUT_JSON" \
  --benchmark_out_format=json

echo "wrote $OUT_JSON"

# Telemetry snapshot of the pipeline the benchmarks exercised: replay
# the same vpr-a trace the thread-scaling sweep records (left in the
# cwd by BM_PipelineReplayThreads) through `orp-trace stats`. Skipped
# when the filter excluded the pipeline family.
TRACE="perf_replay_threads.orpt"
METRICS_JSON="${OUT_JSON%.json}_metrics.json"
ORP_TRACE="$BUILD_DIR/tools/orp-trace"
if [ -x "$ORP_TRACE" ] && [ -f "$TRACE" ]; then
  "$ORP_TRACE" stats "$TRACE" --threads=2 \
    --metrics="$METRICS_JSON" >/dev/null
  echo "wrote $METRICS_JSON"
else
  echo "note: $TRACE or $ORP_TRACE missing; skipping telemetry snapshot"
fi
