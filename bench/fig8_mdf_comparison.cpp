//===- bench/fig8_mdf_comparison.cpp - Figure 8 reproduction -------------===//
//
// Figure 8 of the paper: "A comparison between the average error
// distributions of the LEAP and Connors profilers. The higher the peak
// at 0% error, the better." The paper's headline is a 56% improvement
// in the number of pairs detected completely correct or off by no more
// than 10%.
//
//===----------------------------------------------------------------------===//

#include "analysis/MdfError.h"
#include "common/BenchCommon.h"
#include "common/MdfExperiment.h"
#include "support/Histogram.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace orp;
using namespace orp::bench;

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Figure 8 — LEAP vs. Connors average error distribution",
              "LEAP detects 56% more pairs completely correct or within "
              "10% than the Connors window profiler.");

  Histogram LeapHist(-105.0, 105.0, 21);
  Histogram ConnorsHist(-105.0, 105.0, 21);
  for (const std::string &Name : specNames()) {
    MdfResults R = runMdfExperiment(Name, Scale);
    analysis::MdfComparison L = analysis::compareMdf(R.Exact, R.Leap);
    analysis::MdfComparison C = analysis::compareMdf(R.Exact, R.Connors);
    for (unsigned B = 0; B != L.ErrorHist.numBuckets(); ++B) {
      double Mid = (L.ErrorHist.bucketLo(B) + L.ErrorHist.bucketHi(B)) / 2;
      LeapHist.add(Mid, L.ErrorHist.bucketCount(B));
      ConnorsHist.add(Mid, C.ErrorHist.bucketCount(B));
    }
  }

  // Side-by-side series, one row per 10%-wide error bucket.
  TablePrinter Table({"error bucket", "LEAP %", "Connors %", "LEAP",
                      "Connors"});
  for (unsigned B = 0; B != LeapHist.numBuckets(); ++B) {
    double Mid = (LeapHist.bucketLo(B) + LeapHist.bucketHi(B)) / 2;
    double LeapPct = percentOf(
        static_cast<double>(LeapHist.bucketCount(B)),
        static_cast<double>(LeapHist.total()));
    double ConnorsPct = percentOf(
        static_cast<double>(ConnorsHist.bucketCount(B)),
        static_cast<double>(ConnorsHist.total()));
    char Label[32];
    std::snprintf(Label, sizeof(Label), "%+.0f%%", Mid);
    Table.addRow({Label, TablePrinter::fmtPercent(LeapPct, 1),
                  TablePrinter::fmtPercent(ConnorsPct, 1), bar(LeapPct, 30),
                  bar(ConnorsPct, 30)});
  }
  Table.print();

  double LeapGood = 100.0 * LeapHist.fractionIn(-10.0, 10.0);
  double ConnorsGood = 100.0 * ConnorsHist.fractionIn(-10.0, 10.0);
  std::printf("\nCorrect-or-within-10%%: LEAP %.1f%%, Connors %.1f%%\n",
              LeapGood, ConnorsGood);
  if (ConnorsGood > 0.0)
    std::printf("LEAP improvement over Connors: %.0f%% (paper: 56%%)\n",
                percentOf(LeapGood - ConnorsGood, ConnorsGood));
  return 0;
}
