//===- bench/traceio_bench.cpp - Trace size and replay throughput --------===//
//
// Measures the .orpt trace format against the obvious baseline — a naive
// one-line-per-event text dump, raw and gzip-compressed — and times
// replay (decode + re-drive a fresh session, with and without a WHOMP
// profiler attached). Feeds the "Trace I/O" row of EXPERIMENTS.md.
//
// Usage: traceio_bench [scale]
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "core/ProfilingSession.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"
#include "traceio/TraceReplayer.h"
#include "traceio/TraceWriter.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <sys/stat.h>

using namespace orp;

namespace {

uint64_t fileSize(const std::string &Path) {
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0
             ? static_cast<uint64_t>(St.st_size)
             : 0;
}

bool haveGzip() { return std::system("gzip --version >/dev/null 2>&1") == 0; }

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Scale = Argc > 1 ? std::strtoull(Argv[1], nullptr, 10) : 1;
  bool Gzip = haveGzip();
  if (!Gzip)
    std::printf("note: gzip not found; gzip column omitted\n");

  TablePrinter T({"workload", "events", "orpt B", "B/event", "text B",
                  Gzip ? "text.gz B" : "-", "orpt/gz", "replay ev/s",
                  "replay+whomp ev/s"});

  for (const char *Name :
       {"164.gzip-a", "181.mcf-a", "197.parser-a", "list-traversal"}) {
    std::string Base = "/tmp/orp_traceio_bench_" + std::string(Name);
    std::string OrptPath = Base + ".orpt";
    std::string TextPath = Base + ".txt";

    // Record.
    core::ProfilingSession Session;
    traceio::TraceWriter Writer(OrptPath, Session.registry(),
                                memsim::AllocPolicy::FirstFit, 0);
    if (!Writer.ok()) {
      std::fprintf(stderr, "%s\n", Writer.error().c_str());
      return 1;
    }
    Session.addRawSink(&Writer);
    auto W = workloads::createWorkloadByName(Name);
    workloads::WorkloadConfig Config;
    Config.Scale = Scale;
    W->run(Session.memory(), Session.registry(), Config);
    Session.finish();
    if (!Writer.close()) {
      std::fprintf(stderr, "%s\n", Writer.error().c_str());
      return 1;
    }

    // Naive text dump of the same stream.
    traceio::TraceReader Reader;
    if (!Reader.open(OrptPath)) {
      std::fprintf(stderr, "%s\n", Reader.error().c_str());
      return 1;
    }
    std::FILE *Text = std::fopen(TextPath.c_str(), "w");
    if (!Text) {
      std::fprintf(stderr, "cannot open %s\n", TextPath.c_str());
      return 1;
    }
    bool DumpOk = Reader.forEachEvent([&](const traceio::TraceEvent &E) {
      switch (E.K) {
      case traceio::TraceEvent::Kind::Access:
        std::fprintf(Text, "%c %u %llu %llu %llu\n", E.IsStore ? 'S' : 'L',
                     E.InstrOrSite, static_cast<unsigned long long>(E.Addr),
                     static_cast<unsigned long long>(E.Size),
                     static_cast<unsigned long long>(E.Time));
        break;
      case traceio::TraceEvent::Kind::Alloc:
        std::fprintf(Text, "%c %u %llu %llu %llu\n", E.IsStatic ? 'G' : 'A',
                     E.InstrOrSite, static_cast<unsigned long long>(E.Addr),
                     static_cast<unsigned long long>(E.Size),
                     static_cast<unsigned long long>(E.Time));
        break;
      case traceio::TraceEvent::Kind::Free:
        std::fprintf(Text, "F %llu %llu\n",
                     static_cast<unsigned long long>(E.Addr),
                     static_cast<unsigned long long>(E.Time));
        break;
      }
    });
    std::fclose(Text);
    if (!DumpOk) {
      std::fprintf(stderr, "replay failed: %s\n", Reader.error().c_str());
      return 1;
    }

    uint64_t OrptBytes = fileSize(OrptPath);
    uint64_t TextBytes = fileSize(TextPath);
    uint64_t GzBytes = 0;
    if (Gzip) {
      std::string Cmd = "gzip -9 -c '" + TextPath + "' > '" + TextPath +
                        ".gz' 2>/dev/null";
      if (std::system(Cmd.c_str()) == 0)
        GzBytes = fileSize(TextPath + ".gz");
    }

    // Replay throughput, bare (decode + inject only).
    uint64_t Events = Reader.info().TotalEvents;
    traceio::TraceReplayer Replayer(Reader);
    double BareSecs;
    {
      auto Fresh = Replayer.makeSession();
      Timer Clock;
      if (!Replayer.replayInto(*Fresh)) {
        std::fprintf(stderr, "replay failed: %s\n", Replayer.error().c_str());
        return 1;
      }
      BareSecs = Clock.seconds();
    }
    // Replay throughput with a WHOMP profiler downstream.
    double WhompSecs;
    {
      auto Fresh = Replayer.makeSession();
      whomp::WhompProfiler Whomp;
      Fresh->addConsumer(&Whomp);
      Timer Clock;
      if (!Replayer.replayInto(*Fresh)) {
        std::fprintf(stderr, "replay failed: %s\n", Replayer.error().c_str());
        return 1;
      }
      WhompSecs = Clock.seconds();
    }

    T.addRow({Name, TablePrinter::fmt(Events), TablePrinter::fmt(OrptBytes),
              TablePrinter::fmt(
                  Events ? static_cast<double>(OrptBytes) / Events : 0.0, 2),
              TablePrinter::fmt(TextBytes),
              Gzip ? TablePrinter::fmt(GzBytes) : "-",
              GzBytes ? TablePrinter::fmt(
                            static_cast<double>(OrptBytes) / GzBytes, 2)
                      : "-",
              TablePrinter::fmt(static_cast<uint64_t>(
                  BareSecs > 0 ? Events / BareSecs : 0)),
              TablePrinter::fmt(static_cast<uint64_t>(
                  WhompSecs > 0 ? Events / WhompSecs : 0))});

    std::remove(OrptPath.c_str());
    std::remove(TextPath.c_str());
    std::remove((TextPath + ".gz").c_str());
  }

  std::printf("\nTrace I/O: .orpt size vs. naive text dump, and replay "
              "throughput (scale %llu)\n",
              static_cast<unsigned long long>(Scale));
  T.print();
  return 0;
}
