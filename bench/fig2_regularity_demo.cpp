//===- bench/fig2_regularity_demo.cpp - Figures 1-3 reproduction ---------===//
//
// The paper's motivating Figures 1-3 as a runnable demonstration, on
// the linked-list micro-workload:
//
//  * Figure 1: the raw addresses of a linked-list traversal look
//    irregular and change from run to run (different allocator, seed);
//  * Figure 2/3: after object-relative translation the same accesses
//    become (instr, group, object, offset) tuples that are perfectly
//    regular and identical across every environment;
//  * quantitatively: the RASG size varies run to run while the OMSG is
//    byte-identical.
//
//===----------------------------------------------------------------------===//

#include "baseline/RasgProfiler.h"
#include "common/BenchCommon.h"
#include "support/TablePrinter.h"
#include "whomp/Whomp.h"

#include <cstdio>
#include <vector>

using namespace orp;
using namespace orp::bench;

namespace {

struct Captured {
  std::vector<trace::AccessEvent> Raw;
  std::vector<core::OrTuple> Tuples;
  size_t RasgBytes;
  size_t OmsgBytes;
};

struct TupleBuffer : core::OrTupleConsumer {
  std::vector<core::OrTuple> Tuples;
  void consume(const core::OrTuple &T) override { Tuples.push_back(T); }
};

Captured captureRun(memsim::AllocPolicy Policy, uint64_t EnvSeed) {
  RunConfig Config;
  Config.Policy = Policy;
  Config.EnvSeed = EnvSeed;
  core::ProfilingSession Session(Policy, EnvSeed);
  trace::BufferSink Raw;
  TupleBuffer Tuples;
  baseline::RasgProfiler Rasg;
  whomp::WhompProfiler Whomp;
  Session.addRawSink(&Raw);
  Session.addRawSink(&Rasg);
  Session.addConsumer(&Tuples);
  Session.addConsumer(&Whomp);
  runInSession(Session, "list-traversal", Config);
  return Captured{Raw.accesses(), Tuples.Tuples,
                  Rasg.serializedSizeBytes(), Whomp.sizes().total()};
}

} // namespace

int main() {
  printHeader("Figures 1-3 — confounding artifacts vs. object-relativity",
              "Raw linked-list addresses are irregular and run-dependent; "
              "object-relative tuples are regular and run-invariant.");

  struct Env {
    const char *Label;
    memsim::AllocPolicy Policy;
    uint64_t Seed;
  };
  const Env Envs[] = {
      {"run A: first-fit heap", memsim::AllocPolicy::FirstFit, 1},
      {"run B: first-fit, different environment",
       memsim::AllocPolicy::FirstFit, 777},
      {"run C: segregated-fit allocator library",
       memsim::AllocPolicy::Segregated, 1},
  };

  std::vector<Captured> Runs;
  for (const Env &E : Envs)
    Runs.push_back(captureRun(E.Policy, E.Seed));

  // Figure 1: the same source-level traversal, three environments.
  std::printf("Raw addresses of the first 8 node->next loads "
              "(the paper's Figure 1):\n\n");
  TablePrinter RawTable({"access", Envs[0].Label, Envs[1].Label,
                         Envs[2].Label});
  std::vector<std::vector<uint64_t>> NextLoads(Runs.size());
  // Instruction 3 is "list:load node->next" (see ListTraversal.cpp's
  // registration order).
  constexpr trace::InstrId LdNextInstr = 3;
  for (size_t R = 0; R != Runs.size(); ++R)
    for (const auto &E : Runs[R].Raw)
      if (E.Instr == LdNextInstr)
        NextLoads[R].push_back(E.Addr);
  for (int I = 0; I != 8; ++I) {
    char A[32], B[32], C[32], Label[16];
    std::snprintf(Label, sizeof(Label), "#%d", I + 1);
    std::snprintf(A, sizeof(A), "0x%llx",
                  static_cast<unsigned long long>(NextLoads[0][I]));
    std::snprintf(B, sizeof(B), "0x%llx",
                  static_cast<unsigned long long>(NextLoads[1][I]));
    std::snprintf(C, sizeof(C), "0x%llx",
                  static_cast<unsigned long long>(NextLoads[2][I]));
    RawTable.addRow({Label, A, B, C});
  }
  RawTable.print();

  // Figure 3: the object-relative view of the same accesses.
  std::printf("\nObject-relative stream of the first traversal steps "
              "(identical in all three runs — the paper's Figure 3):\n\n");
  TablePrinter OrTable({"instr", "group", "object", "offset", "time"});
  unsigned Shown = 0;
  for (size_t I = 0; I != Runs[0].Tuples.size() && Shown != 10; ++I) {
    const core::OrTuple &T = Runs[0].Tuples[I];
    if (T.Instr < 2)
      continue; // Skip init stores; show the traversal loads.
    OrTable.addRow({TablePrinter::fmt(uint64_t(T.Instr)),
                    TablePrinter::fmt(uint64_t(T.Group)),
                    TablePrinter::fmt(T.Object),
                    TablePrinter::fmt(T.Offset),
                    TablePrinter::fmt(T.Time)});
    ++Shown;
  }
  OrTable.print();

  // Run-to-run invariance.
  bool TuplesIdentical = true;
  for (size_t R = 1; R != Runs.size() && TuplesIdentical; ++R) {
    TuplesIdentical = Runs[R].Tuples.size() == Runs[0].Tuples.size();
    for (size_t I = 0; TuplesIdentical && I != Runs[0].Tuples.size(); ++I) {
      const core::OrTuple &X = Runs[0].Tuples[I];
      const core::OrTuple &Y = Runs[R].Tuples[I];
      TuplesIdentical = X.Instr == Y.Instr && X.Group == Y.Group &&
                        X.Object == Y.Object && X.Offset == Y.Offset;
    }
  }
  bool RawIdentical = true;
  for (size_t R = 1; R != Runs.size() && RawIdentical; ++R)
    for (size_t I = 0; I != Runs[0].Raw.size(); ++I)
      if (Runs[R].Raw[I].Addr != Runs[0].Raw[I].Addr) {
        RawIdentical = false;
        break;
      }

  std::printf("\nRaw address stream identical across runs:            %s\n",
              RawIdentical ? "yes (unexpected!)" : "no  (artifacts)");
  std::printf("Object-relative tuple stream identical across runs:  %s\n",
              TuplesIdentical ? "yes (artifacts factored out)" : "NO");

  std::printf("\nLossless profile sizes per run (bytes):\n\n");
  TablePrinter SizeTable({"run", "RASG (raw addresses)",
                          "OMSG (object-relative)"});
  for (size_t R = 0; R != Runs.size(); ++R)
    SizeTable.addRow({Envs[R].Label,
                      TablePrinter::fmt(uint64_t(Runs[R].RasgBytes)),
                      TablePrinter::fmt(uint64_t(Runs[R].OmsgBytes))});
  SizeTable.print();
  return 0;
}
