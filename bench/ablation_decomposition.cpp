//===- bench/ablation_decomposition.cpp - Decomposition ablation (A3) ----===//
//
// Section 2.2 claims the regularity gain comes from two separable
// steps: object-relative translation AND decomposition ("the resulting
// pattern tends to be simple and more regular. This regularity ... makes
// the resulting profile amenable to good compression"). This ablation
// isolates them by Sequitur-compressing three representations of the
// same run:
//
//   1. RASG            — raw (instruction, address) stream;
//   2. OR-undecomposed — object-relative tuples, all four dimensions
//                        interleaved into a single grammar;
//   3. OMSG            — object-relative, horizontally decomposed into
//                        one grammar per dimension (the paper's design).
//
//===----------------------------------------------------------------------===//

#include "baseline/RasgProfiler.h"
#include "common/BenchCommon.h"
#include "sequitur/Sequitur.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "whomp/Whomp.h"

#include <cstdio>

using namespace orp;
using namespace orp::bench;

namespace {

/// Object-relative but undecomposed: the 4 tuple dimensions interleave
/// in one Sequitur grammar.
struct UndecomposedConsumer : core::OrTupleConsumer {
  sequitur::SequiturGrammar Grammar;
  void consume(const core::OrTuple &T) override {
    Grammar.append(T.Instr);
    Grammar.append(T.Group);
    Grammar.append(T.Object);
    Grammar.append(T.Offset);
  }
};

} // namespace

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Ablation A3 — translation vs. decomposition",
              "Both object-relative translation and per-dimension "
              "decomposition contribute to OMSG's compression edge.");

  TablePrinter Table({"benchmark", "RASG", "OR undecomposed", "OMSG",
                      "transl. gain", "decomp. gain"});
  RunningStat TranslGain, DecompGain;
  for (const std::string &Name : specNames()) {
    RunConfig Config;
    Config.Scale = Scale;
    core::ProfilingSession Session(Config.Policy, Config.EnvSeed);
    baseline::RasgProfiler Rasg;
    UndecomposedConsumer Undecomposed;
    whomp::WhompProfiler Whomp;
    Session.addRawSink(&Rasg);
    Session.addConsumer(&Undecomposed);
    Session.addConsumer(&Whomp);
    runInSession(Session, Name, Config);

    double RasgB = static_cast<double>(Rasg.serializedSizeBytes());
    double UndB =
        static_cast<double>(Undecomposed.Grammar.serializedSizeBytes());
    double OmsgB = static_cast<double>(Whomp.sizes().total());
    double TGain = percentOf(RasgB - UndB, RasgB);
    double DGain = percentOf(UndB - OmsgB, UndB);
    TranslGain.add(TGain);
    DecompGain.add(DGain);
    Table.addRow({Name, TablePrinter::fmt(uint64_t(RasgB)),
                  TablePrinter::fmt(uint64_t(UndB)),
                  TablePrinter::fmt(uint64_t(OmsgB)),
                  TablePrinter::fmtPercent(TGain, 1),
                  TablePrinter::fmtPercent(DGain, 1)});
  }
  Table.print();
  std::printf("\nAverage size gain from object-relative translation "
              "alone: %.1f%%\n",
              TranslGain.mean());
  std::printf("Average further gain from horizontal decomposition: "
              "%.1f%%\n",
              DecompGain.mean());
  return 0;
}
