//===- bench/fig7_connors_mdf_error.cpp - Figure 7 reproduction ----------===//
//
// Figure 7 of the paper: "The error distribution of the Connors memory-
// dependence results" — the same evaluation as Figure 6, for the
// re-implemented window-based profiler of Connors. The paper observes
// that "while not overestimating the frequency for any dependent pairs,
// this scheme often misses some of the dependences as it identifies
// dependences only in a small window of instructions".
//
//===----------------------------------------------------------------------===//

#include "analysis/MdfError.h"
#include "common/BenchCommon.h"
#include "common/MdfExperiment.h"
#include "support/Histogram.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace orp;
using namespace orp::bench;

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Figure 7 — Connors window-profiler error distribution",
              "Never overestimates; misses dependences beyond the history "
              "window (heavy mass on the negative side).");

  Histogram Combined(-105.0, 105.0, 21);
  TablePrinter Table({"benchmark", "dep pairs", "exact-correct",
                      "within +-10%", "overestimated"});
  for (const std::string &Name : specNames()) {
    MdfResults R = runMdfExperiment(Name, Scale);
    analysis::MdfComparison Cmp = analysis::compareMdf(R.Exact, R.Connors);
    uint64_t Overestimated = 0;
    for (const auto &[Pair, Freq] : R.Connors) {
      auto It = R.Exact.find(Pair);
      if (It != R.Exact.end() && Freq > It->second + 1e-12)
        ++Overestimated;
    }
    for (unsigned B = 0; B != Cmp.ErrorHist.numBuckets(); ++B) {
      double Mid =
          (Cmp.ErrorHist.bucketLo(B) + Cmp.ErrorHist.bucketHi(B)) / 2;
      Combined.add(Mid, Cmp.ErrorHist.bucketCount(B));
    }
    Table.addRow({Name, TablePrinter::fmt(Cmp.DependentPairs),
                  TablePrinter::fmt(Cmp.ExactlyCorrect),
                  TablePrinter::fmtPercent(
                      100.0 * Cmp.fractionCorrectOrWithin10(), 1),
                  TablePrinter::fmt(Overestimated)});
  }
  Table.print();

  std::printf("\nCombined error distribution over all benchmarks "
              "(error = Connors - exact, percentage points):\n\n%s\n",
              Combined.renderAscii().c_str());
  std::printf("Dependent pairs exactly correct or within 10%%: %.1f%%\n",
              100.0 * Combined.fractionIn(-10.0, 10.0));
  std::printf("Mass on the positive side (overestimates): %.2f%% "
              "(paper: none)\n",
              100.0 * Combined.fractionIn(15.0, 105.0));
  return 0;
}
