//===- bench/common/BenchCommon.cpp - Shared bench harness code ----------===//

#include "BenchCommon.h"

#include "support/Error.h"
#include "support/Timer.h"

#include <cstdio>
#include <cstdlib>

using namespace orp;
using namespace orp::bench;

const std::vector<std::string> &orp::bench::specNames() {
  static const std::vector<std::string> Names = {
      "164.gzip-a",  "175.vpr-a",   "181.mcf-a", "186.crafty-a",
      "197.parser-a", "256.bzip2-a", "300.twolf-a"};
  return Names;
}

uint64_t orp::bench::parseScale(int Argc, char **Argv) {
  if (Argc < 2)
    return 1;
  long Scale = std::strtol(Argv[1], nullptr, 10);
  if (Scale < 1 || Scale > 64) {
    std::fprintf(stderr, "usage: %s [scale 1..64]\n", Argv[0]);
    std::exit(1);
  }
  return static_cast<uint64_t>(Scale);
}

double orp::bench::runInSession(core::ProfilingSession &Session,
                                const std::string &Name,
                                const RunConfig &Config) {
  auto W = workloads::createWorkloadByName(Name);
  if (!W)
    ORP_FATAL_ERROR("unknown workload name");
  workloads::WorkloadConfig WC;
  WC.Scale = Config.Scale;
  WC.Seed = Config.InputSeed;
  Timer T;
  W->run(Session.memory(), Session.registry(), WC);
  Session.finish();
  return T.seconds();
}

double orp::bench::runNative(const std::string &Name,
                             const RunConfig &Config) {
  core::ProfilingSession Session(Config.Policy, Config.EnvSeed);
  // No sinks attached: probes reduce to a counter increment, the
  // closest software analogue of running the uninstrumented binary.
  auto W = workloads::createWorkloadByName(Name);
  if (!W)
    ORP_FATAL_ERROR("unknown workload name");
  workloads::WorkloadConfig WC;
  WC.Scale = Config.Scale;
  WC.Seed = Config.InputSeed;
  Timer T;
  W->run(Session.memory(), Session.registry(), WC);
  return T.seconds();
}

void orp::bench::printHeader(const char *Experiment,
                             const char *PaperClaim) {
  std::printf("================================================================"
              "=====\n");
  std::printf("%s\n", Experiment);
  std::printf("Paper: %s\n", PaperClaim);
  std::printf("================================================================"
              "=====\n\n");
}

std::string orp::bench::bar(double Value, unsigned Width) {
  double Magnitude = Value < 0 ? -Value : Value;
  if (Magnitude > 100.0)
    Magnitude = 100.0;
  auto Chars = static_cast<unsigned>(Magnitude / 100.0 * Width + 0.5);
  return std::string(Chars, '#');
}
