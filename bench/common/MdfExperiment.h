//===- bench/common/MdfExperiment.h - Shared Fig.6-8 machinery -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-dependence-frequency experiment shared by Figures 6, 7
/// and 8: run a benchmark once, collect (a) the exact lossless
/// raw-address dependence profile, (b) the LEAP profile with its MDF
/// post-processor and (c) the Connors window profile, and return all
/// three MDF maps.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_BENCH_COMMON_MDFEXPERIMENT_H
#define ORP_BENCH_COMMON_MDFEXPERIMENT_H

#include "analysis/Mdf.h"
#include "baseline/ConnorsProfiler.h"
#include "common/BenchCommon.h"

#include <string>

namespace orp {
namespace bench {

/// The three MDF maps of one benchmark run.
struct MdfResults {
  analysis::MdfMap Exact;
  analysis::MdfMap Leap;
  analysis::MdfMap Connors;
};

/// Runs \p Name once and computes all three profiles on the same probe
/// stream. \p ConnorsWindow sizes the window baseline (the paper picks a
/// window giving LEAP-comparable running time).
MdfResults runMdfExperiment(
    const std::string &Name, uint64_t Scale,
    size_t ConnorsWindow = baseline::ConnorsProfiler::DefaultWindowSize,
    unsigned MaxLmads = 30);

} // namespace bench
} // namespace orp

#endif // ORP_BENCH_COMMON_MDFEXPERIMENT_H
