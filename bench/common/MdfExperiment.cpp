//===- bench/common/MdfExperiment.cpp - Shared Fig.6-8 machinery ---------===//

#include "common/MdfExperiment.h"

#include "analysis/Dependence.h"
#include "baseline/ExactDependence.h"
#include "leap/Leap.h"

using namespace orp;
using namespace orp::bench;

MdfResults orp::bench::runMdfExperiment(const std::string &Name,
                                        uint64_t Scale,
                                        size_t ConnorsWindow,
                                        unsigned MaxLmads) {
  RunConfig Config;
  Config.Scale = Scale;
  core::ProfilingSession Session(Config.Policy, Config.EnvSeed);

  leap::LeapProfiler Leap(MaxLmads);
  baseline::ExactDependenceProfiler Exact;
  baseline::ConnorsProfiler Connors(ConnorsWindow);
  Session.addConsumer(&Leap);
  Session.addRawSink(&Exact);
  Session.addRawSink(&Connors);
  runInSession(Session, Name, Config);

  MdfResults Results;
  Results.Exact = Exact.mdf();
  Results.Leap = analysis::LeapDependenceAnalyzer(Leap).computeMdf();
  Results.Connors = Connors.mdf();
  return Results;
}
