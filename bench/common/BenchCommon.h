//===- bench/common/BenchCommon.h - Shared bench harness code --*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure/table reproduction binaries: uniform
/// benchmark iteration, run wiring, and output conventions. Every bench
/// prints the paper's rows/series plus a paper-vs-measured note; see
/// EXPERIMENTS.md for the recorded results.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_BENCH_COMMON_BENCHCOMMON_H
#define ORP_BENCH_COMMON_BENCHCOMMON_H

#include "core/ProfilingSession.h"
#include "trace/Events.h"
#include "workloads/Workload.h"

#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace bench {

/// Names of the 7 SPEC2000 analogues in the paper's table order.
const std::vector<std::string> &specNames();

/// Parses the optional scale argument (argv[1]); defaults to 1. The
/// scale multiplies workload sizes, mirroring the train/ref input-set
/// distinction.
uint64_t parseScale(int Argc, char **Argv);

/// Per-run parameters.
struct RunConfig {
  uint64_t Scale = 1;
  uint64_t InputSeed = 42;
  uint64_t EnvSeed = 0; ///< Allocator/linker environment of this run.
  memsim::AllocPolicy Policy = memsim::AllocPolicy::FirstFit;
};

/// Runs workload \p Name inside the prepared \p Session (attach profilers
/// and raw sinks before calling); finishes the session. Returns the
/// wall-clock seconds of the workload body.
double runInSession(core::ProfilingSession &Session,
                    const std::string &Name, const RunConfig &Config);

/// Runs \p Name with no sinks attached — the paper's "native" execution
/// used as the dilation baseline. Returns wall-clock seconds.
double runNative(const std::string &Name, const RunConfig &Config);

/// Prints the standard bench header: experiment id and the paper claim
/// the bench regenerates.
void printHeader(const char *Experiment, const char *PaperClaim);

/// Renders a proportional ASCII bar for |Value| out of 100.
std::string bar(double Value, unsigned Width = 40);

} // namespace bench
} // namespace orp

#endif // ORP_BENCH_COMMON_BENCHCOMMON_H
