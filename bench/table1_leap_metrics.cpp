//===- bench/table1_leap_metrics.cpp - Table 1 reproduction --------------===//
//
// Table 1 of the paper: "LEAP profile size, speed, and sample quality"
// — per benchmark, the compression ratio of the LEAP profile relative
// to the raw trace (paper average 3539x), the time dilation of the
// instrumented run over the native run (paper average 11.5x), and the
// two sample-quality metrics: the percentage of all memory accesses
// captured inside LMADs (paper average 46.5%) and the percentage of
// instructions whose behavior was completely captured (paper average
// 40.5%).
//
//===----------------------------------------------------------------------===//

#include "common/BenchCommon.h"
#include "leap/Leap.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace orp;
using namespace orp::bench;

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Table 1 — LEAP profile size, speed, and sample quality",
              "Avg compression 3539x, dilation 11.5x, 46.5% accesses / "
              "40.5% instructions captured.");

  TablePrinter Table({"benchmark", "compression", "dilation",
                      "accesses captured", "instrs captured"});
  RunningStat Compression, Dilation, AccessQ, InstrQ;
  for (const std::string &Name : specNames()) {
    RunConfig Config;
    Config.Scale = Scale;

    // Native run: no probes consumed (the dilation baseline). Take the
    // fastest of a few runs to reduce scheduler noise.
    double NativeSecs = 1e9;
    for (int Rep = 0; Rep != 3; ++Rep) {
      double Secs = runNative(Name, Config);
      NativeSecs = Secs < NativeSecs ? Secs : NativeSecs;
    }

    // Instrumented run: full LEAP pipeline (OMC + CDC + vertical
    // decomposition + LMAD compression).
    core::ProfilingSession Session(Config.Policy, Config.EnvSeed);
    leap::LeapProfiler Leap;
    trace::CountingSink Counter;
    Session.addConsumer(&Leap);
    Session.addRawSink(&Counter);
    double ProfiledSecs = runInSession(Session, Name, Config);

    double Ratio = static_cast<double>(Counter.rawTraceBytes()) /
                   static_cast<double>(Leap.serializedSizeBytes());
    double Dila = ProfiledSecs / NativeSecs;
    double AccPct = Leap.accessesCapturedPercent();
    double InsPct = Leap.instructionsCapturedPercent();
    Compression.add(Ratio);
    Dilation.add(Dila);
    AccessQ.add(AccPct);
    InstrQ.add(InsPct);
    Table.addRow({Name, TablePrinter::fmtRatio(Ratio),
                  TablePrinter::fmtRatio(Dila, 1),
                  TablePrinter::fmtPercent(AccPct, 1),
                  TablePrinter::fmtPercent(InsPct, 1)});
  }
  Table.addRow({"Average", TablePrinter::fmtRatio(Compression.mean()),
                TablePrinter::fmtRatio(Dilation.mean(), 1),
                TablePrinter::fmtPercent(AccessQ.mean(), 1),
                TablePrinter::fmtPercent(InstrQ.mean(), 1)});
  Table.print();

  std::printf("\nPaper averages: 3539x compression, 11.5x dilation, "
              "46.5%% accesses, 40.5%% instructions.\n");
  return 0;
}
