//===- bench/ablation_connors_window.cpp - Window-size ablation (A2) -----===//
//
// The paper sizes the Connors history window "such that it exhibits a
// running time similar to LEAP". This ablation sweeps the window size
// and reports MDF accuracy and run time per setting, aggregated over
// the 7 benchmarks — showing the accuracy/cost trade the paper's
// comparison point sits on.
//
//===----------------------------------------------------------------------===//

#include "analysis/MdfError.h"
#include "baseline/ConnorsProfiler.h"
#include "baseline/ExactDependence.h"
#include "common/BenchCommon.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "support/Timer.h"

#include <cstdio>
#include <memory>

using namespace orp;
using namespace orp::bench;

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Ablation A2 — Connors history-window size",
              "Accuracy grows with the window; the paper matches the "
              "window to LEAP's running time.");

  struct PerBench {
    trace::BufferSink Buffer;
    analysis::MdfMap ExactMdf;
  };
  std::vector<std::unique_ptr<PerBench>> Benches;
  for (const std::string &Name : specNames()) {
    auto B = std::make_unique<PerBench>();
    RunConfig Config;
    Config.Scale = Scale;
    core::ProfilingSession Session(Config.Policy, Config.EnvSeed);
    baseline::ExactDependenceProfiler Exact;
    Session.addRawSink(&B->Buffer);
    Session.addRawSink(&Exact);
    runInSession(Session, Name, Config);
    B->ExactMdf = Exact.mdf();
    Benches.push_back(std::move(B));
  }

  TablePrinter Table({"window", "dep pairs found", "within10%",
                      "missed pairs", "time/run"});
  for (size_t Window : {4, 16, 64, 256, 1024, 4096, 16384}) {
    RunningStat Within, Seconds;
    uint64_t Found = 0, Missed = 0;
    for (const auto &B : Benches) {
      baseline::ConnorsProfiler Connors(Window);
      Timer T;
      B->Buffer.replayTo(Connors);
      Seconds.add(T.seconds());
      auto Est = Connors.mdf();
      Found += Est.size();
      auto Cmp = analysis::compareMdf(B->ExactMdf, Est);
      Within.add(100.0 * Cmp.fractionCorrectOrWithin10());
      for (const auto &[Pair, Freq] : B->ExactMdf)
        if (!Est.count(Pair))
          ++Missed;
    }
    Table.addRow({TablePrinter::fmt(uint64_t(Window)),
                  TablePrinter::fmt(Found),
                  TablePrinter::fmtPercent(Within.mean(), 1),
                  TablePrinter::fmt(Missed),
                  TablePrinter::fmt(Seconds.mean(), 3) + "s"});
  }
  Table.print();
  std::printf("\n(The comparison in Figures 7-8 uses window %u.)\n",
              unsigned(baseline::ConnorsProfiler::DefaultWindowSize));
  return 0;
}
