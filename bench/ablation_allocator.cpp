//===- bench/ablation_allocator.cpp - Allocator sensitivity (A4) ---------===//
//
// Section 1 lists three run-to-run artifacts: input-dependent
// footprints, allocator-library layout differences, and probe-induced
// static-data shifts. This ablation runs every benchmark under all four
// heap allocator policies (plus an environment-seed change) and
// measures how stable each lossless profile is: the RASG bytes vary
// with the environment while the OMSG bytes are identical, because the
// object-relative stream itself is identical.
//
//===----------------------------------------------------------------------===//

#include "baseline/RasgProfiler.h"
#include "common/BenchCommon.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "whomp/Whomp.h"

#include <cmath>
#include <cstdio>

using namespace orp;
using namespace orp::bench;

int main(int Argc, char **Argv) {
  uint64_t Scale = parseScale(Argc, Argv);
  printHeader("Ablation A4 — allocator/environment sensitivity",
              "Raw-address profiles change with the environment; "
              "object-relative profiles do not.");

  struct Env {
    memsim::AllocPolicy Policy;
    uint64_t Seed;
  };
  const Env Envs[] = {{memsim::AllocPolicy::FirstFit, 0},
                      {memsim::AllocPolicy::FirstFit, 999},
                      {memsim::AllocPolicy::BestFit, 0},
                      {memsim::AllocPolicy::NextFit, 0},
                      {memsim::AllocPolicy::Segregated, 0}};

  TablePrinter Table({"benchmark", "RASG bytes", "RASG content stable",
                      "OMSG bytes", "OMSG content stable"});
  for (const std::string &Name : specNames()) {
    RunningStat RasgBytes;
    std::vector<std::vector<uint8_t>> RasgImages, OmsgImages;
    for (const Env &E : Envs) {
      RunConfig Config;
      Config.Scale = Scale;
      Config.Policy = E.Policy;
      Config.EnvSeed = E.Seed;
      core::ProfilingSession Session(E.Policy, E.Seed);
      baseline::RasgProfiler Rasg;
      whomp::WhompProfiler Whomp;
      Session.addRawSink(&Rasg);
      Session.addConsumer(&Whomp);
      runInSession(Session, Name, Config);
      RasgBytes.add(static_cast<double>(Rasg.serializedSizeBytes()));
      // Profile *content*: the environment moves every raw address, so
      // the RASG bytes change even when the grammar shape (and thus its
      // size) happens to coincide. The OMSG must be byte-identical.
      std::vector<uint8_t> RasgImage = Rasg.addressGrammar().serialize();
      std::vector<uint8_t> InstrImage =
          Rasg.instructionGrammar().serialize();
      RasgImage.insert(RasgImage.end(), InstrImage.begin(),
                       InstrImage.end());
      RasgImages.push_back(std::move(RasgImage));
      std::vector<uint8_t> OmsgImage;
      for (core::Dimension D :
           {core::Dimension::Instruction, core::Dimension::Group,
            core::Dimension::Object, core::Dimension::Offset}) {
        auto Part = Whomp.grammarFor(D).serialize();
        OmsgImage.insert(OmsgImage.end(), Part.begin(), Part.end());
      }
      OmsgImages.push_back(std::move(OmsgImage));
    }
    bool RasgStable = true, OmsgStable = true;
    for (size_t I = 1; I != RasgImages.size(); ++I) {
      RasgStable &= RasgImages[I] == RasgImages.front();
      OmsgStable &= OmsgImages[I] == OmsgImages.front();
    }
    Table.addRow({Name, TablePrinter::fmt(uint64_t(RasgBytes.max())),
                  RasgStable ? "yes (unexpected!)" : "NO (run-dependent)",
                  TablePrinter::fmt(uint64_t(OmsgImages.front().size())),
                  OmsgStable ? "yes" : "NO"});
  }
  Table.print();
  std::printf("\n(5 environments per benchmark: first-fit x2 seeds, "
              "best-fit, next-fit, segregated.)\n");
  return 0;
}
