//===- tests/core_test.cpp - Framework (CDC/SCC) unit tests --------------===//

#include "core/Cdc.h"
#include "core/Decomposition.h"
#include "core/ObjectRelative.h"
#include "core/ProfilingSession.h"
#include "memsim/AddressSpace.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

using namespace orp;
using namespace orp::core;

namespace {

/// Tuple buffer for assertions.
struct TupleBuffer : OrTupleConsumer {
  std::vector<OrTuple> Tuples;
  bool Finished = false;
  void consume(const OrTuple &T) override { Tuples.push_back(T); }
  void finish() override { Finished = true; }
};

/// StreamCompressor that records appended symbols.
struct RecordingCompressor : StreamCompressor {
  std::vector<uint64_t> Symbols;
  bool Finished = false;
  void append(uint64_t S) override { Symbols.push_back(S); }
  void finish() override { Finished = true; }
  size_t serializedSizeBytes() const override { return Symbols.size(); }
};

/// Substream consumer that records tuples.
struct RecordingSubstream : SubstreamConsumer {
  std::vector<OrTuple> Tuples;
  void append(const OrTuple &T) override { Tuples.push_back(T); }
};

trace::AllocEvent alloc(trace::AllocSiteId Site, uint64_t Addr,
                        uint64_t Size, uint64_t Time) {
  return trace::AllocEvent{Site, Addr, Size, Time, false};
}

trace::AccessEvent access(trace::InstrId Instr, uint64_t Addr,
                          uint64_t Time, bool Store = false) {
  return trace::AccessEvent{Instr, Addr, 8, Store, Time};
}

} // namespace

//===----------------------------------------------------------------------===//
// Dimension helpers
//===----------------------------------------------------------------------===//

TEST(DimensionTest, ValueExtraction) {
  OrTuple T{/*Instr=*/3, /*Group=*/5, /*Object=*/7, /*Offset=*/9,
            /*Time=*/11, /*IsStore=*/false, /*Size=*/8};
  EXPECT_EQ(dimensionValue(T, Dimension::Instruction), 3u);
  EXPECT_EQ(dimensionValue(T, Dimension::Group), 5u);
  EXPECT_EQ(dimensionValue(T, Dimension::Object), 7u);
  EXPECT_EQ(dimensionValue(T, Dimension::Offset), 9u);
  EXPECT_EQ(dimensionValue(T, Dimension::Time), 11u);
  EXPECT_STREQ(dimensionName(Dimension::Group), "group");
}

//===----------------------------------------------------------------------===//
// CDC
//===----------------------------------------------------------------------===//

TEST(CdcTest, TranslatesThroughOmc) {
  omc::ObjectManager O;
  Cdc C(O);
  TupleBuffer Buf;
  C.addConsumer(&Buf);

  C.onAlloc(alloc(9, 0x1000, 64, 0));
  C.onAccess(access(1, 0x1010, 0));
  C.onAccess(access(2, 0x1020, 1, /*Store=*/true));
  C.onFinish();

  ASSERT_EQ(Buf.Tuples.size(), 2u);
  EXPECT_EQ(Buf.Tuples[0].Instr, 1u);
  EXPECT_EQ(Buf.Tuples[0].Group, O.groupForSite(9));
  EXPECT_EQ(Buf.Tuples[0].Object, 0u);
  EXPECT_EQ(Buf.Tuples[0].Offset, 0x10u);
  EXPECT_EQ(Buf.Tuples[0].Time, 0u);
  EXPECT_FALSE(Buf.Tuples[0].IsStore);
  EXPECT_TRUE(Buf.Tuples[1].IsStore);
  EXPECT_TRUE(Buf.Finished);
  EXPECT_EQ(C.stats().Translated, 2u);
}

TEST(CdcTest, DropPolicySkipsUnknownAddresses) {
  omc::ObjectManager O;
  Cdc C(O, UnknownAddressPolicy::Drop);
  TupleBuffer Buf;
  C.addConsumer(&Buf);
  C.onAccess(access(1, 0xDEAD, 0));
  EXPECT_TRUE(Buf.Tuples.empty());
  EXPECT_EQ(C.stats().Unknown, 1u);
}

TEST(CdcTest, WildGroupPolicyForwardsUnknownAddresses) {
  omc::ObjectManager O;
  Cdc C(O, UnknownAddressPolicy::WildGroup);
  TupleBuffer Buf;
  C.addConsumer(&Buf);
  C.onAccess(access(1, 0xDEAD, 0));
  ASSERT_EQ(Buf.Tuples.size(), 1u);
  EXPECT_EQ(Buf.Tuples[0].Group, Cdc::WildGroupId);
  EXPECT_EQ(Buf.Tuples[0].Offset, 0xDEADu);
}

TEST(CdcTest, FreeRetiresTranslation) {
  omc::ObjectManager O;
  Cdc C(O);
  TupleBuffer Buf;
  C.addConsumer(&Buf);
  C.onAlloc(alloc(0, 0x1000, 64, 0));
  C.onFree(trace::FreeEvent{0x1000, 1});
  C.onAccess(access(1, 0x1000, 2));
  EXPECT_TRUE(Buf.Tuples.empty());
  EXPECT_EQ(C.stats().Unknown, 1u);
}

TEST(CdcTest, MultipleConsumersSeeTheSameStream) {
  omc::ObjectManager O;
  Cdc C(O);
  TupleBuffer A, B;
  C.addConsumer(&A);
  C.addConsumer(&B);
  C.onAlloc(alloc(0, 0x1000, 64, 0));
  C.onAccess(access(1, 0x1000, 0));
  EXPECT_EQ(A.Tuples.size(), 1u);
  EXPECT_EQ(B.Tuples.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Horizontal decomposition
//===----------------------------------------------------------------------===//

TEST(HorizontalDecomposerTest, SplitsDimensions) {
  std::vector<RecordingCompressor *> Made;
  HorizontalDecomposer H(
      {Dimension::Instruction, Dimension::Offset}, [&] {
        auto C = std::make_unique<RecordingCompressor>();
        Made.push_back(C.get());
        return C;
      });
  ASSERT_EQ(Made.size(), 2u);

  OrTuple T1{1, 0, 0, 16, 0, false, 8};
  OrTuple T2{2, 0, 1, 24, 1, false, 8};
  H.consume(T1);
  H.consume(T2);
  H.finish();

  EXPECT_EQ(Made[0]->Symbols, (std::vector<uint64_t>{1, 2}));
  EXPECT_EQ(Made[1]->Symbols, (std::vector<uint64_t>{16, 24}));
  EXPECT_TRUE(Made[0]->Finished);
  EXPECT_EQ(H.totalSerializedSizeBytes(), 4u);
  EXPECT_EQ(&H.compressorFor(Dimension::Offset),
            static_cast<StreamCompressor *>(Made[1]));
}

//===----------------------------------------------------------------------===//
// Vertical decomposition
//===----------------------------------------------------------------------===//

TEST(VerticalDecomposerTest, RoutesByInstructionThenGroup) {
  std::map<std::pair<uint32_t, uint32_t>, RecordingSubstream *> Made;
  VerticalDecomposer V([&](VerticalKey Key) {
    auto S = std::make_unique<RecordingSubstream>();
    Made[{Key.Instr, Key.Group}] = S.get();
    return S;
  });

  V.consume(OrTuple{1, 10, 0, 0, 0, false, 8});
  V.consume(OrTuple{1, 10, 1, 8, 1, false, 8});
  V.consume(OrTuple{1, 20, 0, 0, 2, false, 8});
  V.consume(OrTuple{2, 10, 0, 0, 3, false, 8});

  EXPECT_EQ(V.numSubstreams(), 3u);
  EXPECT_EQ(Made.at({1, 10})->Tuples.size(), 2u);
  EXPECT_EQ(Made.at({1, 20})->Tuples.size(), 1u);
  EXPECT_EQ(Made.at({2, 10})->Tuples.size(), 1u);
  EXPECT_EQ(V.lookup(VerticalKey{1, 10}),
            static_cast<const SubstreamConsumer *>(Made.at({1, 10})));
  EXPECT_EQ(V.lookup(VerticalKey{9, 9}), nullptr);

  // forEach iterates in key order.
  std::vector<std::pair<uint32_t, uint32_t>> Keys;
  V.forEach([&](const VerticalKey &K, const SubstreamConsumer &) {
    Keys.emplace_back(K.Instr, K.Group);
  });
  ASSERT_EQ(Keys.size(), 3u);
  EXPECT_TRUE(std::is_sorted(Keys.begin(), Keys.end()));
}

//===----------------------------------------------------------------------===//
// ProfilingSession end-to-end wiring
//===----------------------------------------------------------------------===//

TEST(ProfilingSessionTest, ProbesFlowToConsumers) {
  ProfilingSession S;
  TupleBuffer Buf;
  S.addConsumer(&Buf);

  trace::AllocSiteId Site = S.registry().addAllocSite("node");
  trace::InstrId Ld = S.registry().addInstruction("ld",
                                                  trace::AccessKind::Load);
  uint64_t Addr = S.memory().heapAlloc(Site, 64);
  S.memory().load(Ld, Addr + 8);
  S.memory().load(Ld, Addr + 16);
  S.finish();

  ASSERT_EQ(Buf.Tuples.size(), 2u);
  EXPECT_EQ(Buf.Tuples[0].Offset, 8u);
  EXPECT_EQ(Buf.Tuples[1].Offset, 16u);
  EXPECT_EQ(Buf.Tuples[0].Object, Buf.Tuples[1].Object);
  EXPECT_TRUE(Buf.Finished);
  EXPECT_EQ(S.omc().numLiveObjects(), 1u);
}

TEST(ProfilingSessionTest, RawSinksSeeUntranslatedEvents) {
  ProfilingSession S;
  trace::CountingSink Raw;
  S.addRawSink(&Raw);
  uint64_t Addr = S.memory().heapAlloc(0, 64);
  S.memory().store(0, Addr);
  S.memory().flushAccesses(); // Accesses batch; deliver before inspecting.
  EXPECT_EQ(Raw.accesses(), 1u);
  EXPECT_EQ(Raw.allocs(), 1u);
}

TEST(ProfilingSessionTest, StackAddressesAreDroppedLikeThePaper) {
  // The paper: "Since static analysis handle stack variables very
  // efficiently, we chose not to profile them."
  ProfilingSession S;
  TupleBuffer Buf;
  S.addConsumer(&Buf);
  S.memory().load(0, memsim::AddressSpaceLayout::StackBase + 0x100);
  S.memory().flushAccesses();
  EXPECT_TRUE(Buf.Tuples.empty());
  EXPECT_EQ(S.cdc().stats().Unknown, 1u);
}
