//===- tests/check_test.cpp - Invariant-checking layer tests -------------===//
//
// The contract under test: the deep validators accept every grammar and
// OMC state the real pipeline can produce, and reject every deliberately
// injected corruption of the classes they claim to catch. Under an ASan
// build the arena free lists must be poisoned (so a stale read is a
// detected use-after-free) while the sanctioned pending-list window
// stays readable.
//
//===----------------------------------------------------------------------===//

#include "SequiturStreams.h"
#include "check/Check.h"
#include "check/GrammarValidator.h"
#include "check/OmcValidator.h"
#include "omc/IntervalBTree.h"
#include "omc/ObjectManager.h"
#include "sequitur/Sequitur.h"
#include "support/Random.h"

#include "gtest/gtest.h"

#include <cstdint>
#include <vector>

using namespace orp;
using check::GrammarValidator;
using check::OmcValidator;

namespace {

/// Appends the first \p N values of i % \p Mod to \p G — enough
/// structure for every corruption class (rules, digrams, use lists).
void appendPeriodic(sequitur::SequiturGrammar &G, uint64_t Mod = 7,
                    uint32_t N = 4000) {
  for (uint32_t I = 0; I != N; ++I)
    G.append(I % Mod);
}

trace::AllocEvent allocEvent(trace::AllocSiteId Site, uint64_t Addr,
                             uint64_t Size, uint64_t Time) {
  return trace::AllocEvent{Site, Addr, Size, Time, /*IsStatic=*/false};
}

} // namespace

//===----------------------------------------------------------------------===//
// GrammarValidator: clean grammars validate
//===----------------------------------------------------------------------===//

TEST(GrammarValidatorTest, EmptyAndTinyGrammarsValidate) {
  sequitur::SequiturGrammar Empty;
  EXPECT_TRUE(GrammarValidator::validate(Empty).ok())
      << GrammarValidator::validate(Empty).str();

  sequitur::SequiturGrammar One;
  One.append(42);
  EXPECT_TRUE(GrammarValidator::validate(One).ok())
      << GrammarValidator::validate(One).str();

  sequitur::SequiturGrammar Two;
  Two.append(1);
  Two.append(1);
  EXPECT_TRUE(GrammarValidator::validate(Two).ok())
      << GrammarValidator::validate(Two).str();
}

TEST(GrammarValidatorTest, PinnedStreamSuiteValidates) {
  // Every grammar of the CRC-pinned fuzz-lite suite must pass the deep
  // validator — the validator models the real invariants, not an ideal.
  size_t Count = 0;
  const seqstreams::StreamCase *Cases = seqstreams::streamCases(Count);
  for (size_t I = 0; I != Count; ++I) {
    sequitur::SequiturGrammar G;
    G.appendAll(seqstreams::makeStream(Cases[I]));
    check::CheckReport Report = GrammarValidator::validate(G);
    EXPECT_TRUE(Report.ok()) << Cases[I].Name << ":\n" << Report.str();
  }
}

TEST(GrammarValidatorTest, ValidationIsReadOnly) {
  // Validating must not perturb the grammar: serialize before and after.
  sequitur::SequiturGrammar G;
  appendPeriodic(G, 5, 3000);
  std::vector<uint8_t> Before = G.serialize();
  ASSERT_TRUE(GrammarValidator::validate(G).ok());
  EXPECT_EQ(Before, G.serialize());
}

//===----------------------------------------------------------------------===//
// GrammarValidator: injected corruptions are caught
//===----------------------------------------------------------------------===//

TEST(GrammarValidatorTest, CatchesDigramIndexDrop) {
  sequitur::SequiturGrammar G;
  appendPeriodic(G);
  ASSERT_TRUE(GrammarValidator::injectForTest(
      G, GrammarValidator::Corruption::DigramIndexDrop));
  check::CheckReport Report = GrammarValidator::validate(G);
  EXPECT_FALSE(Report.ok());
}

TEST(GrammarValidatorTest, CatchesDigramIndexRetarget) {
  sequitur::SequiturGrammar G;
  appendPeriodic(G);
  ASSERT_TRUE(GrammarValidator::injectForTest(
      G, GrammarValidator::Corruption::DigramIndexRetarget));
  check::CheckReport Report = GrammarValidator::validate(G);
  EXPECT_FALSE(Report.ok());
}

TEST(GrammarValidatorTest, CatchesUseCountSkew) {
  sequitur::SequiturGrammar G;
  appendPeriodic(G);
  ASSERT_TRUE(GrammarValidator::injectForTest(
      G, GrammarValidator::Corruption::UseCountSkew));
  check::CheckReport Report = GrammarValidator::validate(G);
  EXPECT_FALSE(Report.ok());
}

TEST(GrammarValidatorTest, CatchesLivenessTagClear) {
  sequitur::SequiturGrammar G;
  appendPeriodic(G);
  ASSERT_TRUE(GrammarValidator::injectForTest(
      G, GrammarValidator::Corruption::LivenessTagClear));
  check::CheckReport Report = GrammarValidator::validate(G);
  EXPECT_FALSE(Report.ok());
}

//===----------------------------------------------------------------------===//
// Sequitur arena poisoning (the use-after-free detector)
//===----------------------------------------------------------------------===//

TEST(ArenaPoisonTest, SequiturFreeListsArePoisonedUnderAsan) {
  // The phrases stream churns rules hard, so reclaimed nodes land on the
  // free lists. Every one of them must be poisoned under ASan — a stale
  // pointer dereference into the slab is then an immediate ASan report,
  // which is exactly how a slab use-after-free gets caught in the
  // checked build. Pending-list nodes (the sanctioned mid-cascade
  // dead-check window) must stay readable.
  sequitur::SequiturGrammar G;
  size_t Count = 0;
  const seqstreams::StreamCase *Cases = seqstreams::streamCases(Count);
  for (size_t I = 0; I != Count; ++I)
    if (std::string(Cases[I].Name) == "phrases_a4")
      G.appendAll(seqstreams::makeStream(Cases[I]));
  ASSERT_GT(G.inputLength(), 0u);

  GrammarValidator::ArenaAudit Audit = GrammarValidator::auditArenaPoisoning(G);
  ASSERT_GT(Audit.FreeSymbols + Audit.FreeRules, 0u)
      << "stream did not exercise the arena free lists";
  EXPECT_EQ(Audit.AsanActive, check::asanActive());
  if (Audit.AsanActive) {
    EXPECT_EQ(Audit.PoisonedFreeSymbols, Audit.FreeSymbols);
    EXPECT_EQ(Audit.PoisonedFreeRules, Audit.FreeRules);
    EXPECT_EQ(Audit.PoisonedPendingSymbols, 0u);
    EXPECT_EQ(Audit.PoisonedPendingRules, 0u);
  } else {
    EXPECT_EQ(Audit.PoisonedFreeSymbols, 0u);
    EXPECT_EQ(Audit.PoisonedFreeRules, 0u);
  }
}

TEST(ArenaPoisonTest, BTreeFreeNodesArePoisonedUnderAsan) {
  // Split the tree (bulk inserts), then erase everything so emptied
  // nodes hit the recycling list; each recycled node must be poisoned.
  omc::IntervalBTree T;
  constexpr uint64_t N = 4096;
  for (uint64_t I = 0; I != N; ++I)
    T.insert(I * 16, I * 16 + 8, I);
  ASSERT_GT(T.height(), 1u);
  for (uint64_t I = 0; I != N; ++I)
    ASSERT_TRUE(T.erase(I * 16));
  EXPECT_EQ(T.size(), 0u);

  OmcValidator::PoisonAudit Audit = OmcValidator::auditTreePoisoning(T);
  ASSERT_GT(Audit.FreeNodes, 0u) << "erase churn recycled no nodes";
  if (Audit.AsanActive)
    EXPECT_EQ(Audit.PoisonedFreeNodes, Audit.FreeNodes);
  else
    EXPECT_EQ(Audit.PoisonedFreeNodes, 0u);

  // Recycled nodes must be fully reusable after the audit.
  for (uint64_t I = 0; I != N; ++I)
    T.insert(I * 32, I * 32 + 16, I);
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_TRUE(OmcValidator::validateTree(T).ok());
}

#if GTEST_HAS_DEATH_TEST
TEST(ArenaPoisonDeathTest, StaleNodeReadIsAnAsanReport) {
  // The literal use-after-free: dereference a recycled (poisoned) node.
  // Under ASan this must die with a use-after-poison report — the
  // poisoning contract turned a silent garbage read into a detected
  // violation. Without ASan there is nothing to arm, so skip.
  if (!check::asanActive())
    GTEST_SKIP() << "poisoning is a no-op without ASan";
  omc::IntervalBTree T;
  for (uint64_t I = 0; I != 4096; ++I)
    T.insert(I * 16, I * 16 + 8, I);
  for (uint64_t I = 0; I != 4096; ++I)
    ASSERT_TRUE(T.erase(I * 16));
  const auto *Stale =
      static_cast<const volatile uint8_t *>(OmcValidator::firstFreeNodeForTest(T));
  ASSERT_NE(Stale, nullptr);
  EXPECT_DEATH({ [[maybe_unused]] uint8_t Byte = *Stale; }, "use-after-poison");
}
#endif

//===----------------------------------------------------------------------===//
// OmcValidator: clean managers validate
//===----------------------------------------------------------------------===//

TEST(OmcValidatorTest, FreshManagerValidates) {
  omc::ObjectManager M;
  check::CheckReport Report = OmcValidator::validate(M);
  EXPECT_TRUE(Report.ok()) << Report.str();
}

TEST(OmcValidatorTest, ChurnedManagerValidates) {
  // Allocation churn with address reuse across sites, translations (to
  // populate both caches), pool splitting, and frees of unknown
  // addresses: all states the real pipeline produces must validate.
  omc::ObjectManager M;
  M.splitPoolSite(/*Site=*/9, /*ElementSize=*/16);
  uint64_t Time = 0;
  Rng R(1234);
  std::vector<uint64_t> Live;
  for (int Round = 0; Round != 2000; ++Round) {
    if (Live.empty() || R.nextBool(0.55)) {
      uint64_t Addr = 0x10000 + R.nextBelow(512) * 0x100;
      bool Overlaps = false;
      for (uint64_t L : Live)
        if (Addr < L + 0x100 && L < Addr + 0x100)
          Overlaps = true;
      if (Overlaps)
        continue;
      uint64_t Site = R.nextBelow(10);
      M.onAlloc(allocEvent(static_cast<trace::AllocSiteId>(Site), Addr,
                           /*Size=*/0x40 + R.nextBelow(0xc0), ++Time));
      Live.push_back(Addr);
    } else {
      size_t Pick = R.nextBelow(Live.size());
      M.onFree({Live[Pick], ++Time});
      Live.erase(Live.begin() + static_cast<ptrdiff_t>(Pick));
    }
    // Translations keep the shared and per-instruction caches hot.
    if (!Live.empty()) {
      uint64_t Addr = Live[R.nextBelow(Live.size())] + R.nextBelow(0x40);
      (void)M.translate(Addr);
      (void)M.translate(Addr, static_cast<trace::InstrId>(R.nextBelow(100)));
    }
    // Unknown frees are counted, never corrupting.
    if (R.nextBool(0.05))
      M.onFree({0xdead0000 + R.nextBelow(64), ++Time});
    if (Round % 250 == 0) {
      check::CheckReport Report = OmcValidator::validate(M);
      ASSERT_TRUE(Report.ok()) << "round " << Round << ":\n" << Report.str();
    }
  }
  check::CheckReport Report = OmcValidator::validate(M);
  EXPECT_TRUE(Report.ok()) << Report.str();
  EXPECT_GT(M.stats().UnknownFrees, 0u);
}

//===----------------------------------------------------------------------===//
// OmcValidator: injected corruptions are caught
//===----------------------------------------------------------------------===//

namespace {

/// Gives \p M a few live objects, translated so both caches are hot.
void fillBusyManager(omc::ObjectManager &M) {
  uint64_t Time = 0;
  for (uint64_t I = 0; I != 8; ++I)
    M.onAlloc(allocEvent(static_cast<trace::AllocSiteId>(I % 3),
                         0x1000 + I * 0x100, 0x80, ++Time));
  for (uint64_t I = 0; I != 8; ++I) {
    (void)M.translate(0x1000 + I * 0x100 + 8);
    (void)M.translate(0x1000 + I * 0x100 + 16,
                      static_cast<trace::InstrId>(I));
  }
}

} // namespace

TEST(OmcValidatorTest, CatchesSharedCacheStale) {
  omc::ObjectManager M;
  fillBusyManager(M);
  ASSERT_TRUE(OmcValidator::validate(M).ok());
  ASSERT_TRUE(OmcValidator::injectForTest(
      M, OmcValidator::Corruption::SharedCacheStale));
  EXPECT_FALSE(OmcValidator::validate(M).ok());
}

TEST(OmcValidatorTest, CatchesInstrCacheStale) {
  omc::ObjectManager M;
  fillBusyManager(M);
  ASSERT_TRUE(OmcValidator::injectForTest(
      M, OmcValidator::Corruption::InstrCacheStale));
  EXPECT_FALSE(OmcValidator::validate(M).ok());
}

TEST(OmcValidatorTest, CatchesSerialRegression) {
  omc::ObjectManager M;
  fillBusyManager(M);
  ASSERT_TRUE(OmcValidator::injectForTest(
      M, OmcValidator::Corruption::SerialRegression));
  EXPECT_FALSE(OmcValidator::validate(M).ok());
}

TEST(OmcValidatorTest, CatchesPageTableStale) {
  // fillBusyManager's translations populate the flat-hash page tier, so
  // the injected stale entry sits among genuinely-hot pages.
  omc::ObjectManager M;
  fillBusyManager(M);
  ASSERT_TRUE(OmcValidator::validate(M).ok());
  ASSERT_TRUE(OmcValidator::injectForTest(
      M, OmcValidator::Corruption::PageTableStale));
  EXPECT_FALSE(OmcValidator::validate(M).ok());
}

//===----------------------------------------------------------------------===//
// IntervalBTree adversarial churn (validated through the OMC validator)
//===----------------------------------------------------------------------===//

TEST(BTreeAdversarialTest, InterleavedSplitMergeChurn) {
  // Interleave insert bursts (forcing splits) with erase sweeps (forcing
  // leaf unlinks and root collapses), validating continuously.
  omc::IntervalBTree T;
  Rng R(99);
  std::vector<uint64_t> Starts;
  uint64_t NextVal = 0;
  for (int Round = 0; Round != 60; ++Round) {
    // Insert burst at a random base so splits happen mid-keyspace too.
    uint64_t Base = R.nextBelow(1u << 20) << 8;
    for (uint64_t I = 0; I != 64; ++I) {
      uint64_t Start = Base + I * 32;
      if (!T.overlapsRange(Start, Start + 24)) {
        T.insert(Start, Start + 24, NextVal++);
        Starts.push_back(Start);
      }
    }
    // Erase sweep of ~half the population, randomized order.
    for (uint64_t I = 0; I != 40 && !Starts.empty(); ++I) {
      size_t Pick = R.nextBelow(Starts.size());
      EXPECT_TRUE(T.erase(Starts[Pick]));
      Starts.erase(Starts.begin() + static_cast<ptrdiff_t>(Pick));
    }
    // Erase of unknown starts must be a clean no-op.
    EXPECT_FALSE(T.erase(Base + 7));
    check::CheckReport Report = OmcValidator::validateTree(T);
    ASSERT_TRUE(Report.ok()) << "round " << Round << ":\n" << Report.str();
    ASSERT_EQ(T.size(), Starts.size());
  }
  // Drain to empty and grow again: recycled nodes must behave.
  for (uint64_t S : Starts)
    EXPECT_TRUE(T.erase(S));
  EXPECT_EQ(T.size(), 0u);
  for (uint64_t I = 0; I != 512; ++I)
    T.insert(I * 64, I * 64 + 48, I);
  EXPECT_TRUE(OmcValidator::validateTree(T).ok());
}

TEST(BTreeAdversarialTest, OverlappingReallocationsThroughManager) {
  // The vpr/parser pattern: the allocator hands back overlapping address
  // ranges over time (never concurrently). Free-then-realloc at shifted
  // bases must keep the live index exact and the caches coherent.
  omc::ObjectManager M;
  uint64_t Time = 0;
  for (int Round = 0; Round != 300; ++Round) {
    uint64_t Base = 0x4000 + (Round % 7) * 0x30; // Overlaps across rounds.
    M.onAlloc(allocEvent(/*Site=*/1, Base, 0x100, ++Time));
    auto Tr = M.translate(Base + 0x20, /*Instr=*/5);
    ASSERT_TRUE(Tr.has_value());
    M.onFree({Base, ++Time});
    // The freed range must no longer translate (cache invalidation).
    EXPECT_FALSE(M.translate(Base + 0x20, /*Instr=*/5).has_value());
    if (Round % 50 == 0) {
      check::CheckReport Report = OmcValidator::validate(M);
      ASSERT_TRUE(Report.ok()) << Report.str();
    }
  }
  EXPECT_TRUE(OmcValidator::validate(M).ok());
  EXPECT_EQ(M.numLiveObjects(), 0u);
}

//===----------------------------------------------------------------------===//
// Check runtime basics
//===----------------------------------------------------------------------===//

TEST(CheckRuntimeTest, LevelMatchesBuildConfiguration) {
  EXPECT_EQ(check::Level, ORP_CHECK_LEVEL);
  EXPECT_GE(check::Level, 0);
  EXPECT_LE(check::Level, 2);
}

TEST(CheckRuntimeTest, ScopedUnpoisonRestoresPoison) {
  if (!check::asanActive())
    GTEST_SKIP() << "poisoning is a no-op without ASan";
  alignas(8) static uint8_t Buffer[64];
  check::poisonRegion(Buffer, sizeof(Buffer));
  EXPECT_TRUE(check::isPoisoned(Buffer));
  {
    check::ScopedUnpoison Window(Buffer, sizeof(Buffer));
    EXPECT_FALSE(check::isPoisoned(Buffer));
  }
  EXPECT_TRUE(check::isPoisoned(Buffer));
  check::unpoisonRegion(Buffer, sizeof(Buffer));
  EXPECT_FALSE(check::isPoisoned(Buffer));
}
