//===- tests/telemetry_test.cpp - Telemetry subsystem tests --------------===//
//
// Coverage for src/telemetry: metric primitives (counter, gauge,
// histogram, phase timer), the sharded-cell aggregation under real
// thread contention, the global registry (lookup identity, collector
// RAII, enable gating, value reset), both exporters, and the
// MetricsTicker cadence. The registry is process-global, so every test
// uses metric names under its own "test.<suite>." prefix and asserts
// on deltas, never on absolute process-wide state.
//
//===----------------------------------------------------------------------===//

#include "support/WorkerPool.h"
#include "telemetry/Metric.h"
#include "telemetry/Registry.h"
#include "telemetry/Snapshot.h"
#include "trace/MetricsTicker.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace orp;

namespace {

telemetry::Registry &reg() { return telemetry::Registry::global(); }

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "orp_telemetry_" + Name;
}

std::string slurp(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return "";
  std::string Out;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Metric primitives
//===----------------------------------------------------------------------===//

TEST(TelemetryCounterTest, AddAndValue) {
  telemetry::Counter C;
  EXPECT_EQ(C.value(), 0u);
  C.add();
  C.add(41);
  EXPECT_EQ(C.value(), 42u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

TEST(TelemetryGaugeTest, SetAddUpdateMax) {
  telemetry::Gauge G;
  G.set(-5);
  EXPECT_EQ(G.value(), -5);
  G.add(15);
  EXPECT_EQ(G.value(), 10);
  G.updateMax(7);
  EXPECT_EQ(G.value(), 10) << "updateMax must not lower the value";
  G.updateMax(99);
  EXPECT_EQ(G.value(), 99);
  G.reset();
  EXPECT_EQ(G.value(), 0);
}

TEST(TelemetryHistogramTest, BucketOfEdgeCases) {
  using H = telemetry::Histogram;
  // bucketOf(v) is the number of significant bits: bucket 0 holds only
  // zero, bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(H::bucketOf(0), 0u);
  EXPECT_EQ(H::bucketOf(1), 1u);
  EXPECT_EQ(H::bucketOf(2), 2u);
  EXPECT_EQ(H::bucketOf(3), 2u);
  EXPECT_EQ(H::bucketOf(4), 3u);
  EXPECT_EQ(H::bucketOf(1023), 10u);
  EXPECT_EQ(H::bucketOf(1024), 11u);
  // Everything with >= kBuckets significant bits clamps into the last
  // (unbounded) bucket.
  EXPECT_EQ(H::bucketOf(uint64_t(1) << 40), H::kBuckets - 1);
  EXPECT_EQ(H::bucketOf(~uint64_t(0)), H::kBuckets - 1);
}

TEST(TelemetryHistogramTest, BucketBoundsMatchBucketOf) {
  using H = telemetry::Histogram;
  for (size_t B = 0; B + 1 < H::kBuckets; ++B) {
    uint64_t Bound = H::bucketBound(B);
    // The bound itself lands in bucket B; bound+1 in the next.
    EXPECT_EQ(H::bucketOf(Bound), B) << "bound " << Bound;
    EXPECT_EQ(H::bucketOf(Bound + 1), B + 1) << "bound " << Bound;
  }
}

TEST(TelemetryHistogramTest, RecordAggregates) {
  telemetry::Histogram H;
  H.record(0);
  H.record(1);
  H.record(5);
  H.record(5);
  EXPECT_EQ(H.count(), 4u);
  EXPECT_EQ(H.sum(), 11u);
  EXPECT_EQ(H.bucketCount(0), 1u); // the zero
  EXPECT_EQ(H.bucketCount(1), 1u); // the one
  EXPECT_EQ(H.bucketCount(3), 2u); // the fives (3 significant bits)
  EXPECT_EQ(H.bucketCount(2), 0u);
}

TEST(TelemetryPhaseTimerTest, ScopedTimerRecords) {
  telemetry::PhaseTimer T;
  {
    telemetry::ScopedTimer S(T);
  }
  {
    telemetry::ScopedTimer S(T);
  }
  EXPECT_EQ(T.count(), 2u);
  // Nanoseconds elapsed are clock-dependent; only monotonicity of the
  // aggregate is testable.
  uint64_t Total = T.totalNanos();
  {
    telemetry::ScopedTimer S(T);
  }
  EXPECT_GE(T.totalNanos(), Total);
  EXPECT_EQ(T.count(), 3u);
}

TEST(TelemetryEnableTest, DisabledMetricsDropUpdates) {
  telemetry::Counter C;
  telemetry::Histogram H;
  telemetry::PhaseTimer T;
  telemetry::setEnabled(false);
  C.add(10);
  H.record(10);
  {
    telemetry::ScopedTimer S(T);
  }
  telemetry::setEnabled(true);
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(T.count(), 0u);
  C.add(1);
  EXPECT_EQ(C.value(), 1u) << "re-enabling restores recording";
}

//===----------------------------------------------------------------------===//
// Sharded aggregation under contention
//===----------------------------------------------------------------------===//

TEST(TelemetryConcurrencyTest, CountersAndHistogramsMatchGroundTruth) {
  constexpr unsigned kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  telemetry::Counter &C = reg().counter("test.concurrency.ops");
  telemetry::Histogram &H = reg().histogram("test.concurrency.sizes");
  C.reset();
  H.reset();

  {
    std::vector<std::unique_ptr<support::ScopedThread>> Threads;
    for (unsigned T = 0; T != kThreads; ++T)
      Threads.push_back(std::make_unique<support::ScopedThread>([T] {
        // Concurrent name lookups exercise the registry lock; the
        // returned references must be the same objects in every thread.
        telemetry::Counter &MyC = reg().counter("test.concurrency.ops");
        telemetry::Histogram &MyH = reg().histogram("test.concurrency.sizes");
        for (uint64_t I = 0; I != kPerThread; ++I) {
          MyC.add();
          MyH.record((T * kPerThread + I) % 1024);
        }
      }));
  } // ScopedThread joins on destruction.

  EXPECT_EQ(C.value(), kThreads * kPerThread);
  EXPECT_EQ(H.count(), kThreads * kPerThread);
  uint64_t Sum = 0;
  for (unsigned T = 0; T != kThreads; ++T)
    for (uint64_t I = 0; I != kPerThread; ++I)
      Sum += (T * kPerThread + I) % 1024;
  EXPECT_EQ(H.sum(), Sum);

  telemetry::MetricsSnapshot S = reg().snapshot();
  EXPECT_EQ(S.counter("test.concurrency.ops"), kThreads * kPerThread);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(TelemetryRegistryTest, LookupReturnsSameInstance) {
  telemetry::Counter &A = reg().counter("test.registry.same");
  telemetry::Counter &B = reg().counter("test.registry.same");
  EXPECT_EQ(&A, &B);
  telemetry::Gauge &G1 = reg().gauge("test.registry.gauge");
  telemetry::Gauge &G2 = reg().gauge("test.registry.gauge");
  EXPECT_EQ(&G1, &G2);
}

TEST(TelemetryRegistryTest, CollectorRunsAtSnapshotAndUnregisters) {
  int Runs = 0;
  {
    telemetry::CollectorHandle Handle =
        reg().addCollector([&Runs](telemetry::Registry &R) {
          ++Runs;
          R.gauge("test.registry.collected").set(123);
        });
    telemetry::MetricsSnapshot S = reg().snapshot();
    EXPECT_EQ(Runs, 1);
    EXPECT_EQ(S.gauge("test.registry.collected"), 123);
  }
  // Handle destroyed: the collector must not run again.
  (void)reg().snapshot();
  EXPECT_EQ(Runs, 1);
}

TEST(TelemetryRegistryTest, CollectorHandleMoveKeepsRegistration) {
  int Runs = 0;
  telemetry::CollectorHandle Outer;
  {
    telemetry::CollectorHandle Inner =
        reg().addCollector([&Runs](telemetry::Registry &) { ++Runs; });
    Outer = std::move(Inner);
  } // Inner (moved-from) destroyed: must not unregister.
  (void)reg().snapshot();
  EXPECT_EQ(Runs, 1);
  Outer.release();
  (void)reg().snapshot();
  EXPECT_EQ(Runs, 1) << "release() unregisters";
}

TEST(TelemetryRegistryTest, SnapshotSectionsAreSorted) {
  reg().counter("test.sorted.b");
  reg().counter("test.sorted.a");
  telemetry::MetricsSnapshot S = reg().snapshot();
  for (size_t I = 1; I < S.Counters.size(); ++I)
    EXPECT_LT(S.Counters[I - 1].Name, S.Counters[I].Name);
  for (size_t I = 1; I < S.Gauges.size(); ++I)
    EXPECT_LT(S.Gauges[I - 1].Name, S.Gauges[I].Name);
}

TEST(TelemetryRegistryTest, SnapshotFoldsLogCounters) {
  telemetry::MetricsSnapshot S = reg().snapshot();
  // The log sink bridge publishes all four severities unconditionally.
  bool FoundInfo = false, FoundError = false;
  for (const auto &G : S.Gauges) {
    FoundInfo |= G.Name == "log.info";
    FoundError |= G.Name == "log.error";
  }
  EXPECT_TRUE(FoundInfo);
  EXPECT_TRUE(FoundError);
}

TEST(TelemetryRegistryTest, ResetValuesClearsAggregates) {
  telemetry::Counter &C = reg().counter("test.reset.counter");
  C.add(7);
  reg().resetValues();
  EXPECT_EQ(C.value(), 0u);
  EXPECT_EQ(reg().snapshot().counter("test.reset.counter"), 0u);
}

//===----------------------------------------------------------------------===//
// Exporters
//===----------------------------------------------------------------------===//

namespace {

/// A snapshot with one metric of each kind and known values.
telemetry::MetricsSnapshot sampleSnapshot() {
  telemetry::MetricsSnapshot S;
  S.Counters.push_back({"export.count", 42});
  S.Gauges.push_back({"export.gauge", -7});
  telemetry::MetricsSnapshot::HistogramValue H;
  H.Name = "export.hist";
  for (size_t B = 0; B != telemetry::Histogram::kBuckets; ++B) {
    H.Bounds.push_back(telemetry::Histogram::bucketBound(B));
    H.Buckets.push_back(0);
  }
  H.Buckets[1] = 3; // three values of 1
  H.Count = 3;
  H.Sum = 3;
  S.Histograms.push_back(H);
  S.Timers.push_back({"export.timer", 2, 1500});
  return S;
}

} // namespace

TEST(TelemetryExportTest, JsonShape) {
  std::string J = sampleSnapshot().toJson(/*Pretty=*/true);
  EXPECT_NE(J.find("\"version\": 1"), std::string::npos);
  EXPECT_NE(J.find("\"export.count\": 42"), std::string::npos);
  EXPECT_NE(J.find("\"export.gauge\": -7"), std::string::npos);
  EXPECT_NE(J.find("\"total_ns\": 1500"), std::string::npos);
  // Only the non-empty bucket is emitted; bound of bucket 1 is 1.
  EXPECT_NE(J.find("\"le\": 1"), std::string::npos);
  EXPECT_EQ(J.find("\"le\": 3"), std::string::npos)
      << "empty buckets are skipped";
}

TEST(TelemetryExportTest, CompactJsonIsOneLine) {
  std::string J = sampleSnapshot().toJson(/*Pretty=*/false);
  ASSERT_FALSE(J.empty());
  EXPECT_EQ(J.back(), '\n');
  EXPECT_EQ(J.find('\n'), J.size() - 1) << "compact form is a single line";
  EXPECT_EQ(J.find(' '), std::string::npos) << "no spaces in compact form";
}

TEST(TelemetryExportTest, PrometheusShape) {
  std::string P = sampleSnapshot().toPrometheus();
  EXPECT_NE(P.find("# TYPE orp_export_count counter\n"), std::string::npos);
  EXPECT_NE(P.find("orp_export_count 42\n"), std::string::npos);
  EXPECT_NE(P.find("orp_export_gauge -7\n"), std::string::npos);
  // Histogram: cumulative buckets ending in the mandatory +Inf.
  EXPECT_NE(P.find("orp_export_hist_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(P.find("orp_export_hist_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(P.find("orp_export_hist_count 3\n"), std::string::npos);
  EXPECT_NE(P.find("orp_export_hist_sum 3\n"), std::string::npos);
  EXPECT_NE(P.find("orp_export_timer_ns_total 1500\n"), std::string::npos);
}

TEST(TelemetryExportTest, WriteSnapshotTruncatesAndAppends) {
  std::string Path = tempPath("write.json");
  std::string Err;
  telemetry::MetricsSnapshot S = sampleSnapshot();
  ASSERT_TRUE(telemetry::writeSnapshot(
      S, Path, telemetry::SnapshotFormat::JsonCompact, /*Append=*/false,
      Err))
      << Err;
  std::string Once = slurp(Path);
  ASSERT_TRUE(telemetry::writeSnapshot(
      S, Path, telemetry::SnapshotFormat::JsonCompact, /*Append=*/true, Err))
      << Err;
  EXPECT_EQ(slurp(Path), Once + Once);
  ASSERT_TRUE(telemetry::writeSnapshot(
      S, Path, telemetry::SnapshotFormat::JsonCompact, /*Append=*/false,
      Err))
      << Err;
  EXPECT_EQ(slurp(Path), Once) << "non-append truncates";
  std::remove(Path.c_str());
}

TEST(TelemetryExportTest, WriteSnapshotReportsUnwritablePath) {
  std::string Err;
  EXPECT_FALSE(telemetry::writeSnapshot(
      sampleSnapshot(), "/nonexistent-dir/x.json",
      telemetry::SnapshotFormat::Json, /*Append=*/false, Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// MetricsTicker cadence
//===----------------------------------------------------------------------===//

TEST(MetricsTickerTest, EmitsOncePerIntervalCrossing) {
  int Emits = 0;
  trace::MetricsTicker Ticker(
      100, [&Emits](const telemetry::MetricsSnapshot &) { ++Emits; });
  trace::AccessEvent E{};
  for (int I = 0; I != 99; ++I)
    Ticker.onAccess(E);
  EXPECT_EQ(Emits, 0);
  Ticker.onAccess(E);
  EXPECT_EQ(Emits, 1);
  // A batch spanning several boundaries emits once per crossing.
  std::vector<trace::AccessEvent> Batch(250);
  Ticker.onAccessBatch(Batch);
  EXPECT_EQ(Emits, 3);
  EXPECT_EQ(Ticker.eventsSeen(), 350u);
}
