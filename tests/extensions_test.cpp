//===- tests/extensions_test.cpp - Extension feature tests ---------------===//
//
// Tests for the paper-adjacent extensions: pool splitting (Section 3.1
// footnote), grammar rule statistics and hot-data-stream extraction
// (Section 3.2's optimization consumers), phase-cognizant profiling
// (Section 6 future work), LEAP profile serialization, and the
// union-based conflict counting.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "analysis/HotStreams.h"
#include "analysis/Phases.h"
#include "core/ProfilingSession.h"
#include "leap/LeapProfileData.h"
#include "whomp/OmsgArchive.h"
#include "omc/ObjectManager.h"
#include "sequitur/Sequitur.h"
#include "support/Random.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace orp;

//===----------------------------------------------------------------------===//
// Pool splitting (OMC parameterization)
//===----------------------------------------------------------------------===//

namespace {

trace::AllocEvent poolAlloc(trace::AllocSiteId Site, uint64_t Addr,
                            uint64_t Size, uint64_t Time = 0) {
  return trace::AllocEvent{Site, Addr, Size, Time, false};
}

} // namespace

TEST(PoolSplitTest, ElementsBecomeObjects) {
  omc::ObjectManager O;
  O.splitPoolSite(5, /*ElementSize=*/32);
  O.onAlloc(poolAlloc(5, 0x1000, 4 * 32));
  auto T0 = O.translate(0x1000);
  auto T1 = O.translate(0x1020 + 8);
  auto T3 = O.translate(0x1060 + 31);
  ASSERT_TRUE(T0 && T1 && T3);
  EXPECT_EQ(T0->Object, 0u);
  EXPECT_EQ(T0->Offset, 0u);
  EXPECT_EQ(T1->Object, 1u);
  EXPECT_EQ(T1->Offset, 8u);
  EXPECT_EQ(T3->Object, 3u);
  EXPECT_EQ(T3->Offset, 31u);
}

TEST(PoolSplitTest, SerialsContinueAcrossPools) {
  omc::ObjectManager O;
  O.splitPoolSite(5, 32);
  O.onAlloc(poolAlloc(5, 0x1000, 2 * 32, 0));
  O.onAlloc(poolAlloc(5, 0x9000, 2 * 32, 1));
  auto T = O.translate(0x9020);
  ASSERT_TRUE(T);
  EXPECT_EQ(T->Object, 3u) << "second pool starts after the first's slots";
}

TEST(PoolSplitTest, UnsplitSitesUnaffected) {
  omc::ObjectManager O;
  O.splitPoolSite(5, 32);
  O.onAlloc(poolAlloc(5, 0x1000, 64, 0));
  O.onAlloc(poolAlloc(7, 0x2000, 64, 1));
  auto T = O.translate(0x2030);
  ASSERT_TRUE(T);
  EXPECT_EQ(T->Object, 0u);
  EXPECT_EQ(T->Offset, 0x30u);
}

TEST(PoolSplitTest, PartialTrailingElement) {
  omc::ObjectManager O;
  O.splitPoolSite(1, 32);
  O.onAlloc(poolAlloc(1, 0x1000, 40)); // 2 slots (one partial).
  auto T = O.translate(0x1000 + 39);
  ASSERT_TRUE(T);
  EXPECT_EQ(T->Object, 1u);
  EXPECT_EQ(T->Offset, 7u);
  // The next pool continues at serial 2.
  O.onAlloc(poolAlloc(1, 0x2000, 32));
  auto T2 = O.translate(0x2000);
  ASSERT_TRUE(T2);
  EXPECT_EQ(T2->Object, 2u);
}

TEST(PoolSplitTest, CachedTranslationsRespectSplit) {
  omc::ObjectManager O;
  O.splitPoolSite(1, 16);
  O.onAlloc(poolAlloc(1, 0x1000, 64));
  // Two consecutive translations of the same pool (second hits the
  // one-entry cache) must both apply the split.
  auto A = O.translate(0x1004);
  auto B = O.translate(0x1034);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->Object, 0u);
  EXPECT_EQ(B->Object, 3u);
  EXPECT_EQ(B->Offset, 4u);
}

//===----------------------------------------------------------------------===//
// Grammar rule statistics
//===----------------------------------------------------------------------===//

TEST(RuleStatsTest, PaperExampleCounts) {
  // "abcbcabcbc": S -> AA; A -> aBB; B -> bc.
  sequitur::SequiturGrammar G;
  for (char C : std::string("abcbcabcbc"))
    G.append(static_cast<uint64_t>(C));
  auto Stats = G.ruleStats();
  ASSERT_EQ(Stats.size(), 3u);
  EXPECT_EQ(Stats[0].Occurrences, 1u); // Start.
  EXPECT_EQ(Stats[0].ExpandedLength, 10u);
  // A occurs twice and expands to 5 terminals; B occurs 4 times (twice
  // per A), expanding to 2.
  const auto &A = Stats[1];
  const auto &B = Stats[2];
  EXPECT_EQ(A.Occurrences, 2u);
  EXPECT_EQ(A.ExpandedLength, 5u);
  EXPECT_EQ(B.Occurrences, 4u);
  EXPECT_EQ(B.ExpandedLength, 2u);
  EXPECT_EQ(B.Prefix, (std::vector<uint64_t>{'b', 'c'}));
}

TEST(RuleStatsTest, ExpansionIdentityHolds) {
  // Sum over rules of (occurrences x direct terminal count) must equal
  // the input length: every terminal position is produced by exactly one
  // terminal symbol in some rule body.
  Rng R(7);
  sequitur::SequiturGrammar G;
  for (int I = 0; I != 3000; ++I)
    G.append(R.nextBelow(4));
  uint64_t Total = 0;
  for (const auto &RS : G.ruleStats()) {
    // Direct terminals = expanded length minus expansions of referenced
    // rules; recompute from prefix is not possible, so use the
    // identity: sum(occ * expandedLen of rule) counted only for the
    // start rule equals the input; instead verify the cheaper identity
    // below on the start rule and monotonic sanity on the rest.
    if (RS.Id == 0)
      Total = RS.ExpandedLength;
    EXPECT_GE(RS.ExpandedLength, 1u);
    if (RS.Id != 0) {
      EXPECT_GE(RS.Occurrences, 2u) << "rule utility implies >= 2 uses";
    }
  }
  EXPECT_EQ(Total, 3000u);
}

//===----------------------------------------------------------------------===//
// Hot data streams
//===----------------------------------------------------------------------===//

TEST(HotStreamsTest, FindsThePeriodicPattern) {
  sequitur::SequiturGrammar G;
  for (int Rep = 0; Rep != 100; ++Rep)
    for (uint64_t S : {10, 20, 30, 40})
      G.append(S);
  auto Streams = analysis::extractHotStreams(G);
  ASSERT_FALSE(Streams.empty());
  // The hottest stream covers (almost) the whole input.
  EXPECT_GE(Streams.front().Heat, 300u);
  EXPECT_GE(Streams.front().Occurrences, 2u);
  // Its prefix is drawn from the repeating alphabet.
  for (uint64_t V : Streams.front().Prefix)
    EXPECT_TRUE(V == 10 || V == 20 || V == 30 || V == 40);
}

TEST(HotStreamsTest, RandomStreamHasLittleHeat) {
  Rng R(11);
  sequitur::SequiturGrammar G;
  for (int I = 0; I != 2000; ++I)
    G.append(R.next()); // Effectively unique symbols.
  auto Streams = analysis::extractHotStreams(G);
  EXPECT_TRUE(Streams.empty());
}

TEST(HotStreamsTest, OptionsFilterShortAndRare) {
  sequitur::SequiturGrammar G;
  for (int Rep = 0; Rep != 50; ++Rep)
    for (uint64_t S : {1, 2})
      G.append(S);
  analysis::HotStreamOptions Opt;
  Opt.MinLength = 1000; // Nothing is that long.
  EXPECT_TRUE(analysis::extractHotStreams(G, Opt).empty());
}

TEST(HotStreamsTest, SortedByHeatDescending) {
  Rng R(13);
  sequitur::SequiturGrammar G;
  for (int Rep = 0; Rep != 60; ++Rep) {
    for (uint64_t S : {1, 2, 3, 4, 5, 6, 7, 8})
      G.append(S);
    G.append(100 + R.nextBelow(50)); // Noise between repeats.
  }
  auto Streams = analysis::extractHotStreams(G);
  for (size_t I = 1; I < Streams.size(); ++I)
    EXPECT_GE(Streams[I - 1].Heat, Streams[I].Heat);
}

//===----------------------------------------------------------------------===//
// Phase detection
//===----------------------------------------------------------------------===//

namespace {

core::OrTuple phaseTuple(omc::GroupId Group, uint64_t Time) {
  return core::OrTuple{0, Group, 0, 0, Time, false, 8};
}

} // namespace

TEST(PhaseDetectorTest, TwoCleanPhases) {
  analysis::PhaseDetector D(/*IntervalSize=*/100, /*Threshold=*/0.5);
  uint64_t T = 0;
  for (int I = 0; I != 1000; ++I)
    D.consume(phaseTuple(0, T++));
  for (int I = 0; I != 1000; ++I)
    D.consume(phaseTuple(1, T++));
  D.finish();
  ASSERT_EQ(D.phases().size(), 2u);
  EXPECT_EQ(D.phases()[0].Accesses, 1000u);
  EXPECT_EQ(D.phases()[1].Accesses, 1000u);
  EXPECT_NE(D.phases()[0].ClassId, D.phases()[1].ClassId);
  EXPECT_EQ(D.phases()[0].DominantGroups.front().first, 0u);
  EXPECT_EQ(D.phases()[1].DominantGroups.front().first, 1u);
}

TEST(PhaseDetectorTest, RecurringPhasesShareAClass) {
  analysis::PhaseDetector D(100, 0.5);
  uint64_t T = 0;
  for (int Rep = 0; Rep != 3; ++Rep) {
    for (int I = 0; I != 500; ++I)
      D.consume(phaseTuple(0, T++));
    for (int I = 0; I != 500; ++I)
      D.consume(phaseTuple(1, T++));
  }
  D.finish();
  ASSERT_EQ(D.phases().size(), 6u);
  EXPECT_EQ(D.numClasses(), 2u);
  EXPECT_EQ(D.phases()[0].ClassId, D.phases()[2].ClassId);
  EXPECT_EQ(D.phases()[1].ClassId, D.phases()[3].ClassId);
}

TEST(PhaseDetectorTest, StablMixIsOnePhase) {
  analysis::PhaseDetector D(200, 0.5);
  Rng R(3);
  for (int I = 0; I != 4000; ++I)
    D.consume(phaseTuple(static_cast<omc::GroupId>(R.nextBelow(4)),
                         static_cast<uint64_t>(I)));
  D.finish();
  EXPECT_EQ(D.phases().size(), 1u);
  EXPECT_EQ(D.numClasses(), 1u);
}

TEST(PhaseDetectorTest, DetectsWorkloadInitVsSteadyState) {
  // The mcf analogue has a build phase (netbuf + init stores) and a
  // pricing phase; the detector should find more than one phase and a
  // bounded number of classes.
  core::ProfilingSession Session;
  analysis::PhaseDetector D(20000, 0.6);
  Session.addConsumer(&D);
  auto W = workloads::createMcfA();
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();
  EXPECT_GE(D.phases().size(), 2u);
  EXPECT_LE(D.numClasses(), 8u);
  uint64_t Sum = 0;
  for (const auto &P : D.phases())
    Sum += P.Accesses;
  EXPECT_GT(Sum, 100000u);
}

//===----------------------------------------------------------------------===//
// LEAP profile serialization
//===----------------------------------------------------------------------===//

TEST(LeapProfileDataTest, RoundTripOnWorkloadProfile) {
  core::ProfilingSession Session;
  leap::LeapProfiler Leap;
  Session.addConsumer(&Leap);
  auto W = workloads::createListTraversal();
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  auto Data = leap::LeapProfileData::fromProfiler(Leap);
  auto Bytes = Data.serialize();
  EXPECT_FALSE(Bytes.empty());
  leap::LeapProfileData Back;
  std::string Err;
  ASSERT_TRUE(leap::LeapProfileData::deserialize(Bytes, Back, Err)) << Err;
  EXPECT_TRUE(Data == Back);
  EXPECT_EQ(Back.substreams().size(), Data.substreams().size());
  EXPECT_EQ(Back.instructions().size(), Data.instructions().size());
}

TEST(LeapProfileDataTest, CapturesOverflowSummaries) {
  leap::LeapProfiler Leap(/*MaxLmads=*/2);
  Rng R(5);
  for (int I = 0; I != 500; ++I)
    Leap.consume(core::OrTuple{1, 0, R.nextBelow(100),
                               R.nextBelow(64) * 8,
                               static_cast<uint64_t>(I), false, 8});
  auto Data = leap::LeapProfileData::fromProfiler(Leap);
  leap::LeapProfileData Back;
  std::string Err;
  ASSERT_TRUE(leap::LeapProfileData::deserialize(Data.serialize(), Back, Err))
      << Err;
  const auto &Sub = Back.substreams().begin()->second;
  EXPECT_GT(Sub.Overflow.Dropped, 0u);
  EXPECT_EQ(Sub.TotalPoints, 500u);
}

//===----------------------------------------------------------------------===//
// Union conflict counting
//===----------------------------------------------------------------------===//

namespace {

lmad::Lmad mk(int64_t Obj, int64_t ObjS, int64_t Off, int64_t OffS,
              int64_t T, int64_t TS, uint64_t Count) {
  lmad::Lmad L;
  L.Dims = 3;
  L.Start = {Obj, Off, T};
  L.Stride = {ObjS, OffS, TS};
  L.Count = Count;
  return L;
}

/// How many load executions conflict with at least one store in
/// \p Stores, by enumeration.
uint64_t bruteUnion(const std::vector<lmad::Lmad> &Stores,
                    const lmad::Lmad &Load) {
  uint64_t N = 0;
  for (uint64_t K2 = 0; K2 != Load.Count; ++K2) {
    bool Conflict = false;
    for (const auto &St : Stores)
      for (uint64_t K1 = 0; K1 != St.Count && !Conflict; ++K1)
        Conflict = St.at(K1, 0) == Load.at(K2, 0) &&
                   St.at(K1, 1) == Load.at(K2, 1) &&
                   St.at(K1, 2) < Load.at(K2, 2);
    N += Conflict;
  }
  return N;
}

} // namespace

TEST(UnionConflictsTest, OverlappingStoreFragmentsCountOnce) {
  // Two store sweeps write the same offsets before one load sweep: each
  // load conflicts with both, but must be counted once.
  std::vector<lmad::Lmad> Stores = {mk(0, 0, 0, 8, 0, 1, 50),
                                    mk(0, 0, 0, 8, 100, 1, 50)};
  lmad::Lmad Load = mk(0, 0, 0, 8, 1000, 1, 50);
  std::vector<analysis::ConflictRun> Runs;
  for (const auto &St : Stores)
    analysis::collectConflictRuns(St, Load, Runs);
  EXPECT_EQ(analysis::countUnionConflicts(Runs), 50u);
  EXPECT_EQ(bruteUnion(Stores, Load), 50u);
}

TEST(UnionConflictsTest, DisjointFragmentsSum) {
  std::vector<lmad::Lmad> Stores = {mk(0, 0, 0, 8, 0, 1, 25),
                                    mk(0, 0, 200, 8, 100, 1, 25)};
  lmad::Lmad Load = mk(0, 0, 0, 8, 1000, 1, 50);
  std::vector<analysis::ConflictRun> Runs;
  for (const auto &St : Stores)
    analysis::collectConflictRuns(St, Load, Runs);
  EXPECT_EQ(analysis::countUnionConflicts(Runs), bruteUnion(Stores, Load));
}

TEST(UnionConflictsTest, MatchesBruteForceOnRandomFragments) {
  Rng R(17);
  for (int Trial = 0; Trial != 800; ++Trial) {
    std::vector<lmad::Lmad> Stores;
    unsigned NumStores = 1 + R.nextBelow(4);
    for (unsigned S = 0; S != NumStores; ++S)
      Stores.push_back(mk(R.nextInRange(0, 3), R.nextInRange(-1, 1),
                          R.nextInRange(0, 20) * 4,
                          R.nextInRange(-2, 2) * 4,
                          R.nextInRange(0, 40), R.nextInRange(0, 3),
                          1 + R.nextBelow(10)));
    lmad::Lmad Load = mk(R.nextInRange(0, 3), R.nextInRange(-1, 1),
                         R.nextInRange(0, 20) * 4,
                         R.nextInRange(-2, 2) * 4,
                         R.nextInRange(0, 40), R.nextInRange(0, 3),
                         1 + R.nextBelow(10));
    std::vector<analysis::ConflictRun> Runs;
    for (const auto &St : Stores)
      analysis::collectConflictRuns(St, Load, Runs);
    uint64_t Got = analysis::countUnionConflicts(Runs);
    uint64_t Want = bruteUnion(Stores, Load);
    // Unit-step runs deduplicate exactly; coarser-step overlap may
    // overcount (documented upper bound). Require exactness when all
    // runs are unit-step, and the bound otherwise.
    bool AllUnit = true;
    for (const auto &Run : Runs)
      AllUnit &= Run.Step == 1 || Run.Lo == Run.Hi;
    if (AllUnit)
      ASSERT_EQ(Got, Want) << "trial " << Trial;
    else
      ASSERT_GE(Got, Want) << "trial " << Trial;
  }
}

TEST(UnionConflictsTest, ConflictRunSize) {
  analysis::ConflictRun R1{0, 9, 1};
  EXPECT_EQ(R1.size(), 10u);
  analysis::ConflictRun R2{0, 9, 3}; // 0, 3, 6, 9.
  EXPECT_EQ(R2.size(), 4u);
  analysis::ConflictRun R3{5, 5, 7};
  EXPECT_EQ(R3.size(), 1u);
}

//===----------------------------------------------------------------------===//
// OMC translation cache
//===----------------------------------------------------------------------===//

TEST(OmcCacheTest, FreeInvalidatesCachedObject) {
  omc::ObjectManager O;
  O.onAlloc(poolAlloc(0, 0x1000, 64, 0));
  ASSERT_TRUE(O.translate(0x1000)); // Warm the cache.
  O.onFree(trace::FreeEvent{0x1000, 1});
  EXPECT_FALSE(O.translate(0x1010)) << "stale cache hit after free";
}

TEST(OmcCacheTest, ReuseAfterFreeTranslatesToNewObject) {
  omc::ObjectManager O;
  O.onAlloc(poolAlloc(0, 0x1000, 64, 0));
  ASSERT_TRUE(O.translate(0x1008));
  O.onFree(trace::FreeEvent{0x1000, 1});
  O.onAlloc(poolAlloc(1, 0x1000, 64, 2));
  auto T = O.translate(0x1008);
  ASSERT_TRUE(T);
  EXPECT_EQ(T->Group, O.groupForSite(1));
  EXPECT_EQ(T->Object, 0u);
}

//===----------------------------------------------------------------------===//
// OMSG archive
//===----------------------------------------------------------------------===//

TEST(OmsgArchiveTest, RoundTripWithAuxTable) {
  core::ProfilingSession Session;
  whomp::WhompProfiler Whomp;
  Session.addConsumer(&Whomp);
  auto W = workloads::createListTraversal();
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  auto Archive = whomp::OmsgArchive::build(Whomp, &Session.omc());
  EXPECT_EQ(Archive.dimensionStreams().size(), 4u);
  EXPECT_GT(Archive.accessCount(), 0u);
  EXPECT_FALSE(Archive.objects().empty());

  auto Bytes = Archive.serialize();
  whomp::OmsgArchive Back;
  std::string Err;
  ASSERT_TRUE(whomp::OmsgArchive::deserialize(Bytes, Back, Err)) << Err;
  EXPECT_TRUE(Archive == Back);
  EXPECT_EQ(Back.accessCount(), Whomp.tuplesSeen());
}

TEST(OmsgArchiveTest, AuxTableOmitsRawAddresses) {
  // The archive's auxiliary rows carry lifetimes and sizes, never raw
  // bases — the run-dependent data stays out of the invariant profile.
  core::ProfilingSession A(memsim::AllocPolicy::FirstFit, 1);
  core::ProfilingSession B(memsim::AllocPolicy::Segregated, 999);
  whomp::WhompProfiler WhompA, WhompB;
  A.addConsumer(&WhompA);
  B.addConsumer(&WhompB);
  workloads::WorkloadConfig Config;
  workloads::createListTraversal()->run(A.memory(), A.registry(), Config);
  workloads::createListTraversal()->run(B.memory(), B.registry(), Config);
  A.finish();
  B.finish();
  auto ArchiveA = whomp::OmsgArchive::build(WhompA, &A.omc());
  auto ArchiveB = whomp::OmsgArchive::build(WhompB, &B.omc());
  EXPECT_TRUE(ArchiveA == ArchiveB)
      << "the whole archive must be environment-invariant";
  EXPECT_EQ(ArchiveA.serialize(), ArchiveB.serialize());
}

TEST(OmsgArchiveTest, BuildWithoutOmcHasNoAux) {
  core::ProfilingSession Session;
  whomp::WhompProfiler Whomp;
  Session.addConsumer(&Whomp);
  workloads::WorkloadConfig Config;
  workloads::createListTraversal()->run(Session.memory(),
                                        Session.registry(), Config);
  Session.finish();
  auto Archive = whomp::OmsgArchive::build(Whomp);
  EXPECT_TRUE(Archive.objects().empty());
  whomp::OmsgArchive Back;
  std::string Err;
  ASSERT_TRUE(whomp::OmsgArchive::deserialize(Archive.serialize(), Back, Err))
      << Err;
  EXPECT_TRUE(Archive == Back);
}
