//===- tests/memsim_test.cpp - Memory simulator unit tests ---------------===//

#include "memsim/AddressSpace.h"
#include "memsim/Allocator.h"
#include "memsim/FreeListAllocator.h"
#include "memsim/SegregatedAllocator.h"
#include "memsim/StaticLayout.h"
#include "memsim/TieredAddressSpace.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

using namespace orp;
using namespace orp::memsim;

TEST(AddressSpaceTest, Classification) {
  EXPECT_EQ(classifyAddress(AddressSpaceLayout::StaticBase),
            SegmentKind::Static);
  EXPECT_EQ(classifyAddress(AddressSpaceLayout::HeapBase),
            SegmentKind::Heap);
  EXPECT_EQ(classifyAddress(AddressSpaceLayout::StackBase),
            SegmentKind::Stack);
  EXPECT_EQ(classifyAddress(0), SegmentKind::Unmapped);
  EXPECT_EQ(classifyAddress(AddressSpaceLayout::HeapLimit),
            SegmentKind::Unmapped);
}

TEST(AllocPolicyTest, Names) {
  EXPECT_STREQ(allocPolicyName(AllocPolicy::FirstFit), "first-fit");
  EXPECT_STREQ(allocPolicyName(AllocPolicy::BestFit), "best-fit");
  EXPECT_STREQ(allocPolicyName(AllocPolicy::NextFit), "next-fit");
  EXPECT_STREQ(allocPolicyName(AllocPolicy::Segregated), "segregated");
}

//===----------------------------------------------------------------------===//
// Per-policy allocator behavior (parameterized)
//===----------------------------------------------------------------------===//

class AllocatorPolicyTest : public ::testing::TestWithParam<AllocPolicy> {};

TEST_P(AllocatorPolicyTest, AllocationsAreInHeapAndAligned) {
  auto A = createAllocator(GetParam(), 1);
  for (uint64_t Align : {1ULL, 8ULL, 16ULL, 64ULL, 256ULL}) {
    uint64_t Addr = A->allocate(40, Align);
    ASSERT_NE(Addr, 0u);
    EXPECT_EQ(Addr % Align, 0u);
    EXPECT_EQ(classifyAddress(Addr), SegmentKind::Heap);
  }
}

TEST_P(AllocatorPolicyTest, ZeroSizeBehavesAsOne) {
  auto A = createAllocator(GetParam(), 1);
  uint64_t Addr = A->allocate(0, 16);
  ASSERT_NE(Addr, 0u);
  EXPECT_EQ(A->liveBlockSize(Addr), 1u);
}

TEST_P(AllocatorPolicyTest, BadAlignmentFails) {
  auto A = createAllocator(GetParam(), 1);
  EXPECT_EQ(A->allocate(8, 3), 0u);
  EXPECT_EQ(A->allocate(8, 0), 0u);
  EXPECT_EQ(A->stats().FailedAllocs, 2u);
}

TEST_P(AllocatorPolicyTest, LiveBlockSizeTracksPayload) {
  auto A = createAllocator(GetParam(), 1);
  uint64_t Addr = A->allocate(123, 16);
  EXPECT_EQ(A->liveBlockSize(Addr), 123u);
  A->deallocate(Addr);
  EXPECT_EQ(A->liveBlockSize(Addr), 0u);
}

TEST_P(AllocatorPolicyTest, NoOverlapAmongLiveBlocks) {
  auto A = createAllocator(GetParam(), 7);
  Rng R(99);
  std::map<uint64_t, uint64_t> Live; // addr -> size
  for (int I = 0; I != 3000; ++I) {
    if (!Live.empty() && R.nextBool(0.45)) {
      auto It = Live.begin();
      std::advance(It, R.nextBelow(Live.size()));
      A->deallocate(It->first);
      Live.erase(It);
      continue;
    }
    uint64_t Size = 1 + R.nextBelow(300);
    uint64_t Addr = A->allocate(Size, 16);
    ASSERT_NE(Addr, 0u);
    // Check against neighbors in address order.
    auto Next = Live.lower_bound(Addr);
    if (Next != Live.end()) {
      ASSERT_LE(Addr + Size, Next->first) << "overlap with next block";
    }
    if (Next != Live.begin()) {
      auto Prev = std::prev(Next);
      ASSERT_LE(Prev->first + Prev->second, Addr)
          << "overlap with previous block";
    }
    Live.emplace(Addr, Size);
  }
  EXPECT_EQ(A->stats().LiveBytes,
            [&] {
              uint64_t Sum = 0;
              for (auto &[Addr, Size] : Live)
                Sum += Size;
              return Sum;
            }());
}

TEST_P(AllocatorPolicyTest, StatsAccumulate) {
  auto A = createAllocator(GetParam(), 1);
  uint64_t X = A->allocate(100, 16);
  uint64_t Y = A->allocate(200, 16);
  EXPECT_EQ(A->stats().AllocCalls, 2u);
  EXPECT_EQ(A->stats().BytesRequested, 300u);
  EXPECT_EQ(A->stats().LiveBytes, 300u);
  EXPECT_EQ(A->stats().PeakLiveBytes, 300u);
  A->deallocate(X);
  A->deallocate(Y);
  EXPECT_EQ(A->stats().FreeCalls, 2u);
  EXPECT_EQ(A->stats().LiveBytes, 0u);
  EXPECT_EQ(A->stats().PeakLiveBytes, 300u);
}

TEST_P(AllocatorPolicyTest, SeedChangesLayout) {
  auto A = createAllocator(GetParam(), 1);
  auto B = createAllocator(GetParam(), 999);
  EXPECT_NE(A->allocate(64, 16), B->allocate(64, 16));
}

TEST_P(AllocatorPolicyTest, AddressReuseAfterFree) {
  // The paper's central artifact: freed memory is reused for unrelated
  // later allocations.
  auto A = createAllocator(GetParam(), 3);
  std::vector<uint64_t> First;
  for (int I = 0; I != 50; ++I)
    First.push_back(A->allocate(48, 16));
  for (uint64_t Addr : First)
    A->deallocate(Addr);
  int Reused = 0;
  for (int I = 0; I != 50; ++I) {
    uint64_t Addr = A->allocate(48, 16);
    for (uint64_t Old : First)
      if (Addr == Old) {
        ++Reused;
        break;
      }
  }
  EXPECT_GT(Reused, 25) << "allocator should reuse freed addresses";
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, AllocatorPolicyTest,
                         ::testing::Values(AllocPolicy::FirstFit,
                                           AllocPolicy::BestFit,
                                           AllocPolicy::NextFit,
                                           AllocPolicy::Segregated),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case AllocPolicy::FirstFit:
                             return "FirstFit";
                           case AllocPolicy::BestFit:
                             return "BestFit";
                           case AllocPolicy::NextFit:
                             return "NextFit";
                           case AllocPolicy::Segregated:
                             return "Segregated";
                           }
                           return "Unknown";
                         });

//===----------------------------------------------------------------------===//
// Free-list specifics
//===----------------------------------------------------------------------===//

TEST(FreeListAllocatorTest, InvariantsHoldUnderChurn) {
  for (AllocPolicy P : {AllocPolicy::FirstFit, AllocPolicy::BestFit,
                        AllocPolicy::NextFit}) {
    FreeListAllocator A(P, 5);
    Rng R(123);
    std::vector<uint64_t> Live;
    for (int I = 0; I != 2000; ++I) {
      if (!Live.empty() && R.nextBool(0.5)) {
        size_t Victim = R.nextBelow(Live.size());
        A.deallocate(Live[Victim]);
        Live[Victim] = Live.back();
        Live.pop_back();
      } else {
        Live.push_back(A.allocate(1 + R.nextBelow(500), 16));
      }
      if (I % 100 == 0) {
        ASSERT_TRUE(A.checkInvariants()) << "policy " << int(P)
                                         << " iter " << I;
      }
    }
    EXPECT_TRUE(A.checkInvariants());
    EXPECT_EQ(A.liveBlockCount(), Live.size());
  }
}

TEST(FreeListAllocatorTest, CoalescingBoundsFreeListGrowth) {
  FreeListAllocator A(AllocPolicy::FirstFit, 1);
  std::vector<uint64_t> Addrs;
  for (int I = 0; I != 100; ++I)
    Addrs.push_back(A.allocate(64, 16));
  // Free everything; neighbors must coalesce into approximately one run.
  for (uint64_t Addr : Addrs)
    A.deallocate(Addr);
  EXPECT_LE(A.freeBlockCount(), 2u);
}

TEST(FreeListAllocatorTest, FirstFitPrefersLowestAddress) {
  FreeListAllocator A(AllocPolicy::FirstFit, 1);
  uint64_t X = A.allocate(64, 16);
  uint64_t Y = A.allocate(64, 16);
  uint64_t Z = A.allocate(64, 16);
  (void)Y;
  A.deallocate(X);
  A.deallocate(Z);
  uint64_t W = A.allocate(32, 16);
  EXPECT_EQ(W, X) << "first fit must reuse the lowest freed block";
}

TEST(FreeListAllocatorTest, BestFitPrefersTightestBlock) {
  FreeListAllocator A(AllocPolicy::BestFit, 1);
  uint64_t Big = A.allocate(512, 16);
  uint64_t Sep1 = A.allocate(64, 16);
  uint64_t Small = A.allocate(96, 16);
  uint64_t Sep2 = A.allocate(64, 16);
  (void)Sep1;
  (void)Sep2;
  A.deallocate(Big);
  A.deallocate(Small);
  // A 80-byte request fits both; best-fit must take the 96-byte hole.
  uint64_t W = A.allocate(80, 16);
  EXPECT_EQ(W, Small);
}

TEST(SegregatedAllocatorTest, LifoReuseWithinSizeClass) {
  SegregatedAllocator A(1);
  uint64_t X = A.allocate(40, 16); // 64-byte class.
  uint64_t Y = A.allocate(50, 16); // Same class.
  (void)X;
  A.deallocate(Y);
  EXPECT_EQ(A.allocate(33, 16), Y) << "LIFO reuse within the class";
}

TEST(SegregatedAllocatorTest, LargeBlocksRoundTrip) {
  SegregatedAllocator A(1);
  uint64_t Big = A.allocate(1 << 20, 16);
  ASSERT_NE(Big, 0u);
  EXPECT_EQ(A.liveBlockSize(Big), uint64_t(1) << 20);
  A.deallocate(Big);
  EXPECT_EQ(A.allocate(1 << 20, 16), Big) << "exact-size large reuse";
}

//===----------------------------------------------------------------------===//
// Static layout
//===----------------------------------------------------------------------===//

TEST(StaticLayoutTest, DeclarationOrderIsMonotonic) {
  StaticLayout L(LinkOrder::Declaration);
  L.addVariable("a", 100, 8);
  L.addVariable("b", 17, 8);
  L.addVariable("c", 4000, 32);
  L.finalize();
  EXPECT_LT(L.addressOf(0), L.addressOf(1));
  EXPECT_LT(L.addressOf(1), L.addressOf(2));
  EXPECT_EQ(L.addressOf(2) % 32, 0u);
}

TEST(StaticLayoutTest, BySizePlacesLargestFirst) {
  StaticLayout L(LinkOrder::BySize);
  L.addVariable("small", 8, 8);
  L.addVariable("large", 4096, 8);
  L.finalize();
  EXPECT_GT(L.addressOf(0), L.addressOf(1));
}

TEST(StaticLayoutTest, HashedOrderDependsOnSeed) {
  auto Layout = [](uint64_t Seed) {
    StaticLayout L(LinkOrder::Hashed, 0, Seed);
    for (int I = 0; I != 32; ++I)
      L.addVariable("v", 64, 8);
    L.finalize();
    std::vector<uint64_t> Addrs;
    for (int I = 0; I != 32; ++I)
      Addrs.push_back(L.addressOf(I));
    return Addrs;
  };
  EXPECT_EQ(Layout(1), Layout(1));
  EXPECT_NE(Layout(1), Layout(2));
}

TEST(StaticLayoutTest, BaseShiftMovesEverything) {
  StaticLayout A(LinkOrder::Declaration, 0);
  StaticLayout B(LinkOrder::Declaration, 0x100);
  A.addVariable("x", 64, 8);
  B.addVariable("x", 64, 8);
  A.finalize();
  B.finalize();
  EXPECT_EQ(B.addressOf(0), A.addressOf(0) + 0x100);
}

TEST(StaticLayoutTest, VariablesDoNotOverlap) {
  for (LinkOrder O : {LinkOrder::Declaration, LinkOrder::BySize,
                      LinkOrder::Hashed}) {
    StaticLayout L(O, 0, 7);
    Rng R(1);
    for (int I = 0; I != 100; ++I)
      L.addVariable("v", 1 + R.nextBelow(256),
                    uint64_t(1) << R.nextBelow(6));
    L.finalize();
    std::map<uint64_t, uint64_t> Placed;
    for (size_t I = 0; I != L.size(); ++I)
      Placed.emplace(L.variable(I).Addr, L.variable(I).Size);
    uint64_t PrevEnd = 0;
    for (auto &[Addr, Size] : Placed) {
      EXPECT_GE(Addr, PrevEnd);
      PrevEnd = Addr + Size;
    }
    EXPECT_EQ(L.segmentEnd() >= PrevEnd, true);
  }
}

//===----------------------------------------------------------------------===//
// TieredAddressSpace
//===----------------------------------------------------------------------===//

TEST(TieredAddressSpaceTest, PolicyNames) {
  EXPECT_STREQ(tierPolicyName(TierPolicy::FirstTouch), "first-touch");
  EXPECT_STREQ(tierPolicyName(TierPolicy::Lru), "lru");
  EXPECT_STREQ(tierPolicyName(TierPolicy::Advised), "advised");
}

TEST(TieredAddressSpaceTest, FirstTouchFillsInAllocationOrder) {
  TieredAddressSpace T(TierPolicy::FirstTouch, 100);
  T.onAlloc(1, 60);
  T.onAlloc(2, 40);
  T.onAlloc(3, 10); // Fast tier full: lands slow, never moves.
  EXPECT_TRUE(T.inFastTier(1));
  EXPECT_TRUE(T.inFastTier(2));
  EXPECT_FALSE(T.inFastTier(3));
  T.onAccess(1);
  T.onAccess(3);
  T.onAccess(3);
  EXPECT_EQ(T.stats().FastHits, 1u);
  EXPECT_EQ(T.stats().SlowHits, 2u);
  EXPECT_EQ(T.stats().migrations(), 0u);
  EXPECT_EQ(T.stats().FastAllocs, 2u);
  EXPECT_EQ(T.stats().SlowAllocs, 1u);
  EXPECT_EQ(T.fastBytesUsed(), 100u);
}

TEST(TieredAddressSpaceTest, FreeReleasesResidency) {
  TieredAddressSpace T(TierPolicy::FirstTouch, 100);
  T.onAlloc(1, 100);
  EXPECT_TRUE(T.inFastTier(1));
  T.onFree(1);
  EXPECT_EQ(T.fastBytesUsed(), 0u);
  EXPECT_EQ(T.liveObjects(), 0u);
  T.onAlloc(2, 100);
  EXPECT_TRUE(T.inFastTier(2)) << "freed bytes are reusable";
  EXPECT_EQ(T.fastBytesPeak(), 100u);
}

TEST(TieredAddressSpaceTest, AdvisedPlacesOnlyPreferredObjects) {
  TieredAddressSpace T(TierPolicy::Advised, 100);
  T.onAlloc(1, 50, /*PreferFast=*/false); // Cold: stays slow even with room.
  T.onAlloc(2, 50, /*PreferFast=*/true);
  T.onAlloc(3, 60, /*PreferFast=*/true); // Hot but no room left.
  EXPECT_FALSE(T.inFastTier(1));
  EXPECT_TRUE(T.inFastTier(2));
  EXPECT_FALSE(T.inFastTier(3));
  for (int I = 0; I != 5; ++I)
    T.onAccess(3);
  EXPECT_FALSE(T.inFastTier(3)) << "static placement: no promotion";
  EXPECT_EQ(T.stats().migrations(), 0u);
}

TEST(TieredAddressSpaceTest, LruPromotesOnAccessAndEvictsColdest) {
  TieredAddressSpace T(TierPolicy::Lru, 100);
  T.onAlloc(1, 60);
  T.onAlloc(2, 40);
  T.onAlloc(3, 50); // Slow for now.
  T.onAccess(2);    // 2 is now the most recently used fast object.
  // Accessing 3 pays one slow hit, then promotes it by evicting the
  // least recently used fast object (1, never accessed).
  T.onAccess(3);
  EXPECT_EQ(T.stats().SlowHits, 1u);
  EXPECT_TRUE(T.inFastTier(3));
  EXPECT_FALSE(T.inFastTier(1)) << "LRU victim";
  EXPECT_TRUE(T.inFastTier(2)) << "recently used survives";
  EXPECT_EQ(T.stats().Promotions, 1u);
  EXPECT_EQ(T.stats().Evictions, 1u);
  T.onAccess(3);
  EXPECT_EQ(T.stats().FastHits, 2u) << "promoted object now hits fast";
}

TEST(TieredAddressSpaceTest, LruNeverPromotesOversizedObjects) {
  TieredAddressSpace T(TierPolicy::Lru, 100);
  T.onAlloc(1, 50);
  T.onAlloc(2, 500); // Larger than the whole fast tier.
  for (int I = 0; I != 3; ++I)
    T.onAccess(2);
  EXPECT_FALSE(T.inFastTier(2));
  EXPECT_TRUE(T.inFastTier(1)) << "resident object not evicted in vain";
  EXPECT_EQ(T.stats().Promotions, 0u);
  EXPECT_EQ(T.stats().SlowHits, 3u);
}

TEST(TieredAddressSpaceTest, UnknownIdsCountAsUnmapped) {
  TieredAddressSpace T(TierPolicy::FirstTouch, 100);
  T.onAccess(9);
  T.onFree(9);
  T.onAlloc(1, 10);
  T.onAlloc(1, 10); // Duplicate live id.
  EXPECT_EQ(T.stats().Unmapped, 3u);
  EXPECT_EQ(T.liveObjects(), 1u);
}

TEST(TieredAddressSpaceTest, ZeroCapacityLandsEverythingSlow) {
  TieredAddressSpace T(TierPolicy::Lru, 0);
  T.onAlloc(1, 8);
  T.onAccess(1);
  EXPECT_FALSE(T.inFastTier(1));
  EXPECT_EQ(T.stats().SlowHits, 1u);
  EXPECT_EQ(T.stats().FastAllocs, 0u);
  EXPECT_EQ(T.stats().fastHitRate(), 0.0);
}
