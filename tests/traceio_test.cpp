//===- tests/traceio_test.cpp - Trace record/replay tests ----------------===//
//
// The contract under test: a .orpt recording of a run, replayed into a
// fresh ProfilingSession, yields bit-identical profiles (OMSG archive,
// LEAP profile, RASG grammars) — and a damaged trace file is rejected
// with a clear error, never silently misparsed.
//
//===----------------------------------------------------------------------===//

#include "baseline/RasgProfiler.h"
#include "core/ProfilingSession.h"
#include "leap/LeapProfileData.h"
#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/VarInt.h"
#include "traceio/BlockCodec.h"
#include "traceio/TraceReader.h"
#include "traceio/TraceReplayer.h"
#include "traceio/TraceWriter.h"
#include "whomp/OmsgArchive.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

using namespace orp;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "orp_traceio_" + Name;
}

/// Runs \p WorkloadName live with \p Extra sinks/consumers attached and
/// records the probe stream to \p Path. Returns the session (finished).
std::unique_ptr<core::ProfilingSession>
recordRun(const std::string &WorkloadName, const std::string &Path,
          core::OrTupleConsumer *Consumer = nullptr,
          trace::TraceSink *RawSink = nullptr, uint64_t Scale = 1,
          size_t BlockBytes = traceio::TraceWriter::kDefaultBlockBytes,
          uint8_t FormatVersion = traceio::kFormatVersion) {
  auto Session = std::make_unique<core::ProfilingSession>(
      memsim::AllocPolicy::FirstFit, /*Seed=*/7);
  traceio::TraceWriter Writer(Path, Session->registry(),
                              memsim::AllocPolicy::FirstFit, /*Seed=*/7,
                              BlockBytes, FormatVersion);
  EXPECT_TRUE(Writer.ok()) << Writer.error();
  Session->addRawSink(&Writer);
  if (Consumer)
    Session->addConsumer(Consumer);
  if (RawSink)
    Session->addRawSink(RawSink);

  auto W = workloads::createWorkloadByName(WorkloadName);
  EXPECT_TRUE(W);
  workloads::WorkloadConfig Config;
  Config.Scale = Scale;
  W->run(Session->memory(), Session->registry(), Config);
  Session->finish();
  EXPECT_TRUE(Writer.close()) << Writer.error();
  return Session;
}

std::vector<uint8_t> readFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(In),
                              std::istreambuf_iterator<char>());
}

void writeFile(const std::string &Path, const std::vector<uint8_t> &Bytes) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  Out.write(reinterpret_cast<const char *>(Bytes.data()),
            static_cast<std::streamsize>(Bytes.size()));
}

} // namespace

//===----------------------------------------------------------------------===//
// Round trips: replayed profiles are bit-identical to live ones
//===----------------------------------------------------------------------===//

TEST(TraceIoTest, GzipReplayProducesByteIdenticalOmsg) {
  // The acceptance scenario: record the gzip workload, replay with
  // WHOMP, compare the serialized OMSG archives byte for byte.
  std::string Path = tempPath("gzip.orpt");
  whomp::WhompProfiler Live;
  auto LiveSession = recordRun("164.gzip-a", Path, &Live);
  auto LiveBytes =
      whomp::OmsgArchive::build(Live, &LiveSession->omc()).serialize();

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  traceio::TraceReplayer Replayer(Reader);
  auto Replayed = Replayer.makeSession();
  whomp::WhompProfiler Offline;
  Replayed->addConsumer(&Offline);
  ASSERT_TRUE(Replayer.replayInto(*Replayed)) << Replayer.error();

  auto ReplayBytes =
      whomp::OmsgArchive::build(Offline, &Replayed->omc()).serialize();
  EXPECT_EQ(Live.tuplesSeen(), Offline.tuplesSeen());
  EXPECT_EQ(LiveBytes, ReplayBytes);
  std::remove(Path.c_str());
}

TEST(TraceIoTest, LeapReplayProducesIdenticalProfile) {
  std::string Path = tempPath("leap.orpt");
  leap::LeapProfiler Live(/*MaxLmads=*/30);
  recordRun("181.mcf-a", Path, &Live);
  auto LiveBytes = leap::LeapProfileData::fromProfiler(Live).serialize();

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  traceio::TraceReplayer Replayer(Reader);
  auto Replayed = Replayer.makeSession();
  leap::LeapProfiler Offline(/*MaxLmads=*/30);
  Replayed->addConsumer(&Offline);
  ASSERT_TRUE(Replayer.replayInto(*Replayed)) << Replayer.error();

  EXPECT_EQ(LiveBytes,
            leap::LeapProfileData::fromProfiler(Offline).serialize());
  std::remove(Path.c_str());
}

TEST(TraceIoTest, RasgReplayProducesIdenticalGrammars) {
  std::string Path = tempPath("rasg.orpt");
  baseline::RasgProfiler Live;
  recordRun("list-traversal", Path, nullptr, &Live);

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  traceio::TraceReplayer Replayer(Reader);
  auto Replayed = Replayer.makeSession();
  baseline::RasgProfiler Offline;
  Replayed->addRawSink(&Offline);
  ASSERT_TRUE(Replayer.replayInto(*Replayed)) << Replayer.error();

  EXPECT_EQ(Live.accessesSeen(), Offline.accessesSeen());
  EXPECT_EQ(Live.addressGrammar().serialize(),
            Offline.addressGrammar().serialize());
  EXPECT_EQ(Live.instructionGrammar().serialize(),
            Offline.instructionGrammar().serialize());
  std::remove(Path.c_str());
}

TEST(TraceIoTest, MultiBlockEventStreamRoundTrips) {
  // Tiny blocks force many delta-state resets; the decoded stream must
  // still match the live stream event for event.
  std::string Path = tempPath("blocks.orpt");
  trace::BufferSink Live;
  recordRun("list-traversal", Path, nullptr, &Live, /*Scale=*/1,
            /*BlockBytes=*/256);

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  EXPECT_GT(Reader.info().NumBlocks, 1u);

  traceio::TraceReplayer Replayer(Reader);
  auto Replayed = Replayer.makeSession();
  trace::BufferSink Offline;
  Replayed->addRawSink(&Offline);
  ASSERT_TRUE(Replayer.replayInto(*Replayed)) << Replayer.error();

  ASSERT_EQ(Live.accesses().size(), Offline.accesses().size());
  for (size_t I = 0; I != Live.accesses().size(); ++I) {
    const trace::AccessEvent &A = Live.accesses()[I];
    const trace::AccessEvent &B = Offline.accesses()[I];
    ASSERT_EQ(A.Instr, B.Instr);
    ASSERT_EQ(A.Addr, B.Addr);
    ASSERT_EQ(A.Size, B.Size);
    ASSERT_EQ(A.IsStore, B.IsStore);
    ASSERT_EQ(A.Time, B.Time);
  }
  ASSERT_EQ(Live.allocs().size(), Offline.allocs().size());
  for (size_t I = 0; I != Live.allocs().size(); ++I) {
    const trace::AllocEvent &A = Live.allocs()[I];
    const trace::AllocEvent &B = Offline.allocs()[I];
    ASSERT_EQ(A.Site, B.Site);
    ASSERT_EQ(A.Addr, B.Addr);
    ASSERT_EQ(A.Size, B.Size);
    ASSERT_EQ(A.Time, B.Time);
    ASSERT_EQ(A.IsStatic, B.IsStatic);
  }
  ASSERT_EQ(Live.frees().size(), Offline.frees().size());
  for (size_t I = 0; I != Live.frees().size(); ++I) {
    ASSERT_EQ(Live.frees()[I].Addr, Offline.frees()[I].Addr);
    ASSERT_EQ(Live.frees()[I].Time, Offline.frees()[I].Time);
  }
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Metadata
//===----------------------------------------------------------------------===//

TEST(TraceIoTest, InfoAndRegistryMatchTheRecordedRun) {
  std::string Path = tempPath("info.orpt");
  trace::CountingSink Counter;
  auto Session = recordRun("list-traversal", Path, nullptr, &Counter);

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  const traceio::TraceInfo &Info = Reader.info();
  EXPECT_EQ(Info.Version, traceio::kFormatVersion);
  EXPECT_EQ(Info.AllocPolicy,
            static_cast<uint8_t>(memsim::AllocPolicy::FirstFit));
  EXPECT_EQ(Info.Seed, 7u);
  EXPECT_EQ(Info.TotalEvents,
            Counter.accesses() + Counter.allocs() + Counter.frees());

  const trace::InstructionRegistry &Live = Session->registry();
  ASSERT_EQ(Info.NumInstructions, Live.numInstructions());
  ASSERT_EQ(Info.NumAllocSites, Live.numAllocSites());
  for (size_t I = 0; I != Live.numInstructions(); ++I) {
    EXPECT_EQ(Reader.instructions()[I].Name,
              Live.instruction(static_cast<trace::InstrId>(I)).Name);
    EXPECT_EQ(Reader.instructions()[I].Kind,
              Live.instruction(static_cast<trace::InstrId>(I)).Kind);
  }
  for (size_t I = 0; I != Live.numAllocSites(); ++I) {
    EXPECT_EQ(Reader.allocSites()[I].Name,
              Live.allocSite(static_cast<trace::AllocSiteId>(I)).Name);
    EXPECT_EQ(Reader.allocSites()[I].TypeName,
              Live.allocSite(static_cast<trace::AllocSiteId>(I)).TypeName);
  }
  std::remove(Path.c_str());
}

TEST(TraceIoTest, EmptyTraceRoundTrips) {
  std::string Path = tempPath("empty.orpt");
  {
    core::ProfilingSession Session;
    traceio::TraceWriter Writer(Path, Session.registry(),
                                memsim::AllocPolicy::FirstFit, 0);
    ASSERT_TRUE(Writer.ok()) << Writer.error();
    Session.addRawSink(&Writer);
    Session.finish(); // no workload: zero events
    EXPECT_TRUE(Writer.close()) << Writer.error();
    EXPECT_EQ(Writer.eventsWritten(), 0u);
  }
  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  EXPECT_EQ(Reader.info().TotalEvents, 0u);
  EXPECT_EQ(Reader.info().NumBlocks, 0u);
  uint64_t Seen = 0;
  EXPECT_TRUE(
      Reader.forEachEvent([&](const traceio::TraceEvent &) { ++Seen; }));
  EXPECT_EQ(Seen, 0u);

  traceio::TraceReplayer Replayer(Reader);
  auto Session = Replayer.makeSession();
  EXPECT_TRUE(Replayer.replayInto(*Session));
  EXPECT_EQ(Replayer.eventsReplayed(), 0u);
  std::remove(Path.c_str());
}

TEST(TraceIoTest, WriterReportsUnwritablePath) {
  trace::InstructionRegistry Registry;
  traceio::TraceWriter Writer("/nonexistent-dir/trace.orpt", Registry,
                              memsim::AllocPolicy::FirstFit, 0);
  EXPECT_FALSE(Writer.ok());
  EXPECT_NE(Writer.error().find("cannot open"), std::string::npos);
  EXPECT_FALSE(Writer.close());
}

//===----------------------------------------------------------------------===//
// Corruption and truncation are rejected loudly
//===----------------------------------------------------------------------===//

class TraceIoCorruptionTest : public testing::Test {
protected:
  void SetUp() override {
    Path = tempPath("corrupt.orpt");
    // Pinned to v1: the byte surgery below assumes the interleaved
    // record layout. V2 columnar corruption has its own fixture.
    recordRun("list-traversal", Path, nullptr, nullptr, /*Scale=*/1,
              traceio::TraceWriter::kDefaultBlockBytes,
              traceio::kFormatVersionV1);
    Good = readFile(Path);
    ASSERT_GT(Good.size(), traceio::kHeaderSize + 64);
    std::remove(Path.c_str());
  }

  /// Expects openImage (or the event walk) to fail with \p Needle in
  /// the error message.
  void expectRejected(std::vector<uint8_t> Image,
                      const std::string &Needle) {
    traceio::TraceReader Reader;
    bool Ok = Reader.openImage(std::move(Image), "corrupt.orpt");
    if (Ok)
      Ok = Reader.forEachEvent([](const traceio::TraceEvent &) {});
    EXPECT_FALSE(Ok);
    EXPECT_NE(Reader.error().find(Needle), std::string::npos)
        << "error was: " << Reader.error();
  }

  std::string Path;
  std::vector<uint8_t> Good;
};

TEST_F(TraceIoCorruptionTest, IntactImageIsAccepted) {
  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.openImage(Good, "good.orpt")) << Reader.error();
  EXPECT_TRUE(Reader.forEachEvent([](const traceio::TraceEvent &) {}));
}

TEST_F(TraceIoCorruptionTest, NotATraceFile) {
  expectRejected({'n', 'o', 'p', 'e'}, "truncated file");
  std::vector<uint8_t> Bad = Good;
  Bad[0] = 'X';
  expectRejected(std::move(Bad), "bad magic");
}

TEST_F(TraceIoCorruptionTest, TruncationsAreRejected) {
  for (size_t Keep :
       {size_t(10), traceio::kHeaderSize - 1, traceio::kHeaderSize + 3,
        Good.size() / 2, Good.size() - 1}) {
    std::vector<uint8_t> Bad(Good.begin(), Good.begin() + Keep);
    traceio::TraceReader Reader;
    bool Ok = Reader.openImage(std::move(Bad), "truncated.orpt");
    if (Ok)
      Ok = Reader.forEachEvent([](const traceio::TraceEvent &) {});
    EXPECT_FALSE(Ok) << "prefix of " << Keep << " bytes was accepted";
    EXPECT_FALSE(Reader.error().empty());
  }
}

TEST_F(TraceIoCorruptionTest, FlippedHeaderByteIsRejected) {
  std::vector<uint8_t> Bad = Good;
  Bad[8] ^= 0x40; // seed field; covered by the header CRC
  expectRejected(std::move(Bad), "header checksum mismatch");
}

TEST_F(TraceIoCorruptionTest, FlippedBlockPayloadByteIsRejected) {
  // Well inside the first event block's payload.
  std::vector<uint8_t> Bad = Good;
  Bad[traceio::kHeaderSize + 32] ^= 0x01;
  expectRejected(std::move(Bad), "checksum mismatch");
}

TEST_F(TraceIoCorruptionTest, BlockErrorsNameBlockIndexAndByteOffset) {
  // Pins the structured error format "block <index> at byte <offset>"
  // that tooling (and humans with hexdump) navigate by. Block 0's
  // payload starts right after the fixed header and its 6-byte block
  // framing (tag, two single-byte ulebs for a small trace, u32 CRC) —
  // compute the exact offset from the reader's own accounting instead.
  traceio::TraceReader Intact;
  ASSERT_TRUE(Intact.openImage(Good, "good.orpt")) << Intact.error();
  ASSERT_GT(Intact.numEventBlocks(), 0u);
  uint64_t Block0Offset = Intact.rawBlock(0).FileOffset;

  std::vector<uint8_t> Bad = Good;
  Bad[Block0Offset + 8] ^= 0x01;
  expectRejected(Bad, "block 0 at byte " + std::to_string(Block0Offset) +
                          ": checksum mismatch");

  // A later block reports its own index and offset, not block 0's.
  if (Intact.numEventBlocks() > 1) {
    uint64_t Block1Offset = Intact.rawBlock(1).FileOffset;
    std::vector<uint8_t> Bad1 = Good;
    Bad1[Block1Offset + 8] ^= 0x01;
    expectRejected(std::move(Bad1),
                   "block 1 at byte " + std::to_string(Block1Offset));
  }
}

TEST_F(TraceIoCorruptionTest, UnsupportedVersionIsRejected) {
  std::vector<uint8_t> Bad = Good;
  Bad[4] = traceio::kFormatVersion + 1;
  // Re-seal the header so only the version check can fire.
  uint32_t Crc = crc32(Bad.data(), 32);
  for (unsigned I = 0; I != 4; ++I)
    Bad[32 + I] = static_cast<uint8_t>(Crc >> (8 * I));
  expectRejected(std::move(Bad), "unsupported format version");
}

TEST_F(TraceIoCorruptionTest, UnfinalizedTraceIsRejected) {
  std::vector<uint8_t> Bad = Good;
  for (unsigned I = 0; I != 8; ++I)
    Bad[16 + I] = 0; // registry offset 0 = writer never close()d
  uint32_t Crc = crc32(Bad.data(), 32);
  for (unsigned I = 0; I != 4; ++I)
    Bad[32 + I] = static_cast<uint8_t>(Crc >> (8 * I));
  expectRejected(std::move(Bad), "unfinalized trace");
}

TEST_F(TraceIoCorruptionTest, OverlongVarIntInEventPayloadIsRejected) {
  // Re-encode the first event's leading varint as a non-minimal
  // (overlong) form — same value, one byte wider — and re-seal the
  // block framing and header so only the varint hardening can fire.
  size_t Pos = traceio::kHeaderSize;
  ASSERT_EQ(Good[Pos], traceio::kBlockEvents);
  ++Pos;
  uint64_t PayloadLen = decodeULEB128(Good, Pos);
  uint64_t EventCount = decodeULEB128(Good, Pos);
  Pos += 4; // block CRC
  const size_t PayloadPos = Pos;
  const size_t BlockEnd = PayloadPos + PayloadLen;
  ASSERT_LE(BlockEnd, Good.size());

  // First record: tag byte, then a ULEB field (instr for access, site
  // for alloc; a free would start with an SLEB — not what recordRun's
  // streams open with).
  uint8_t Tag = Good[PayloadPos];
  ASSERT_NE(Tag & traceio::kOpMask, traceio::kOpFree);
  size_t FieldPos = PayloadPos + 1;
  uint64_t FieldValue = 0;
  ASSERT_TRUE(
      tryDecodeULEB128(Good.data(), BlockEnd, FieldPos, FieldValue));

  std::vector<uint8_t> Overlong;
  encodeULEB128(FieldValue, Overlong);
  Overlong.back() |= 0x80;
  Overlong.push_back(0x00);

  std::vector<uint8_t> Payload(Good.begin() + PayloadPos,
                               Good.begin() + BlockEnd);
  Payload.erase(Payload.begin() + 1,
                Payload.begin() + (FieldPos - PayloadPos));
  Payload.insert(Payload.begin() + 1, Overlong.begin(), Overlong.end());

  std::vector<uint8_t> Bad(Good.begin(), Good.begin() + traceio::kHeaderSize);
  Bad.push_back(traceio::kBlockEvents);
  encodeULEB128(Payload.size(), Bad);
  encodeULEB128(EventCount, Bad);
  appendLE32(crc32(Payload.data(), Payload.size()), Bad);
  Bad.insert(Bad.end(), Payload.begin(), Payload.end());
  const size_t NewBlockEnd = Bad.size();
  Bad.insert(Bad.end(), Good.begin() + BlockEnd, Good.end());

  // Shift the registry offset by the growth and re-seal the header CRC.
  const uint64_t Delta = NewBlockEnd - BlockEnd;
  uint64_t RegistryOffset = readLE64(Bad.data() + 16) + Delta;
  for (unsigned I = 0; I != 8; ++I)
    Bad[16 + I] = static_cast<uint8_t>(RegistryOffset >> (8 * I));
  uint32_t Crc = crc32(Bad.data(), 32);
  for (unsigned I = 0; I != 4; ++I)
    Bad[32 + I] = static_cast<uint8_t>(Crc >> (8 * I));

  expectRejected(std::move(Bad), "overlong");
}

TEST_F(TraceIoCorruptionTest, TrailingGarbageIsRejected) {
  std::vector<uint8_t> Bad = Good;
  Bad.push_back(0xAB);
  expectRejected(std::move(Bad), "trailing garbage");
}

TEST_F(TraceIoCorruptionTest, OpenOnDiskReportsTheFileName) {
  std::string BadPath = tempPath("ondisk_corrupt.orpt");
  std::vector<uint8_t> Bad = Good;
  Bad[traceio::kHeaderSize + 32] ^= 0x01;
  writeFile(BadPath, Bad);
  traceio::TraceReader Reader;
  bool Ok = Reader.open(BadPath);
  if (Ok)
    Ok = Reader.forEachEvent([](const traceio::TraceEvent &) {});
  EXPECT_FALSE(Ok);
  EXPECT_NE(Reader.error().find("ondisk_corrupt.orpt"), std::string::npos);
  std::remove(BadPath.c_str());
}

//===----------------------------------------------------------------------===//
// V2 columnar blocks: decode contract and error taxonomy
//===----------------------------------------------------------------------===//

namespace {

/// Hand-assembles a v2 columnar payload from pre-encoded column bytes
/// (kind | id | address | time | size, each uleb-length-prefixed).
std::vector<uint8_t> v2Payload(const std::vector<uint8_t> &Kinds,
                               const std::vector<uint8_t> &Ids,
                               const std::vector<uint8_t> &Addrs,
                               const std::vector<uint8_t> &Times,
                               const std::vector<uint8_t> &Sizes) {
  std::vector<uint8_t> P;
  for (const std::vector<uint8_t> *Col :
       {&Kinds, &Ids, &Addrs, &Times, &Sizes}) {
    encodeULEB128(Col->size(), P);
    P.insert(P.end(), Col->begin(), Col->end());
  }
  return P;
}

std::vector<uint8_t> uleb(std::initializer_list<uint64_t> Values) {
  std::vector<uint8_t> Out;
  for (uint64_t V : Values)
    encodeULEB128(V, Out);
  return Out;
}

std::vector<uint8_t> sleb(std::initializer_list<int64_t> Values) {
  std::vector<uint8_t> Out;
  for (int64_t V : Values)
    encodeSLEB128(V, Out);
  return Out;
}

/// Expects decodeEventBlockV2 to reject \p Payload with \p Needle.
void expectV2Rejected(const std::vector<uint8_t> &Payload,
                      uint64_t EventCount, const std::string &Needle) {
  traceio::DecodedBlock Block;
  std::string Err;
  EXPECT_FALSE(traceio::decodeEventBlockV2(Payload.data(), Payload.size(),
                                           EventCount, Block, Err));
  EXPECT_NE(Err.find(Needle), std::string::npos) << "error was: " << Err;
  EXPECT_EQ(Block.events(), 0u) << "failed decode must clear the output";
}

} // namespace

TEST(TraceIoV2BlockTest, ColumnsZipBackIntoDeliveryOrder) {
  // access(instr 5, 0x1000, 4B load, t0); alloc(site 2, 0x2000, 64B,
  // t1); free(0x2000, t2). Address/time columns carry per-block deltas.
  std::vector<uint8_t> Payload = v2Payload(
      {traceio::kOpAccess, traceio::kOpAlloc, traceio::kOpFree},
      uleb({5, 2}), sleb({0x1000, 0x1000, 0}), sleb({0, 1, 1}),
      uleb({4, 64}));
  traceio::DecodedBlock Block;
  std::string Err;
  ASSERT_TRUE(traceio::decodeEventBlockV2(Payload.data(), Payload.size(),
                                          /*EventCount=*/3, Block, Err))
      << Err;
  EXPECT_EQ(Block.events(), 3u);
  ASSERT_EQ(Block.Accesses.size(), 1u);
  EXPECT_EQ(Block.Accesses[0].Instr, 5u);
  EXPECT_EQ(Block.Accesses[0].Addr, 0x1000u);
  EXPECT_EQ(Block.Accesses[0].Size, 4u);
  EXPECT_FALSE(Block.Accesses[0].IsStore);
  EXPECT_EQ(Block.Accesses[0].Time, 0u);
  ASSERT_EQ(Block.Boundaries.size(), 2u);
  EXPECT_EQ(Block.Boundaries[0].AccessesBefore, 1u);
  EXPECT_EQ(Block.Boundaries[0].E.K, traceio::TraceEvent::Kind::Alloc);
  EXPECT_EQ(Block.Boundaries[0].E.InstrOrSite, 2u);
  EXPECT_EQ(Block.Boundaries[0].E.Addr, 0x2000u);
  EXPECT_EQ(Block.Boundaries[0].E.Size, 64u);
  EXPECT_EQ(Block.Boundaries[0].E.Time, 1u);
  EXPECT_EQ(Block.Boundaries[1].E.K, traceio::TraceEvent::Kind::Free);
  EXPECT_EQ(Block.Boundaries[1].E.Addr, 0x2000u);
  EXPECT_EQ(Block.Boundaries[1].E.Time, 2u);

  // The merge walk restores the original interleaved order.
  std::vector<traceio::TraceEvent::Kind> Order;
  traceio::forEachDecodedEvent(
      Block, [&](const traceio::TraceEvent &E) { Order.push_back(E.K); });
  ASSERT_EQ(Order.size(), 3u);
  EXPECT_EQ(Order[0], traceio::TraceEvent::Kind::Access);
  EXPECT_EQ(Order[1], traceio::TraceEvent::Kind::Alloc);
  EXPECT_EQ(Order[2], traceio::TraceEvent::Kind::Free);
}

TEST(TraceIoV2BlockTest, TruncatedColumnIsRejected) {
  std::vector<uint8_t> Payload = v2Payload(
      {traceio::kOpAccess}, uleb({5}), sleb({0x1000}), sleb({0}), uleb({4}));
  Payload.pop_back(); // size column now declares more bytes than remain
  expectV2Rejected(Payload, 1, "truncated size column");
}

TEST(TraceIoV2BlockTest, KindColumnCountMismatchIsRejected) {
  std::vector<uint8_t> Payload =
      v2Payload({traceio::kOpFree}, {}, sleb({0x10}), sleb({1}), {});
  expectV2Rejected(Payload, 2,
                   "column length mismatch: kind column holds 1 entries, "
                   "block declares 2");
}

TEST(TraceIoV2BlockTest, UnknownOpcodeIsRejected) {
  std::vector<uint8_t> Payload =
      v2Payload({0x07}, {}, sleb({0x10}), sleb({1}), {});
  expectV2Rejected(Payload, 1, "unknown event opcode 7");
}

TEST(TraceIoV2BlockTest, OverlongVarIntInColumnIsRejected) {
  // Non-minimal uleb in the id column: same value, one byte wider.
  std::vector<uint8_t> Payload =
      v2Payload({traceio::kOpAccess}, {0x85, 0x00}, sleb({0x1000}),
                sleb({0}), uleb({4}));
  expectV2Rejected(Payload, 1, "malformed id column (overlong varint)");
}

TEST(TraceIoV2BlockTest, TrailingBytesInColumnAreRejected) {
  std::vector<uint8_t> Ids = uleb({5});
  Ids.push_back(0x00); // one id decoded, one byte left over
  std::vector<uint8_t> Payload = v2Payload(
      {traceio::kOpAccess}, Ids, sleb({0x1000}), sleb({0}), uleb({4}));
  expectV2Rejected(Payload, 1, "trailing bytes in id column");
}

TEST(TraceIoV2BlockTest, TrailingBytesAfterColumnsAreRejected) {
  std::vector<uint8_t> Payload = v2Payload(
      {traceio::kOpAccess}, uleb({5}), sleb({0x1000}), sleb({0}), uleb({4}));
  Payload.push_back(0xAB);
  expectV2Rejected(Payload, 1, "trailing bytes in event payload");
}

//===----------------------------------------------------------------------===//
// Cross-version goldens: v1 and v2 encodings of one stream are
// interchangeable — same events, byte-identical profiles
//===----------------------------------------------------------------------===//

namespace {

struct ReplayArtifacts {
  uint64_t Events = 0;
  std::vector<uint8_t> Omsg;
  std::vector<uint8_t> Leap;
};

/// Replays \p Path through WHOMP + LEAP with \p Threads decode threads.
ReplayArtifacts replayArtifacts(const std::string &Path, unsigned Threads) {
  traceio::TraceReader Reader;
  EXPECT_TRUE(Reader.open(Path)) << Reader.error();
  traceio::TraceReplayer Replayer(Reader);
  Replayer.setThreads(Threads);
  auto Session = Replayer.makeSession();
  whomp::WhompProfiler Whomp;
  leap::LeapProfiler Leap(/*MaxLmads=*/30);
  Session->addConsumer(&Whomp);
  Session->addConsumer(&Leap);
  EXPECT_TRUE(Replayer.replayInto(*Session)) << Replayer.error();
  ReplayArtifacts A;
  A.Events = Replayer.eventsReplayed();
  A.Omsg = whomp::OmsgArchive::build(Whomp, &Session->omc()).serialize();
  A.Leap = leap::LeapProfileData::fromProfiler(Leap).serialize();
  return A;
}

} // namespace

class TraceIoCrossVersionTest : public testing::Test {
protected:
  void SetUp() override {
    PathV1 = tempPath("xver_v1.orpt");
    PathV2 = tempPath("xver_v2.orpt");
    // One live run, two raw sinks: the v1 and v2 writers see the exact
    // same event stream. Small blocks give the schedulers real work.
    core::ProfilingSession Session(memsim::AllocPolicy::FirstFit,
                                   /*Seed=*/7);
    traceio::TraceWriter W1(PathV1, Session.registry(),
                            memsim::AllocPolicy::FirstFit, /*Seed=*/7,
                            /*BlockBytes=*/2048, traceio::kFormatVersionV1);
    traceio::TraceWriter W2(PathV2, Session.registry(),
                            memsim::AllocPolicy::FirstFit, /*Seed=*/7,
                            /*BlockBytes=*/2048, traceio::kFormatVersionV2);
    ASSERT_TRUE(W1.ok()) << W1.error();
    ASSERT_TRUE(W2.ok()) << W2.error();
    Session.addRawSink(&W1);
    Session.addRawSink(&W2);
    auto W = workloads::createWorkloadByName("list-traversal");
    ASSERT_TRUE(W);
    workloads::WorkloadConfig Config;
    W->run(Session.memory(), Session.registry(), Config);
    Session.finish();
    ASSERT_TRUE(W1.close()) << W1.error();
    ASSERT_TRUE(W2.close()) << W2.error();
    ASSERT_EQ(W1.eventsWritten(), W2.eventsWritten());
  }

  void TearDown() override {
    std::remove(PathV1.c_str());
    std::remove(PathV2.c_str());
  }

  std::string PathV1, PathV2;
};

TEST_F(TraceIoCrossVersionTest, DecodedEventStreamsAreIdentical) {
  traceio::TraceReader R1, R2;
  ASSERT_TRUE(R1.open(PathV1)) << R1.error();
  ASSERT_TRUE(R2.open(PathV2)) << R2.error();
  EXPECT_EQ(R1.info().Version, traceio::kFormatVersionV1);
  EXPECT_EQ(R2.info().Version, traceio::kFormatVersionV2);
  EXPECT_EQ(R1.info().TotalEvents, R2.info().TotalEvents);

  auto Collect = [](traceio::TraceReader &R) {
    std::vector<traceio::TraceEvent> Events;
    EXPECT_TRUE(R.forEachEvent(
        [&](const traceio::TraceEvent &E) { Events.push_back(E); }))
        << R.error();
    return Events;
  };
  std::vector<traceio::TraceEvent> E1 = Collect(R1), E2 = Collect(R2);
  ASSERT_EQ(E1.size(), E2.size());
  for (size_t I = 0; I != E1.size(); ++I) {
    ASSERT_EQ(E1[I].K, E2[I].K) << "event " << I;
    ASSERT_EQ(E1[I].InstrOrSite, E2[I].InstrOrSite) << "event " << I;
    ASSERT_EQ(E1[I].Addr, E2[I].Addr) << "event " << I;
    ASSERT_EQ(E1[I].Size, E2[I].Size) << "event " << I;
    ASSERT_EQ(E1[I].Time, E2[I].Time) << "event " << I;
    ASSERT_EQ(E1[I].IsStore, E2[I].IsStore) << "event " << I;
    ASSERT_EQ(E1[I].IsStatic, E2[I].IsStatic) << "event " << I;
  }
}

TEST_F(TraceIoCrossVersionTest, ProfilesAreByteIdenticalAtEveryWidth) {
  ReplayArtifacts Base = replayArtifacts(PathV1, /*Threads=*/1);
  ASSERT_GT(Base.Events, 0u);
  for (unsigned Threads : {1u, 2u, 8u}) {
    ReplayArtifacts V1 = replayArtifacts(PathV1, Threads);
    ReplayArtifacts V2 = replayArtifacts(PathV2, Threads);
    EXPECT_EQ(V1.Events, Base.Events) << "v1 threads=" << Threads;
    EXPECT_EQ(V2.Events, Base.Events) << "v2 threads=" << Threads;
    EXPECT_EQ(V1.Omsg, Base.Omsg) << "v1 threads=" << Threads;
    EXPECT_EQ(V2.Omsg, Base.Omsg) << "v2 threads=" << Threads;
    EXPECT_EQ(V1.Leap, Base.Leap) << "v1 threads=" << Threads;
    EXPECT_EQ(V2.Leap, Base.Leap) << "v2 threads=" << Threads;
  }
}

//===----------------------------------------------------------------------===//
// OMSG archive header (fixed-width little-endian, checksummed)
//===----------------------------------------------------------------------===//

TEST(OmsgArchiveFormatTest, HeaderIsExplicitLittleEndian) {
  core::ProfilingSession Session;
  whomp::WhompProfiler Whomp;
  Session.addConsumer(&Whomp);
  auto W = workloads::createListTraversal();
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  auto Bytes = whomp::OmsgArchive::build(Whomp, &Session.omc()).serialize();
  ASSERT_GT(Bytes.size(), 9u);
  EXPECT_EQ(Bytes[0], 'O');
  EXPECT_EQ(Bytes[1], 'M');
  EXPECT_EQ(Bytes[2], 'S');
  EXPECT_EQ(Bytes[3], 'A');
  EXPECT_EQ(Bytes[4], whomp::OmsgArchive::kFormatVersion);
  // The stored CRC is little-endian by construction, independent of the
  // host: reassembling it LE must match a recomputation of the payload.
  uint32_t Stored = readLE32(Bytes.data() + 5);
  EXPECT_EQ(Stored, crc32(Bytes.data() + 9, Bytes.size() - 9));

  // And the round trip still holds on the new format.
  whomp::OmsgArchive Back;
  std::string Err;
  ASSERT_TRUE(whomp::OmsgArchive::deserialize(Bytes, Back, Err)) << Err;
  EXPECT_EQ(Back.serialize(), Bytes);
}

TEST(OmsgArchiveFormatTest, CorruptedArchiveIsRejected) {
  core::ProfilingSession Session;
  whomp::WhompProfiler Whomp;
  Session.addConsumer(&Whomp);
  auto W = workloads::createListTraversal();
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();
  auto Bytes = whomp::OmsgArchive::build(Whomp).serialize();

  // Archive files are untrusted input: corruption must surface as a
  // structured error, never a crash.
  whomp::OmsgArchive Out;
  std::string Err;
  auto Flipped = Bytes;
  Flipped[Flipped.size() / 2] ^= 0x10;
  EXPECT_FALSE(whomp::OmsgArchive::deserialize(Flipped, Out, Err));
  EXPECT_NE(Err.find("checksum"), std::string::npos) << Err;
  auto BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_FALSE(whomp::OmsgArchive::deserialize(BadMagic, Out, Err));
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
}
