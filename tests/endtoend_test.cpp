//===- tests/endtoend_test.cpp - Cross-workload end-to-end properties ----===//
//
// Heavier end-to-end properties sweeping all seven benchmark analogues:
// WHOMP losslessness on every workload, estimator sanity against the
// exact baselines, and profile-artifact round trips.
//
//===----------------------------------------------------------------------===//

#include "analysis/Dependence.h"
#include "analysis/MdfError.h"
#include "analysis/Stride.h"
#include "baseline/ConnorsProfiler.h"
#include "baseline/ExactDependence.h"
#include "baseline/ExactStride.h"
#include "baseline/RasgProfiler.h"
#include "core/ProfilingSession.h"
#include "leap/LeapProfileData.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace orp;

namespace {

struct TupleBuffer : core::OrTupleConsumer {
  std::vector<core::OrTuple> Tuples;
  void consume(const core::OrTuple &T) override { Tuples.push_back(T); }
};

} // namespace

class EndToEndTest : public ::testing::TestWithParam<const char *> {};

TEST_P(EndToEndTest, WhompIsLosslessOnEveryBenchmark) {
  core::ProfilingSession Session;
  whomp::WhompProfiler Whomp;
  TupleBuffer Tuples;
  Session.addConsumer(&Whomp);
  Session.addConsumer(&Tuples);
  auto W = workloads::createWorkloadByName(GetParam());
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  // Expanding each dimension grammar must reproduce the tuple stream.
  const auto Dims = {core::Dimension::Instruction, core::Dimension::Group,
                     core::Dimension::Object, core::Dimension::Offset};
  for (core::Dimension D : Dims) {
    auto Expanded = Whomp.grammarFor(D).expandAll();
    ASSERT_EQ(Expanded.size(), Tuples.Tuples.size()) << GetParam();
    for (size_t I = 0; I < Expanded.size(); I += 97) // Sampled compare.
      ASSERT_EQ(Expanded[I], core::dimensionValue(Tuples.Tuples[I], D))
          << GetParam() << " dim " << core::dimensionName(D) << " @" << I;
  }
}

TEST_P(EndToEndTest, RasgGrammarsRoundTripTheRawStream) {
  core::ProfilingSession Session;
  baseline::RasgProfiler Rasg;
  trace::BufferSink Raw;
  Session.addRawSink(&Rasg);
  Session.addRawSink(&Raw);
  auto W = workloads::createWorkloadByName(GetParam());
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  auto Addrs = Rasg.addressGrammar().expandAll();
  ASSERT_EQ(Addrs.size(), Raw.accesses().size());
  for (size_t I = 0; I < Addrs.size(); I += 101)
    ASSERT_EQ(Addrs[I], Raw.accesses()[I].Addr) << GetParam() << " @" << I;
}

TEST_P(EndToEndTest, LeapNeverInventsDependences) {
  // Every pair LEAP reports must exist in the exact profile: the LMAD
  // sets are derived from real accesses, so a reported conflict implies
  // a real one (the intersection math is exact per descriptor pair).
  core::ProfilingSession Session;
  leap::LeapProfiler Leap;
  baseline::ExactDependenceProfiler Exact;
  Session.addConsumer(&Leap);
  Session.addRawSink(&Exact);
  auto W = workloads::createWorkloadByName(GetParam());
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  auto ExactMdf = Exact.mdf();
  for (const auto &[Pair, Freq] :
       analysis::LeapDependenceAnalyzer(Leap).computeMdf())
    EXPECT_TRUE(ExactMdf.count(Pair))
        << GetParam() << ": phantom pair (" << Pair.first << ","
        << Pair.second << ") freq " << Freq;
}

TEST_P(EndToEndTest, LeapStrideFindsNoPhantomKinds) {
  // Strongly-strided verdicts must only name instructions that executed,
  // with shares in (0, 1].
  core::ProfilingSession Session;
  leap::LeapProfiler Leap;
  Session.addConsumer(&Leap);
  auto W = workloads::createWorkloadByName(GetParam());
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  const auto &Instrs = Leap.instructions();
  for (const auto &[Instr, Info] : analysis::findStronglyStrided(Leap)) {
    EXPECT_TRUE(Instrs.count(Instr)) << GetParam();
    EXPECT_GT(Info.Share, 0.0);
    EXPECT_LE(Info.Share, 1.0 + 1e-12);
  }
}

TEST_P(EndToEndTest, LeapProfileSerializationRoundTrips) {
  core::ProfilingSession Session;
  leap::LeapProfiler Leap;
  Session.addConsumer(&Leap);
  auto W = workloads::createWorkloadByName(GetParam());
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  auto Data = leap::LeapProfileData::fromProfiler(Leap);
  auto Bytes = Data.serialize();
  EXPECT_EQ(Bytes.size(), Leap.serializedSizeBytes())
      << "size accounting must match actual serialization";
  leap::LeapProfileData Back;
  std::string Err;
  ASSERT_TRUE(leap::LeapProfileData::deserialize(Bytes, Back, Err)) << Err;
  EXPECT_TRUE(Back == Data);
}

TEST_P(EndToEndTest, ConnorsNeverOverestimatesOnBenchmarks) {
  core::ProfilingSession Session;
  baseline::ConnorsProfiler Connors(512);
  baseline::ExactDependenceProfiler Exact;
  Session.addRawSink(&Connors);
  Session.addRawSink(&Exact);
  auto W = workloads::createWorkloadByName(GetParam());
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  auto ExactMdf = Exact.mdf();
  for (const auto &[Pair, Freq] : Connors.mdf()) {
    ASSERT_TRUE(ExactMdf.count(Pair)) << GetParam();
    ASSERT_LE(Freq, ExactMdf[Pair] + 1e-12) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, EndToEndTest,
                         ::testing::Values("164.gzip-a", "175.vpr-a",
                                           "181.mcf-a", "186.crafty-a",
                                           "197.parser-a", "256.bzip2-a",
                                           "300.twolf-a"),
                         [](const auto &Info) {
                           std::string Name = Info.param;
                           for (char &C : Name)
                             if (C == '.' || C == '-')
                               C = '_';
                           return Name;
                         });
