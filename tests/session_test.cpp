//===- tests/session_test.cpp - Session engine tests ---------------------===//
//
// The contract under test: the session engine multiplexes N independent
// trace streams without letting them observe each other. Per-session
// profiles are byte-identical whether a trace is replayed serially by
// the CLI path, streamed alone through a SessionManager, or interleaved
// block-by-block with other sessions over 1, 2 or 8 scheduler threads —
// and a corrupt stream, a full ingest queue, or an evicted neighbor
// never perturbs anyone else's bytes.
//
//===----------------------------------------------------------------------===//

#include "core/ProfilingSession.h"
#include "session/Client.h"
#include "session/Daemon.h"
#include "session/ProfileSession.h"
#include "session/SessionManager.h"
#include "session/Wire.h"
#include "support/Version.h"
#include "support/WorkerPool.h"
#include "telemetry/Registry.h"
#include "traceio/TraceReader.h"
#include "traceio/TraceWriter.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace orp;
using session::SessionArtifacts;
using session::SessionId;
using session::SubmitStatus;
using support::ScopedRole;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "orp_session_" + Name;
}

/// Records \p WorkloadName (at \p Scale, with a small block size so the
/// trace has many independently-schedulable blocks) to \p Path.
void recordTrace(const std::string &WorkloadName, const std::string &Path,
                 uint64_t Scale = 1, size_t BlockBytes = 2048) {
  core::ProfilingSession Session(memsim::AllocPolicy::FirstFit, /*Seed=*/7);
  traceio::TraceWriter Writer(Path, Session.registry(),
                              memsim::AllocPolicy::FirstFit, /*Seed=*/7,
                              BlockBytes);
  ASSERT_TRUE(Writer.ok()) << Writer.error();
  Session.addRawSink(&Writer);
  auto W = workloads::createWorkloadByName(WorkloadName);
  ASSERT_TRUE(W);
  workloads::WorkloadConfig Config;
  Config.Scale = Scale;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();
  ASSERT_TRUE(Writer.close()) << Writer.error();
}

/// The session configuration every path in these tests uses, derived
/// from the trace header the way the daemon's OPEN handler does.
session::SessionConfig configFor(const traceio::TraceReader &Reader) {
  session::SessionConfig Config;
  Config.Policy =
      static_cast<memsim::AllocPolicy>(Reader.info().AllocPolicy);
  Config.Seed = Reader.info().Seed;
  return Config;
}

/// The serial ground truth: one ProfileSession fed by a whole-trace
/// replay on this thread (the `orp-trace replay` path).
SessionArtifacts serialArtifacts(const std::string &TracePath) {
  traceio::TraceReader Reader;
  EXPECT_TRUE(Reader.open(TracePath)) << Reader.error();
  session::ProfileSession Session("serial", configFor(Reader));
  EXPECT_TRUE(Session.replayFrom(Reader)) << Session.error();
  return Session.finalize();
}

/// Opens \p TracePath as a manager session (registering the recorded
/// probe tables the way an OPEN frame would).
SessionId openFor(session::SessionManager &Mgr,
                  traceio::TraceReader &Reader, const std::string &Name)
    ORP_REQUIRES(session::SessionControlRole) {
  return Mgr.open(Name, configFor(Reader), Reader.instructions(),
                  Reader.allocSites());
}

/// Submits block \p Index of \p Reader, spinning out backpressure.
void submitBlock(session::SessionManager &Mgr, SessionId Id,
                 traceio::TraceReader &Reader, size_t Index)
    ORP_REQUIRES(session::SessionControlRole) {
  traceio::TraceReader::RawBlock B = Reader.rawBlock(Index);
  SubmitStatus St;
  while ((St = Mgr.submitBlock(Id, B.Payload, B.PayloadLen, B.EventCount,
                               B.Crc, Reader.info().Version)) ==
         SubmitStatus::WouldBlock) {
  }
  ASSERT_EQ(St, SubmitStatus::Ok);
}

void expectSameProfile(const SessionArtifacts &A, const SessionArtifacts &B) {
  EXPECT_FALSE(A.Failed) << A.Error;
  EXPECT_FALSE(B.Failed) << B.Error;
  EXPECT_EQ(A.Events, B.Events);
  EXPECT_EQ(A.Omsg, B.Omsg);
  EXPECT_EQ(A.Leap, B.Leap);
}

} // namespace

//===----------------------------------------------------------------------===//
// Lifecycle
//===----------------------------------------------------------------------===//

TEST(SessionManagerTest, OpenCloseLifecycle) {
  // The test's thread is the manager's control thread.
  ScopedRole Role(session::SessionControlRole);
  session::ManagerConfig Config;
  session::SessionManager Mgr(Config);
  EXPECT_EQ(Mgr.numLiveSessions(), 0u);

  SessionId A = Mgr.open("a", session::SessionConfig{}, {}, {});
  SessionId B = Mgr.open("b", session::SessionConfig{}, {}, {});
  EXPECT_NE(A, B);
  EXPECT_EQ(Mgr.numLiveSessions(), 2u);

  session::SessionStats Stats;
  ASSERT_TRUE(Mgr.stats(A, Stats));
  EXPECT_EQ(Stats.Name, "a");
  EXPECT_EQ(Stats.Events, 0u);
  EXPECT_FALSE(Stats.Failed);
  EXPECT_GT(Stats.MemEstimateBytes, 0u);

  SessionArtifacts ArtA = Mgr.close(A);
  EXPECT_EQ(ArtA.Name, "a");
  EXPECT_FALSE(ArtA.Failed);
  EXPECT_FALSE(ArtA.Omsg.empty()); // Empty profiles still serialize.
  EXPECT_EQ(Mgr.numLiveSessions(), 1u);
  EXPECT_FALSE(Mgr.stats(A, Stats));

  // Closing an unknown id reports, not crashes.
  SessionArtifacts Unknown = Mgr.close(A);
  EXPECT_TRUE(Unknown.Failed);
  EXPECT_NE(Unknown.Error.find("unknown session id"), std::string::npos);

  EXPECT_TRUE(Mgr.abort(B));
  EXPECT_FALSE(Mgr.abort(B));
  EXPECT_EQ(Mgr.numLiveSessions(), 0u);
}

TEST(SessionManagerTest, AnonymousSessionsGetGeneratedNames) {
  ScopedRole Role(session::SessionControlRole);
  session::SessionManager Mgr(session::ManagerConfig{});
  SessionId Id = Mgr.open("", session::SessionConfig{}, {}, {});
  session::SessionStats Stats;
  ASSERT_TRUE(Mgr.stats(Id, Stats));
  EXPECT_EQ(Stats.Name, "s" + std::to_string(Id));
  Mgr.abort(Id);
}

//===----------------------------------------------------------------------===//
// Determinism goldens: interleaving and scheduler width change nothing
//===----------------------------------------------------------------------===//

TEST(SessionManagerTest, InterleavedSessionsMatchSerialReplay) {
  ScopedRole Role(session::SessionControlRole);
  std::string PathA = tempPath("ilv_a.orpt");
  std::string PathB = tempPath("ilv_b.orpt");
  recordTrace("list-traversal", PathA, /*Scale=*/1);
  recordTrace("list-traversal", PathB, /*Scale=*/2);
  SessionArtifacts SerialA = serialArtifacts(PathA);
  SessionArtifacts SerialB = serialArtifacts(PathB);

  for (unsigned Threads : {1u, 2u, 8u}) {
    traceio::TraceReader ReaderA, ReaderB;
    ASSERT_TRUE(ReaderA.open(PathA)) << ReaderA.error();
    ASSERT_TRUE(ReaderB.open(PathB)) << ReaderB.error();
    ASSERT_GT(ReaderA.numEventBlocks(), 4u)
        << "trace too small to interleave meaningfully";

    session::ManagerConfig Config;
    Config.Threads = Threads;
    Config.IngestQueueCapacity = 4;
    session::SessionManager Mgr(Config);
    SessionId A = openFor(Mgr, ReaderA, "a");
    SessionId B = openFor(Mgr, ReaderB, "b");

    // Strict block-by-block interleave: worst case for any scheduler
    // that accidentally shares state across sessions.
    size_t NumA = ReaderA.numEventBlocks(), NumB = ReaderB.numEventBlocks();
    for (size_t I = 0; I != NumA || I != NumB; ++I) {
      if (I < NumA)
        submitBlock(Mgr, A, ReaderA, I);
      if (I < NumB)
        submitBlock(Mgr, B, ReaderB, I);
      if (I >= NumA && I >= NumB)
        break;
    }
    SessionArtifacts ArtA = Mgr.close(A);
    SessionArtifacts ArtB = Mgr.close(B);
    expectSameProfile(ArtA, SerialA);
    expectSameProfile(ArtB, SerialB);
  }
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
}

//===----------------------------------------------------------------------===//
// Backpressure
//===----------------------------------------------------------------------===//

TEST(SessionManagerTest, FullIngestQueueReportsWouldBlock) {
  ScopedRole Role(session::SessionControlRole);
  std::string Path = tempPath("bp.orpt");
  recordTrace("list-traversal", Path);
  SessionArtifacts Serial = serialArtifacts(Path);

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  ASSERT_GT(Reader.numEventBlocks(), 6u);

  session::ManagerConfig Config;
  Config.Threads = 1;
  Config.IngestQueueCapacity = 2;
  session::SessionManager Mgr(Config);
  SessionId Id = openFor(Mgr, Reader, "bp");

  // Park the (only) shard worker so nothing drains.
  support::SpscQueue<int> Gate(1);
  ASSERT_EQ(Mgr.submitGate(Id, &Gate), SubmitStatus::Ok);

  // With the worker parked, at most capacity + 1 blocks fit (one slot
  // frees once the worker pops the gate item itself); then WouldBlock.
  size_t Accepted = 0;
  while (Accepted < Reader.numEventBlocks()) {
    traceio::TraceReader::RawBlock B = Reader.rawBlock(Accepted);
    SubmitStatus St = Mgr.submitBlock(Id, B.Payload, B.PayloadLen,
                                      B.EventCount, B.Crc,
                                      Reader.info().Version);
    if (St == SubmitStatus::WouldBlock)
      break;
    ASSERT_EQ(St, SubmitStatus::Ok);
    ++Accepted;
  }
  EXPECT_GE(Accepted, Config.IngestQueueCapacity - 1);
  EXPECT_LE(Accepted, Config.IngestQueueCapacity + 1);
  uint64_t Stalls = telemetry::Registry::global().snapshot().counter(
      "session.submit_backpressure");
  EXPECT_GE(Stalls, 1u);

  // Release the worker; the stalled stream finishes normally and the
  // profile is unaffected by ever having been backpressured.
  ASSERT_TRUE(Gate.push(1));
  for (size_t I = Accepted; I != Reader.numEventBlocks(); ++I)
    submitBlock(Mgr, Id, Reader, I);
  SessionArtifacts Art = Mgr.close(Id);
  expectSameProfile(Art, Serial);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Eviction under a memory budget
//===----------------------------------------------------------------------===//

TEST(SessionManagerTest, IdleLruSessionEvictedUnderBudget) {
  ScopedRole Role(session::SessionControlRole);
  std::string Path = tempPath("evict.orpt");
  recordTrace("list-traversal", Path);
  SessionArtifacts Serial = serialArtifacts(Path);

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();

  session::ManagerConfig Config;
  Config.Threads = 2;
  Config.MemoryBudgetBytes = 1; // Any two sessions exceed this.
  session::SessionManager Mgr(Config);

  std::vector<std::pair<SessionId, SessionArtifacts>> Evicted;
  Mgr.setEvictionHandler([&](SessionId Id, SessionArtifacts A) {
    Evicted.emplace_back(Id, std::move(A));
  });

  SessionId A = openFor(Mgr, Reader, "victim");
  for (size_t I = 0; I != Reader.numEventBlocks(); ++I)
    submitBlock(Mgr, A, Reader, I);
  // Wait until A is idle (eviction only takes idle victims).
  session::SessionStats Stats;
  do {
    ASSERT_TRUE(Mgr.stats(A, Stats));
  } while (Stats.Pending != 0);

  // Opening a second session busts the budget; idle LRU "victim" goes.
  SessionId B = Mgr.open("fresh", session::SessionConfig{}, {}, {});
  ASSERT_EQ(Evicted.size(), 1u);
  EXPECT_EQ(Evicted[0].first, A);
  EXPECT_EQ(Evicted[0].second.Name, "victim");
  expectSameProfile(Evicted[0].second, Serial); // Evict == clean close.
  EXPECT_EQ(Mgr.numLiveSessions(), 1u);
  EXPECT_FALSE(Mgr.stats(A, Stats));

  // The survivor is never evicted below two live sessions, no matter
  // how far over budget the manager sits.
  EXPECT_EQ(Mgr.enforceBudget(), 0u);
  EXPECT_TRUE(Mgr.stats(B, Stats));
  Mgr.abort(B);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Corruption isolation
//===----------------------------------------------------------------------===//

TEST(SessionManagerTest, CorruptBlockFailsOnlyItsOwnSession) {
  ScopedRole Role(session::SessionControlRole);
  std::string Path = tempPath("corrupt.orpt");
  recordTrace("list-traversal", Path);
  SessionArtifacts Serial = serialArtifacts(Path);

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();

  session::ManagerConfig Config;
  Config.Threads = 2;
  session::SessionManager Mgr(Config);
  SessionId Bad = openFor(Mgr, Reader, "bad");
  SessionId Good = openFor(Mgr, Reader, "good");

  // Session "bad" gets block 0 with a flipped payload byte.
  traceio::TraceReader::RawBlock B0 = Reader.rawBlock(0);
  std::vector<uint8_t> Tampered(B0.Payload, B0.Payload + B0.PayloadLen);
  Tampered[Tampered.size() / 2] ^= 0x40;
  SubmitStatus St;
  while ((St = Mgr.submitBlock(Bad, Tampered.data(), Tampered.size(),
                               B0.EventCount, B0.Crc,
                               Reader.info().Version)) ==
         SubmitStatus::WouldBlock) {
  }
  ASSERT_EQ(St, SubmitStatus::Ok);

  // Session "good" replays the whole (intact) trace concurrently.
  for (size_t I = 0; I != Reader.numEventBlocks(); ++I)
    submitBlock(Mgr, Good, Reader, I);

  // "bad" latches its failure and rejects further blocks.
  session::SessionStats Stats;
  do {
    ASSERT_TRUE(Mgr.stats(Bad, Stats));
  } while (Stats.Pending != 0);
  EXPECT_TRUE(Stats.Failed);
  EXPECT_NE(Stats.Error.find("checksum mismatch"), std::string::npos)
      << Stats.Error;
  traceio::TraceReader::RawBlock B1 = Reader.rawBlock(1);
  EXPECT_EQ(Mgr.submitBlock(Bad, B1.Payload, B1.PayloadLen, B1.EventCount,
                            B1.Crc, Reader.info().Version),
            SubmitStatus::Failed);

  SessionArtifacts BadArt = Mgr.close(Bad);
  EXPECT_TRUE(BadArt.Failed);
  EXPECT_FALSE(BadArt.Error.empty());

  // The neighbor never notices.
  SessionArtifacts GoodArt = Mgr.close(Good);
  expectSameProfile(GoodArt, Serial);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Wire protocol codecs
//===----------------------------------------------------------------------===//

TEST(WireTest, FrameParserReassemblesByteByByte) {
  std::vector<uint8_t> Stream;
  session::appendFrame(session::FrameType::Open, {1, 2, 3}, Stream);
  session::appendFrame(session::FrameType::Close, {}, Stream);

  session::FrameParser Parser;
  std::vector<session::Frame> Got;
  session::Frame F;
  for (uint8_t Byte : Stream) {
    Parser.feed(&Byte, 1);
    while (Parser.next(F))
      Got.push_back(F);
  }
  ASSERT_EQ(Got.size(), 2u);
  EXPECT_EQ(Got[0].Type, session::FrameType::Open);
  EXPECT_EQ(Got[0].Payload, (std::vector<uint8_t>{1, 2, 3}));
  EXPECT_EQ(Got[1].Type, session::FrameType::Close);
  EXPECT_TRUE(Got[1].Payload.empty());
  EXPECT_FALSE(Parser.failed());
}

TEST(WireTest, FrameParserRejectsOversizedLength) {
  // Length prefix far over kMaxFrameLength: a desynced client.
  std::vector<uint8_t> Bad = {0xff, 0xff, 0xff, 0xff, 0x01};
  session::FrameParser Parser;
  Parser.feed(Bad.data(), Bad.size());
  session::Frame F;
  EXPECT_FALSE(Parser.next(F));
  EXPECT_TRUE(Parser.failed());
  EXPECT_NE(Parser.error().find("bad frame length"), std::string::npos);
}

TEST(WireTest, OpenRequestRoundTrips) {
  session::OpenRequest Req;
  Req.Name = "roundtrip";
  Req.Config.Policy = memsim::AllocPolicy::BestFit;
  Req.Config.Seed = 1234567;
  Req.Config.EnableWhomp = true;
  Req.Config.EnableLeap = false;
  Req.Config.MaxLmads = 17;
  Req.Instrs.push_back({"load_a", trace::AccessKind::Load});
  Req.Sites.push_back({"site_x", "node_t"});

  std::vector<uint8_t> Payload;
  session::encodeOpen(Req, Payload);
  session::OpenRequest Out;
  std::string Err;
  ASSERT_TRUE(session::decodeOpen(Payload.data(), Payload.size(), Out, Err))
      << Err;
  EXPECT_EQ(Out.Name, "roundtrip");
  EXPECT_EQ(Out.Config.Policy, memsim::AllocPolicy::BestFit);
  EXPECT_EQ(Out.Config.Seed, 1234567u);
  EXPECT_TRUE(Out.Config.EnableWhomp);
  EXPECT_FALSE(Out.Config.EnableLeap);
  EXPECT_EQ(Out.Config.MaxLmads, 17u);
  ASSERT_EQ(Out.Instrs.size(), 1u);
  EXPECT_EQ(Out.Instrs[0].Name, "load_a");
  ASSERT_EQ(Out.Sites.size(), 1u);
  EXPECT_EQ(Out.Sites[0].TypeName, "node_t");

  // Truncation is an error, not a crash.
  ASSERT_GT(Payload.size(), 3u);
  EXPECT_FALSE(
      session::decodeOpen(Payload.data(), Payload.size() - 3, Out, Err));
  EXPECT_FALSE(Err.empty());
}

TEST(WireTest, EventsHeaderAndCloseSummaryRoundTrip) {
  std::vector<uint8_t> Payload;
  session::encodeEventsHeader(99, 1234, traceio::kFormatVersionV2,
                              0xdeadbeef, Payload);
  Payload.push_back(0x7f); // The block payload follows the header.
  session::EventsHeader H;
  std::string Err;
  ASSERT_TRUE(
      session::decodeEventsHeader(Payload.data(), Payload.size(), H, Err))
      << Err;
  EXPECT_EQ(H.SessionId, 99u);
  EXPECT_EQ(H.EventCount, 1234u);
  EXPECT_EQ(H.FormatVersion, traceio::kFormatVersionV2);
  EXPECT_EQ(H.Crc, 0xdeadbeefu);
  EXPECT_EQ(Payload[H.PayloadOffset], 0x7f);

  session::CloseSummary S;
  S.Events = 42;
  S.Failed = true;
  S.Error = "boom";
  S.Omsg = {1, 2};
  S.Leap = {3};
  std::vector<uint8_t> Encoded;
  session::encodeCloseSummary(S, Encoded);
  session::CloseSummary Out;
  ASSERT_TRUE(session::decodeCloseSummary(Encoded.data(), Encoded.size(),
                                          Out, Err))
      << Err;
  EXPECT_EQ(Out.Events, 42u);
  EXPECT_TRUE(Out.Failed);
  EXPECT_EQ(Out.Error, "boom");
  EXPECT_EQ(Out.Omsg, S.Omsg);
  EXPECT_EQ(Out.Leap, S.Leap);
}

//===----------------------------------------------------------------------===//
// Daemon + client, in process
//===----------------------------------------------------------------------===//

namespace {

/// Runs a Daemon on a background thread for one test's lifetime.
class DaemonFixture {
public:
  explicit DaemonFixture(const std::string &Tag, unsigned Threads = 2) {
    Config.SocketPath = tempPath(Tag + ".sock");
    Config.Manager.Threads = Threads;
    Daemon = std::make_unique<session::Daemon>(Config);
    std::string Err;
    {
      // start() runs here, before the control thread exists; the claim
      // hands over when the run() thread below claims for its lifetime.
      ScopedRole Role(session::SessionControlRole);
      Started = Daemon->start(Err);
    }
    EXPECT_TRUE(Started) << Err;
    if (Started)
      Thread = std::make_unique<support::ScopedThread>([this] {
        ScopedRole Role(session::SessionControlRole);
        Daemon->run([this] { return Stop.load(); });
      });
  }

  ~DaemonFixture() {
    Stop.store(true);
    if (Thread)
      Thread->join();
    Daemon.reset();
    std::remove(Config.SocketPath.c_str());
  }

  const std::string &socketPath() const { return Config.SocketPath; }
  bool started() const { return Started; }

private:
  session::DaemonConfig Config;
  std::unique_ptr<session::Daemon> Daemon;
  std::unique_ptr<support::ScopedThread> Thread;
  std::atomic<bool> Stop{false};
  bool Started = false;
};

/// Opens a session for \p Reader's trace over \p Client.
bool openOver(session::Client &Client, traceio::TraceReader &Reader,
              const std::string &Name, uint64_t &Id, std::string &Err) {
  session::OpenRequest Req;
  Req.Name = Name;
  Req.Config = configFor(Reader);
  Req.Instrs = Reader.instructions();
  Req.Sites = Reader.allocSites();
  return Client.openSession(Req, Id, Err);
}

} // namespace

TEST(DaemonTest, RoundTripMatchesSerialReplay) {
  std::string Path = tempPath("daemon.orpt");
  recordTrace("list-traversal", Path);
  SessionArtifacts Serial = serialArtifacts(Path);

  DaemonFixture Fixture("rt");
  ASSERT_TRUE(Fixture.started());

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();

  session::Client Client;
  std::string Err;
  ASSERT_TRUE(Client.connect(Fixture.socketPath(), Err)) << Err;

  uint64_t Id = 0;
  ASSERT_TRUE(openOver(Client, Reader, "rt", Id, Err)) << Err;
  ASSERT_TRUE(Client.submitTrace(Id, Reader, Err)) << Err;

  // Live per-session telemetry through the existing exporters.
  std::string Prom;
  ASSERT_TRUE(Client.snapshot(/*Format=*/2, "rt", Prom, Err)) << Err;
  EXPECT_NE(Prom.find("orp_session_rt_events"), std::string::npos) << Prom;
  std::string Json;
  ASSERT_TRUE(Client.snapshot(/*Format=*/0, "", Json, Err)) << Err;
  EXPECT_NE(Json.find("\"session.live\""), std::string::npos);

  session::CloseSummary Summary;
  ASSERT_TRUE(Client.closeSession(Id, Summary, Err)) << Err;
  EXPECT_FALSE(Summary.Failed) << Summary.Error;
  EXPECT_EQ(Summary.Events, Serial.Events);
  EXPECT_EQ(Summary.Omsg, Serial.Omsg);
  EXPECT_EQ(Summary.Leap, Serial.Leap);
  std::remove(Path.c_str());
}

TEST(DaemonTest, TwoClientsInterleavedMatchSerialReplay) {
  std::string PathA = tempPath("dual_a.orpt");
  std::string PathB = tempPath("dual_b.orpt");
  recordTrace("list-traversal", PathA, /*Scale=*/1);
  recordTrace("list-traversal", PathB, /*Scale=*/2);
  SessionArtifacts SerialA = serialArtifacts(PathA);
  SessionArtifacts SerialB = serialArtifacts(PathB);

  DaemonFixture Fixture("dual");
  ASSERT_TRUE(Fixture.started());

  traceio::TraceReader ReaderA, ReaderB;
  ASSERT_TRUE(ReaderA.open(PathA)) << ReaderA.error();
  ASSERT_TRUE(ReaderB.open(PathB)) << ReaderB.error();

  session::Client ClientA, ClientB;
  std::string Err;
  ASSERT_TRUE(ClientA.connect(Fixture.socketPath(), Err)) << Err;
  ASSERT_TRUE(ClientB.connect(Fixture.socketPath(), Err)) << Err;

  uint64_t IdA = 0, IdB = 0;
  ASSERT_TRUE(openOver(ClientA, ReaderA, "dual_a", IdA, Err)) << Err;
  ASSERT_TRUE(openOver(ClientB, ReaderB, "dual_b", IdB, Err)) << Err;

  // Interleave at block granularity across the two connections.
  size_t NumA = ReaderA.numEventBlocks(), NumB = ReaderB.numEventBlocks();
  for (size_t I = 0; I < NumA || I < NumB; ++I) {
    if (I < NumA)
      ASSERT_TRUE(ClientA.submitBlock(IdA, ReaderA.rawBlock(I),
                                      ReaderA.info().Version, Err))
          << Err;
    if (I < NumB)
      ASSERT_TRUE(ClientB.submitBlock(IdB, ReaderB.rawBlock(I),
                                      ReaderB.info().Version, Err))
          << Err;
  }

  session::CloseSummary SummaryA, SummaryB;
  ASSERT_TRUE(ClientA.closeSession(IdA, SummaryA, Err)) << Err;
  ASSERT_TRUE(ClientB.closeSession(IdB, SummaryB, Err)) << Err;
  EXPECT_FALSE(SummaryA.Failed) << SummaryA.Error;
  EXPECT_FALSE(SummaryB.Failed) << SummaryB.Error;
  EXPECT_EQ(SummaryA.Omsg, SerialA.Omsg);
  EXPECT_EQ(SummaryA.Leap, SerialA.Leap);
  EXPECT_EQ(SummaryB.Omsg, SerialB.Omsg);
  EXPECT_EQ(SummaryB.Leap, SerialB.Leap);
  std::remove(PathA.c_str());
  std::remove(PathB.c_str());
}

TEST(DaemonTest, AbruptDisconnectAbortsOnlyThatClientsSessions) {
  std::string Path = tempPath("drop.orpt");
  recordTrace("list-traversal", Path);
  SessionArtifacts Serial = serialArtifacts(Path);

  DaemonFixture Fixture("drop");
  ASSERT_TRUE(Fixture.started());

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();

  uint64_t AbortedBefore = telemetry::Registry::global().snapshot().counter(
      "session.aborted");

  // Client A opens a session, streams one block, and vanishes.
  {
    session::Client Doomed;
    std::string Err;
    ASSERT_TRUE(Doomed.connect(Fixture.socketPath(), Err)) << Err;
    uint64_t Id = 0;
    ASSERT_TRUE(openOver(Doomed, Reader, "doomed", Id, Err)) << Err;
    ASSERT_TRUE(Doomed.submitBlock(Id, Reader.rawBlock(0),
                                   Reader.info().Version, Err))
        << Err;
  } // Destructor closes the socket mid-stream; no CLOSE frame sent.

  // Client B is unaffected: full stream, byte-identical profile.
  session::Client Client;
  std::string Err;
  ASSERT_TRUE(Client.connect(Fixture.socketPath(), Err)) << Err;
  uint64_t Id = 0;
  ASSERT_TRUE(openOver(Client, Reader, "survivor", Id, Err)) << Err;
  ASSERT_TRUE(Client.submitTrace(Id, Reader, Err)) << Err;

  // The daemon reaps the dead connection on its poll cadence; wait for
  // the abort to land before asserting on it.
  bool Aborted = false;
  for (int Try = 0; Try != 200 && !Aborted; ++Try) {
    std::string Text;
    ASSERT_TRUE(Client.snapshot(/*Format=*/1, "", Text, Err)) << Err;
    Aborted = telemetry::Registry::global().snapshot().counter(
                  "session.aborted") > AbortedBefore;
  }
  EXPECT_TRUE(Aborted);

  session::CloseSummary Summary;
  ASSERT_TRUE(Client.closeSession(Id, Summary, Err)) << Err;
  EXPECT_FALSE(Summary.Failed) << Summary.Error;
  EXPECT_EQ(Summary.Omsg, Serial.Omsg);
  EXPECT_EQ(Summary.Leap, Serial.Leap);
  std::remove(Path.c_str());
}

TEST(DaemonTest, CorruptStreamGetsErrorReplyOthersUnaffected) {
  std::string Path = tempPath("derr.orpt");
  recordTrace("list-traversal", Path);
  SessionArtifacts Serial = serialArtifacts(Path);

  DaemonFixture Fixture("derr");
  ASSERT_TRUE(Fixture.started());

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();

  session::Client Client;
  std::string Err;
  ASSERT_TRUE(Client.connect(Fixture.socketPath(), Err)) << Err;
  uint64_t BadId = 0, GoodId = 0;
  ASSERT_TRUE(openOver(Client, Reader, "derr_bad", BadId, Err)) << Err;
  ASSERT_TRUE(openOver(Client, Reader, "derr_good", GoodId, Err)) << Err;

  // A tampered block: the daemon keeps running and the session reports
  // its decode error on the next submit (or at close).
  traceio::TraceReader::RawBlock B0 = Reader.rawBlock(0);
  traceio::TraceReader::RawBlock Tampered = B0;
  std::vector<uint8_t> Bytes(B0.Payload, B0.Payload + B0.PayloadLen);
  Bytes[Bytes.size() / 2] ^= 0x20;
  Tampered.Payload = Bytes.data();
  ASSERT_TRUE(Client.submitBlock(BadId, Tampered, Reader.info().Version,
                                 Err))
      << Err;

  ASSERT_TRUE(Client.submitTrace(GoodId, Reader, Err)) << Err;

  session::CloseSummary BadSummary;
  ASSERT_TRUE(Client.closeSession(BadId, BadSummary, Err)) << Err;
  EXPECT_TRUE(BadSummary.Failed);
  EXPECT_NE(BadSummary.Error.find("checksum mismatch"), std::string::npos)
      << BadSummary.Error;

  session::CloseSummary GoodSummary;
  ASSERT_TRUE(Client.closeSession(GoodId, GoodSummary, Err)) << Err;
  EXPECT_FALSE(GoodSummary.Failed) << GoodSummary.Error;
  EXPECT_EQ(GoodSummary.Omsg, Serial.Omsg);
  EXPECT_EQ(GoodSummary.Leap, Serial.Leap);
  std::remove(Path.c_str());
}

TEST(DaemonTest, ClosingForeignSessionIsRejected) {
  DaemonFixture Fixture("foreign");
  ASSERT_TRUE(Fixture.started());

  session::Client A, B;
  std::string Err;
  ASSERT_TRUE(A.connect(Fixture.socketPath(), Err)) << Err;
  ASSERT_TRUE(B.connect(Fixture.socketPath(), Err)) << Err;

  session::OpenRequest Req;
  Req.Name = "mine";
  uint64_t Id = 0;
  ASSERT_TRUE(A.openSession(Req, Id, Err)) << Err;

  // B never opened Id; the daemon must not let it close A's session.
  session::CloseSummary Summary;
  EXPECT_FALSE(B.closeSession(Id, Summary, Err));
  EXPECT_NE(Err.find("not open on this connection"), std::string::npos)
      << Err;

  ASSERT_TRUE(A.closeSession(Id, Summary, Err)) << Err;
  EXPECT_FALSE(Summary.Failed);
}

//===----------------------------------------------------------------------===//
// Version / format pinning
//===----------------------------------------------------------------------===//

TEST(VersionTest, SupportedFormatRangeCoversTheWriterFormat) {
  // support/Version.h cannot include traceio (layering); this pin keeps
  // the advertised range honest when the format gains a revision.
  EXPECT_LE(support::kMinTraceFormatVersion,
            static_cast<unsigned>(traceio::kFormatVersion));
  EXPECT_GE(support::kMaxTraceFormatVersion,
            static_cast<unsigned>(traceio::kFormatVersion));
}
