//===- tests/baseline_test.cpp - Baseline profiler unit tests ------------===//

#include "baseline/ConnorsProfiler.h"
#include "baseline/ExactDependence.h"
#include "baseline/ExactStride.h"
#include "baseline/RasgProfiler.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace orp;
using namespace orp::baseline;

namespace {

trace::AccessEvent store(trace::InstrId I, uint64_t Addr, uint64_t T) {
  return trace::AccessEvent{I, Addr, 8, true, T};
}

trace::AccessEvent load(trace::InstrId I, uint64_t Addr, uint64_t T) {
  return trace::AccessEvent{I, Addr, 8, false, T};
}

} // namespace

//===----------------------------------------------------------------------===//
// ExactDependenceProfiler
//===----------------------------------------------------------------------===//

TEST(ExactDependenceTest, SimpleRawDependence) {
  ExactDependenceProfiler P;
  P.onAccess(store(1, 0x100, 0));
  P.onAccess(load(2, 0x100, 1));
  P.onAccess(load(2, 0x200, 2)); // Independent address.
  auto Mdf = P.mdf();
  ASSERT_TRUE(Mdf.count({1, 2}));
  EXPECT_DOUBLE_EQ((Mdf[{1, 2}]), 0.5);
  EXPECT_EQ(P.loadExecCount(2), 2u);
  EXPECT_EQ(P.conflictCount(1, 2), 1u);
}

TEST(ExactDependenceTest, AnyEarlierStoreCounts) {
  // The paper's conflict definition is "st wrote A at t1, ld reads A at
  // t2 > t1" — not just the last writer.
  ExactDependenceProfiler P;
  P.onAccess(store(1, 0x100, 0));
  P.onAccess(store(3, 0x100, 1)); // Overwrites, but 1 still conflicts.
  P.onAccess(load(2, 0x100, 2));
  auto Mdf = P.mdf();
  EXPECT_DOUBLE_EQ((Mdf[{1, 2}]), 1.0);
  EXPECT_DOUBLE_EQ((Mdf[{3, 2}]), 1.0);
}

TEST(ExactDependenceTest, LoadBeforeStoreIsNotRaw) {
  ExactDependenceProfiler P;
  P.onAccess(load(2, 0x100, 0));
  P.onAccess(store(1, 0x100, 1));
  EXPECT_TRUE(P.mdf().empty());
}

TEST(ExactDependenceTest, RepeatedStoreCountsOncePerLoadExec) {
  ExactDependenceProfiler P;
  P.onAccess(store(1, 0x100, 0));
  P.onAccess(store(1, 0x100, 1));
  P.onAccess(load(2, 0x100, 2));
  EXPECT_EQ(P.conflictCount(1, 2), 1u);
  P.onAccess(load(2, 0x100, 3));
  EXPECT_EQ(P.conflictCount(1, 2), 2u);
}

//===----------------------------------------------------------------------===//
// ConnorsProfiler
//===----------------------------------------------------------------------===//

TEST(ConnorsTest, DetectsWithinWindow) {
  ConnorsProfiler P(4);
  P.onAccess(store(1, 0x100, 0));
  P.onAccess(load(2, 0x100, 1));
  auto Mdf = P.mdf();
  EXPECT_DOUBLE_EQ((Mdf[{1, 2}]), 1.0);
}

TEST(ConnorsTest, MissesBeyondWindow) {
  ConnorsProfiler P(4);
  P.onAccess(store(1, 0x100, 0));
  // Push 4 more stores so the window evicts the first one.
  for (int I = 0; I != 4; ++I)
    P.onAccess(store(3, 0x200 + I * 8, 1 + I));
  P.onAccess(load(2, 0x100, 10));
  EXPECT_FALSE(P.mdf().count({1, 2})) << "evicted store must be missed";
}

TEST(ConnorsTest, DuplicateStoreInWindowCountsOnce) {
  ConnorsProfiler P(8);
  P.onAccess(store(1, 0x100, 0));
  P.onAccess(store(1, 0x100, 1));
  P.onAccess(load(2, 0x100, 2));
  auto Mdf = P.mdf();
  EXPECT_DOUBLE_EQ((Mdf[{1, 2}]), 1.0);
}

TEST(ConnorsTest, NeverOverestimatesVsExact) {
  // Figure 7's characterization: the window profiler never reports a
  // higher frequency than the exact profiler, on any trace.
  Rng R(11);
  for (int Trial = 0; Trial != 20; ++Trial) {
    ExactDependenceProfiler Exact;
    ConnorsProfiler Connors(16);
    for (int I = 0; I != 2000; ++I) {
      trace::InstrId Instr = static_cast<trace::InstrId>(R.nextBelow(8));
      uint64_t Addr = 0x1000 + R.nextBelow(64) * 8;
      bool IsStore = R.nextBool(0.5);
      trace::AccessEvent E{Instr, Addr, 8, IsStore,
                           static_cast<uint64_t>(I)};
      Exact.onAccess(E);
      Connors.onAccess(E);
    }
    auto ExactMdf = Exact.mdf();
    for (const auto &[Pair, Freq] : Connors.mdf()) {
      ASSERT_TRUE(ExactMdf.count(Pair))
          << "window profiler invented a pair";
      ASSERT_LE(Freq, ExactMdf[Pair] + 1e-12)
          << "window profiler overestimated";
    }
  }
}

TEST(ConnorsTest, LargerWindowFindsMore) {
  Rng R(13);
  std::vector<trace::AccessEvent> Trace;
  for (int I = 0; I != 4000; ++I)
    Trace.push_back(trace::AccessEvent{
        static_cast<trace::InstrId>(R.nextBelow(6)),
        0x1000 + R.nextBelow(512) * 8, 8, R.nextBool(0.5),
        static_cast<uint64_t>(I)});
  ConnorsProfiler Small(4), Big(512);
  for (const auto &E : Trace) {
    Small.onAccess(E);
    Big.onAccess(E);
  }
  double SmallMass = 0, BigMass = 0;
  for (const auto &[Pair, Freq] : Small.mdf())
    SmallMass += Freq;
  for (const auto &[Pair, Freq] : Big.mdf())
    BigMass += Freq;
  EXPECT_GT(BigMass, SmallMass);
}

//===----------------------------------------------------------------------===//
// ExactStrideProfiler
//===----------------------------------------------------------------------===//

TEST(ExactStrideTest, DetectsPureStride) {
  ExactStrideProfiler P;
  for (int I = 0; I != 100; ++I)
    P.onAccess(load(1, 0x1000 + I * 8, I));
  auto S = P.stronglyStrided();
  ASSERT_TRUE(S.count(1));
  EXPECT_EQ(S[1].Stride, 8);
  EXPECT_DOUBLE_EQ(S[1].Share, 1.0);
}

TEST(ExactStrideTest, RandomAccessNotStrided) {
  ExactStrideProfiler P;
  Rng R(17);
  for (int I = 0; I != 500; ++I)
    P.onAccess(load(1, 0x1000 + R.nextBelow(100000) * 8, I));
  EXPECT_FALSE(P.stronglyStrided().count(1));
}

TEST(ExactStrideTest, SeventyPercentBoundary) {
  ExactStrideProfiler P;
  // 70 steps of stride 8, 30 steps of assorted strides: share is
  // exactly 0.70 -> strongly strided at the default threshold.
  uint64_t Addr = 0x1000;
  P.onAccess(load(1, Addr, 0));
  for (int I = 0; I != 70; ++I)
    P.onAccess(load(1, Addr += 8, 1 + I));
  for (int I = 0; I != 30; ++I)
    P.onAccess(load(1, Addr += 24 + I * 16, 100 + I));
  auto S = P.stronglyStrided();
  ASSERT_TRUE(S.count(1));
  EXPECT_NEAR(S[1].Share, 0.70, 1e-9);
}

TEST(ExactStrideTest, TracksAllStrides) {
  ExactStrideProfiler P;
  P.onAccess(load(1, 100, 0));
  P.onAccess(load(1, 108, 1));
  P.onAccess(load(1, 100, 2));
  P.onAccess(load(1, 108, 3));
  const auto &S = P.strides(1);
  EXPECT_EQ(S.size(), 2u);
  EXPECT_EQ(S.at(8), 2u);
  EXPECT_EQ(S.at(-8), 1u);
}

//===----------------------------------------------------------------------===//
// RasgProfiler
//===----------------------------------------------------------------------===//

TEST(RasgTest, GrammarsRecordBothComponents) {
  RasgProfiler P;
  P.onAccess(load(1, 0x100, 0));
  P.onAccess(load(2, 0x108, 1));
  P.onAccess(load(1, 0x100, 2));
  EXPECT_EQ(P.accessesSeen(), 3u);
  EXPECT_EQ(P.addressGrammar().expandAll(),
            (std::vector<uint64_t>{0x100, 0x108, 0x100}));
  EXPECT_EQ(P.instructionGrammar().expandAll(),
            (std::vector<uint64_t>{1, 2, 1}));
  EXPECT_GT(P.serializedSizeBytes(), 0u);
}

TEST(RasgTest, RepetitiveTraceCompresses) {
  RasgProfiler P;
  for (int Rep = 0; Rep != 200; ++Rep)
    for (int I = 0; I != 4; ++I)
      P.onAccess(load(static_cast<trace::InstrId>(I), 0x1000 + I * 8,
                      Rep * 4 + I));
  EXPECT_LT(P.serializedSizeBytes(), 200u);
}
