//===- tests/lmad_test.cpp - LMAD compressor unit tests ------------------===//

#include "lmad/Lmad.h"
#include "lmad/LmadCompressor.h"
#include "support/Random.h"

#include <gtest/gtest.h>

using namespace orp;
using namespace orp::lmad;

namespace {

Point p1(int64_t V) { return Point{V, 0, 0}; }
Point p3(int64_t A, int64_t B, int64_t C) { return Point{A, B, C}; }

} // namespace

//===----------------------------------------------------------------------===//
// Lmad
//===----------------------------------------------------------------------===//

TEST(LmadTest, PointGeneration) {
  Lmad L;
  L.Dims = 2;
  L.Start = {10, 100, 0};
  L.Stride = {2, -5, 0};
  L.Count = 4;
  EXPECT_EQ(L.at(0, 0), 10);
  EXPECT_EQ(L.at(3, 0), 16);
  EXPECT_EQ(L.at(3, 1), 85);
  EXPECT_EQ(L.pointAt(2)[0], 14);
  EXPECT_TRUE(L.extends(p3(18, 80, 0)));
  EXPECT_FALSE(L.extends(p3(18, 81, 0)));
}

TEST(LmadTest, ContainsSolvesConsistentIndex) {
  Lmad L;
  L.Dims = 3;
  L.Start = {0, 100, 7};
  L.Stride = {1, 4, 2};
  L.Count = 10;
  EXPECT_TRUE(L.contains(p3(0, 100, 7)));
  EXPECT_TRUE(L.contains(p3(9, 136, 25)));
  EXPECT_FALSE(L.contains(p3(10, 140, 27))); // Index out of count.
  EXPECT_FALSE(L.contains(p3(1, 100, 9)));   // Inconsistent index.
  EXPECT_FALSE(L.contains(p3(1, 106, 9)));   // Not on stride.
}

TEST(LmadTest, ContainsWithZeroStrideDims) {
  Lmad L;
  L.Dims = 3;
  L.Start = {5, 0, 0};
  L.Stride = {0, 8, 1};
  L.Count = 4;
  EXPECT_TRUE(L.contains(p3(5, 16, 2)));
  EXPECT_FALSE(L.contains(p3(6, 16, 2))); // Wrong fixed dimension.
}

//===----------------------------------------------------------------------===//
// LmadCompressor: basic shapes
//===----------------------------------------------------------------------===//

TEST(LmadCompressorTest, PureLinearStreamIsOneDescriptor) {
  LmadCompressor C(1);
  for (int64_t V = 0; V < 400; V += 4)
    C.addValue(V);
  ASSERT_EQ(C.lmads().size(), 1u);
  EXPECT_EQ(C.lmads()[0].Start[0], 0);
  EXPECT_EQ(C.lmads()[0].Stride[0], 4);
  EXPECT_EQ(C.lmads()[0].Count, 100u);
  EXPECT_TRUE(C.fullyCaptured());
}

TEST(LmadCompressorTest, PaperExampleTwoRuns) {
  // Section 4.1: (0, 4, 8, 12, 36, 40, 44, 48) -> [0,4,4], [36,4,4].
  LmadCompressor C(1);
  for (int64_t V : {0, 4, 8, 12, 36, 40, 44, 48})
    C.addValue(V);
  ASSERT_EQ(C.lmads().size(), 2u);
  EXPECT_EQ(C.lmads()[0].Start[0], 0);
  EXPECT_EQ(C.lmads()[0].Stride[0], 4);
  EXPECT_EQ(C.lmads()[0].Count, 4u);
  EXPECT_EQ(C.lmads()[1].Start[0], 36);
  EXPECT_EQ(C.lmads()[1].Stride[0], 4);
  EXPECT_EQ(C.lmads()[1].Count, 4u);
}

TEST(LmadCompressorTest, ResplitRecoversRunAfterStray) {
  // 0, 100, 104, 108: the greedy two-point descriptor [0,+100] must be
  // split back so the +4 run is found.
  LmadCompressor C(1);
  for (int64_t V : {0, 100, 104, 108})
    C.addValue(V);
  ASSERT_EQ(C.lmads().size(), 2u);
  EXPECT_EQ(C.lmads()[0].Count, 1u);
  EXPECT_EQ(C.lmads()[1].Start[0], 100);
  EXPECT_EQ(C.lmads()[1].Stride[0], 4);
  EXPECT_EQ(C.lmads()[1].Count, 3u);
}

TEST(LmadCompressorTest, ConstantStreamHasZeroStride) {
  LmadCompressor C(1);
  for (int I = 0; I != 50; ++I)
    C.addValue(7);
  ASSERT_EQ(C.lmads().size(), 1u);
  EXPECT_EQ(C.lmads()[0].Stride[0], 0);
  EXPECT_EQ(C.lmads()[0].Count, 50u);
}

TEST(LmadCompressorTest, MultiDimExtension) {
  // (object, offset, time) advancing jointly: one descriptor.
  LmadCompressor C(3);
  for (int64_t K = 0; K != 20; ++K)
    C.addPoint(p3(K, 8, 100 + 3 * K));
  ASSERT_EQ(C.lmads().size(), 1u);
  EXPECT_EQ(C.lmads()[0].Stride[0], 1);
  EXPECT_EQ(C.lmads()[0].Stride[1], 0);
  EXPECT_EQ(C.lmads()[0].Stride[2], 3);
}

TEST(LmadCompressorTest, DimensionMismatchBreaksRun) {
  LmadCompressor C(3);
  for (int64_t K = 0; K != 10; ++K)
    C.addPoint(p3(K, 8, K));
  C.addPoint(p3(10, 12, 10)); // Offset deviates.
  EXPECT_EQ(C.lmads().size(), 2u);
}

//===----------------------------------------------------------------------===//
// Overflow behavior
//===----------------------------------------------------------------------===//

TEST(LmadCompressorTest, CapExhaustionDropsAndSummarizes) {
  LmadCompressor C(1, /*MaxLmads=*/4);
  // 8 disjoint runs of 5; only the first few descriptors fit.
  for (int Run = 0; Run != 8; ++Run)
    for (int I = 0; I != 5; ++I)
      C.addValue(Run * 1000 + I * 3);
  EXPECT_EQ(C.lmads().size(), 4u);
  EXPECT_FALSE(C.fullyCaptured());
  EXPECT_EQ(C.totalPoints(), 40u);
  EXPECT_GT(C.overflow().Dropped, 0u);
  EXPECT_EQ(C.capturedPoints() + C.overflow().Dropped, 40u);
  // Summary covers the discarded range.
  EXPECT_GE(C.overflow().Max[0], C.overflow().Min[0]);
}

TEST(LmadCompressorTest, OverflowGranularityIsGcdOfDeltas) {
  LmadCompressor C(1, 1);
  C.addValue(0);
  C.addValue(1); // Descriptor [0, +1, 2]; everything after overflows.
  C.addValue(100);
  C.addValue(112);
  C.addValue(148);
  // Discards: 100, 112, 148 -> deltas 12, 36 -> gcd 12.
  EXPECT_EQ(C.overflow().Dropped, 3u);
  EXPECT_EQ(C.overflow().Granularity[0], 12);
  EXPECT_EQ(C.overflow().Min[0], 100);
  EXPECT_EQ(C.overflow().Max[0], 148);
}

TEST(LmadCompressorTest, SampleIsInitialPrefix) {
  // Once lossy, the captured points must be the stream's initial part,
  // matching the paper's "sample of the initial part" semantics.
  LmadCompressor C(1, 2);
  std::vector<Point> Fed;
  Rng R(9);
  int64_t V = 0;
  for (int I = 0; I != 200; ++I) {
    V += 1 + static_cast<int64_t>(R.nextBelow(3)) * 7;
    Fed.push_back(p1(V));
    C.addPoint(p1(V));
  }
  auto Got = C.reconstruct();
  ASSERT_LE(Got.size(), Fed.size());
  for (size_t I = 0; I != Got.size(); ++I)
    EXPECT_EQ(Got[I][0], Fed[I][0]) << "not a prefix at " << I;
}

//===----------------------------------------------------------------------===//
// Reconstruction property
//===----------------------------------------------------------------------===//

struct PiecewiseSpec {
  const char *Name;
  unsigned Runs;
  unsigned RunLen;
  unsigned Dims;
};

class LmadReconstructTest : public ::testing::TestWithParam<PiecewiseSpec> {
};

TEST_P(LmadReconstructTest, FullyCapturedStreamsReconstructExactly) {
  const PiecewiseSpec &Spec = GetParam();
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    Rng R(Seed * 31 + Spec.Runs);
    LmadCompressor C(Spec.Dims, /*MaxLmads=*/Spec.Runs * 2 + 4);
    std::vector<Point> Fed;
    for (unsigned Run = 0; Run != Spec.Runs; ++Run) {
      Point Start = {static_cast<int64_t>(R.nextBelow(10000)),
                     static_cast<int64_t>(R.nextBelow(10000)),
                     static_cast<int64_t>(R.nextBelow(10000))};
      Point Stride = {static_cast<int64_t>(R.nextBelow(17)) - 8,
                      static_cast<int64_t>(R.nextBelow(17)) - 8,
                      static_cast<int64_t>(R.nextBelow(9))};
      for (unsigned I = 0; I != Spec.RunLen; ++I) {
        Point P = {0, 0, 0};
        for (unsigned D = 0; D != Spec.Dims; ++D)
          P[D] = Start[D] + static_cast<int64_t>(I) * Stride[D];
        Fed.push_back(P);
        C.addPoint(P);
      }
    }
    ASSERT_TRUE(C.fullyCaptured()) << Spec.Name << " seed " << Seed;
    auto Got = C.reconstruct();
    ASSERT_EQ(Got.size(), Fed.size()) << Spec.Name << " seed " << Seed;
    for (size_t I = 0; I != Fed.size(); ++I)
      for (unsigned D = 0; D != Spec.Dims; ++D)
        ASSERT_EQ(Got[I][D], Fed[I][D])
            << Spec.Name << " seed " << Seed << " at " << I;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LmadReconstructTest,
    ::testing::Values(PiecewiseSpec{"one_run_1d", 1, 64, 1},
                      PiecewiseSpec{"few_runs_1d", 5, 20, 1},
                      PiecewiseSpec{"many_runs_1d", 12, 6, 1},
                      PiecewiseSpec{"few_runs_3d", 5, 20, 3},
                      PiecewiseSpec{"many_runs_3d", 10, 4, 3}),
    [](const auto &Info) { return Info.param.Name; });

TEST(LmadCompressorTest, SerializedSizeGrowsWithDescriptors) {
  LmadCompressor Small(1), Large(1);
  for (int64_t V = 0; V != 50; ++V)
    Small.addValue(V);
  for (int Run = 0; Run != 10; ++Run)
    for (int64_t V = 0; V != 5; ++V)
      Large.addValue(Run * 7919 + V * 3);
  EXPECT_LT(Small.serializedSizeBytes(), Large.serializedSizeBytes());
  EXPECT_GT(Small.serializedSizeBytes(), 0u);
}

TEST(LmadCompressorTest, CompressionRatioOnLinearStream) {
  // 100k linear points in ~ tens of bytes: 3+ orders of magnitude, the
  // regime Table 1 reports.
  LmadCompressor C(1);
  for (int64_t V = 0; V != 100000; ++V)
    C.addValue(V * 8);
  double Ratio = (100000.0 * 12) / C.serializedSizeBytes();
  EXPECT_GT(Ratio, 1000.0);
}
