//===- tests/workloads_test.cpp - Workload analogue tests ----------------===//

#include "core/ProfilingSession.h"
#include "trace/Events.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace orp;
using namespace orp::workloads;

namespace {

struct RunResult {
  uint64_t Checksum;
  uint64_t Accesses;
  uint64_t Allocs;
  uint64_t Frees;
  size_t LiveObjects;
  uint64_t UnknownAccesses;
};

RunResult runOnce(const std::string &Name, uint64_t Seed,
                  uint64_t EnvSeed = 0) {
  core::ProfilingSession S(memsim::AllocPolicy::FirstFit, EnvSeed);
  trace::CountingSink Counter;
  S.addRawSink(&Counter);
  auto W = createWorkloadByName(Name);
  EXPECT_NE(W, nullptr) << Name;
  WorkloadConfig Config;
  Config.Seed = Seed;
  uint64_t Checksum = W->run(S.memory(), S.registry(), Config);
  S.finish();
  return RunResult{Checksum,
                   Counter.accesses(),
                   Counter.allocs(),
                   Counter.frees(),
                   S.omc().numLiveObjects(),
                   S.cdc().stats().Unknown};
}

} // namespace

class WorkloadParamTest : public ::testing::TestWithParam<const char *> {};

TEST_P(WorkloadParamTest, RunsAndProducesTraffic) {
  RunResult R = runOnce(GetParam(), 42);
  EXPECT_GT(R.Accesses, 10000u) << "workload too small to profile";
  EXPECT_GT(R.Allocs, 0u);
}

TEST_P(WorkloadParamTest, DeterministicForFixedSeed) {
  RunResult A = runOnce(GetParam(), 42);
  RunResult B = runOnce(GetParam(), 42);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.Accesses, B.Accesses);
  EXPECT_EQ(A.Allocs, B.Allocs);
}

TEST_P(WorkloadParamTest, DifferentInputsDiffer) {
  RunResult A = runOnce(GetParam(), 42);
  RunResult B = runOnce(GetParam(), 43);
  EXPECT_NE(A.Checksum, B.Checksum)
      << "input seed should change the computation";
}

TEST_P(WorkloadParamTest, ChecksumInvariantUnderEnvironment) {
  // Changing the allocator seed moves every raw address but must not
  // change the program's computation.
  RunResult A = runOnce(GetParam(), 42, /*EnvSeed=*/0);
  RunResult B = runOnce(GetParam(), 42, /*EnvSeed=*/777);
  EXPECT_EQ(A.Checksum, B.Checksum);
  EXPECT_EQ(A.Accesses, B.Accesses);
}

TEST_P(WorkloadParamTest, AllAccessesHitLiveObjects) {
  RunResult R = runOnce(GetParam(), 42);
  EXPECT_EQ(R.UnknownAccesses, 0u)
      << "workload accessed memory it does not own";
}

TEST_P(WorkloadParamTest, HeapIsBalanced) {
  RunResult R = runOnce(GetParam(), 42);
  EXPECT_EQ(R.LiveObjects, 0u) << "leaked simulated objects";
  EXPECT_EQ(R.Allocs, R.Frees + 0u);
}

TEST_P(WorkloadParamTest, InstructionKindsAreConsistent) {
  // Every probe site must be used only in its registered direction.
  core::ProfilingSession S;
  trace::BufferSink B;
  S.addRawSink(&B);
  auto W = createWorkloadByName(GetParam());
  WorkloadConfig Config;
  W->run(S.memory(), S.registry(), Config);
  S.finish();
  for (const auto &E : B.accesses()) {
    const auto &Info = S.registry().instruction(E.Instr);
    EXPECT_EQ(E.IsStore, Info.Kind == trace::AccessKind::Store)
        << "instruction '" << Info.Name << "' used against its kind";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadParamTest,
    ::testing::Values("164.gzip-a", "175.vpr-a", "181.mcf-a",
                      "186.crafty-a", "197.parser-a", "256.bzip2-a",
                      "300.twolf-a", "list-traversal"),
    [](const auto &Info) {
      std::string Name = Info.param;
      for (char &C : Name)
        if (C == '.' || C == '-')
          C = '_';
      return Name;
    });

TEST(WorkloadRegistryTest, SpecSetHasSevenBenchmarks) {
  auto All = createSpecAnalogues();
  ASSERT_EQ(All.size(), 7u);
  std::set<std::string> Names;
  for (const auto &W : All)
    Names.insert(W->name());
  EXPECT_EQ(Names.size(), 7u);
  EXPECT_TRUE(Names.count("164.gzip-a"));
  EXPECT_TRUE(Names.count("300.twolf-a"));
}

TEST(WorkloadRegistryTest, UnknownNameReturnsNull) {
  EXPECT_EQ(createWorkloadByName("999.nonsense"), nullptr);
}

TEST(WorkloadScaleTest, ScaleIncreasesWork) {
  core::ProfilingSession S1, S2;
  trace::CountingSink C1, C2;
  S1.addRawSink(&C1);
  S2.addRawSink(&C2);
  WorkloadConfig Small{1, 42};
  WorkloadConfig Large{3, 42};
  createMcfA()->run(S1.memory(), S1.registry(), Small);
  createMcfA()->run(S2.memory(), S2.registry(), Large);
  EXPECT_GT(C2.accesses(), C1.accesses() * 2);
}

TEST(WorkloadMixTest, BenchmarksHaveBothLoadsAndStores) {
  for (auto &W : createSpecAnalogues()) {
    core::ProfilingSession S;
    trace::CountingSink C;
    S.addRawSink(&C);
    WorkloadConfig Config;
    W->run(S.memory(), S.registry(), Config);
    S.finish();
    EXPECT_GT(C.loads(), 0u) << W->name();
    EXPECT_GT(C.stores(), 0u) << W->name();
    EXPECT_GT(C.loads(), C.stores() / 10) << W->name();
  }
}
