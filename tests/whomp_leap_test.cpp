//===- tests/whomp_leap_test.cpp - Profiler integration tests ------------===//

#include "analysis/Dependence.h"
#include "analysis/MdfError.h"
#include "analysis/Stride.h"
#include "baseline/ExactDependence.h"
#include "baseline/ExactStride.h"
#include "baseline/RasgProfiler.h"
#include "core/ProfilingSession.h"
#include "leap/Leap.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

using namespace orp;
using core::Dimension;

namespace {

/// Buffers the object-relative stream for cross-checking.
struct TupleBuffer : core::OrTupleConsumer {
  std::vector<core::OrTuple> Tuples;
  void consume(const core::OrTuple &T) override { Tuples.push_back(T); }
};

/// Runs the list-traversal workload with every profiler attached.
struct ListRun {
  core::ProfilingSession Session;
  whomp::WhompProfiler Whomp;
  leap::LeapProfiler Leap;
  TupleBuffer Tuples;
  baseline::RasgProfiler Rasg;
  baseline::ExactDependenceProfiler ExactDep;
  baseline::ExactStrideProfiler ExactStride;
  uint64_t Checksum;

  ListRun() {
    Session.addConsumer(&Whomp);
    Session.addConsumer(&Leap);
    Session.addConsumer(&Tuples);
    Session.addRawSink(&Rasg);
    Session.addRawSink(&ExactDep);
    Session.addRawSink(&ExactStride);
    auto W = workloads::createListTraversal();
    workloads::WorkloadConfig Config;
    Checksum = W->run(Session.memory(), Session.registry(), Config);
    Session.finish();
  }
};

} // namespace

TEST(WhompTest, OmsgIsLosslessPerDimension) {
  ListRun Run;
  ASSERT_FALSE(Run.Tuples.Tuples.empty());
  ASSERT_EQ(Run.Whomp.tuplesSeen(), Run.Tuples.Tuples.size());

  auto CheckDim = [&](Dimension D) {
    std::vector<uint64_t> Want;
    for (const auto &T : Run.Tuples.Tuples)
      Want.push_back(core::dimensionValue(T, D));
    EXPECT_EQ(Run.Whomp.grammarFor(D).expandAll(), Want)
        << "dimension " << core::dimensionName(D);
  };
  CheckDim(Dimension::Instruction);
  CheckDim(Dimension::Group);
  CheckDim(Dimension::Object);
  CheckDim(Dimension::Offset);
}

TEST(WhompTest, OmsgBeatsRasgOnListTraversal) {
  // The paper's Figure 5 effect in miniature: object-relative dimension
  // streams compress better than the raw address stream.
  ListRun Run;
  size_t Omsg = Run.Whomp.sizes().total();
  size_t Rasg = Run.Rasg.serializedSizeBytes();
  EXPECT_LT(Omsg, Rasg) << "OMSG should out-compress RASG on a linked "
                           "list traversal";
}

TEST(WhompTest, SizesSumPerDimension) {
  ListRun Run;
  whomp::OmsgSizes S = Run.Whomp.sizes();
  EXPECT_EQ(S.total(), S.Instr + S.Group + S.Object + S.Offset);
  EXPECT_GT(S.Instr, 0u);
  EXPECT_GT(S.Offset, 0u);
}

TEST(LeapTest, CountsMatchCdcOutput) {
  ListRun Run;
  EXPECT_EQ(Run.Leap.tuplesSeen(), Run.Tuples.Tuples.size());
  uint64_t ExecSum = 0;
  for (const auto &[Instr, Summary] : Run.Leap.instructions())
    ExecSum += Summary.ExecCount;
  EXPECT_EQ(ExecSum, Run.Leap.tuplesSeen());
}

TEST(LeapTest, SampleQualityPercentagesAreSane) {
  ListRun Run;
  double Accesses = Run.Leap.accessesCapturedPercent();
  double Instrs = Run.Leap.instructionsCapturedPercent();
  EXPECT_GE(Accesses, 0.0);
  EXPECT_LE(Accesses, 100.0);
  EXPECT_GE(Instrs, 0.0);
  EXPECT_LE(Instrs, 100.0);
  EXPECT_GT(Run.Leap.serializedSizeBytes(), 0u);
}

TEST(LeapTest, ProfileIsOrdersOfMagnitudeSmallerThanTrace) {
  ListRun Run;
  uint64_t TraceBytes = Run.Tuples.Tuples.size() * 12;
  EXPECT_LT(Run.Leap.serializedSizeBytes() * 10, TraceBytes)
      << "LEAP profile should be far smaller than the raw trace";
}

TEST(LeapTest, ListTraversalLoadsAreStronglyStrided) {
  // node->data and node->next loads walk objects serially at fixed
  // offsets: within-object stride 0 dominates? No — the object changes
  // each step. Within-object strides come from the data/next pair of
  // the same node... The init stores sweep offsets of *consecutive*
  // objects; the paper's within-object rule makes the traversal loads
  // NOT strongly strided (object id changes). Verify that at least the
  // analysis runs and produces a subset of instructions.
  ListRun Run;
  auto Strided = analysis::findStronglyStrided(Run.Leap);
  for (const auto &[Instr, Info] : Strided) {
    EXPECT_LT(Instr, Run.Session.registry().numInstructions());
    EXPECT_GE(Info.Share, 0.70);
  }
}

TEST(LeapTest, MdfAgreesWithExactOnListTraversal) {
  // The list workload is fully regular object-relatively, so LEAP's MDF
  // should be close to the exact profiler's for the dominant pairs.
  ListRun Run;
  auto Exact = Run.ExactDep.mdf();
  auto Est = analysis::LeapDependenceAnalyzer(Run.Leap).computeMdf();
  ASSERT_FALSE(Exact.empty());
  auto Cmp = analysis::compareMdf(Exact, Est);
  EXPECT_GT(Cmp.fractionCorrectOrWithin10(), 0.5)
      << "LEAP should track most dependent pairs on a regular workload";
}

TEST(LeapTest, LmadCapBoundsDescriptorCounts) {
  ListRun Run;
  Run.Leap.forEachSubstream([&](const core::VerticalKey &,
                                const lmad::LmadCompressor &C) {
    EXPECT_LE(C.lmads().size(),
              size_t(lmad::LmadCompressor::DefaultMaxLmads));
    EXPECT_EQ(C.dims(), 3u);
  });
}

TEST(IntegrationTest, CdcDropsNothingOnHeapOnlyWorkload) {
  // Every access the list workload makes targets a live heap/static
  // object, so the CDC must translate all of them.
  ListRun Run;
  EXPECT_EQ(Run.Session.cdc().stats().Unknown, 0u);
  EXPECT_EQ(Run.Session.omc().stats().UnknownFrees, 0u);
}

TEST(IntegrationTest, ObjectLifetimesAreClosed) {
  ListRun Run;
  // All heap objects were freed by the workload; statics were freed by
  // finish(). No live objects should remain.
  EXPECT_EQ(Run.Session.omc().numLiveObjects(), 0u);
  for (const auto &Rec : Run.Session.omc().records())
    EXPECT_NE(Rec.FreeTime, omc::ObjectManager::kLiveForever);
}

TEST(IntegrationTest, ObjectRelativeStreamIsAllocatorInvariant) {
  // The paper's core claim: the object-relative tuple stream does not
  // change when the allocator (and thus every raw address) changes.
  auto RunWith = [](memsim::AllocPolicy Policy, uint64_t Seed) {
    core::ProfilingSession S(Policy, Seed);
    TupleBuffer Buf;
    S.addConsumer(&Buf);
    auto W = workloads::createListTraversal();
    workloads::WorkloadConfig Config;
    W->run(S.memory(), S.registry(), Config);
    S.finish();
    return Buf.Tuples;
  };

  auto A = RunWith(memsim::AllocPolicy::FirstFit, 1);
  auto B = RunWith(memsim::AllocPolicy::Segregated, 999);
  ASSERT_EQ(A.size(), B.size());
  for (size_t I = 0; I != A.size(); ++I) {
    ASSERT_EQ(A[I].Instr, B[I].Instr) << "at " << I;
    ASSERT_EQ(A[I].Group, B[I].Group) << "at " << I;
    ASSERT_EQ(A[I].Object, B[I].Object) << "at " << I;
    ASSERT_EQ(A[I].Offset, B[I].Offset) << "at " << I;
  }
}

TEST(IntegrationTest, RawAddressStreamIsAllocatorDependent) {
  // ... while the raw address stream DOES change (Figure 1's artifact).
  auto RunWith = [](memsim::AllocPolicy Policy, uint64_t Seed) {
    core::ProfilingSession S(Policy, Seed);
    trace::BufferSink Raw;
    S.addRawSink(&Raw);
    auto W = workloads::createListTraversal();
    workloads::WorkloadConfig Config;
    W->run(S.memory(), S.registry(), Config);
    S.finish();
    std::vector<uint64_t> Addrs;
    for (const auto &E : Raw.accesses())
      Addrs.push_back(E.Addr);
    return Addrs;
  };
  auto A = RunWith(memsim::AllocPolicy::FirstFit, 1);
  auto B = RunWith(memsim::AllocPolicy::Segregated, 999);
  EXPECT_NE(A, B);
}
