//===- tests/sequitur_fuzz_test.cpp - Fuzz-lite Sequitur suite -----------===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
//
// Deterministic fuzz suite for the arena-backed SequiturGrammar. Every
// stream family in tests/SequiturStreams.h is driven through the
// grammar, which must (a) keep both Sequitur invariants, (b) expand back
// to the exact input, and (c) serialize to the byte-identical image the
// pre-arena implementation produced (pinned as CRC-32 goldens). (c) is
// the contract that makes the arena/table rewrite a pure optimization:
// Figure 5's grammar sizes cannot move.
//
//===----------------------------------------------------------------------===//

#include "SequiturStreams.h"
#include "sequitur/Sequitur.h"
#include "support/Checksum.h"
#include "support/Random.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

using namespace orp;
using namespace orp::sequitur;
using namespace orp::seqstreams;

namespace {

TEST(SequiturFuzzTest, GoldenSuiteByteIdentical) {
  size_t Count = 0;
  const StreamCase *Cases = streamCases(Count);
  ASSERT_GT(Count, 0u);
  for (size_t C = 0; C != Count; ++C) {
    const StreamCase &Case = Cases[C];
    std::vector<uint64_t> Input = makeStream(Case);
    ASSERT_EQ(Input.size(), Case.Length) << Case.Name;

    SequiturGrammar G;
    G.appendAll(Input);
    EXPECT_TRUE(G.checkInvariants()) << Case.Name;
    EXPECT_EQ(G.inputLength(), Input.size()) << Case.Name;
    EXPECT_EQ(G.expandAll(), Input) << Case.Name;

    std::vector<uint8_t> Image = G.serialize();
    EXPECT_EQ(crc32(Image), Case.GoldenCrc) << Case.Name;
    EXPECT_EQ(Image.size(), G.serializedSizeBytes()) << Case.Name;
    EXPECT_EQ(SequiturGrammar::deserializeAndExpand(Image), Input)
        << Case.Name;
  }
}

TEST(SequiturFuzzTest, InvariantsHoldMidStream) {
  // The goldens only pin the final grammar; also probe intermediate
  // states on a couple of structurally different cases.
  size_t Count = 0;
  const StreamCase *Cases = streamCases(Count);
  for (size_t C = 0; C < Count; C += 5) {
    const StreamCase &Case = Cases[C];
    std::vector<uint64_t> Input = makeStream(Case);
    SequiturGrammar G;
    for (size_t I = 0; I != Input.size(); ++I) {
      G.append(Input[I]);
      if ((I & (I + 1)) == 0) { // Check at lengths 2^k - 1.
        ASSERT_TRUE(G.checkInvariants()) << Case.Name << " @ " << I;
      }
    }
    ASSERT_TRUE(G.checkInvariants()) << Case.Name;
  }
}

TEST(SequiturFuzzTest, RandomSeedsRoundTrip) {
  // Unpinned random walk over seeds: no goldens, but the grammar must
  // stay invariant-clean and lossless on every one. This is the part of
  // the suite that keeps fuzzing past the recorded corpus.
  Rng Meta(0xf022ULL);
  for (int Round = 0; Round != 8; ++Round) {
    StreamCase Case{"random_walk", StreamKind::Random,
                    1 + Meta.nextBelow(512),
                    static_cast<uint32_t>(500 + Meta.nextBelow(3000)),
                    Meta.next(), 0};
    std::vector<uint64_t> Input = makeStream(Case);
    SequiturGrammar G;
    G.appendAll(Input);
    ASSERT_TRUE(G.checkInvariants()) << "alphabet " << Case.Alphabet;
    ASSERT_EQ(G.expandAll(), Input) << "alphabet " << Case.Alphabet;
    ASSERT_EQ(SequiturGrammar::deserializeAndExpand(G.serialize()), Input);
  }
}

TEST(SequiturFuzzTest, ArenaReusesAcrossStreams) {
  // Periodic streams churn rules heavily (create + inline); the arena
  // must keep the grammar healthy through the churn and numRules() must
  // agree with the reachable set the serializer walks.
  for (uint64_t Period : {2ULL, 3ULL, 5ULL, 17ULL}) {
    SequiturGrammar G;
    for (uint64_t I = 0; I != 50000; ++I)
      G.append(I % Period);
    EXPECT_TRUE(G.checkInvariants()) << Period;
    std::vector<uint64_t> Out = G.expandAll();
    ASSERT_EQ(Out.size(), 50000u);
    for (uint64_t I = 0; I != Out.size(); ++I)
      ASSERT_EQ(Out[I], I % Period);
  }
}

} // namespace
