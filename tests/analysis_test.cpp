//===- tests/analysis_test.cpp - Dependence/stride analysis tests --------===//

#include "analysis/Dependence.h"
#include "analysis/Diophantine.h"
#include "analysis/MdfError.h"
#include "analysis/Stride.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <numeric>
#include <set>

using namespace orp;
using namespace orp::analysis;

//===----------------------------------------------------------------------===//
// extendedGcd
//===----------------------------------------------------------------------===//

TEST(ExtGcdTest, KnownValues) {
  ExtGcd E = extendedGcd(12, 18);
  EXPECT_EQ(E.G, 6);
  EXPECT_EQ(12 * E.X + 18 * E.Y, 6);
  E = extendedGcd(0, 0);
  EXPECT_EQ(E.G, 0);
  E = extendedGcd(0, 5);
  EXPECT_EQ(E.G, 5);
  EXPECT_EQ(0 * E.X + 5 * E.Y, 5);
  E = extendedGcd(-4, 6);
  EXPECT_EQ(E.G, 2);
  EXPECT_EQ(-4 * E.X + 6 * E.Y, 2);
}

TEST(ExtGcdTest, BezoutIdentityProperty) {
  Rng R(1);
  for (int I = 0; I != 2000; ++I) {
    int64_t A = R.nextInRange(-100000, 100000);
    int64_t B = R.nextInRange(-100000, 100000);
    ExtGcd E = extendedGcd(A, B);
    EXPECT_EQ(A * E.X + B * E.Y, E.G);
    EXPECT_GE(E.G, 0);
    EXPECT_EQ(E.G, std::gcd(A < 0 ? -A : A, B < 0 ? -B : B));
  }
}

//===----------------------------------------------------------------------===//
// solveLinear2 / restrict2 vs brute force
//===----------------------------------------------------------------------===//

namespace {

/// Does (K1, K2) belong to the solution set?
bool inSolution(const Solution2D &S, int64_t K1, int64_t K2) {
  switch (S.K) {
  case Solution2D::Kind::Empty:
    return false;
  case Solution2D::Kind::Plane:
    return true;
  case Solution2D::Kind::Point:
    return K1 == S.P1 && K2 == S.P2;
  case Solution2D::Kind::Line: {
    // Is there T with P + T*U == (K1, K2)?
    if (S.U1 == 0 && S.U2 == 0)
      return K1 == S.P1 && K2 == S.P2;
    int64_t T;
    if (S.U1 != 0) {
      if ((K1 - S.P1) % S.U1 != 0)
        return false;
      T = (K1 - S.P1) / S.U1;
    } else {
      if ((K2 - S.P2) % S.U2 != 0)
        return false;
      T = (K2 - S.P2) / S.U2;
    }
    return S.P1 + T * S.U1 == K1 && S.P2 + T * S.U2 == K2;
  }
  }
  return false;
}

} // namespace

TEST(SolveLinear2Test, MatchesBruteForceOverSmallBox) {
  Rng R(2);
  for (int Trial = 0; Trial != 3000; ++Trial) {
    int64_t A = R.nextInRange(-6, 6);
    int64_t B = R.nextInRange(-6, 6);
    int64_t C = R.nextInRange(-30, 30);
    Solution2D S = solveLinear2(A, B, C);
    for (int64_t K1 = -12; K1 <= 12; ++K1)
      for (int64_t K2 = -12; K2 <= 12; ++K2) {
        bool Want = A * K1 + B * K2 == C;
        bool Got = inSolution(S, K1, K2);
        ASSERT_EQ(Got, Want)
            << A << "*k1 + " << B << "*k2 = " << C << " at (" << K1 << ","
            << K2 << ")";
      }
  }
}

TEST(Restrict2Test, SystemsMatchBruteForce) {
  Rng R(3);
  for (int Trial = 0; Trial != 3000; ++Trial) {
    int64_t A1 = R.nextInRange(-5, 5), B1 = R.nextInRange(-5, 5),
            C1 = R.nextInRange(-20, 20);
    int64_t A2 = R.nextInRange(-5, 5), B2 = R.nextInRange(-5, 5),
            C2 = R.nextInRange(-20, 20);
    Solution2D S = restrict2(solveLinear2(A1, B1, C1), A2, B2, C2);
    for (int64_t K1 = -10; K1 <= 10; ++K1)
      for (int64_t K2 = -10; K2 <= 10; ++K2) {
        bool Want = (A1 * K1 + B1 * K2 == C1) && (A2 * K1 + B2 * K2 == C2);
        bool Got = inSolution(S, K1, K2);
        ASSERT_EQ(Got, Want)
            << "system (" << A1 << "," << B1 << "," << C1 << ")&(" << A2
            << "," << B2 << "," << C2 << ") at (" << K1 << "," << K2
            << ")";
      }
  }
}

TEST(BoundParameterTest, MatchesDirectScan) {
  Rng R(4);
  for (int Trial = 0; Trial != 2000; ++Trial) {
    int64_t P = R.nextInRange(-50, 50);
    int64_t U = R.nextInRange(-6, 6);
    int64_t Lo = R.nextInRange(-40, 10);
    int64_t Hi = Lo + static_cast<int64_t>(R.nextBelow(60));
    auto I = boundParameter(P, U, Lo, Hi);
    for (int64_t T = -100; T <= 100; ++T) {
      bool Want = P + U * T >= Lo && P + U * T <= Hi;
      bool Got = !I ? true : (T >= I->Lo && T <= I->Hi);
      ASSERT_EQ(Got, Want) << "P=" << P << " U=" << U << " [" << Lo << ","
                           << Hi << "] T=" << T;
    }
  }
}

TEST(IntIntervalTest, SizeAndIntersect) {
  IntInterval A{2, 5};
  EXPECT_EQ(A.size(), 4u);
  EXPECT_FALSE(A.empty());
  IntInterval B{4, 9};
  IntInterval C = A.intersect(B);
  EXPECT_EQ(C.Lo, 4);
  EXPECT_EQ(C.Hi, 5);
  IntInterval E{7, 3};
  EXPECT_TRUE(E.empty());
  EXPECT_EQ(E.size(), 0u);
}

//===----------------------------------------------------------------------===//
// countConflictingLoads vs brute-force enumeration
//===----------------------------------------------------------------------===//

namespace {

uint64_t bruteConflicts(const lmad::Lmad &St, const lmad::Lmad &Ld) {
  uint64_t Loads = 0;
  for (uint64_t K2 = 0; K2 != Ld.Count; ++K2) {
    bool Conflict = false;
    for (uint64_t K1 = 0; K1 != St.Count && !Conflict; ++K1)
      Conflict = St.at(K1, 0) == Ld.at(K2, 0) &&
                 St.at(K1, 1) == Ld.at(K2, 1) &&
                 St.at(K1, 2) < Ld.at(K2, 2);
    Loads += Conflict;
  }
  return Loads;
}

lmad::Lmad makeLmad(int64_t Obj, int64_t ObjStride, int64_t Off,
                    int64_t OffStride, int64_t Time, int64_t TimeStride,
                    uint64_t Count) {
  lmad::Lmad L;
  L.Dims = 3;
  L.Start = {Obj, Off, Time};
  L.Stride = {ObjStride, OffStride, TimeStride};
  L.Count = Count;
  return L;
}

} // namespace

TEST(CountConflictsTest, SameLocationStoreThenLoad) {
  // Store writes offset 8 of object 0 at t=0; load reads it at t=10.
  auto St = makeLmad(0, 0, 8, 0, 0, 0, 1);
  auto Ld = makeLmad(0, 0, 8, 0, 10, 0, 1);
  EXPECT_EQ(countConflictingLoads(St, Ld), 1u);
  // Reversed time: no RAW.
  EXPECT_EQ(countConflictingLoads(Ld, St), 0u);
}

TEST(CountConflictsTest, StridedProducerConsumer) {
  // Store sweeps offsets 0,8,...,792 at t=0..99; load re-reads the same
  // sweep later: every load conflicts.
  auto St = makeLmad(0, 0, 0, 8, 0, 1, 100);
  auto Ld = makeLmad(0, 0, 0, 8, 1000, 1, 100);
  EXPECT_EQ(countConflictingLoads(St, Ld), 100u);
}

TEST(CountConflictsTest, InterleavedSameIteration) {
  // Load at time 2k reads offset 8k; store at 2k+1 writes offset 8k:
  // load k reads what store k-?? wrote... here store happens after the
  // load of the same offset, so only later re-reads would conflict; with
  // a single sweep each, no load sees an earlier store.
  auto St = makeLmad(0, 0, 0, 8, 1, 2, 50);
  auto Ld = makeLmad(0, 0, 0, 8, 0, 2, 50);
  EXPECT_EQ(countConflictingLoads(St, Ld), bruteConflicts(St, Ld));
  EXPECT_EQ(countConflictingLoads(St, Ld), 0u);
}

TEST(CountConflictsTest, DisjointObjectsNeverConflict) {
  auto St = makeLmad(5, 0, 0, 8, 0, 1, 10);
  auto Ld = makeLmad(6, 0, 0, 8, 100, 1, 10);
  EXPECT_EQ(countConflictingLoads(St, Ld), 0u);
}

TEST(CountConflictsTest, ObjectStridedSweeps) {
  // Store writes field 16 of objects 0..19; load reads field 16 of
  // objects 10..29 afterwards: overlap is objects 10..19.
  auto St = makeLmad(0, 1, 16, 0, 0, 1, 20);
  auto Ld = makeLmad(10, 1, 16, 0, 100, 1, 20);
  EXPECT_EQ(countConflictingLoads(St, Ld), 10u);
}

TEST(CountConflictsTest, MatchesBruteForceOnRandomDescriptors) {
  Rng R(5);
  for (int Trial = 0; Trial != 4000; ++Trial) {
    auto Rand = [&](int64_t Lo, int64_t Hi) { return R.nextInRange(Lo, Hi); };
    auto St = makeLmad(Rand(0, 6), Rand(-2, 2), Rand(0, 48) * 4,
                       Rand(-3, 3) * 4, Rand(0, 60), Rand(0, 4),
                       1 + R.nextBelow(12));
    auto Ld = makeLmad(Rand(0, 6), Rand(-2, 2), Rand(0, 48) * 4,
                       Rand(-3, 3) * 4, Rand(0, 60), Rand(0, 4),
                       1 + R.nextBelow(12));
    ASSERT_EQ(countConflictingLoads(St, Ld), bruteConflicts(St, Ld))
        << "trial " << Trial;
  }
}

TEST(CountConflictsTest, LongDescriptorsStayExact) {
  // Large counts exercise the interval math (no enumeration possible).
  auto St = makeLmad(0, 0, 0, 8, 0, 1, 1000000);
  auto Ld = makeLmad(0, 0, 0, 8, 2000000, 1, 1000000);
  EXPECT_EQ(countConflictingLoads(St, Ld), 1000000u);
  // Loads interleaved halfway: the first half conflicts only partially.
  auto Ld2 = makeLmad(0, 0, 0, 8, 500000, 1, 1000000);
  uint64_t Got = countConflictingLoads(St, Ld2);
  // Load k2 reads offset 8*k2 at time 500000+k2; store wrote it at time
  // k2. Always earlier. So all conflict.
  EXPECT_EQ(Got, 1000000u);
}

//===----------------------------------------------------------------------===//
// compareMdf
//===----------------------------------------------------------------------===//

TEST(CompareMdfTest, BucketsErrors) {
  MdfMap Exact, Est;
  Exact[{0, 1}] = 0.50; // Estimated exactly.
  Est[{0, 1}] = 0.50;
  Exact[{0, 2}] = 0.80; // Underestimated by 30 points.
  Est[{0, 2}] = 0.50;
  Exact[{0, 3}] = 0.40; // Missed entirely: -40.
  Est[{9, 9}] = 0.10;   // False positive.

  MdfComparison Cmp = compareMdf(Exact, Est);
  EXPECT_EQ(Cmp.DependentPairs, 3u);
  EXPECT_EQ(Cmp.ExactlyCorrect, 1u);
  EXPECT_EQ(Cmp.FalsePositivePairs, 1u);
  EXPECT_NEAR(Cmp.fractionCorrectOrWithin10(), 1.0 / 3.0, 1e-9);
}

TEST(CompareMdfTest, PerfectEstimatorScoresOne) {
  MdfMap Exact;
  Exact[{1, 2}] = 0.25;
  Exact[{3, 4}] = 1.0;
  MdfComparison Cmp = compareMdf(Exact, Exact);
  EXPECT_DOUBLE_EQ(Cmp.fractionCorrectOrWithin10(), 1.0);
  EXPECT_EQ(Cmp.ExactlyCorrect, 2u);
}

//===----------------------------------------------------------------------===//
// Stride analysis on synthetic LEAP profiles
//===----------------------------------------------------------------------===//

namespace {

core::OrTuple tuple(trace::InstrId Instr, omc::GroupId Group, uint64_t Obj,
                    uint64_t Off, uint64_t Time, bool Store = false) {
  return core::OrTuple{Instr, Group, Obj, Off, Time, Store, 8};
}

} // namespace

TEST(StrideAnalysisTest, DetectsDominantStride) {
  leap::LeapProfiler P;
  // Instruction 1: 97 accesses with stride 8 within object 0, then a few
  // stray offsets.
  uint64_t T = 0;
  for (int I = 0; I != 97; ++I)
    P.consume(tuple(1, 0, 0, I * 8, T++));
  P.consume(tuple(1, 0, 0, 4096, T++));
  P.consume(tuple(1, 0, 0, 9000, T++));
  auto Strided = findStronglyStrided(P);
  ASSERT_TRUE(Strided.count(1));
  EXPECT_EQ(Strided[1].Stride, 8);
  EXPECT_GE(Strided[1].Share, 0.70);
}

TEST(StrideAnalysisTest, IgnoresCrossObjectRuns) {
  leap::LeapProfiler P;
  // Instruction 2 walks across objects (object stride 1): per the paper
  // only within-object strides count, so it must not qualify.
  uint64_t T = 0;
  for (int I = 0; I != 100; ++I)
    P.consume(tuple(2, 0, I, 16, T++));
  auto Strided = findStronglyStrided(P);
  EXPECT_FALSE(Strided.count(2));
}

TEST(StrideAnalysisTest, MixedStridesBelowThresholdRejected) {
  leap::LeapProfiler P;
  uint64_t T = 0;
  // Alternate runs of stride 8 and stride 24, roughly half and half.
  for (int Run = 0; Run != 10; ++Run) {
    int64_t Stride = (Run & 1) ? 8 : 24;
    for (int I = 0; I != 10; ++I)
      P.consume(tuple(3, 0, 0, Run * 4096 + I * Stride, T++));
  }
  auto Strided = findStronglyStrided(P);
  EXPECT_FALSE(Strided.count(3));
}

TEST(StrideAnalysisTest, ThresholdParameterRespected) {
  leap::LeapProfiler P;
  uint64_t T = 0;
  // 60% stride 8, 40% stride 16.
  for (int Run = 0; Run != 10; ++Run) {
    int64_t Stride = Run < 6 ? 8 : 16;
    for (int I = 0; I != 11; ++I)
      P.consume(tuple(4, 0, 0, Run * 8192 + I * Stride, T++));
  }
  EXPECT_FALSE(findStronglyStrided(P, 0.70).count(4));
  EXPECT_TRUE(findStronglyStrided(P, 0.50).count(4));
}

//===----------------------------------------------------------------------===//
// LeapDependenceAnalyzer end-to-end on synthetic tuples
//===----------------------------------------------------------------------===//

TEST(LeapDependenceTest, ProducerConsumerFullFrequency) {
  leap::LeapProfiler P;
  uint64_t T = 0;
  // Store instr 1 writes offsets 0..792 of object 5; load instr 2 then
  // reads them all back.
  for (int I = 0; I != 100; ++I)
    P.consume(tuple(1, 0, 5, I * 8, T++, /*Store=*/true));
  for (int I = 0; I != 100; ++I)
    P.consume(tuple(2, 0, 5, I * 8, T++, /*Store=*/false));
  auto Mdf = LeapDependenceAnalyzer(P).computeMdf();
  ASSERT_TRUE(Mdf.count({1, 2}));
  EXPECT_DOUBLE_EQ((Mdf[{1, 2}]), 1.0);
}

TEST(LeapDependenceTest, PartialOverlapPartialFrequency) {
  leap::LeapProfiler P;
  uint64_t T = 0;
  for (int I = 0; I != 50; ++I)
    P.consume(tuple(1, 0, 0, I * 8, T++, true)); // Offsets 0..392.
  for (int I = 0; I != 100; ++I)
    P.consume(tuple(2, 0, 0, I * 8, T++, false)); // Offsets 0..792.
  auto Mdf = LeapDependenceAnalyzer(P).computeMdf();
  ASSERT_TRUE(Mdf.count({1, 2}));
  EXPECT_NEAR((Mdf[{1, 2}]), 0.5, 1e-9);
}

TEST(LeapDependenceTest, DifferentGroupsNeverPair) {
  leap::LeapProfiler P;
  uint64_t T = 0;
  for (int I = 0; I != 20; ++I)
    P.consume(tuple(1, 0, 0, I * 8, T++, true));
  for (int I = 0; I != 20; ++I)
    P.consume(tuple(2, 1, 0, I * 8, T++, false));
  EXPECT_TRUE(LeapDependenceAnalyzer(P).computeMdf().empty());
}

TEST(LeapDependenceTest, FrequencyCappedAtOne) {
  leap::LeapProfiler P;
  uint64_t T = 0;
  // Two store sweeps hit the same offsets; a single load sweep follows.
  for (int Rep = 0; Rep != 2; ++Rep)
    for (int I = 0; I != 30; ++I)
      P.consume(tuple(1, 0, 0, I * 8, T++, true));
  for (int I = 0; I != 30; ++I)
    P.consume(tuple(2, 0, 0, I * 8, T++, false));
  auto Mdf = LeapDependenceAnalyzer(P).computeMdf();
  ASSERT_TRUE(Mdf.count({1, 2}));
  EXPECT_LE((Mdf[{1, 2}]), 1.0);
  EXPECT_DOUBLE_EQ((Mdf[{1, 2}]), 1.0);
}
