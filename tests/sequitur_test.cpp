//===- tests/sequitur_test.cpp - Sequitur compression unit tests ---------===//

#include "sequitur/Sequitur.h"
#include "support/Random.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace orp;
using namespace orp::sequitur;

namespace {

std::vector<uint64_t> fromString(const std::string &S) {
  std::vector<uint64_t> V;
  for (char C : S)
    V.push_back(static_cast<uint64_t>(C));
  return V;
}

/// Builds a grammar over \p Input and checks losslessness + invariants.
void roundTrip(const std::vector<uint64_t> &Input, const char *Label) {
  SequiturGrammar G;
  G.appendAll(Input);
  EXPECT_EQ(G.inputLength(), Input.size()) << Label;
  ASSERT_TRUE(G.checkInvariants()) << Label;
  EXPECT_EQ(G.expandAll(), Input) << Label;
  EXPECT_EQ(SequiturGrammar::deserializeAndExpand(G.serialize()), Input)
      << Label;
}

} // namespace

TEST(SequiturTest, EmptyGrammar) {
  SequiturGrammar G;
  EXPECT_EQ(G.inputLength(), 0u);
  EXPECT_EQ(G.numRules(), 1u); // The start rule.
  EXPECT_TRUE(G.expandAll().empty());
  EXPECT_TRUE(G.checkInvariants());
}

TEST(SequiturTest, SingleSymbol) { roundTrip({42}, "single"); }

TEST(SequiturTest, PaperExampleAbcbcabcbc) {
  // Section 3.1: "abcbcabcbc" compresses to S->AA; A->aBB; B->bc.
  SequiturGrammar G;
  G.appendAll(fromString("abcbcabcbc"));
  EXPECT_TRUE(G.checkInvariants());
  EXPECT_EQ(G.expandAll(), fromString("abcbcabcbc"));
  // 3 rules: start, A, B.
  EXPECT_EQ(G.numRules(), 3u);
  // Body symbols: S=AA (2) + A=aBB (3) + B=bc (2) = 7.
  EXPECT_EQ(G.totalBodySymbols(), 7u);
}

TEST(SequiturTest, RepeatedPairFormsRule) {
  SequiturGrammar G;
  G.appendAll(fromString("ababab"));
  EXPECT_TRUE(G.checkInvariants());
  EXPECT_EQ(G.expandAll(), fromString("ababab"));
  EXPECT_GE(G.numRules(), 2u);
}

TEST(SequiturTest, OverlappingDigramsDoNotSubstitute) {
  // "aaa" contains digram "aa" twice, but overlapping; no rule may form
  // and expansion must still be exact.
  roundTrip(fromString("aaa"), "aaa");
  roundTrip(fromString("aaaa"), "aaaa");
  roundTrip(fromString("aaaaaaaaaaaaaaaa"), "a^16");
}

TEST(SequiturTest, AllDistinctSymbols) {
  std::vector<uint64_t> V;
  for (uint64_t I = 0; I != 500; ++I)
    V.push_back(I * 977 + 13);
  roundTrip(V, "distinct");
  SequiturGrammar G;
  G.appendAll(V);
  EXPECT_EQ(G.numRules(), 1u) << "no repetition, no rules";
}

TEST(SequiturTest, PeriodicStreamCompressesWell) {
  std::vector<uint64_t> V;
  for (int Rep = 0; Rep != 128; ++Rep)
    for (uint64_t S : {1, 2, 3, 4, 5, 6, 7, 8})
      V.push_back(S);
  SequiturGrammar G;
  G.appendAll(V);
  EXPECT_TRUE(G.checkInvariants());
  EXPECT_EQ(G.expandAll(), V);
  // 1024 input symbols must collapse to a logarithmic-size grammar.
  EXPECT_LT(G.totalBodySymbols(), 64u);
  EXPECT_LT(G.serializedSizeBytes(), V.size());
}

TEST(SequiturTest, RuleUtilityHolds) {
  // Build a stream whose intermediate rules become useless; the final
  // grammar must never contain single-use rules (checkInvariants covers
  // it, this test just exercises a known trigger pattern).
  roundTrip(fromString("abcdbcabcdbc"), "utility-trigger");
  roundTrip(fromString("xabcabcyabcabcz"), "nested-repeats");
}

TEST(SequiturTest, SerializeIsCompactForRepeats) {
  std::vector<uint64_t> V;
  for (int I = 0; I != 1000; ++I) {
    V.push_back(7);
    V.push_back(9);
  }
  SequiturGrammar G;
  G.appendAll(V);
  EXPECT_LT(G.serializedSizeBytes(), 100u);
}

TEST(SequiturTest, LargeTerminalValues) {
  // Raw addresses use most of the 47-bit space; the tagged encoding must
  // round-trip them.
  std::vector<uint64_t> V;
  for (int I = 0; I != 64; ++I) {
    V.push_back(0x7fff'0000'0000ULL + I * 8);
    V.push_back(0x2000'0000ULL + I * 16);
  }
  roundTrip(V, "large-terminals");
}

TEST(SequiturTest, DumpShowsRules) {
  SequiturGrammar G;
  G.appendAll(fromString("abcbcabcbc"));
  std::string D = G.dump();
  EXPECT_NE(D.find("R0 ->"), std::string::npos);
  EXPECT_NE(D.find("R1"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Property sweep: random stream families
//===----------------------------------------------------------------------===//

struct StreamSpec {
  const char *Name;
  unsigned Alphabet;
  unsigned Length;
  double RepeatBias; ///< Probability of re-emitting a recent phrase.
};

class SequiturPropertyTest : public ::testing::TestWithParam<StreamSpec> {};

TEST_P(SequiturPropertyTest, LosslessOnRandomStreams) {
  const StreamSpec &Spec = GetParam();
  for (uint64_t Seed = 1; Seed <= 5; ++Seed) {
    Rng R(Seed * 1000003);
    std::vector<uint64_t> V;
    std::vector<size_t> PhraseStarts = {0};
    while (V.size() < Spec.Length) {
      if (!V.empty() && R.nextBool(Spec.RepeatBias)) {
        // Re-emit a previously generated phrase.
        size_t Start = PhraseStarts[R.nextBelow(PhraseStarts.size())];
        size_t Len = 1 + R.nextBelow(12);
        for (size_t I = Start; I < V.size() && Len--; ++I)
          V.push_back(V[I]);
      } else {
        PhraseStarts.push_back(V.size());
        V.push_back(R.nextBelow(Spec.Alphabet));
      }
    }
    SequiturGrammar G;
    G.appendAll(V);
    ASSERT_TRUE(G.checkInvariants())
        << Spec.Name << " seed " << Seed << " violates invariants";
    ASSERT_EQ(G.expandAll(), V)
        << Spec.Name << " seed " << Seed << " is not lossless";
    ASSERT_EQ(SequiturGrammar::deserializeAndExpand(G.serialize()), V)
        << Spec.Name << " seed " << Seed << " serialization broke";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Streams, SequiturPropertyTest,
    ::testing::Values(StreamSpec{"binary_random", 2, 2000, 0.0},
                      StreamSpec{"small_alpha_random", 5, 2000, 0.0},
                      StreamSpec{"wide_alpha_random", 1000, 2000, 0.0},
                      StreamSpec{"binary_repeats", 2, 3000, 0.5},
                      StreamSpec{"phrase_repeats", 16, 3000, 0.7},
                      StreamSpec{"heavy_repeats", 4, 4000, 0.9}),
    [](const auto &Info) { return Info.param.Name; });

TEST(SequiturTest, IncrementalAppendMatchesBatch) {
  Rng R(77);
  std::vector<uint64_t> V;
  for (int I = 0; I != 1500; ++I)
    V.push_back(R.nextBelow(6));
  SequiturGrammar G;
  for (size_t I = 0; I != V.size(); ++I) {
    G.append(V[I]);
    if (I % 250 == 0) {
      ASSERT_TRUE(G.checkInvariants()) << "at prefix " << I;
      std::vector<uint64_t> Prefix(V.begin(), V.begin() + I + 1);
      ASSERT_EQ(G.expandAll(), Prefix) << "at prefix " << I;
    }
  }
  EXPECT_EQ(G.expandAll(), V);
}
