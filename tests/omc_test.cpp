//===- tests/omc_test.cpp - OMC and interval B+-tree unit tests ----------===//

#include "omc/IntervalBTree.h"
#include "omc/ObjectManager.h"
#include "support/Random.h"
#include "trace/Events.h"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <vector>

using namespace orp;
using namespace orp::omc;

//===----------------------------------------------------------------------===//
// IntervalBTree
//===----------------------------------------------------------------------===//

TEST(IntervalBTreeTest, EmptyTree) {
  IntervalBTree T;
  EXPECT_EQ(T.size(), 0u);
  EXPECT_EQ(T.height(), 1u);
  EXPECT_EQ(T.lookup(42), nullptr);
  EXPECT_FALSE(T.erase(42));
  EXPECT_TRUE(T.checkInvariants());
}

TEST(IntervalBTreeTest, SingleInterval) {
  IntervalBTree T;
  T.insert(100, 200, 7);
  EXPECT_EQ(T.size(), 1u);
  ASSERT_NE(T.lookup(100), nullptr);
  EXPECT_EQ(T.lookup(100)->Value, 7u);
  ASSERT_NE(T.lookup(199), nullptr);
  EXPECT_EQ(T.lookup(200), nullptr);
  EXPECT_EQ(T.lookup(99), nullptr);
  EXPECT_TRUE(T.checkInvariants());
}

TEST(IntervalBTreeTest, EraseByStart) {
  IntervalBTree T;
  T.insert(100, 200, 1);
  T.insert(300, 400, 2);
  EXPECT_TRUE(T.erase(100));
  EXPECT_EQ(T.lookup(150), nullptr);
  ASSERT_NE(T.lookup(350), nullptr);
  EXPECT_FALSE(T.erase(100));
  EXPECT_EQ(T.size(), 1u);
}

TEST(IntervalBTreeTest, SplitsGrowHeight) {
  IntervalBTree T;
  for (uint64_t I = 0; I != 2000; ++I)
    T.insert(I * 10, I * 10 + 8, I);
  EXPECT_EQ(T.size(), 2000u);
  EXPECT_GT(T.height(), 1u);
  EXPECT_TRUE(T.checkInvariants());
  for (uint64_t I = 0; I != 2000; ++I) {
    const auto *E = T.lookup(I * 10 + 5);
    ASSERT_NE(E, nullptr);
    EXPECT_EQ(E->Value, I);
    EXPECT_EQ(T.lookup(I * 10 + 9), nullptr); // Gap between intervals.
  }
}

TEST(IntervalBTreeTest, DrainToEmptyAndReuse) {
  IntervalBTree T;
  for (uint64_t I = 0; I != 500; ++I)
    T.insert(I * 10, I * 10 + 8, I);
  for (uint64_t I = 0; I != 500; ++I)
    EXPECT_TRUE(T.erase(I * 10));
  EXPECT_EQ(T.size(), 0u);
  EXPECT_TRUE(T.checkInvariants());
  EXPECT_EQ(T.lookup(55), nullptr);
  // The tree must be fully usable again.
  T.insert(5, 10, 99);
  ASSERT_NE(T.lookup(7), nullptr);
  EXPECT_EQ(T.lookup(7)->Value, 99u);
}

TEST(IntervalBTreeTest, OverlapsRange) {
  IntervalBTree T;
  T.insert(100, 200, 1);
  EXPECT_TRUE(T.overlapsRange(150, 160));
  EXPECT_TRUE(T.overlapsRange(199, 300));
  EXPECT_TRUE(T.overlapsRange(50, 101));
  EXPECT_FALSE(T.overlapsRange(200, 300));
  EXPECT_FALSE(T.overlapsRange(50, 100));
}

TEST(IntervalBTreeTest, ToVectorIsSorted) {
  IntervalBTree T;
  Rng R(5);
  std::vector<uint64_t> Starts;
  for (int I = 0; I != 300; ++I)
    Starts.push_back(R.nextBelow(1 << 20) * 100);
  for (uint64_t S : Starts)
    if (!T.overlapsRange(S, S + 50))
      T.insert(S, S + 50, S);
  auto V = T.toVector();
  EXPECT_EQ(V.size(), T.size());
  for (size_t I = 1; I < V.size(); ++I)
    EXPECT_LT(V[I - 1].Start, V[I].Start);
}

/// Randomized differential test against std::map over varying scales.
class IntervalBTreeFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(IntervalBTreeFuzzTest, MatchesReferenceModel) {
  const int Ops = GetParam();
  IntervalBTree T;
  std::map<uint64_t, std::pair<uint64_t, uint64_t>> Ref; // start->(end,val)
  Rng R(GetParam() * 7 + 1);

  auto RefLookup = [&](uint64_t Addr)
      -> std::optional<std::pair<uint64_t, uint64_t>> {
    auto It = Ref.upper_bound(Addr);
    if (It == Ref.begin())
      return std::nullopt;
    --It;
    if (Addr < It->second.first)
      return std::make_pair(It->first, It->second.second);
    return std::nullopt;
  };

  for (int I = 0; I != Ops; ++I) {
    double Dice = R.nextDouble();
    if (Dice < 0.45) {
      uint64_t Start = R.nextBelow(Ops * 4) * 16;
      uint64_t Len = 8 + R.nextBelow(64);
      // Skip if it would overlap (the tree requires disjoint ranges).
      bool Overlaps = T.overlapsRange(Start, Start + Len);
      bool RefOverlaps = false;
      {
        auto It = Ref.upper_bound(Start + Len - 1);
        if (It != Ref.begin()) {
          --It;
          RefOverlaps = It->second.first > Start;
        }
      }
      ASSERT_EQ(Overlaps, RefOverlaps) << "overlapsRange diverged";
      if (!Overlaps) {
        T.insert(Start, Start + Len, Start ^ 0xabc);
        Ref.emplace(Start, std::make_pair(Start + Len, Start ^ 0xabc));
      }
    } else if (Dice < 0.75 && !Ref.empty()) {
      auto It = Ref.begin();
      std::advance(It, R.nextBelow(Ref.size()));
      uint64_t Start = It->first;
      Ref.erase(It);
      ASSERT_TRUE(T.erase(Start));
    } else {
      uint64_t Addr = R.nextBelow(Ops * 4) * 16 + R.nextBelow(80);
      const auto *Got = T.lookup(Addr);
      auto Want = RefLookup(Addr);
      if (Want) {
        ASSERT_NE(Got, nullptr) << "missing interval at " << Addr;
        EXPECT_EQ(Got->Start, Want->first);
        EXPECT_EQ(Got->Value, Want->second);
      } else {
        EXPECT_EQ(Got, nullptr) << "phantom interval at " << Addr;
      }
    }
    ASSERT_EQ(T.size(), Ref.size());
  }
  EXPECT_TRUE(T.checkInvariants());
}

INSTANTIATE_TEST_SUITE_P(Scales, IntervalBTreeFuzzTest,
                         ::testing::Values(50, 200, 1000, 5000));

//===----------------------------------------------------------------------===//
// ObjectManager
//===----------------------------------------------------------------------===//

namespace {

trace::AllocEvent makeAlloc(trace::AllocSiteId Site, uint64_t Addr,
                            uint64_t Size, uint64_t Time) {
  return trace::AllocEvent{Site, Addr, Size, Time, false};
}

} // namespace

TEST(ObjectManagerTest, GroupsFollowAllocationSites) {
  ObjectManager O;
  O.onAlloc(makeAlloc(10, 0x1000, 64, 0));
  O.onAlloc(makeAlloc(20, 0x2000, 64, 1));
  O.onAlloc(makeAlloc(10, 0x3000, 64, 2));
  EXPECT_EQ(O.numGroups(), 2u);
  auto T1 = O.translate(0x1000);
  auto T3 = O.translate(0x3000);
  ASSERT_TRUE(T1 && T3);
  EXPECT_EQ(T1->Group, T3->Group);
  EXPECT_EQ(T1->Object, 0u);
  EXPECT_EQ(T3->Object, 1u) << "serials count within the group";
  auto T2 = O.translate(0x2000);
  ASSERT_TRUE(T2);
  EXPECT_NE(T2->Group, T1->Group);
  EXPECT_EQ(T2->Object, 0u);
}

TEST(ObjectManagerTest, OffsetsAreObjectRelative) {
  ObjectManager O;
  O.onAlloc(makeAlloc(0, 0x1000, 100, 0));
  auto T = O.translate(0x1063);
  ASSERT_TRUE(T);
  EXPECT_EQ(T->Offset, 0x63u);
  EXPECT_FALSE(O.translate(0x1064)) << "one past the end misses";
  EXPECT_FALSE(O.translate(0xFFF));
}

TEST(ObjectManagerTest, FreeRetiresObject) {
  ObjectManager O;
  O.onAlloc(makeAlloc(0, 0x1000, 64, 5));
  O.onFree(trace::FreeEvent{0x1000, 9});
  EXPECT_FALSE(O.translate(0x1000));
  ASSERT_EQ(O.records().size(), 1u);
  EXPECT_EQ(O.records()[0].AllocTime, 5u);
  EXPECT_EQ(O.records()[0].FreeTime, 9u);
  EXPECT_EQ(O.numLiveObjects(), 0u);
}

TEST(ObjectManagerTest, AddressReuseCreatesDistinctObjects) {
  // The key property object-relativity provides: a reused raw address
  // maps to a new (group, object) identity.
  ObjectManager O;
  O.onAlloc(makeAlloc(0, 0x1000, 64, 0));
  O.onFree(trace::FreeEvent{0x1000, 1});
  O.onAlloc(makeAlloc(1, 0x1000, 32, 2));
  auto T = O.translate(0x1010);
  ASSERT_TRUE(T);
  EXPECT_EQ(T->Group, O.groupForSite(1));
  EXPECT_EQ(O.records().size(), 2u);
  EXPECT_NE(O.records()[0].Group, O.records()[1].Group);
}

TEST(ObjectManagerTest, UnknownFreeIsCountedNotFatal) {
  ObjectManager O;
  O.onFree(trace::FreeEvent{0xDEAD, 0});
  EXPECT_EQ(O.stats().UnknownFrees, 1u);
  // Free of an interior address is also unknown (frees must hit the
  // object start).
  O.onAlloc(makeAlloc(0, 0x1000, 64, 0));
  O.onFree(trace::FreeEvent{0x1008, 1});
  EXPECT_EQ(O.stats().UnknownFrees, 2u);
  EXPECT_TRUE(O.translate(0x1008));
}

TEST(ObjectManagerTest, StatsCountTranslationsAndMisses) {
  ObjectManager O;
  O.onAlloc(makeAlloc(0, 0x1000, 64, 0));
  O.translate(0x1000);
  O.translate(0x1001);
  O.translate(0x9999);
  EXPECT_EQ(O.stats().Translations, 2u);
  EXPECT_EQ(O.stats().Misses, 1u);
}

TEST(ObjectManagerTest, SiteGroupRoundTrip) {
  ObjectManager O;
  GroupId G = O.groupForSite(42);
  EXPECT_EQ(O.siteForGroup(G), 42u);
  EXPECT_EQ(O.groupForSite(42), G) << "idempotent";
  EXPECT_FALSE(O.lookupGroupForSite(77).has_value());
  EXPECT_EQ(*O.lookupGroupForSite(42), G);
}

TEST(ObjectManagerTest, ManyLiveObjectsTranslateCorrectly) {
  ObjectManager O;
  Rng R(3);
  std::vector<std::pair<uint64_t, uint64_t>> Objects; // (addr, size)
  uint64_t Cursor = 0x10000;
  for (int I = 0; I != 5000; ++I) {
    uint64_t Size = 8 + R.nextBelow(120);
    O.onAlloc(makeAlloc(static_cast<trace::AllocSiteId>(I % 7), Cursor,
                        Size, static_cast<uint64_t>(I)));
    Objects.emplace_back(Cursor, Size);
    Cursor += Size + R.nextBelow(64);
  }
  for (auto &[Addr, Size] : Objects) {
    auto T = O.translate(Addr + Size - 1);
    ASSERT_TRUE(T);
    EXPECT_EQ(T->Offset, Size - 1);
  }
  EXPECT_EQ(O.numGroups(), 7u);
  EXPECT_EQ(O.numLiveObjects(), 5000u);
  EXPECT_TRUE(O.liveIndex().checkInvariants());
}

TEST(ObjectManagerTest, PageTableFastPathMatchesRecordGroundTruth) {
  // Differential check of the flat-hash page tier: under alloc/free
  // churn every translate() answer — hit or miss, through whichever
  // tier served it — must match a linear scan of the authoritative
  // records. Freed addresses are probed deliberately: their page
  // entries go stale (the table is never invalidated on free) and must
  // re-validate against the record before counting as a hit.
  ObjectManager O;
  Rng R(77);
  struct LiveObj {
    uint64_t Addr, Size;
  };
  std::vector<LiveObj> Live;
  std::vector<uint64_t> FreedAddrs;
  uint64_t Cursor = 0x100000, Time = 0;

  auto groundTruth = [&](uint64_t Probe) -> const ObjectRecord * {
    for (const ObjectRecord &Rec : O.records())
      if (Rec.FreeTime == ObjectManager::kLiveForever &&
          Probe - Rec.Base < Rec.Size)
        return &Rec;
    return nullptr;
  };

  for (int Round = 0; Round != 3000; ++Round) {
    if (Live.empty() || R.nextBool(0.6)) {
      uint64_t Size = 16 + R.nextBelow(240);
      O.onAlloc(makeAlloc(static_cast<trace::AllocSiteId>(R.nextBelow(5)),
                          Cursor, Size, ++Time));
      Live.push_back({Cursor, Size});
      Cursor += Size + 16 + R.nextBelow(96);
    } else {
      size_t Pick = R.nextBelow(Live.size());
      O.onFree({Live[Pick].Addr, ++Time});
      FreedAddrs.push_back(Live[Pick].Addr);
      Live.erase(Live.begin() + static_cast<ptrdiff_t>(Pick));
    }

    if (!Live.empty()) {
      const LiveObj &Obj = Live[R.nextBelow(Live.size())];
      uint64_t Probe = Obj.Addr + R.nextBelow(Obj.Size);
      auto T = O.translate(Probe);
      const ObjectRecord *Truth = groundTruth(Probe);
      ASSERT_NE(Truth, nullptr);
      ASSERT_TRUE(T) << "live address failed to translate";
      EXPECT_EQ(T->Group, Truth->Group);
      EXPECT_EQ(T->Object, Truth->Serial);
      EXPECT_EQ(T->Offset, Probe - Truth->Base);
    }
    if (!FreedAddrs.empty() && R.nextBool(0.5)) {
      uint64_t Probe = FreedAddrs[R.nextBelow(FreedAddrs.size())];
      if (!groundTruth(Probe)) {
        EXPECT_FALSE(O.translate(Probe))
            << "stale page entry leaked a freed object";
      }
    }
  }

  EXPECT_GT(O.stats().PageHits, 0u) << "page tier never engaged";
  EXPECT_TRUE(O.liveIndex().checkInvariants());
}
