//===- tests/digram_table_test.cpp - Digram hash/table regression --------===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
//
// Collision-focused regression tests for hashDigram() and the robin-hood
// DigramTable. The previous digram hash folded the two symbol words with
// plain shift-xors, which left address-like strided keys clustered in the
// low bits the table indexes with; these tests pin the strengthened
// hash's avalanche and the table's probe-length behavior on exactly those
// adversarial key families.
//
//===----------------------------------------------------------------------===//

#include "sequitur/DigramTable.h"
#include "support/Random.h"

#include <bit>
#include <cstdint>
#include <vector>

#include "gtest/gtest.h"

using namespace orp;
using namespace orp::sequitur;

namespace {

//===----------------------------------------------------------------------===//
// hashDigram quality
//===----------------------------------------------------------------------===//

TEST(DigramHashTest, SingleBitAvalanche) {
  // Flipping any single input bit must flip roughly half the output
  // bits. A weak folding hash fails this badly for high input bits.
  Rng R(7);
  for (int Sample = 0; Sample != 32; ++Sample) {
    uint64_t V1 = R.next();
    uint64_t V2 = R.next();
    uint8_t Tags = static_cast<uint8_t>(R.nextBelow(4));
    uint64_t H = hashDigram(V1, V2, Tags);
    for (int Bit = 0; Bit != 64; ++Bit) {
      uint64_t FlippedV1 = hashDigram(V1 ^ (1ULL << Bit), V2, Tags);
      uint64_t FlippedV2 = hashDigram(V1, V2 ^ (1ULL << Bit), Tags);
      EXPECT_GE(std::popcount(H ^ FlippedV1), 16) << "V1 bit " << Bit;
      EXPECT_LE(std::popcount(H ^ FlippedV1), 48) << "V1 bit " << Bit;
      EXPECT_GE(std::popcount(H ^ FlippedV2), 16) << "V2 bit " << Bit;
      EXPECT_LE(std::popcount(H ^ FlippedV2), 48) << "V2 bit " << Bit;
    }
  }
}

TEST(DigramHashTest, OrderAndTagSensitivity) {
  // (a, b) and (b, a) are different digrams; equal values with different
  // tags (terminal vs. rule id) are different digrams too.
  Rng R(13);
  for (int Sample = 0; Sample != 256; ++Sample) {
    uint64_t A = R.nextBelow(1024);
    uint64_t B = R.nextBelow(1024);
    if (A != B) {
      EXPECT_NE(hashDigram(A, B, 0), hashDigram(B, A, 0));
    }
    for (uint8_t T1 = 0; T1 != 4; ++T1)
      for (uint8_t T2 = static_cast<uint8_t>(T1 + 1); T2 != 4; ++T2)
        EXPECT_NE(hashDigram(A, B, T1), hashDigram(A, B, T2));
  }
}

TEST(DigramHashTest, StridedKeysSpreadAcrossLowBits) {
  // Offsets in profiled streams are multiples of the access size; rule
  // ids are consecutive integers. Both families must still spread over
  // the low bits a power-of-2 table masks with.
  constexpr size_t Buckets = 256;
  constexpr size_t Keys = 4096;
  for (uint64_t Stride : {8ULL, 64ULL, 4096ULL}) {
    std::vector<uint32_t> Histogram(Buckets, 0);
    for (size_t I = 0; I != Keys; ++I)
      ++Histogram[hashDigram(I * Stride, (I + 1) * Stride, 0) & (Buckets - 1)];
    // Expected load 16 per bucket; no bucket may be empty or grossly
    // overloaded under a full-avalanche finalizer.
    for (size_t B = 0; B != Buckets; ++B) {
      EXPECT_GT(Histogram[B], 0u) << "stride " << Stride << " bucket " << B;
      EXPECT_LT(Histogram[B], 48u) << "stride " << Stride << " bucket " << B;
    }
  }
}

//===----------------------------------------------------------------------===//
// DigramTable behavior
//===----------------------------------------------------------------------===//

TEST(DigramTableTest, InsertFindErase) {
  DigramTable<int> T;
  EXPECT_EQ(T.findSlot(1, 2, 0), DigramTable<int>::Npos);
  T.insert(1, 2, 0, 42);
  size_t Slot = T.findSlot(1, 2, 0);
  ASSERT_NE(Slot, DigramTable<int>::Npos);
  EXPECT_EQ(T.valueAt(Slot), 42);
  // Same values, different tags: distinct key.
  EXPECT_EQ(T.findSlot(1, 2, 1), DigramTable<int>::Npos);
  T.eraseSlot(Slot);
  EXPECT_EQ(T.findSlot(1, 2, 0), DigramTable<int>::Npos);
  EXPECT_EQ(T.size(), 0u);
}

TEST(DigramTableTest, SurvivesGrowthAndChurn) {
  DigramTable<uint64_t> T;
  Rng R(3);
  constexpr uint64_t N = 20000;
  for (uint64_t I = 0; I != N; ++I)
    T.insert(I, I * 3, static_cast<uint8_t>(I & 3), I);
  EXPECT_EQ(T.size(), N);
  // Erase a random half, then verify every membership answer.
  std::vector<bool> Erased(N, false);
  for (uint64_t I = 0; I != N; ++I)
    if (R.nextBool(0.5)) {
      size_t Slot = T.findSlot(I, I * 3, static_cast<uint8_t>(I & 3));
      ASSERT_NE(Slot, DigramTable<uint64_t>::Npos);
      T.eraseSlot(Slot);
      Erased[I] = true;
    }
  for (uint64_t I = 0; I != N; ++I) {
    size_t Slot = T.findSlot(I, I * 3, static_cast<uint8_t>(I & 3));
    if (Erased[I]) {
      EXPECT_EQ(Slot, DigramTable<uint64_t>::Npos);
    } else {
      ASSERT_NE(Slot, DigramTable<uint64_t>::Npos);
      EXPECT_EQ(T.valueAt(Slot), I);
    }
  }
}

TEST(DigramTableTest, CollisionHeavyKeysKeepShortProbes) {
  // Regression guard: the adversarial families that defeated the old
  // folded hash (large strides, aligned bases, consecutive rule ids)
  // must keep robin-hood probe sequences short. With a sound hash at
  // load factor <= 0.7 the longest probe stays in single digits; a
  // clustered hash pushes it to dozens (and in the worst case trips the
  // table's MaxDisplacement rehash loop).
  struct Family {
    const char *Name;
    uint64_t Base, Stride;
  } Families[] = {
      {"page_aligned", 0x7f0000000000ULL, 4096},
      {"cacheline", 0x560000001000ULL, 64},
      {"word", 0, 8},
      {"rule_ids", 0, 1},
  };
  for (const Family &F : Families) {
    DigramTable<uint64_t> T;
    for (uint64_t I = 0; I != 8192; ++I)
      T.insert(F.Base + I * F.Stride, F.Base + (I + 1) * F.Stride, 0, I);
    EXPECT_LE(T.maxProbeLength(), 12u) << F.Name;
  }
}

TEST(DigramTableTest, ForEachVisitsEveryEntry) {
  DigramTable<uint64_t> T;
  constexpr uint64_t N = 1000;
  for (uint64_t I = 0; I != N; ++I)
    T.insert(I, I + 1, 0, I);
  std::vector<bool> Seen(N, false);
  T.forEach([&](uint64_t V1, uint64_t V2, uint8_t Tags, uint64_t Value) {
    EXPECT_EQ(V2, V1 + 1);
    EXPECT_EQ(Tags, 0);
    EXPECT_EQ(Value, V1);
    ASSERT_LT(Value, N);
    EXPECT_FALSE(Seen[Value]);
    Seen[Value] = true;
  });
  for (uint64_t I = 0; I != N; ++I)
    EXPECT_TRUE(Seen[I]) << I;
}

} // namespace
