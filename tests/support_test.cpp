//===- tests/support_test.cpp - Support library unit tests ---------------===//

#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/Histogram.h"
#include "support/LogSink.h"
#include "support/ParseNumber.h"
#include "support/Random.h"
#include "support/Statistics.h"
#include "support/TablePrinter.h"
#include "support/VarInt.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <set>

using namespace orp;

//===----------------------------------------------------------------------===//
// Random
//===----------------------------------------------------------------------===//

TEST(RandomTest, DeterministicForSameSeed) {
  Rng A(123), B(123);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RandomTest, DifferentSeedsDiverge) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I != 100; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 3);
}

TEST(RandomTest, NextBelowStaysInRange) {
  Rng R(7);
  for (uint64_t Bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40})
    for (int I = 0; I != 200; ++I)
      EXPECT_LT(R.nextBelow(Bound), Bound);
}

TEST(RandomTest, NextBelowOneIsAlwaysZero) {
  Rng R(7);
  for (int I = 0; I != 50; ++I)
    EXPECT_EQ(R.nextBelow(1), 0u);
}

TEST(RandomTest, NextBelowCoversAllResidues) {
  Rng R(9);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 2000; ++I)
    Seen.insert(R.nextBelow(7));
  EXPECT_EQ(Seen.size(), 7u);
}

TEST(RandomTest, NextInRangeInclusiveBounds) {
  Rng R(11);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 5000; ++I) {
    int64_t V = R.nextInRange(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    SawLo |= V == -3;
    SawHi |= V == 3;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng R(13);
  for (int I = 0; I != 1000; ++I) {
    double D = R.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(RandomTest, NextBoolRespectsProbabilityRoughly) {
  Rng R(17);
  int True = 0;
  for (int I = 0; I != 10000; ++I)
    True += R.nextBool(0.25);
  EXPECT_NEAR(True / 10000.0, 0.25, 0.03);
}

TEST(RandomTest, ShuffleIsAPermutation) {
  Rng R(19);
  std::vector<int> V(100);
  std::iota(V.begin(), V.end(), 0);
  std::vector<int> Orig = V;
  R.shuffle(V);
  EXPECT_NE(V, Orig); // Overwhelmingly likely.
  std::sort(V.begin(), V.end());
  EXPECT_EQ(V, Orig);
}

TEST(RandomTest, PickReturnsElements) {
  Rng R(23);
  std::vector<int> V = {4, 8, 15, 16, 23, 42};
  for (int I = 0; I != 100; ++I)
    EXPECT_TRUE(std::count(V.begin(), V.end(), R.pick(V)));
}

TEST(RandomTest, SampleWeightedHonorsZeroWeights) {
  Rng R(29);
  std::vector<double> W = {0.0, 1.0, 0.0};
  for (int I = 0; I != 200; ++I)
    EXPECT_EQ(sampleWeighted(R, W), 1u);
}

TEST(RandomTest, SampleWeightedRoughProportions) {
  Rng R(31);
  std::vector<double> W = {1.0, 3.0};
  int Hits1 = 0;
  for (int I = 0; I != 10000; ++I)
    Hits1 += sampleWeighted(R, W) == 1;
  EXPECT_NEAR(Hits1 / 10000.0, 0.75, 0.03);
}

TEST(RandomTest, SplitMix64KnownSequenceIsStable) {
  SplitMix64 A(42), B(42);
  for (int I = 0; I != 10; ++I)
    EXPECT_EQ(A.next(), B.next());
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, RunningStatBasics) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_DOUBLE_EQ(S.mean(), 0.0);
  for (double X : {2.0, 4.0, 6.0, 8.0})
    S.add(X);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_DOUBLE_EQ(S.min(), 2.0);
  EXPECT_DOUBLE_EQ(S.max(), 8.0);
  EXPECT_DOUBLE_EQ(S.sum(), 20.0);
  EXPECT_DOUBLE_EQ(S.variance(), 5.0); // Population variance.
}

TEST(StatisticsTest, RunningStatMatchesDirectComputation) {
  Rng R(37);
  RunningStat S;
  std::vector<double> Xs;
  for (int I = 0; I != 500; ++I) {
    double X = R.nextDouble() * 100 - 50;
    Xs.push_back(X);
    S.add(X);
  }
  double Mean = std::accumulate(Xs.begin(), Xs.end(), 0.0) / Xs.size();
  double Var = 0;
  for (double X : Xs)
    Var += (X - Mean) * (X - Mean);
  Var /= Xs.size();
  EXPECT_NEAR(S.mean(), Mean, 1e-9);
  EXPECT_NEAR(S.variance(), Var, 1e-7);
}

TEST(StatisticsTest, QuantileEndpointsAndMedian) {
  std::vector<double> V = {5, 1, 3, 2, 4};
  EXPECT_DOUBLE_EQ(quantile(V, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(V, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(quantile(V, 0.5), 3.0);
}

TEST(StatisticsTest, QuantileInterpolates) {
  std::vector<double> V = {0, 10};
  EXPECT_DOUBLE_EQ(quantile(V, 0.25), 2.5);
}

TEST(StatisticsTest, QuantileSingleElement) {
  EXPECT_DOUBLE_EQ(quantile({7.0}, 0.9), 7.0);
}

TEST(StatisticsTest, GeometricMean) {
  EXPECT_NEAR(geometricMean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(StatisticsTest, PercentOf) {
  EXPECT_DOUBLE_EQ(percentOf(1, 4), 25.0);
  EXPECT_DOUBLE_EQ(percentOf(5, 0), 0.0);
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketBoundaries) {
  Histogram H(0.0, 10.0, 5);
  EXPECT_EQ(H.numBuckets(), 5u);
  EXPECT_DOUBLE_EQ(H.bucketLo(0), 0.0);
  EXPECT_DOUBLE_EQ(H.bucketHi(0), 2.0);
  EXPECT_DOUBLE_EQ(H.bucketLo(4), 8.0);
  EXPECT_DOUBLE_EQ(H.bucketHi(4), 10.0);
}

TEST(HistogramTest, AddRoutesToCorrectBucket) {
  Histogram H(0.0, 10.0, 5);
  H.add(0.0);
  H.add(1.99);
  H.add(2.0);
  H.add(9.99);
  EXPECT_EQ(H.bucketCount(0), 2u);
  EXPECT_EQ(H.bucketCount(1), 1u);
  EXPECT_EQ(H.bucketCount(4), 1u);
  EXPECT_EQ(H.total(), 4u);
}

TEST(HistogramTest, UnderflowAndOverflow) {
  Histogram H(0.0, 10.0, 5);
  H.add(-0.01);
  H.add(10.0);
  H.add(1e9);
  EXPECT_EQ(H.underflow(), 1u);
  EXPECT_EQ(H.overflow(), 2u);
  EXPECT_EQ(H.total(), 3u);
}

TEST(HistogramTest, WeightedAdd) {
  Histogram H(0.0, 10.0, 2);
  H.add(1.0, 7);
  EXPECT_EQ(H.bucketCount(0), 7u);
  EXPECT_EQ(H.total(), 7u);
}

TEST(HistogramTest, FractionInUsesBucketMidpoints) {
  // The Figure 6-8 configuration: 21 buckets, centers -100..100.
  Histogram H(-105.0, 105.0, 21);
  H.add(0.0);   // Center bucket (mid 0).
  H.add(-7.0);  // Mid -10 bucket.
  H.add(33.0);  // Mid 30 bucket.
  H.add(-98.0); // Mid -100 bucket.
  EXPECT_DOUBLE_EQ(H.fractionIn(-10.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(H.fractionIn(-100.0, 100.0), 1.0);
}

TEST(HistogramTest, RenderAsciiMentionsCounts) {
  Histogram H(0.0, 10.0, 2);
  H.add(1.0);
  H.add(1.5);
  std::string Out = H.renderAscii(10);
  EXPECT_NE(Out.find("2"), std::string::npos);
  EXPECT_NE(Out.find('#'), std::string::npos);
}

//===----------------------------------------------------------------------===//
// VarInt
//===----------------------------------------------------------------------===//

TEST(VarIntTest, ULEBKnownEncodings) {
  std::vector<uint8_t> Out;
  encodeULEB128(0, Out);
  EXPECT_EQ(Out, (std::vector<uint8_t>{0x00}));
  Out.clear();
  encodeULEB128(127, Out);
  EXPECT_EQ(Out, (std::vector<uint8_t>{0x7f}));
  Out.clear();
  encodeULEB128(128, Out);
  EXPECT_EQ(Out, (std::vector<uint8_t>{0x80, 0x01}));
  Out.clear();
  encodeULEB128(624485, Out);
  EXPECT_EQ(Out, (std::vector<uint8_t>{0xe5, 0x8e, 0x26}));
}

TEST(VarIntTest, SLEBKnownEncodings) {
  std::vector<uint8_t> Out;
  encodeSLEB128(-1, Out);
  EXPECT_EQ(Out, (std::vector<uint8_t>{0x7f}));
  Out.clear();
  encodeSLEB128(-123456, Out);
  EXPECT_EQ(Out, (std::vector<uint8_t>{0xc0, 0xbb, 0x78}));
}

TEST(VarIntTest, ULEBBoundaryValues) {
  // 0, 2^7 - 1, 2^7, 2^7 + 1 and 2^64 - 1: the width-transition points
  // that a LEB128 implementation most easily gets wrong.
  struct Boundary {
    uint64_t Value;
    size_t Width;
  };
  const Boundary Cases[] = {{0, 1},
                            {127, 1},
                            {128, 2},
                            {129, 2},
                            {std::numeric_limits<uint64_t>::max(), 10}};
  for (const Boundary &C : Cases) {
    std::vector<uint8_t> Buf;
    encodeULEB128(C.Value, Buf);
    EXPECT_EQ(Buf.size(), C.Width) << C.Value;
    EXPECT_EQ(sizeULEB128(C.Value), C.Width) << C.Value;
    size_t Pos = 0;
    EXPECT_EQ(decodeULEB128(Buf, Pos), C.Value);
    EXPECT_EQ(Pos, Buf.size());
    uint64_t Back = 0;
    Pos = 0;
    EXPECT_TRUE(tryDecodeULEB128(Buf.data(), Buf.size(), Pos, Back));
    EXPECT_EQ(Back, C.Value);
    EXPECT_EQ(Pos, Buf.size());
  }
  // UINT64_MAX is ten 0xff bytes capped by 0x01.
  std::vector<uint8_t> Buf;
  encodeULEB128(std::numeric_limits<uint64_t>::max(), Buf);
  EXPECT_EQ(Buf.back(), 0x01);
}

TEST(VarIntTest, TryDecodeRejectsTruncationAndOverflow) {
  std::vector<uint8_t> Buf;
  encodeULEB128(1ULL << 40, Buf);
  // Every strict prefix is truncated input.
  for (size_t Len = 0; Len != Buf.size(); ++Len) {
    uint64_t V;
    size_t Pos = 0;
    EXPECT_FALSE(tryDecodeULEB128(Buf.data(), Len, Pos, V));
    EXPECT_EQ(Pos, 0u); // Pos untouched on failure
  }
  // 11-byte encodings (and 10-byte ones spilling past bit 63) overflow.
  std::vector<uint8_t> TooWide(10, 0x80);
  TooWide.push_back(0x01);
  uint64_t V;
  size_t Pos = 0;
  EXPECT_FALSE(tryDecodeULEB128(TooWide.data(), TooWide.size(), Pos, V));
  std::vector<uint8_t> Spill(9, 0xff);
  Spill.push_back(0x02); // bit 64
  Pos = 0;
  EXPECT_FALSE(tryDecodeULEB128(Spill.data(), Spill.size(), Pos, V));

  int64_t S;
  Pos = 0;
  std::vector<uint8_t> Cut = {0x80};
  EXPECT_FALSE(tryDecodeSLEB128(Cut.data(), Cut.size(), Pos, S));
}

TEST(VarIntTest, TryDecodeMatchesDecodeOnValidStreams) {
  Rng R(97);
  std::vector<uint64_t> UValues;
  std::vector<int64_t> SValues;
  std::vector<uint8_t> Buf;
  for (int I = 0; I != 200; ++I) {
    uint64_t U = R.next() >> R.nextBelow(64);
    int64_t S = static_cast<int64_t>(R.next()) >> R.nextBelow(64);
    UValues.push_back(U);
    SValues.push_back(S);
    encodeULEB128(U, Buf);
    encodeSLEB128(S, Buf);
  }
  UValues.push_back(std::numeric_limits<uint64_t>::max());
  SValues.push_back(std::numeric_limits<int64_t>::min());
  encodeULEB128(UValues.back(), Buf);
  encodeSLEB128(SValues.back(), Buf);

  size_t Pos = 0;
  for (size_t I = 0; I != UValues.size(); ++I) {
    uint64_t U;
    int64_t S;
    ASSERT_TRUE(tryDecodeULEB128(Buf.data(), Buf.size(), Pos, U));
    EXPECT_EQ(U, UValues[I]);
    ASSERT_TRUE(tryDecodeSLEB128(Buf.data(), Buf.size(), Pos, S));
    EXPECT_EQ(S, SValues[I]);
  }
  EXPECT_EQ(Pos, Buf.size());
}

TEST(VarIntTest, ULEBRoundTripProperty) {
  Rng R(41);
  std::vector<uint64_t> Values = {0, 1, 127, 128, 16383, 16384,
                                  std::numeric_limits<uint64_t>::max()};
  for (int I = 0; I != 500; ++I)
    Values.push_back(R.next() >> (R.nextBelow(64)));
  std::vector<uint8_t> Buf;
  for (uint64_t V : Values)
    encodeULEB128(V, Buf);
  size_t Pos = 0;
  for (uint64_t V : Values)
    EXPECT_EQ(decodeULEB128(Buf, Pos), V);
  EXPECT_EQ(Pos, Buf.size());
}

TEST(VarIntTest, SLEBRoundTripProperty) {
  Rng R(43);
  std::vector<int64_t> Values = {0,  1,  -1, 63, 64, -64, -65,
                                 std::numeric_limits<int64_t>::min(),
                                 std::numeric_limits<int64_t>::max()};
  for (int I = 0; I != 500; ++I)
    Values.push_back(static_cast<int64_t>(R.next()) >> R.nextBelow(64));
  std::vector<uint8_t> Buf;
  for (int64_t V : Values)
    encodeSLEB128(V, Buf);
  size_t Pos = 0;
  for (int64_t V : Values)
    EXPECT_EQ(decodeSLEB128(Buf, Pos), V);
  EXPECT_EQ(Pos, Buf.size());
}

TEST(VarIntTest, SizeFunctionsMatchEncodedLength) {
  Rng R(47);
  for (int I = 0; I != 300; ++I) {
    uint64_t U = R.next() >> R.nextBelow(64);
    std::vector<uint8_t> Buf;
    encodeULEB128(U, Buf);
    EXPECT_EQ(sizeULEB128(U), Buf.size());
    int64_t S = static_cast<int64_t>(R.next()) >> R.nextBelow(64);
    Buf.clear();
    encodeSLEB128(S, Buf);
    EXPECT_EQ(sizeSLEB128(S), Buf.size());
  }
}

TEST(VarIntTest, StatusNamesAreStable) {
  EXPECT_STREQ(varIntStatusName(VarIntStatus::Ok), "ok");
  EXPECT_STREQ(varIntStatusName(VarIntStatus::Truncated), "truncated");
  EXPECT_STREQ(varIntStatusName(VarIntStatus::Overflow), "overflow");
  EXPECT_STREQ(varIntStatusName(VarIntStatus::Overlong), "overlong");
}

TEST(VarIntTest, CheckedDecodeReportsTruncationOnEveryPrefix) {
  Rng R(53);
  for (int I = 0; I != 100; ++I) {
    uint64_t U = R.next() >> R.nextBelow(64);
    std::vector<uint8_t> Buf;
    encodeULEB128(U, Buf);
    // Every strict prefix is truncated, and the cursor must not move.
    for (size_t Cut = 0; Cut != Buf.size(); ++Cut) {
      size_t Pos = 0;
      uint64_t Value = 0xA5A5;
      EXPECT_EQ(decodeULEB128Checked(Buf.data(), Cut, Pos, Value),
                VarIntStatus::Truncated);
      EXPECT_EQ(Pos, 0u);
      EXPECT_EQ(Value, 0xA5A5u);
    }
    int64_t S = static_cast<int64_t>(R.next()) >> R.nextBelow(64);
    Buf.clear();
    encodeSLEB128(S, Buf);
    for (size_t Cut = 0; Cut != Buf.size(); ++Cut) {
      size_t Pos = 0;
      int64_t Value = -77;
      EXPECT_EQ(decodeSLEB128Checked(Buf.data(), Cut, Pos, Value),
                VarIntStatus::Truncated);
      EXPECT_EQ(Pos, 0u);
      EXPECT_EQ(Value, -77);
    }
  }
}

TEST(VarIntTest, CheckedDecodeReportsOverflow) {
  // Eleven continuation-heavy bytes carry payload past bit 63.
  std::vector<uint8_t> Wide{0x80, 0x80, 0x80, 0x80, 0x80, 0x80,
                            0x80, 0x80, 0x80, 0x80, 0x01};
  size_t Pos = 0;
  uint64_t U = 0;
  EXPECT_EQ(decodeULEB128Checked(Wide.data(), Wide.size(), Pos, U),
            VarIntStatus::Overflow);
  EXPECT_EQ(Pos, 0u);

  // Ten bytes whose final byte spills payload beyond the 64th bit.
  std::vector<uint8_t> Spill{0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                             0xFF, 0xFF, 0xFF, 0xFF, 0x02};
  Pos = 0;
  EXPECT_EQ(decodeULEB128Checked(Spill.data(), Spill.size(), Pos, U),
            VarIntStatus::Overflow);
  EXPECT_EQ(Pos, 0u);

  int64_t S = 0;
  Pos = 0;
  EXPECT_EQ(decodeSLEB128Checked(Wide.data(), Wide.size(), Pos, S),
            VarIntStatus::Overflow);
  EXPECT_EQ(Pos, 0u);
}

TEST(VarIntTest, CheckedDecodeRejectsOverlongEncodings) {
  // 0x80 0x00 decodes to zero but is wider than the canonical one byte.
  std::vector<uint8_t> OverlongZero{0x80, 0x00};
  size_t Pos = 0;
  uint64_t U = 0;
  EXPECT_EQ(decodeULEB128Checked(OverlongZero.data(), OverlongZero.size(),
                                 Pos, U),
            VarIntStatus::Overlong);
  EXPECT_EQ(Pos, 0u);

  // Pad canonical encodings with a redundant trailing 0x00 payload byte:
  // value unchanged, width + 1, must be rejected.
  Rng R(59);
  for (int I = 0; I != 100; ++I) {
    uint64_t Value = R.next() >> R.nextBelow(64);
    std::vector<uint8_t> Buf;
    encodeULEB128(Value, Buf);
    // A padded max-width (10-byte) encoding trips the overflow check
    // instead; only sub-maximal widths exercise the overlong path.
    if (Buf.size() >= 10)
      continue;
    Buf.back() |= 0x80;
    Buf.push_back(0x00);
    Pos = 0;
    EXPECT_EQ(decodeULEB128Checked(Buf.data(), Buf.size(), Pos, U),
              VarIntStatus::Overlong);
    EXPECT_EQ(Pos, 0u);
    bool Tried = tryDecodeULEB128(Buf.data(), Buf.size(), Pos, U);
    EXPECT_FALSE(Tried);
  }

  // SLEB128 overlong: pad with a sign-extension byte (0x00 for
  // non-negative, 0x7F for negative) so the value survives widening.
  for (int I = 0; I != 100; ++I) {
    int64_t Value = static_cast<int64_t>(R.next()) >> R.nextBelow(64);
    std::vector<uint8_t> Buf;
    encodeSLEB128(Value, Buf);
    if (Buf.size() >= 10)
      continue;
    Buf.back() |= 0x80;
    Buf.push_back(Value < 0 ? 0x7F : 0x00);
    Pos = 0;
    int64_t S = 0;
    EXPECT_EQ(decodeSLEB128Checked(Buf.data(), Buf.size(), Pos, S),
              VarIntStatus::Overlong);
    EXPECT_EQ(Pos, 0u);
  }
}

TEST(VarIntTest, CheckedDecodeAcceptsCanonicalStreams) {
  Rng R(61);
  std::vector<uint64_t> UValues;
  std::vector<int64_t> SValues;
  std::vector<uint8_t> Buf;
  for (int I = 0; I != 200; ++I) {
    uint64_t U = R.next() >> R.nextBelow(64);
    UValues.push_back(U);
    encodeULEB128(U, Buf);
    int64_t S = static_cast<int64_t>(R.next()) >> R.nextBelow(64);
    SValues.push_back(S);
    encodeSLEB128(S, Buf);
  }
  size_t Pos = 0;
  for (int I = 0; I != 200; ++I) {
    uint64_t U = 0;
    ASSERT_EQ(decodeULEB128Checked(Buf.data(), Buf.size(), Pos, U),
              VarIntStatus::Ok);
    EXPECT_EQ(U, UValues[I]);
    int64_t S = 0;
    ASSERT_EQ(decodeSLEB128Checked(Buf.data(), Buf.size(), Pos, S),
              VarIntStatus::Ok);
    EXPECT_EQ(S, SValues[I]);
  }
  EXPECT_EQ(Pos, Buf.size());
}

//===----------------------------------------------------------------------===//
// TablePrinter
//===----------------------------------------------------------------------===//

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt(uint64_t(42)), "42");
  EXPECT_EQ(TablePrinter::fmtPercent(12.34, 1), "12.3%");
  EXPECT_EQ(TablePrinter::fmtRatio(3539.4, 0), "3539x");
}

TEST(TablePrinterTest, PrintsAlignedColumns) {
  TablePrinter T({"name", "value"});
  T.addRow({"a", "1"});
  T.addRow({"longer-name", "22"});
  // Render to a temp file and check content.
  std::FILE *F = std::tmpfile();
  ASSERT_NE(F, nullptr);
  T.print(F);
  std::rewind(F);
  char Buf[4096] = {};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, F);
  std::fclose(F);
  std::string Out(Buf, N);
  EXPECT_NE(Out.find("name"), std::string::npos);
  EXPECT_NE(Out.find("longer-name"), std::string::npos);
  EXPECT_NE(Out.find("---"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Checksum
//===----------------------------------------------------------------------===//

TEST(ChecksumTest, Crc32StandardCheckValue) {
  const uint8_t Check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(Check, sizeof(Check)), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
}

TEST(ChecksumTest, Crc32DetectsSingleBitFlips) {
  Rng R(11);
  std::vector<uint8_t> Data(257);
  for (uint8_t &B : Data)
    B = static_cast<uint8_t>(R.next());
  uint32_t Reference = crc32(Data);
  for (size_t I = 0; I < Data.size(); I += 13) {
    Data[I] ^= 0x20;
    EXPECT_NE(crc32(Data), Reference) << "flip at " << I;
    Data[I] ^= 0x20;
  }
  EXPECT_EQ(crc32(Data), Reference);
}

//===----------------------------------------------------------------------===//
// Endian
//===----------------------------------------------------------------------===//

TEST(EndianTest, LittleEndianByteLayoutIsExplicit) {
  std::vector<uint8_t> Out;
  appendLE16(0x1234, Out);
  appendLE32(0xDEADBEEFu, Out);
  appendLE64(0x0102030405060708ULL, Out);
  EXPECT_EQ(Out, (std::vector<uint8_t>{0x34, 0x12, 0xEF, 0xBE, 0xAD, 0xDE,
                                       0x08, 0x07, 0x06, 0x05, 0x04, 0x03,
                                       0x02, 0x01}));
  EXPECT_EQ(readLE16(Out.data()), 0x1234);
  EXPECT_EQ(readLE32(Out.data() + 2), 0xDEADBEEFu);
  EXPECT_EQ(readLE64(Out.data() + 6), 0x0102030405060708ULL);
}

TEST(EndianTest, RoundTripsExtremeValues) {
  for (uint64_t V : std::vector<uint64_t>{
           0, 1, 0xFF, 0xFF00FF00FF00FF00ULL,
           std::numeric_limits<uint64_t>::max()}) {
    std::vector<uint8_t> Out;
    appendLE64(V, Out);
    EXPECT_EQ(readLE64(Out.data()), V);
  }
}

//===----------------------------------------------------------------------===//
// ParseNumber
//===----------------------------------------------------------------------===//

TEST(ParseNumberTest, AcceptsPlainDecimals) {
  uint64_t V = 99;
  EXPECT_TRUE(support::parseUint64("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(support::parseUint64("42", V));
  EXPECT_EQ(V, 42u);
  EXPECT_TRUE(support::parseUint64("18446744073709551615", V));
  EXPECT_EQ(V, std::numeric_limits<uint64_t>::max());
}

TEST(ParseNumberTest, RejectsTrailingGarbage) {
  uint64_t V = 0;
  EXPECT_FALSE(support::parseUint64("12abc", V));
  EXPECT_FALSE(support::parseUint64("12 ", V));
  EXPECT_FALSE(support::parseUint64("1.5", V));
}

TEST(ParseNumberTest, RejectsEmptyAndNonDigitPrefixes) {
  uint64_t V = 0;
  EXPECT_FALSE(support::parseUint64("", V));
  EXPECT_FALSE(support::parseUint64(nullptr, V));
  EXPECT_FALSE(support::parseUint64(" 7", V));
  EXPECT_FALSE(support::parseUint64("-1", V)) << "strtoull would wrap";
  EXPECT_FALSE(support::parseUint64("+1", V));
  EXPECT_FALSE(support::parseUint64("abc", V));
}

TEST(ParseNumberTest, RejectsOverflow) {
  uint64_t V = 0;
  EXPECT_FALSE(support::parseUint64("18446744073709551616", V));
  EXPECT_FALSE(support::parseUint64("99999999999999999999999", V));
}

TEST(ParseNumberTest, UnsignedRangeChecks) {
  unsigned V = 0;
  EXPECT_TRUE(support::parseUnsigned("4294967295", V));
  EXPECT_EQ(V, std::numeric_limits<unsigned>::max());
  EXPECT_FALSE(support::parseUnsigned("4294967296", V));
  EXPECT_FALSE(support::parseUnsigned("12abc", V));
  EXPECT_FALSE(support::parseUnsigned("", V));
}

//===----------------------------------------------------------------------===//
// Statistics: empty-set contracts
//===----------------------------------------------------------------------===//

#if ORP_CHECK_LEVEL >= 1
TEST(StatisticsEmptyDeathTest, EmptyAccessorsAreFatal) {
  RunningStat Empty;
  EXPECT_DEATH(Empty.min(), "empty accumulator");
  EXPECT_DEATH(Empty.max(), "empty accumulator");
  EXPECT_DEATH(quantile({}, 0.5), "empty sample");
  EXPECT_DEATH(geometricMean({}), "empty sample");
}
#else
TEST(StatisticsEmptyTest, EmptyAccessorsReturnSentinelAtLevel0) {
  RunningStat Empty;
  EXPECT_EQ(Empty.min(), 0.0);
  EXPECT_EQ(Empty.max(), 0.0);
  EXPECT_EQ(quantile({}, 0.5), 0.0);
  EXPECT_EQ(geometricMean({}), 0.0);
}
#endif

TEST(StatisticsTest, NonEmptyAccessorsUnaffectedByContract) {
  RunningStat S;
  S.add(3.0);
  EXPECT_EQ(S.min(), 3.0);
  EXPECT_EQ(S.max(), 3.0);
  EXPECT_EQ(quantile({3.0}, 0.5), 3.0);
  EXPECT_EQ(geometricMean({2.0, 8.0}), 4.0);
}

//===----------------------------------------------------------------------===//
// Log sink
//===----------------------------------------------------------------------===//

TEST(LogSinkTest, MessagesGoToRedirectedStreamWithNewline) {
  std::FILE *Capture = std::tmpfile();
  ASSERT_NE(Capture, nullptr);
  std::FILE *Prev = support::setLogStream(Capture);
  support::logMessage(support::LogLevel::Warn, "value is %d", 42);
  support::setLogStream(Prev);

  std::rewind(Capture);
  char Buf[128] = {0};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, Capture);
  std::fclose(Capture);
  EXPECT_EQ(std::string(Buf, N), "value is 42\n");
}

TEST(LogSinkTest, PerLevelCountersAreMonotonic) {
  // Counters are process-global: assert on deltas, silencing the
  // stream so the test output stays clean.
  std::FILE *Devnull = std::tmpfile();
  ASSERT_NE(Devnull, nullptr);
  std::FILE *Prev = support::setLogStream(Devnull);
  uint64_t Warn0 = support::logMessageCount(support::LogLevel::Warn);
  uint64_t Error0 = support::logMessageCount(support::LogLevel::Error);
  support::logMessage(support::LogLevel::Warn, "w");
  support::logMessage(support::LogLevel::Error, "e");
  support::logMessage(support::LogLevel::Error, "e2");
  support::setLogStream(Prev);
  std::fclose(Devnull);
  EXPECT_EQ(support::logMessageCount(support::LogLevel::Warn), Warn0 + 1);
  EXPECT_EQ(support::logMessageCount(support::LogLevel::Error), Error0 + 2);
}

TEST(LogSinkTest, NullRestoresDefaultStreams) {
  std::FILE *Prev = support::setLogStream(nullptr);
  EXPECT_EQ(support::logStream(), stderr);
  support::setLogStream(Prev == stderr ? nullptr : Prev);
  std::FILE *PrevReport = support::setReportStream(nullptr);
  EXPECT_EQ(support::reportStream(), stdout);
  support::setReportStream(PrevReport == stdout ? nullptr : PrevReport);
}

TEST(LogSinkTest, LevelNamesAreStable) {
  EXPECT_STREQ(support::logLevelName(support::LogLevel::Info), "info");
  EXPECT_STREQ(support::logLevelName(support::LogLevel::Warn), "warn");
  EXPECT_STREQ(support::logLevelName(support::LogLevel::Error), "error");
  EXPECT_STREQ(support::logLevelName(support::LogLevel::Fatal), "fatal");
}

TEST(TablePrinterTest, PrintUsesReportStreamByDefault) {
  std::FILE *Capture = std::tmpfile();
  ASSERT_NE(Capture, nullptr);
  std::FILE *Prev = support::setReportStream(Capture);
  TablePrinter T({"k", "v"});
  T.addRow({"a", "1"});
  T.print();
  support::setReportStream(Prev);

  std::rewind(Capture);
  char Buf[256] = {0};
  size_t N = std::fread(Buf, 1, sizeof(Buf) - 1, Capture);
  std::fclose(Capture);
  std::string Out(Buf, N);
  EXPECT_NE(Out.find("k  v"), std::string::npos);
  EXPECT_NE(Out.find("a  1"), std::string::npos);
}
