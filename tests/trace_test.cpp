//===- tests/trace_test.cpp - Instrumentation runtime unit tests ---------===//

#include "memsim/AddressSpace.h"
#include "trace/Events.h"
#include "trace/InstructionRegistry.h"
#include "trace/MemoryInterface.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

using namespace orp;
using namespace orp::trace;

TEST(InstructionRegistryTest, AssignsDenseIds) {
  InstructionRegistry R;
  InstrId A = R.addInstruction("load x", AccessKind::Load);
  InstrId B = R.addInstruction("store y", AccessKind::Store);
  EXPECT_EQ(A, 0u);
  EXPECT_EQ(B, 1u);
  EXPECT_EQ(R.numInstructions(), 2u);
  EXPECT_EQ(R.instruction(A).Name, "load x");
  EXPECT_EQ(R.instruction(A).Kind, AccessKind::Load);
  EXPECT_EQ(R.instruction(B).Kind, AccessKind::Store);
}

TEST(InstructionRegistryTest, AllocSites) {
  InstructionRegistry R;
  AllocSiteId S = R.addAllocSite("new node", "struct node");
  EXPECT_EQ(S, 0u);
  EXPECT_EQ(R.allocSite(S).Name, "new node");
  EXPECT_EQ(R.allocSite(S).TypeName, "struct node");
  EXPECT_EQ(R.numAllocSites(), 1u);
}

TEST(MemoryInterfaceTest, ClockAdvancesPerAccess) {
  MemoryInterface M;
  CountingSink C;
  M.attachSink(&C);
  EXPECT_EQ(M.now(), 0u);
  M.load(0, 0x1000);
  M.store(1, 0x1008);
  EXPECT_EQ(M.now(), 2u);
  M.flushAccesses(); // Accesses batch; deliver before inspecting the sink.
  EXPECT_EQ(C.accesses(), 2u);
  EXPECT_EQ(C.loads(), 1u);
  EXPECT_EQ(C.stores(), 1u);
}

TEST(MemoryInterfaceTest, ClockAdvancesEvenWithoutSinks) {
  MemoryInterface M;
  M.load(0, 0x1000);
  M.load(0, 0x1000);
  EXPECT_EQ(M.now(), 2u);
}

TEST(MemoryInterfaceTest, EventsCarryTimestamps) {
  MemoryInterface M;
  BufferSink B;
  M.attachSink(&B);
  M.load(3, 0xAAAA, 4);
  M.store(4, 0xBBBB, 8);
  M.flushAccesses();
  ASSERT_EQ(B.accesses().size(), 2u);
  EXPECT_EQ(B.accesses()[0].Time, 0u);
  EXPECT_EQ(B.accesses()[0].Instr, 3u);
  EXPECT_EQ(B.accesses()[0].Size, 4u);
  EXPECT_FALSE(B.accesses()[0].IsStore);
  EXPECT_EQ(B.accesses()[1].Time, 1u);
  EXPECT_TRUE(B.accesses()[1].IsStore);
}

TEST(MemoryInterfaceTest, HeapAllocEmitsObjectProbe) {
  MemoryInterface M;
  BufferSink B;
  M.attachSink(&B);
  uint64_t Addr = M.heapAlloc(7, 96);
  ASSERT_NE(Addr, 0u);
  ASSERT_EQ(B.allocs().size(), 1u);
  EXPECT_EQ(B.allocs()[0].Site, 7u);
  EXPECT_EQ(B.allocs()[0].Addr, Addr);
  EXPECT_EQ(B.allocs()[0].Size, 96u);
  EXPECT_FALSE(B.allocs()[0].IsStatic);
  M.heapFree(Addr);
  ASSERT_EQ(B.frees().size(), 1u);
  EXPECT_EQ(B.frees()[0].Addr, Addr);
}

TEST(MemoryInterfaceTest, StaticAllocPlacesInStaticSegment) {
  MemoryInterface M;
  BufferSink B;
  M.attachSink(&B);
  uint64_t A1 = M.staticAlloc(0, 100, 8);
  uint64_t A2 = M.staticAlloc(1, 50, 8);
  EXPECT_EQ(memsim::classifyAddress(A1), memsim::SegmentKind::Static);
  EXPECT_GE(A2, A1 + 100);
  ASSERT_EQ(B.allocs().size(), 2u);
  EXPECT_TRUE(B.allocs()[0].IsStatic);
}

TEST(MemoryInterfaceTest, FinishFreesStatics) {
  MemoryInterface M;
  BufferSink B;
  M.attachSink(&B);
  uint64_t A1 = M.staticAlloc(0, 100, 8);
  uint64_t A2 = M.staticAlloc(1, 50, 8);
  M.finish();
  ASSERT_EQ(B.frees().size(), 2u);
  EXPECT_EQ(B.frees()[0].Addr, A1);
  EXPECT_EQ(B.frees()[1].Addr, A2);
  M.finish(); // Idempotent.
  EXPECT_EQ(B.frees().size(), 2u);
}

TEST(MemoryInterfaceTest, InjectAccessBatchMatchesSingleInjection) {
  // The columnar replay path feeds whole spans through
  // injectAccessBatch; the sink stream and clock must be
  // indistinguishable from per-event injection of the same events.
  std::vector<AccessEvent> Events;
  for (uint64_t I = 0; I != 6; ++I)
    Events.push_back(
        {static_cast<InstrId>(I), 0x1000 + I * 8, 4, (I & 1) != 0, 10 + I});

  MemoryInterface Single, Batched;
  BufferSink SinkA, SinkB;
  Single.attachSink(&SinkA);
  Batched.attachSink(&SinkB);
  for (const AccessEvent &E : Events)
    Single.injectAccess(E);
  Single.flushAccesses();
  Batched.injectAccessBatch(std::span<const AccessEvent>(Events));

  ASSERT_EQ(SinkA.accesses().size(), Events.size());
  ASSERT_EQ(SinkB.accesses().size(), Events.size());
  for (size_t I = 0; I != Events.size(); ++I) {
    EXPECT_EQ(SinkA.accesses()[I].Instr, SinkB.accesses()[I].Instr);
    EXPECT_EQ(SinkA.accesses()[I].Addr, SinkB.accesses()[I].Addr);
    EXPECT_EQ(SinkA.accesses()[I].Size, SinkB.accesses()[I].Size);
    EXPECT_EQ(SinkA.accesses()[I].IsStore, SinkB.accesses()[I].IsStore);
    EXPECT_EQ(SinkA.accesses()[I].Time, SinkB.accesses()[I].Time);
  }
  EXPECT_EQ(Single.now(), Batched.now());
}

TEST(MemoryInterfaceTest, InjectAccessBatchFlushesBufferedSinglesFirst) {
  // A batch arriving while single injections sit in the access buffer
  // must not reorder the stream: buffered events flush first.
  MemoryInterface M;
  BufferSink B;
  M.attachSink(&B);
  M.injectAccess({1, 0x10, 4, false, 1});
  std::vector<AccessEvent> Batch{{2, 0x20, 4, true, 2}};
  M.injectAccessBatch(std::span<const AccessEvent>(Batch));
  ASSERT_EQ(B.accesses().size(), 2u);
  EXPECT_EQ(B.accesses()[0].Instr, 1u);
  EXPECT_EQ(B.accesses()[1].Instr, 2u);
  EXPECT_EQ(M.now(), 3u);
}

TEST(MemoryInterfaceTest, SeedShiftsStaticBase) {
  MemoryInterface M1(memsim::AllocPolicy::FirstFit, 1);
  MemoryInterface M2(memsim::AllocPolicy::FirstFit, 12345);
  uint64_t A1 = M1.staticAlloc(0, 8, 8);
  uint64_t A2 = M2.staticAlloc(0, 8, 8);
  EXPECT_NE(A1, A2) << "probe-insertion artifact should shift statics";
}

TEST(CountingSinkTest, RawTraceBytes) {
  CountingSink C;
  AccessEvent E{0, 0x1000, 8, false, 0};
  for (int I = 0; I != 10; ++I)
    C.onAccess(E);
  EXPECT_EQ(C.rawTraceBytes(), 120u);
}

TEST(FanoutSinkTest, ForwardsToAll) {
  FanoutSink F;
  CountingSink C1, C2;
  F.addSink(&C1);
  F.addSink(&C2);
  F.onAccess(AccessEvent{0, 1, 8, true, 0});
  F.onAlloc(AllocEvent{0, 2, 8, 0, false});
  F.onFree(FreeEvent{2, 0});
  EXPECT_EQ(C1.accesses(), 1u);
  EXPECT_EQ(C2.accesses(), 1u);
  EXPECT_EQ(C1.allocs(), 1u);
  EXPECT_EQ(C2.frees(), 1u);
}

TEST(BufferSinkTest, ReplayPreservesDeliveryOrder) {
  // Free + realloc at the same address within one timestamp tick: replay
  // must reproduce the exact order or a consumer would see a duplicate
  // live range.
  BufferSink B;
  B.onAlloc(AllocEvent{0, 0x1000, 64, 0, false});
  B.onFree(FreeEvent{0x1000, 0});
  B.onAlloc(AllocEvent{1, 0x1000, 32, 0, false});
  B.onAccess(AccessEvent{0, 0x1000, 8, false, 0});

  struct OrderSink : TraceSink {
    std::vector<int> Seen;
    bool Finished = false;
    void onAccess(const AccessEvent &) override { Seen.push_back(0); }
    void onAlloc(const AllocEvent &) override { Seen.push_back(1); }
    void onFree(const FreeEvent &) override { Seen.push_back(2); }
    void onFinish() override { Finished = true; }
  } S;
  B.replayTo(S);
  EXPECT_EQ(S.Seen, (std::vector<int>{1, 2, 1, 0}));
  EXPECT_TRUE(S.Finished);
}

TEST(BufferSinkTest, ReplayEqualsOriginalStream) {
  MemoryInterface M;
  BufferSink B;
  M.attachSink(&B);
  uint64_t H = M.heapAlloc(0, 128);
  M.store(0, H, 8);
  M.load(1, H + 8, 8);
  M.heapFree(H);
  uint64_t H2 = M.heapAlloc(0, 64);
  M.load(1, H2, 8);
  M.finish();

  BufferSink Copy;
  B.replayTo(Copy);
  ASSERT_EQ(Copy.accesses().size(), B.accesses().size());
  for (size_t I = 0; I != B.accesses().size(); ++I) {
    EXPECT_EQ(Copy.accesses()[I].Addr, B.accesses()[I].Addr);
    EXPECT_EQ(Copy.accesses()[I].Time, B.accesses()[I].Time);
  }
  EXPECT_EQ(Copy.allocs().size(), B.allocs().size());
  EXPECT_EQ(Copy.frees().size(), B.frees().size());
}

//===----------------------------------------------------------------------===//
// Free-path hardening: the contracts pinned in MemoryInterface.h
//===----------------------------------------------------------------------===//

TEST(MemoryInterfaceTest, UnknownHeapFreeIsCountedNoOp) {
  MemoryInterface M;
  BufferSink B;
  M.attachSink(&B);
  uint64_t Live = M.heapAlloc(0, 64);
  ASSERT_NE(Live, 0u);
  uint64_t HeapUsed = M.allocator().stats().LiveBytes;

  M.heapFree(0xDEAD0000); // Never allocated.
  EXPECT_EQ(M.unknownFrees(), 1u);
  EXPECT_EQ(B.frees().size(), 0u) << "no sink event for an unknown free";
  EXPECT_EQ(M.allocator().stats().LiveBytes, HeapUsed)
      << "allocator untouched by an unknown free";
  EXPECT_EQ(M.allocator().liveBlockSize(Live), 64u);
}

TEST(MemoryInterfaceTest, DoubleFreeIsCountedNoOp) {
  MemoryInterface M;
  BufferSink B;
  M.attachSink(&B);
  uint64_t Addr = M.heapAlloc(0, 32);
  ASSERT_NE(Addr, 0u);
  M.heapFree(Addr); // Valid.
  EXPECT_EQ(B.frees().size(), 1u);
  EXPECT_EQ(M.unknownFrees(), 0u);
  M.heapFree(Addr); // Double free: address is no longer live.
  EXPECT_EQ(M.unknownFrees(), 1u);
  EXPECT_EQ(B.frees().size(), 1u) << "double free reaches no sink";
}

TEST(MemoryInterfaceTest, FreeMidBatchFlushesAccessesFirst) {
  // A free arriving while accesses are batched must not overtake them:
  // sinks see the accesses, then the free, exactly in execution order.
  struct OrderSink : TraceSink {
    std::vector<char> Seen;
    void onAccess(const AccessEvent &) override { Seen.push_back('a'); }
    void onAccessBatch(std::span<const AccessEvent> Events) override {
      for (size_t I = 0; I != Events.size(); ++I)
        Seen.push_back('a');
    }
    void onAlloc(const AllocEvent &) override { Seen.push_back('A'); }
    void onFree(const FreeEvent &) override { Seen.push_back('F'); }
  } S;
  MemoryInterface M;
  M.attachSink(&S);
  uint64_t Addr = M.heapAlloc(0, 64);
  M.load(0, Addr);
  M.store(1, Addr + 8);
  // Batch capacity (default 128) not reached: both accesses pending.
  M.heapFree(Addr);
  EXPECT_EQ(S.Seen, (std::vector<char>{'A', 'a', 'a', 'F'}));
}

TEST(MemoryInterfaceTest, UnknownFreeDoesNotFlushBatch) {
  // An ignored free is a true no-op: the access batch stays pending, so
  // the unknown-free filter cannot perturb batching behavior.
  MemoryInterface M;
  CountingSink C;
  M.attachSink(&C);
  M.load(0, 0x1000);
  M.heapFree(0xDEAD0000);
  EXPECT_EQ(M.unknownFrees(), 1u);
  EXPECT_EQ(C.accesses(), 0u) << "batch not flushed by the no-op";
  M.flushAccesses();
  EXPECT_EQ(C.accesses(), 1u);
}

TEST(MemoryInterfaceTest, InjectFreeForwardsUnknownAddressVerbatim) {
  // Replay hook contract: the trace is the authority — an inject of a
  // free the simulated heap never saw still reaches the sinks (the OMC
  // diagnoses it downstream as OmcStats::UnknownFrees).
  MemoryInterface M;
  BufferSink B;
  M.attachSink(&B);
  M.injectFree(FreeEvent{0xDEAD0000, 5});
  ASSERT_EQ(B.frees().size(), 1u);
  EXPECT_EQ(B.frees()[0].Addr, 0xDEAD0000u);
  EXPECT_EQ(B.frees()[0].Time, 5u);
  EXPECT_EQ(M.unknownFrees(), 0u) << "inject path does not filter";
}
