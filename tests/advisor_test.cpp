//===- tests/advisor_test.cpp - Advisor subsystem tests ------------------===//
//
// The profile -> decision -> payoff loop: classifier ranking goldens,
// the hardened .orpa round trip (including a full corruption-rejection
// sweep), the tiered-placement payoff (advised strictly beats the
// unadvised first-touch baseline on ListTraversal and the mcf
// analogue), artifact byte-identity with the advisor attached, and the
// telemetry bridge.
//
//===----------------------------------------------------------------------===//

#include "advisor/AdvisorReport.h"
#include "advisor/HotColdClassifier.h"
#include "advisor/Telemetry.h"
#include "advisor/TieredReplay.h"
#include "analysis/Stride.h"
#include "core/ProfilingSession.h"
#include "leap/Leap.h"
#include "leap/LeapProfileData.h"
#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/VarInt.h"
#include "telemetry/Registry.h"
#include "traceio/TraceReader.h"
#include "traceio/TraceWriter.h"
#include "whomp/OmsgArchive.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace orp;
using namespace orp::advisor;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "orp_advisor_" + Name;
}

/// Profiles \p WorkloadName live (WHOMP + LEAP + OMC) and returns the
/// detached artifacts; optionally records the raw trace to \p TracePath
/// and attaches \p Extra as an additional tuple consumer.
void profileWorkload(const std::string &WorkloadName,
                     leap::LeapProfileData &Leap, whomp::OmsgArchive &Omsg,
                     const std::string &TracePath = "",
                     core::OrTupleConsumer *Extra = nullptr) {
  core::ProfilingSession Session(memsim::AllocPolicy::FirstFit, /*Seed=*/7);
  std::unique_ptr<traceio::TraceWriter> Writer;
  if (!TracePath.empty()) {
    Writer = std::make_unique<traceio::TraceWriter>(
        TracePath, Session.registry(), memsim::AllocPolicy::FirstFit,
        /*Seed=*/7);
    ASSERT_TRUE(Writer->ok()) << Writer->error();
    Session.addRawSink(Writer.get());
  }
  whomp::WhompProfiler Whomp;
  leap::LeapProfiler LeapProf;
  Session.addConsumer(&Whomp);
  Session.addConsumer(&LeapProf);
  if (Extra)
    Session.addConsumer(Extra);
  auto W = workloads::createWorkloadByName(WorkloadName);
  ASSERT_TRUE(W);
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();
  if (Writer)
    ASSERT_TRUE(Writer->close()) << Writer->error();
  Leap = leap::LeapProfileData::fromProfiler(LeapProf);
  Omsg = whomp::OmsgArchive::build(Whomp, &Session.omc());
}

} // namespace

//===----------------------------------------------------------------------===//
// Ranking order
//===----------------------------------------------------------------------===//

TEST(PlacementRankTest, DensityThenAccessesThenFootprintThenGroup) {
  PlacementAdvice Dense{0, 1000, 10, 1, 0, true, false};
  PlacementAdvice Sparse{1, 1000, 1000, 1, 0, false, false};
  EXPECT_TRUE(placementRankBefore(Dense, Sparse));
  EXPECT_FALSE(placementRankBefore(Sparse, Dense));

  // Equal density (1/1): more total accesses first.
  PlacementAdvice Big{2, 500, 500, 1, 0, true, false};
  PlacementAdvice Small{3, 100, 100, 1, 0, true, false};
  EXPECT_TRUE(placementRankBefore(Big, Small));

  // Zero footprint with accesses is infinitely dense.
  PlacementAdvice Inf{4, 5, 0, 0, 0, true, false};
  EXPECT_TRUE(placementRankBefore(Inf, Dense));
  EXPECT_FALSE(placementRankBefore(Dense, Inf));

  // Full tie: lower group id first — a strict total order.
  PlacementAdvice A{5, 100, 100, 1, 0, true, false};
  PlacementAdvice B{6, 100, 100, 1, 0, true, false};
  EXPECT_TRUE(placementRankBefore(A, B));
  EXPECT_FALSE(placementRankBefore(B, A));
  EXPECT_FALSE(placementRankBefore(A, A));
}

TEST(PlacementRankTest, ExactDensityComparisonBeyondDoublePrecision) {
  // 2^60+1 accesses over 2^60 bytes vs 1-over-1: indistinguishable in
  // double, distinct under cross-multiplication.
  uint64_t Huge = 1ULL << 60;
  PlacementAdvice A{0, Huge + 1, Huge, 1, 0, true, false};
  PlacementAdvice B{1, 1, 1, 1, 0, true, false};
  EXPECT_TRUE(placementRankBefore(A, B));
  EXPECT_FALSE(placementRankBefore(B, A));
}

TEST(LayoutRankTest, PairCountThenKey) {
  LayoutAdvice Hot{0, 0, 8, 100};
  LayoutAdvice Cold{0, 8, 16, 2};
  EXPECT_TRUE(layoutRankBefore(Hot, Cold));
  LayoutAdvice SameCount{1, 0, 8, 100};
  EXPECT_TRUE(layoutRankBefore(Hot, SameCount)) << "ties break by group";
}

//===----------------------------------------------------------------------===//
// Classifier goldens on the pinned workload
//===----------------------------------------------------------------------===//

TEST(HotColdClassifierTest, ListTraversalGolden) {
  leap::LeapProfileData Leap;
  whomp::OmsgArchive Omsg;
  profileWorkload("list-traversal", Leap, Omsg);

  HotColdClassifier Classifier;
  AdvisorReport Report = Classifier.classify(Leap, Omsg);

  // ListTraversal has exactly two heap groups: the traversed list
  // nodes (hot, uniform 24-byte objects -> pool candidate) and the
  // never-accessed noise allocations (cold).
  ASSERT_EQ(Report.Placement.size(), 2u);
  const PlacementAdvice &Nodes = Report.Placement[0];
  const PlacementAdvice &Noise = Report.Placement[1];
  EXPECT_TRUE(Nodes.Hot);
  EXPECT_TRUE(Nodes.PoolCandidate) << "uniform, mostly-freed nodes";
  EXPECT_GT(Nodes.AccessCount, 0u);
  EXPECT_EQ(Nodes.ObjectCount, 64u);
  EXPECT_EQ(Nodes.FootprintBytes, 64u * 24u);
  EXPECT_FALSE(Noise.Hot) << "noise objects are never accessed";
  EXPECT_EQ(Noise.AccessCount, 0u);
  EXPECT_EQ(Report.hotGroupCount(), 1u);

  // Pointer chasing has no dominant stride: no prefetch advice.
  EXPECT_TRUE(Report.Prefetch.empty());
}

TEST(HotColdClassifierTest, ScannerMatchesArchiveRecovery) {
  // The streaming OffsetPairScanner and the offline recovery from the
  // archive's dimension streams must agree exactly.
  OffsetPairScanner Scanner;
  leap::LeapProfileData Leap;
  whomp::OmsgArchive Omsg;
  profileWorkload("300.twolf-a", Leap, Omsg, "", &Scanner);
  OffsetPairCounts FromArchive = offsetPairsFromArchive(Omsg);
  EXPECT_FALSE(FromArchive.empty());
  EXPECT_EQ(FromArchive, Scanner.pairCounts());
}

TEST(HotColdClassifierTest, PrefetchMatchesLiveStrideAnalysis) {
  core::ProfilingSession Session;
  leap::LeapProfiler LeapProf;
  Session.addConsumer(&LeapProf);
  auto W = workloads::createWorkloadByName("164.gzip-a");
  ASSERT_TRUE(W);
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();

  analysis::StrideMap Live = analysis::findStronglyStrided(LeapProf);
  std::vector<PrefetchAdvice> Detached = prefetchAdviceFromProfile(
      leap::LeapProfileData::fromProfiler(LeapProf), ClassifierOptions());
  ASSERT_FALSE(Detached.empty());
  for (const PrefetchAdvice &P : Detached) {
    auto It = Live.find(P.Instr);
    ASSERT_NE(It, Live.end()) << "instr " << P.Instr;
    EXPECT_EQ(P.Stride, It->second.Stride);
    EXPECT_EQ(P.Distance, choosePrefetchDistance(P.Stride));
    EXPECT_GE(P.SharePermille, 700u);
    EXPECT_LE(P.SharePermille, 1000u);
  }
  // Every detached candidate is a live strongly-strided *load*; the
  // live map may additionally contain stores.
  for (const auto &[Instr, Info] : Live) {
    auto Summary = leap::LeapProfileData::fromProfiler(LeapProf)
                       .instructions()
                       .at(Instr);
    bool IsLoad = !Summary.isStore();
    bool InDetached = false;
    for (const PrefetchAdvice &P : Detached)
      InDetached |= P.Instr == Instr;
    EXPECT_EQ(InDetached, IsLoad) << "instr " << Instr;
  }
}

TEST(ChoosePrefetchDistanceTest, ClampsToRange) {
  EXPECT_EQ(choosePrefetchDistance(4), 64u);
  EXPECT_EQ(choosePrefetchDistance(-4), 64u);
  EXPECT_EQ(choosePrefetchDistance(8), 32u);
  EXPECT_EQ(choosePrefetchDistance(256), 2u);
  EXPECT_EQ(choosePrefetchDistance(100000), 2u);
  EXPECT_EQ(choosePrefetchDistance(0), 0u);
}

//===----------------------------------------------------------------------===//
// The .orpa artifact
//===----------------------------------------------------------------------===//

namespace {

AdvisorReport listTraversalReport() {
  leap::LeapProfileData Leap;
  whomp::OmsgArchive Omsg;
  profileWorkload("list-traversal", Leap, Omsg);
  return HotColdClassifier().classify(Leap, Omsg);
}

} // namespace

TEST(AdvisorReportTest, RoundTripIsExactAndCanonical) {
  AdvisorReport Report = listTraversalReport();
  std::vector<uint8_t> Bytes = Report.serialize();
  AdvisorReport Parsed;
  std::string Err;
  ASSERT_TRUE(AdvisorReport::deserialize(Bytes, Parsed, Err)) << Err;
  EXPECT_EQ(Parsed, Report);
  // serialize(deserialize(x)) == x: the canonical-serialization
  // fixpoint the fuzzer also enforces.
  EXPECT_EQ(Parsed.serialize(), Bytes);
}

TEST(AdvisorReportTest, EmptyReportRoundTrips) {
  AdvisorReport Empty;
  std::vector<uint8_t> Bytes = Empty.serialize();
  AdvisorReport Parsed;
  std::string Err;
  ASSERT_TRUE(AdvisorReport::deserialize(Bytes, Parsed, Err)) << Err;
  EXPECT_EQ(Parsed, Empty);
}

TEST(AdvisorReportTest, EveryTruncationIsRejected) {
  std::vector<uint8_t> Bytes = listTraversalReport().serialize();
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Cut(Bytes.begin(), Bytes.begin() + Len);
    AdvisorReport Out;
    std::string Err;
    EXPECT_FALSE(AdvisorReport::deserialize(Cut, Out, Err))
        << "prefix of length " << Len << " parsed";
  }
}

TEST(AdvisorReportTest, EveryByteFlipIsRejected) {
  std::vector<uint8_t> Bytes = listTraversalReport().serialize();
  // Any single-bit corruption anywhere — header fields or payload —
  // must be caught (magic/version checks up front, CRC for the rest).
  for (size_t I = 0; I != Bytes.size(); ++I) {
    std::vector<uint8_t> Bad = Bytes;
    Bad[I] ^= 0x01;
    AdvisorReport Out;
    std::string Err;
    EXPECT_FALSE(AdvisorReport::deserialize(Bad, Out, Err))
        << "flip at byte " << I << " parsed";
  }
}

TEST(AdvisorReportTest, SerializeReestablishesRankOrder) {
  AdvisorReport Report;
  Report.Placement.push_back({0, 10, 10, 1, 0, true, false});
  Report.Placement.push_back({1, 999, 1, 1, 0, true, false});
  std::vector<uint8_t> Bytes = Report.serialize();
  AdvisorReport Parsed;
  std::string Err;
  ASSERT_TRUE(AdvisorReport::deserialize(Bytes, Parsed, Err)) << Err;
  // serialize() ranked group 1 (denser) first.
  ASSERT_EQ(Parsed.Placement.size(), 2u);
  EXPECT_EQ(Parsed.Placement[0].Group, 1u);
}

namespace {

/// Frames \p Payload as a .orpa image with a correct CRC — the forgery
/// helper: structurally arbitrary payloads that pass the checksum.
std::vector<uint8_t> frameAsOrpa(const std::vector<uint8_t> &Payload) {
  std::vector<uint8_t> Out = {'O', 'R', 'P', 'A',
                              AdvisorReport::kFormatVersion};
  appendLE32(crc32(Payload), Out);
  Out.insert(Out.end(), Payload.begin(), Payload.end());
  return Out;
}

void appendPlacementEntry(std::vector<uint8_t> &P, uint64_t Group,
                          uint64_t Access, uint64_t Foot, uint64_t Objects,
                          uint64_t Life, uint8_t Flags) {
  encodeULEB128(Group, P);
  encodeULEB128(Access, P);
  encodeULEB128(Foot, P);
  encodeULEB128(Objects, P);
  encodeULEB128(Life, P);
  P.push_back(Flags);
}

} // namespace

TEST(AdvisorReportTest, ForgedNonCanonicalOrderIsRejected) {
  // A hand-framed payload with a correct CRC but placement entries out
  // of rank order: the sparse group before the dense one.
  std::vector<uint8_t> P;
  encodeULEB128(2, P);
  appendPlacementEntry(P, /*Group=*/0, /*Access=*/10, /*Foot=*/10, 1, 0,
                       /*Flags=*/1);
  appendPlacementEntry(P, /*Group=*/1, /*Access=*/999, /*Foot=*/1, 1, 0,
                       /*Flags=*/1);
  encodeULEB128(0, P); // layout count
  encodeULEB128(0, P); // prefetch count
  AdvisorReport Out;
  std::string Err;
  EXPECT_FALSE(AdvisorReport::deserialize(frameAsOrpa(P), Out, Err));
  EXPECT_NE(Err.find("rank order"), std::string::npos) << Err;
}

TEST(AdvisorReportTest, OutOfRangeFieldsAreStructuredErrors) {
  AdvisorReport Parsed;
  std::string Err;

  // Prefetch share outside (0, 1000].
  AdvisorReport BadShare;
  BadShare.Prefetch.push_back({1, 8, 2000, 32});
  EXPECT_FALSE(
      AdvisorReport::deserialize(BadShare.serialize(), Parsed, Err));
  EXPECT_NE(Err.find("share"), std::string::npos) << Err;

  // Layout offsets must ascend.
  AdvisorReport BadOffsets;
  BadOffsets.Layout.push_back({0, 16, 8, 5});
  EXPECT_FALSE(
      AdvisorReport::deserialize(BadOffsets.serialize(), Parsed, Err));
  EXPECT_NE(Err.find("offsets"), std::string::npos) << Err;

  // Footprint without objects is inconsistent.
  AdvisorReport BadObjects;
  BadObjects.Placement.push_back({0, 10, 100, 0, 0, true, false});
  EXPECT_FALSE(
      AdvisorReport::deserialize(BadObjects.serialize(), Parsed, Err));
  EXPECT_NE(Err.find("objects"), std::string::npos) << Err;

  // Zero-stride prefetch advice is meaningless.
  AdvisorReport BadStride;
  BadStride.Prefetch.push_back({1, 0, 800, 32});
  EXPECT_FALSE(
      AdvisorReport::deserialize(BadStride.serialize(), Parsed, Err));
  EXPECT_NE(Err.find("stride"), std::string::npos) << Err;

  // Trailing bytes after a valid body.
  std::vector<uint8_t> P;
  encodeULEB128(0, P);
  encodeULEB128(0, P);
  encodeULEB128(0, P);
  P.push_back(0x5a);
  AdvisorReport Out;
  EXPECT_FALSE(AdvisorReport::deserialize(frameAsOrpa(P), Out, Err));
  EXPECT_NE(Err.find("trailing"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Tiered simulation payoff (the acceptance gate, in-process)
//===----------------------------------------------------------------------===//

namespace {

/// Records \p WorkloadName, builds advice from its profiles, and
/// simulates the three policies at 25% of peak live bytes.
void payoffFor(const std::string &WorkloadName, TieredSimResult &None,
               TieredSimResult &Lru, TieredSimResult &Advised) {
  std::string Path = tempPath(WorkloadName + ".orpt");
  leap::LeapProfileData Leap;
  whomp::OmsgArchive Omsg;
  profileWorkload(WorkloadName, Leap, Omsg, Path);
  AdvisorReport Report = HotColdClassifier().classify(Leap, Omsg);

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  uint64_t Peak = 0;
  std::string Err;
  ASSERT_TRUE(peakLiveBytes(Reader, Peak, Err)) << Err;
  ASSERT_GT(Peak, 0u);

  TieredSimOptions Opts;
  Opts.FastCapacityBytes = Peak / 4;
  Opts.Policy = memsim::TierPolicy::FirstTouch;
  ASSERT_TRUE(simulateTiered(Reader, Opts, None, Err)) << Err;
  Opts.Policy = memsim::TierPolicy::Lru;
  ASSERT_TRUE(simulateTiered(Reader, Opts, Lru, Err)) << Err;
  Opts.Policy = memsim::TierPolicy::Advised;
  Opts.Advice = &Report;
  ASSERT_TRUE(simulateTiered(Reader, Opts, Advised, Err)) << Err;

  std::remove(Path.c_str());
}

} // namespace

TEST(TieredReplayTest, AdviceBeatsFirstTouchOnListTraversal) {
  TieredSimResult None, Lru, Advised;
  payoffFor("list-traversal", None, Lru, Advised);

  // The pinned delta: advice-driven static placement strictly beats
  // unadvised first-touch, without a single migration.
  EXPECT_GT(Advised.Stats.fastHitRate(), None.Stats.fastHitRate());
  EXPECT_EQ(Advised.Stats.migrations(), 0u);
  EXPECT_EQ(None.Stats.migrations(), 0u);
  EXPECT_GT(Lru.Stats.migrations(), 0u) << "reactive baseline pays moves";
  EXPECT_GT(Advised.HotGroupsSelected, 0u);

  // All three policies replay the same stream.
  EXPECT_EQ(None.Accesses, Advised.Accesses);
  EXPECT_EQ(None.Accesses, Lru.Accesses);
  EXPECT_EQ(None.Stats.FastHits + None.Stats.SlowHits, None.Accesses);
  EXPECT_EQ(None.Stats.Unmapped, 0u);
}

TEST(TieredReplayTest, AdviceBeatsFirstTouchOnMcf) {
  TieredSimResult None, Lru, Advised;
  payoffFor("181.mcf-a", None, Lru, Advised);
  EXPECT_GT(Advised.Stats.fastHitRate(), None.Stats.fastHitRate());
  EXPECT_EQ(Advised.Stats.migrations(), 0u);
}

TEST(TieredReplayTest, SelectHotGroupsPacksGreedily) {
  AdvisorReport Report;
  // Rank order after sorting: group 2 (densest), group 0, group 1.
  Report.Placement.push_back({2, 1000, 100, 10, 0, true, false});
  Report.Placement.push_back({0, 500, 100, 10, 0, true, false});
  Report.Placement.push_back({1, 100, 100, 10, 0, false, false});
  std::sort(Report.Placement.begin(), Report.Placement.end(),
            placementRankBefore);

  // Budget for two whole groups.
  auto Two = selectHotGroups(Report, 200);
  EXPECT_EQ(Two.size(), 2u);
  EXPECT_TRUE(Two.count(2));
  EXPECT_TRUE(Two.count(0));

  // A marginal group takes the leftover budget (partial placement).
  auto Marginal = selectHotGroups(Report, 150);
  EXPECT_EQ(Marginal.size(), 2u);
  EXPECT_TRUE(Marginal.count(2));
  EXPECT_TRUE(Marginal.count(0)) << "mean object size 10 fits the rest";

  // Unaccessed groups never earn fast-tier bytes.
  AdvisorReport Cold;
  Cold.Placement.push_back({7, 0, 100, 10, 0, false, false});
  EXPECT_TRUE(selectHotGroups(Cold, 1000).empty());

  // Nothing fits whole: the hottest accessed group still goes in.
  AdvisorReport Huge;
  Huge.Placement.push_back({3, 1000, 5000, 1, 0, true, false});
  auto Fallback = selectHotGroups(Huge, 100);
  EXPECT_EQ(Fallback.size(), 1u);
  EXPECT_TRUE(Fallback.count(3));
}

//===----------------------------------------------------------------------===//
// Artifact byte-identity with the advisor attached
//===----------------------------------------------------------------------===//

TEST(AdvisorNeutralityTest, ProfilesAreByteIdenticalWithAdvisorAttached) {
  leap::LeapProfileData PlainLeap, AdvisedLeap;
  whomp::OmsgArchive PlainOmsg, AdvisedOmsg;
  profileWorkload("list-traversal", PlainLeap, PlainOmsg);

  // Second run: identical, but the classifier runs over the finished
  // profiles and the telemetry bridge publishes while we snapshot.
  profileWorkload("list-traversal", AdvisedLeap, AdvisedOmsg);
  AdvisorReport Report =
      HotColdClassifier().classify(AdvisedLeap, AdvisedOmsg);
  AdvisorTelemetry Bridge;
  Bridge.attachReport(&Report);
  (void)telemetry::Registry::global().snapshot();

  EXPECT_EQ(PlainLeap.serialize(), AdvisedLeap.serialize());
  EXPECT_EQ(PlainOmsg.serialize(), AdvisedOmsg.serialize());
}

//===----------------------------------------------------------------------===//
// Telemetry bridge
//===----------------------------------------------------------------------===//

TEST(AdvisorTelemetryTest, GaugesAppearInGlobalSnapshot) {
  AdvisorReport Report = listTraversalReport();
  memsim::TierStats Stats;
  Stats.FastHits = 75;
  Stats.SlowHits = 25;
  Stats.Promotions = 3;
  Stats.Evictions = 2;

  AdvisorTelemetry Bridge;
  Bridge.attachReport(&Report);
  Bridge.attachTierStats(&Stats);
  telemetry::MetricsSnapshot S = telemetry::Registry::global().snapshot();
  EXPECT_EQ(S.gauge("advisor.placement_groups"),
            static_cast<int64_t>(Report.Placement.size()));
  EXPECT_EQ(S.gauge("advisor.hot_groups"),
            static_cast<int64_t>(Report.hotGroupCount()));
  EXPECT_EQ(S.gauge("tiersim.fast_hits"), 75);
  EXPECT_EQ(S.gauge("tiersim.slow_hits"), 25);
  EXPECT_EQ(S.gauge("tiersim.fast_hit_permille"), 750);
}
