//===- Serializer.cpp - seeded unordered-serialize violation -------------===//
//
// The leak is two calls deep: serialize() -> flushGroups() ->
// emitGroups(), and only the last function touches the container. The
// direct grep (orp-lint R3) cannot see this; the analyzer's
// transitive call-graph walk must.
//
//===----------------------------------------------------------------------===//

#include "core/Serializer.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

class GroupSerializer {
public:
  std::vector<uint8_t> serialize() const;

private:
  void flushGroups(std::vector<uint8_t> &Out) const;
  void emitGroups(std::vector<uint8_t> &Out) const;

  std::unordered_map<uint64_t, uint32_t> Groups;
};

std::vector<uint8_t> GroupSerializer::serialize() const {
  std::vector<uint8_t> Out;
  flushGroups(Out);
  return Out;
}

void GroupSerializer::flushGroups(std::vector<uint8_t> &Out) const {
  emitGroups(Out);
}

void GroupSerializer::emitGroups(std::vector<uint8_t> &Out) const {
  for (const auto &Entry : Groups) {
    Out.push_back(static_cast<uint8_t>(Entry.first));
    Out.push_back(static_cast<uint8_t>(Entry.second));
  }
}

} // namespace fixture
