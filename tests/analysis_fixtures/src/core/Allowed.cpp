//===- Allowed.cpp - every violation, suppressed -------------------------===//
//
// The same violations as the other fixture files, each under an
// allow() escape. None of these may appear in the analyzer's output;
// the fixture harness greps for "Allowed.cpp" and fails if it does.
//
//===----------------------------------------------------------------------===//

#include <atomic>
#include <cstdint>
#include <thread>
#include <unordered_map>
#include <vector>

namespace fixture_allowed {

std::atomic<int> Flag{0};

void publishAllowed() {
  // orp-analyze: allow(atomics): fixture exercising the escape hatch.
  Flag.store(1, std::memory_order_seq_cst);
}

void spawnAllowed() {
  // orp-lint: allow(raw-thread): legacy spelling must also suppress.
  std::thread T([] {});
  T.join();
}

class SortedSerializer {
public:
  std::vector<uint8_t> serializeAllowed() const {
    std::vector<uint8_t> Out;
    // orp-analyze: allow(unordered-serialize): feeds a sort (fixture).
    for (const auto &Entry : Groups)
      Out.push_back(static_cast<uint8_t>(Entry.first));
    return Out;
  }

private:
  std::unordered_map<uint64_t, uint32_t> Groups;
};

} // namespace fixture_allowed
