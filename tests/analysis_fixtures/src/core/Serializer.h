//===- Serializer.h - fixture header (do not build) ----------------------===//

#ifndef FIXTURE_CORE_SERIALIZER_H
#define FIXTURE_CORE_SERIALIZER_H

inline int fixtureSerializerTag() { return 1; }

#endif
