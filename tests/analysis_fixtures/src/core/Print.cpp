//===- Print.cpp - seeded iostream violation -----------------------------===//

#include <iostream>

namespace fixture {

void print() { std::cout << "banned\n"; }

} // namespace fixture
