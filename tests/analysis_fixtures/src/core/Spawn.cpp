//===- Spawn.cpp - seeded raw-thread violation ---------------------------===//
//
// std::thread outside src/support must be reported (use ScopedThread,
// QueueWorker or SpscQueue instead).
//
//===----------------------------------------------------------------------===//

#include <thread>

namespace fixture {

void spawn() {
  std::thread T([] {});
  T.join();
}

} // namespace fixture
