//===- Publish.cpp - seeded atomics violation ----------------------------===//
//
// src/trace is not in the sanctioned atomics set; this seq_cst store
// must be reported.
//
//===----------------------------------------------------------------------===//

#include <atomic>

namespace fixture {

std::atomic<int> Flag{0};

void publish() { Flag.store(1, std::memory_order_seq_cst); }

} // namespace fixture
