//===- BackEdge.h - seeded layering violation (do not build) -------------===//
//
// support is rank 0; core is rank 4. This include must be reported as
// a layering back-edge.
//
//===----------------------------------------------------------------------===//

#ifndef FIXTURE_SUPPORT_BACKEDGE_H
#define FIXTURE_SUPPORT_BACKEDGE_H

#include "core/Serializer.h"

inline int backEdge() { return fixtureSerializerTag(); }

#endif
