//===- tests/pipeline_test.cpp - Deterministic parallel pipeline tests ---===//
//
// The contract under test (DESIGN.md section 10): threading only moves
// work between threads, never reorders any substream — so profiles
// built with --threads N are byte-identical to --threads 1 for every N.
// Plus unit tests for the support threading primitives themselves.
//
//===----------------------------------------------------------------------===//

#include "core/Decomposition.h"
#include "core/ProfilingSession.h"
#include "leap/LeapProfileData.h"
#include "leap/Leap.h"
#include "support/SpscQueue.h"
#include "support/WorkerPool.h"
#include "telemetry/Metric.h"
#include "traceio/TraceReader.h"
#include "traceio/TraceReplayer.h"
#include "traceio/TraceWriter.h"
#include "whomp/OmsgArchive.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

using namespace orp;

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "orp_pipeline_" + Name;
}

} // namespace

//===----------------------------------------------------------------------===//
// SpscQueue
//===----------------------------------------------------------------------===//

TEST(SpscQueueTest, FifoAcrossThreads) {
  constexpr int N = 10000;
  support::SpscQueue<int> Q(/*Capacity=*/8);
  std::vector<int> Got;
  support::ScopedThread Consumer([&] {
    int V;
    while (Q.pop(V))
      Got.push_back(V);
  });
  for (int I = 0; I != N; ++I)
    ASSERT_TRUE(Q.push(int(I)));
  Q.close();
  Consumer.join();
  ASSERT_EQ(Got.size(), static_cast<size_t>(N));
  for (int I = 0; I != N; ++I)
    EXPECT_EQ(Got[I], I);
}

TEST(SpscQueueTest, TryPushRespectsCapacity) {
  support::SpscQueue<int> Q(2);
  EXPECT_EQ(Q.capacity(), 2u);
  EXPECT_TRUE(Q.tryPush(1));
  EXPECT_TRUE(Q.tryPush(2));
  EXPECT_FALSE(Q.tryPush(3)) << "queue is full";
  int V = 0;
  EXPECT_TRUE(Q.tryPop(V));
  EXPECT_EQ(V, 1);
  EXPECT_TRUE(Q.tryPush(3)) << "slot freed by pop";
}

TEST(SpscQueueTest, CloseDrainsThenStops) {
  support::SpscQueue<int> Q(4);
  ASSERT_TRUE(Q.push(10));
  ASSERT_TRUE(Q.push(20));
  Q.close();
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 10);
  EXPECT_TRUE(Q.pop(V)) << "items queued before close() are delivered";
  EXPECT_EQ(V, 20);
  EXPECT_FALSE(Q.pop(V)) << "closed and drained";
  EXPECT_FALSE(Q.tryPop(V));
}

TEST(SpscQueueTest, TryPopOnEmptyOpenQueue) {
  support::SpscQueue<int> Q(4);
  int V = 0;
  EXPECT_FALSE(Q.tryPop(V)) << "empty but not closed";
}

TEST(SpscQueueTest, PushAfterCloseReturnsFalse) {
  support::SpscQueue<int> Q(4);
  EXPECT_TRUE(Q.push(1));
  Q.close();
  EXPECT_FALSE(Q.push(2)) << "closed queue rejects the value";
  EXPECT_FALSE(Q.tryPush(3)) << "closed queue rejects the value";
  int V = 0;
  EXPECT_TRUE(Q.pop(V)) << "pre-close items still drain";
  EXPECT_EQ(V, 1);
  EXPECT_FALSE(Q.pop(V));
}

TEST(SpscQueueTest, CloseWakesBlockedProducerWithoutCorruption) {
  // Regression: a close() racing a producer blocked on a full ring must
  // make that push fail cleanly — not overwrite an unconsumed slot or
  // push Count past capacity.
  support::SpscQueue<int> Q(2);
  ASSERT_TRUE(Q.push(1));
  ASSERT_TRUE(Q.push(2));
  bool Pushed = true;
  {
    support::ScopedThread Producer([&] { Pushed = Q.push(3); });
    Q.close(); // Before or during the blocked push: both must reject.
  }
  EXPECT_FALSE(Pushed);
  int V = 0;
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 1) << "oldest element survived the close";
  EXPECT_TRUE(Q.pop(V));
  EXPECT_EQ(V, 2);
  EXPECT_FALSE(Q.pop(V)) << "exactly the two pre-close items drained";
}

//===----------------------------------------------------------------------===//
// QueueWorker
//===----------------------------------------------------------------------===//

TEST(SpscQueueTest, TelemetryTracksDepthWatermarkAndStalls) {
  support::SpscQueue<int> Q(/*Capacity=*/4);
  support::QueueTelemetry T0 = Q.telemetry();
  EXPECT_EQ(T0.Capacity, 4u);
  EXPECT_EQ(T0.Depth, 0u);
  EXPECT_EQ(T0.Pushes, 0u);

  ASSERT_TRUE(Q.push(1));
  ASSERT_TRUE(Q.push(2));
  ASSERT_TRUE(Q.push(3));
  support::QueueTelemetry T1 = Q.telemetry();
  EXPECT_EQ(T1.Depth, 3u);
  EXPECT_EQ(T1.HighWatermark, 3u);
  EXPECT_EQ(T1.Pushes, 3u);
  EXPECT_EQ(T1.PushStalls, 0u);

  int V;
  ASSERT_TRUE(Q.tryPop(V));
  ASSERT_TRUE(Q.tryPop(V));
  support::QueueTelemetry T2 = Q.telemetry();
  EXPECT_EQ(T2.Depth, 1u);
  EXPECT_EQ(T2.HighWatermark, 3u) << "watermark never decreases";
  EXPECT_EQ(T2.Pops, 2u);

  // Fill the queue, then have a consumer drain while a blocked push
  // waits: the stall must be counted exactly once.
  ASSERT_TRUE(Q.push(4));
  ASSERT_TRUE(Q.push(5));
  ASSERT_TRUE(Q.push(6));
  support::ScopedThread Consumer([&] {
    int X;
    for (int I = 0; I != 5; ++I)
      EXPECT_TRUE(Q.pop(X));
  });
  ASSERT_TRUE(Q.push(7)); // blocks until the consumer makes room
  Consumer.join();
  support::QueueTelemetry T3 = Q.telemetry();
  EXPECT_EQ(T3.PushStalls, 1u);
  EXPECT_EQ(T3.Pushes, 7u);
  EXPECT_EQ(T3.HighWatermark, 4u);
  EXPECT_EQ(T3.Depth, 0u);
}

TEST(QueueWorkerTest, TelemetryReportsQueueAndBusyTime) {
  support::WorkerTelemetry T;
  {
    support::QueueWorker<int> Worker(
        /*QueueCapacity=*/16, [](int &) {
          // Enough work that steady_clock registers nonzero busy time.
          volatile int Spin = 0;
          for (int I = 0; I != 100000; ++I)
            Spin = Spin + I;
        });
    for (int I = 0; I != 10; ++I)
      ASSERT_TRUE(Worker.submit(int(I)));
    Worker.finish();
    T = Worker.telemetry();
  }
  EXPECT_EQ(T.Queue.Pushes, 10u);
  EXPECT_EQ(T.Queue.Depth, 0u);
  EXPECT_GE(T.Queue.HighWatermark, 1u);
  EXPECT_GT(T.BusyNanos, 0u);
}

TEST(QueueWorkerTest, ProcessesSubmissionsInOrder) {
  std::vector<int> Seen;
  {
    support::QueueWorker<int> W(/*QueueCapacity=*/4,
                                [&](int &V) { Seen.push_back(V); });
    for (int I = 0; I != 1000; ++I)
      ASSERT_TRUE(W.submit(int(I)));
    W.finish();
    W.finish(); // Idempotent.
  }
  ASSERT_EQ(Seen.size(), 1000u);
  for (int I = 0; I != 1000; ++I)
    EXPECT_EQ(Seen[I], I);
}

TEST(QueueWorkerTest, SubmitAfterFinishReturnsFalse) {
  // Regression for the bug the [[nodiscard]] rollout surfaced:
  // WorkerPool::submit used to return void and silently dropped items
  // submitted after finish(). It now reports the refusal, and every
  // production call site either fatals (decomposers — a refused chunk
  // is lost symbols) or stops producing (replayer decode-ahead).
  std::vector<int> Seen;
  support::QueueWorker<int> W(/*QueueCapacity=*/4,
                              [&](int &V) { Seen.push_back(V); });
  ASSERT_TRUE(W.submit(1));
  W.finish();
  EXPECT_FALSE(W.submit(2)) << "finished worker must refuse, not drop";
  EXPECT_EQ(Seen.size(), 1u) << "the refused item never ran";
}

TEST(QueueWorkerTest, DestructorDrainsWithoutExplicitFinish) {
  int Sum = 0;
  {
    support::QueueWorker<int> W(2, [&](int &V) { Sum += V; });
    for (int I = 1; I <= 100; ++I)
      ASSERT_TRUE(W.submit(int(I)));
  }
  EXPECT_EQ(Sum, 5050) << "all submitted work ran before join";
}

//===----------------------------------------------------------------------===//
// Decomposers: threaded == serial
//===----------------------------------------------------------------------===//

namespace {

/// Compressor that just records the symbols it was fed.
class RecordingCompressor : public core::StreamCompressor {
public:
  void append(uint64_t Symbol) override { Symbols.push_back(Symbol); }
  size_t serializedSizeBytes() const override { return Symbols.size(); }
  std::vector<uint64_t> Symbols;
};

/// Substream that records its tuples' times.
class RecordingSubstream : public core::SubstreamConsumer {
public:
  void append(const core::OrTuple &Tuple) override {
    Times.push_back(Tuple.Time);
  }
  std::vector<uint64_t> Times;
};

core::OrTuple makeTuple(uint32_t Instr, uint32_t Group, uint64_t Time) {
  core::OrTuple T;
  T.Instr = Instr;
  T.Group = Group;
  T.Object = Time % 7;
  T.Offset = Time % 13;
  T.Time = Time;
  T.IsStore = false;
  T.Size = 8;
  return T;
}

} // namespace

TEST(DecompositionThreadedTest, HorizontalMatchesSerial) {
  auto Run = [](unsigned Threads) {
    core::HorizontalDecomposer D(
        {core::Dimension::Instruction, core::Dimension::Offset},
        [] { return std::make_unique<RecordingCompressor>(); }, Threads);
    EXPECT_EQ(D.threaded(), Threads > 1);
    // More tuples than ThreadChunkSymbols so chunking kicks in.
    for (uint64_t I = 0; I != 3 * D.ThreadChunkSymbols + 17; ++I)
      D.consume(makeTuple(I % 5, 0, I));
    D.finish();
    EXPECT_FALSE(D.threaded()) << "workers joined at finish()";
    auto Sym = [&](core::Dimension Dim) {
      return static_cast<const RecordingCompressor &>(D.compressorFor(Dim))
          .Symbols;
    };
    return std::make_pair(Sym(core::Dimension::Instruction),
                          Sym(core::Dimension::Offset));
  };
  auto Serial = Run(1);
  auto Threaded = Run(4);
  EXPECT_EQ(Serial.first, Threaded.first);
  EXPECT_EQ(Serial.second, Threaded.second);
}

TEST(DecompositionThreadedTest, VerticalMatchesSerialAcrossThreadCounts) {
  auto Run = [](unsigned Threads) {
    core::VerticalDecomposer D(
        [](core::VerticalKey) {
          return std::make_unique<RecordingSubstream>();
        },
        Threads);
    for (uint64_t I = 0; I != 3 * D.ThreadChunkTuples + 5; ++I)
      D.consume(makeTuple(I % 11, I % 3, I));
    D.finish();
    // Key-ordered (key, times) pairs; must be identical for every
    // thread count.
    std::vector<std::pair<std::pair<uint32_t, uint32_t>,
                          std::vector<uint64_t>>> Result;
    D.forEach([&](const core::VerticalKey &Key,
                  const core::SubstreamConsumer &Sub) {
      Result.push_back(
          {{Key.Instr, Key.Group},
           static_cast<const RecordingSubstream &>(Sub).Times});
    });
    return Result;
  };
  auto Serial = Run(1);
  EXPECT_EQ(Serial, Run(2));
  EXPECT_EQ(Serial, Run(8));
}

TEST(DecompositionThreadedTest, VerticalDestroyWithoutFinishJoinsWorkers) {
  // Regression (use-after-free): destroying a threaded decomposer with
  // chunks still in flight must join the workers before the shard maps
  // are torn down. Detected under ASan/TSan; no finish() on purpose.
  core::VerticalDecomposer D(
      [](core::VerticalKey) { return std::make_unique<RecordingSubstream>(); },
      /*Threads=*/4);
  for (uint64_t I = 0; I != 8 * D.ThreadChunkTuples + 3; ++I)
    D.consume(makeTuple(I % 11, I % 3, I));
}

TEST(DecompositionThreadedTest, HorizontalDestroyWithoutFinishJoinsWorkers) {
  // Same contract for the dimension workers: destruction with buffered
  // symbols and no finish() must flush, join, then tear down.
  core::HorizontalDecomposer D(
      {core::Dimension::Instruction, core::Dimension::Offset},
      [] { return std::make_unique<RecordingCompressor>(); }, /*Threads=*/4);
  for (uint64_t I = 0; I != 8 * D.ThreadChunkSymbols + 3; ++I)
    D.consume(makeTuple(I % 5, 0, I));
}

//===----------------------------------------------------------------------===//
// Cross-thread determinism goldens (ISSUE satellite 4)
//===----------------------------------------------------------------------===//

namespace {

/// Records \p WorkloadName to \p Path with live WHOMP+LEAP attached.
void recordWithProfilers(const std::string &WorkloadName,
                         const std::string &Path,
                         std::vector<uint8_t> &LiveOmsg,
                         std::vector<uint8_t> &LiveLeap) {
  core::ProfilingSession Session(memsim::AllocPolicy::FirstFit, /*Seed=*/7);
  traceio::TraceWriter Writer(Path, Session.registry(),
                              memsim::AllocPolicy::FirstFit, /*Seed=*/7);
  ASSERT_TRUE(Writer.ok()) << Writer.error();
  Session.addRawSink(&Writer);
  whomp::WhompProfiler Whomp;
  leap::LeapProfiler Leap;
  Session.addConsumer(&Whomp);
  Session.addConsumer(&Leap);
  auto W = workloads::createWorkloadByName(WorkloadName);
  ASSERT_TRUE(W);
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();
  ASSERT_TRUE(Writer.close()) << Writer.error();
  LiveOmsg = whomp::OmsgArchive::build(Whomp, &Session.omc()).serialize();
  LiveLeap = leap::LeapProfileData::fromProfiler(Leap).serialize();
}

/// Replays \p Path at \p Threads and serializes both profiles.
void replayAt(const std::string &Path, unsigned Threads,
              std::vector<uint8_t> &Omsg, std::vector<uint8_t> &LeapBytes,
              uint64_t &EventsReplayed) {
  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  traceio::TraceReplayer Replayer(Reader);
  Replayer.setThreads(Threads);
  auto Session = Replayer.makeSession();
  whomp::WhompProfiler Whomp(Threads);
  leap::LeapProfiler Leap(lmad::LmadCompressor::DefaultMaxLmads, Threads);
  Session->addConsumer(&Whomp);
  Session->addConsumer(&Leap);
  ASSERT_TRUE(Replayer.replayInto(*Session)) << Replayer.error();
  EventsReplayed = Replayer.eventsReplayed();
  Omsg = whomp::OmsgArchive::build(Whomp, &Session->omc()).serialize();
  LeapBytes = leap::LeapProfileData::fromProfiler(Leap).serialize();
}

} // namespace

TEST(PipelineDeterminismTest, ReplayIsByteIdenticalForAnyThreadCount) {
  std::string Path = tempPath("vpr.orpt");
  std::vector<uint8_t> LiveOmsg, LiveLeap;
  recordWithProfilers("175.vpr-a", Path, LiveOmsg, LiveLeap);
  ASSERT_FALSE(LiveOmsg.empty());
  ASSERT_FALSE(LiveLeap.empty());

  std::vector<uint8_t> Omsg1, Leap1;
  uint64_t Events1 = 0;
  replayAt(Path, 1, Omsg1, Leap1, Events1);
  // Replay at 1 thread matches the live run (existing traceio
  // contract); threaded replays must then match the serial replay.
  EXPECT_EQ(Omsg1, LiveOmsg);
  EXPECT_EQ(Leap1, LiveLeap);

  for (unsigned Threads : {2u, 8u}) {
    std::vector<uint8_t> Omsg, Leap;
    uint64_t Events = 0;
    replayAt(Path, Threads, Omsg, Leap, Events);
    EXPECT_EQ(Events, Events1) << Threads << " threads";
    EXPECT_EQ(Omsg, Omsg1) << Threads << " threads";
    EXPECT_EQ(Leap, Leap1) << Threads << " threads";
  }
  std::remove(Path.c_str());
}

TEST(PipelineDeterminismTest, ProfilesAreByteIdenticalWithTelemetryOnOrOff) {
  // The telemetry subsystem is observation-only: OMSG archives and LEAP
  // profiles must not change by a single byte when metrics recording is
  // toggled, at any thread count (ISSUE 5 acceptance criterion).
  std::string Path = tempPath("telemetry_golden.orpt");
  std::vector<uint8_t> LiveOmsg, LiveLeap;
  recordWithProfilers("175.vpr-a", Path, LiveOmsg, LiveLeap);

  for (unsigned Threads : {1u, 2u, 8u}) {
    std::vector<uint8_t> OmsgOn, LeapOn, OmsgOff, LeapOff;
    uint64_t EventsOn = 0, EventsOff = 0;
    telemetry::setEnabled(true);
    replayAt(Path, Threads, OmsgOn, LeapOn, EventsOn);
    telemetry::setEnabled(false);
    replayAt(Path, Threads, OmsgOff, LeapOff, EventsOff);
    telemetry::setEnabled(true);
    EXPECT_EQ(EventsOn, EventsOff) << Threads << " threads";
    EXPECT_EQ(OmsgOn, OmsgOff) << Threads << " threads";
    EXPECT_EQ(LeapOn, LeapOff) << Threads << " threads";
    // And both match the live (telemetry-on) profile.
    EXPECT_EQ(OmsgOn, LiveOmsg) << Threads << " threads";
    EXPECT_EQ(LeapOn, LiveLeap) << Threads << " threads";
  }
  std::remove(Path.c_str());
}

TEST(PipelineDeterminismTest, ThreadedReplayRejectsCorruptTrace) {
  std::string Path = tempPath("corrupt.orpt");
  std::vector<uint8_t> LiveOmsg, LiveLeap;
  recordWithProfilers("164.gzip-a", Path, LiveOmsg, LiveLeap);

  // Flip one byte in the middle of the event area; either a block CRC
  // or a payload decode must catch it — also through the decode-ahead
  // worker path.
  std::FILE *F = std::fopen(Path.c_str(), "rb+");
  ASSERT_NE(F, nullptr);
  ASSERT_EQ(std::fseek(F, 2048, SEEK_SET), 0);
  int C = std::fgetc(F);
  ASSERT_NE(C, EOF);
  ASSERT_EQ(std::fseek(F, 2048, SEEK_SET), 0);
  std::fputc(C ^ 0xFF, F);
  std::fclose(F);

  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();
  traceio::TraceReplayer Replayer(Reader);
  Replayer.setThreads(4);
  auto Session = Replayer.makeSession();
  // Attach threaded consumers: a failed replay returns without calling
  // Session.finish(), so the profilers are destroyed with chunks still
  // in flight — the decomposer destructors must join their workers
  // (regression: use-after-free on the shard maps, caught by ASan/TSan).
  whomp::WhompProfiler Whomp(/*Threads=*/4);
  leap::LeapProfiler Leap(lmad::LmadCompressor::DefaultMaxLmads,
                          /*Threads=*/4);
  Session->addConsumer(&Whomp);
  Session->addConsumer(&Leap);
  EXPECT_FALSE(Replayer.replayInto(*Session));
  EXPECT_FALSE(Replayer.error().empty());
  std::remove(Path.c_str());
}

TEST(PipelineDeterminismTest, LiveProfilersMatchAcrossThreadCounts) {
  // Same contract without traces: a live session with threaded
  // profilers equals the serial live session.
  auto Run = [](unsigned Threads, std::vector<uint8_t> &Omsg,
                std::vector<uint8_t> &LeapBytes) {
    core::ProfilingSession Session(memsim::AllocPolicy::BestFit,
                                   /*Seed=*/3);
    whomp::WhompProfiler Whomp(Threads);
    leap::LeapProfiler Leap(lmad::LmadCompressor::DefaultMaxLmads,
                            Threads);
    Session.addConsumer(&Whomp);
    Session.addConsumer(&Leap);
    auto W = workloads::createWorkloadByName("181.mcf-a");
    ASSERT_TRUE(W);
    workloads::WorkloadConfig Config;
    W->run(Session.memory(), Session.registry(), Config);
    Session.finish();
    Omsg = whomp::OmsgArchive::build(Whomp, &Session.omc()).serialize();
    LeapBytes = leap::LeapProfileData::fromProfiler(Leap).serialize();
  };
  std::vector<uint8_t> Omsg1, Leap1, Omsg4, Leap4;
  Run(1, Omsg1, Leap1);
  Run(4, Omsg4, Leap4);
  EXPECT_EQ(Omsg1, Omsg4);
  EXPECT_EQ(Leap1, Leap4);
}
