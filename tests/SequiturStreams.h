//===- tests/SequiturStreams.h - Deterministic fuzz stream suite -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The deterministic stream family behind the Sequitur fuzz-lite suite.
/// Every stream is reproducible from its StreamCase entry alone, so the
/// serialize() images produced by the current SequiturGrammar can be
/// checked byte-for-byte (via CRC-32) against images recorded from the
/// pre-arena implementation. Generators must never change once a golden
/// CRC has been recorded against them.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TESTS_SEQUITURSTREAMS_H
#define ORP_TESTS_SEQUITURSTREAMS_H

#include "support/Random.h"

#include <cstdint>
#include <vector>

namespace orp {
namespace seqstreams {

/// Stream families exercised by the fuzz suite.
enum class StreamKind : uint8_t {
  Periodic,  ///< V[i] = i % A; adversarial for digram reuse.
  Runs,      ///< Runs of one symbol with Rng-chosen lengths ("aaa" twins).
  Random,    ///< Uniform over an alphabet of A symbols.
  Phrases,   ///< Random with re-emission of earlier phrases (B% bias).
  Nested,    ///< Doubling repetition: w, ww, wwww, ... of a random seed w.
  Sawtooth,  ///< Interleaved up/down counters; periodic with phase drift.
};

/// One reproducible stream: kind + parameters + expected CRC-32 of the
/// grammar serialization recorded from the pre-arena implementation.
struct StreamCase {
  const char *Name;
  StreamKind Kind;
  uint64_t Alphabet; ///< Symbol alphabet size (Kind-dependent meaning).
  uint32_t Length;   ///< Terminals to generate.
  uint64_t Seed;     ///< Rng seed for randomized kinds.
  uint32_t GoldenCrc; ///< CRC-32 of serialize() (pre-arena recording).
};

/// Generates the terminals of \p C. Deterministic; identical across
/// platforms (Rng is the repo's fixed xoshiro256**).
inline std::vector<uint64_t> makeStream(const StreamCase &C) {
  std::vector<uint64_t> V;
  V.reserve(C.Length);
  Rng R(C.Seed);
  switch (C.Kind) {
  case StreamKind::Periodic:
    for (uint32_t I = 0; I != C.Length; ++I)
      V.push_back(I % C.Alphabet);
    break;
  case StreamKind::Runs:
    while (V.size() < C.Length) {
      uint64_t Sym = R.nextBelow(C.Alphabet);
      uint64_t Run = 1 + R.nextBelow(9);
      for (uint64_t I = 0; I != Run && V.size() < C.Length; ++I)
        V.push_back(Sym);
    }
    break;
  case StreamKind::Random:
    for (uint32_t I = 0; I != C.Length; ++I)
      V.push_back(R.nextBelow(C.Alphabet));
    break;
  case StreamKind::Phrases:
    while (V.size() < C.Length) {
      if (!V.empty() && R.nextBool(0.6)) {
        size_t Start = R.nextBelow(V.size());
        size_t Len = 1 + R.nextBelow(12);
        for (size_t I = Start; I < V.size() && Len--; ++I)
          V.push_back(V[I]);
      } else {
        V.push_back(R.nextBelow(C.Alphabet));
      }
    }
    V.resize(C.Length);
    break;
  case StreamKind::Nested: {
    for (uint64_t I = 0; I != 4; ++I)
      V.push_back(R.nextBelow(C.Alphabet));
    while (V.size() * 2 <= C.Length)
      V.insert(V.end(), V.begin(), V.end());
    V.resize(C.Length);
    break;
  }
  case StreamKind::Sawtooth:
    for (uint32_t I = 0; I != C.Length; ++I) {
      uint64_t Phase = I / 64;
      V.push_back((I % 2) ? (I % C.Alphabet)
                          : (C.Alphabet - 1 - (I + Phase) % C.Alphabet));
    }
    break;
  }
  return V;
}

/// The fuzz-lite suite. Golden CRCs were recorded by building the
/// pre-arena SequiturGrammar (commit 5092134) against this exact
/// generator; the arena implementation must reproduce every image
/// byte-for-byte.
inline const StreamCase *streamCases(size_t &Count) {
  static const StreamCase Cases[] = {
      {"periodic_p1", StreamKind::Periodic, 1, 6000, 0, 0x4f38221du},
      {"periodic_p2", StreamKind::Periodic, 2, 6000, 0, 0xa1364331u},
      {"periodic_p3", StreamKind::Periodic, 3, 6000, 0, 0xc3c0c42cu},
      {"periodic_p7", StreamKind::Periodic, 7, 6000, 0, 0x90488c1eu},
      {"periodic_p64", StreamKind::Periodic, 64, 6000, 0, 0x2fac77c1u},
      {"periodic_p1024", StreamKind::Periodic, 1024, 6000, 0, 0xec82ecbfu},
      {"runs_a2", StreamKind::Runs, 2, 5000, 11, 0x3d79adf3u},
      {"runs_a5", StreamKind::Runs, 5, 5000, 12, 0x82404acfu},
      {"random_a2", StreamKind::Random, 2, 5000, 21, 0x7b25eee3u},
      {"random_a16", StreamKind::Random, 16, 5000, 22, 0x9a4ba388u},
      {"random_a256", StreamKind::Random, 256, 5000, 23, 0x3f587aaau},
      {"random_wide", StreamKind::Random, 1ULL << 40, 5000, 24, 0x58250927u},
      {"phrases_a4", StreamKind::Phrases, 4, 6000, 31, 0xf3e3b8bbu},
      {"phrases_a64", StreamKind::Phrases, 64, 6000, 32, 0xddeb810du},
      {"nested_a3", StreamKind::Nested, 3, 4096, 41, 0xf7fa87feu},
      {"nested_a300", StreamKind::Nested, 300, 4096, 42, 0x187bb2bfu},
      {"sawtooth_a8", StreamKind::Sawtooth, 8, 6000, 0, 0xedb9482au},
      {"sawtooth_a97", StreamKind::Sawtooth, 97, 6000, 0, 0x87d80415u},
  };
  Count = sizeof(Cases) / sizeof(Cases[0]);
  return Cases;
}

} // namespace seqstreams
} // namespace orp

#endif // ORP_TESTS_SEQUITURSTREAMS_H
