//===- tests/merge_test.cpp - Profile merging and checkpointing ----------===//
//
// The ground truth under test (DESIGN.md section 17): a trace split at
// ANY block boundary, profiled as checkpointed segments and merged,
// must byte-match the unsplit profile — for LEAP via the resumed
// compressor, for WHOMP/OMSG via grammar re-concatenation, and for the
// OMC via the checkpoint image. Union merges of independent runs must
// be associative and commutative. The hardened deserializers must
// reject every truncation and corruption with a structured error.
//
//===----------------------------------------------------------------------===//

#include "core/ProfilingSession.h"
#include "leap/Leap.h"
#include "leap/LeapProfileData.h"
#include "lmad/LmadCompressor.h"
#include "omc/ObjectManager.h"
#include "omc/OmcCheckpoint.h"
#include "session/ProfileSession.h"
#include "traceio/TraceReader.h"
#include "traceio/TraceWriter.h"
#include "whomp/OmsgArchive.h"
#include "whomp/OmsgStats.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

using namespace orp;

namespace {

/// Small deterministic xorshift generator (tests must not depend on
/// library rand()).
struct Rng {
  uint64_t S;
  explicit Rng(uint64_t Seed) : S(Seed ? Seed : 1) {}
  uint64_t next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return S;
  }
  uint64_t nextBelow(uint64_t N) { return next() % N; }
};

void expectSameCompressor(const lmad::LmadCompressor &A,
                          const lmad::LmadCompressor &B,
                          const std::string &What) {
  ASSERT_EQ(A.lmads().size(), B.lmads().size()) << What;
  for (size_t I = 0; I != A.lmads().size(); ++I) {
    EXPECT_EQ(A.lmads()[I].Start, B.lmads()[I].Start) << What << " #" << I;
    EXPECT_EQ(A.lmads()[I].Stride, B.lmads()[I].Stride) << What << " #" << I;
    EXPECT_EQ(A.lmads()[I].Count, B.lmads()[I].Count) << What << " #" << I;
  }
  EXPECT_EQ(A.totalPoints(), B.totalPoints()) << What;
  EXPECT_EQ(A.overflow().Dropped, B.overflow().Dropped) << What;
  EXPECT_EQ(A.overflow().Min, B.overflow().Min) << What;
  EXPECT_EQ(A.overflow().Max, B.overflow().Max) << What;
  EXPECT_EQ(A.overflow().Granularity, B.overflow().Granularity) << What;
  if (A.hasDiscards()) {
    EXPECT_EQ(A.firstDiscard(), B.firstDiscard()) << What;
    EXPECT_EQ(A.lastDiscard(), B.lastDiscard()) << What;
  }
}

/// A stream with linear runs and noise, so splits land inside captured
/// descriptors, at descriptor boundaries, and inside the discard tail.
std::vector<lmad::Point> mixedStream(uint64_t Seed, size_t N) {
  std::vector<lmad::Point> Points;
  Rng R(Seed);
  int64_t Obj = 0, Off = 0;
  for (size_t I = 0; I != N; ++I) {
    if (I % 17 == 0) {
      Obj = static_cast<int64_t>(R.nextBelow(8));
      Off = static_cast<int64_t>(R.nextBelow(64)) * 8;
    } else {
      Off += 8;
    }
    Points.push_back({Obj, Off, static_cast<int64_t>(I)});
  }
  return Points;
}

} // namespace

//===----------------------------------------------------------------------===//
// LMAD compressor resume (the sequential-merge primitive)
//===----------------------------------------------------------------------===//

TEST(LmadResumeTest, ResumeWithRawContinuationMatchesUnsplitAtEveryIndex) {
  // The resume() contract itself: a compressor rebuilt from a captured
  // state and fed the RAW remaining points behaves as if the stream had
  // never been split — at every split index, every cap.
  const std::vector<lmad::Point> Stream = mixedStream(/*Seed=*/42, 260);
  for (unsigned Cap : {2u, 4u, 30u}) {
    lmad::LmadCompressor Whole(3, Cap);
    for (const lmad::Point &P : Stream)
      Whole.addPoint(P);

    for (size_t Split = 0; Split <= Stream.size(); ++Split) {
      lmad::LmadCompressor Left(3, Cap);
      for (size_t I = 0; I != Split; ++I)
        Left.addPoint(Stream[I]);
      lmad::LmadCompressor Merged = lmad::LmadCompressor::resume(
          3, Cap, Left.lmads(), Left.totalPoints(), Left.overflow(),
          Left.firstDiscard(), Left.lastDiscard());
      for (size_t I = Split; I != Stream.size(); ++I)
        Merged.addPoint(Stream[I]);

      expectSameCompressor(Whole, Merged,
                           "cap " + std::to_string(Cap) + " split " +
                               std::to_string(Split));
    }
  }
}

TEST(LmadResumeTest, CapturedReplayPlusTailFoldMatchesUnsplit) {
  // The full segment-merge pipeline (replay the right segment's
  // CAPTURED prefix, fold its overflow tail). This is byte-exact
  // whenever the right segment's capture horizon reaches the unsplit
  // one — i.e. unless the fresh right compressor gave up before the
  // unsplit compressor would have (the carry-over branch of
  // foldOverflowTail), where the result degrades to a coarser but
  // conservative summary. Both regimes are asserted.
  const std::vector<lmad::Point> Stream = mixedStream(/*Seed=*/42, 260);
  for (unsigned Cap : {2u, 4u, 30u}) {
    lmad::LmadCompressor Whole(3, Cap);
    for (const lmad::Point &P : Stream)
      Whole.addPoint(P);

    size_t ExactSplits = 0;
    for (size_t Split = 0; Split <= Stream.size(); ++Split) {
      lmad::LmadCompressor Left(3, Cap), Right(3, Cap);
      for (size_t I = 0; I != Split; ++I)
        Left.addPoint(Stream[I]);
      for (size_t I = Split; I != Stream.size(); ++I)
        Right.addPoint(Stream[I]);

      lmad::LmadCompressor Merged = lmad::LmadCompressor::resume(
          3, Cap, Left.lmads(), Left.totalPoints(), Left.overflow(),
          Left.firstDiscard(), Left.lastDiscard());
      for (const lmad::Point &P : Right.reconstruct())
        Merged.addPoint(P);
      const bool LossyFold = Right.hasDiscards() && !Merged.hasDiscards();
      Merged.foldOverflowTail(Right.overflow(), Right.firstDiscard(),
                              Right.lastDiscard());

      // Point accounting is exact in every regime.
      EXPECT_EQ(Merged.totalPoints(), Whole.totalPoints())
          << "cap " << Cap << " split " << Split;
      if (LossyFold) {
        // The right segment overflowed before the unsplit capture
        // horizon: the merge keeps fewer descriptors and a wider
        // summary, never the other way around.
        EXPECT_GE(Merged.overflow().Dropped, Whole.overflow().Dropped)
            << "cap " << Cap << " split " << Split;
        continue;
      }
      ++ExactSplits;
      expectSameCompressor(Whole, Merged,
                           "cap " + std::to_string(Cap) + " split " +
                               std::to_string(Split));
    }
    // The exact regime must dominate (it covers split==0, split==N,
    // every split past the unsplit capture horizon, and every split
    // whose continuation saturates the replay).
    EXPECT_GT(ExactSplits, Stream.size() / 2) << "cap " << Cap;
  }
}

//===----------------------------------------------------------------------===//
// LEAP profile merges
//===----------------------------------------------------------------------===//

namespace {

/// A deterministic multi-substream tuple stream with mixed loads and
/// stores and enough irregularity to overflow small caps.
std::vector<core::OrTuple> tupleStream(uint64_t Seed, size_t N) {
  std::vector<core::OrTuple> Tuples;
  Rng R(Seed);
  for (size_t I = 0; I != N; ++I) {
    trace::InstrId Instr = 1 + static_cast<trace::InstrId>(R.nextBelow(3));
    omc::GroupId Group = static_cast<omc::GroupId>(R.nextBelow(2));
    Tuples.push_back(core::OrTuple{Instr, Group, R.nextBelow(50),
                                   R.nextBelow(32) * 8,
                                   static_cast<uint64_t>(I),
                                   (I % 3) == 0, 8});
  }
  return Tuples;
}

std::vector<uint8_t> profileBytes(const std::vector<core::OrTuple> &Tuples,
                                  size_t Begin, size_t End,
                                  unsigned MaxLmads) {
  leap::LeapProfiler Leap(MaxLmads);
  for (size_t I = Begin; I != End; ++I)
    Leap.consume(Tuples[I]);
  return leap::LeapProfileData::fromProfiler(Leap).serialize();
}

leap::LeapProfileData parseProfile(const std::vector<uint8_t> &Bytes) {
  leap::LeapProfileData Data;
  std::string Err;
  EXPECT_TRUE(leap::LeapProfileData::deserialize(Bytes, Data, Err)) << Err;
  return Data;
}

} // namespace

TEST(LeapMergeTest, SequentialSplitAtEveryBoundaryIsByteExact) {
  const std::vector<core::OrTuple> Tuples = tupleStream(/*Seed=*/7, 300);
  for (unsigned Cap : {2u, 30u}) {
    const std::vector<uint8_t> Unsplit =
        profileBytes(Tuples, 0, Tuples.size(), Cap);
    // Every 7th boundary plus the edges keeps the quadratic cost down
    // while still hitting splits inside runs and inside overflow tails.
    for (size_t Split = 0; Split <= Tuples.size();
         Split += (Split % 7 == 0 ? 1 : 6)) {
      leap::LeapProfileData Left =
          parseProfile(profileBytes(Tuples, 0, Split, Cap));
      leap::LeapProfileData Right =
          parseProfile(profileBytes(Tuples, Split, Tuples.size(), Cap));
      std::string Err;
      ASSERT_TRUE(Left.mergeSequential(Right, Err))
          << "split " << Split << ": " << Err;
      EXPECT_EQ(Left.serialize(), Unsplit)
          << "cap " << Cap << " split " << Split;
    }
  }
}

TEST(LeapMergeTest, SequentialMergeIsAssociative) {
  const std::vector<core::OrTuple> Tuples = tupleStream(/*Seed=*/19, 240);
  const std::vector<uint8_t> Unsplit = profileBytes(Tuples, 0, 240, 2);
  auto A = profileBytes(Tuples, 0, 80, 2);
  auto B = profileBytes(Tuples, 80, 160, 2);
  auto C = profileBytes(Tuples, 160, 240, 2);
  std::string Err;

  // (A + B) + C
  leap::LeapProfileData L = parseProfile(A);
  ASSERT_TRUE(L.mergeSequential(parseProfile(B), Err)) << Err;
  ASSERT_TRUE(L.mergeSequential(parseProfile(C), Err)) << Err;
  EXPECT_EQ(L.serialize(), Unsplit);

  // A + (B + C)
  leap::LeapProfileData R = parseProfile(B);
  ASSERT_TRUE(R.mergeSequential(parseProfile(C), Err)) << Err;
  leap::LeapProfileData L2 = parseProfile(A);
  ASSERT_TRUE(L2.mergeSequential(R, Err)) << Err;
  EXPECT_EQ(L2.serialize(), Unsplit);
}

TEST(LeapMergeTest, UnionIsCommutativeAssociativeWithIdentity) {
  // Profiles of three INDEPENDENT runs (different seeds, overlapping
  // substream keys).
  auto A = parseProfile(profileBytes(tupleStream(11, 200), 0, 200, 4));
  auto B = parseProfile(profileBytes(tupleStream(22, 150), 0, 150, 4));
  auto C = parseProfile(profileBytes(tupleStream(33, 250), 0, 250, 4));
  std::string Err;

  auto merge2 = [&](const leap::LeapProfileData &X,
                    const leap::LeapProfileData &Y) {
    leap::LeapProfileData Out = X;
    EXPECT_TRUE(Out.mergeUnion(Y, Err)) << Err;
    return Out;
  };

  std::vector<uint8_t> AB_C = merge2(merge2(A, B), C).serialize();
  std::vector<uint8_t> A_BC = merge2(A, merge2(B, C)).serialize();
  std::vector<uint8_t> CB_A = merge2(merge2(C, B), A).serialize();
  std::vector<uint8_t> BA_C = merge2(merge2(B, A), C).serialize();
  EXPECT_EQ(AB_C, A_BC);
  EXPECT_EQ(AB_C, CB_A);
  EXPECT_EQ(AB_C, BA_C);

  // The empty profile (same cap) is the identity.
  leap::LeapProfiler Empty(4);
  auto Identity = leap::LeapProfileData::fromProfiler(Empty);
  EXPECT_EQ(merge2(A, Identity).serialize(), A.serialize());
  EXPECT_EQ(merge2(Identity, A).serialize(), A.serialize());
}

TEST(LeapMergeTest, MismatchedCapsAreRejected) {
  auto A = parseProfile(profileBytes(tupleStream(1, 50), 0, 50, 4));
  auto B = parseProfile(profileBytes(tupleStream(1, 50), 0, 50, 8));
  std::string Err;
  EXPECT_FALSE(A.mergeUnion(B, Err));
  EXPECT_NE(Err.find("cap"), std::string::npos) << Err;
  Err.clear();
  EXPECT_FALSE(A.mergeSequential(B, Err));
  EXPECT_NE(Err.find("cap"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Split load/store instruction counters (the Leap.cpp bugfix)
//===----------------------------------------------------------------------===//

TEST(LeapInstrSummaryTest, MixedLoadStoreInstructionKeepsBothCounts) {
  leap::LeapProfiler Leap;
  // Instruction 1 issues loads AND stores; instruction 2 only loads.
  // The old last-write-wins bool made instruction 1's direction depend
  // on event order.
  Leap.consume(core::OrTuple{1, 0, 0, 0, 1, /*IsStore=*/true, 8});
  Leap.consume(core::OrTuple{1, 0, 0, 8, 2, /*IsStore=*/false, 8});
  Leap.consume(core::OrTuple{1, 0, 0, 16, 3, /*IsStore=*/true, 8});
  Leap.consume(core::OrTuple{2, 0, 0, 0, 4, /*IsStore=*/false, 8});

  auto Data = leap::LeapProfileData::fromProfiler(Leap);
  const auto &I1 = Data.instructions().at(1);
  EXPECT_EQ(I1.ExecCount, 3u);
  EXPECT_EQ(I1.StoreCount, 2u);
  EXPECT_TRUE(I1.isStore());
  const auto &I2 = Data.instructions().at(2);
  EXPECT_EQ(I2.ExecCount, 1u);
  EXPECT_EQ(I2.StoreCount, 0u);
  EXPECT_FALSE(I2.isStore());

  // The counters survive a serialization round trip and fold by
  // addition under merge.
  auto Back = parseProfile(Data.serialize());
  EXPECT_EQ(Back.instructions().at(1).StoreCount, 2u);
  std::string Err;
  ASSERT_TRUE(Back.mergeUnion(Data, Err)) << Err;
  EXPECT_EQ(Back.instructions().at(1).ExecCount, 6u);
  EXPECT_EQ(Back.instructions().at(1).StoreCount, 4u);
}

//===----------------------------------------------------------------------===//
// Hardened deserialization
//===----------------------------------------------------------------------===//

TEST(HardenedDeserializeTest, LeapRejectsEveryTruncation) {
  auto Bytes = profileBytes(tupleStream(5, 120), 0, 120, 2);
  leap::LeapProfileData Out;
  std::string Err;
  ASSERT_TRUE(leap::LeapProfileData::deserialize(Bytes, Out, Err)) << Err;
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    leap::LeapProfileData Trunc;
    Err.clear();
    EXPECT_FALSE(leap::LeapProfileData::deserialize(Prefix, Trunc, Err))
        << "prefix " << Len << " must be rejected";
    EXPECT_FALSE(Err.empty()) << "prefix " << Len;
  }
}

TEST(HardenedDeserializeTest, LeapRejectsCorruptHeaderAndPayload) {
  auto Bytes = profileBytes(tupleStream(6, 80), 0, 80, 4);
  leap::LeapProfileData Out;
  std::string Err;

  auto BadMagic = Bytes;
  BadMagic[0] = 'X';
  EXPECT_FALSE(leap::LeapProfileData::deserialize(BadMagic, Out, Err));
  EXPECT_NE(Err.find("magic"), std::string::npos) << Err;

  auto BadVersion = Bytes;
  BadVersion[4] = 0x7f;
  EXPECT_FALSE(leap::LeapProfileData::deserialize(BadVersion, Out, Err));
  EXPECT_NE(Err.find("version"), std::string::npos) << Err;

  // Every single-byte payload flip must be caught by the checksum.
  for (size_t I = leap::LeapProfileData::kHeaderSize; I < Bytes.size();
       I += 11) {
    auto Flipped = Bytes;
    Flipped[I] ^= 0x40;
    EXPECT_FALSE(leap::LeapProfileData::deserialize(Flipped, Out, Err))
        << "flip at " << I;
  }
}

TEST(HardenedDeserializeTest, OmsgStatsRoundTripAndFold) {
  whomp::WhompProfiler WhompA, WhompB;
  uint64_t Time = 0;
  for (unsigned I = 0; I != 64; ++I) {
    WhompA.consume(core::OrTuple{1, 0, I % 4, (I % 8) * 8, ++Time, false, 8});
    WhompB.consume(core::OrTuple{1, 0, I % 2, (I % 16) * 8, ++Time, false, 8});
  }
  WhompA.finish();
  WhompB.finish();
  auto StatsA = whomp::OmsgStats::fromArchive(whomp::OmsgArchive::build(WhompA));
  auto StatsB = whomp::OmsgStats::fromArchive(whomp::OmsgArchive::build(WhompB));
  EXPECT_EQ(StatsA.runs(), 1u);
  EXPECT_EQ(StatsA.accessCount(), 64u);
  ASSERT_EQ(StatsA.dimensions().size(), 4u);
  EXPECT_GT(StatsA.dimensions()[3].RuleCount, 0u);

  std::string Err;
  whomp::OmsgStats AB = StatsA, BA = StatsB;
  ASSERT_TRUE(AB.merge(StatsB, Err)) << Err;
  ASSERT_TRUE(BA.merge(StatsA, Err)) << Err;
  EXPECT_EQ(AB.serialize(), BA.serialize()) << "fold must be commutative";
  EXPECT_EQ(AB.runs(), 2u);
  EXPECT_EQ(AB.accessCount(), 128u);

  whomp::OmsgStats Back;
  ASSERT_TRUE(whomp::OmsgStats::deserialize(AB.serialize(), Back, Err)) << Err;
  EXPECT_TRUE(Back == AB);

  // Truncations of the digest are rejected too.
  auto Bytes = AB.serialize();
  for (size_t Len = 0; Len != Bytes.size(); ++Len) {
    std::vector<uint8_t> Prefix(Bytes.begin(), Bytes.begin() + Len);
    whomp::OmsgStats Trunc;
    EXPECT_FALSE(whomp::OmsgStats::deserialize(Prefix, Trunc, Err));
  }
}

//===----------------------------------------------------------------------===//
// OMC checkpointing
//===----------------------------------------------------------------------===//

namespace {

/// Drives \p Omc through a deterministic alloc/free/pool history.
void driveOmc(omc::ObjectManager &Omc) {
  Omc.splitPoolSite(/*Site=*/3, /*ElementSize=*/16);
  uint64_t Time = 0;
  Omc.onAlloc({/*Site=*/1, /*Addr=*/0x1000, /*Size=*/64, ++Time, false});
  Omc.onAlloc({/*Site=*/2, /*Addr=*/0x2000, /*Size=*/128, ++Time, false});
  Omc.onAlloc({/*Site=*/3, /*Addr=*/0x4000, /*Size=*/256, ++Time, false});
  Omc.onFree({0x2000, ++Time});
  Omc.onAlloc({/*Site=*/1, /*Addr=*/0x2000, /*Size=*/32, ++Time, false});
  Omc.onAlloc({/*Site=*/4, /*Addr=*/0x8000, /*Size=*/512, ++Time, true});
}

} // namespace

TEST(OmcCheckpointTest, RoundTripPreservesStateAndFutureBehavior) {
  omc::ObjectManager Original;
  driveOmc(Original);

  std::vector<uint8_t> Image;
  omc::OmcCheckpoint::serialize(Original, Image);

  omc::ObjectManager Restored;
  size_t Pos = 0;
  std::string Err;
  ASSERT_TRUE(omc::OmcCheckpoint::restore(Image.data(), Image.size(), Pos,
                                          Restored, Err))
      << Err;
  EXPECT_EQ(Pos, Image.size()) << "restore must consume the whole section";

  ASSERT_EQ(Restored.records().size(), Original.records().size());
  for (size_t I = 0; I != Original.records().size(); ++I) {
    const omc::ObjectRecord &A = Original.records()[I];
    const omc::ObjectRecord &B = Restored.records()[I];
    EXPECT_EQ(A.Group, B.Group);
    EXPECT_EQ(A.Serial, B.Serial);
    EXPECT_EQ(A.Site, B.Site);
    EXPECT_EQ(A.Base, B.Base);
    EXPECT_EQ(A.Size, B.Size);
    EXPECT_EQ(A.AllocTime, B.AllocTime);
    EXPECT_EQ(A.FreeTime, B.FreeTime);
    EXPECT_EQ(A.IsStatic, B.IsStatic);
  }
  EXPECT_EQ(Restored.numGroups(), Original.numGroups());
  EXPECT_EQ(Restored.numLiveObjects(), Original.numLiveObjects());

  // Identical translations, including the pool-split site...
  for (uint64_t Addr : {0x1000ull, 0x1008ull, 0x2000ull, 0x401Full,
                        0x4020ull, 0x8000ull, 0x9999ull}) {
    auto A = Original.translate(Addr);
    auto B = Restored.translate(Addr);
    ASSERT_EQ(A.has_value(), B.has_value()) << std::hex << Addr;
    if (A) {
      EXPECT_EQ(A->Group, B->Group) << std::hex << Addr;
      EXPECT_EQ(A->Object, B->Object) << std::hex << Addr;
      EXPECT_EQ(A->Offset, B->Offset) << std::hex << Addr;
    }
  }
  // ...and identical FUTURE behavior: serial counters continue where
  // they left off.
  Original.onAlloc({/*Site=*/1, /*Addr=*/0x10000, /*Size=*/64, 100, false});
  Restored.onAlloc({/*Site=*/1, /*Addr=*/0x10000, /*Size=*/64, 100, false});
  auto A = Original.translate(0x10000);
  auto B = Restored.translate(0x10000);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->Group, B->Group);
  EXPECT_EQ(A->Object, B->Object);
}

TEST(OmcCheckpointTest, RejectsTruncationAndCorruption) {
  omc::ObjectManager Original;
  driveOmc(Original);
  std::vector<uint8_t> Image;
  omc::OmcCheckpoint::serialize(Original, Image);

  for (size_t Len = 0; Len != Image.size(); ++Len) {
    omc::ObjectManager Fresh;
    size_t Pos = 0;
    std::string Err;
    // A strict prefix either fails...
    if (!omc::OmcCheckpoint::restore(Image.data(), Len, Pos, Fresh, Err)) {
      EXPECT_FALSE(Err.empty()) << "prefix " << Len;
      continue;
    }
    // ...or (rarely) parses as a shorter valid section; then it must
    // have consumed exactly the prefix.
    EXPECT_EQ(Pos, Len);
  }

  // A used target is refused.
  omc::ObjectManager Used;
  driveOmc(Used);
  size_t Pos = 0;
  std::string Err;
  EXPECT_FALSE(
      omc::OmcCheckpoint::restore(Image.data(), Image.size(), Pos, Used, Err));
  EXPECT_NE(Err.find("fresh"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Session checkpoint/resume: split-anywhere ground truth
//===----------------------------------------------------------------------===//

namespace {

std::string tempPath(const std::string &Name) {
  return testing::TempDir() + "orp_merge_" + Name;
}

void recordTrace(const std::string &WorkloadName, const std::string &Path,
                 size_t BlockBytes = 4096) {
  core::ProfilingSession Session(memsim::AllocPolicy::FirstFit, /*Seed=*/7);
  traceio::TraceWriter Writer(Path, Session.registry(),
                              memsim::AllocPolicy::FirstFit, /*Seed=*/7,
                              BlockBytes);
  ASSERT_TRUE(Writer.ok()) << Writer.error();
  Session.addRawSink(&Writer);
  auto W = workloads::createWorkloadByName(WorkloadName);
  ASSERT_TRUE(W);
  workloads::WorkloadConfig Config;
  W->run(Session.memory(), Session.registry(), Config);
  Session.finish();
  ASSERT_TRUE(Writer.close()) << Writer.error();
}

session::SessionConfig configFor(const traceio::TraceReader &Reader,
                                 unsigned MaxLmads) {
  session::SessionConfig Config;
  Config.Policy =
      static_cast<memsim::AllocPolicy>(Reader.info().AllocPolicy);
  Config.Seed = Reader.info().Seed;
  Config.MaxLmads = MaxLmads;
  return Config;
}

/// Replays \p TracePath in one go (the ground truth).
session::SessionArtifacts unsplitArtifacts(const std::string &TracePath,
                                           unsigned MaxLmads) {
  traceio::TraceReader Reader;
  EXPECT_TRUE(Reader.open(TracePath)) << Reader.error();
  session::ProfileSession Session("unsplit", configFor(Reader, MaxLmads));
  EXPECT_TRUE(Session.replayFrom(Reader)) << Session.error();
  return Session.finalize();
}

/// Replays \p TracePath as consecutive segments split at \p Boundaries
/// (checkpoint at each boundary, restore into a fresh session) and
/// merges the per-segment artifacts sequentially.
session::SessionArtifacts
segmentedArtifacts(const std::string &TracePath,
                   const std::vector<uint64_t> &Boundaries, unsigned MaxLmads,
                   unsigned DecodeThreads) {
  session::SessionArtifacts Merged;
  std::vector<session::SessionArtifacts> Parts;
  std::vector<uint8_t> Checkpoint;

  std::vector<uint64_t> Ends = Boundaries;
  Ends.push_back(~static_cast<uint64_t>(0));
  for (size_t Seg = 0; Seg != Ends.size(); ++Seg) {
    traceio::TraceReader Reader;
    EXPECT_TRUE(Reader.open(TracePath)) << Reader.error();
    session::ProfileSession Session("seg" + std::to_string(Seg),
                                    configFor(Reader, MaxLmads));
    uint64_t First = 0;
    std::string Err;
    if (Seg != 0) {
      EXPECT_TRUE(Session.restoreCheckpoint(Checkpoint, Reader, First, Err))
          << Err;
      EXPECT_EQ(First, Boundaries[Seg - 1]);
    }
    EXPECT_TRUE(Session.replayFrom(Reader, DecodeThreads, First, Ends[Seg]))
        << Session.error();
    if (Seg + 1 != Ends.size())
      Checkpoint = Session.checkpoint(Reader, Ends[Seg]);
    Parts.push_back(Session.finalize());
  }

  // Fold the segment artifacts: LEAP through mergeSequential, OMSG
  // through grammar re-concatenation.
  leap::LeapProfileData Leap;
  std::string Err;
  EXPECT_TRUE(leap::LeapProfileData::deserialize(Parts[0].Leap, Leap, Err))
      << Err;
  std::vector<whomp::OmsgArchive> Archives(Parts.size());
  std::vector<const whomp::OmsgArchive *> Segments;
  for (size_t I = 0; I != Parts.size(); ++I) {
    EXPECT_FALSE(Parts[I].Failed) << Parts[I].Error;
    if (I != 0) {
      leap::LeapProfileData Next;
      EXPECT_TRUE(leap::LeapProfileData::deserialize(Parts[I].Leap, Next, Err))
          << Err;
      EXPECT_TRUE(Leap.mergeSequential(Next, Err)) << Err;
    }
    EXPECT_TRUE(whomp::OmsgArchive::deserialize(Parts[I].Omsg, Archives[I],
                                                Err))
        << Err;
    Segments.push_back(&Archives[I]);
  }
  whomp::OmsgArchive Omsg;
  EXPECT_TRUE(whomp::OmsgArchive::mergeSequential(Segments, Omsg, Err)) << Err;

  Merged.Leap = Leap.serialize();
  Merged.Omsg = Omsg.serialize();
  Merged.Events = Parts.back().Events; // Cumulative via the checkpoint.
  return Merged;
}

} // namespace

TEST(SessionCheckpointTest, SplitAtEveryBoundaryMatchesUnsplit) {
  std::string Path = tempPath("split.orpt");
  recordTrace("list-traversal", Path);
  traceio::TraceReader Probe;
  ASSERT_TRUE(Probe.open(Path)) << Probe.error();
  const uint64_t NumBlocks = Probe.numEventBlocks();
  ASSERT_GE(NumBlocks, 4u) << "trace too small to exercise splitting";

  const session::SessionArtifacts Unsplit = unsplitArtifacts(Path, 30);
  ASSERT_FALSE(Unsplit.Failed) << Unsplit.Error;

  // Two segments, split at every block boundary (stride-capped for very
  // long traces).
  uint64_t Step = NumBlocks > 16 ? NumBlocks / 16 : 1;
  for (uint64_t Split = 1; Split < NumBlocks; Split += Step) {
    session::SessionArtifacts Merged =
        segmentedArtifacts(Path, {Split}, 30, /*DecodeThreads=*/1);
    EXPECT_EQ(Merged.Leap, Unsplit.Leap) << "split at " << Split;
    EXPECT_EQ(Merged.Omsg, Unsplit.Omsg) << "split at " << Split;
    EXPECT_EQ(Merged.Events, Unsplit.Events) << "split at " << Split;
  }
  std::remove(Path.c_str());
}

TEST(SessionCheckpointTest, FourSegmentsAndThreadedDecodeMatchUnsplit) {
  std::string Path = tempPath("fourseg.orpt");
  recordTrace("list-traversal", Path);
  traceio::TraceReader Probe;
  ASSERT_TRUE(Probe.open(Path)) << Probe.error();
  const uint64_t NumBlocks = Probe.numEventBlocks();
  ASSERT_GE(NumBlocks, 4u);

  // A small cap forces overflow tails that must bridge across all three
  // checkpoint boundaries.
  for (unsigned Cap : {2u, 30u}) {
    const session::SessionArtifacts Unsplit = unsplitArtifacts(Path, Cap);
    std::vector<uint64_t> Boundaries = {NumBlocks / 4, NumBlocks / 2,
                                        (3 * NumBlocks) / 4};
    for (unsigned Threads : {1u, 2u, 8u}) {
      session::SessionArtifacts Merged =
          segmentedArtifacts(Path, Boundaries, Cap, Threads);
      EXPECT_EQ(Merged.Leap, Unsplit.Leap)
          << "cap " << Cap << " threads " << Threads;
      EXPECT_EQ(Merged.Omsg, Unsplit.Omsg)
          << "cap " << Cap << " threads " << Threads;
      EXPECT_EQ(Merged.Events, Unsplit.Events);
    }
  }
  std::remove(Path.c_str());
}

TEST(SessionCheckpointTest, RestoreValidatesConfigTraceAndBytes) {
  std::string Path = tempPath("validate.orpt");
  recordTrace("list-traversal", Path);
  traceio::TraceReader Reader;
  ASSERT_TRUE(Reader.open(Path)) << Reader.error();

  session::ProfileSession Session("ck", configFor(Reader, 30));
  ASSERT_TRUE(Session.replayFrom(Reader, 1, 0, 2));
  std::vector<uint8_t> Ck = Session.checkpoint(Reader, 2);

  std::string Err;
  uint64_t Next = 0;
  // Mismatched configuration (different descriptor cap).
  {
    session::ProfileSession Other("bad-cap", configFor(Reader, 8));
    EXPECT_FALSE(Other.restoreCheckpoint(Ck, Reader, Next, Err));
    EXPECT_NE(Err.find("configuration"), std::string::npos) << Err;
  }
  // A session that already saw events is refused.
  {
    session::ProfileSession Other("used", configFor(Reader, 30));
    ASSERT_TRUE(Other.replayFrom(Reader, 1, 0, 1));
    EXPECT_FALSE(Other.restoreCheckpoint(Ck, Reader, Next, Err));
    EXPECT_NE(Err.find("fresh"), std::string::npos) << Err;
  }
  // A different trace is refused.
  {
    std::string Path2 = tempPath("validate2.orpt");
    recordTrace("list-traversal", Path2, /*BlockBytes=*/1024);
    traceio::TraceReader Reader2;
    ASSERT_TRUE(Reader2.open(Path2)) << Reader2.error();
    session::ProfileSession Other("wrong-trace", configFor(Reader2, 30));
    EXPECT_FALSE(Other.restoreCheckpoint(Ck, Reader2, Next, Err));
    EXPECT_NE(Err.find("trace"), std::string::npos) << Err;
    std::remove(Path2.c_str());
  }
  // Corrupt images: truncations at many lengths and a payload flip are
  // rejected.
  for (size_t Len = 0; Len < Ck.size(); Len += 7) {
    session::ProfileSession Other("trunc", configFor(Reader, 30));
    std::vector<uint8_t> Prefix(Ck.begin(), Ck.begin() + Len);
    EXPECT_FALSE(Other.restoreCheckpoint(Prefix, Reader, Next, Err))
        << "prefix " << Len;
  }
  {
    auto Flipped = Ck;
    Flipped[Flipped.size() - 1] ^= 0x01;
    session::ProfileSession Other("flip", configFor(Reader, 30));
    EXPECT_FALSE(Other.restoreCheckpoint(Flipped, Reader, Next, Err));
    EXPECT_NE(Err.find("checksum"), std::string::npos) << Err;
  }
  std::remove(Path.c_str());
}
