#!/usr/bin/env bash
#===- tools/daemon_smoke.sh - orp-traced end-to-end smoke ----------------===#
#
# The daemon's acceptance scenario as a shell check (run by the CI
# daemon-smoke job, plain and under ASan):
#
#   1. record two traces,
#   2. start orp-traced,
#   3. submit both concurrently through `orp-trace submit`,
#   4. scrape the Prometheus snapshot mid-flight,
#   5. diff every resulting profile against a single-session CLI replay
#      (byte-identical, per DESIGN.md section 12),
#   6. shut the daemon down cleanly (SIGTERM, zero exit).
#
# Usage: tools/daemon_smoke.sh <build-dir>
#
#===----------------------------------------------------------------------===#

set -eu

BUILD="${1:?usage: daemon_smoke.sh <build-dir>}"
ORP_TRACE="$BUILD/tools/orp-trace"
ORP_TRACED="$BUILD/tools/orp-traced"
WORK="$(mktemp -d)"
DAEMON_PID=

cleanup() {
  [ -n "$DAEMON_PID" ] && kill -9 "$DAEMON_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== record two traces (one per .orpt format version)"
"$ORP_TRACE" record list-traversal -o "$WORK/a.orpt" --scale=1 \
  --format-version=1
"$ORP_TRACE" record list-traversal -o "$WORK/b.orpt" --scale=2 \
  --format-version=2

echo "== single-session CLI replay references"
"$ORP_TRACE" replay "$WORK/a.orpt" --profiler=whomp \
  --dump-omsg="$WORK/a.cli.omsg" >/dev/null
"$ORP_TRACE" replay "$WORK/b.orpt" --profiler=whomp \
  --dump-omsg="$WORK/b.cli.omsg" >/dev/null

echo "== start orp-traced"
"$ORP_TRACED" --socket="$WORK/orp.sock" --outdir="$WORK" --threads=2 &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -S "$WORK/orp.sock" ] && break
  sleep 0.1
done
[ -S "$WORK/orp.sock" ] || { echo "FAIL: daemon never bound its socket"; exit 1; }

echo "== submit both traces concurrently"
"$ORP_TRACE" submit "$WORK/a.orpt" --socket="$WORK/orp.sock" --name=a \
  --dump-omsg="$WORK/a.daemon.omsg" &
SUBMIT_A=$!
"$ORP_TRACE" submit "$WORK/b.orpt" --socket="$WORK/orp.sock" --name=b \
  --dump-omsg="$WORK/b.daemon.omsg" \
  --print-snapshot=prometheus > "$WORK/snapshot.prom"
wait "$SUBMIT_A"

echo "== scrape is well-formed per-session Prometheus text"
grep -q '^# TYPE orp_session_b_events gauge$' "$WORK/snapshot.prom"
grep -q '^orp_session_b_mem_estimate_bytes ' "$WORK/snapshot.prom"
grep -q '^orp_session_b_ingest_capacity ' "$WORK/snapshot.prom"

echo "== daemon profiles are byte-identical to the CLI replays"
cmp "$WORK/a.cli.omsg" "$WORK/a.daemon.omsg"
cmp "$WORK/b.cli.omsg" "$WORK/b.daemon.omsg"
echo "== outdir artifacts match too"
cmp "$WORK/a.cli.omsg" "$WORK/a.omsg"
cmp "$WORK/b.cli.omsg" "$WORK/b.omsg"

echo "== clean shutdown on SIGTERM"
kill -TERM "$DAEMON_PID"
STATUS=0
wait "$DAEMON_PID" || STATUS=$?
DAEMON_PID=
[ "$STATUS" = 0 ] || { echo "FAIL: daemon exited with status $STATUS"; exit 1; }
[ -S "$WORK/orp.sock" ] && { echo "FAIL: socket not unlinked on shutdown"; exit 1; }

echo "daemon_smoke: OK"
