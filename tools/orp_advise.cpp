//===- tools/orp_advise.cpp - Advice generation and payoff CLI -----------===//
//
// Command-line front end over src/advisor: close the paper's
// profile -> decision -> payoff loop from the shell.
//
//   orp-advise advise <profiles>... -o FILE.orpa
//                     [--pool-min-objects=N] [--min-pairs=N]
//                     [--max-layout=N]
//   orp-advise simulate <trace.orpt> [--advice=FILE.orpa]
//                     [--policy=first-touch|lru|advised|all]
//                     [--fast-bytes=N] [--fast-fraction=PCT] [--json]
//                     [--metrics=PATH|-]
//   orp-advise version
//
// `advise` turns a detached profile pair — a .leap LEAP profile and a
// .omsa OMSG archive of the same run — into a ranked .orpa advice
// artifact. `simulate` replays a recorded .orpt trace through the
// two-tier memsim under each placement policy and reports what the
// advice bought (fast-tier hit rate, migrations avoided).
//
//===----------------------------------------------------------------------===//

#include "advisor/HotColdClassifier.h"
#include "advisor/Telemetry.h"
#include "advisor/TieredReplay.h"
#include "leap/LeapProfileData.h"
#include "support/LogSink.h"
#include "support/ParseNumber.h"
#include "support/TablePrinter.h"
#include "support/Version.h"
#include "telemetry/Registry.h"
#include "telemetry/Snapshot.h"
#include "traceio/TraceReader.h"
#include "whomp/OmsgArchive.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

using namespace orp;
using support::LogLevel;
using support::logMessage;

namespace {

int usage(const char *Argv0) {
  logMessage(
      LogLevel::Error,
      "usage: %s <command> ...\n"
      "  advise <profiles>... -o FILE.orpa           build a ranked advice "
      "artifact from a\n"
      "         [--pool-min-objects=N] [--min-pairs=N]  .leap + .omsa pair "
      "of the same run\n"
      "         [--max-layout=N]\n"
      "  simulate <trace.orpt> [--advice=FILE.orpa]  replay the trace "
      "through the two-tier\n"
      "         [--policy=first-touch|lru|advised|all]  memsim and report "
      "per-policy hit rates\n"
      "         [--fast-bytes=N] [--fast-fraction=PCT]  fast-tier size "
      "(default: 25%% of peak\n"
      "         [--json] [--metrics=PATH|-]          live bytes); --json "
      "for machine output\n"
      "  version                                     print version and "
      "build flags",
      Argv0);
  return 1;
}

/// Writes opaque, already-serialized artifact bytes to \p Path.
bool writeArtifactFile(const std::string &Path,
                       const std::vector<uint8_t> &Bytes) {
  // orp-lint: allow(endian-io): opaque byte image; all field encoding
  // happened inside serialize().
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out ||
      std::fwrite(Bytes.data(), 1, Bytes.size(), Out) != Bytes.size()) {
    logMessage(LogLevel::Error, "orp-advise: cannot write '%s'",
               Path.c_str());
    if (Out)
      std::fclose(Out);
    return false;
  }
  std::fclose(Out);
  return true;
}

/// Reads a whole artifact file into \p Bytes.
bool readArtifactFile(const std::string &Path, std::vector<uint8_t> &Bytes) {
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In) {
    logMessage(LogLevel::Error, "orp-advise: cannot read '%s'",
               Path.c_str());
    return false;
  }
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) != 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  bool Ok = !std::ferror(In);
  std::fclose(In);
  if (!Ok)
    logMessage(LogLevel::Error, "orp-advise: error reading '%s'",
               Path.c_str());
  return Ok;
}

const char *flagValue(const std::string &Arg, const char *Prefix) {
  size_t Len = std::strlen(Prefix);
  return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
}

bool numericFlag(const char *Cmd, const char *Flag, const char *Text,
                 uint64_t &Out) {
  if (support::parseUint64(Text, Out))
    return true;
  logMessage(LogLevel::Error,
             "orp-advise %s: %s expects an unsigned integer, got '%s'", Cmd,
             Flag, Text);
  return false;
}

int cmdAdvise(int Argc, char **Argv) {
  std::vector<std::string> Inputs;
  std::string OutPath;
  advisor::ClassifierOptions Opts;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-o" && I + 1 != Argc) {
      OutPath = Argv[++I];
    } else if (const char *V = flagValue(Arg, "--pool-min-objects=")) {
      if (!numericFlag("advise", "--pool-min-objects", V,
                       Opts.PoolMinObjects))
        return 1;
    } else if (const char *V = flagValue(Arg, "--min-pairs=")) {
      if (!numericFlag("advise", "--min-pairs", V, Opts.MinPairCount))
        return 1;
    } else if (const char *V = flagValue(Arg, "--max-layout=")) {
      uint64_t N = 0;
      if (!numericFlag("advise", "--max-layout", V, N))
        return 1;
      Opts.MaxLayoutEntries = static_cast<size_t>(N);
    } else if (Arg[0] != '-') {
      Inputs.push_back(Arg);
    } else {
      logMessage(LogLevel::Error, "orp-advise advise: bad argument '%s'",
                 Arg.c_str());
      return 1;
    }
  }
  if (Inputs.empty() || OutPath.empty()) {
    logMessage(LogLevel::Error,
               "orp-advise advise: need input profiles and -o OUT.orpa");
    return 1;
  }

  // Sniff each input by magic: exactly one LEAP profile and one OMSG
  // archive make an advice run.
  leap::LeapProfileData Leap;
  whomp::OmsgArchive Omsg;
  bool HaveLeap = false, HaveOmsg = false;
  for (const std::string &Path : Inputs) {
    std::vector<uint8_t> Bytes;
    if (!readArtifactFile(Path, Bytes))
      return 1;
    std::string Err;
    if (Bytes.size() >= 4 &&
        std::equal(leap::LeapProfileData::kMagic,
                   leap::LeapProfileData::kMagic + 4, Bytes.begin())) {
      if (HaveLeap) {
        logMessage(LogLevel::Error,
                   "orp-advise advise: more than one LEAP profile");
        return 1;
      }
      if (!leap::LeapProfileData::deserialize(Bytes, Leap, Err)) {
        logMessage(LogLevel::Error, "orp-advise: %s: %s", Path.c_str(),
                   Err.c_str());
        return 1;
      }
      HaveLeap = true;
    } else if (Bytes.size() >= 4 &&
               std::equal(whomp::OmsgArchive::kMagic,
                          whomp::OmsgArchive::kMagic + 4, Bytes.begin())) {
      if (HaveOmsg) {
        logMessage(LogLevel::Error,
                   "orp-advise advise: more than one OMSG archive");
        return 1;
      }
      if (!whomp::OmsgArchive::deserialize(Bytes, Omsg, Err)) {
        logMessage(LogLevel::Error, "orp-advise: %s: %s", Path.c_str(),
                   Err.c_str());
        return 1;
      }
      HaveOmsg = true;
    } else {
      logMessage(LogLevel::Error,
                 "orp-advise advise: '%s' is neither a LEAP profile nor "
                 "an OMSG archive",
                 Path.c_str());
      return 1;
    }
  }
  if (!HaveLeap || !HaveOmsg) {
    logMessage(LogLevel::Error,
               "orp-advise advise: need one .leap and one .omsa input");
    return 1;
  }

  advisor::HotColdClassifier Classifier(Opts);
  advisor::AdvisorReport Report = Classifier.classify(Leap, Omsg);
  if (!writeArtifactFile(OutPath, Report.serialize()))
    return 1;

  std::printf("%s: %zu groups ranked (%zu hot, %zu pool candidates), "
              "%zu layout pairs, %zu prefetch candidates\n\n",
              OutPath.c_str(), Report.Placement.size(),
              Report.hotGroupCount(), Report.poolCandidateCount(),
              Report.Layout.size(), Report.Prefetch.size());

  TablePrinter Table({"rank", "group", "accesses", "footprint", "objects",
                      "density", "class"});
  size_t Shown = 0;
  for (const advisor::PlacementAdvice &P : Report.Placement) {
    if (Shown == 10)
      break;
    std::string Class = P.Hot ? "hot" : "cold";
    if (P.PoolCandidate)
      Class += "+pool";
    Table.addRow({TablePrinter::fmt(static_cast<uint64_t>(Shown)),
                  TablePrinter::fmt(static_cast<uint64_t>(P.Group)),
                  TablePrinter::fmt(P.AccessCount),
                  TablePrinter::fmt(P.FootprintBytes),
                  TablePrinter::fmt(P.ObjectCount),
                  TablePrinter::fmt(P.density(), 3), Class});
    ++Shown;
  }
  Table.print();
  return 0;
}

/// One simulate pass' row for the report.
struct PolicyRun {
  memsim::TierPolicy Policy;
  advisor::TieredSimResult Result;
};

int cmdSimulate(int Argc, char **Argv) {
  std::string TracePath, AdvicePath, MetricsPath;
  std::string PolicyArg = "all";
  uint64_t FastBytes = 0, FastFraction = 25;
  bool Json = false;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (const char *V = flagValue(Arg, "--advice=")) {
      AdvicePath = V;
    } else if (const char *V = flagValue(Arg, "--policy=")) {
      PolicyArg = V;
    } else if (const char *V = flagValue(Arg, "--fast-bytes=")) {
      if (!numericFlag("simulate", "--fast-bytes", V, FastBytes))
        return 1;
    } else if (const char *V = flagValue(Arg, "--fast-fraction=")) {
      if (!numericFlag("simulate", "--fast-fraction", V, FastFraction))
        return 1;
      if (FastFraction == 0 || FastFraction > 100) {
        logMessage(LogLevel::Error,
                   "orp-advise simulate: --fast-fraction expects a "
                   "percentage in [1, 100]");
        return 1;
      }
    } else if (const char *V = flagValue(Arg, "--metrics=")) {
      MetricsPath = V;
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg[0] != '-' && TracePath.empty()) {
      TracePath = Arg;
    } else {
      logMessage(LogLevel::Error, "orp-advise simulate: bad argument '%s'",
                 Arg.c_str());
      return 1;
    }
  }
  if (TracePath.empty()) {
    logMessage(LogLevel::Error, "orp-advise simulate: missing trace file");
    return 1;
  }

  advisor::AdvisorReport Report;
  bool HaveAdvice = false;
  if (!AdvicePath.empty()) {
    std::vector<uint8_t> Bytes;
    if (!readArtifactFile(AdvicePath, Bytes))
      return 1;
    std::string Err;
    if (!advisor::AdvisorReport::deserialize(Bytes, Report, Err)) {
      logMessage(LogLevel::Error, "orp-advise: %s: %s", AdvicePath.c_str(),
                 Err.c_str());
      return 1;
    }
    HaveAdvice = true;
  }

  std::vector<memsim::TierPolicy> Policies;
  if (PolicyArg == "all") {
    Policies = {memsim::TierPolicy::FirstTouch, memsim::TierPolicy::Lru};
    if (HaveAdvice)
      Policies.push_back(memsim::TierPolicy::Advised);
  } else if (PolicyArg == "first-touch") {
    Policies = {memsim::TierPolicy::FirstTouch};
  } else if (PolicyArg == "lru") {
    Policies = {memsim::TierPolicy::Lru};
  } else if (PolicyArg == "advised") {
    Policies = {memsim::TierPolicy::Advised};
  } else {
    logMessage(LogLevel::Error,
               "orp-advise simulate: --policy expects "
               "first-touch|lru|advised|all, got '%s'",
               PolicyArg.c_str());
    return 1;
  }
  if (std::count(Policies.begin(), Policies.end(),
                 memsim::TierPolicy::Advised) &&
      !HaveAdvice) {
    logMessage(LogLevel::Error,
               "orp-advise simulate: the advised policy needs "
               "--advice=FILE.orpa");
    return 1;
  }

  traceio::TraceReader Reader;
  if (!Reader.open(TracePath)) {
    logMessage(LogLevel::Error, "orp-advise: %s", Reader.error().c_str());
    return 1;
  }

  uint64_t PeakLive = 0;
  std::string Err;
  if (!advisor::peakLiveBytes(Reader, PeakLive, Err)) {
    logMessage(LogLevel::Error, "orp-advise: %s: %s", TracePath.c_str(),
               Err.c_str());
    return 1;
  }
  uint64_t Capacity =
      FastBytes ? FastBytes : PeakLive * FastFraction / 100;

  advisor::AdvisorTelemetry Bridge;
  if (HaveAdvice)
    Bridge.attachReport(&Report);

  std::vector<PolicyRun> Runs;
  for (memsim::TierPolicy Policy : Policies) {
    advisor::TieredSimOptions Opts;
    Opts.Policy = Policy;
    Opts.FastCapacityBytes = Capacity;
    Opts.Advice = HaveAdvice ? &Report : nullptr;
    PolicyRun Run;
    Run.Policy = Policy;
    if (!advisor::simulateTiered(Reader, Opts, Run.Result, Err)) {
      logMessage(LogLevel::Error, "orp-advise: %s: %s", TracePath.c_str(),
                 Err.c_str());
      return 1;
    }
    Runs.push_back(Run);
  }

  // The last pass' counters back the tiersim.* gauges (under --policy=all
  // with advice, that is the advised run).
  if (!Runs.empty())
    Bridge.attachTierStats(&Runs.back().Result.Stats);

  if (Json) {
    std::printf("{\n  \"trace\": \"%s\",\n", TracePath.c_str());
    std::printf("  \"peak_live_bytes\": %llu,\n",
                static_cast<unsigned long long>(PeakLive));
    std::printf("  \"fast_capacity_bytes\": %llu,\n",
                static_cast<unsigned long long>(Capacity));
    std::printf("  \"policies\": {\n");
    for (size_t I = 0; I != Runs.size(); ++I) {
      const memsim::TierStats &S = Runs[I].Result.Stats;
      std::printf(
          "    \"%s\": {\"fast_hits\": %llu, \"slow_hits\": %llu, "
          "\"fast_hit_rate\": %.6f, \"migrations\": %llu, "
          "\"fast_allocs\": %llu, \"slow_allocs\": %llu, "
          "\"fast_bytes_peak\": %llu, \"hot_groups\": %llu}%s\n",
          memsim::tierPolicyName(Runs[I].Policy),
          static_cast<unsigned long long>(S.FastHits),
          static_cast<unsigned long long>(S.SlowHits), S.fastHitRate(),
          static_cast<unsigned long long>(S.migrations()),
          static_cast<unsigned long long>(S.FastAllocs),
          static_cast<unsigned long long>(S.SlowAllocs),
          static_cast<unsigned long long>(Runs[I].Result.FastBytesPeak),
          static_cast<unsigned long long>(Runs[I].Result.HotGroupsSelected),
          I + 1 == Runs.size() ? "" : ",");
    }
    std::printf("  }\n}\n");
  } else {
    std::printf("%s: %llu accesses, %llu allocs, fast tier %llu bytes "
                "(peak live %llu)\n\n",
                TracePath.c_str(),
                static_cast<unsigned long long>(
                    Runs.empty() ? 0 : Runs.front().Result.Accesses),
                static_cast<unsigned long long>(
                    Runs.empty() ? 0 : Runs.front().Result.Allocs),
                static_cast<unsigned long long>(Capacity),
                static_cast<unsigned long long>(PeakLive));
    TablePrinter Table({"policy", "fast hits", "slow hits", "hit rate",
                        "migrations", "fast allocs", "hot groups"});
    for (const PolicyRun &Run : Runs) {
      const memsim::TierStats &S = Run.Result.Stats;
      Table.addRow(
          {memsim::tierPolicyName(Run.Policy), TablePrinter::fmt(S.FastHits),
           TablePrinter::fmt(S.SlowHits),
           TablePrinter::fmtPercent(S.fastHitRate() * 100.0, 1),
           TablePrinter::fmt(S.migrations()), TablePrinter::fmt(S.FastAllocs),
           TablePrinter::fmt(
               static_cast<uint64_t>(Run.Result.HotGroupsSelected))});
    }
    Table.print();
  }

  if (!MetricsPath.empty()) {
    telemetry::MetricsSnapshot S = telemetry::Registry::global().snapshot();
    std::string WriteErr;
    if (!telemetry::writeSnapshot(S, MetricsPath,
                                  telemetry::SnapshotFormat::Json,
                                  /*Append=*/false, WriteErr)) {
      logMessage(LogLevel::Error, "orp-advise: %s", WriteErr.c_str());
      return 1;
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Cmd = Argv[1];
  if (Cmd == "advise")
    return cmdAdvise(Argc - 2, Argv + 2);
  if (Cmd == "simulate")
    return cmdSimulate(Argc - 2, Argv + 2);
  if (Cmd == "version" || Cmd == "--version") {
    support::printVersion("orp-advise");
    return 0;
  }
  return usage(Argv[0]);
}
