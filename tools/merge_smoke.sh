#!/usr/bin/env bash
#===- tools/merge_smoke.sh - checkpoint/merge end-to-end smoke -----------===#
#
# The merge/checkpoint acceptance scenario as a shell check (run by the
# CI merge-smoke job, plain and under ASan):
#
#   1. record a trace,
#   2. replay it unsplit, dumping the LEAP and OMSG artifacts,
#   3. replay it again as two checkpointed segments (--end-block +
#      --checkpoint-out, then --resume-from), at --threads=1 and 2,
#   4. `orp-trace merge --sequential` the per-segment artifacts,
#   5. byte-compare (sha256) every merged artifact against the unsplit
#      one — DESIGN.md section 17's ground truth,
#   6. check `orp-trace diff` exit codes (0 identical, 1 different),
#      the union merge path, and that corrupt/truncated artifacts are
#      rejected with a structured error.
#
# Usage: tools/merge_smoke.sh <build-dir>
#
#===----------------------------------------------------------------------===#

set -eu

BUILD="${1:?usage: merge_smoke.sh <build-dir>}"
ORP_TRACE="$BUILD/tools/orp-trace"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

sha() { sha256sum "$1" | cut -d' ' -f1; }

fail() { echo "merge_smoke: FAIL: $*" >&2; exit 1; }

echo "== record =="
"$ORP_TRACE" record list-traversal -o "$WORK/t.orpt" --seed=7 \
  --block-bytes=4096

BLOCKS=$("$ORP_TRACE" info "$WORK/t.orpt" |
  sed -n 's/.*(\([0-9]*\) blocks.*/\1/p' | head -1)
[ -n "$BLOCKS" ] || fail "could not read block count from orp-trace info"
[ "$BLOCKS" -ge 2 ] || fail "trace too small ($BLOCKS blocks) to split"
SPLIT=$((BLOCKS / 2))
echo "trace has $BLOCKS event blocks; splitting at $SPLIT"

echo "== unsplit replay =="
"$ORP_TRACE" replay "$WORK/t.orpt" --profiler=leap \
  --dump-leap="$WORK/unsplit.leap"
"$ORP_TRACE" replay "$WORK/t.orpt" --profiler=whomp \
  --dump-omsg="$WORK/unsplit.omsa"

for THREADS in 1 2; do
  echo "== segmented replay (--threads=$THREADS) =="
  "$ORP_TRACE" replay "$WORK/t.orpt" --profiler=leap --threads="$THREADS" \
    --end-block="$SPLIT" --checkpoint-out="$WORK/ck.orck" \
    --dump-leap="$WORK/seg1.leap"
  "$ORP_TRACE" replay "$WORK/t.orpt" --profiler=leap --threads="$THREADS" \
    --resume-from="$WORK/ck.orck" --dump-leap="$WORK/seg2.leap"
  "$ORP_TRACE" replay "$WORK/t.orpt" --profiler=whomp --threads="$THREADS" \
    --end-block="$SPLIT" --checkpoint-out="$WORK/ckw.orck" \
    --dump-omsg="$WORK/seg1.omsa"
  "$ORP_TRACE" replay "$WORK/t.orpt" --profiler=whomp --threads="$THREADS" \
    --resume-from="$WORK/ckw.orck" --dump-omsg="$WORK/seg2.omsa"

  "$ORP_TRACE" merge --sequential \
    "$WORK/seg1.leap" "$WORK/seg2.leap" -o "$WORK/merged.leap"
  "$ORP_TRACE" merge --sequential \
    "$WORK/seg1.omsa" "$WORK/seg2.omsa" -o "$WORK/merged.omsa"

  [ "$(sha "$WORK/merged.leap")" = "$(sha "$WORK/unsplit.leap")" ] ||
    fail "merged LEAP profile differs from unsplit (threads=$THREADS)"
  [ "$(sha "$WORK/merged.omsa")" = "$(sha "$WORK/unsplit.omsa")" ] ||
    fail "merged OMSG archive differs from unsplit (threads=$THREADS)"
  echo "byte-identical at threads=$THREADS"
done

echo "== diff exit codes =="
"$ORP_TRACE" diff "$WORK/merged.leap" "$WORK/unsplit.leap" ||
  fail "diff of identical profiles must exit 0"
if "$ORP_TRACE" diff "$WORK/seg1.leap" "$WORK/unsplit.leap"; then
  fail "diff of different profiles must exit nonzero"
fi

echo "== union merge =="
# Union of a profile with itself doubles the counters but stays valid,
# and merging in either order gives identical bytes.
"$ORP_TRACE" merge "$WORK/seg1.leap" "$WORK/seg2.leap" -o "$WORK/u12.leap"
"$ORP_TRACE" merge "$WORK/seg2.leap" "$WORK/seg1.leap" -o "$WORK/u21.leap"
[ "$(sha "$WORK/u12.leap")" = "$(sha "$WORK/u21.leap")" ] ||
  fail "union merge is not commutative"
# OMSG archives of independent runs fold into an OMST digest.
"$ORP_TRACE" merge "$WORK/seg1.omsa" "$WORK/seg2.omsa" -o "$WORK/fleet.omst"
"$ORP_TRACE" diff "$WORK/fleet.omst" "$WORK/fleet.omst" ||
  fail "diff of an OMST digest with itself must exit 0"

echo "== hardened readers =="
# Truncated and corrupted artifacts must be rejected (exit nonzero),
# never crash or hang.
head -c 13 "$WORK/unsplit.leap" > "$WORK/trunc.leap"
if "$ORP_TRACE" merge --sequential "$WORK/trunc.leap" "$WORK/seg2.leap" \
     -o "$WORK/bad.leap" 2>/dev/null; then
  fail "merge accepted a truncated profile"
fi
cp "$WORK/unsplit.leap" "$WORK/flip.leap"
printf '\xff' | dd of="$WORK/flip.leap" bs=1 seek=40 conv=notrunc 2>/dev/null
if "$ORP_TRACE" diff "$WORK/flip.leap" "$WORK/unsplit.leap"; then
  fail "diff accepted a corrupted profile as identical"
fi
head -c 20 "$WORK/ck.orck" > "$WORK/trunc.orck"
if "$ORP_TRACE" replay "$WORK/t.orpt" --profiler=leap \
     --resume-from="$WORK/trunc.orck" 2>/dev/null; then
  fail "replay accepted a truncated checkpoint"
fi

echo "merge_smoke: PASS"
