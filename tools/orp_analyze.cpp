//===- tools/orp_analyze.cpp - Structural static analyzer -----------------===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
//
// orp-analyze: the compile-grade half of the repository's lint wall.
// Where tools/orp-lint greps raw text, this tool tokenizes the tree,
// builds the include graph and a heuristic per-function call graph, and
// enforces the structural contracts grep cannot see:
//
//   layering             #include edges between src/ modules must
//                        follow the declared layering DAG (ranks
//                        below); same-rank or upward edges and cycles
//                        are errors, except the allowlisted
//                        check<->omc / check<->sequitur validation
//                        seam.
//   unordered-serialize  no serialization function may reach — in the
//                        same function or transitively through calls —
//                        a range-for over an unordered container,
//                        whose iteration order would leak into the
//                        byte stream (the cross-function upgrade of
//                        orp-lint rule R3).
//   atomics              non-relaxed memory orderings are confined to
//                        the sanctioned files that own a published
//                        happens-before edge (src/support, the
//                        telemetry registry spinlock, the replayer's
//                        decode-ahead flag, the session manager).
//   raw-thread           std::thread/mutex/condition_variable only in
//                        src/support (the compiled port of orp-lint
//                        rule R5).
//   iostream             #include <iostream> is banned in src/
//                        (support/LogSink.h and TablePrinter are the
//                        sanctioned output paths).
//
// Usage:
//   orp-analyze [--root=DIR] [--json] [--list-rules]
//
// Exit status: 0 clean, 1 findings, 2 usage/IO error. Findings print
// one per line as `orp-analyze: <rule>: <file>:<line>: <message>`, or
// as a JSON array with --json.
//
// Per-line escapes, on the flagged line or the line above:
//
//   // orp-analyze: allow(<rule>): reason
//
// Legacy orp-lint spellings for the rules this tool absorbs are also
// honored (allow(unordered-serial), allow(raw-thread)), so a line
// needs one annotation, not two.
//
// The tool is dependency-free C++ over the standard library: it must
// build anywhere the repo builds, with no LLVM/clang libraries — and
// no orp libraries either, so it can never deadlock the lint wall
// against the code it checks.
//
// orp-lint: allow(endian-io): reads text source files, no binary
// fields ever cross this tool's I/O.
//
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

//===----------------------------------------------------------------------===//
// Findings
//===----------------------------------------------------------------------===//

struct Finding {
  std::string Rule;
  std::string File; // Root-relative path.
  size_t Line = 0;
  std::string Message;
};

std::vector<Finding> Findings;

void report(const std::string &Rule, const std::string &File, size_t Line,
            const std::string &Message) {
  Findings.push_back({Rule, File, Line, Message});
}

//===----------------------------------------------------------------------===//
// Source model: one file, comment/string-stripped with line fidelity
//===----------------------------------------------------------------------===//

/// One scanned file. Raw holds the original lines (for allow() escapes
/// and diagnostics); Code holds the same lines with comments and
/// string/char literal *contents* blanked, so structural scans never
/// trip over text. Line numbering is identical between the two.
struct SourceFile {
  std::string Path;   ///< Root-relative, '/'-separated.
  std::string Module; ///< "support", "core", ... or "tools", "tests", ...
  bool InSrc = false; ///< Lives under src/.
  std::vector<std::string> Raw;
  std::vector<std::string> Code;
};

/// Blanks comments and literal contents across \p Lines, preserving
/// line structure. Quotes of string literals are kept (as '"') so
/// tokenizers still see a literal token; contents become spaces.
std::vector<std::string> stripLines(const std::vector<std::string> &Lines) {
  std::vector<std::string> Out;
  Out.reserve(Lines.size());
  enum class St { Normal, Block, Str, Chr } S = St::Normal;
  for (const std::string &L : Lines) {
    std::string R(L.size(), ' ');
    for (size_t I = 0; I < L.size(); ++I) {
      char C = L[I];
      char N = I + 1 < L.size() ? L[I + 1] : '\0';
      switch (S) {
      case St::Normal:
        if (C == '/' && N == '/') {
          I = L.size(); // Rest of line is comment.
        } else if (C == '/' && N == '*') {
          S = St::Block;
          ++I;
        } else if (C == '"') {
          R[I] = '"';
          S = St::Str;
        } else if (C == '\'') {
          R[I] = '\'';
          S = St::Chr;
        } else {
          R[I] = C;
        }
        break;
      case St::Block:
        if (C == '*' && N == '/') {
          S = St::Normal;
          ++I;
        }
        break;
      case St::Str:
        if (C == '\\') {
          ++I;
        } else if (C == '"') {
          R[I] = '"';
          S = St::Normal;
        }
        break;
      case St::Chr:
        if (C == '\\') {
          ++I;
        } else if (C == '\'') {
          R[I] = '\'';
          S = St::Normal;
        }
        break;
      }
    }
    // Unterminated string states do not leak across lines (no raw
    // string literals in this tree; a lone quote would otherwise eat
    // the rest of the file).
    if (S == St::Str || S == St::Chr)
      S = St::Normal;
    Out.push_back(std::move(R));
  }
  return Out;
}

/// True when line \p Line (1-based) of \p F carries an allow() escape
/// for \p Rule — on the line itself or the line above, under either
/// the orp-analyze or the legacy orp-lint spelling in \p LegacyRule.
bool isAllowed(const SourceFile &F, size_t Line, const char *Rule,
               const char *LegacyRule = nullptr) {
  auto lineHasEscape = [&](size_t N) {
    if (N < 1 || N > F.Raw.size())
      return false;
    const std::string &L = F.Raw[N - 1];
    if (L.find(std::string("orp-analyze: allow(") + Rule + ")") !=
        std::string::npos)
      return true;
    return LegacyRule &&
           L.find(std::string("orp-lint: allow(") + LegacyRule + ")") !=
               std::string::npos;
  };
  return lineHasEscape(Line) || lineHasEscape(Line - 1);
}

//===----------------------------------------------------------------------===//
// Tokenizer
//===----------------------------------------------------------------------===//

struct Token {
  enum class Kind { Ident, Punct, Literal } K = Kind::Punct;
  std::string Text;
  size_t Line = 0; // 1-based.
};

bool isIdentChar(char C) {
  return std::isalnum(static_cast<unsigned char>(C)) || C == '_';
}

std::vector<Token> tokenize(const SourceFile &F) {
  std::vector<Token> Toks;
  for (size_t LN = 0; LN != F.Code.size(); ++LN) {
    const std::string &L = F.Code[LN];
    for (size_t I = 0; I != L.size();) {
      char C = L[I];
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++I;
        continue;
      }
      if (isIdentChar(C)) {
        size_t J = I;
        while (J != L.size() && isIdentChar(L[J]))
          ++J;
        std::string T = L.substr(I, J - I);
        Toks.push_back({std::isdigit(static_cast<unsigned char>(C))
                            ? Token::Kind::Literal
                            : Token::Kind::Ident,
                        std::move(T), LN + 1});
        I = J;
        continue;
      }
      if (C == '"' || C == '\'') {
        Toks.push_back({Token::Kind::Literal, std::string(1, C), LN + 1});
        ++I;
        continue;
      }
      // Two-char puncts the scans care about ("::" must not look like
      // the range-for colon).
      if (I + 1 < L.size()) {
        char N = L[I + 1];
        if ((C == ':' && N == ':') || (C == '-' && N == '>') ||
            (C == '=' && N == '=')) {
          Toks.push_back({Token::Kind::Punct, L.substr(I, 2), LN + 1});
          I += 2;
          continue;
        }
      }
      Toks.push_back({Token::Kind::Punct, std::string(1, C), LN + 1});
      ++I;
    }
  }
  return Toks;
}

//===----------------------------------------------------------------------===//
// Module layering
//===----------------------------------------------------------------------===//

/// The declared layering DAG of src/ modules. An #include edge must go
/// strictly downward in rank; same-rank edges are legal only for the
/// allowlisted pairs below. Pseudo-modules (tools, tests, examples,
/// bench, fuzz) sit above everything and may include any src module.
const std::map<std::string, int> &moduleRanks() {
  static const std::map<std::string, int> Ranks = {
      {"support", 0},
      {"memsim", 1},
      {"telemetry", 1},
      {"lmad", 1},
      {"trace", 2},
      {"check", 3},
      {"omc", 3},
      {"sequitur", 3},
      {"core", 4},
      {"workloads", 4},
      {"whomp", 5},
      {"leap", 5},
      {"traceio", 5},
      {"analysis", 6},
      {"advisor", 7},
      {"baseline", 7},
      {"session", 7},
  };
  return Ranks;
}

/// Same-rank include pairs that are deliberate: the invariant
/// validators (src/check) reach into the structures they validate, and
/// those structures call back into check's poison/validate hooks.
bool isAllowlistedSeam(const std::string &A, const std::string &B) {
  auto Pair = [&](const char *X, const char *Y) {
    return (A == X && B == Y) || (A == Y && B == X);
  };
  return Pair("check", "omc") || Pair("check", "sequitur");
}

/// Extracts `#include "mod/Header.h"` module references with lines.
std::vector<std::pair<std::string, size_t>>
firstPartyIncludes(const SourceFile &F) {
  std::vector<std::pair<std::string, size_t>> Refs;
  for (size_t LN = 0; LN != F.Raw.size(); ++LN) {
    const std::string &L = F.Raw[LN];
    // A real directive starts the line (modulo indent); this also
    // keeps `#include "mod/Header.h"` inside comments from matching.
    size_t H = L.find_first_not_of(" \t");
    if (H == std::string::npos || L[H] != '#')
      continue;
    size_t Inc = L.find("include", H);
    if (Inc == std::string::npos)
      continue;
    size_t Q1 = L.find('"', Inc);
    if (Q1 == std::string::npos)
      continue;
    size_t Q2 = L.find('"', Q1 + 1);
    size_t Slash = L.find('/', Q1 + 1);
    if (Q2 == std::string::npos || Slash == std::string::npos || Slash > Q2)
      continue;
    Refs.emplace_back(L.substr(Q1 + 1, Slash - Q1 - 1), LN + 1);
  }
  return Refs;
}

void checkLayering(const std::vector<SourceFile> &Files) {
  const auto &Ranks = moduleRanks();
  // Module-level edge set (for cycle detection) with one witness line.
  std::map<std::pair<std::string, std::string>,
           std::pair<std::string, size_t>>
      Edges;
  for (const SourceFile &F : Files) {
    for (const auto &[Mod, Line] : firstPartyIncludes(F)) {
      auto It = Ranks.find(Mod);
      if (It == Ranks.end()) {
        // Only src/ is held to the module table; tools/tests/bench may
        // quote-include their own helpers (bench/common, gtest).
        if (F.InSrc && !isAllowed(F, Line, "layering"))
          report("layering", F.Path, Line,
                 "include of unknown module '" + Mod +
                     "' (not in the layering table; see "
                     "tools/orp_analyze.cpp moduleRanks())");
        continue;
      }
      if (!F.InSrc)
        continue; // tools/tests/... sit above all src modules.
      int FromRank = Ranks.at(F.Module);
      int ToRank = It->second;
      if (Mod == F.Module)
        continue;
      Edges.emplace(std::make_pair(F.Module, Mod),
                    std::make_pair(F.Path, Line));
      if (isAllowlistedSeam(F.Module, Mod))
        continue;
      if (ToRank >= FromRank && !isAllowed(F, Line, "layering"))
        report("layering", F.Path, Line,
               "module '" + F.Module + "' (rank " +
                   std::to_string(FromRank) + ") may not include '" + Mod +
                   "' (rank " + std::to_string(ToRank) +
                   "): layering back-edge");
    }
  }
  // Cycle detection over the module graph minus the allowlisted seam:
  // belt to the rank check's braces, and the diagnostic that names the
  // loop when someone edits the table into an inconsistency.
  std::map<std::string, std::vector<std::string>> Adj;
  for (const auto &[Edge, Witness] : Edges) {
    (void)Witness;
    if (!isAllowlistedSeam(Edge.first, Edge.second))
      Adj[Edge.first].push_back(Edge.second);
  }
  std::map<std::string, int> Color; // 0 white, 1 grey, 2 black.
  std::vector<std::string> Stack;
  // Iterative DFS with a grey path for cycle reporting.
  std::function<void(const std::string &)> Dfs =
      [&](const std::string &U) {
        Color[U] = 1;
        Stack.push_back(U);
        for (const std::string &V : Adj[U]) {
          if (Color[V] == 1) {
            std::string Cycle = V;
            for (size_t I = Stack.size(); I-- > 0;) {
              Cycle += " -> " + Stack[I];
              if (Stack[I] == V)
                break;
            }
            auto W = Edges.at({U, V});
            report("layering", W.first, W.second,
                   "module include cycle: " + Cycle);
          } else if (Color[V] == 0) {
            Dfs(V);
          }
        }
        Stack.pop_back();
        Color[U] = 2;
      };
  for (const auto &Entry : Adj)
    if (Color[Entry.first] == 0)
      Dfs(Entry.first);
}

//===----------------------------------------------------------------------===//
// Function model: names, bodies, calls, unordered iterations
//===----------------------------------------------------------------------===//

struct Func {
  std::string Name;  ///< Unqualified name.
  std::string Qual;  ///< As written (maybe Class::name).
  size_t File = 0;   ///< Index into the file list.
  size_t Line = 0;   ///< Definition line.
  std::vector<std::string> Callees; ///< Unqualified callee names.
  size_t UnorderedIterLine = 0;     ///< First unsuppressed unordered
                                    ///< range-for (0 = none).
};

bool isKeyword(const std::string &T) {
  static const std::set<std::string> KW = {
      "if",     "for",      "while",   "switch",  "return", "sizeof",
      "catch",  "new",      "delete",  "alignof", "static", "case",
      "throw",  "else",     "do",      "default", "using",  "typedef",
      "struct", "class",    "enum",    "public",  "private", "protected",
      "const",  "noexcept", "decltype"};
  return KW.count(T) != 0;
}

/// Collects names declared as std::unordered_map/set variables or
/// members anywhere in \p F (whitespace-insensitive, multi-line safe):
/// `unordered_map< ...balanced... > Name`.
void collectUnorderedNames(const SourceFile &F,
                          std::set<std::string> &Names) {
  const std::vector<Token> Toks = tokenize(F);
  for (size_t I = 0; I != Toks.size(); ++I) {
    const std::string &T = Toks[I].Text;
    if (T != "unordered_map" && T != "unordered_set")
      continue;
    size_t J = I + 1;
    if (J == Toks.size() || Toks[J].Text != "<")
      continue;
    int Depth = 0;
    for (; J != Toks.size(); ++J) {
      if (Toks[J].Text == "<")
        ++Depth;
      else if (Toks[J].Text == ">") {
        if (--Depth == 0) {
          ++J;
          break;
        }
      }
    }
    // `> Name ;` / `> Name =` / `> Name {` is a variable or member.
    if (J < Toks.size() && Toks[J].K == Token::Kind::Ident &&
        !isKeyword(Toks[J].Text) && J + 1 < Toks.size() &&
        (Toks[J + 1].Text == ";" || Toks[J + 1].Text == "=" ||
         Toks[J + 1].Text == "{"))
      Names.insert(Toks[J].Text);
  }
}

/// Parses \p F's token stream into function definitions with their
/// callees and unordered range-for lines. Heuristic by design: it
/// recognizes `qualified-name ( params ) [stuff] {` as a definition
/// and any `identifier (` inside a body as a call.
void extractFunctions(const std::vector<SourceFile> &Files, size_t FileIdx,
                      const std::set<std::string> &UnorderedNames,
                      std::vector<Func> &Out) {
  const SourceFile &F = Files[FileIdx];
  const std::vector<Token> Toks = tokenize(F);

  // Find candidate definition heads: scan for '(' whose preceding
  // token is an identifier (possibly qualified); find its matching
  // ')'; if the next tokens reach '{' before ';', it is a definition.
  size_t I = 0;
  while (I != Toks.size()) {
    if (Toks[I].Text != "(" || I == 0 ||
        Toks[I - 1].K != Token::Kind::Ident ||
        isKeyword(Toks[I - 1].Text)) {
      ++I;
      continue;
    }
    // Match the parens.
    size_t J = I;
    int Depth = 0;
    for (; J != Toks.size(); ++J) {
      if (Toks[J].Text == "(")
        ++Depth;
      else if (Toks[J].Text == ")" && --Depth == 0)
        break;
    }
    if (J == Toks.size()) {
      ++I;
      continue;
    }
    // Skip trailing specifiers (const, noexcept(...), override,
    // attributes, ctor-initializers) until '{', ';' or something that
    // rules a definition out.
    size_t K = J + 1;
    bool IsDef = false;
    int Guard = 0;
    while (K < Toks.size() && Guard++ < 4096) {
      const std::string &T = Toks[K].Text;
      if (T == "{") {
        IsDef = true;
        break;
      }
      if (T == ";" || T == "=" || T == ",")
        break;
      if (T == "(" || T == ":") {
        // noexcept(...) / ctor-initializer: skip balanced parens and
        // initializer commas until the body brace.
        if (T == "(") {
          int D = 0;
          for (; K < Toks.size(); ++K) {
            if (Toks[K].Text == "(")
              ++D;
            else if (Toks[K].Text == ")" && --D == 0)
              break;
          }
        }
        if (K < Toks.size())
          ++K;
        continue;
      }
      ++K;
    }
    if (!IsDef) {
      I = J + 1;
      continue;
    }
    // Name: identifier before '(', with Class:: qualifiers folded in.
    std::string Name = Toks[I - 1].Text;
    std::string Qual = Name;
    for (size_t Q = I - 1; Q >= 2 && Toks[Q - 1].Text == "::"; Q -= 2)
      Qual = Toks[Q - 2].Text + "::" + Qual;

    Func Fn;
    Fn.Name = Name;
    Fn.Qual = Qual;
    Fn.File = FileIdx;
    Fn.Line = Toks[I].Line;

    // Walk the body.
    size_t B = K; // At '{'.
    int BDepth = 0;
    for (; B != Toks.size(); ++B) {
      const std::string &T = Toks[B].Text;
      if (T == "{") {
        ++BDepth;
        continue;
      }
      if (T == "}") {
        if (--BDepth == 0)
          break;
        continue;
      }
      // Call site: identifier '(' — skip keywords and declarations of
      // the form `Type Name(...)` are rare inside bodies; accept the
      // noise, the call graph is used as an over-approximation.
      if (Toks[B].K == Token::Kind::Ident && B + 1 != Toks.size() &&
          Toks[B + 1].Text == "(" && !isKeyword(T))
        Fn.Callees.push_back(T);
      // Range-for: `for ( ... : RangeExpr )` with the ':' at paren
      // depth 1.
      if (T == "for" && B + 1 != Toks.size() && Toks[B + 1].Text == "(") {
        size_t P = B + 1;
        int PD = 0;
        size_t ColonAt = 0;
        for (; P != Toks.size(); ++P) {
          if (Toks[P].Text == "(")
            ++PD;
          else if (Toks[P].Text == ")") {
            if (--PD == 0)
              break;
          } else if (Toks[P].Text == ":" && PD == 1 && !ColonAt) {
            ColonAt = P;
          }
        }
        if (ColonAt && P != Toks.size()) {
          bool Unordered = false;
          for (size_t E = ColonAt + 1; E != P; ++E) {
            const std::string &ET = Toks[E].Text;
            if (ET == "unordered_map" || ET == "unordered_set" ||
                (Toks[E].K == Token::Kind::Ident &&
                 UnorderedNames.count(ET)))
              Unordered = true;
          }
          size_t Line = Toks[B].Line;
          if (Unordered && !Fn.UnorderedIterLine &&
              !isAllowed(F, Line, "unordered-serialize",
                         "unordered-serial"))
            Fn.UnorderedIterLine = Line;
        }
      }
    }
    Out.push_back(std::move(Fn));
    I = J + 1; // Nested definitions (lambdas) fold into the parent.
  }
}

/// The transitive unordered-into-serialization check. A "sink" is any
/// function whose name contains "serialize"/"encode" (the byte-stream
/// producers); from each sink, walk the call graph by callee name and
/// report any reachable function that iterates an unordered container.
void checkUnorderedSerialize(const std::vector<SourceFile> &Files) {
  // Unordered variable/member names are collected per module, so a
  // name like `Instrs` in leap does not taint an unrelated `Instrs`
  // in another subsystem.
  std::map<std::string, std::set<std::string>> ModuleUnordered;
  for (const SourceFile &F : Files)
    collectUnorderedNames(F, ModuleUnordered[F.Module]);

  std::vector<Func> Funcs;
  for (size_t I = 0; I != Files.size(); ++I)
    extractFunctions(Files, I, ModuleUnordered[Files[I].Module], Funcs);

  // Name -> function indices (cross-file resolution is by name; the
  // walk below restricts edges to the same module to keep the
  // over-approximation honest).
  std::map<std::string, std::vector<size_t>> ByName;
  for (size_t I = 0; I != Funcs.size(); ++I)
    ByName[Funcs[I].Name].push_back(I);

  auto isSink = [](const std::string &Name) {
    std::string L;
    for (char C : Name)
      L += static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
    return L.find("serialize") != std::string::npos ||
           L.find("encode") != std::string::npos;
  };

  for (size_t S = 0; S != Funcs.size(); ++S) {
    if (!isSink(Funcs[S].Name))
      continue;
    // BFS from the sink through same-module call edges.
    std::vector<size_t> Queue = {S};
    std::map<size_t, size_t> Parent; // callee -> caller, for the path.
    std::set<size_t> Seen = {S};
    for (size_t Q = 0; Q != Queue.size() && Q < 4096; ++Q) {
      const Func &Fn = Funcs[Queue[Q]];
      if (Fn.UnorderedIterLine) {
        // Build the call path sink -> ... -> iterator.
        std::string Path = Fn.Qual;
        for (size_t P = Queue[Q]; Parent.count(P);) {
          P = Parent.at(P);
          Path = Funcs[P].Qual + " -> " + Path;
        }
        const SourceFile &IterFile = Files[Fn.File];
        const SourceFile &SinkFile = Files[Funcs[S].File];
        report("unordered-serialize", SinkFile.Path, Funcs[S].Line,
               "serialization path iterates an unordered container at " +
                   IterFile.Path + ":" +
                   std::to_string(Fn.UnorderedIterLine) +
                   " (iteration order leaks into the byte stream; sort "
                   "first) [" +
                   Path + "]");
        break; // One finding per sink.
      }
      for (const std::string &Callee : Fn.Callees) {
        auto It = ByName.find(Callee);
        if (It == ByName.end())
          continue;
        for (size_t Next : It->second) {
          if (Files[Funcs[Next].File].Module != Files[Fn.File].Module)
            continue;
          if (Seen.insert(Next).second) {
            Parent[Next] = Queue[Q];
            Queue.push_back(Next);
          }
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Atomics discipline
//===----------------------------------------------------------------------===//

/// Files allowed to use non-relaxed memory orderings: each owns a
/// documented happens-before edge (see DESIGN.md section 16).
bool isSanctionedAtomicsFile(const std::string &Path) {
  return Path.rfind("src/support/", 0) == 0 ||
         Path == "src/telemetry/Registry.cpp" ||
         Path == "src/traceio/TraceReplayer.cpp" ||
         Path == "src/session/SessionManager.cpp";
}

void checkAtomics(const std::vector<SourceFile> &Files) {
  static const char *const Orders[] = {
      "memory_order_acquire", "memory_order_release",
      "memory_order_acq_rel", "memory_order_seq_cst",
      "memory_order_consume"};
  for (const SourceFile &F : Files) {
    if (!F.InSrc || isSanctionedAtomicsFile(F.Path))
      continue;
    for (size_t LN = 0; LN != F.Code.size(); ++LN) {
      for (const char *O : Orders) {
        if (F.Code[LN].find(O) == std::string::npos)
          continue;
        if (!isAllowed(F, LN + 1, "atomics"))
          report("atomics", F.Path, LN + 1,
                 std::string("non-relaxed ordering '") + O +
                     "' outside the sanctioned set (publish through a "
                     "support queue, or sanction the file in "
                     "tools/orp_analyze.cpp)");
        break;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Raw threading primitives (orp-lint R5, compiled)
//===----------------------------------------------------------------------===//

void checkRawThread(const std::vector<SourceFile> &Files) {
  static const char *const Prims[] = {
      "thread",        "jthread",     "mutex",
      "recursive_mutex", "shared_mutex", "condition_variable",
      "lock_guard",    "unique_lock", "scoped_lock",
      "shared_lock"};
  for (const SourceFile &F : Files) {
    if (F.Path.rfind("src/support/", 0) == 0)
      continue;
    const std::vector<Token> Toks = tokenize(F);
    for (size_t I = 0; I + 2 < Toks.size(); ++I) {
      if (Toks[I].Text != "std" || Toks[I + 1].Text != "::")
        continue;
      const std::string &T = Toks[I + 2].Text;
      bool Hit = false;
      for (const char *P : Prims)
        if (T == P)
          Hit = true;
      if (!Hit)
        continue;
      size_t Line = Toks[I + 2].Line;
      if (!isAllowed(F, Line, "raw-thread", "raw-thread"))
        report("raw-thread", F.Path, Line,
               "std::" + T +
                   " outside src/support (build on SpscQueue, "
                   "QueueWorker or ScopedThread)");
    }
  }
}

//===----------------------------------------------------------------------===//
// iostream ban (orp-lint R8's compiled twin)
//===----------------------------------------------------------------------===//

void checkIostream(const std::vector<SourceFile> &Files) {
  for (const SourceFile &F : Files) {
    if (!F.InSrc)
      continue;
    for (size_t LN = 0; LN != F.Code.size(); ++LN) {
      const std::string &L = F.Code[LN];
      size_t H = L.find('#');
      if (H == std::string::npos ||
          L.find("include", H) == std::string::npos ||
          L.find("<iostream>") == std::string::npos)
        continue;
      if (!isAllowed(F, LN + 1, "iostream", "iostream"))
        report("iostream", F.Path, LN + 1,
               "#include <iostream> is banned in src/ (use "
               "support/LogSink.h or support/TablePrinter.h)");
    }
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::vector<SourceFile> loadTree(const fs::path &Root, bool &IoError) {
  std::vector<SourceFile> Files;
  static const char *const TopDirs[] = {"src",      "tools", "tests",
                                        "examples", "bench", "fuzz"};
  for (const char *Top : TopDirs) {
    fs::path Dir = Root / Top;
    std::error_code Ec;
    if (!fs::is_directory(Dir, Ec))
      continue;
    for (fs::recursive_directory_iterator It(Dir, Ec), End;
         It != End && !Ec; It.increment(Ec)) {
      if (It->is_directory()) {
        // Seeded-violation fixtures are a separate analysis root.
        if (It->path().filename() == "analysis_fixtures")
          It.disable_recursion_pending();
        continue;
      }
      fs::path P = It->path();
      std::string Ext = P.extension().string();
      if (Ext != ".h" && Ext != ".cpp")
        continue;
      SourceFile F;
      F.Path = fs::relative(P, Root, Ec).generic_string();
      F.InSrc = F.Path.rfind("src/", 0) == 0;
      if (F.InSrc) {
        std::string Rest = F.Path.substr(4);
        F.Module = Rest.substr(0, Rest.find('/'));
      } else {
        F.Module = Top;
      }
      std::ifstream In(P);
      if (!In) {
        // orp-lint: allow(log-sink): standalone tool, links no orp libs.
        std::fprintf(stderr, "orp-analyze: cannot read %s\n",
                     F.Path.c_str());
        IoError = true;
        continue;
      }
      std::string Line;
      while (std::getline(In, Line))
        F.Raw.push_back(Line);
      F.Code = stripLines(F.Raw);
      Files.push_back(std::move(F));
    }
  }
  std::sort(Files.begin(), Files.end(),
            [](const SourceFile &A, const SourceFile &B) {
              return A.Path < B.Path;
            });
  return Files;
}

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    Out += C;
  }
  return Out;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: orp-analyze [--root=DIR] [--json] [--list-rules]\n"
      "\n"
      "Structural static analysis of the ORP tree: module layering,\n"
      "transitive unordered-container-into-serialization, atomics\n"
      "discipline, raw-thread confinement, iostream ban.\n");
  return 2;
}

} // namespace

int main(int argc, char **argv) {
  std::string RootArg = ".";
  bool Json = false;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--root=", 0) == 0) {
      RootArg = Arg.substr(7);
    } else if (Arg == "--json") {
      Json = true;
    } else if (Arg == "--list-rules") {
      std::printf("layering\nunordered-serialize\natomics\nraw-thread\n"
                  "iostream\n");
      return 0;
    } else {
      return usage();
    }
  }

  fs::path Root(RootArg);
  std::error_code Ec;
  if (!fs::is_directory(Root / "src", Ec)) {
    // Convenience: when launched from a build dir, walk up to the
    // first parent that looks like the repo root.
    fs::path Probe = fs::absolute(Root, Ec);
    while (!Probe.empty() && Probe.has_parent_path()) {
      if (fs::is_directory(Probe / "src", Ec)) {
        Root = Probe;
        break;
      }
      if (Probe == Probe.parent_path())
        break;
      Probe = Probe.parent_path();
    }
  }
  if (!fs::is_directory(Root / "src", Ec)) {
    // orp-lint: allow(log-sink): standalone tool, links no orp libs.
    std::fprintf(stderr, "orp-analyze: no src/ under --root=%s\n",
                 RootArg.c_str());
    return 2;
  }

  bool IoError = false;
  std::vector<SourceFile> Files = loadTree(Root, IoError);
  if (IoError)
    return 2;

  checkLayering(Files);
  checkUnorderedSerialize(Files);
  checkAtomics(Files);
  checkRawThread(Files);
  checkIostream(Files);

  std::sort(Findings.begin(), Findings.end(),
            [](const Finding &A, const Finding &B) {
              if (A.File != B.File)
                return A.File < B.File;
              if (A.Line != B.Line)
                return A.Line < B.Line;
              return A.Rule < B.Rule;
            });

  if (Json) {
    std::printf("[");
    for (size_t I = 0; I != Findings.size(); ++I) {
      const Finding &F = Findings[I];
      std::printf("%s\n  {\"rule\": \"%s\", \"file\": \"%s\", "
                  "\"line\": %zu, \"message\": \"%s\"}",
                  I ? "," : "", jsonEscape(F.Rule).c_str(),
                  jsonEscape(F.File).c_str(), F.Line,
                  jsonEscape(F.Message).c_str());
    }
    std::printf("%s]\n", Findings.empty() ? "" : "\n");
  } else {
    for (const Finding &F : Findings)
      std::printf("orp-analyze: %s: %s:%zu: %s\n", F.Rule.c_str(),
                  F.File.c_str(), F.Line, F.Message.c_str());
    if (Findings.empty())
      std::printf("orp-analyze: %zu files, all rules clean\n",
                  Files.size());
  }
  return Findings.empty() ? 0 : 1;
}
