#!/usr/bin/env bash
#===- tools/advise_smoke.sh - profile -> advise -> payoff smoke ----------===#
#
# The advisor acceptance scenario as a shell check (also a ctest entry
# and the CI advise-smoke job, plain and under ASan):
#
#   1. record a trace for each gate workload,
#   2. replay it, dumping the LEAP and OMSG artifacts,
#   3. `orp-advise advise` the artifacts into a .orpa advice report,
#   4. `orp-advise simulate --json` all three tier policies,
#   5. jq-gate: the advised fast-tier hit rate must be STRICTLY higher
#      than unadvised first-touch on every gate workload — the payoff
#      half of the profile -> decision -> payoff loop,
#   6. check that corrupt/truncated advice is rejected with a
#      structured error, never crashes the simulator.
#
# Usage: tools/advise_smoke.sh <build-dir>
#
#===----------------------------------------------------------------------===#

set -eu

BUILD="${1:?usage: advise_smoke.sh <build-dir>}"
ORP_TRACE="$BUILD/tools/orp-trace"
ORP_ADVISE="$BUILD/tools/orp-advise"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

fail() { echo "advise_smoke: FAIL: $*" >&2; exit 1; }

command -v jq >/dev/null 2>&1 || fail "jq is required for the rate gate"

# Gate workloads: the ones with the largest, most stable advised
# margins over first-touch at the default 25% fast-tier fraction.
for WL in list-traversal 181.mcf-a; do
  echo "== $WL =="
  "$ORP_TRACE" record "$WL" -o "$WORK/t.orpt" --seed=7
  "$ORP_TRACE" replay "$WORK/t.orpt" --profiler=leap \
    --dump-leap="$WORK/t.leap"
  "$ORP_TRACE" replay "$WORK/t.orpt" --profiler=whomp \
    --dump-omsg="$WORK/t.omsa"

  "$ORP_ADVISE" advise "$WORK/t.leap" "$WORK/t.omsa" -o "$WORK/t.orpa"
  "$ORP_ADVISE" simulate "$WORK/t.orpt" --advice="$WORK/t.orpa" \
    --json > "$WORK/sim.json"

  ADVISED=$(jq -r '.policies.advised.fast_hit_rate' "$WORK/sim.json")
  BASELINE=$(jq -r '.policies["first-touch"].fast_hit_rate' "$WORK/sim.json")
  [ -n "$ADVISED" ] && [ "$ADVISED" != "null" ] ||
    fail "no advised rate in simulate output for $WL"
  [ -n "$BASELINE" ] && [ "$BASELINE" != "null" ] ||
    fail "no first-touch rate in simulate output for $WL"
  jq -e '.policies.advised.fast_hit_rate >
         .policies["first-touch"].fast_hit_rate' \
    "$WORK/sim.json" > /dev/null ||
    fail "advised rate $ADVISED not above first-touch $BASELINE on $WL"
  echo "$WL: advised $ADVISED > first-touch $BASELINE"
done

echo "== hardened advice reader =="
# Truncated and corrupted advice must be rejected (exit nonzero),
# never crash or silently degrade the simulation.
head -c 13 "$WORK/t.orpa" > "$WORK/trunc.orpa"
if "$ORP_ADVISE" simulate "$WORK/t.orpt" --advice="$WORK/trunc.orpa" \
     --json > /dev/null 2>&1; then
  fail "simulate accepted a truncated advice report"
fi
cp "$WORK/t.orpa" "$WORK/flip.orpa"
printf '\xff' | dd of="$WORK/flip.orpa" bs=1 seek=12 conv=notrunc 2>/dev/null
if "$ORP_ADVISE" simulate "$WORK/t.orpt" --advice="$WORK/flip.orpa" \
     --json > /dev/null 2>&1; then
  fail "simulate accepted a corrupted advice report"
fi

echo "advise_smoke: PASS"
