//===- tools/orp_traced.cpp - The ORP profiling daemon --------------------===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
//
// orp-traced: accepts trace streams over a Unix-domain socket and
// multiplexes them over a session engine (src/session). Clients open
// sessions, stream still-encoded .orpt event blocks, scrape live
// telemetry snapshots, and collect the finalized profiles on close —
// see `orp-trace submit` for the canonical client.
//
//===----------------------------------------------------------------------===//

#include "session/Daemon.h"
#include "support/LogSink.h"
#include "support/ParseNumber.h"
#include "support/Version.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

using namespace orp;
using support::LogLevel;
using support::logMessage;

namespace {

volatile std::sig_atomic_t GStopRequested = 0;

void onSignal(int) { GStopRequested = 1; }

int usage() {
  logMessage(
      LogLevel::Error,
      "usage: orp-traced --socket=PATH [options]\n"
      "\n"
      "Serves the orp-trace framed protocol on a Unix-domain socket,\n"
      "profiling many concurrent trace streams in one process.\n"
      "\n"
      "  --socket=PATH       socket path to listen on (required)\n"
      "  --outdir=DIR        write <session>.omsg/.leap here on close\n"
      "  --threads=N         scheduler shard threads (default 1)\n"
      "  --queue-capacity=N  per-session ingest queue slots (default 8)\n"
      "  --budget-bytes=N    evict idle LRU sessions over this estimate\n"
      "                      (default 0 = unlimited)\n"
      "  --version           print version and build flags");
  return 2;
}

const char *flagValue(const std::string &Arg, const char *Prefix) {
  size_t Len = std::strlen(Prefix);
  return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
}

bool numericFlag(const char *Flag, const char *Text, uint64_t &Out) {
  if (support::parseUint64(Text, Out))
    return true;
  logMessage(LogLevel::Error,
             "orp-traced: %s expects an unsigned integer, got '%s'", Flag,
             Text);
  return false;
}

} // namespace

int main(int argc, char **argv) {
  session::DaemonConfig Config;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    const char *V;
    uint64_t N;
    if (Arg == "--version") {
      support::printVersion("orp-traced");
      return 0;
    } else if ((V = flagValue(Arg, "--socket="))) {
      Config.SocketPath = V;
    } else if ((V = flagValue(Arg, "--outdir="))) {
      Config.OutDir = V;
    } else if ((V = flagValue(Arg, "--threads="))) {
      if (!numericFlag("--threads", V, N))
        return usage();
      if (!N || N > 256) {
        logMessage(LogLevel::Error,
                   "orp-traced: --threads must be in [1, 256]");
        return usage();
      }
      Config.Manager.Threads = static_cast<unsigned>(N);
    } else if ((V = flagValue(Arg, "--queue-capacity="))) {
      if (!numericFlag("--queue-capacity", V, N))
        return usage();
      if (!N) {
        logMessage(LogLevel::Error,
                   "orp-traced: --queue-capacity must be >= 1");
        return usage();
      }
      Config.Manager.IngestQueueCapacity = static_cast<size_t>(N);
    } else if ((V = flagValue(Arg, "--budget-bytes="))) {
      if (!numericFlag("--budget-bytes", V, N))
        return usage();
      Config.Manager.MemoryBudgetBytes = static_cast<size_t>(N);
    } else {
      logMessage(LogLevel::Error, "orp-traced: unknown argument '%s'",
                 Arg.c_str());
      return usage();
    }
  }
  if (Config.SocketPath.empty()) {
    logMessage(LogLevel::Error, "orp-traced: --socket is required");
    return usage();
  }

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  // main IS the daemon's control thread: claim the role capability the
  // session engine's entry points require (support/ThreadSafety.h).
  support::ScopedRole ControlRole(session::SessionControlRole);
  session::Daemon Daemon(Config);
  std::string Err;
  if (!Daemon.start(Err)) {
    logMessage(LogLevel::Error, "orp-traced: %s", Err.c_str());
    return 1;
  }
  std::printf("orp-traced: listening on %s (%u shard%s)\n",
              Config.SocketPath.c_str(), Config.Manager.Threads,
              Config.Manager.Threads == 1 ? "" : "s");
  std::fflush(stdout);
  Daemon.run([] { return GStopRequested != 0; });
  std::printf("orp-traced: shut down\n");
  return 0;
}
