//===- tools/orp_trace.cpp - Record/replay trace CLI ---------------------===//
//
// Command-line front end over src/traceio: capture a workload's probe
// event stream into a .orpt file, inspect and verify trace files, and
// replay them through any of the profilers. Record once, analyze
// anywhere — replayed profiles are bit-identical to live runs.
//
//   orp-trace record <workload> [-o FILE] [--alloc=POLICY] [--seed=N]
//                    [--env=N] [--scale=N] [--block-bytes=N]
//   orp-trace replay <file> [--profiler=whomp|leap|rasg] [--lmads=N]
//                    [--dump-omsg=FILE] [--dump-leap=FILE]
//                    [--end-block=N] [--resume-from=CK]
//                    [--checkpoint-every=N] [--checkpoint-out=PATH]
//                    [--metrics=PATH|-]
//                    [--metrics-interval=N] [--metrics-format=FMT]
//   orp-trace merge <in>... -o OUT [--sequential]
//   orp-trace diff <a> <b>
//   orp-trace stats <file> [--threads=N] [--lmads=N] [--metrics=PATH|-]
//                    [--metrics-format=FMT]
//   orp-trace submit <file> --socket=PATH [--name=NAME] [--lmads=N]
//                    [--print-snapshot=FMT] [--dump-omsg=FILE]
//                    [--dump-leap=FILE]
//   orp-trace info <file> [--blocks]
//   orp-trace verify <file>
//   orp-trace version
//
// replay/stats drive the same single-session engine (src/session) the
// orp-traced daemon runs many of; submit streams a trace into a running
// daemon instead. Both paths produce byte-identical profiles.
//
//===----------------------------------------------------------------------===//

#include "advisor/HotColdClassifier.h"
#include "advisor/Telemetry.h"
#include "baseline/RasgProfiler.h"
#include "core/ProfilingSession.h"
#include "leap/LeapProfileData.h"
#include "session/Client.h"
#include "support/LogSink.h"
#include "support/ParseNumber.h"
#include "support/TablePrinter.h"
#include "support/Version.h"
#include "telemetry/Registry.h"
#include "trace/MetricsTicker.h"
#include "traceio/TraceReplayer.h"
#include "traceio/TraceWriter.h"
#include "whomp/OmsgArchive.h"
#include "whomp/OmsgStats.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

using namespace orp;
using support::LogLevel;
using support::logMessage;

namespace {

int usage(const char *Argv0) {
  logMessage(
      LogLevel::Error,
      "usage: %s <command> ...\n"
      "  record <workload> [-o FILE] [--alloc=first-fit|best-fit|"
      "next-fit|segregated]\n"
      "         [--seed=N] [--env=N] [--scale=N]     capture a run "
      "(default FILE: <workload>.orpt)\n"
      "         [--block-bytes=N]                    target event-block "
      "payload size\n"
      "         [--format-version=1|2]               .orpt encoding "
      "(default 2, columnar)\n"
      "  replay <file> [--profiler=whomp|leap|rasg] [--lmads=N] "
      "[--threads=N]\n"
      "         [--dump-omsg=FILE] [--dump-leap=FILE]  re-drive profilers "
      "from a trace\n"
      "                                              (--threads output is "
      "byte-identical)\n"
      "         [--end-block=N]                      stop before block N "
      "(a segment replay)\n"
      "         [--resume-from=CK]                   restore an .orck "
      "checkpoint, replay the rest\n"
      "         [--checkpoint-every=N] [--checkpoint-out=PATH]  write "
      ".orck checkpoints\n"
      "                                              (every N blocks at "
      "PATH.<block>.orck, or\n"
      "                                              once at the range "
      "end at PATH)\n"
      "         [--metrics=PATH|-] [--metrics-interval=N] "
      "[--metrics-format=json|json-lines|prometheus]\n"
      "  merge <in>... -o OUT [--sequential]         fold profile "
      "artifacts: consecutive trace\n"
      "                                              segments with "
      "--sequential (exact), else\n"
      "                                              independent runs "
      "(LEAP union / OMST stats)\n"
      "  diff <a> <b>                                compare two "
      "artifacts (exit 0 identical,\n"
      "                                              1 different, 2 "
      "unreadable)\n"
      "  stats <file> [--threads=N] [--lmads=N]      replay through "
      "WHOMP+LEAP and print\n"
      "         [--metrics=PATH|-] [--metrics-format=FMT]   the telemetry "
      "snapshot\n"
      "  submit <file> --socket=PATH                 stream a trace into a "
      "running orp-traced\n"
      "         [--name=NAME] [--lmads=N] [--print-snapshot=json|"
      "json-lines|prometheus]\n"
      "         [--dump-omsg=FILE] [--dump-leap=FILE]\n"
      "  info <file> [--blocks]                      print header, stream "
      "and per-block statistics\n"
      "  verify <file>                               validate structure "
      "and checksums\n"
      "  version                                     print version and "
      "build flags",
      Argv0);
  return 1;
}

/// Writes opaque, already-serialized artifact bytes to \p Path.
bool writeArtifactFile(const std::string &Path,
                       const std::vector<uint8_t> &Bytes) {
  // orp-lint: allow(endian-io): opaque byte image; all field encoding
  // happened inside serialize().
  std::FILE *Out = std::fopen(Path.c_str(), "wb");
  if (!Out ||
      std::fwrite(Bytes.data(), 1, Bytes.size(), Out) != Bytes.size()) {
    logMessage(LogLevel::Error, "orp-trace: cannot write '%s'",
               Path.c_str());
    if (Out)
      std::fclose(Out);
    return false;
  }
  std::fclose(Out);
  return true;
}

/// Reads a whole artifact file into \p Bytes.
bool readArtifactFile(const std::string &Path, std::vector<uint8_t> &Bytes) {
  std::FILE *In = std::fopen(Path.c_str(), "rb");
  if (!In) {
    logMessage(LogLevel::Error, "orp-trace: cannot read '%s'", Path.c_str());
    return false;
  }
  uint8_t Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), In)) != 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  bool Ok = !std::ferror(In);
  std::fclose(In);
  if (!Ok)
    logMessage(LogLevel::Error, "orp-trace: error reading '%s'",
               Path.c_str());
  return Ok;
}

/// The artifact families the merge/diff verbs understand, sniffed from
/// the four-byte magic.
enum class ArtifactKind { Leap, Omsa, Omst, Unknown };

ArtifactKind sniffArtifact(const std::vector<uint8_t> &Bytes) {
  if (Bytes.size() < 4)
    return ArtifactKind::Unknown;
  if (std::equal(leap::LeapProfileData::kMagic,
                 leap::LeapProfileData::kMagic + 4, Bytes.begin()))
    return ArtifactKind::Leap;
  if (std::equal(whomp::OmsgArchive::kMagic, whomp::OmsgArchive::kMagic + 4,
                 Bytes.begin()))
    return ArtifactKind::Omsa;
  if (std::equal(whomp::OmsgStats::kMagic, whomp::OmsgStats::kMagic + 4,
                 Bytes.begin()))
    return ArtifactKind::Omst;
  return ArtifactKind::Unknown;
}

const char *artifactKindName(ArtifactKind K) {
  switch (K) {
  case ArtifactKind::Leap:
    return "LEAP profile";
  case ArtifactKind::Omsa:
    return "OMSG archive";
  case ArtifactKind::Omst:
    return "OMSG statistics";
  case ArtifactKind::Unknown:
    break;
  }
  return "unknown";
}

const char *flagValue(const std::string &Arg, const char *Prefix) {
  size_t Len = std::strlen(Prefix);
  return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
}

/// Parses the numeric value of \p Flag strictly (whole string, no
/// overflow; see support::parseUint64), reporting a usage error via the
/// log sink when it is malformed.
bool numericFlag(const char *Cmd, const char *Flag, const char *Text,
                 uint64_t &Out) {
  if (support::parseUint64(Text, Out))
    return true;
  logMessage(LogLevel::Error,
             "orp-trace %s: %s expects an unsigned integer, got '%s'", Cmd,
             Flag, Text);
  return false;
}

bool numericFlag(const char *Cmd, const char *Flag, const char *Text,
                 unsigned &Out) {
  if (support::parseUnsigned(Text, Out))
    return true;
  logMessage(LogLevel::Error,
             "orp-trace %s: %s expects an unsigned integer, got '%s'", Cmd,
             Flag, Text);
  return false;
}

bool parseAllocPolicy(const char *Name, memsim::AllocPolicy &Policy) {
  if (!std::strcmp(Name, "first-fit"))
    Policy = memsim::AllocPolicy::FirstFit;
  else if (!std::strcmp(Name, "best-fit"))
    Policy = memsim::AllocPolicy::BestFit;
  else if (!std::strcmp(Name, "next-fit"))
    Policy = memsim::AllocPolicy::NextFit;
  else if (!std::strcmp(Name, "segregated"))
    Policy = memsim::AllocPolicy::Segregated;
  else
    return false;
  return true;
}

/// Shared --metrics* option state of the replay-driving verbs.
struct MetricsOptions {
  std::string Path;      ///< Output target; empty = no final snapshot.
  uint64_t Interval = 0; ///< Events between periodic snapshots; 0 = off.
  telemetry::SnapshotFormat Format = telemetry::SnapshotFormat::Json;
  bool FormatSet = false;

  /// Handles one command-line argument; returns true when consumed,
  /// false with \p Failed set when it was a malformed metrics flag.
  bool consume(const char *Cmd, const std::string &Arg, bool &Failed) {
    Failed = false;
    if (const char *V = flagValue(Arg, "--metrics=")) {
      Path = V;
      return true;
    }
    if (const char *V = flagValue(Arg, "--metrics-interval=")) {
      if (!numericFlag(Cmd, "--metrics-interval", V, Interval))
        Failed = true;
      return true;
    }
    if (const char *V = flagValue(Arg, "--metrics-format=")) {
      FormatSet = true;
      if (!std::strcmp(V, "json"))
        Format = telemetry::SnapshotFormat::Json;
      else if (!std::strcmp(V, "json-lines"))
        Format = telemetry::SnapshotFormat::JsonCompact;
      else if (!std::strcmp(V, "prometheus"))
        Format = telemetry::SnapshotFormat::Prometheus;
      else {
        logMessage(LogLevel::Error,
                   "orp-trace %s: --metrics-format expects "
                   "json|json-lines|prometheus, got '%s'",
                   Cmd, V);
        Failed = true;
      }
      return true;
    }
    return false;
  }

  /// Periodic snapshots force the one-object-per-line form so the
  /// output file is a valid JSONL stream.
  telemetry::SnapshotFormat periodicFormat() const {
    return Format == telemetry::SnapshotFormat::Prometheus
               ? telemetry::SnapshotFormat::Prometheus
               : telemetry::SnapshotFormat::JsonCompact;
  }
};

/// Builds the MetricsTicker for \p Opts (nullptr when no periodic
/// emission was requested) and truncates the target file so the
/// periodic appends start clean.
std::unique_ptr<trace::MetricsTicker>
makeTicker(const MetricsOptions &Opts, bool &TickerOk) {
  TickerOk = true;
  if (!Opts.Interval || Opts.Path.empty())
    return nullptr;
  if (Opts.Path != "-") {
    std::FILE *Out = std::fopen(Opts.Path.c_str(), "wb");
    if (!Out) {
      logMessage(LogLevel::Error, "orp-trace: cannot open '%s' for writing",
                 Opts.Path.c_str());
      TickerOk = false;
      return nullptr;
    }
    std::fclose(Out);
  }
  return std::make_unique<trace::MetricsTicker>(
      Opts.Interval, [&Opts](const telemetry::MetricsSnapshot &S) {
        std::string Err;
        if (!telemetry::writeSnapshot(S, Opts.Path, Opts.periodicFormat(),
                                      /*Append=*/true, Err))
          logMessage(LogLevel::Warn, "orp-trace: %s", Err.c_str());
      });
}

/// Writes the final snapshot per \p Opts; returns false on I/O failure.
bool emitFinalSnapshot(const MetricsOptions &Opts) {
  if (Opts.Path.empty())
    return true;
  telemetry::MetricsSnapshot S = telemetry::Registry::global().snapshot();
  telemetry::SnapshotFormat F =
      Opts.Interval ? Opts.periodicFormat() : Opts.Format;
  std::string Err;
  if (!telemetry::writeSnapshot(S, Opts.Path, F, /*Append=*/Opts.Interval != 0,
                                Err)) {
    logMessage(LogLevel::Error, "orp-trace: %s", Err.c_str());
    return false;
  }
  return true;
}

int cmdRecord(int Argc, char **Argv) {
  std::string WorkloadName, OutPath;
  memsim::AllocPolicy Policy = memsim::AllocPolicy::FirstFit;
  uint64_t Seed = 42, EnvSeed = 0, Scale = 1;
  uint64_t BlockBytes = traceio::TraceWriter::kDefaultBlockBytes;
  unsigned FormatVersion = traceio::kFormatVersion;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-o" && I + 1 != Argc) {
      OutPath = Argv[++I];
    } else if (const char *V = flagValue(Arg, "--out=")) {
      OutPath = V;
    } else if (const char *V = flagValue(Arg, "--format-version=")) {
      if (!numericFlag("record", "--format-version", V, FormatVersion))
        return 1;
      if (FormatVersion < traceio::kFormatVersionV1 ||
          FormatVersion > traceio::kFormatVersionV2) {
        logMessage(LogLevel::Error,
                   "orp-trace record: --format-version expects 1 or 2, "
                   "got '%s'",
                   V);
        return 1;
      }
    } else if (const char *V = flagValue(Arg, "--alloc=")) {
      if (!parseAllocPolicy(V, Policy)) {
        logMessage(LogLevel::Error, "orp-trace: unknown alloc policy '%s'",
                   V);
        return 1;
      }
    } else if (const char *V = flagValue(Arg, "--seed=")) {
      if (!numericFlag("record", "--seed", V, Seed))
        return 1;
    } else if (const char *V = flagValue(Arg, "--env=")) {
      if (!numericFlag("record", "--env", V, EnvSeed))
        return 1;
    } else if (const char *V = flagValue(Arg, "--scale=")) {
      if (!numericFlag("record", "--scale", V, Scale))
        return 1;
    } else if (const char *V = flagValue(Arg, "--block-bytes=")) {
      if (!numericFlag("record", "--block-bytes", V, BlockBytes))
        return 1;
      if (BlockBytes == 0) {
        logMessage(LogLevel::Error,
                   "orp-trace record: --block-bytes must be at least 1");
        return 1;
      }
    } else if (Arg[0] != '-' && WorkloadName.empty()) {
      WorkloadName = Arg;
    } else {
      logMessage(LogLevel::Error, "orp-trace record: bad argument '%s'",
                 Arg.c_str());
      return 1;
    }
  }
  if (WorkloadName.empty()) {
    logMessage(LogLevel::Error, "orp-trace record: missing workload name");
    return 1;
  }
  auto Workload = workloads::createWorkloadByName(WorkloadName);
  if (!Workload) {
    logMessage(LogLevel::Error,
               "orp-trace: unknown workload '%s'; available: 164.gzip-a "
               "175.vpr-a 181.mcf-a 186.crafty-a 197.parser-a "
               "256.bzip2-a 300.twolf-a list-traversal",
               WorkloadName.c_str());
    return 1;
  }
  if (OutPath.empty())
    OutPath = WorkloadName + ".orpt";

  core::ProfilingSession Session(Policy, EnvSeed);
  traceio::TraceWriter Writer(OutPath, Session.registry(), Policy, EnvSeed,
                              static_cast<size_t>(BlockBytes),
                              static_cast<uint8_t>(FormatVersion));
  if (!Writer.ok()) {
    logMessage(LogLevel::Error, "orp-trace: %s", Writer.error().c_str());
    return 1;
  }
  Session.addRawSink(&Writer);

  workloads::WorkloadConfig Config;
  Config.Seed = Seed;
  Config.Scale = Scale;
  uint64_t Checksum =
      Workload->run(Session.memory(), Session.registry(), Config);
  Session.finish();
  if (!Writer.close()) {
    logMessage(LogLevel::Error, "orp-trace: %s", Writer.error().c_str());
    return 1;
  }
  std::printf("%s: recorded %llu events to %s (format v%u, %llu bytes, "
              "%.2f bytes/event), checksum %llu\n",
              Workload->name(),
              static_cast<unsigned long long>(Writer.eventsWritten()),
              OutPath.c_str(), FormatVersion,
              static_cast<unsigned long long>(Writer.bytesWritten()),
              Writer.eventsWritten()
                  ? static_cast<double>(Writer.bytesWritten()) /
                        static_cast<double>(Writer.eventsWritten())
                  : 0.0,
              static_cast<unsigned long long>(Checksum));
  return 0;
}

int cmdReplay(int Argc, char **Argv) {
  std::string Path, Profiler = "whomp", DumpOmsg, DumpLeap;
  std::string ResumeFrom, CheckpointOut;
  uint64_t EndBlock = ~static_cast<uint64_t>(0), CheckpointEvery = 0;
  unsigned MaxLmads = 30, Threads = 1;
  MetricsOptions Metrics;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    bool MetricsFailed = false;
    if (const char *V = flagValue(Arg, "--profiler=")) {
      Profiler = V;
    } else if (const char *V = flagValue(Arg, "--lmads=")) {
      if (!numericFlag("replay", "--lmads", V, MaxLmads))
        return 1;
    } else if (const char *V = flagValue(Arg, "--threads=")) {
      if (!numericFlag("replay", "--threads", V, Threads))
        return 1;
      if (Threads == 0) {
        logMessage(LogLevel::Error,
                   "orp-trace replay: --threads must be at least 1");
        return 1;
      }
    } else if (const char *V = flagValue(Arg, "--dump-omsg=")) {
      DumpOmsg = V;
    } else if (const char *V = flagValue(Arg, "--dump-leap=")) {
      DumpLeap = V;
    } else if (const char *V = flagValue(Arg, "--end-block=")) {
      if (!numericFlag("replay", "--end-block", V, EndBlock))
        return 1;
    } else if (const char *V = flagValue(Arg, "--resume-from=")) {
      ResumeFrom = V;
    } else if (const char *V = flagValue(Arg, "--checkpoint-every=")) {
      if (!numericFlag("replay", "--checkpoint-every", V, CheckpointEvery))
        return 1;
      if (CheckpointEvery == 0) {
        logMessage(LogLevel::Error,
                   "orp-trace replay: --checkpoint-every must be at least 1");
        return 1;
      }
    } else if (const char *V = flagValue(Arg, "--checkpoint-out=")) {
      CheckpointOut = V;
    } else if (Metrics.consume("replay", Arg, MetricsFailed)) {
      if (MetricsFailed)
        return 1;
    } else if (Arg[0] != '-' && Path.empty()) {
      Path = Arg;
    } else {
      logMessage(LogLevel::Error, "orp-trace replay: bad argument '%s'",
                 Arg.c_str());
      return 1;
    }
  }
  if (Path.empty() ||
      (Profiler != "whomp" && Profiler != "leap" && Profiler != "rasg")) {
    logMessage(LogLevel::Error, "orp-trace replay: need <file> and "
                                "--profiler=whomp|leap|rasg");
    return 1;
  }
  if (CheckpointEvery && CheckpointOut.empty()) {
    logMessage(LogLevel::Error, "orp-trace replay: --checkpoint-every "
                                "needs --checkpoint-out=PATH");
    return 1;
  }

  traceio::TraceReader Reader;
  if (!Reader.open(Path)) {
    logMessage(LogLevel::Error, "orp-trace: %s", Reader.error().c_str());
    return 1;
  }

  // One ProfileSession — the same engine an orp-traced session runs, so
  // this path and the daemon path produce byte-identical artifacts.
  session::SessionConfig Config;
  Config.Policy =
      static_cast<memsim::AllocPolicy>(Reader.info().AllocPolicy);
  Config.Seed = Reader.info().Seed;
  Config.EnableWhomp = Profiler == "whomp";
  Config.EnableLeap = Profiler == "leap";
  Config.MaxLmads = MaxLmads;
  Config.ProfilerThreads = Threads;
  session::ProfileSession Session(Path, Config);

  baseline::RasgProfiler Rasg;
  if (Profiler == "rasg")
    Session.core().addRawSink(&Rasg);

  bool TickerOk = true;
  std::unique_ptr<trace::MetricsTicker> Ticker =
      makeTicker(Metrics, TickerOk);
  if (!TickerOk)
    return 1;
  if (Ticker)
    Session.core().addRawSink(Ticker.get());

  uint64_t FirstBlock = 0;
  if (!ResumeFrom.empty()) {
    std::vector<uint8_t> CkBytes;
    std::string Err;
    if (!readArtifactFile(ResumeFrom, CkBytes))
      return 1;
    if (!Session.restoreCheckpoint(CkBytes, Reader, FirstBlock, Err)) {
      logMessage(LogLevel::Error, "orp-trace replay: %s: %s",
                 ResumeFrom.c_str(), Err.c_str());
      return 1;
    }
    std::printf("resumed from %s at block %llu (%llu events already "
                "translated)\n",
                ResumeFrom.c_str(),
                static_cast<unsigned long long>(FirstBlock),
                static_cast<unsigned long long>(Session.eventsInjected()));
  }

  // Periodic checkpoints are written from the replayer's block callback,
  // which runs on this thread at every block boundary.
  bool CheckpointFailed = false;
  std::function<void(uint64_t)> BlockDone;
  if (CheckpointEvery)
    BlockDone = [&](uint64_t Next) {
      if ((Next - FirstBlock) % CheckpointEvery != 0)
        return;
      std::string CkPath =
          CheckpointOut + "." + std::to_string(Next) + ".orck";
      if (!writeArtifactFile(CkPath, Session.checkpoint(Reader, Next)))
        CheckpointFailed = true;
    };

  if (!Session.replayFrom(Reader, Threads, FirstBlock, EndBlock,
                          BlockDone)) {
    logMessage(LogLevel::Error, "orp-trace: %s", Session.error().c_str());
    return 1;
  }
  if (CheckpointFailed)
    return 1;
  if (!CheckpointEvery && !CheckpointOut.empty()) {
    // One checkpoint at the end of the replayed range: the resume point
    // for a follow-up segment replay.
    uint64_t Next = std::min<uint64_t>(EndBlock, Reader.numEventBlocks());
    if (!writeArtifactFile(CheckpointOut, Session.checkpoint(Reader, Next)))
      return 1;
    std::printf("wrote checkpoint: %s (next block %llu)\n",
                CheckpointOut.c_str(),
                static_cast<unsigned long long>(Next));
  }
  session::SessionArtifacts Artifacts = Session.finalize();
  std::printf("%s: replayed %llu events (%llu instr sites, %llu alloc "
              "sites, alloc policy %s, env seed %llu)\n",
              Path.c_str(),
              static_cast<unsigned long long>(Session.eventsInjected()),
              static_cast<unsigned long long>(Reader.info().NumInstructions),
              static_cast<unsigned long long>(Reader.info().NumAllocSites),
              memsim::allocPolicyName(static_cast<memsim::AllocPolicy>(
                  Reader.info().AllocPolicy)),
              static_cast<unsigned long long>(Reader.info().Seed));

  if (Profiler == "whomp") {
    whomp::WhompProfiler &Whomp = *Session.whomp();
    whomp::OmsgSizes S = Whomp.sizes();
    std::printf("WHOMP OMSG: %zu tuples, %zu bytes (instr %zu, group %zu, "
                "object %zu, offset %zu)\n",
                static_cast<size_t>(Whomp.tuplesSeen()), S.total(), S.Instr,
                S.Group, S.Object, S.Offset);
    if (!DumpOmsg.empty()) {
      if (!writeArtifactFile(DumpOmsg, Artifacts.Omsg))
        return 1;
      std::printf("wrote OMSG archive: %s (%zu bytes)\n", DumpOmsg.c_str(),
                  Artifacts.Omsg.size());
    }
  } else if (Profiler == "leap") {
    leap::LeapProfiler &Leap = *Session.leap();
    auto Data = leap::LeapProfileData::fromProfiler(Leap);
    std::printf("LEAP: %zu substreams, %zu profile bytes, %.1f%% accesses "
                "/ %.1f%% instructions captured\n",
                Data.substreams().size(), Artifacts.Leap.size(),
                Leap.accessesCapturedPercent(),
                Leap.instructionsCapturedPercent());
    if (!DumpLeap.empty()) {
      if (!writeArtifactFile(DumpLeap, Artifacts.Leap))
        return 1;
      std::printf("wrote LEAP profile: %s (%zu bytes)\n", DumpLeap.c_str(),
                  Artifacts.Leap.size());
    }
  } else {
    std::printf("RASG: %llu accesses, %zu bytes\n",
                static_cast<unsigned long long>(Rasg.accessesSeen()),
                Rasg.serializedSizeBytes());
  }
  return emitFinalSnapshot(Metrics) ? 0 : 1;
}

/// Renders \p S as aligned tables on stdout (the `stats` verb).
void printSnapshotTables(const telemetry::MetricsSnapshot &S) {
  if (!S.Counters.empty()) {
    TablePrinter T({"counter", "value"});
    for (const auto &C : S.Counters)
      T.addRow({C.Name, TablePrinter::fmt(C.Value)});
    std::printf("\n");
    T.print();
  }
  if (!S.Gauges.empty()) {
    TablePrinter T({"gauge", "value"});
    for (const auto &G : S.Gauges) {
      char Buf[24];
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(G.Value));
      T.addRow({G.Name, Buf});
    }
    std::printf("\n");
    T.print();
  }
  if (!S.Timers.empty()) {
    TablePrinter T({"timer", "count", "total ms"});
    for (const auto &Tm : S.Timers)
      T.addRow({Tm.Name, TablePrinter::fmt(Tm.Count),
                TablePrinter::fmt(
                    static_cast<double>(Tm.TotalNanos) / 1e6, 2)});
    std::printf("\n");
    T.print();
  }
  if (!S.Histograms.empty()) {
    TablePrinter T({"histogram", "count", "sum", "mean"});
    for (const auto &H : S.Histograms)
      T.addRow({H.Name, TablePrinter::fmt(H.Count), TablePrinter::fmt(H.Sum),
                TablePrinter::fmt(H.Count ? static_cast<double>(H.Sum) /
                                                static_cast<double>(H.Count)
                                          : 0.0,
                                  1)});
    std::printf("\n");
    T.print();
  }
}

int cmdStats(int Argc, char **Argv) {
  std::string Path;
  unsigned MaxLmads = 30, Threads = 1;
  MetricsOptions Metrics;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    bool MetricsFailed = false;
    if (const char *V = flagValue(Arg, "--lmads=")) {
      if (!numericFlag("stats", "--lmads", V, MaxLmads))
        return 1;
    } else if (const char *V = flagValue(Arg, "--threads=")) {
      if (!numericFlag("stats", "--threads", V, Threads))
        return 1;
      if (Threads == 0) {
        logMessage(LogLevel::Error,
                   "orp-trace stats: --threads must be at least 1");
        return 1;
      }
    } else if (Metrics.consume("stats", Arg, MetricsFailed)) {
      if (MetricsFailed)
        return 1;
    } else if (Arg[0] != '-' && Path.empty()) {
      Path = Arg;
    } else {
      logMessage(LogLevel::Error, "orp-trace stats: bad argument '%s'",
                 Arg.c_str());
      return 1;
    }
  }
  if (Path.empty()) {
    logMessage(LogLevel::Error, "orp-trace stats: missing trace file");
    return 1;
  }

  traceio::TraceReader Reader;
  if (!Reader.open(Path)) {
    logMessage(LogLevel::Error, "orp-trace: %s", Reader.error().c_str());
    return 1;
  }

  // Both profilers at once: the snapshot then covers the whole pipeline
  // — OMC, CDC, WHOMP grammars and LEAP substreams in one table.
  session::SessionConfig Config;
  Config.Policy =
      static_cast<memsim::AllocPolicy>(Reader.info().AllocPolicy);
  Config.Seed = Reader.info().Seed;
  Config.MaxLmads = MaxLmads;
  Config.ProfilerThreads = Threads;
  session::ProfileSession Session(Path, Config);

  if (!Session.replayFrom(Reader, Threads)) {
    logMessage(LogLevel::Error, "orp-trace: %s", Session.error().c_str());
    return 1;
  }
  Session.finalize();

  // Run the hot/cold classifier over the finished profiles and publish
  // the advisor.* gauges so the snapshot shows advice counts alongside
  // the profiler metrics. Read-only over the profilers: the artifacts
  // stay byte-identical with or without the advisor attached.
  advisor::AdvisorReport AdviceReport;
  advisor::AdvisorTelemetry AdviceBridge;
  if (Session.leap() && Session.whomp()) {
    advisor::HotColdClassifier Classifier;
    AdviceReport = Classifier.classify(
        leap::LeapProfileData::fromProfiler(*Session.leap()),
        whomp::OmsgArchive::build(*Session.whomp(),
                                  &Session.core().omc()));
    AdviceBridge.attachReport(&AdviceReport);
  }

  std::printf("%s: %llu events, %u thread(s)\n", Path.c_str(),
              static_cast<unsigned long long>(Session.eventsInjected()),
              Threads);
  telemetry::MetricsSnapshot S = telemetry::Registry::global().snapshot();
  printSnapshotTables(S);
  if (!Metrics.Path.empty()) {
    std::string Err;
    if (!telemetry::writeSnapshot(S, Metrics.Path, Metrics.Format,
                                  /*Append=*/false, Err)) {
      logMessage(LogLevel::Error, "orp-trace: %s", Err.c_str());
      return 1;
    }
  }
  return 0;
}

int cmdInfo(int Argc, char **Argv) {
  std::string Path;
  bool PerBlock = false;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--blocks") {
      PerBlock = true;
    } else if (Arg[0] != '-' && Path.empty()) {
      Path = Arg;
    } else {
      logMessage(LogLevel::Error, "orp-trace info: bad argument '%s'",
                 Arg.c_str());
      return 1;
    }
  }
  if (Path.empty()) {
    logMessage(LogLevel::Error, "orp-trace info: missing trace file");
    return 1;
  }

  traceio::TraceReader Reader;
  if (!Reader.open(Path)) {
    logMessage(LogLevel::Error, "orp-trace: %s", Reader.error().c_str());
    return 1;
  }
  const traceio::TraceInfo &I = Reader.info();

  // Per-block kind counts, gathered block by block so the table and the
  // stream totals come from one decode pass.
  struct BlockKinds {
    uint64_t Accesses = 0, Allocs = 0, Frees = 0;
  };
  std::vector<traceio::TraceReader::BlockStats> Blocks = Reader.blockStats();
  std::vector<BlockKinds> Kinds(Blocks.size());
  uint64_t Accesses = 0, Allocs = 0, Frees = 0;
  std::vector<traceio::TraceEvent> Events;
  for (size_t B = 0; B != Blocks.size(); ++B) {
    if (!Reader.decodeBlockEvents(B, Events)) {
      logMessage(LogLevel::Error, "orp-trace: %s", Reader.error().c_str());
      return 1;
    }
    for (const traceio::TraceEvent &E : Events)
      switch (E.K) {
      case traceio::TraceEvent::Kind::Access:
        ++Kinds[B].Accesses;
        break;
      case traceio::TraceEvent::Kind::Alloc:
        ++Kinds[B].Allocs;
        break;
      case traceio::TraceEvent::Kind::Free:
        ++Kinds[B].Frees;
        break;
      }
    Accesses += Kinds[B].Accesses;
    Allocs += Kinds[B].Allocs;
    Frees += Kinds[B].Frees;
  }

  std::printf("%s:\n", Path.c_str());
  std::printf("  format version  %u\n", I.Version);
  std::printf("  alloc policy    %s\n",
              memsim::allocPolicyName(
                  static_cast<memsim::AllocPolicy>(I.AllocPolicy)));
  std::printf("  env seed        %llu\n",
              static_cast<unsigned long long>(I.Seed));
  std::printf("  file size       %llu bytes (%llu blocks, %.2f "
              "bytes/event)\n",
              static_cast<unsigned long long>(I.FileBytes),
              static_cast<unsigned long long>(I.NumBlocks),
              I.TotalEvents ? static_cast<double>(I.FileBytes) /
                                  static_cast<double>(I.TotalEvents)
                            : 0.0);
  std::printf("  events          %llu (%llu accesses, %llu allocs, %llu "
              "frees)\n",
              static_cast<unsigned long long>(I.TotalEvents),
              static_cast<unsigned long long>(Accesses),
              static_cast<unsigned long long>(Allocs),
              static_cast<unsigned long long>(Frees));
  std::printf("  probe sites     %llu instructions, %llu alloc sites\n",
              static_cast<unsigned long long>(I.NumInstructions),
              static_cast<unsigned long long>(I.NumAllocSites));

  if (PerBlock && !Blocks.size())
    std::printf("  (no event blocks)\n");
  if (PerBlock && Blocks.size()) {
    TablePrinter T({"block", "events", "accesses", "allocs", "frees",
                    "payload B", "B/event"});
    for (size_t B = 0; B != Blocks.size(); ++B)
      T.addRow({TablePrinter::fmt(static_cast<uint64_t>(B)),
                TablePrinter::fmt(Blocks[B].EventCount),
                TablePrinter::fmt(Kinds[B].Accesses),
                TablePrinter::fmt(Kinds[B].Allocs),
                TablePrinter::fmt(Kinds[B].Frees),
                TablePrinter::fmt(
                    static_cast<uint64_t>(Blocks[B].PayloadBytes)),
                TablePrinter::fmt(
                    Blocks[B].EventCount
                        ? static_cast<double>(Blocks[B].PayloadBytes) /
                              static_cast<double>(Blocks[B].EventCount)
                        : 0.0,
                    2)});
    std::printf("\n");
    T.print();
  }
  return 0;
}

/// Default session name for a submitted trace: the file's base name
/// without its .orpt suffix.
std::string defaultSessionName(const std::string &Path) {
  size_t Slash = Path.find_last_of('/');
  std::string Base =
      Slash == std::string::npos ? Path : Path.substr(Slash + 1);
  if (Base.size() > 5 && Base.compare(Base.size() - 5, 5, ".orpt") == 0)
    Base.resize(Base.size() - 5);
  return Base.empty() ? "trace" : Base;
}

int cmdSubmit(int Argc, char **Argv) {
  std::string Path, Socket, Name, DumpOmsg, DumpLeap, SnapshotFmt;
  unsigned MaxLmads = 30;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (const char *V = flagValue(Arg, "--socket=")) {
      Socket = V;
    } else if (const char *V = flagValue(Arg, "--name=")) {
      Name = V;
    } else if (const char *V = flagValue(Arg, "--lmads=")) {
      if (!numericFlag("submit", "--lmads", V, MaxLmads))
        return 1;
    } else if (const char *V = flagValue(Arg, "--dump-omsg=")) {
      DumpOmsg = V;
    } else if (const char *V = flagValue(Arg, "--dump-leap=")) {
      DumpLeap = V;
    } else if (const char *V = flagValue(Arg, "--print-snapshot=")) {
      SnapshotFmt = V;
      if (SnapshotFmt != "json" && SnapshotFmt != "json-lines" &&
          SnapshotFmt != "prometheus") {
        logMessage(LogLevel::Error,
                   "orp-trace submit: --print-snapshot expects "
                   "json|json-lines|prometheus, got '%s'",
                   V);
        return 1;
      }
    } else if (Arg[0] != '-' && Path.empty()) {
      Path = Arg;
    } else {
      logMessage(LogLevel::Error, "orp-trace submit: bad argument '%s'",
                 Arg.c_str());
      return 1;
    }
  }
  if (Path.empty() || Socket.empty()) {
    logMessage(LogLevel::Error,
               "orp-trace submit: need <file> and --socket=PATH");
    return 1;
  }

  traceio::TraceReader Reader;
  if (!Reader.open(Path)) {
    logMessage(LogLevel::Error, "orp-trace: %s", Reader.error().c_str());
    return 1;
  }

  session::Client Client;
  std::string Err;
  if (!Client.connect(Socket, Err)) {
    logMessage(LogLevel::Error, "orp-trace: %s", Err.c_str());
    return 1;
  }

  session::OpenRequest Req;
  Req.Name = Name.empty() ? defaultSessionName(Path) : Name;
  Req.Config.Policy =
      static_cast<memsim::AllocPolicy>(Reader.info().AllocPolicy);
  Req.Config.Seed = Reader.info().Seed;
  Req.Config.MaxLmads = MaxLmads;
  Req.Instrs = Reader.instructions();
  Req.Sites = Reader.allocSites();

  uint64_t Id = 0;
  if (!Client.openSession(Req, Id, Err) ||
      !Client.submitTrace(Id, Reader, Err)) {
    logMessage(LogLevel::Error, "orp-trace submit: %s", Err.c_str());
    return 1;
  }

  if (!SnapshotFmt.empty()) {
    uint8_t Format = SnapshotFmt == "json" ? 0
                     : SnapshotFmt == "json-lines" ? 1
                                                   : 2;
    std::string Text;
    if (!Client.snapshot(Format, Req.Name, Text, Err)) {
      logMessage(LogLevel::Error, "orp-trace submit: %s", Err.c_str());
      return 1;
    }
    std::fwrite(Text.data(), 1, Text.size(), stdout);
  }

  session::CloseSummary Summary;
  if (!Client.closeSession(Id, Summary, Err)) {
    logMessage(LogLevel::Error, "orp-trace submit: %s", Err.c_str());
    return 1;
  }
  if (Summary.Failed) {
    logMessage(LogLevel::Error, "orp-trace submit: daemon: %s",
               Summary.Error.c_str());
    return 1;
  }
  std::printf("%s: submitted %llu events as '%s' (omsg %zu bytes, leap "
              "%zu bytes)\n",
              Path.c_str(),
              static_cast<unsigned long long>(Summary.Events),
              Req.Name.c_str(), Summary.Omsg.size(), Summary.Leap.size());
  if (!DumpOmsg.empty() && !writeArtifactFile(DumpOmsg, Summary.Omsg))
    return 1;
  if (!DumpLeap.empty() && !writeArtifactFile(DumpLeap, Summary.Leap))
    return 1;
  return 0;
}

int cmdMerge(int Argc, char **Argv) {
  std::vector<std::string> Inputs;
  std::string OutPath;
  bool Sequential = false;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-o" && I + 1 != Argc) {
      OutPath = Argv[++I];
    } else if (const char *V = flagValue(Arg, "--out=")) {
      OutPath = V;
    } else if (Arg == "--sequential") {
      Sequential = true;
    } else if (Arg[0] != '-') {
      Inputs.push_back(Arg);
    } else {
      logMessage(LogLevel::Error, "orp-trace merge: bad argument '%s'",
                 Arg.c_str());
      return 1;
    }
  }
  if (Inputs.size() < 2 || OutPath.empty()) {
    logMessage(LogLevel::Error,
               "orp-trace merge: need at least two inputs and -o OUT");
    return 1;
  }

  std::vector<std::vector<uint8_t>> Images(Inputs.size());
  ArtifactKind Kind = ArtifactKind::Unknown;
  for (size_t I = 0; I != Inputs.size(); ++I) {
    if (!readArtifactFile(Inputs[I], Images[I]))
      return 1;
    ArtifactKind K = sniffArtifact(Images[I]);
    if (K == ArtifactKind::Unknown) {
      logMessage(LogLevel::Error,
                 "orp-trace merge: '%s' is not a known artifact",
                 Inputs[I].c_str());
      return 1;
    }
    if (I == 0)
      Kind = K;
    else if (K != Kind) {
      logMessage(LogLevel::Error,
                 "orp-trace merge: '%s' is a %s but '%s' is a %s",
                 Inputs[I].c_str(), artifactKindName(K), Inputs[0].c_str(),
                 artifactKindName(Kind));
      return 1;
    }
  }

  std::string Err;
  std::vector<uint8_t> Out;
  const char *OutKind = artifactKindName(Kind);
  if (Kind == ArtifactKind::Leap) {
    leap::LeapProfileData Merged;
    if (!leap::LeapProfileData::deserialize(Images[0], Merged, Err)) {
      logMessage(LogLevel::Error, "orp-trace merge: %s: %s",
                 Inputs[0].c_str(), Err.c_str());
      return 1;
    }
    for (size_t I = 1; I != Inputs.size(); ++I) {
      leap::LeapProfileData Next;
      if (!leap::LeapProfileData::deserialize(Images[I], Next, Err) ||
          !(Sequential ? Merged.mergeSequential(Next, Err)
                       : Merged.mergeUnion(Next, Err))) {
        logMessage(LogLevel::Error, "orp-trace merge: %s: %s",
                   Inputs[I].c_str(), Err.c_str());
        return 1;
      }
    }
    Out = Merged.serialize();
  } else if (Kind == ArtifactKind::Omsa && Sequential) {
    std::vector<whomp::OmsgArchive> Archives(Inputs.size());
    std::vector<const whomp::OmsgArchive *> Segments;
    for (size_t I = 0; I != Inputs.size(); ++I) {
      if (!whomp::OmsgArchive::deserialize(Images[I], Archives[I], Err)) {
        logMessage(LogLevel::Error, "orp-trace merge: %s: %s",
                   Inputs[I].c_str(), Err.c_str());
        return 1;
      }
      Segments.push_back(&Archives[I]);
    }
    whomp::OmsgArchive Merged;
    if (!whomp::OmsgArchive::mergeSequential(Segments, Merged, Err)) {
      logMessage(LogLevel::Error, "orp-trace merge: %s", Err.c_str());
      return 1;
    }
    Out = Merged.serialize();
  } else {
    // Independent-run OMSG fold: full archives have no common tuple
    // order, so the mergeable form is the statistics digest. OMST
    // inputs fold directly; OMSA inputs are digested first.
    whomp::OmsgStats Merged;
    for (size_t I = 0; I != Inputs.size(); ++I) {
      whomp::OmsgStats Stats;
      if (Kind == ArtifactKind::Omsa) {
        whomp::OmsgArchive Archive;
        if (!whomp::OmsgArchive::deserialize(Images[I], Archive, Err)) {
          logMessage(LogLevel::Error, "orp-trace merge: %s: %s",
                     Inputs[I].c_str(), Err.c_str());
          return 1;
        }
        Stats = whomp::OmsgStats::fromArchive(Archive);
      } else if (!whomp::OmsgStats::deserialize(Images[I], Stats, Err)) {
        logMessage(LogLevel::Error, "orp-trace merge: %s: %s",
                   Inputs[I].c_str(), Err.c_str());
        return 1;
      }
      if (!Merged.merge(Stats, Err)) {
        logMessage(LogLevel::Error, "orp-trace merge: %s: %s",
                   Inputs[I].c_str(), Err.c_str());
        return 1;
      }
    }
    Out = Merged.serialize();
    OutKind = artifactKindName(ArtifactKind::Omst);
  }

  if (!writeArtifactFile(OutPath, Out))
    return 1;
  std::printf("merged %zu %s inputs (%s) into %s (%s, %zu bytes)\n",
              Inputs.size(), artifactKindName(Kind),
              Sequential ? "sequential" : "union", OutPath.c_str(), OutKind,
              Out.size());
  return 0;
}

/// Prints one named counter difference and counts it.
void diffCounter(const char *What, uint64_t A, uint64_t B, int &Diffs) {
  if (A == B)
    return;
  ++Diffs;
  std::printf("  %s: %llu vs %llu\n", What,
              static_cast<unsigned long long>(A),
              static_cast<unsigned long long>(B));
}

int cmdDiff(const char *PathA, const char *PathB) {
  std::vector<uint8_t> BytesA, BytesB;
  if (!readArtifactFile(PathA, BytesA) || !readArtifactFile(PathB, BytesB))
    return 2;
  if (BytesA == BytesB) {
    std::printf("%s and %s are identical (%zu bytes)\n", PathA, PathB,
                BytesA.size());
    return 0;
  }
  ArtifactKind KindA = sniffArtifact(BytesA), KindB = sniffArtifact(BytesB);
  if (KindA != KindB || KindA == ArtifactKind::Unknown) {
    std::printf("%s is a %s, %s is a %s\n", PathA, artifactKindName(KindA),
                PathB, artifactKindName(KindB));
    return KindA == ArtifactKind::Unknown || KindB == ArtifactKind::Unknown
               ? 2
               : 1;
  }

  std::string Err;
  int Diffs = 0;
  if (KindA == ArtifactKind::Leap) {
    leap::LeapProfileData A, B;
    if (!leap::LeapProfileData::deserialize(BytesA, A, Err)) {
      logMessage(LogLevel::Error, "orp-trace diff: %s: %s", PathA,
                 Err.c_str());
      return 2;
    }
    if (!leap::LeapProfileData::deserialize(BytesB, B, Err)) {
      logMessage(LogLevel::Error, "orp-trace diff: %s: %s", PathB,
                 Err.c_str());
      return 2;
    }
    diffCounter("descriptor cap", A.maxLmads(), B.maxLmads(), Diffs);
    diffCounter("substreams", A.substreams().size(), B.substreams().size(),
                Diffs);
    diffCounter("instructions", A.instructions().size(),
                B.instructions().size(), Diffs);
    uint64_t PointsA = 0, PointsB = 0;
    // orp-lint: allow(unordered-serial): diagnostic counting only; the
    // counts are order-independent.
    for (const auto &[Key, Sub] : A.substreams()) {
      PointsA += Sub.TotalPoints;
      auto It = B.substreams().find(Key);
      if (It == B.substreams().end() || !(It->second == Sub))
        ++Diffs;
    }
    for (const auto &[Key, Sub] : B.substreams()) {
      PointsB += Sub.TotalPoints;
      if (A.substreams().find(Key) == A.substreams().end())
        ++Diffs;
    }
    for (const auto &[Instr, Summary] : A.instructions()) {
      auto It = B.instructions().find(Instr);
      if (It == B.instructions().end() ||
          It->second.ExecCount != Summary.ExecCount ||
          It->second.StoreCount != Summary.StoreCount)
        ++Diffs;
    }
    std::printf("LEAP profiles differ in %d place(s) (%llu vs %llu total "
                "points)\n",
                Diffs, static_cast<unsigned long long>(PointsA),
                static_cast<unsigned long long>(PointsB));
  } else if (KindA == ArtifactKind::Omsa) {
    whomp::OmsgArchive A, B;
    if (!whomp::OmsgArchive::deserialize(BytesA, A, Err)) {
      logMessage(LogLevel::Error, "orp-trace diff: %s: %s", PathA,
                 Err.c_str());
      return 2;
    }
    if (!whomp::OmsgArchive::deserialize(BytesB, B, Err)) {
      logMessage(LogLevel::Error, "orp-trace diff: %s: %s", PathB,
                 Err.c_str());
      return 2;
    }
    diffCounter("dimension streams", A.dimensionStreams().size(),
                B.dimensionStreams().size(), Diffs);
    diffCounter("accesses", A.accessCount(), B.accessCount(), Diffs);
    diffCounter("aux objects", A.objects().size(), B.objects().size(),
                Diffs);
    size_t Dims = std::min(A.dimensionStreams().size(),
                           B.dimensionStreams().size());
    for (size_t D = 0; D != Dims; ++D)
      if (A.dimensionStreams()[D] != B.dimensionStreams()[D]) {
        ++Diffs;
        std::printf("  dimension %zu streams differ\n", D);
      }
    if (A.objects().size() == B.objects().size() &&
        !(A.objects() == B.objects())) {
      ++Diffs;
      std::printf("  aux object tables differ\n");
    }
    std::printf("OMSG archives differ in %d place(s)\n", Diffs);
  } else {
    whomp::OmsgStats A, B;
    if (!whomp::OmsgStats::deserialize(BytesA, A, Err)) {
      logMessage(LogLevel::Error, "orp-trace diff: %s: %s", PathA,
                 Err.c_str());
      return 2;
    }
    if (!whomp::OmsgStats::deserialize(BytesB, B, Err)) {
      logMessage(LogLevel::Error, "orp-trace diff: %s: %s", PathB,
                 Err.c_str());
      return 2;
    }
    diffCounter("runs", A.runs(), B.runs(), Diffs);
    diffCounter("accesses", A.accessCount(), B.accessCount(), Diffs);
    diffCounter("objects", A.objectCount(), B.objectCount(), Diffs);
    diffCounter("dimensions", A.dimensions().size(), B.dimensions().size(),
                Diffs);
    size_t Dims = std::min(A.dimensions().size(), B.dimensions().size());
    for (size_t D = 0; D != Dims; ++D)
      if (!(A.dimensions()[D] == B.dimensions()[D])) {
        ++Diffs;
        std::printf("  dimension %zu statistics differ\n", D);
      }
    std::printf("OMSG statistics differ in %d place(s)\n", Diffs);
  }
  // The byte images differed; if no semantic difference surfaced, the
  // files still encode the same profile (e.g. rewrapped checksums).
  if (Diffs == 0)
    std::printf("  (no semantic differences; byte encodings differ)\n");
  return Diffs == 0 ? 0 : 1;
}

int cmdVerify(const char *Path) {
  traceio::TraceReader Reader;
  uint64_t Events = 0;
  if (!Reader.open(Path) ||
      !Reader.forEachEvent([&](const traceio::TraceEvent &) { ++Events; })) {
    logMessage(LogLevel::Error, "orp-trace: verify FAILED: %s",
               Reader.error().c_str());
    return 1;
  }
  std::printf("%s: OK (%llu events, %llu blocks, all checksums valid)\n",
              Path, static_cast<unsigned long long>(Events),
              static_cast<unsigned long long>(Reader.info().NumBlocks));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Cmd = Argv[1];
  if (Cmd == "record")
    return cmdRecord(Argc - 2, Argv + 2);
  if (Cmd == "replay")
    return cmdReplay(Argc - 2, Argv + 2);
  if (Cmd == "stats")
    return cmdStats(Argc - 2, Argv + 2);
  if (Cmd == "submit")
    return cmdSubmit(Argc - 2, Argv + 2);
  if (Cmd == "merge")
    return cmdMerge(Argc - 2, Argv + 2);
  if (Cmd == "diff" && Argc == 4)
    return cmdDiff(Argv[2], Argv[3]);
  if (Cmd == "version" || Cmd == "--version") {
    support::printVersion("orp-trace");
    return 0;
  }
  if (Cmd == "info" && Argc >= 3)
    return cmdInfo(Argc - 2, Argv + 2);
  if (Cmd == "verify" && Argc == 3)
    return cmdVerify(Argv[2]);
  return usage(Argv[0]);
}
