//===- tools/orp_trace.cpp - Record/replay trace CLI ---------------------===//
//
// Command-line front end over src/traceio: capture a workload's probe
// event stream into a .orpt file, inspect and verify trace files, and
// replay them through any of the profilers. Record once, analyze
// anywhere — replayed profiles are bit-identical to live runs.
//
//   orp-trace record <workload> [-o FILE] [--alloc=POLICY] [--seed=N]
//                    [--env=N] [--scale=N]
//   orp-trace replay <file> [--profiler=whomp|leap|rasg] [--lmads=N]
//                    [--dump-omsg=FILE]
//   orp-trace info <file>
//   orp-trace verify <file>
//
//===----------------------------------------------------------------------===//

#include "baseline/RasgProfiler.h"
#include "core/ProfilingSession.h"
#include "leap/LeapProfileData.h"
#include "support/ParseNumber.h"
#include "traceio/TraceReplayer.h"
#include "traceio/TraceWriter.h"
#include "whomp/OmsgArchive.h"
#include "whomp/Whomp.h"
#include "workloads/Workload.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace orp;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> ...\n"
      "  record <workload> [-o FILE] [--alloc=first-fit|best-fit|"
      "next-fit|segregated]\n"
      "         [--seed=N] [--env=N] [--scale=N]     capture a run "
      "(default FILE: <workload>.orpt)\n"
      "  replay <file> [--profiler=whomp|leap|rasg] [--lmads=N] "
      "[--threads=N]\n"
      "         [--dump-omsg=FILE]                   re-drive profilers "
      "from a trace\n"
      "                                              (--threads output is "
      "byte-identical)\n"
      "  info <file>                                 print header and "
      "stream statistics\n"
      "  verify <file>                               validate structure "
      "and checksums\n",
      Argv0);
  return 1;
}

const char *flagValue(const std::string &Arg, const char *Prefix) {
  size_t Len = std::strlen(Prefix);
  return Arg.compare(0, Len, Prefix) == 0 ? Arg.c_str() + Len : nullptr;
}

/// Parses the numeric value of \p Flag strictly (whole string, no
/// overflow; see support::parseUint64), reporting a usage error on
/// stderr when it is malformed.
bool numericFlag(const char *Cmd, const char *Flag, const char *Text,
                 uint64_t &Out) {
  if (support::parseUint64(Text, Out))
    return true;
  std::fprintf(stderr, "orp-trace %s: %s expects an unsigned integer, "
                       "got '%s'\n",
               Cmd, Flag, Text);
  return false;
}

bool numericFlag(const char *Cmd, const char *Flag, const char *Text,
                 unsigned &Out) {
  if (support::parseUnsigned(Text, Out))
    return true;
  std::fprintf(stderr, "orp-trace %s: %s expects an unsigned integer, "
                       "got '%s'\n",
               Cmd, Flag, Text);
  return false;
}

bool parseAllocPolicy(const char *Name, memsim::AllocPolicy &Policy) {
  if (!std::strcmp(Name, "first-fit"))
    Policy = memsim::AllocPolicy::FirstFit;
  else if (!std::strcmp(Name, "best-fit"))
    Policy = memsim::AllocPolicy::BestFit;
  else if (!std::strcmp(Name, "next-fit"))
    Policy = memsim::AllocPolicy::NextFit;
  else if (!std::strcmp(Name, "segregated"))
    Policy = memsim::AllocPolicy::Segregated;
  else
    return false;
  return true;
}

int cmdRecord(int Argc, char **Argv) {
  std::string WorkloadName, OutPath;
  memsim::AllocPolicy Policy = memsim::AllocPolicy::FirstFit;
  uint64_t Seed = 42, EnvSeed = 0, Scale = 1;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "-o" && I + 1 != Argc) {
      OutPath = Argv[++I];
    } else if (const char *V = flagValue(Arg, "--out=")) {
      OutPath = V;
    } else if (const char *V = flagValue(Arg, "--alloc=")) {
      if (!parseAllocPolicy(V, Policy)) {
        std::fprintf(stderr, "orp-trace: unknown alloc policy '%s'\n", V);
        return 1;
      }
    } else if (const char *V = flagValue(Arg, "--seed=")) {
      if (!numericFlag("record", "--seed", V, Seed))
        return 1;
    } else if (const char *V = flagValue(Arg, "--env=")) {
      if (!numericFlag("record", "--env", V, EnvSeed))
        return 1;
    } else if (const char *V = flagValue(Arg, "--scale=")) {
      if (!numericFlag("record", "--scale", V, Scale))
        return 1;
    } else if (Arg[0] != '-' && WorkloadName.empty()) {
      WorkloadName = Arg;
    } else {
      std::fprintf(stderr, "orp-trace record: bad argument '%s'\n",
                   Arg.c_str());
      return 1;
    }
  }
  if (WorkloadName.empty()) {
    std::fprintf(stderr, "orp-trace record: missing workload name\n");
    return 1;
  }
  auto Workload = workloads::createWorkloadByName(WorkloadName);
  if (!Workload) {
    std::fprintf(stderr,
                 "orp-trace: unknown workload '%s'; available: 164.gzip-a "
                 "175.vpr-a 181.mcf-a 186.crafty-a 197.parser-a "
                 "256.bzip2-a 300.twolf-a list-traversal\n",
                 WorkloadName.c_str());
    return 1;
  }
  if (OutPath.empty())
    OutPath = WorkloadName + ".orpt";

  core::ProfilingSession Session(Policy, EnvSeed);
  traceio::TraceWriter Writer(OutPath, Session.registry(), Policy, EnvSeed);
  if (!Writer.ok()) {
    std::fprintf(stderr, "orp-trace: %s\n", Writer.error().c_str());
    return 1;
  }
  Session.addRawSink(&Writer);

  workloads::WorkloadConfig Config;
  Config.Seed = Seed;
  Config.Scale = Scale;
  uint64_t Checksum =
      Workload->run(Session.memory(), Session.registry(), Config);
  Session.finish();
  if (!Writer.close()) {
    std::fprintf(stderr, "orp-trace: %s\n", Writer.error().c_str());
    return 1;
  }
  std::printf("%s: recorded %llu events to %s (%llu bytes, %.2f "
              "bytes/event), checksum %llu\n",
              Workload->name(),
              static_cast<unsigned long long>(Writer.eventsWritten()),
              OutPath.c_str(),
              static_cast<unsigned long long>(Writer.bytesWritten()),
              Writer.eventsWritten()
                  ? static_cast<double>(Writer.bytesWritten()) /
                        static_cast<double>(Writer.eventsWritten())
                  : 0.0,
              static_cast<unsigned long long>(Checksum));
  return 0;
}

int cmdReplay(int Argc, char **Argv) {
  std::string Path, Profiler = "whomp", DumpOmsg;
  unsigned MaxLmads = 30, Threads = 1;
  for (int I = 0; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (const char *V = flagValue(Arg, "--profiler=")) {
      Profiler = V;
    } else if (const char *V = flagValue(Arg, "--lmads=")) {
      if (!numericFlag("replay", "--lmads", V, MaxLmads))
        return 1;
    } else if (const char *V = flagValue(Arg, "--threads=")) {
      if (!numericFlag("replay", "--threads", V, Threads))
        return 1;
      if (Threads == 0) {
        std::fprintf(stderr,
                     "orp-trace replay: --threads must be at least 1\n");
        return 1;
      }
    } else if (const char *V = flagValue(Arg, "--dump-omsg=")) {
      DumpOmsg = V;
    } else if (Arg[0] != '-' && Path.empty()) {
      Path = Arg;
    } else {
      std::fprintf(stderr, "orp-trace replay: bad argument '%s'\n",
                   Arg.c_str());
      return 1;
    }
  }
  if (Path.empty() ||
      (Profiler != "whomp" && Profiler != "leap" && Profiler != "rasg")) {
    std::fprintf(stderr, "orp-trace replay: need <file> and "
                         "--profiler=whomp|leap|rasg\n");
    return 1;
  }

  traceio::TraceReader Reader;
  if (!Reader.open(Path)) {
    std::fprintf(stderr, "orp-trace: %s\n", Reader.error().c_str());
    return 1;
  }
  traceio::TraceReplayer Replayer(Reader);
  Replayer.setThreads(Threads);
  auto Session = Replayer.makeSession();

  whomp::WhompProfiler Whomp(Threads);
  leap::LeapProfiler Leap(MaxLmads, Threads);
  baseline::RasgProfiler Rasg;
  if (Profiler == "whomp")
    Session->addConsumer(&Whomp);
  else if (Profiler == "leap")
    Session->addConsumer(&Leap);
  else
    Session->addRawSink(&Rasg);

  if (!Replayer.replayInto(*Session)) {
    std::fprintf(stderr, "orp-trace: %s\n", Replayer.error().c_str());
    return 1;
  }
  std::printf("%s: replayed %llu events (%llu instr sites, %llu alloc "
              "sites, alloc policy %s, env seed %llu)\n",
              Path.c_str(),
              static_cast<unsigned long long>(Replayer.eventsReplayed()),
              static_cast<unsigned long long>(Reader.info().NumInstructions),
              static_cast<unsigned long long>(Reader.info().NumAllocSites),
              memsim::allocPolicyName(static_cast<memsim::AllocPolicy>(
                  Reader.info().AllocPolicy)),
              static_cast<unsigned long long>(Reader.info().Seed));

  if (Profiler == "whomp") {
    whomp::OmsgSizes S = Whomp.sizes();
    std::printf("WHOMP OMSG: %zu tuples, %zu bytes (instr %zu, group %zu, "
                "object %zu, offset %zu)\n",
                static_cast<size_t>(Whomp.tuplesSeen()), S.total(), S.Instr,
                S.Group, S.Object, S.Offset);
    if (!DumpOmsg.empty()) {
      auto Bytes =
          whomp::OmsgArchive::build(Whomp, &Session->omc()).serialize();
      // orp-lint: allow(endian-io): writes an opaque, already-serialized
      // byte image; all field encoding happened inside serialize().
      std::FILE *Out = std::fopen(DumpOmsg.c_str(), "wb");
      if (!Out || std::fwrite(Bytes.data(), 1, Bytes.size(), Out) !=
                      Bytes.size()) {
        std::fprintf(stderr, "orp-trace: cannot write '%s'\n",
                     DumpOmsg.c_str());
        if (Out)
          std::fclose(Out);
        return 1;
      }
      std::fclose(Out);
      std::printf("wrote OMSG archive: %s (%zu bytes)\n", DumpOmsg.c_str(),
                  Bytes.size());
    }
  } else if (Profiler == "leap") {
    auto Data = leap::LeapProfileData::fromProfiler(Leap);
    std::printf("LEAP: %zu substreams, %zu profile bytes, %.1f%% accesses "
                "/ %.1f%% instructions captured\n",
                Data.substreams().size(), Data.serialize().size(),
                Leap.accessesCapturedPercent(),
                Leap.instructionsCapturedPercent());
  } else {
    std::printf("RASG: %llu accesses, %zu bytes\n",
                static_cast<unsigned long long>(Rasg.accessesSeen()),
                Rasg.serializedSizeBytes());
  }
  return 0;
}

int cmdInfo(const char *Path) {
  traceio::TraceReader Reader;
  if (!Reader.open(Path)) {
    std::fprintf(stderr, "orp-trace: %s\n", Reader.error().c_str());
    return 1;
  }
  const traceio::TraceInfo &I = Reader.info();
  uint64_t Accesses = 0, Allocs = 0, Frees = 0;
  if (!Reader.forEachEvent([&](const traceio::TraceEvent &E) {
        switch (E.K) {
        case traceio::TraceEvent::Kind::Access:
          ++Accesses;
          break;
        case traceio::TraceEvent::Kind::Alloc:
          ++Allocs;
          break;
        case traceio::TraceEvent::Kind::Free:
          ++Frees;
          break;
        }
      })) {
    std::fprintf(stderr, "orp-trace: %s\n", Reader.error().c_str());
    return 1;
  }
  std::printf("%s:\n", Path);
  std::printf("  format version  %u\n", I.Version);
  std::printf("  alloc policy    %s\n",
              memsim::allocPolicyName(
                  static_cast<memsim::AllocPolicy>(I.AllocPolicy)));
  std::printf("  env seed        %llu\n",
              static_cast<unsigned long long>(I.Seed));
  std::printf("  file size       %llu bytes (%llu blocks, %.2f "
              "bytes/event)\n",
              static_cast<unsigned long long>(I.FileBytes),
              static_cast<unsigned long long>(I.NumBlocks),
              I.TotalEvents ? static_cast<double>(I.FileBytes) /
                                  static_cast<double>(I.TotalEvents)
                            : 0.0);
  std::printf("  events          %llu (%llu accesses, %llu allocs, %llu "
              "frees)\n",
              static_cast<unsigned long long>(I.TotalEvents),
              static_cast<unsigned long long>(Accesses),
              static_cast<unsigned long long>(Allocs),
              static_cast<unsigned long long>(Frees));
  std::printf("  probe sites     %llu instructions, %llu alloc sites\n",
              static_cast<unsigned long long>(I.NumInstructions),
              static_cast<unsigned long long>(I.NumAllocSites));
  return 0;
}

int cmdVerify(const char *Path) {
  traceio::TraceReader Reader;
  uint64_t Events = 0;
  if (!Reader.open(Path) ||
      !Reader.forEachEvent([&](const traceio::TraceEvent &) { ++Events; })) {
    std::fprintf(stderr, "orp-trace: verify FAILED: %s\n",
                 Reader.error().c_str());
    return 1;
  }
  std::printf("%s: OK (%llu events, %llu blocks, all checksums valid)\n",
              Path, static_cast<unsigned long long>(Events),
              static_cast<unsigned long long>(Reader.info().NumBlocks));
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage(Argv[0]);
  std::string Cmd = Argv[1];
  if (Cmd == "record")
    return cmdRecord(Argc - 2, Argv + 2);
  if (Cmd == "replay")
    return cmdReplay(Argc - 2, Argv + 2);
  if (Cmd == "info" && Argc == 3)
    return cmdInfo(Argv[2]);
  if (Cmd == "verify" && Argc == 3)
    return cmdVerify(Argv[2]);
  return usage(Argv[0]);
}
