#!/usr/bin/env bash
#===- tools/check_metrics_json.sh - MetricsSnapshot JSON schema check ----===#
#
# Validates a telemetry snapshot produced by `orp-trace stats --metrics=...`,
# `orp-trace replay --metrics=...` or `orp_profile --metrics=...` against
# the version-1 exporter layout (src/telemetry/Snapshot.h):
#
#   {"version":1,
#    "counters":{name:uint,...},
#    "gauges":{name:int,...},
#    "histograms":{name:{"count":uint,"sum":uint,
#                        "buckets":[{"le":uint|null,"count":uint},...]},...},
#    "timers":{name:{"count":uint,"total_ns":uint},...}}
#
# Usage: tools/check_metrics_json.sh FILE [FILE...]
#   Multi-line files are validated object by object when each line is a
#   snapshot (the --metrics-interval JSONL stream) or as one pretty
#   document otherwise. Exit 1 on the first schema violation.
#
# Used by the CI metrics-smoke job; needs jq.
#===----------------------------------------------------------------------===#

set -euo pipefail

if [ $# -lt 1 ]; then
  echo "usage: $0 FILE [FILE...]" >&2
  exit 2
fi

# One jq program, run with --slurp so both a single pretty document and
# a JSONL stream of compact documents validate the same way.
SCHEMA='
  length > 0 and
  all(.[];
    .version == 1
    and (.counters | type == "object")
    and (.gauges | type == "object")
    and (.histograms | type == "object")
    and (.timers | type == "object")
    and ([.counters[] | select((type != "number") or . < 0)] == [])
    and ([.gauges[] | select(type != "number")] == [])
    and ([.histograms[]
          | select((.count | type) != "number"
                   or (.sum | type) != "number"
                   or (.buckets | type) != "array"
                   or ([.buckets[]
                        | select(((.le | type) != "number"
                                  and .le != null)
                                 or (.count | type) != "number")] != [])
                   # Bucket counts must add up to the histogram count.
                   or ((.count) != ([.buckets[].count] | add // 0)))]
         == [])
    and ([.timers[]
          | select((.count | type) != "number"
                   or (.total_ns | type) != "number")] == [])
    # The pipeline instruments these unconditionally; their absence
    # means the exporter or the instrumentation regressed.
    and (.counters | has("cdc.batches"))
    and (.gauges | has("omc.translations"))
    and (.gauges | has("log.error"))
  )
'

for FILE in "$@"; do
  if ! jq -e --slurp "$SCHEMA" "$FILE" >/dev/null; then
    echo "check_metrics_json: $FILE does not match the version-1 snapshot schema" >&2
    exit 1
  fi
  echo "check_metrics_json: $FILE ok"
done
