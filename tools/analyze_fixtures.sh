#!/bin/sh
# analyze_fixtures.sh — orp-analyze must still *detect* every violation
# class it exists to catch.
#
# Runs the analyzer against tests/analysis_fixtures (a mini-tree with
# one seeded violation per rule) and asserts the pinned diagnostics:
# the clean-tree ctest entry proves the real tree passes; this one
# proves a passing analyzer is not a lobotomized analyzer.
#
# Usage: analyze_fixtures.sh <orp-analyze-binary> <fixture-root>

set -u

ANALYZE=${1:?usage: analyze_fixtures.sh <orp-analyze-binary> <fixture-root>}
ROOT=${2:?usage: analyze_fixtures.sh <orp-analyze-binary> <fixture-root>}

FAIL=0

OUT=$("$ANALYZE" --root="$ROOT" 2>&1)
STATUS=$?

if [ "$STATUS" -ne 1 ]; then
  echo "FAIL: expected exit 1 on the seeded tree, got $STATUS"
  echo "$OUT"
  FAIL=1
fi

# Pinned diagnostics, one per rule. Full `rule: file:line` prefixes so
# a finding that drifts to the wrong site fails loudly.
expect() {
  if ! printf '%s\n' "$OUT" | grep -qF "$1"; then
    echo "FAIL: missing expected diagnostic: $1"
    FAIL=1
  fi
}

expect "orp-analyze: layering: src/support/BackEdge.h:11: module 'support' (rank 0) may not include 'core' (rank 4): layering back-edge"
expect "orp-analyze: unordered-serialize: src/core/Serializer.cpp:29:"
expect "src/core/Serializer.cpp:40 (iteration order leaks into the byte stream"
expect "[GroupSerializer::serialize -> GroupSerializer::flushGroups -> GroupSerializer::emitGroups]"
expect "orp-analyze: atomics: src/trace/Publish.cpp:14: non-relaxed ordering 'memory_order_seq_cst' outside the sanctioned set"
expect "orp-analyze: raw-thread: src/core/Spawn.cpp:13: std::thread outside src/support"
expect "orp-analyze: iostream: src/core/Print.cpp:3: #include <iostream> is banned in src/"

# The allow() escapes must suppress: nothing from Allowed.cpp.
if printf '%s\n' "$OUT" | grep -q "Allowed.cpp"; then
  echo "FAIL: allow() escape did not suppress a finding:"
  printf '%s\n' "$OUT" | grep "Allowed.cpp"
  FAIL=1
fi

# --json emits the same findings as a machine-parseable array.
JSON=$("$ANALYZE" --root="$ROOT" --json 2>&1)
for RULE in layering unordered-serialize atomics raw-thread iostream; do
  if ! printf '%s\n' "$JSON" | grep -qF "\"rule\": \"$RULE\""; then
    echo "FAIL: --json output missing rule '$RULE'"
    FAIL=1
  fi
done

if [ "$FAIL" -ne 0 ]; then
  echo "--- analyzer output ---"
  printf '%s\n' "$OUT"
  exit 1
fi

echo "orp-analyze fixtures: all seeded violations detected, escapes honored"
exit 0
