//===- session/ProfileSession.h - One profiling session --------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single-session profiling engine: one wired pipeline (OMC + CDC +
/// the enabled profilers) fed by still-encoded .orpt event blocks, a
/// whole trace file, or a live workload, and finalized into detached
/// profile artifacts. Every front end — `orp-trace replay`, the
/// orp-traced daemon, `orp_profile` — drives this same class, which is
/// what makes their profiles byte-identical: the pipeline never learns
/// where its events came from.
///
/// A ProfileSession is strictly single-threaded: whoever owns it (the
/// CLI main thread, or exactly one SessionManager shard worker) calls
/// every method. Cross-thread scheduling is SessionManager's job.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SESSION_PROFILESESSION_H
#define ORP_SESSION_PROFILESESSION_H

#include "core/ProfilingSession.h"
#include "leap/Leap.h"
#include "traceio/TraceReader.h"
#include "whomp/Whomp.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace orp {
namespace session {

/// Configuration of one profiling session.
struct SessionConfig {
  memsim::AllocPolicy Policy = memsim::AllocPolicy::FirstFit;
  uint64_t Seed = 0;
  bool EnableWhomp = true;
  bool EnableLeap = true;
  unsigned MaxLmads = 30;
  /// Worker threads inside each enabled profiler (CLI --threads). The
  /// artifacts are byte-identical at any value (DESIGN.md section 10);
  /// SessionManager keeps this at 1 and parallelizes across sessions
  /// instead.
  unsigned ProfilerThreads = 1;
};

/// The finished products of one session.
struct SessionArtifacts {
  std::string Name;
  std::vector<uint8_t> Omsg; ///< OmsgArchive bytes; empty when disabled.
  std::vector<uint8_t> Leap; ///< LeapProfileData bytes; empty if disabled.
  uint64_t Events = 0;       ///< Events injected over the session's life.
  bool Failed = false;       ///< A block failed to decode (see Error).
  std::string Error;
};

/// One profiling session: pipeline, profilers, artifacts.
class ProfileSession {
public:
  ProfileSession(std::string Name, const SessionConfig &Config);
  ~ProfileSession();

  ProfileSession(const ProfileSession &) = delete;
  ProfileSession &operator=(const ProfileSession &) = delete;

  const std::string &name() const { return Name; }
  const SessionConfig &config() const { return Config; }

  /// The underlying pipeline, for front ends that attach extra sinks
  /// (RASG baseline, metrics tickers) or run a live workload against
  /// memory()/registry().
  core::ProfilingSession &core() { return *Core; }

  /// The enabled profilers (nullptr when disabled), for front ends that
  /// print summary statistics. With ProfilerThreads > 1 their accessors
  /// are only valid after finalize().
  whomp::WhompProfiler *whomp() { return Whomp.get(); }
  leap::LeapProfiler *leap() { return Leap.get(); }

  /// Registers recorded probe-site tables (an OPEN frame's payload or a
  /// TraceReader's tables) into the session registry. Call once, before
  /// any injection.
  void
  registerProbeTables(const std::vector<trace::InstrInfo> &Instrs,
                      const std::vector<trace::AllocSiteInfo> &Sites);

  /// Verifies and decodes one still-encoded .orpt event block payload
  /// and injects its events into the pipeline. \p FormatVersion is the
  /// payload's .orpt format version (EVENTS frames carry it; a file
  /// replay uses the header's): v1 blocks stream per event, v2 blocks
  /// decode columnar and inject whole access slices. \p BlockIndex
  /// labels diagnostics (the sender's running block count). Returns
  /// false — latching failed()/error() — on a corrupt block; the
  /// session then rejects further injection but can still be finalized.
  bool injectBlock(const uint8_t *Payload, size_t Len, uint64_t EventCount,
                   uint32_t Crc, uint64_t BlockIndex,
                   uint8_t FormatVersion);

  /// Registers \p Reader's probe tables and replays its event blocks
  /// [\p FirstBlock, \p EndBlock) — the defaults cover the whole trace
  /// (decode-ahead with \p DecodeThreads > 1; delivery order and
  /// artifacts are identical either way). \p BlockDone, when set, runs
  /// on the calling thread after each block with the index of the next
  /// block — the resume point a checkpoint() taken from inside the
  /// callback would encode. Returns false on corruption.
  bool replayFrom(traceio::TraceReader &Reader, unsigned DecodeThreads = 1,
                  uint64_t FirstBlock = 0,
                  uint64_t EndBlock = ~static_cast<uint64_t>(0),
                  const std::function<void(uint64_t)> &BlockDone = {});

  /// Serializes the session's resumable state as an ORCK artifact:
  /// progress (\p NextBlock, cumulative event count), the session
  /// configuration, \p Reader's identity (block/event counts) and the
  /// OMC's authoritative state. Profiler state is deliberately not
  /// captured: a resumed session profiles its own block range from
  /// scratch and its artifacts are folded into the earlier segment's
  /// with the profile merge operations (DESIGN.md section 17). Call
  /// only at a block boundary (from a replayFrom BlockDone callback,
  /// or after a ranged replay returns).
  std::vector<uint8_t> checkpoint(const traceio::TraceReader &Reader,
                                  uint64_t NextBlock);

  /// Restores a checkpoint() image into this freshly constructed
  /// session, validating it against this session's configuration and
  /// \p Reader's identity. On success \p NextBlock is the first block
  /// still to replay and eventsInjected() already counts the events
  /// before it. Returns false with \p Err set on malformed input or a
  /// config/trace mismatch; the session must then be discarded.
  [[nodiscard]] bool restoreCheckpoint(const std::vector<uint8_t> &Bytes,
                                       const traceio::TraceReader &Reader,
                                       uint64_t &NextBlock,
                                       std::string &Err);

  /// ORCK artifact framing (mirrors the LEAP/OMSA header layout).
  static constexpr uint8_t kCheckpointMagic[4] = {'O', 'R', 'C', 'K'};
  static constexpr uint8_t kCheckpointVersion = 1;

  /// Finishes the pipeline (once) and builds the detached artifacts.
  /// Idempotent in effect but rebuilds the artifact bytes each call —
  /// call once at end of life.
  SessionArtifacts finalize();

  bool failed() const { return Failed; }
  const std::string &error() const { return Err; }
  uint64_t eventsInjected() const { return Events; }

  /// Rough resident-footprint estimate of the session's pipeline state,
  /// derived from the existing structure gauges (Sequitur slab counts,
  /// OMC group/live-object counts, LEAP profile size). Monotone in the
  /// real footprint — the quantity SessionManager's memory budget and
  /// LRU eviction operate on — not an allocator-accurate byte count.
  size_t memoryEstimateBytes();

private:
  std::string Name;
  SessionConfig Config;
  std::unique_ptr<core::ProfilingSession> Core;
  std::unique_ptr<whomp::WhompProfiler> Whomp;
  std::unique_ptr<leap::LeapProfiler> Leap;
  uint64_t Events = 0;
  bool Failed = false;
  bool Finished = false;
  std::string Err;
};

} // namespace session
} // namespace orp

#endif // ORP_SESSION_PROFILESESSION_H
