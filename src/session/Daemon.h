//===- session/Daemon.h - orp-traced server core ---------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The orp-traced server: a Unix-domain stream socket accepting the
/// Wire.h framed protocol, dispatching onto a SessionManager from one
/// poll()-driven control thread. The event loop IS the manager's
/// control thread, so no locks are needed around session state (the
/// R5 discipline: raw threading stays in src/support; this file's only
/// concurrency primitives are the manager's queues). That single-thread
/// contract is the SessionControlRole capability: start()/run() and the
/// connection state require it, and the thread driving the daemon
/// claims it with a support::ScopedRole (orp-traced's main, or a test).
///
/// Flow control: when a session's ingest queue is full (WouldBlock),
/// the connection's remaining parsed frames stay queued and the daemon
/// simply stops reading from that socket — TCP-style backpressure on a
/// Unix socket — while other connections keep streaming. A client that
/// disconnects mid-stream has its unclosed sessions aborted; nobody
/// else notices.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SESSION_DAEMON_H
#define ORP_SESSION_DAEMON_H

#include "session/SessionManager.h"
#include "session/Wire.h"

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace orp {
namespace session {

/// Configuration of one daemon instance.
struct DaemonConfig {
  std::string SocketPath;  ///< Unix-domain socket path to listen on.
  std::string OutDir;      ///< Artifact directory; empty = don't write.
  ManagerConfig Manager;   ///< Scheduler/limit configuration.
};

/// The server: socket accept/IO loop over a SessionManager.
class Daemon {
public:
  explicit Daemon(const DaemonConfig &Config);
  ~Daemon();

  Daemon(const Daemon &) = delete;
  Daemon &operator=(const Daemon &) = delete;

  /// Binds and listens on the configured socket path (removing a stale
  /// socket file first). Returns false with \p Err set on failure.
  [[nodiscard]] bool start(std::string &Err)
      ORP_REQUIRES(SessionControlRole);

  /// Serves until \p StopRequested returns true (checked every poll
  /// timeout, ~50ms). Aborts live connections' sessions on exit.
  void run(const std::function<bool()> &StopRequested)
      ORP_REQUIRES(SessionControlRole);

  /// The manager, for in-process tests driving both sides.
  SessionManager &manager() { return Manager; }

  /// Artifact file path for \p SessionName with \p Extension
  /// ("omsg"/"leap"); empty when no OutDir is configured.
  std::string artifactPath(const std::string &SessionName,
                           const char *Extension) const;

private:
  /// One accepted connection.
  struct Conn {
    int Fd = -1;
    FrameParser Parser;
    /// Parsed-but-unprocessed frames (head blocked on backpressure).
    std::deque<Frame> PendingIn;
    /// Bytes awaiting write (replies), drained on POLLOUT.
    std::vector<uint8_t> OutBuf;
    size_t OutPos = 0;
    /// Sessions opened over this connection and not yet closed.
    std::vector<SessionId> Owned;
    bool Dead = false;
  };

  void acceptNew() ORP_REQUIRES(SessionControlRole);
  void readFrom(Conn &C) ORP_REQUIRES(SessionControlRole);
  void writeTo(Conn &C) ORP_REQUIRES(SessionControlRole);
  /// Processes queued frames until empty or the head WouldBlock.
  void processPending(Conn &C) ORP_REQUIRES(SessionControlRole);
  /// Handles one frame; false = leave it queued (backpressure).
  bool handleFrame(Conn &C, const Frame &F)
      ORP_REQUIRES(SessionControlRole);
  void handleOpen(Conn &C, const Frame &F)
      ORP_REQUIRES(SessionControlRole);
  bool handleEvents(Conn &C, const Frame &F)
      ORP_REQUIRES(SessionControlRole);
  void handleSnapshot(Conn &C, const Frame &F)
      ORP_REQUIRES(SessionControlRole);
  void handleClose(Conn &C, const Frame &F)
      ORP_REQUIRES(SessionControlRole);
  void reply(Conn &C, FrameType Type, const std::vector<uint8_t> &Payload)
      ORP_REQUIRES(SessionControlRole);
  void replyErr(Conn &C, const std::string &Message)
      ORP_REQUIRES(SessionControlRole);
  void dropConn(Conn &C) ORP_REQUIRES(SessionControlRole);
  void writeArtifacts(const SessionArtifacts &A);

  DaemonConfig Config;
  SessionManager Manager;
  int ListenFd ORP_GUARDED_BY(SessionControlRole) = -1;
  std::vector<std::unique_ptr<Conn>> Conns
      ORP_GUARDED_BY(SessionControlRole);
};

} // namespace session
} // namespace orp

#endif // ORP_SESSION_DAEMON_H
