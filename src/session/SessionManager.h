//===- session/SessionManager.h - Many sessions, few threads ---*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Multiplexes N independent ProfileSessions over a small pool of
/// scheduler shards (support::QueueWorker). Each session is pinned to
/// one shard at open() — every block of a session is processed by that
/// one worker, in submission order, so a session's pipeline state has a
/// single owner and its profile is byte-identical at any shard count
/// and under any interleaving with other sessions (the determinism
/// contract of DESIGN.md section 10, lifted from threads to sessions).
///
/// Flow control is per session: each session has a bounded ingest queue
/// and submitBlock() returns WouldBlock instead of blocking when it is
/// full — the daemon translates that into a stalled client connection
/// rather than a stalled control loop. A configurable memory budget is
/// enforced by LRU-evicting *idle* sessions (no blocks in flight):
/// eviction finalizes the victim like a normal close and hands its
/// artifacts to the eviction handler.
///
/// Threading discipline: every public method is called from ONE control
/// thread (the daemon's poll loop, or a test's main thread). The shards
/// are the only other threads, and all control<->shard traffic flows
/// through SpscQueues; counters the control thread may read mid-flight
/// are atomics. The discipline is machine-checked under Clang's
/// -Wthread-safety: public methods require the SessionControlRole
/// capability, the shard handler requires SessionShardRole, and the
/// control-side members are ORP_GUARDED_BY the control role (see
/// support/ThreadSafety.h and DESIGN.md section 16).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SESSION_SESSIONMANAGER_H
#define ORP_SESSION_SESSIONMANAGER_H

#include "session/ProfileSession.h"
#include "support/ThreadSafety.h"
#include "support/WorkerPool.h"
#include "telemetry/Registry.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace orp {
namespace session {

/// The "runs on the session control thread" capability. Exactly one
/// thread per process claims it (the daemon's poll loop or a test's
/// main thread) with a support::ScopedRole; every SessionManager and
/// Daemon entry point requires it.
inline support::ThreadRole SessionControlRole;

/// The "runs on a scheduler shard worker" capability, claimed by each
/// shard's handler lambda around processToken().
inline support::ThreadRole SessionShardRole;

/// Scheduler/limit configuration of one SessionManager.
struct ManagerConfig {
  unsigned Threads = 1;           ///< Scheduler shard count (>= 1).
  size_t IngestQueueCapacity = 8; ///< Per-session bounded ingest queue.
  size_t MemoryBudgetBytes = 0;   ///< LRU-evict over this; 0 = unlimited.
};

/// Result of a submit call. [[nodiscard]]: dropping the status loses a
/// WouldBlock (the block was NOT enqueued and must be retried).
enum class [[nodiscard]] SubmitStatus {
  Ok,         ///< Enqueued.
  WouldBlock, ///< Ingest queue full — retry later (backpressure).
  NotFound,   ///< No such session id.
  Failed,     ///< Session already failed on a corrupt block.
};

using SessionId = uint64_t;

/// Point-in-time view of one managed session (control thread only).
struct SessionStats {
  std::string Name;
  uint64_t Events = 0;       ///< Events injected so far.
  uint64_t Blocks = 0;       ///< Blocks fully processed.
  uint64_t Pending = 0;      ///< Blocks submitted but not yet processed.
  size_t MemEstimateBytes = 0;
  bool Failed = false;
  std::string Error;         ///< Meaningful once Failed.
};

/// Owns and schedules the live sessions.
class SessionManager {
public:
  /// Called for each session evicted by the memory budget, on the
  /// control thread, with the victim's finalized artifacts.
  using EvictionHandler =
      std::function<void(SessionId, SessionArtifacts)>;

  explicit SessionManager(const ManagerConfig &Config);

  /// Closes (and discards) every remaining session.
  ~SessionManager();

  SessionManager(const SessionManager &) = delete;
  SessionManager &operator=(const SessionManager &) = delete;

  void setEvictionHandler(EvictionHandler Handler)
      ORP_REQUIRES(SessionControlRole) {
    OnEvict = std::move(Handler);
  }

  /// Opens a session: builds its pipeline, registers \p Instrs /
  /// \p Sites, pins it to a shard (round-robin). Returns its id.
  [[nodiscard]] SessionId
  open(const std::string &Name, const SessionConfig &Config,
       const std::vector<trace::InstrInfo> &Instrs,
       const std::vector<trace::AllocSiteInfo> &Sites)
      ORP_REQUIRES(SessionControlRole);

  /// Hands one still-encoded event-block payload (copied) to the
  /// session's shard. \p FormatVersion is the .orpt format the payload
  /// is encoded in (v1 interleaved or v2 columnar). Never blocks: a
  /// full ingest queue returns WouldBlock and the caller retries the
  /// same block later.
  SubmitStatus submitBlock(SessionId Id, const uint8_t *Payload,
                           size_t PayloadLen, uint64_t EventCount,
                           uint32_t Crc, uint8_t FormatVersion)
      ORP_REQUIRES(SessionControlRole);

  /// Test hook: occupies one ingest slot (and the session's shard) until
  /// an element is pushed into \p Gate. Makes queue-full backpressure
  /// and busy/idle eviction states deterministic to construct.
  SubmitStatus submitGate(SessionId Id, support::SpscQueue<int> *Gate)
      ORP_REQUIRES(SessionControlRole);

  /// Drains the session's pending blocks, finalizes its profile on the
  /// owning shard, removes it and returns the artifacts. Blocks the
  /// control thread until the shard has caught up.
  SessionArtifacts close(SessionId Id) ORP_REQUIRES(SessionControlRole);

  /// close() with the artifacts discarded (a disconnected client's
  /// orphans). Returns false when \p Id is unknown.
  bool abort(SessionId Id) ORP_REQUIRES(SessionControlRole);

  /// Point-in-time stats of one session; false when unknown.
  [[nodiscard]] bool stats(SessionId Id, SessionStats &Out) const
      ORP_REQUIRES(SessionControlRole);

  size_t numLiveSessions() const ORP_REQUIRES(SessionControlRole) {
    return Sessions.size();
  }
  std::vector<SessionId> liveSessions() const
      ORP_REQUIRES(SessionControlRole);

  /// Sum of the live sessions' memory estimates.
  size_t totalMemoryEstimateBytes() const
      ORP_REQUIRES(SessionControlRole);

  /// Evicts LRU idle sessions while over budget. Runs automatically
  /// after open() and every accepted submit; exposed for tests and for
  /// callers that mutated the budget's inputs out of band. Returns the
  /// number of sessions evicted.
  size_t enforceBudget() ORP_REQUIRES(SessionControlRole);

  const ManagerConfig &config() const { return Config; }

private:
  /// One block (or test gate) travelling control -> shard.
  struct IngestItem {
    enum class Kind : uint8_t { Block, Gate } K = Kind::Block;
    std::vector<uint8_t> Payload;
    uint64_t EventCount = 0;
    uint32_t Crc = 0;
    uint64_t BlockIndex = 0;
    uint8_t FormatVersion = 0;
    support::SpscQueue<int> *Gate = nullptr;
  };

  /// A live session plus its scheduling state.
  struct Managed {
    Managed(SessionId Id, unsigned Shard, size_t QueueCapacity)
        : Id(Id), Shard(Shard), Ingest(QueueCapacity), Result(1) {}

    SessionId Id;
    unsigned Shard;
    /// Touched only by the owning shard worker between open() and the
    /// Result handshake of close().
    std::unique_ptr<ProfileSession> Engine;
    support::SpscQueue<IngestItem> Ingest;
    support::SpscQueue<SessionArtifacts> Result;
    /// Set by the shard worker *after* the Result push: the worker's
    /// very last touch of this struct. close() waits for it before
    /// destroying the session, so the Result queue is never torn down
    /// under the worker's still-returning push.
    std::atomic<bool> FinalizeDone{false};
    std::atomic<uint64_t> Pending{0};
    std::atomic<uint64_t> Events{0};
    std::atomic<uint64_t> Blocks{0};
    std::atomic<size_t> MemEstimate{0};
    std::atomic<bool> Failed{false};
    /// Control-side LRU stamp (bumped on every accepted submit).
    uint64_t LastUsed ORP_GUARDED_BY(SessionControlRole) = 0;
    /// Control-side running block count, labelling diagnostics.
    uint64_t NextBlockIndex ORP_GUARDED_BY(SessionControlRole) = 0;
  };

  /// One unit of shard work: process one ingest item of S, or finalize.
  struct Token {
    Managed *S = nullptr;
    bool Finalize = false;
  };

  void processToken(Token &T) ORP_REQUIRES(SessionShardRole);
  SessionArtifacts closeInternal(Managed &S)
      ORP_REQUIRES(SessionControlRole);
  void publishMetrics(telemetry::Registry &Reg)
      ORP_REQUIRES(SessionControlRole);

  ManagerConfig Config;
  std::vector<std::unique_ptr<support::QueueWorker<Token>>> Shards;
  std::map<SessionId, std::unique_ptr<Managed>> Sessions
      ORP_GUARDED_BY(SessionControlRole);
  SessionId NextId ORP_GUARDED_BY(SessionControlRole) = 1;
  unsigned NextShard ORP_GUARDED_BY(SessionControlRole) = 0;
  uint64_t UseClock ORP_GUARDED_BY(SessionControlRole) = 0;
  EvictionHandler OnEvict ORP_GUARDED_BY(SessionControlRole);
  telemetry::CollectorHandle Collector;
};

} // namespace session
} // namespace orp

#endif // ORP_SESSION_SESSIONMANAGER_H
