//===- session/Client.cpp - orp-traced client ----------------------------===//

#include "session/Client.h"

#include "support/VarInt.h"

#include <cerrno>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace orp;
using namespace orp::session;

namespace {

/// EVENTS frames allowed in flight before waiting for acks. Small: the
/// point is to overlap the socket with the daemon's shards, not to
/// buffer the trace client-side.
constexpr size_t kAckWindow = 4;

} // namespace

Client::~Client() { disconnect(); }

void Client::disconnect() {
  if (Fd >= 0) {
    ::close(Fd);
    Fd = -1;
  }
  Parser = FrameParser();
}

bool Client::connect(const std::string &SocketPath, std::string &Err) {
  disconnect();
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.empty() || SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: '" + SocketPath + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) !=
      0) {
    Err = "cannot connect to '" + SocketPath +
          "': " + std::strerror(errno);
    disconnect();
    return false;
  }
  return true;
}

bool Client::sendFrame(FrameType Type, const std::vector<uint8_t> &Payload,
                       std::string &Err) {
  std::vector<uint8_t> Wire;
  appendFrame(Type, Payload, Wire);
  size_t Sent = 0;
  while (Sent < Wire.size()) {
    ssize_t N = ::send(Fd, Wire.data() + Sent, Wire.size() - Sent,
                       MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("send: ") + std::strerror(errno);
      return false;
    }
    Sent += static_cast<size_t>(N);
  }
  return true;
}

bool Client::recvFrame(Frame &Out, std::string &Err) {
  for (;;) {
    if (Parser.next(Out))
      return true;
    if (Parser.failed()) {
      Err = Parser.error();
      return false;
    }
    uint8_t Buf[64 * 1024];
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      Parser.feed(Buf, static_cast<size_t>(N));
      continue;
    }
    if (N < 0 && errno == EINTR)
      continue;
    Err = N == 0 ? "daemon closed the connection"
                 : std::string("recv: ") + std::strerror(errno);
    return false;
  }
}

bool Client::recvReply(FrameType Expected, Frame &Out, std::string &Err) {
  if (!recvFrame(Out, Err))
    return false;
  if (Out.Type == FrameType::ReplyErr) {
    Err.assign(Out.Payload.begin(), Out.Payload.end());
    return false;
  }
  if (Out.Type != Expected) {
    Err = "unexpected reply type " +
          std::to_string(static_cast<unsigned>(Out.Type));
    return false;
  }
  return true;
}

bool Client::openSession(const OpenRequest &Req, uint64_t &IdOut,
                         std::string &Err) {
  std::vector<uint8_t> Payload;
  encodeOpen(Req, Payload);
  if (!sendFrame(FrameType::Open, Payload, Err))
    return false;
  Frame Reply;
  if (!recvReply(FrameType::ReplyOk, Reply, Err))
    return false;
  size_t Pos = 0;
  if (!tryDecodeULEB128(Reply.Payload.data(), Reply.Payload.size(), Pos,
                        IdOut)) {
    Err = "OPEN reply: truncated";
    return false;
  }
  return true;
}

bool Client::submitBlock(uint64_t Id,
                         const traceio::TraceReader::RawBlock &B,
                         uint8_t FormatVersion, std::string &Err) {
  std::vector<uint8_t> Payload;
  encodeEventsHeader(Id, B.EventCount, FormatVersion, B.Crc, Payload);
  Payload.insert(Payload.end(), B.Payload, B.Payload + B.PayloadLen);
  if (!sendFrame(FrameType::Events, Payload, Err))
    return false;
  Frame Reply;
  return recvReply(FrameType::ReplyOk, Reply, Err);
}

bool Client::submitTrace(uint64_t Id, traceio::TraceReader &Reader,
                         std::string &Err) {
  size_t InFlight = 0;
  auto AwaitAck = [&]() -> bool {
    Frame Reply;
    if (!recvReply(FrameType::ReplyOk, Reply, Err))
      return false;
    --InFlight;
    return true;
  };
  for (size_t I = 0; I != Reader.numEventBlocks(); ++I) {
    traceio::TraceReader::RawBlock B = Reader.rawBlock(I);
    std::vector<uint8_t> Payload;
    // The trace's own format version rides along: the daemon decodes
    // the forwarded bytes exactly as a local replay would.
    encodeEventsHeader(Id, B.EventCount, Reader.info().Version, B.Crc,
                       Payload);
    Payload.insert(Payload.end(), B.Payload, B.Payload + B.PayloadLen);
    if (InFlight == kAckWindow && !AwaitAck())
      return false;
    if (!sendFrame(FrameType::Events, Payload, Err))
      return false;
    ++InFlight;
  }
  while (InFlight)
    if (!AwaitAck())
      return false;
  return true;
}

bool Client::snapshot(uint8_t Format, const std::string &SessionName,
                      std::string &TextOut, std::string &Err) {
  SnapshotRequest Req;
  Req.Format = Format;
  Req.SessionName = SessionName;
  std::vector<uint8_t> Payload;
  encodeSnapshot(Req, Payload);
  if (!sendFrame(FrameType::Snapshot, Payload, Err))
    return false;
  Frame Reply;
  if (!recvReply(FrameType::ReplySnapshot, Reply, Err))
    return false;
  TextOut.assign(Reply.Payload.begin(), Reply.Payload.end());
  return true;
}

bool Client::closeSession(uint64_t Id, CloseSummary &Out, std::string &Err) {
  std::vector<uint8_t> Payload;
  encodeULEB128(Id, Payload);
  if (!sendFrame(FrameType::Close, Payload, Err))
    return false;
  Frame Reply;
  if (!recvReply(FrameType::ReplyOk, Reply, Err))
    return false;
  return decodeCloseSummary(Reply.Payload.data(), Reply.Payload.size(), Out,
                            Err);
}
