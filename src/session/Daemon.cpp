//===- session/Daemon.cpp - orp-traced server core -----------------------===//

#include "session/Daemon.h"

#include "support/LogSink.h"
#include "support/VarInt.h"
#include "telemetry/Registry.h"

#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace orp;
using namespace orp::session;
using support::LogLevel;
using support::logMessage;

namespace {

/// Frames a connection may hold parsed-but-unprocessed before the
/// daemon stops reading its socket (bounds memory per stalled client).
constexpr size_t kMaxPendingFrames = 32;

bool setNonBlocking(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  return Flags >= 0 && ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK) == 0;
}

} // namespace

Daemon::Daemon(const DaemonConfig &Config)
    : Config(Config), Manager(Config.Manager) {
  // Construction happens on the (future) control thread.
  support::ScopedRole Role(SessionControlRole);
  Manager.setEvictionHandler(
      [this](SessionId, SessionArtifacts A) { writeArtifacts(A); });
}

Daemon::~Daemon() {
  support::ScopedRole Role(SessionControlRole);
  for (auto &C : Conns)
    if (C->Fd >= 0)
      ::close(C->Fd);
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ::unlink(Config.SocketPath.c_str());
  }
}

bool Daemon::start(std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Config.SocketPath.empty() ||
      Config.SocketPath.size() >= sizeof(Addr.sun_path)) {
    Err = "socket path too long: '" + Config.SocketPath + "'";
    return false;
  }
  std::memcpy(Addr.sun_path, Config.SocketPath.c_str(),
              Config.SocketPath.size() + 1);
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0) {
    Err = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  ::unlink(Config.SocketPath.c_str()); // Stale socket from a dead run.
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr),
             sizeof(Addr)) != 0 ||
      ::listen(ListenFd, 16) != 0 || !setNonBlocking(ListenFd)) {
    Err = "bind/listen '" + Config.SocketPath +
          "': " + std::strerror(errno);
    ::close(ListenFd);
    ListenFd = -1;
    return false;
  }
  return true;
}

void Daemon::run(const std::function<bool()> &StopRequested) {
  while (!StopRequested()) {
    std::vector<pollfd> Fds;
    Fds.push_back(pollfd{ListenFd, POLLIN, 0});
    for (auto &C : Conns) {
      short Events = 0;
      // Backpressure: a connection with a blocked head frame (or too
      // many queued) is not read from until the shard drains.
      if (C->PendingIn.size() < kMaxPendingFrames && !C->Parser.failed())
        Events |= POLLIN;
      if (C->OutPos < C->OutBuf.size())
        Events |= POLLOUT;
      Fds.push_back(pollfd{C->Fd, Events, 0});
    }
    int Ready = ::poll(Fds.data(), Fds.size(), /*timeout ms=*/50);
    if (Ready < 0 && errno != EINTR)
      break;
    if (Fds[0].revents & POLLIN)
      acceptNew();
    // Only the connections that were polled: acceptNew() may have grown
    // Conns past the end of Fds; newcomers get their first service on
    // the next pass.
    size_t NumPolled = Fds.size() - 1;
    for (size_t I = 0; I != NumPolled; ++I) {
      Conn &C = *Conns[I];
      short Re = Fds[I + 1].revents;
      if (Re & (POLLHUP | POLLERR))
        C.Dead = true;
      if (!C.Dead && (Re & POLLIN))
        readFrom(C);
      // Retry queued frames every pass — the shard may have drained the
      // session's ingest queue since the last poll tick.
      if (!C.Dead)
        processPending(C);
      if (!C.Dead && C.OutPos < C.OutBuf.size())
        writeTo(C);
      if (C.Dead)
        dropConn(C);
    }
    for (size_t I = Conns.size(); I-- > 0;)
      if (Conns[I]->Fd < 0)
        Conns.erase(Conns.begin() + static_cast<ptrdiff_t>(I));
  }
  for (auto &C : Conns)
    dropConn(*C);
  Conns.clear();
}

void Daemon::acceptNew() {
  for (;;) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      return;
    if (!setNonBlocking(Fd)) {
      ::close(Fd);
      continue;
    }
    auto C = std::make_unique<Conn>();
    C->Fd = Fd;
    Conns.push_back(std::move(C));
    telemetry::Registry::global().counter("daemon.connections").add();
  }
}

void Daemon::readFrom(Conn &C) {
  uint8_t Buf[64 * 1024];
  for (;;) {
    ssize_t N = ::recv(C.Fd, Buf, sizeof(Buf), 0);
    if (N > 0) {
      C.Parser.feed(Buf, static_cast<size_t>(N));
      Frame F;
      while (C.Parser.next(F))
        C.PendingIn.push_back(std::move(F));
      if (C.Parser.failed()) {
        logMessage(LogLevel::Warn, "orp-traced: dropping client: %s",
                   C.Parser.error().c_str());
        C.Dead = true;
        return;
      }
      if (C.PendingIn.size() >= kMaxPendingFrames)
        return;
      continue;
    }
    if (N == 0) { // Orderly shutdown (or mid-stream disconnect).
      C.Dead = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return;
    if (errno == EINTR)
      continue;
    C.Dead = true;
    return;
  }
}

void Daemon::writeTo(Conn &C) {
  while (C.OutPos < C.OutBuf.size()) {
    ssize_t N = ::send(C.Fd, C.OutBuf.data() + C.OutPos,
                       C.OutBuf.size() - C.OutPos, MSG_NOSIGNAL);
    if (N > 0) {
      C.OutPos += static_cast<size_t>(N);
      continue;
    }
    if (N < 0 && (errno == EAGAIN || errno == EWOULDBLOCK))
      return;
    if (N < 0 && errno == EINTR)
      continue;
    C.Dead = true;
    return;
  }
  C.OutBuf.clear();
  C.OutPos = 0;
}

void Daemon::processPending(Conn &C) {
  while (!C.PendingIn.empty()) {
    if (!handleFrame(C, C.PendingIn.front()))
      return; // Head blocked on backpressure; retried next pass.
    C.PendingIn.pop_front();
    if (C.Dead)
      return;
  }
}

bool Daemon::handleFrame(Conn &C, const Frame &F) {
  telemetry::Registry::global().counter("daemon.frames").add();
  switch (F.Type) {
  case FrameType::Open:
    handleOpen(C, F);
    return true;
  case FrameType::Events:
    return handleEvents(C, F);
  case FrameType::Snapshot:
    handleSnapshot(C, F);
    return true;
  case FrameType::Close:
    handleClose(C, F);
    return true;
  default:
    replyErr(C, "unexpected frame type " +
                    std::to_string(static_cast<unsigned>(F.Type)));
    return true;
  }
}

void Daemon::handleOpen(Conn &C, const Frame &F) {
  OpenRequest Req;
  std::string Err;
  if (!decodeOpen(F.Payload.data(), F.Payload.size(), Req, Err)) {
    replyErr(C, Err);
    return;
  }
  // The engine keeps sessions serial; parallelism is across sessions.
  Req.Config.ProfilerThreads = 1;
  SessionId Id = Manager.open(Req.Name, Req.Config, Req.Instrs, Req.Sites);
  C.Owned.push_back(Id);
  std::vector<uint8_t> Payload;
  encodeULEB128(Id, Payload);
  reply(C, FrameType::ReplyOk, Payload);
}

bool Daemon::handleEvents(Conn &C, const Frame &F) {
  EventsHeader H;
  std::string Err;
  if (!decodeEventsHeader(F.Payload.data(), F.Payload.size(), H, Err)) {
    replyErr(C, Err);
    return true;
  }
  SubmitStatus St = Manager.submitBlock(
      H.SessionId, F.Payload.data() + H.PayloadOffset,
      F.Payload.size() - H.PayloadOffset, H.EventCount, H.Crc,
      H.FormatVersion);
  switch (St) {
  case SubmitStatus::Ok:
    reply(C, FrameType::ReplyOk, {});
    return true;
  case SubmitStatus::WouldBlock:
    return false; // Keep the frame queued; stall this connection only.
  case SubmitStatus::NotFound:
    replyErr(C, "unknown session id " + std::to_string(H.SessionId));
    return true;
  case SubmitStatus::Failed: {
    SessionStats Stats;
    std::string Detail = Manager.stats(H.SessionId, Stats)
                             ? Stats.Error
                             : std::string("session failed");
    replyErr(C, "session " + std::to_string(H.SessionId) +
                    " failed: " + Detail);
    return true;
  }
  }
  return true;
}

void Daemon::handleSnapshot(Conn &C, const Frame &F) {
  SnapshotRequest Req;
  std::string Err;
  if (!decodeSnapshot(F.Payload.data(), F.Payload.size(), Req, Err)) {
    replyErr(C, Err);
    return;
  }
  // This thread is the manager's control thread, so the registry's
  // snapshot discipline holds here.
  telemetry::MetricsSnapshot S = telemetry::Registry::global().snapshot();
  if (!Req.SessionName.empty())
    S = S.filterByPrefix("session." + Req.SessionName + ".");
  std::string Text;
  switch (Req.Format) {
  case 0:
    Text = S.toJson(true);
    break;
  case 1:
    Text = S.toJson(false);
    break;
  default:
    Text = S.toPrometheus();
    break;
  }
  std::vector<uint8_t> Payload(Text.begin(), Text.end());
  reply(C, FrameType::ReplySnapshot, Payload);
}

void Daemon::handleClose(Conn &C, const Frame &F) {
  size_t Pos = 0;
  uint64_t Id;
  if (!tryDecodeULEB128(F.Payload.data(), F.Payload.size(), Pos, Id)) {
    replyErr(C, "CLOSE frame: truncated");
    return;
  }
  bool Owned = false;
  for (size_t I = 0; I != C.Owned.size(); ++I)
    if (C.Owned[I] == Id) {
      C.Owned.erase(C.Owned.begin() + static_cast<ptrdiff_t>(I));
      Owned = true;
      break;
    }
  if (!Owned) {
    replyErr(C, "session " + std::to_string(Id) +
                    " not open on this connection");
    return;
  }
  SessionArtifacts A = Manager.close(Id);
  if (!A.Failed)
    writeArtifacts(A);
  CloseSummary Summary;
  Summary.Events = A.Events;
  Summary.Failed = A.Failed;
  Summary.Error = A.Error;
  Summary.Omsg = std::move(A.Omsg);
  Summary.Leap = std::move(A.Leap);
  std::vector<uint8_t> Payload;
  encodeCloseSummary(Summary, Payload);
  reply(C, FrameType::ReplyOk, Payload);
}

void Daemon::reply(Conn &C, FrameType Type,
                   const std::vector<uint8_t> &Payload) {
  appendFrame(Type, Payload, C.OutBuf);
  writeTo(C); // Opportunistic flush; leftovers drain on POLLOUT.
}

void Daemon::replyErr(Conn &C, const std::string &Message) {
  telemetry::Registry::global().counter("daemon.errors").add();
  std::vector<uint8_t> Payload(Message.begin(), Message.end());
  reply(C, FrameType::ReplyErr, Payload);
}

void Daemon::dropConn(Conn &C) {
  if (C.Fd < 0)
    return;
  // A disconnected client's unclosed sessions are aborted — their
  // pipelines drain and die without touching any other session.
  for (SessionId Id : C.Owned)
    Manager.abort(Id);
  C.Owned.clear();
  ::close(C.Fd);
  C.Fd = -1;
}

std::string Daemon::artifactPath(const std::string &SessionName,
                                 const char *Extension) const {
  if (Config.OutDir.empty())
    return std::string();
  return Config.OutDir + "/" + SessionName + "." + Extension;
}

void Daemon::writeArtifacts(const SessionArtifacts &A) {
  if (Config.OutDir.empty())
    return;
  auto WriteOne = [&](const std::vector<uint8_t> &Bytes,
                      const char *Extension) {
    if (Bytes.empty())
      return;
    std::string Path = artifactPath(A.Name, Extension);
    // orp-lint: allow(endian-io): writes opaque, already-serialized
    // artifact images; all field encoding happened inside serialize().
    std::FILE *Out = std::fopen(Path.c_str(), "wb");
    if (!Out || std::fwrite(Bytes.data(), 1, Bytes.size(), Out) !=
                    Bytes.size()) {
      logMessage(LogLevel::Error, "orp-traced: cannot write '%s'",
                 Path.c_str());
      if (Out)
        std::fclose(Out);
      return;
    }
    std::fclose(Out);
  };
  WriteOne(A.Omsg, "omsg");
  WriteOne(A.Leap, "leap");
}
