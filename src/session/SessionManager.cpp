//===- session/SessionManager.cpp - Many sessions, few threads -----------===//

#include "session/SessionManager.h"

#include "support/Error.h"
#include "support/LogSink.h"

using namespace orp;
using namespace orp::session;

SessionManager::SessionManager(const ManagerConfig &Config)
    : Config(Config) {
  unsigned Threads = Config.Threads ? Config.Threads : 1;
  this->Config.Threads = Threads;
  if (!this->Config.IngestQueueCapacity)
    this->Config.IngestQueueCapacity = 1;
  Shards.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Shards.push_back(std::make_unique<support::QueueWorker<Token>>(
        /*QueueCapacity=*/64, [this](Token &T) {
          // Each shard thread claims the shard role for the handler.
          support::ScopedRole Role(SessionShardRole);
          processToken(T);
        }));
  Collector = telemetry::Registry::global().addCollector(
      [this](telemetry::Registry &Reg) {
        // Snapshots run on the control thread (the registry's snapshot
        // discipline), so the collector may claim the control role.
        support::ScopedRole Role(SessionControlRole);
        publishMetrics(Reg);
      });
}

SessionManager::~SessionManager() {
  // Destruction happens on the control thread, like every entry point.
  support::ScopedRole Role(SessionControlRole);
  while (!Sessions.empty())
    abort(Sessions.begin()->first);
  // Release the collector before the shards: a snapshot taken while
  // workers still run must not walk dying session state.
  Collector.release();
  for (auto &Shard : Shards)
    Shard->finish();
}

SessionId SessionManager::open(
    const std::string &Name, const SessionConfig &SessionCfg,
    const std::vector<trace::InstrInfo> &Instrs,
    const std::vector<trace::AllocSiteInfo> &Sites) {
  SessionId Id = NextId++;
  unsigned Shard = NextShard++ % static_cast<unsigned>(Shards.size());
  auto S = std::make_unique<Managed>(Id, Shard,
                                     Config.IngestQueueCapacity);
  std::string SessionName = Name.empty() ? "s" + std::to_string(Id) : Name;
  // Built on the control thread; the queue handoff of the first token
  // publishes it to the shard worker.
  S->Engine = std::make_unique<ProfileSession>(SessionName, SessionCfg);
  S->Engine->registerProbeTables(Instrs, Sites);
  S->MemEstimate.store(S->Engine->memoryEstimateBytes(),
                       std::memory_order_relaxed);
  S->LastUsed = ++UseClock;
  Sessions.emplace(Id, std::move(S));
  telemetry::Registry::global().counter("session.opened").add();
  enforceBudget();
  return Id;
}

SubmitStatus SessionManager::submitBlock(SessionId Id,
                                         const uint8_t *Payload,
                                         size_t PayloadLen,
                                         uint64_t EventCount, uint32_t Crc,
                                         uint8_t FormatVersion) {
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return SubmitStatus::NotFound;
  Managed &S = *It->second;
  if (S.Failed.load(std::memory_order_acquire))
    return SubmitStatus::Failed;
  IngestItem Item;
  Item.K = IngestItem::Kind::Block;
  Item.Payload.assign(Payload, Payload + PayloadLen);
  Item.EventCount = EventCount;
  Item.Crc = Crc;
  Item.BlockIndex = S.NextBlockIndex;
  Item.FormatVersion = FormatVersion;
  if (!S.Ingest.tryPush(std::move(Item))) {
    telemetry::Registry::global()
        .counter("session.submit_backpressure")
        .add();
    return SubmitStatus::WouldBlock;
  }
  ++S.NextBlockIndex;
  S.Pending.fetch_add(1, std::memory_order_relaxed);
  S.LastUsed = ++UseClock;
  if (!Shards[S.Shard]->submit(Token{&S, /*Finalize=*/false}))
    ORP_FATAL_ERROR("session: shard worker finished with sessions live");
  enforceBudget();
  return SubmitStatus::Ok;
}

SubmitStatus SessionManager::submitGate(SessionId Id,
                                        support::SpscQueue<int> *Gate) {
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return SubmitStatus::NotFound;
  Managed &S = *It->second;
  IngestItem Item;
  Item.K = IngestItem::Kind::Gate;
  Item.Gate = Gate;
  if (!S.Ingest.tryPush(std::move(Item)))
    return SubmitStatus::WouldBlock;
  S.Pending.fetch_add(1, std::memory_order_relaxed);
  S.LastUsed = ++UseClock;
  if (!Shards[S.Shard]->submit(Token{&S, /*Finalize=*/false}))
    ORP_FATAL_ERROR("session: shard worker finished with sessions live");
  return SubmitStatus::Ok;
}

void SessionManager::processToken(Token &T) {
  Managed &S = *T.S;
  if (T.Finalize) {
    // The Result queue is never close()d, so this push cannot fail
    // while the handshake below is still owed.
    if (!S.Result.push(S.Engine->finalize()))
      ORP_FATAL_ERROR("session: result queue closed during finalize");
    S.FinalizeDone.store(true, std::memory_order_release);
    return;
  }
  IngestItem Item;
  if (!S.Ingest.tryPop(Item))
    return; // Unreachable: exactly one token per pushed item.
  if (Item.K == IngestItem::Kind::Gate) {
    int Unused;
    // Parks this shard until the test releases (or closes) the gate;
    // either wake is fine, so the popped value is irrelevant.
    (void)Item.Gate->pop(Unused);
  } else if (!S.Failed.load(std::memory_order_relaxed)) {
    if (S.Engine->injectBlock(Item.Payload.data(), Item.Payload.size(),
                              Item.EventCount, Item.Crc, Item.BlockIndex,
                              Item.FormatVersion)) {
      S.Events.store(S.Engine->eventsInjected(),
                     std::memory_order_relaxed);
      S.Blocks.fetch_add(1, std::memory_order_relaxed);
      S.MemEstimate.store(S.Engine->memoryEstimateBytes(),
                          std::memory_order_relaxed);
    } else {
      // error() is written before this release store and never again;
      // the control thread reads it only after an acquire load.
      S.Failed.store(true, std::memory_order_release);
    }
  }
  S.Pending.fetch_sub(1, std::memory_order_release);
}

SessionArtifacts SessionManager::closeInternal(Managed &S) {
  // The shard queue is FIFO: the finalize token runs after every
  // pending ingest token of this session.
  if (!Shards[S.Shard]->submit(Token{&S, /*Finalize=*/true}))
    ORP_FATAL_ERROR("session: shard worker finished with sessions live");
  SessionArtifacts A;
  if (!S.Result.pop(A))
    ORP_FATAL_ERROR("session: result queue closed before finalize");
  // The worker is at most a few instructions from done (the pop can
  // overtake the push's notify tail); spin out that window before the
  // caller frees the session.
  while (!S.FinalizeDone.load(std::memory_order_acquire)) {
  }
  return A;
}

SessionArtifacts SessionManager::close(SessionId Id) {
  auto It = Sessions.find(Id);
  if (It == Sessions.end()) {
    SessionArtifacts A;
    A.Failed = true;
    A.Error = "unknown session id " + std::to_string(Id);
    return A;
  }
  SessionArtifacts A = closeInternal(*It->second);
  Sessions.erase(It);
  telemetry::Registry::global().counter("session.closed").add();
  return A;
}

bool SessionManager::abort(SessionId Id) {
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return false;
  closeInternal(*It->second);
  Sessions.erase(It);
  telemetry::Registry::global().counter("session.aborted").add();
  return true;
}

bool SessionManager::stats(SessionId Id, SessionStats &Out) const {
  auto It = Sessions.find(Id);
  if (It == Sessions.end())
    return false;
  const Managed &S = *It->second;
  Out.Name = S.Engine->name();
  Out.Events = S.Events.load(std::memory_order_relaxed);
  Out.Blocks = S.Blocks.load(std::memory_order_relaxed);
  Out.Pending = S.Pending.load(std::memory_order_relaxed);
  Out.MemEstimateBytes = S.MemEstimate.load(std::memory_order_relaxed);
  Out.Failed = S.Failed.load(std::memory_order_acquire);
  Out.Error = Out.Failed ? S.Engine->error() : std::string();
  return true;
}

std::vector<SessionId> SessionManager::liveSessions() const {
  std::vector<SessionId> Ids;
  Ids.reserve(Sessions.size());
  for (const auto &Entry : Sessions)
    Ids.push_back(Entry.first);
  return Ids;
}

size_t SessionManager::totalMemoryEstimateBytes() const {
  size_t Total = 0;
  for (const auto &Entry : Sessions)
    Total += Entry.second->MemEstimate.load(std::memory_order_relaxed);
  return Total;
}

size_t SessionManager::enforceBudget() {
  if (!Config.MemoryBudgetBytes)
    return 0;
  size_t Evicted = 0;
  while (Sessions.size() > 1 &&
         totalMemoryEstimateBytes() > Config.MemoryBudgetBytes) {
    // LRU among *idle* sessions only: a session with blocks in flight
    // is mid-stream and exempt. With no idle victim the budget yields
    // — the busy sessions will drain and a later submit re-checks.
    Managed *Victim = nullptr;
    for (const auto &Entry : Sessions) {
      Managed &S = *Entry.second;
      if (S.Pending.load(std::memory_order_acquire) != 0)
        continue;
      if (!Victim || S.LastUsed < Victim->LastUsed)
        Victim = &S;
    }
    if (!Victim)
      break;
    SessionId Id = Victim->Id;
    SessionArtifacts A = closeInternal(*Victim);
    Sessions.erase(Id);
    telemetry::Registry::global().counter("session.evicted").add();
    support::logMessage(support::LogLevel::Info,
                        "session: evicted '%s' under memory budget",
                        A.Name.c_str());
    if (OnEvict)
      OnEvict(Id, std::move(A));
    ++Evicted;
  }
  return Evicted;
}

void SessionManager::publishMetrics(telemetry::Registry &Reg) {
  // Runs at snapshot() time on the control thread (the registry's
  // snapshot discipline), so control-side state is safe to read here.
  Reg.gauge("session.live").set(static_cast<int64_t>(Sessions.size()));
  Reg.gauge("session.mem_estimate_bytes")
      .set(static_cast<int64_t>(totalMemoryEstimateBytes()));
  Reg.gauge("session.shards")
      .set(static_cast<int64_t>(Shards.size()));
  for (const auto &Entry : Sessions) {
    const Managed &S = *Entry.second;
    const std::string Prefix = "session." + S.Engine->name() + ".";
    Reg.gauge(Prefix + "events")
        .set(static_cast<int64_t>(S.Events.load(std::memory_order_relaxed)));
    Reg.gauge(Prefix + "blocks")
        .set(static_cast<int64_t>(S.Blocks.load(std::memory_order_relaxed)));
    Reg.gauge(Prefix + "pending")
        .set(static_cast<int64_t>(S.Pending.load(std::memory_order_relaxed)));
    Reg.gauge(Prefix + "mem_estimate_bytes")
        .set(static_cast<int64_t>(
            S.MemEstimate.load(std::memory_order_relaxed)));
    Reg.gauge(Prefix + "failed")
        .set(S.Failed.load(std::memory_order_relaxed) ? 1 : 0);
    support::QueueTelemetry QT = S.Ingest.telemetry();
    Reg.gauge(Prefix + "ingest_depth")
        .set(static_cast<int64_t>(QT.Depth));
    Reg.gauge(Prefix + "ingest_capacity")
        .set(static_cast<int64_t>(QT.Capacity));
    Reg.gauge(Prefix + "ingest_high_watermark")
        .set(static_cast<int64_t>(QT.HighWatermark));
  }
}
