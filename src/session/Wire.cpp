//===- session/Wire.cpp - orp-traced framed protocol ---------------------===//

#include "session/Wire.h"

#include "support/Endian.h"
#include "support/VarInt.h"
#include "traceio/RegistryCodec.h"

#include <cstring>

using namespace orp;
using namespace orp::session;

void session::appendFrame(FrameType Type,
                          const std::vector<uint8_t> &Payload,
                          std::vector<uint8_t> &Out) {
  appendLE32(static_cast<uint32_t>(Payload.size() + 1), Out);
  Out.push_back(static_cast<uint8_t>(Type));
  Out.insert(Out.end(), Payload.begin(), Payload.end());
}

void FrameParser::feed(const uint8_t *Data, size_t Len) {
  Buf.insert(Buf.end(), Data, Data + Len);
}

bool FrameParser::next(Frame &Out) {
  if (!Err.empty())
    return false;
  // Compact the consumed prefix once it dominates the buffer, so a
  // long-lived connection does not grow its buffer without bound.
  if (Pos > 4096 && Pos * 2 > Buf.size()) {
    Buf.erase(Buf.begin(), Buf.begin() + static_cast<ptrdiff_t>(Pos));
    Pos = 0;
  }
  if (Buf.size() - Pos < 4)
    return false;
  uint32_t Length = readLE32(Buf.data() + Pos);
  if (Length == 0 || Length > kMaxFrameLength) {
    Err = "bad frame length " + std::to_string(Length);
    return false;
  }
  if (Buf.size() - Pos < 4u + Length)
    return false;
  Out.Type = static_cast<FrameType>(Buf[Pos + 4]);
  Out.Payload.assign(Buf.begin() + static_cast<ptrdiff_t>(Pos + 5),
                     Buf.begin() + static_cast<ptrdiff_t>(Pos + 4 + Length));
  Pos += 4u + Length;
  return true;
}

namespace {

void appendString(const std::string &S, std::vector<uint8_t> &Out) {
  encodeULEB128(S.size(), Out);
  Out.insert(Out.end(), S.begin(), S.end());
}

bool readString(const uint8_t *Data, size_t Len, size_t &Pos,
                std::string &Out) {
  uint64_t StrLen;
  if (!tryDecodeULEB128(Data, Len, Pos, StrLen) || StrLen > Len - Pos)
    return false;
  Out.assign(Data + Pos, Data + Pos + StrLen);
  Pos += StrLen;
  return true;
}

void appendBytes(const std::vector<uint8_t> &B, std::vector<uint8_t> &Out) {
  encodeULEB128(B.size(), Out);
  Out.insert(Out.end(), B.begin(), B.end());
}

bool readBytes(const uint8_t *Data, size_t Len, size_t &Pos,
               std::vector<uint8_t> &Out) {
  uint64_t BytesLen;
  if (!tryDecodeULEB128(Data, Len, Pos, BytesLen) || BytesLen > Len - Pos)
    return false;
  Out.assign(Data + Pos, Data + Pos + BytesLen);
  Pos += BytesLen;
  return true;
}

constexpr uint8_t kProfilerWhomp = 1;
constexpr uint8_t kProfilerLeap = 2;

} // namespace

void session::encodeOpen(const OpenRequest &Req, std::vector<uint8_t> &Out) {
  appendString(Req.Name, Out);
  Out.push_back(static_cast<uint8_t>(Req.Config.Policy));
  appendLE64(Req.Config.Seed, Out);
  uint8_t Mask = (Req.Config.EnableWhomp ? kProfilerWhomp : 0) |
                 (Req.Config.EnableLeap ? kProfilerLeap : 0);
  Out.push_back(Mask);
  encodeULEB128(Req.Config.MaxLmads, Out);
  traceio::appendRegistryPayload(Req.Instrs, Req.Sites, Out);
}

bool session::decodeOpen(const uint8_t *Data, size_t Len, OpenRequest &Out,
                         std::string &Err) {
  size_t Pos = 0;
  if (!readString(Data, Len, Pos, Out.Name) || Len - Pos < 10) {
    Err = "OPEN frame: truncated header";
    return false;
  }
  Out.Config.Policy = static_cast<memsim::AllocPolicy>(Data[Pos++]);
  Out.Config.Seed = readLE64(Data + Pos);
  Pos += 8;
  uint8_t Mask = Data[Pos++];
  Out.Config.EnableWhomp = (Mask & kProfilerWhomp) != 0;
  Out.Config.EnableLeap = (Mask & kProfilerLeap) != 0;
  uint64_t MaxLmads;
  if (!tryDecodeULEB128(Data, Len, Pos, MaxLmads)) {
    Err = "OPEN frame: truncated header";
    return false;
  }
  Out.Config.MaxLmads = static_cast<unsigned>(MaxLmads);
  std::string PayloadErr;
  if (!traceio::parseRegistryPayload(Data + Pos, Len - Pos, Out.Instrs,
                                     Out.Sites, PayloadErr)) {
    Err = "OPEN frame: " + PayloadErr;
    return false;
  }
  return true;
}

void session::encodeEventsHeader(uint64_t SessionId, uint64_t EventCount,
                                 uint8_t FormatVersion, uint32_t Crc,
                                 std::vector<uint8_t> &Out) {
  encodeULEB128(SessionId, Out);
  encodeULEB128(EventCount, Out);
  Out.push_back(FormatVersion);
  appendLE32(Crc, Out);
}

bool session::decodeEventsHeader(const uint8_t *Data, size_t Len,
                                 EventsHeader &Out, std::string &Err) {
  size_t Pos = 0;
  if (!tryDecodeULEB128(Data, Len, Pos, Out.SessionId) ||
      !tryDecodeULEB128(Data, Len, Pos, Out.EventCount) || Len - Pos < 5) {
    Err = "EVENTS frame: truncated header";
    return false;
  }
  Out.FormatVersion = Data[Pos];
  Out.Crc = readLE32(Data + Pos + 1);
  Out.PayloadOffset = Pos + 5;
  return true;
}

void session::encodeSnapshot(const SnapshotRequest &Req,
                             std::vector<uint8_t> &Out) {
  Out.push_back(Req.Format);
  appendString(Req.SessionName, Out);
}

bool session::decodeSnapshot(const uint8_t *Data, size_t Len,
                             SnapshotRequest &Out, std::string &Err) {
  if (Len < 1) {
    Err = "SNAPSHOT frame: empty payload";
    return false;
  }
  Out.Format = Data[0];
  size_t Pos = 1;
  if (!readString(Data, Len, Pos, Out.SessionName) || Pos != Len) {
    Err = "SNAPSHOT frame: malformed session name";
    return false;
  }
  return true;
}

void session::encodeCloseSummary(const CloseSummary &Summary,
                                 std::vector<uint8_t> &Out) {
  encodeULEB128(Summary.Events, Out);
  Out.push_back(Summary.Failed ? 1 : 0);
  appendString(Summary.Error, Out);
  appendBytes(Summary.Omsg, Out);
  appendBytes(Summary.Leap, Out);
}

bool session::decodeCloseSummary(const uint8_t *Data, size_t Len,
                                 CloseSummary &Out, std::string &Err) {
  size_t Pos = 0;
  if (!tryDecodeULEB128(Data, Len, Pos, Out.Events) || Pos >= Len) {
    Err = "CLOSE reply: truncated";
    return false;
  }
  Out.Failed = Data[Pos++] != 0;
  if (!readString(Data, Len, Pos, Out.Error) ||
      !readBytes(Data, Len, Pos, Out.Omsg) ||
      !readBytes(Data, Len, Pos, Out.Leap) || Pos != Len) {
    Err = "CLOSE reply: truncated";
    return false;
  }
  return true;
}
