//===- session/ProfileSession.cpp - One profiling session ----------------===//

#include "session/ProfileSession.h"

#include "leap/LeapProfileData.h"
#include "traceio/BlockCodec.h"
#include "traceio/TraceReplayer.h"
#include "whomp/OmsgArchive.h"

using namespace orp;
using namespace orp::session;

ProfileSession::ProfileSession(std::string Name, const SessionConfig &Config)
    : Name(std::move(Name)), Config(Config),
      Core(std::make_unique<core::ProfilingSession>(Config.Policy,
                                                    Config.Seed)) {
  if (Config.EnableWhomp) {
    Whomp = std::make_unique<whomp::WhompProfiler>(Config.ProfilerThreads);
    Core->addConsumer(Whomp.get());
  }
  if (Config.EnableLeap) {
    Leap = std::make_unique<leap::LeapProfiler>(Config.MaxLmads,
                                                Config.ProfilerThreads);
    Core->addConsumer(Leap.get());
  }
}

ProfileSession::~ProfileSession() {
  // Threaded profilers own their grammars/substreams until finish();
  // make destruction safe for sessions that were never finalized.
  if (!Finished)
    Core->finish();
}

void ProfileSession::registerProbeTables(
    const std::vector<trace::InstrInfo> &Instrs,
    const std::vector<trace::AllocSiteInfo> &Sites) {
  trace::InstructionRegistry &Registry = Core->registry();
  for (const trace::InstrInfo &Info : Instrs)
    Registry.addInstruction(Info.Name, Info.Kind);
  for (const trace::AllocSiteInfo &Info : Sites)
    Registry.addAllocSite(Info.Name, Info.TypeName);
}

bool ProfileSession::injectBlock(const uint8_t *Payload, size_t Len,
                                 uint64_t EventCount, uint32_t Crc,
                                 uint64_t BlockIndex,
                                 uint8_t FormatVersion) {
  if (Failed)
    return false;
  if (FormatVersion < traceio::kFormatVersionV1 ||
      FormatVersion > traceio::kFormatVersionV2) {
    Err = "block " + std::to_string(BlockIndex) +
          ": unsupported format version " + std::to_string(FormatVersion);
    Failed = true;
    return false;
  }
  trace::MemoryInterface &Memory = Core->memory();
  if (FormatVersion >= traceio::kFormatVersionV2) {
    traceio::DecodedBlock Block;
    if (!traceio::verifyBlockChecksum(Payload, Len, Crc, BlockIndex,
                                      /*BaseOffset=*/0, Err) ||
        !traceio::decodeEventBlockV2(Payload, Len, EventCount, Block, Err,
                                     BlockIndex, /*BaseOffset=*/0)) {
      Failed = true;
      return false;
    }
    Events += traceio::injectDecodedBlock(Memory, Block);
    return true;
  }
  auto Inject = [&](const traceio::TraceEvent &E) {
    switch (E.K) {
    case traceio::TraceEvent::Kind::Access:
      Memory.injectAccess(trace::AccessEvent{E.InstrOrSite, E.Addr,
                                             static_cast<uint32_t>(E.Size),
                                             E.IsStore, E.Time});
      break;
    case traceio::TraceEvent::Kind::Alloc:
      Memory.injectAlloc(trace::AllocEvent{E.InstrOrSite, E.Addr, E.Size,
                                           E.Time, E.IsStatic});
      break;
    case traceio::TraceEvent::Kind::Free:
      Memory.injectFree(trace::FreeEvent{E.Addr, E.Time});
      break;
    }
    ++Events;
  };
  if (!traceio::verifyBlockChecksum(Payload, Len, Crc, BlockIndex,
                                    /*BaseOffset=*/0, Err) ||
      !traceio::decodeEventBlock(Payload, Len, EventCount, Inject, Err,
                                 BlockIndex, /*BaseOffset=*/0)) {
    Failed = true;
    return false;
  }
  return true;
}

bool ProfileSession::replayFrom(traceio::TraceReader &Reader,
                                unsigned DecodeThreads) {
  traceio::TraceReplayer Replayer(Reader);
  Replayer.setThreads(DecodeThreads);
  // finalize() finishes the pipeline exactly once, whichever path fed
  // it; the replayer must not finish it early.
  if (!Replayer.replayInto(*Core, /*CallFinish=*/false)) {
    Events += Replayer.eventsReplayed();
    Failed = true;
    Err = Reader.error();
    return false;
  }
  Events += Replayer.eventsReplayed();
  return true;
}

SessionArtifacts ProfileSession::finalize() {
  if (!Finished) {
    Core->finish();
    Finished = true;
  }
  SessionArtifacts A;
  A.Name = Name;
  A.Events = Events;
  A.Failed = Failed;
  A.Error = Err;
  if (Whomp)
    A.Omsg = whomp::OmsgArchive::build(*Whomp, &Core->omc()).serialize();
  if (Leap)
    A.Leap = leap::LeapProfileData::fromProfiler(*Leap).serialize();
  return A;
}

size_t ProfileSession::memoryEstimateBytes() {
  // Nominal per-structure byte weights. The absolute numbers only need
  // to rank sessions and grow with real usage; the budget they are
  // compared against is configured in the same units.
  constexpr size_t kSymbolSlabBytes = 2048 * 32;
  constexpr size_t kRuleSlabBytes = 256 * 48;
  constexpr size_t kDigramBytes = 64;
  constexpr size_t kLiveObjectBytes = 96;
  constexpr size_t kGroupBytes = 64;

  size_t Est = sizeof(ProfileSession);
  const omc::ObjectManager &Omc = Core->omc();
  Est += Omc.numLiveObjects() * kLiveObjectBytes;
  Est += Omc.numGroups() * kGroupBytes;
  // Grammar/substream accessors are only coherent from the owning
  // thread while profiler workers run; with ProfilerThreads == 1 (the
  // SessionManager configuration) this thread is the owner.
  if (Config.ProfilerThreads <= 1) {
    if (Whomp) {
      for (core::Dimension D :
           {core::Dimension::Instruction, core::Dimension::Group,
            core::Dimension::Object, core::Dimension::Offset}) {
        const sequitur::SequiturGrammar &G = Whomp->grammarFor(D);
        Est += G.numSymbolSlabs() * kSymbolSlabBytes +
               G.numRuleSlabs() * kRuleSlabBytes +
               G.numDigrams() * kDigramBytes;
      }
    }
    if (Leap)
      Est += Leap->serializedSizeBytes();
  }
  return Est;
}
