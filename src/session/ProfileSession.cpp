//===- session/ProfileSession.cpp - One profiling session ----------------===//

#include "session/ProfileSession.h"

#include "leap/LeapProfileData.h"
#include "omc/OmcCheckpoint.h"
#include "support/Checksum.h"
#include "support/Endian.h" // orp-lint: allow(endian-io): artifact framing
#include "support/VarInt.h"
#include "traceio/BlockCodec.h"
#include "traceio/TraceReplayer.h"
#include "whomp/OmsgArchive.h"

#include <algorithm>

using namespace orp;
using namespace orp::session;

ProfileSession::ProfileSession(std::string Name, const SessionConfig &Config)
    : Name(std::move(Name)), Config(Config),
      Core(std::make_unique<core::ProfilingSession>(Config.Policy,
                                                    Config.Seed)) {
  if (Config.EnableWhomp) {
    Whomp = std::make_unique<whomp::WhompProfiler>(Config.ProfilerThreads);
    Core->addConsumer(Whomp.get());
  }
  if (Config.EnableLeap) {
    Leap = std::make_unique<leap::LeapProfiler>(Config.MaxLmads,
                                                Config.ProfilerThreads);
    Core->addConsumer(Leap.get());
  }
}

ProfileSession::~ProfileSession() {
  // Threaded profilers own their grammars/substreams until finish();
  // make destruction safe for sessions that were never finalized.
  if (!Finished)
    Core->finish();
}

void ProfileSession::registerProbeTables(
    const std::vector<trace::InstrInfo> &Instrs,
    const std::vector<trace::AllocSiteInfo> &Sites) {
  trace::InstructionRegistry &Registry = Core->registry();
  for (const trace::InstrInfo &Info : Instrs)
    Registry.addInstruction(Info.Name, Info.Kind);
  for (const trace::AllocSiteInfo &Info : Sites)
    Registry.addAllocSite(Info.Name, Info.TypeName);
}

bool ProfileSession::injectBlock(const uint8_t *Payload, size_t Len,
                                 uint64_t EventCount, uint32_t Crc,
                                 uint64_t BlockIndex,
                                 uint8_t FormatVersion) {
  if (Failed)
    return false;
  if (FormatVersion < traceio::kFormatVersionV1 ||
      FormatVersion > traceio::kFormatVersionV2) {
    Err = "block " + std::to_string(BlockIndex) +
          ": unsupported format version " + std::to_string(FormatVersion);
    Failed = true;
    return false;
  }
  trace::MemoryInterface &Memory = Core->memory();
  if (FormatVersion >= traceio::kFormatVersionV2) {
    traceio::DecodedBlock Block;
    if (!traceio::verifyBlockChecksum(Payload, Len, Crc, BlockIndex,
                                      /*BaseOffset=*/0, Err) ||
        !traceio::decodeEventBlockV2(Payload, Len, EventCount, Block, Err,
                                     BlockIndex, /*BaseOffset=*/0)) {
      Failed = true;
      return false;
    }
    Events += traceio::injectDecodedBlock(Memory, Block);
    return true;
  }
  auto Inject = [&](const traceio::TraceEvent &E) {
    switch (E.K) {
    case traceio::TraceEvent::Kind::Access:
      Memory.injectAccess(trace::AccessEvent{E.InstrOrSite, E.Addr,
                                             static_cast<uint32_t>(E.Size),
                                             E.IsStore, E.Time});
      break;
    case traceio::TraceEvent::Kind::Alloc:
      Memory.injectAlloc(trace::AllocEvent{E.InstrOrSite, E.Addr, E.Size,
                                           E.Time, E.IsStatic});
      break;
    case traceio::TraceEvent::Kind::Free:
      Memory.injectFree(trace::FreeEvent{E.Addr, E.Time});
      break;
    }
    ++Events;
  };
  if (!traceio::verifyBlockChecksum(Payload, Len, Crc, BlockIndex,
                                    /*BaseOffset=*/0, Err) ||
      !traceio::decodeEventBlock(Payload, Len, EventCount, Inject, Err,
                                 BlockIndex, /*BaseOffset=*/0)) {
    Failed = true;
    return false;
  }
  return true;
}

bool ProfileSession::replayFrom(
    traceio::TraceReader &Reader, unsigned DecodeThreads,
    uint64_t FirstBlock, uint64_t EndBlock,
    const std::function<void(uint64_t)> &BlockDone) {
  traceio::TraceReplayer Replayer(Reader);
  Replayer.setThreads(DecodeThreads);
  size_t End = ~static_cast<size_t>(0);
  if (EndBlock < End)
    End = static_cast<size_t>(EndBlock);
  Replayer.setBlockRange(static_cast<size_t>(FirstBlock), End);
  if (BlockDone)
    Replayer.setBlockCallback(
        [&BlockDone](size_t Next) { BlockDone(Next); });
  // finalize() finishes the pipeline exactly once, whichever path fed
  // it; the replayer must not finish it early.
  if (!Replayer.replayInto(*Core, /*CallFinish=*/false)) {
    Events += Replayer.eventsReplayed();
    Failed = true;
    Err = Reader.error();
    return false;
  }
  Events += Replayer.eventsReplayed();
  return true;
}

std::vector<uint8_t>
ProfileSession::checkpoint(const traceio::TraceReader &Reader,
                           uint64_t NextBlock) {
  std::vector<uint8_t> Out;
  Out.insert(Out.end(), kCheckpointMagic, kCheckpointMagic + 4);
  Out.push_back(kCheckpointVersion);
  size_t CrcAt = Out.size();
  appendLE32(0, Out); // Patched below.

  // Progress.
  encodeULEB128(NextBlock, Out);
  encodeULEB128(Events, Out);
  // Session configuration a resume must reproduce to get identical
  // translations and artifacts.
  Out.push_back(static_cast<uint8_t>(Config.Policy));
  encodeULEB128(Config.Seed, Out);
  Out.push_back(Config.EnableWhomp ? 1 : 0);
  Out.push_back(Config.EnableLeap ? 1 : 0);
  encodeULEB128(Config.MaxLmads, Out);
  // Trace identity: enough to reject resuming against the wrong file.
  encodeULEB128(Reader.numEventBlocks(), Out);
  encodeULEB128(Reader.info().TotalEvents, Out);

  omc::OmcCheckpoint::serialize(Core->omc(), Out);

  uint32_t Crc = crc32(Out.data() + CrcAt + 4, Out.size() - CrcAt - 4);
  Out[CrcAt] = static_cast<uint8_t>(Crc);
  Out[CrcAt + 1] = static_cast<uint8_t>(Crc >> 8);
  Out[CrcAt + 2] = static_cast<uint8_t>(Crc >> 16);
  Out[CrcAt + 3] = static_cast<uint8_t>(Crc >> 24);
  return Out;
}

bool ProfileSession::restoreCheckpoint(const std::vector<uint8_t> &Bytes,
                                       const traceio::TraceReader &Reader,
                                       uint64_t &NextBlock,
                                       std::string &Err) {
  constexpr size_t kHeaderSize = 4 + 1 + 4;
  if (Events != 0 || Finished || Failed) {
    Err = "checkpoint: restore target is not a fresh session";
    return false;
  }
  if (Bytes.size() < kHeaderSize) {
    Err = "checkpoint: truncated header";
    return false;
  }
  if (!std::equal(kCheckpointMagic, kCheckpointMagic + 4, Bytes.begin())) {
    Err = "checkpoint: bad magic";
    return false;
  }
  if (Bytes[4] != kCheckpointVersion) {
    Err = "checkpoint: unsupported format version " +
          std::to_string(Bytes[4]);
    return false;
  }
  uint32_t Stored = readLE32(Bytes.data() + 5);
  if (crc32(Bytes.data() + kHeaderSize, Bytes.size() - kHeaderSize) !=
      Stored) {
    Err = "checkpoint: checksum mismatch (corrupted image)";
    return false;
  }

  const uint8_t *Data = Bytes.data();
  size_t Size = Bytes.size();
  size_t Pos = kHeaderSize;
  auto ReadU = [&](const char *What, uint64_t &Value) {
    VarIntStatus S = decodeULEB128Checked(Data, Size, Pos, Value);
    if (S != VarIntStatus::Ok) {
      Err = std::string("checkpoint: ") + What + ": " +
            varIntStatusName(S) + " varint";
      return false;
    }
    return true;
  };
  auto ReadByte = [&](const char *What, uint8_t &Value) {
    if (Pos >= Size) {
      Err = std::string("checkpoint: ") + What + ": truncated";
      return false;
    }
    Value = Data[Pos++];
    return true;
  };

  uint64_t Next = 0, EventsSoFar = 0, Seed = 0, MaxLmads = 0;
  uint64_t TraceBlocks = 0, TraceEvents = 0;
  uint8_t Policy = 0, EnableWhomp = 0, EnableLeap = 0;
  if (!ReadU("next block", Next) || !ReadU("event count", EventsSoFar) ||
      !ReadByte("alloc policy", Policy) || !ReadU("seed", Seed) ||
      !ReadByte("whomp flag", EnableWhomp) ||
      !ReadByte("leap flag", EnableLeap) ||
      !ReadU("max lmads", MaxLmads) ||
      !ReadU("trace block count", TraceBlocks) ||
      !ReadU("trace event count", TraceEvents))
    return false;
  if (EnableWhomp > 1 || EnableLeap > 1) {
    Err = "checkpoint: bad profiler flag";
    return false;
  }
  if (Policy != static_cast<uint8_t>(Config.Policy) ||
      Seed != Config.Seed ||
      (EnableWhomp != 0) != Config.EnableWhomp ||
      (EnableLeap != 0) != Config.EnableLeap ||
      MaxLmads != Config.MaxLmads) {
    Err = "checkpoint: session configuration mismatch";
    return false;
  }
  if (TraceBlocks != Reader.numEventBlocks() ||
      TraceEvents != Reader.info().TotalEvents) {
    Err = "checkpoint: trace identity mismatch (different trace?)";
    return false;
  }
  if (Next > TraceBlocks) {
    Err = "checkpoint: next block beyond the end of the trace";
    return false;
  }

  if (!omc::OmcCheckpoint::restore(Data, Size, Pos, Core->omc(), Err))
    return false;
  if (Pos != Size) {
    Err = "checkpoint: trailing bytes after payload";
    return false;
  }
  Events = EventsSoFar;
  NextBlock = Next;
  return true;
}

SessionArtifacts ProfileSession::finalize() {
  if (!Finished) {
    Core->finish();
    Finished = true;
  }
  SessionArtifacts A;
  A.Name = Name;
  A.Events = Events;
  A.Failed = Failed;
  A.Error = Err;
  if (Whomp)
    A.Omsg = whomp::OmsgArchive::build(*Whomp, &Core->omc()).serialize();
  if (Leap)
    A.Leap = leap::LeapProfileData::fromProfiler(*Leap).serialize();
  return A;
}

size_t ProfileSession::memoryEstimateBytes() {
  // Nominal per-structure byte weights. The absolute numbers only need
  // to rank sessions and grow with real usage; the budget they are
  // compared against is configured in the same units.
  constexpr size_t kSymbolSlabBytes = 2048 * 32;
  constexpr size_t kRuleSlabBytes = 256 * 48;
  constexpr size_t kDigramBytes = 64;
  constexpr size_t kLiveObjectBytes = 96;
  constexpr size_t kGroupBytes = 64;

  size_t Est = sizeof(ProfileSession);
  const omc::ObjectManager &Omc = Core->omc();
  Est += Omc.numLiveObjects() * kLiveObjectBytes;
  Est += Omc.numGroups() * kGroupBytes;
  // Grammar/substream accessors are only coherent from the owning
  // thread while profiler workers run; with ProfilerThreads == 1 (the
  // SessionManager configuration) this thread is the owner.
  if (Config.ProfilerThreads <= 1) {
    if (Whomp) {
      for (core::Dimension D :
           {core::Dimension::Instruction, core::Dimension::Group,
            core::Dimension::Object, core::Dimension::Offset}) {
        const sequitur::SequiturGrammar &G = Whomp->grammarFor(D);
        Est += G.numSymbolSlabs() * kSymbolSlabBytes +
               G.numRuleSlabs() * kRuleSlabBytes +
               G.numDigrams() * kDigramBytes;
      }
    }
    if (Leap)
      Est += Leap->serializedSizeBytes();
  }
  return Est;
}
