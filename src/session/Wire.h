//===- session/Wire.h - orp-traced framed protocol -------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The length-prefixed framed protocol between orp-traced and its
/// clients, as pure byte codecs (no sockets here — Daemon and Client
/// own the fds). A frame is:
///
///   u32 LE  Length    length of Type + Payload
///   u8      Type      FrameType
///   ...     Payload   Length - 1 bytes
///
/// Request payloads:
///   Open      uleb nameLen, name, u8 alloc policy, u64 LE seed,
///             u8 profiler mask (1 = WHOMP, 2 = LEAP), uleb maxLmads,
///             registry payload (traceio::RegistryCodec) to end
///   Events    uleb sessionId, uleb eventCount, u8 format version
///             (traceio::kFormatVersionV1/V2), u32 LE crc, then the
///             still-encoded .orpt block payload *verbatim* — v1 or v2
///             blocks decode independently (delta state resets per
///             block), so the daemon feeds these bytes to the same
///             BlockCodec a file replay uses
///   Snapshot  u8 format (SnapshotFormat), uleb nameLen, name
///             (empty = whole registry, else filtered to that
///             session's "session.<name>." metrics)
///   Close     uleb sessionId
///
/// Reply payloads:
///   ReplyOk (to Open)    uleb sessionId
///   ReplyOk (to Events)  empty — the ack is the client's flow control
///   ReplyOk (to Close)   uleb events, u8 failed, uleb errLen, err,
///                        uleb omsgLen, omsg, uleb leapLen, leap
///   ReplySnapshot        the exporter text
///   ReplyErr             message text
///
/// Every request gets exactly one reply, in request order.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SESSION_WIRE_H
#define ORP_SESSION_WIRE_H

#include "session/ProfileSession.h"

#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace session {

enum class FrameType : uint8_t {
  Open = 1,
  Events = 2,
  Snapshot = 3,
  Close = 4,
  ReplyOk = 0x80,
  ReplyErr = 0x81,
  ReplySnapshot = 0x82,
};

/// Frames larger than this are a protocol error (a desynced or hostile
/// client), not a huge allocation.
constexpr size_t kMaxFrameLength = 64u * 1024 * 1024;

struct Frame {
  FrameType Type = FrameType::ReplyErr;
  std::vector<uint8_t> Payload;
};

/// Appends the wire encoding of one frame to \p Out.
void appendFrame(FrameType Type, const std::vector<uint8_t> &Payload,
                 std::vector<uint8_t> &Out);

/// Incremental frame parser: feed() raw bytes as they arrive from a
/// socket, next() pops complete frames in order. A malformed length
/// latches failed() — the connection should be dropped.
class FrameParser {
public:
  void feed(const uint8_t *Data, size_t Len);

  /// Pops the next complete frame into \p Out; false when more bytes
  /// are needed (or the stream failed).
  [[nodiscard]] bool next(Frame &Out);

  [[nodiscard]] bool failed() const { return !Err.empty(); }
  const std::string &error() const { return Err; }

private:
  std::vector<uint8_t> Buf;
  size_t Pos = 0;
  std::string Err;
};

/// An Open request in struct form.
struct OpenRequest {
  std::string Name;
  SessionConfig Config;
  std::vector<trace::InstrInfo> Instrs;
  std::vector<trace::AllocSiteInfo> Sites;
};

void encodeOpen(const OpenRequest &Req, std::vector<uint8_t> &Out);
[[nodiscard]] bool decodeOpen(const uint8_t *Data, size_t Len, OpenRequest &Out,
                std::string &Err);

/// An Events frame's fixed header; the block payload follows at
/// \p PayloadOffset.
struct EventsHeader {
  uint64_t SessionId = 0;
  uint64_t EventCount = 0;
  uint8_t FormatVersion = 0; ///< .orpt format of the block payload.
  uint32_t Crc = 0;
  size_t PayloadOffset = 0;
};

void encodeEventsHeader(uint64_t SessionId, uint64_t EventCount,
                        uint8_t FormatVersion, uint32_t Crc,
                        std::vector<uint8_t> &Out);
[[nodiscard]] bool decodeEventsHeader(const uint8_t *Data, size_t Len, EventsHeader &Out,
                        std::string &Err);

/// A Snapshot request. Format values mirror telemetry::SnapshotFormat.
struct SnapshotRequest {
  uint8_t Format = 0;
  std::string SessionName; ///< Empty = whole-process snapshot.
};

void encodeSnapshot(const SnapshotRequest &Req, std::vector<uint8_t> &Out);
[[nodiscard]] bool decodeSnapshot(const uint8_t *Data, size_t Len, SnapshotRequest &Out,
                    std::string &Err);

/// The Close reply in struct form (artifacts travel back to the client
/// so tests can diff profiles without touching the daemon's outdir).
struct CloseSummary {
  uint64_t Events = 0;
  bool Failed = false;
  std::string Error;
  std::vector<uint8_t> Omsg;
  std::vector<uint8_t> Leap;
};

void encodeCloseSummary(const CloseSummary &Summary,
                        std::vector<uint8_t> &Out);
[[nodiscard]] bool decodeCloseSummary(const uint8_t *Data, size_t Len, CloseSummary &Out,
                        std::string &Err);

} // namespace session
} // namespace orp

#endif // ORP_SESSION_WIRE_H
