//===- session/Client.h - orp-traced client ---------------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocking client of the orp-traced wire protocol (Wire.h), used by
/// `orp-trace submit` and the session tests. One Client is one
/// connection; sessions opened through it live until closeSession() or
/// disconnect (the daemon aborts a disconnected client's leftovers).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_SESSION_CLIENT_H
#define ORP_SESSION_CLIENT_H

#include "session/Wire.h"
#include "traceio/TraceReader.h"

#include <string>
#include <vector>

namespace orp {
namespace session {

/// Connects to an orp-traced socket and speaks the framed protocol.
class Client {
public:
  Client() = default;
  ~Client();

  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;

  /// Connects to the daemon at \p SocketPath. False with \p Err set on
  /// failure.
  [[nodiscard]] bool connect(const std::string &SocketPath, std::string &Err);

  [[nodiscard]] bool connected() const { return Fd >= 0; }
  void disconnect();

  /// Opens a session on the daemon. On success fills \p IdOut.
  [[nodiscard]] bool openSession(const OpenRequest &Req, uint64_t &IdOut,
                   std::string &Err);

  /// Streams every event block of \p Reader into session \p Id,
  /// forwarding the still-encoded payloads verbatim. Keeps a small
  /// window of unacknowledged EVENTS frames in flight so the daemon's
  /// per-session backpressure (it stops reading when the ingest queue
  /// is full) throttles this call instead of deadlocking it.
  [[nodiscard]] bool submitTrace(uint64_t Id, traceio::TraceReader &Reader,
                   std::string &Err);

  /// Submits one raw block (a test-sized building brick).
  /// \p FormatVersion is the .orpt format the block is encoded in
  /// (usually the source reader's info().Version).
  [[nodiscard]] bool submitBlock(uint64_t Id, const traceio::TraceReader::RawBlock &B,
                   uint8_t FormatVersion, std::string &Err);

  /// Fetches a telemetry snapshot. \p Format mirrors
  /// telemetry::SnapshotFormat (0 JSON, 1 compact JSON, 2 Prometheus);
  /// \p SessionName empty = whole registry.
  [[nodiscard]] bool snapshot(uint8_t Format, const std::string &SessionName,
                std::string &TextOut, std::string &Err);

  /// Closes session \p Id, receiving its summary and artifacts.
  [[nodiscard]] bool closeSession(uint64_t Id, CloseSummary &Out, std::string &Err);

private:
  [[nodiscard]] bool sendFrame(FrameType Type, const std::vector<uint8_t> &Payload,
                 std::string &Err);
  [[nodiscard]] bool recvFrame(Frame &Out, std::string &Err);
  /// Receives one frame and maps ReplyErr to failure with its message.
  [[nodiscard]] bool recvReply(FrameType Expected, Frame &Out, std::string &Err);

  int Fd = -1;
  FrameParser Parser;
};

} // namespace session
} // namespace orp

#endif // ORP_SESSION_CLIENT_H
