//===- omc/OmcCheckpoint.h - OMC state snapshot/restore --------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serializes an ObjectManager's authoritative state — object records,
/// group/site tables, serial counters, pool parameters and the live
/// interval set — so a replay can stop at a block boundary and resume
/// later (or elsewhere) with identical translations. Only authoritative
/// state is stored: the translation caches and the page table are
/// self-validating accelerators that restart cold without affecting any
/// result, and the stats counters restart at zero for the new segment.
///
/// The byte image is deterministic (unordered maps are emitted in
/// sorted order) and self-describing enough to be validated on restore:
/// group references, serial monotonicity and live-interval disjointness
/// are all checked, so a corrupt checkpoint fails loudly instead of
/// producing silently wrong translations.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_OMC_OMCCHECKPOINT_H
#define ORP_OMC_OMCCHECKPOINT_H

#include "omc/ObjectManager.h"

#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace omc {

/// Snapshot/restore of an ObjectManager (friend of the class).
class OmcCheckpoint {
public:
  /// Appends the serialized state of \p Omc to \p Out (LEB128 section,
  /// no header of its own — the embedding artifact provides framing and
  /// checksumming).
  static void serialize(const ObjectManager &Omc, std::vector<uint8_t> &Out);

  /// Restores a snapshot into \p Omc, which must be freshly constructed
  /// (no allocations seen). Reads from \p Data starting at \p Pos and
  /// advances \p Pos past the section. Returns false with a diagnostic
  /// in \p Err on malformed or inconsistent input; \p Omc is left in an
  /// unspecified but safe state on failure and must be discarded.
  [[nodiscard]] static bool restore(const uint8_t *Data, size_t Size,
                                    size_t &Pos, ObjectManager &Omc,
                                    std::string &Err);
};

} // namespace omc
} // namespace orp

#endif // ORP_OMC_OMCCHECKPOINT_H
