//===- omc/ObjectManager.cpp - Object-management component ---------------===//

#include "omc/ObjectManager.h"

#include "check/Check.h"
#include "support/Error.h"

#include <cassert>

using namespace orp;
using namespace orp::omc;

GroupId ObjectManager::groupForSite(trace::AllocSiteId Site) {
  auto [It, Inserted] =
      SiteToGroup.try_emplace(Site, static_cast<GroupId>(GroupSites.size()));
  if (Inserted) {
    GroupSites.push_back(Site);
    NextSerial.push_back(0);
  }
  return It->second;
}

std::optional<GroupId>
ObjectManager::lookupGroupForSite(trace::AllocSiteId Site) const {
  auto It = SiteToGroup.find(Site);
  if (It == SiteToGroup.end())
    return std::nullopt;
  return It->second;
}

trace::AllocSiteId ObjectManager::siteForGroup(GroupId Group) const {
  ORP_CHECK1(Group < GroupSites.size(), "omc: unknown group");
  return GroupSites[Group];
}

void ObjectManager::splitPoolSite(trace::AllocSiteId Site,
                                  uint64_t ElementSize) {
  ORP_CHECK1(ElementSize > 0, "omc: zero pool element size");
  ORP_CHECK1(!lookupGroupForSite(Site),
             "omc: pool policy set after the site's first allocation");
  PoolElementSize[Site] = ElementSize;
}

void ObjectManager::onAlloc(const trace::AllocEvent &Event) {
  ORP_CHECK1(Event.Size > 0, "omc: zero-sized object allocated");
  GroupId Group = groupForSite(Event.Site);
  uint64_t ObjectId = Records.size();

  // For split pools the serial counter advances by the number of element
  // slots so that every element has its own (run-invariant) serial.
  auto PoolIt = PoolElementSize.find(Event.Site);
  ObjectSerial Serial = NextSerial[Group];
  if (PoolIt != PoolElementSize.end()) {
    uint64_t Slots = (Event.Size + PoolIt->second - 1) / PoolIt->second;
    PoolBaseSerial.push_back(Serial);
    NextSerial[Group] += Slots;
  } else {
    PoolBaseSerial.push_back(~0ULL);
    NextSerial[Group] += 1;
  }

  Records.push_back(ObjectRecord{Group, Serial, Event.Site, Event.Addr,
                                 Event.Size, Event.Time, kLiveForever,
                                 Event.IsStatic});
  LiveIndex.insert(Event.Addr, Event.Addr + Event.Size, ObjectId);
}

void ObjectManager::onFree(const trace::FreeEvent &Event) {
  const IntervalBTree::Entry *Entry = LiveIndex.lookup(Event.Addr);
  if (!Entry || Entry->Start != Event.Addr) {
    ++Stats.UnknownFrees;
    return;
  }
  Records[Entry->Value].FreeTime = Event.Time;
  LiveIndex.erase(Event.Addr);
  // The freed range must not serve cached translations anymore.
  if (Event.Addr == CachedBase)
    CachedEnd = 0;
  for (CacheLine &Line : InstrCache)
    if (Line.Base == Event.Addr)
      Line.End = 0;
}

uint64_t ObjectManager::lookupPage(uint64_t Addr) const {
  if (PageTable.empty())
    return ~0ULL;
  uint64_t Page = Addr >> kPageShift;
  size_t Slot = pageSlot(Page);
  for (size_t P = 0; P != kPageProbeLimit; ++P) {
    const PageEntry &E = PageTable[(Slot + P) & (kPageTableSlots - 1)];
    if (E.Page == kEmptyPage)
      return ~0ULL; // Bounded probe chains never skip an empty slot.
    if (E.Page != Page)
      continue;
    // Self-validating hit: the entry only stands in for the tree while
    // its record is still live and still covers the address. A stale
    // entry (its object freed, or a neighbor in the same page) degrades
    // into a tree descent, never a wrong translation — which is why
    // onFree() needs no invalidation walk over this table.
    const ObjectRecord &R = Records[E.ObjectId];
    if (R.FreeTime == kLiveForever && Addr - R.Base < R.Size)
      return E.ObjectId;
    return ~0ULL;
  }
  return ~0ULL;
}

void ObjectManager::rememberPage(uint64_t Addr, uint64_t ObjectId) {
  if (PageTable.empty())
    PageTable.resize(kPageTableSlots);
  uint64_t Page = Addr >> kPageShift;
  size_t Slot = pageSlot(Page);
  // Prefer the page's own slot or an empty one; otherwise recycle the
  // first slot whose object has been freed; otherwise evict the
  // primary slot (the table is a cache, not an index).
  size_t Victim = kPageTableSlots;
  for (size_t P = 0; P != kPageProbeLimit; ++P) {
    size_t At = (Slot + P) & (kPageTableSlots - 1);
    PageEntry &E = PageTable[At];
    if (E.Page == Page || E.Page == kEmptyPage) {
      E.Page = Page;
      E.ObjectId = ObjectId;
      return;
    }
    if (Victim == kPageTableSlots &&
        Records[E.ObjectId].FreeTime != kLiveForever)
      Victim = At;
  }
  PageTable[Victim != kPageTableSlots ? Victim : Slot] =
      PageEntry{Page, ObjectId};
}

std::optional<Translation> ObjectManager::translate(uint64_t Addr) {
  if (Addr >= CachedBase && Addr < CachedEnd) {
    ++Stats.Translations;
    ++Stats.SharedCacheHits;
    return translateWithin(CachedObjectId, Addr);
  }
  if (uint64_t ObjectId = lookupPage(Addr); ObjectId != ~0ULL) {
    ++Stats.Translations;
    ++Stats.PageHits;
    const ObjectRecord &R = Records[ObjectId];
    CachedBase = R.Base;
    CachedEnd = R.Base + R.Size;
    CachedObjectId = ObjectId;
    return translateWithin(ObjectId, Addr);
  }
  const IntervalBTree::Entry *Entry = LiveIndex.lookup(Addr);
  if (!Entry) {
    ++Stats.Misses;
    return std::nullopt;
  }
  ++Stats.Translations;
  CachedBase = Entry->Start;
  CachedEnd = Entry->End;
  CachedObjectId = Entry->Value;
  rememberPage(Addr, Entry->Value);
  return translateWithin(Entry->Value, Addr);
}

std::optional<Translation> ObjectManager::translate(uint64_t Addr,
                                                    trace::InstrId Instr) {
  CacheLine &Line = InstrCache[Instr & (InstrCacheLines - 1)];
  if (Addr >= Line.Base && Addr < Line.End) {
    ++Stats.Translations;
    ++Stats.MruHits;
    return translateWithin(Line.ObjectId, Addr);
  }
  std::optional<Translation> Result = translate(Addr);
  if (Result) {
    // translate() refreshed the shared entry; mirror it into this
    // instruction's line.
    Line.Base = CachedBase;
    Line.End = CachedEnd;
    Line.ObjectId = CachedObjectId;
  }
  return Result;
}

Translation ObjectManager::translateWithin(uint64_t ObjectId,
                                           uint64_t Addr) {
  const ObjectRecord &Record = Records[ObjectId];
  uint64_t Offset = Addr - Record.Base;
  if (PoolBaseSerial[ObjectId] != ~0ULL) {
    uint64_t Elem = PoolElementSize.at(Record.Site);
    return Translation{Record.Group, Record.Serial + Offset / Elem,
                       Offset % Elem, ObjectId};
  }
  return Translation{Record.Group, Record.Serial, Offset, ObjectId};
}
