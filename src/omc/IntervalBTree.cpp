//===- omc/IntervalBTree.cpp - B+-tree over address ranges ---------------===//

#include "omc/IntervalBTree.h"

#include "check/Check.h"
#include "omc/IntervalBTreeNode.h"
#include "support/Error.h"

#include <algorithm>
#include <cassert>

using namespace orp;
using namespace orp::omc;

namespace {

/// Maximum entries per leaf / children per inner node before a split.
constexpr size_t MaxFanout = 32;

} // namespace

IntervalBTree::Node::Node(bool IsLeaf) : IsLeaf(IsLeaf) {
  if (IsLeaf)
    Entries.reserve(MaxFanout + 1);
  else {
    Keys.reserve(MaxFanout);
    Children.reserve(MaxFanout + 1);
  }
}

IntervalBTree::IntervalBTree() : Root(nullptr) {
  Root = allocNode(/*IsLeaf=*/true);
}

IntervalBTree::~IntervalBTree() {
  destroy(Root);
  // Drain the recycling list; nodes are poisoned, so lift the poison
  // before handing them back to the heap.
  while (FreeNodes) {
    check::unpoisonRegion(FreeNodes, sizeof(Node));
    Node *N = FreeNodes;
    FreeNodes = N->Next;
    if (N->Entries.capacity())
      check::unpoisonRegion(N->Entries.data(),
                            N->Entries.capacity() * sizeof(Entry));
    if (N->Keys.capacity())
      check::unpoisonRegion(N->Keys.data(),
                            N->Keys.capacity() * sizeof(uint64_t));
    if (N->Children.capacity())
      check::unpoisonRegion(N->Children.data(),
                            N->Children.capacity() * sizeof(Node *));
    delete N; // NOLINT(cppcoreguidelines-owning-memory)
  }
}

void IntervalBTree::destroy(Node *N) {
  if (!N->IsLeaf)
    for (Node *Child : N->Children)
      destroy(Child);
  delete N; // NOLINT(cppcoreguidelines-owning-memory)
}

IntervalBTree::Node *IntervalBTree::allocNode(bool IsLeaf) {
  if (!FreeNodes)
    return new Node(IsLeaf); // NOLINT(cppcoreguidelines-owning-memory)
  check::unpoisonRegion(FreeNodes, sizeof(Node));
  Node *N = FreeNodes;
  FreeNodes = N->Next;
  if (N->Entries.capacity())
    check::unpoisonRegion(N->Entries.data(),
                          N->Entries.capacity() * sizeof(Entry));
  if (N->Keys.capacity())
    check::unpoisonRegion(N->Keys.data(),
                          N->Keys.capacity() * sizeof(uint64_t));
  if (N->Children.capacity())
    check::unpoisonRegion(N->Children.data(),
                          N->Children.capacity() * sizeof(Node *));
  N->IsLeaf = IsLeaf;
  N->Prev = nullptr;
  N->Next = nullptr;
  return N;
}

void IntervalBTree::freeNode(Node *N) {
  // Contents are dead but the buffers stay allocated (capacity is kept
  // warm for reuse); Entry/Keys/Children elements are trivial, so
  // clear() never touches the soon-to-be-poisoned storage.
  N->Keys.clear();
  N->Children.clear();
  N->Entries.clear();
  N->Prev = nullptr;
  N->Next = FreeNodes;
  FreeNodes = N;
  if (N->Entries.capacity())
    check::poisonRegion(N->Entries.data(),
                        N->Entries.capacity() * sizeof(Entry));
  if (N->Keys.capacity())
    check::poisonRegion(N->Keys.data(),
                        N->Keys.capacity() * sizeof(uint64_t));
  if (N->Children.capacity())
    check::poisonRegion(N->Children.data(),
                        N->Children.capacity() * sizeof(Node *));
  check::poisonRegion(N, sizeof(Node));
}

void IntervalBTree::insert(uint64_t Start, uint64_t End, uint64_t Value) {
  ORP_CHECK1(Start < End, "btree: empty interval inserted");
  ORP_CHECK1(!overlapsRange(Start, End), "btree: overlapping interval inserted");
  SplitResult Split = insertInto(Root, Entry{Start, End, Value});
  ++Count;
  if (!Split.NewRight)
    return;
  // The root split: grow the tree by one level.
  Node *NewRoot = allocNode(/*IsLeaf=*/false);
  NewRoot->Keys.push_back(Split.SeparatorKey);
  NewRoot->Children.push_back(Root);
  NewRoot->Children.push_back(Split.NewRight);
  Root = NewRoot;
  ++Height;
}

IntervalBTree::SplitResult IntervalBTree::insertInto(Node *N,
                                                     const Entry &E) {
  if (N->IsLeaf) {
    auto Pos = std::lower_bound(
        N->Entries.begin(), N->Entries.end(), E.Start,
        [](const Entry &Have, uint64_t Want) { return Have.Start < Want; });
    assert((Pos == N->Entries.end() || Pos->Start != E.Start) &&
           "duplicate interval start");
    N->Entries.insert(Pos, E);
    if (N->Entries.size() <= MaxFanout)
      return {};
    // Split the leaf in half; the right half's first start is promoted.
    Node *Right = allocNode(/*IsLeaf=*/true);
    size_t Mid = N->Entries.size() / 2;
    Right->Entries.assign(N->Entries.begin() + Mid, N->Entries.end());
    N->Entries.resize(Mid);
    Right->Next = N->Next;
    Right->Prev = N;
    if (N->Next)
      N->Next->Prev = Right;
    N->Next = Right;
    return {Right->Entries.front().Start, Right};
  }

  // Inner node: route to the child whose key range covers E.Start.
  size_t Slot = std::upper_bound(N->Keys.begin(), N->Keys.end(), E.Start) -
                N->Keys.begin();
  SplitResult ChildSplit = insertInto(N->Children[Slot], E);
  if (!ChildSplit.NewRight)
    return {};
  N->Keys.insert(N->Keys.begin() + Slot, ChildSplit.SeparatorKey);
  N->Children.insert(N->Children.begin() + Slot + 1, ChildSplit.NewRight);
  if (N->Children.size() <= MaxFanout)
    return {};
  // Split the inner node; the middle key moves up.
  Node *Right = allocNode(/*IsLeaf=*/false);
  size_t MidKey = N->Keys.size() / 2;
  uint64_t Promoted = N->Keys[MidKey];
  Right->Keys.assign(N->Keys.begin() + MidKey + 1, N->Keys.end());
  Right->Children.assign(N->Children.begin() + MidKey + 1,
                         N->Children.end());
  N->Keys.resize(MidKey);
  N->Children.resize(MidKey + 1);
  return {Promoted, Right};
}

bool IntervalBTree::erase(uint64_t Start) {
  if (!eraseFrom(Root, Start))
    return false;
  --Count;
  // Collapse a single-child inner root to keep the height tight; if the
  // last leaf vanished entirely, reset to an empty leaf root.
  while (!Root->IsLeaf && Root->Children.size() == 1) {
    Node *Old = Root;
    Root = Old->Children.front();
    freeNode(Old);
    --Height;
  }
  if (!Root->IsLeaf && Root->Children.empty()) {
    Node *Old = Root;
    Root = allocNode(/*IsLeaf=*/true);
    freeNode(Old);
    Height = 1;
  }
  return true;
}

bool IntervalBTree::eraseFrom(Node *N, uint64_t Start) {
  if (N->IsLeaf) {
    auto Pos = std::lower_bound(
        N->Entries.begin(), N->Entries.end(), Start,
        [](const Entry &Have, uint64_t Want) { return Have.Start < Want; });
    if (Pos == N->Entries.end() || Pos->Start != Start)
      return false;
    N->Entries.erase(Pos);
    return true;
  }

  size_t Slot = std::upper_bound(N->Keys.begin(), N->Keys.end(), Start) -
                N->Keys.begin();
  Node *Child = N->Children[Slot];
  if (!eraseFrom(Child, Start))
    return false;

  // Drop children that became empty so every remaining leaf is non-empty
  // (the lookup predecessor-probe depends on this invariant).
  bool ChildEmpty = Child->IsLeaf ? Child->Entries.empty()
                                  : Child->Children.empty();
  if (ChildEmpty) {
    if (Child->IsLeaf) {
      if (Child->Prev)
        Child->Prev->Next = Child->Next;
      if (Child->Next)
        Child->Next->Prev = Child->Prev;
    }
    freeNode(Child);
    N->Children.erase(N->Children.begin() + Slot);
    if (!N->Keys.empty())
      N->Keys.erase(N->Keys.begin() + (Slot == 0 ? 0 : Slot - 1));
  }
  return true;
}

const IntervalBTree::Entry *IntervalBTree::lookup(uint64_t Addr) const {
  return lookupIn(Root, Addr);
}

const IntervalBTree::Entry *IntervalBTree::lookupIn(const Node *N,
                                                    uint64_t Addr) const {
  while (!N->IsLeaf) {
    size_t Slot = std::upper_bound(N->Keys.begin(), N->Keys.end(), Addr) -
                  N->Keys.begin();
    N = N->Children[Slot];
  }
  // Greatest entry with Start <= Addr is here or at the tail of the
  // predecessor leaf (which is non-empty by invariant).
  auto Pos = std::upper_bound(
      N->Entries.begin(), N->Entries.end(), Addr,
      [](uint64_t Want, const Entry &Have) { return Want < Have.Start; });
  const Entry *Candidate = nullptr;
  if (Pos != N->Entries.begin())
    Candidate = &*std::prev(Pos);
  else if (N->Prev)
    Candidate = &N->Prev->Entries.back();
  if (Candidate && Addr >= Candidate->Start && Addr < Candidate->End)
    return Candidate;
  return nullptr;
}

bool IntervalBTree::overlapsRange(uint64_t Start, uint64_t End) const {
  assert(Start < End && "empty query range");
  // An overlap exists iff the predecessor-or-containing interval of
  // (End - 1) ends after Start.
  const Node *N = Root;
  while (!N->IsLeaf) {
    size_t Slot = std::upper_bound(N->Keys.begin(), N->Keys.end(), End - 1) -
                  N->Keys.begin();
    N = N->Children[Slot];
  }
  auto Pos = std::upper_bound(
      N->Entries.begin(), N->Entries.end(), End - 1,
      [](uint64_t Want, const Entry &Have) { return Want < Have.Start; });
  const Entry *Candidate = nullptr;
  if (Pos != N->Entries.begin())
    Candidate = &*std::prev(Pos);
  else if (N->Prev)
    Candidate = &N->Prev->Entries.back();
  return Candidate && Candidate->End > Start;
}

std::vector<IntervalBTree::Entry> IntervalBTree::toVector() const {
  std::vector<Entry> Out;
  Out.reserve(Count);
  const Node *N = Root;
  while (!N->IsLeaf)
    N = N->Children.front();
  for (; N; N = N->Next)
    Out.insert(Out.end(), N->Entries.begin(), N->Entries.end());
  return Out;
}

bool IntervalBTree::checkInvariants() const {
  if (!checkNode(Root, 0, ~0ULL, 0))
    return false;
  // Leaf chain must enumerate exactly Count entries in ascending order.
  const Node *N = Root;
  while (!N->IsLeaf)
    N = N->Children.front();
  size_t Seen = 0;
  uint64_t PrevEnd = 0;
  const Node *PrevLeaf = nullptr;
  for (; N; N = N->Next) {
    if (N->Prev != PrevLeaf)
      return false;
    if (N != Root && N->Entries.empty())
      return false;
    for (const Entry &E : N->Entries) {
      if (E.Start >= E.End)
        return false;
      if (Seen > 0 && E.Start < PrevEnd)
        return false;
      PrevEnd = E.End;
      ++Seen;
    }
    PrevLeaf = N;
  }
  return Seen == Count;
}

bool IntervalBTree::checkNode(const Node *N, uint64_t LowerBound,
                              uint64_t UpperBound, size_t Depth) const {
  if (N->IsLeaf) {
    if (Depth + 1 != Height)
      return false;
    for (const Entry &E : N->Entries)
      if (E.Start < LowerBound || E.Start >= UpperBound)
        return false;
    return std::is_sorted(N->Entries.begin(), N->Entries.end(),
                          [](const Entry &A, const Entry &B) {
                            return A.Start < B.Start;
                          });
  }
  if (N->Children.size() != N->Keys.size() + 1 || N->Children.empty())
    return false;
  if (!std::is_sorted(N->Keys.begin(), N->Keys.end()))
    return false;
  for (size_t I = 0; I != N->Children.size(); ++I) {
    uint64_t Lo = I == 0 ? LowerBound : N->Keys[I - 1];
    uint64_t Hi = I == N->Keys.size() ? UpperBound : N->Keys[I];
    if (Lo < LowerBound || Hi > UpperBound)
      return false;
    if (!checkNode(N->Children[I], Lo, Hi, Depth + 1))
      return false;
  }
  return true;
}
