//===- omc/IntervalBTreeNode.h - B+-tree node layout -----------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Out-of-line definition of IntervalBTree's private Node struct. Only
/// IntervalBTree.cpp and the deep checker in src/check/ may include this
/// header; everything else must stay behind the IntervalBTree interface.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_OMC_INTERVALBTREENODE_H
#define ORP_OMC_INTERVALBTREENODE_H

#include "omc/IntervalBTree.h"

namespace orp {
namespace omc {

/// B+-tree node. Leaves hold interval entries and chain links; inner
/// nodes hold separator keys and child pointers (Children.size() ==
/// Keys.size() + 1). Free-listed nodes chain through Next and are
/// ASan-poisoned (see IntervalBTree::freeNode).
struct IntervalBTree::Node {
  bool IsLeaf;
  std::vector<uint64_t> Keys;
  std::vector<Node *> Children;
  std::vector<Entry> Entries;
  Node *Prev = nullptr;
  Node *Next = nullptr;

  explicit Node(bool IsLeaf);
};

} // namespace omc
} // namespace orp

#endif // ORP_OMC_INTERVALBTREENODE_H
