//===- omc/IntervalBTree.h - B+-tree over address ranges -------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's OMC speeds up raw-address-to-object lookup with "an
/// auxiliary B-tree-like data structure which stores the range of
/// addresses that each object takes up", removing entries at
/// de-allocation (Section 3.1). This is that structure: a B+-tree keyed
/// by interval start over non-overlapping, half-open address ranges, with
/// a doubly-linked leaf level for the predecessor probe.
///
/// Deletion removes entries in place and unlinks leaves that become
/// empty; partially-filled leaves are not rebalanced (deletions never
/// grow the tree, so the height bound from insertion splits still holds).
/// All non-root leaves are therefore non-empty, which the containing-
/// interval lookup relies on: the answer is in the located leaf or is the
/// last entry of its predecessor.
///
/// Nodes emptied by deletion are recycled on a tree-owned free list
/// (keeping their vector capacity warm) rather than returned to the
/// heap. Under AddressSanitizer a free-listed node — struct and entry
/// storage both — is poisoned until reuse, so a stale Entry pointer
/// obtained from lookup() before the deletion becomes a detected
/// use-after-poison instead of a silent read of dead data (see
/// check/Check.h).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_OMC_INTERVALBTREE_H
#define ORP_OMC_INTERVALBTREE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace orp {

namespace check {
class OmcValidator;
} // namespace check

namespace omc {

/// B+-tree mapping non-overlapping half-open intervals [Start, End) to a
/// 64-bit value (the OMC stores object identifiers).
class IntervalBTree {
public:
  /// One stored interval.
  struct Entry {
    uint64_t Start;
    uint64_t End;
    uint64_t Value;
  };

  IntervalBTree();
  ~IntervalBTree();

  IntervalBTree(const IntervalBTree &) = delete;
  IntervalBTree &operator=(const IntervalBTree &) = delete;

  /// Inserts [Start, End) -> Value. The interval must be non-empty and
  /// must not overlap any stored interval (checked in debug builds).
  void insert(uint64_t Start, uint64_t End, uint64_t Value);

  /// Removes the interval whose start is exactly \p Start. Returns true
  /// if an interval was removed.
  bool erase(uint64_t Start);

  /// Returns the entry whose interval contains \p Addr, or nullptr. The
  /// pointer is invalidated by the next mutation.
  const Entry *lookup(uint64_t Addr) const;

  /// Returns true if some stored interval overlaps [Start, End).
  bool overlapsRange(uint64_t Start, uint64_t End) const;

  /// Returns the number of stored intervals.
  size_t size() const { return Count; }

  /// Returns the current tree height (1 for a lone leaf).
  size_t height() const { return Height; }

  /// Collects all entries in ascending Start order (leaf-chain walk).
  std::vector<Entry> toVector() const;

  /// Verifies structural invariants: sorted keys, consistent separators,
  /// non-empty non-root leaves, intact leaf chain. For tests.
  bool checkInvariants() const;

private:
  /// The deep invariant checker (src/check/OmcValidator.h) audits the
  /// node free list and its ASan poisoning.
  friend class ::orp::check::OmcValidator;

  struct Node;

  /// Result of an insertion that split a child.
  struct SplitResult {
    uint64_t SeparatorKey = 0;
    Node *NewRight = nullptr;
  };

  /// Pops a recycled node (unpoisoning it) or allocates a fresh one.
  Node *allocNode(bool IsLeaf);
  /// Pushes \p N onto the free list and poisons it.
  void freeNode(Node *N);

  SplitResult insertInto(Node *N, const Entry &E);
  bool eraseFrom(Node *N, uint64_t Start);
  const Entry *lookupIn(const Node *N, uint64_t Addr) const;
  static void destroy(Node *N);
  bool checkNode(const Node *N, uint64_t LowerBound, uint64_t UpperBound,
                 size_t Depth) const;

  Node *Root;
  size_t Count = 0;
  size_t Height = 1;
  /// Recycled nodes, chained through Node::Next; poisoned under ASan.
  Node *FreeNodes = nullptr;
};

} // namespace omc
} // namespace orp

#endif // ORP_OMC_INTERVALBTREE_H
