//===- omc/ObjectManager.h - Object-management component -------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's OMC (Section 2.3): "records information about every object
/// allocated in the program: the time when it is allocated and
/// de-allocated, the address range used by the object, and the type of
/// the object. Additionally, this component assigns an identifier to
/// every group and object ... Given an address, the OMC identifies the
/// group and object, and translates the raw address into a
/// (group, object, offset) triple."
///
/// Groups are formed per static allocation site ("the profiler groups
/// allocated dynamic objects by static instruction", Section 3.1);
/// objects receive serial numbers in allocation order within their group.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_OMC_OBJECTMANAGER_H
#define ORP_OMC_OBJECTMANAGER_H

#include "omc/IntervalBTree.h"
#include "trace/Events.h"

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

namespace orp {
namespace omc {

/// Dense identifier of a group (allocation site), first-seen order.
using GroupId = uint32_t;
/// Serial number of an object within its group, allocation order.
using ObjectSerial = uint64_t;

/// Result of translating a raw address.
struct Translation {
  GroupId Group;
  ObjectSerial Object;
  uint64_t Offset;   ///< Byte offset from the object's start.
  uint64_t ObjectId; ///< Global index into records().
};

/// Full lifetime record of one object ("the object lifetime and other
/// auxiliary information from the OMC unit"). This run/alloc-dependent
/// information is kept separate from the invariant object-relative
/// tuples, as the paper prescribes.
struct ObjectRecord {
  GroupId Group;
  ObjectSerial Serial;
  trace::AllocSiteId Site;
  uint64_t Base;
  uint64_t Size;
  uint64_t AllocTime;
  uint64_t FreeTime; ///< kLiveForever while the object is live.
  bool IsStatic;
};

/// OMC counters. Plain members bumped on the thread driving the OMC —
/// the telemetry layer publishes them via a snapshot-time collector,
/// so the per-access path stays a single increment.
struct OmcStats {
  uint64_t Translations = 0; ///< translate() calls that hit an object.
  uint64_t Misses = 0;       ///< translate() calls on unmapped addresses.
  uint64_t UnknownFrees = 0; ///< Frees of addresses with no live object.
  uint64_t MruHits = 0;      ///< Hits in the per-instruction MRU cache.
  uint64_t SharedCacheHits = 0; ///< Hits in the one-entry shared cache.
  uint64_t PageHits = 0; ///< Hits in the flat-hash page table.
};

/// The object-management component.
class ObjectManager {
public:
  /// FreeTime value of objects that are still live.
  static constexpr uint64_t kLiveForever = ~0ULL;

  /// Parameterizes pool handling for \p Site (the paper's Section 3.1
  /// footnote: custom allocation pools are treated as single objects by
  /// default, but "the profiler can be parameterized to handle this").
  /// After this call, every object allocated at \p Site is treated as a
  /// pool of \p ElementSize-byte sub-objects: translate() reports the
  /// element slot as the object serial and the offset within the
  /// element. Must be set before the site's first allocation.
  void splitPoolSite(trace::AllocSiteId Site, uint64_t ElementSize);

  /// Registers the object created by \p Event (object probe).
  void onAlloc(const trace::AllocEvent &Event);

  /// Retires the live object starting at Event.Addr. Unknown addresses
  /// are counted in stats().UnknownFrees and otherwise ignored.
  void onFree(const trace::FreeEvent &Event);

  /// Translates \p Addr into (group, object, offset); std::nullopt when
  /// no live object covers the address.
  std::optional<Translation> translate(uint64_t Addr);

  /// Translates \p Addr for an access by \p Instr. Functionally
  /// identical to translate(Addr), but consults a small per-instruction
  /// MRU cache first: loops that alternate between objects from
  /// different instructions (the vpr/parser pattern) thrash a single
  /// shared cache entry, while each instruction's own last object is
  /// highly stable. This is the entry point the CDC uses.
  std::optional<Translation> translate(uint64_t Addr, trace::InstrId Instr);

  /// Returns the group assigned to \p Site, creating it on first use.
  GroupId groupForSite(trace::AllocSiteId Site);

  /// Returns the group of \p Site if one was ever created.
  std::optional<GroupId> lookupGroupForSite(trace::AllocSiteId Site) const;

  /// Returns the allocation site behind \p Group.
  trace::AllocSiteId siteForGroup(GroupId Group) const;

  /// Returns the number of groups created so far.
  size_t numGroups() const { return GroupSites.size(); }

  /// Returns all object records (live and retired), ObjectId-indexed.
  const std::vector<ObjectRecord> &records() const { return Records; }

  /// Returns the number of currently live objects.
  size_t numLiveObjects() const { return LiveIndex.size(); }

  /// Returns OMC counters.
  const OmcStats &stats() const { return Stats; }

  /// Returns the live-object interval index (for tests/inspection).
  const IntervalBTree &liveIndex() const { return LiveIndex; }

private:
  /// The deep invariant checker (src/check/OmcValidator.h) cross-checks
  /// the caches, serial counters, and site/group maps against the
  /// authoritative records.
  friend class ::orp::check::OmcValidator;
  /// Serializes/restores the authoritative state (records, group maps,
  /// serial counters, live index) for mid-trace checkpointing; the
  /// caches are derived state and restart cold.
  friend class OmcCheckpoint;

  /// Completes a translation for the object \p ObjectId containing
  /// \p Addr, applying the pool-splitting policy when configured.
  Translation translateWithin(uint64_t ObjectId, uint64_t Addr);

  IntervalBTree LiveIndex;
  std::vector<ObjectRecord> Records;
  std::unordered_map<trace::AllocSiteId, GroupId> SiteToGroup;
  std::vector<trace::AllocSiteId> GroupSites;
  std::vector<ObjectSerial> NextSerial;
  /// Sites whose pools are split into fixed-size elements; value is the
  /// element size in bytes.
  std::unordered_map<trace::AllocSiteId, uint64_t> PoolElementSize;
  /// First element serial of each pool object (parallel to Records;
  /// ~0ULL for non-split objects).
  std::vector<ObjectSerial> PoolBaseSerial;
  OmcStats Stats;
  /// One-entry translation cache: consecutive accesses overwhelmingly
  /// hit the same object (field walks, buffer sweeps), so remembering
  /// the last hit short-circuits most B+-tree descents.
  uint64_t CachedBase = 1;
  uint64_t CachedEnd = 0;
  uint64_t CachedObjectId = 0;
  /// Per-instruction MRU translation cache, direct-mapped by the low
  /// bits of the instruction id (see translate(Addr, Instr)). An entry
  /// with End <= Base is empty; onFree() invalidates matching lines.
  struct CacheLine {
    uint64_t Base = 1;
    uint64_t End = 0;
    uint64_t ObjectId = 0;
  };
  static constexpr size_t InstrCacheLines = 64;
  std::array<CacheLine, InstrCacheLines> InstrCache;

  /// \name Flat-hash page translation tier
  /// Generalization of the MRU idea: an open-addressing table keyed by
  /// address page (Addr >> kPageShift) remembering which object last
  /// covered that page, consulted between the shared one-entry cache
  /// and the authoritative B+-tree. Unlike the caches above, entries
  /// are never invalidated on free: a hit is only served after
  /// re-validating against the object's record (still live, still
  /// covering the address), so a stale entry degrades into a probe miss
  /// and a tree descent, never a wrong translation. The table is
  /// bump-allocated on first insert (sessions that never allocate pay
  /// nothing) and bounded probing keeps the worst case flat.
  /// @{
  static constexpr unsigned kPageShift = 12;
  static constexpr size_t kPageTableSlots = 4096; ///< Power of two.
  static constexpr size_t kPageProbeLimit = 4;
  static constexpr uint64_t kEmptyPage = ~0ULL;
  struct PageEntry {
    uint64_t Page = kEmptyPage;
    uint64_t ObjectId = 0;
  };
  std::vector<PageEntry> PageTable; ///< Empty until the first insert.

  static size_t pageSlot(uint64_t Page) {
    // fmix-style multiplicative spread of the page bits over the table.
    return static_cast<size_t>((Page * 0x9E3779B97F4A7C15ULL) >> 32) &
           (kPageTableSlots - 1);
  }

  /// Page-table lookup for \p Addr; validates candidates against their
  /// records. Returns the covering live ObjectId or ~0ULL.
  uint64_t lookupPage(uint64_t Addr) const;

  /// Records that \p ObjectId (a live record covering \p Addr) serves
  /// \p Addr's page, overwriting a stale or colliding slot if needed.
  void rememberPage(uint64_t Addr, uint64_t ObjectId);
  /// @}
};

} // namespace omc
} // namespace orp

#endif // ORP_OMC_OBJECTMANAGER_H
