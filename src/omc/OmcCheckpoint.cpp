//===- omc/OmcCheckpoint.cpp - OMC state snapshot/restore ----------------===//

#include "omc/OmcCheckpoint.h"

#include "support/VarInt.h"

#include <algorithm>

using namespace orp;
using namespace orp::omc;

void OmcCheckpoint::serialize(const ObjectManager &Omc,
                              std::vector<uint8_t> &Out) {
  // Groups: the site behind each dense GroupId plus its serial counter.
  // GroupSites is already in GroupId order, so the image is
  // deterministic; SiteToGroup is its inverse and is rebuilt on restore.
  encodeULEB128(Omc.GroupSites.size(), Out);
  for (size_t G = 0; G != Omc.GroupSites.size(); ++G) {
    encodeULEB128(Omc.GroupSites[G], Out);
    encodeULEB128(Omc.NextSerial[G], Out);
  }

  // Pool-splitting parameters, sorted by site for deterministic bytes.
  std::vector<std::pair<trace::AllocSiteId, uint64_t>> Pools;
  Pools.reserve(Omc.PoolElementSize.size());
  // orp-lint: allow(unordered-serial): feeds the sort below.
  for (const auto &[Site, ElementSize] : Omc.PoolElementSize)
    Pools.emplace_back(Site, ElementSize);
  std::sort(Pools.begin(), Pools.end());
  encodeULEB128(Pools.size(), Out);
  for (const auto &[Site, ElementSize] : Pools) {
    encodeULEB128(Site, Out);
    encodeULEB128(ElementSize, Out);
  }

  // Object records in ObjectId order, each with its pool base serial.
  // The live interval set is implied: records with FreeTime ==
  // kLiveForever are exactly the LiveIndex entries.
  encodeULEB128(Omc.Records.size(), Out);
  for (size_t I = 0; I != Omc.Records.size(); ++I) {
    const ObjectRecord &Rec = Omc.Records[I];
    encodeULEB128(Rec.Group, Out);
    encodeULEB128(Rec.Serial, Out);
    encodeULEB128(Rec.Site, Out);
    encodeULEB128(Rec.Base, Out);
    encodeULEB128(Rec.Size, Out);
    encodeULEB128(Rec.AllocTime, Out);
    bool Freed = Rec.FreeTime != ObjectManager::kLiveForever;
    Out.push_back(Freed ? 1 : 0);
    if (Freed)
      encodeULEB128(Rec.FreeTime, Out);
    Out.push_back(Rec.IsStatic ? 1 : 0);
    uint64_t PoolBase = Omc.PoolBaseSerial[I];
    bool HasPoolBase = PoolBase != ~0ULL;
    Out.push_back(HasPoolBase ? 1 : 0);
    if (HasPoolBase)
      encodeULEB128(PoolBase, Out);
  }
}

bool OmcCheckpoint::restore(const uint8_t *Data, size_t Size, size_t &Pos,
                            ObjectManager &Omc, std::string &Err) {
  if (!Omc.Records.empty() || !Omc.GroupSites.empty() ||
      !Omc.PoolElementSize.empty()) {
    Err = "omc checkpoint: restore target is not freshly constructed";
    return false;
  }
  auto ReadU = [&](const char *What, uint64_t &Value) {
    VarIntStatus S = decodeULEB128Checked(Data, Size, Pos, Value);
    if (S != VarIntStatus::Ok) {
      Err = std::string("omc checkpoint: ") + What + ": " +
            varIntStatusName(S) + " varint";
      return false;
    }
    return true;
  };
  auto ReadFlag = [&](const char *What, bool &Value) {
    if (Pos >= Size) {
      Err = std::string("omc checkpoint: ") + What + ": truncated";
      return false;
    }
    uint8_t B = Data[Pos++];
    if (B > 1) {
      Err = std::string("omc checkpoint: ") + What + ": bad flag";
      return false;
    }
    Value = B != 0;
    return true;
  };

  uint64_t NumGroups = 0;
  if (!ReadU("group count", NumGroups))
    return false;
  if (NumGroups > (Size - Pos) / 2 + 1) {
    Err = "omc checkpoint: group count exceeds remaining bytes";
    return false;
  }
  Omc.GroupSites.reserve(NumGroups);
  Omc.NextSerial.reserve(NumGroups);
  for (uint64_t G = 0; G != NumGroups; ++G) {
    uint64_t Site = 0, Next = 0;
    if (!ReadU("group site", Site) || !ReadU("group next serial", Next))
      return false;
    auto SiteId = static_cast<trace::AllocSiteId>(Site);
    if (!Omc.SiteToGroup.emplace(SiteId, static_cast<GroupId>(G)).second) {
      Err = "omc checkpoint: duplicate group site";
      return false;
    }
    Omc.GroupSites.push_back(SiteId);
    Omc.NextSerial.push_back(Next);
  }

  uint64_t NumPools = 0;
  if (!ReadU("pool count", NumPools))
    return false;
  if (NumPools > (Size - Pos) / 2 + 1) {
    Err = "omc checkpoint: pool count exceeds remaining bytes";
    return false;
  }
  for (uint64_t P = 0; P != NumPools; ++P) {
    uint64_t Site = 0, ElementSize = 0;
    if (!ReadU("pool site", Site) ||
        !ReadU("pool element size", ElementSize))
      return false;
    if (ElementSize == 0) {
      Err = "omc checkpoint: zero pool element size";
      return false;
    }
    if (!Omc.PoolElementSize
             .emplace(static_cast<trace::AllocSiteId>(Site), ElementSize)
             .second) {
      Err = "omc checkpoint: duplicate pool site";
      return false;
    }
  }

  uint64_t NumRecords = 0;
  if (!ReadU("record count", NumRecords))
    return false;
  // Each record is at least 9 bytes (six varints plus three flags).
  if (NumRecords > (Size - Pos) / 9 + 1) {
    Err = "omc checkpoint: record count exceeds remaining bytes";
    return false;
  }
  Omc.Records.reserve(NumRecords);
  Omc.PoolBaseSerial.reserve(NumRecords);
  for (uint64_t I = 0; I != NumRecords; ++I) {
    ObjectRecord Rec;
    uint64_t Group = 0, Site = 0;
    bool Freed = false, IsStatic = false, HasPoolBase = false;
    if (!ReadU("record group", Group) ||
        !ReadU("record serial", Rec.Serial) ||
        !ReadU("record site", Site) || !ReadU("record base", Rec.Base) ||
        !ReadU("record size", Rec.Size) ||
        !ReadU("record alloc time", Rec.AllocTime))
      return false;
    if (Group >= NumGroups) {
      Err = "omc checkpoint: record references unknown group";
      return false;
    }
    Rec.Group = static_cast<GroupId>(Group);
    Rec.Site = static_cast<trace::AllocSiteId>(Site);
    Rec.FreeTime = ObjectManager::kLiveForever;
    if (!ReadFlag("freed flag", Freed))
      return false;
    if (Freed && !ReadU("record free time", Rec.FreeTime))
      return false;
    if (!ReadFlag("static flag", IsStatic))
      return false;
    Rec.IsStatic = IsStatic;
    uint64_t PoolBase = ~0ULL;
    if (!ReadFlag("pool flag", HasPoolBase))
      return false;
    if (HasPoolBase) {
      if (!ReadU("pool base serial", PoolBase))
        return false;
      if (Omc.PoolElementSize.find(Rec.Site) ==
          Omc.PoolElementSize.end()) {
        Err = "omc checkpoint: pool record for a non-pool site";
        return false;
      }
    }
    if (Rec.Size == 0 || Rec.Base + Rec.Size < Rec.Base) {
      Err = "omc checkpoint: record with empty or wrapping range";
      return false;
    }
    if (Rec.FreeTime == ObjectManager::kLiveForever) {
      // Re-grow the live interval index; overlapping live ranges mean
      // the checkpoint is corrupt (the tree requires disjointness).
      if (Omc.LiveIndex.overlapsRange(Rec.Base, Rec.Base + Rec.Size)) {
        Err = "omc checkpoint: overlapping live objects";
        return false;
      }
      Omc.LiveIndex.insert(Rec.Base, Rec.Base + Rec.Size,
                           Omc.Records.size());
    }
    Omc.Records.push_back(Rec);
    Omc.PoolBaseSerial.push_back(PoolBase);
  }
  return true;
}
