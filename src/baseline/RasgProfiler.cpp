//===- baseline/RasgProfiler.cpp - Raw-address Sequitur baseline ---------===//

#include "baseline/RasgProfiler.h"

// Header-only behavior; this TU anchors the library and keeps the header
// self-contained check honest.
