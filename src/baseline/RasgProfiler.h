//===- baseline/RasgProfiler.h - Raw-address Sequitur baseline -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The conventional lossless baseline of Figure 5: "we also generate the
/// conventional RASG using the raw address stream (similar to the
/// grammars in [Rubin et al.])". The (instruction-id, raw address)
/// access stream is compressed into one Sequitur grammar per component;
/// WHOMP's OMSG carries the same instruction stream plus the three
/// object-relative location dimensions, so the two profiles are
/// information-equivalent lossless records of the same run.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_BASELINE_RASGPROFILER_H
#define ORP_BASELINE_RASGPROFILER_H

#include "sequitur/Sequitur.h"
#include "trace/Events.h"

#include <cstddef>

namespace orp {
namespace baseline {

/// Raw-address Sequitur grammar profiler.
class RasgProfiler : public trace::TraceSink {
public:
  void onAccess(const trace::AccessEvent &Event) override {
    AddrGrammar.append(Event.Addr);
    InstrGrammar.append(Event.Instr);
    ++Accesses;
  }
  void onAlloc(const trace::AllocEvent &) override {}
  void onFree(const trace::FreeEvent &) override {}

  /// Returns the grammar over the raw address stream.
  const sequitur::SequiturGrammar &addressGrammar() const {
    return AddrGrammar;
  }

  /// Returns the grammar over the instruction-id stream.
  const sequitur::SequiturGrammar &instructionGrammar() const {
    return InstrGrammar;
  }

  /// Returns the total serialized RASG size in bytes.
  size_t serializedSizeBytes() const {
    return AddrGrammar.serializedSizeBytes() +
           InstrGrammar.serializedSizeBytes();
  }

  /// Returns the number of accesses compressed.
  uint64_t accessesSeen() const { return Accesses; }

private:
  sequitur::SequiturGrammar AddrGrammar;
  sequitur::SequiturGrammar InstrGrammar;
  uint64_t Accesses = 0;
};

} // namespace baseline
} // namespace orp

#endif // ORP_BASELINE_RASGPROFILER_H
