//===- baseline/ExactDependence.h - Lossless dependence profiler -*- C++ -*-=//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's lossless reference for Application 1: "a lossless
/// raw-address based profiler which records the dependence information
/// of all the memory operations in a program ... extremely slow and
/// produces huge profiles" (Section 4.2.1). For every executed load it
/// records a conflict with every store instruction that wrote the same
/// raw address at any earlier time (the paper's read-after-write
/// definition), yielding the exact MDF for every pair.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_BASELINE_EXACTDEPENDENCE_H
#define ORP_BASELINE_EXACTDEPENDENCE_H

#include "analysis/Mdf.h"
#include "trace/Events.h"

#include <unordered_map>
#include <vector>

namespace orp {
namespace baseline {

/// Exact (ground-truth) RAW dependence profiler over raw addresses.
class ExactDependenceProfiler : public trace::TraceSink {
public:
  void onAccess(const trace::AccessEvent &Event) override;
  void onAlloc(const trace::AllocEvent &) override {}
  void onFree(const trace::FreeEvent &) override {}

  /// Returns the exact MDF map (pairs with at least one conflict).
  analysis::MdfMap mdf() const;

  /// Returns the number of executions recorded for load \p Instr.
  uint64_t loadExecCount(trace::InstrId Instr) const;

  /// Returns the raw conflict count for (\p Store, \p Load).
  uint64_t conflictCount(trace::InstrId Store, trace::InstrId Load) const;

private:
  struct PairHash {
    size_t operator()(const analysis::InstrPair &P) const {
      return (static_cast<size_t>(P.first) << 32) ^ P.second;
    }
  };

  /// Distinct store instructions that have written each address so far.
  std::unordered_map<uint64_t, std::vector<trace::InstrId>> Writers;
  std::unordered_map<analysis::InstrPair, uint64_t, PairHash> Conflicts;
  std::unordered_map<trace::InstrId, uint64_t> LoadExecs;
};

} // namespace baseline
} // namespace orp

#endif // ORP_BASELINE_EXACTDEPENDENCE_H
