//===- baseline/ConnorsProfiler.h - Window dependence profiler -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Re-implementation of the comparison profiler of Connors ("Memory
/// profiling for directing data speculative optimizations and
/// scheduling", UIUC MS thesis, 1997), as the paper itself re-implements
/// it for Figure 7: instruction-indexed, detecting a dependence only
/// when the load's address is found among the addresses of the last W
/// stores ("identifies dependences only in a small window of
/// instructions based on addresses recorded in a small history window").
/// It therefore never overestimates a frequency, but misses any
/// dependence whose store-to-load distance exceeds the window.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_BASELINE_CONNORSPROFILER_H
#define ORP_BASELINE_CONNORSPROFILER_H

#include "analysis/Mdf.h"
#include "trace/Events.h"

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

namespace orp {
namespace baseline {

/// Window-based dependence profiler (Connors-style baseline).
class ConnorsProfiler : public trace::TraceSink {
public:
  /// Default window size; chosen (as in the paper) so the profiler's
  /// running cost is comparable to LEAP's.
  static constexpr size_t DefaultWindowSize = 4096;

  explicit ConnorsProfiler(size_t WindowSize = DefaultWindowSize);

  void onAccess(const trace::AccessEvent &Event) override;
  void onAlloc(const trace::AllocEvent &) override {}
  void onFree(const trace::FreeEvent &) override {}

  /// Returns the estimated MDF map.
  analysis::MdfMap mdf() const;

  /// Returns the configured window size.
  size_t windowSize() const { return Window; }

private:
  struct PairHash {
    size_t operator()(const analysis::InstrPair &P) const {
      return (static_cast<size_t>(P.first) << 32) ^ P.second;
    }
  };

  size_t Window;
  /// FIFO of the last Window stores.
  std::deque<std::pair<uint64_t, trace::InstrId>> History;
  /// Store instructions currently in the window, per address.
  std::unordered_map<uint64_t, std::vector<trace::InstrId>> InWindow;
  std::unordered_map<analysis::InstrPair, uint64_t, PairHash> Conflicts;
  std::unordered_map<trace::InstrId, uint64_t> LoadExecs;
};

} // namespace baseline
} // namespace orp

#endif // ORP_BASELINE_CONNORSPROFILER_H
