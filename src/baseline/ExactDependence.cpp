//===- baseline/ExactDependence.cpp - Lossless dependence profiler -------===//

#include "baseline/ExactDependence.h"

#include <algorithm>

using namespace orp;
using namespace orp::baseline;

void ExactDependenceProfiler::onAccess(const trace::AccessEvent &Event) {
  if (Event.IsStore) {
    std::vector<trace::InstrId> &Ws = Writers[Event.Addr];
    if (std::find(Ws.begin(), Ws.end(), Event.Instr) == Ws.end())
      Ws.push_back(Event.Instr);
    return;
  }
  ++LoadExecs[Event.Instr];
  auto It = Writers.find(Event.Addr);
  if (It == Writers.end())
    return;
  for (trace::InstrId Store : It->second)
    ++Conflicts[{Store, Event.Instr}];
}

analysis::MdfMap ExactDependenceProfiler::mdf() const {
  analysis::MdfMap Result;
  for (const auto &[Pair, Count] : Conflicts) {
    uint64_t Execs = LoadExecs.at(Pair.second);
    Result[Pair] = static_cast<double>(Count) / static_cast<double>(Execs);
  }
  return Result;
}

uint64_t
ExactDependenceProfiler::loadExecCount(trace::InstrId Instr) const {
  auto It = LoadExecs.find(Instr);
  return It == LoadExecs.end() ? 0 : It->second;
}

uint64_t ExactDependenceProfiler::conflictCount(trace::InstrId Store,
                                                trace::InstrId Load) const {
  auto It = Conflicts.find({Store, Load});
  return It == Conflicts.end() ? 0 : It->second;
}
