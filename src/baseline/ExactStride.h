//===- baseline/ExactStride.h - Lossless stride profiler -------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's lossless stride reference for Application 2: "we
/// re-implement the stride profiling in [Wu, PLDI 2002] with a setting
/// to make it lossless and track all the strides for a given instruction
/// (which is extremely slow because of the huge amount of stride
/// information to be tracked)". Per instruction it records the delta
/// between every pair of consecutive raw addresses; an instruction is
/// strongly strided when one stride accounts for >= 70% of its steps.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_BASELINE_EXACTSTRIDE_H
#define ORP_BASELINE_EXACTSTRIDE_H

#include "analysis/Stride.h"
#include "trace/Events.h"

#include <cstdint>
#include <unordered_map>

namespace orp {
namespace baseline {

/// Exact (ground-truth) per-instruction stride profiler.
class ExactStrideProfiler : public trace::TraceSink {
public:
  void onAccess(const trace::AccessEvent &Event) override;
  void onAlloc(const trace::AllocEvent &) override {}
  void onFree(const trace::FreeEvent &) override {}

  /// Returns the strongly-strided instructions at \p Threshold (share of
  /// consecutive-access steps covered by the dominant stride).
  analysis::StrideMap stronglyStrided(
      double Threshold = analysis::StrongStrideThreshold) const;

  /// Returns the full stride histogram of \p Instr (empty if unseen).
  const std::unordered_map<int64_t, uint64_t> &
  strides(trace::InstrId Instr) const;

private:
  struct PerInstr {
    bool HasLast = false;
    uint64_t LastAddr = 0;
    uint64_t Steps = 0;
    std::unordered_map<int64_t, uint64_t> StrideCounts;
  };
  std::unordered_map<trace::InstrId, PerInstr> ByInstr;
};

} // namespace baseline
} // namespace orp

#endif // ORP_BASELINE_EXACTSTRIDE_H
