//===- baseline/ConnorsProfiler.cpp - Window dependence profiler ---------===//

#include "baseline/ConnorsProfiler.h"

#include <algorithm>
#include <cassert>

using namespace orp;
using namespace orp::baseline;

ConnorsProfiler::ConnorsProfiler(size_t WindowSize) : Window(WindowSize) {
  assert(WindowSize > 0 && "window must be non-empty");
}

void ConnorsProfiler::onAccess(const trace::AccessEvent &Event) {
  if (Event.IsStore) {
    History.emplace_back(Event.Addr, Event.Instr);
    InWindow[Event.Addr].push_back(Event.Instr);
    if (History.size() > Window) {
      auto [OldAddr, OldInstr] = History.front();
      History.pop_front();
      auto It = InWindow.find(OldAddr);
      assert(It != InWindow.end() && "window index out of sync");
      auto &Ids = It->second;
      Ids.erase(std::find(Ids.begin(), Ids.end(), OldInstr));
      if (Ids.empty())
        InWindow.erase(It);
    }
    return;
  }

  ++LoadExecs[Event.Instr];
  auto It = InWindow.find(Event.Addr);
  if (It == InWindow.end())
    return;
  // Count each distinct store instruction in the window once per load
  // execution.
  const auto &Ids = It->second;
  for (size_t I = 0; I != Ids.size(); ++I) {
    bool SeenBefore = false;
    for (size_t J = 0; J != I; ++J)
      if (Ids[J] == Ids[I]) {
        SeenBefore = true;
        break;
      }
    if (!SeenBefore)
      ++Conflicts[{Ids[I], Event.Instr}];
  }
}

analysis::MdfMap ConnorsProfiler::mdf() const {
  analysis::MdfMap Result;
  for (const auto &[Pair, Count] : Conflicts) {
    uint64_t Execs = LoadExecs.at(Pair.second);
    Result[Pair] = static_cast<double>(Count) / static_cast<double>(Execs);
  }
  return Result;
}
