//===- baseline/ExactStride.cpp - Lossless stride profiler ---------------===//

#include "baseline/ExactStride.h"

using namespace orp;
using namespace orp::baseline;

void ExactStrideProfiler::onAccess(const trace::AccessEvent &Event) {
  PerInstr &P = ByInstr[Event.Instr];
  if (P.HasLast) {
    int64_t Stride = static_cast<int64_t>(Event.Addr) -
                     static_cast<int64_t>(P.LastAddr);
    ++P.StrideCounts[Stride];
    ++P.Steps;
  }
  P.HasLast = true;
  P.LastAddr = Event.Addr;
}

analysis::StrideMap
ExactStrideProfiler::stronglyStrided(double Threshold) const {
  analysis::StrideMap Result;
  for (const auto &[Instr, P] : ByInstr) {
    if (P.Steps == 0)
      continue;
    int64_t BestStride = 0;
    uint64_t BestCount = 0;
    for (const auto &[Stride, Count] : P.StrideCounts)
      if (Count > BestCount ||
          (Count == BestCount && Stride < BestStride)) {
        BestStride = Stride;
        BestCount = Count;
      }
    double Share =
        static_cast<double>(BestCount) / static_cast<double>(P.Steps);
    if (Share >= Threshold)
      Result[Instr] = analysis::StrideInfo{BestStride, Share};
  }
  return Result;
}

const std::unordered_map<int64_t, uint64_t> &
ExactStrideProfiler::strides(trace::InstrId Instr) const {
  static const std::unordered_map<int64_t, uint64_t> Empty;
  auto It = ByInstr.find(Instr);
  return It == ByInstr.end() ? Empty : It->second.StrideCounts;
}
