//===- lmad/Lmad.cpp - Linear memory access descriptors ------------------===//

#include "lmad/Lmad.h"

using namespace orp;
using namespace orp::lmad;

bool Lmad::contains(const Point &P) const {
  // Find a single index K consistent across all dimensions.
  bool HaveK = false;
  uint64_t K = 0;
  for (unsigned D = 0; D != Dims; ++D) {
    int64_t Delta = P[D] - Start[D];
    if (Stride[D] == 0) {
      if (Delta != 0)
        return false;
      continue;
    }
    if (Delta % Stride[D] != 0)
      return false;
    int64_t Idx = Delta / Stride[D];
    if (Idx < 0 || static_cast<uint64_t>(Idx) >= Count)
      return false;
    if (HaveK && static_cast<uint64_t>(Idx) != K)
      return false;
    K = static_cast<uint64_t>(Idx);
    HaveK = true;
  }
  // All-zero strides: P must equal Start (checked above) and any K works.
  return true;
}
