//===- lmad/Lmad.h - Linear memory access descriptors ----------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The linear memory access descriptor of the paper's Section 4.1,
/// following the LMAD model of Paek & Hoeflinger. A descriptor is the
/// triple [start, stride, count] where start and stride are n-by-1
/// vectors over the dimensions of the compressed stream (n = 3 for the
/// (object, offset, time) sub-streams LEAP produces, n = 1 for plain
/// offset streams). The descriptor denotes the point sequence
///
///     P(k) = Start + k * Stride,   0 <= k < Count.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_LMAD_LMAD_H
#define ORP_LMAD_LMAD_H

#include <array>
#include <cassert>
#include <cstdint>

namespace orp {
namespace lmad {

/// Maximum tuple dimensionality supported by descriptors.
constexpr unsigned MaxDims = 3;

/// A point in the (up to) 3-dimensional stream space.
using Point = std::array<int64_t, MaxDims>;

/// One linear memory access descriptor.
struct Lmad {
  Point Start = {0, 0, 0};
  Point Stride = {0, 0, 0};
  uint64_t Count = 0;
  unsigned Dims = 0;

  /// Returns component \p Dim of the \p K-th point.
  int64_t at(uint64_t K, unsigned Dim) const {
    assert(Dim < Dims && "dimension out of range");
    assert(K < Count && "index beyond descriptor count");
    return Start[Dim] + static_cast<int64_t>(K) * Stride[Dim];
  }

  /// Returns the \p K-th point (unused dimensions are zero).
  Point pointAt(uint64_t K) const {
    Point P = {0, 0, 0};
    for (unsigned D = 0; D != Dims; ++D)
      P[D] = at(K, D);
    return P;
  }

  /// Returns the point that would extend this descriptor (index Count).
  Point nextExpected() const {
    Point P = {0, 0, 0};
    for (unsigned D = 0; D != Dims; ++D)
      P[D] = Start[D] + static_cast<int64_t>(Count) * Stride[D];
    return P;
  }

  /// Returns true if \p P equals the point at index Count.
  bool extends(const Point &P) const {
    for (unsigned D = 0; D != Dims; ++D)
      if (P[D] != Start[D] + static_cast<int64_t>(Count) * Stride[D])
        return false;
    return true;
  }

  /// Returns true if \p P is one of the Count points (solves the
  /// per-dimension index equations consistently).
  bool contains(const Point &P) const;
};

} // namespace lmad
} // namespace orp

#endif // ORP_LMAD_LMAD_H
