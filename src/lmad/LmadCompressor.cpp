//===- lmad/LmadCompressor.cpp - Incremental linear compression ----------===//

#include "lmad/LmadCompressor.h"

#include "support/VarInt.h"

#include <algorithm>
#include <numeric>

using namespace orp;
using namespace orp::lmad;

LmadCompressor::LmadCompressor(unsigned Dims, unsigned MaxLmads)
    : NumDims(Dims), MaxLmads(MaxLmads) {
  assert(Dims >= 1 && Dims <= lmad::MaxDims && "unsupported dimensionality");
  assert(MaxLmads >= 1 && "need at least one descriptor");
}

void LmadCompressor::addPoint(const Point &P) {
  ++Total;

  // Fast path: the point continues the current (last) descriptor.
  if (!Descriptors.empty() && Overflow.Dropped == 0) {
    Lmad &Active = Descriptors.back();
    if (Active.Count == 1) {
      // Second point of a fresh descriptor establishes the stride.
      for (unsigned D = 0; D != NumDims; ++D)
        Active.Stride[D] = P[D] - Active.Start[D];
      Active.Count = 2;
      return;
    }
    if (Active.extends(P)) {
      ++Active.Count;
      return;
    }
    // A two-point descriptor that fails to extend guessed its stride from
    // an unrelated pair: shrink it back to one point and let its second
    // point seed the next run, so runs broken by a stray access are still
    // found. (Example: 0, 100, 104, 108 becomes [0] and [100,+4,3] rather
    // than [0,+100,2] and [104,+4,2].)
    if (Active.Count == 2 && Descriptors.size() < MaxLmads) {
      Point Second = Active.pointAt(1);
      Active.Count = 1;
      Active.Stride = {0, 0, 0};
      startNewLmad(Second);
      Lmad &Fresh = Descriptors.back();
      for (unsigned D = 0; D != NumDims; ++D)
        Fresh.Stride[D] = P[D] - Fresh.Start[D];
      Fresh.Count = 2;
      return;
    }
  }

  if (Overflow.Dropped == 0 && Descriptors.size() < MaxLmads) {
    startNewLmad(P);
    return;
  }
  discard(P);
}

void LmadCompressor::startNewLmad(const Point &P) {
  Lmad L;
  L.Dims = NumDims;
  L.Start = P;
  L.Stride = {0, 0, 0};
  L.Count = 1;
  Descriptors.push_back(L);
}

void LmadCompressor::discard(const Point &P) {
  if (Overflow.Dropped == 0) {
    Overflow.Min = P;
    Overflow.Max = P;
    FirstDiscard = P;
  } else {
    for (unsigned D = 0; D != NumDims; ++D) {
      Overflow.Min[D] = std::min(Overflow.Min[D], P[D]);
      Overflow.Max[D] = std::max(Overflow.Max[D], P[D]);
    }
  }
  if (HavePrevDiscard)
    for (unsigned D = 0; D != NumDims; ++D) {
      uint64_t Delta = static_cast<uint64_t>(
          P[D] > PrevDiscard[D] ? P[D] - PrevDiscard[D]
                                : PrevDiscard[D] - P[D]);
      Overflow.Granularity[D] = static_cast<int64_t>(
          std::gcd(static_cast<uint64_t>(Overflow.Granularity[D]), Delta));
    }
  PrevDiscard = P;
  HavePrevDiscard = true;
  ++Overflow.Dropped;
}

size_t LmadCompressor::serializedSizeBytes() const {
  size_t Size = sizeULEB128(Descriptors.size());
  for (const Lmad &L : Descriptors) {
    for (unsigned D = 0; D != NumDims; ++D) {
      Size += sizeSLEB128(L.Start[D]);
      Size += sizeSLEB128(L.Stride[D]);
    }
    Size += sizeULEB128(L.Count);
  }
  Size += 1; // Overflow-present flag.
  if (Overflow.Dropped != 0) {
    Size += sizeULEB128(Overflow.Dropped);
    for (unsigned D = 0; D != NumDims; ++D) {
      Size += sizeSLEB128(Overflow.Min[D]);
      Size += sizeSLEB128(Overflow.Max[D]);
      Size += sizeSLEB128(Overflow.Granularity[D]);
    }
    // The discard endpoints, kept so split profiles stay mergeable.
    for (unsigned D = 0; D != NumDims; ++D) {
      Size += sizeSLEB128(FirstDiscard[D]);
      Size += sizeSLEB128(PrevDiscard[D]);
    }
  }
  return Size;
}

LmadCompressor LmadCompressor::resume(unsigned Dims, unsigned MaxLmads,
                                      std::vector<Lmad> Descriptors,
                                      uint64_t TotalPoints,
                                      const OverflowSummary &Overflow,
                                      const Point &First,
                                      const Point &Last) {
  LmadCompressor C(Dims, MaxLmads);
  assert(Descriptors.size() <= MaxLmads && "descriptor cap violated");
  C.Descriptors = std::move(Descriptors);
  C.Total = TotalPoints;
  C.Overflow = Overflow;
  if (Overflow.Dropped != 0) {
    C.FirstDiscard = First;
    C.PrevDiscard = Last;
    C.HavePrevDiscard = true;
  }
  return C;
}

void LmadCompressor::foldOverflowTail(const OverflowSummary &Tail,
                                      const Point &TailFirst,
                                      const Point &TailLast) {
  if (Tail.Dropped == 0)
    return;
  Total += Tail.Dropped;
  if (Overflow.Dropped == 0) {
    // Nothing was dropped on this side: the tail's summary carries over
    // unchanged. A segment merge lands here only when the continuation
    // segment's own compressor gave up before the unsplit capture
    // horizon; the merged profile then degrades to a coarser (but still
    // conservative) summary instead of the byte-exact reproduction
    // (DESIGN.md section 17).
    Overflow = Tail;
    FirstDiscard = TailFirst;
    PrevDiscard = TailLast;
    HavePrevDiscard = true;
    return;
  }
  for (unsigned D = 0; D != NumDims; ++D) {
    Overflow.Min[D] = std::min(Overflow.Min[D], Tail.Min[D]);
    Overflow.Max[D] = std::max(Overflow.Max[D], Tail.Max[D]);
    // The unsplit compressor would have chained PrevDiscard -> TailFirst
    // -> ... -> TailLast; gcd over the bridge delta plus the tail's own
    // gcd reproduces that chain exactly.
    uint64_t Bridge = static_cast<uint64_t>(
        TailFirst[D] > PrevDiscard[D] ? TailFirst[D] - PrevDiscard[D]
                                      : PrevDiscard[D] - TailFirst[D]);
    uint64_t G =
        std::gcd(static_cast<uint64_t>(Overflow.Granularity[D]), Bridge);
    G = std::gcd(G, static_cast<uint64_t>(Tail.Granularity[D]));
    Overflow.Granularity[D] = static_cast<int64_t>(G);
  }
  Overflow.Dropped += Tail.Dropped;
  PrevDiscard = TailLast;
}

std::vector<Point> LmadCompressor::reconstruct() const {
  std::vector<Point> Out;
  Out.reserve(capturedPoints());
  for (const Lmad &L : Descriptors)
    for (uint64_t K = 0; K != L.Count; ++K)
      Out.push_back(L.pointAt(K));
  return Out;
}
