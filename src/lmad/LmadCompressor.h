//===- lmad/LmadCompressor.h - Incremental linear compression --*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's linear compressor (Section 4.1): "reads each symbol in
/// the data stream and attempts to describe the stream using its linear
/// descriptors. If the new symbol does not fit into the current linear
/// pattern, it will start a new LMAD for this symbol." A stream is
/// allowed a bounded number of descriptors (the paper fixes 30 per
/// (instruction, group) pair); once exhausted "the compressor will then
/// discard the new symbols in the stream, and only record some overall
/// information such as max, min, and granularity", making the retained
/// descriptors a sample of the initial part of the stream.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_LMAD_LMADCOMPRESSOR_H
#define ORP_LMAD_LMADCOMPRESSOR_H

#include "lmad/Lmad.h"

#include <cstddef>
#include <vector>

namespace orp {
namespace lmad {

/// Summary retained for the discarded portion of an overflowing stream.
struct OverflowSummary {
  uint64_t Dropped = 0; ///< Points not represented by any descriptor.
  Point Min = {0, 0, 0};
  Point Max = {0, 0, 0};
  /// Per-dimension gcd of deltas between consecutive discarded points
  /// (0 until two points have been discarded).
  Point Granularity = {0, 0, 0};
};

/// Incremental bounded-size LMAD compressor for one decomposed stream.
class LmadCompressor {
public:
  /// Default descriptor cap, the paper's chosen value.
  static constexpr unsigned DefaultMaxLmads = 30;

  /// Creates a compressor for \p Dims-dimensional points with at most
  /// \p MaxLmads descriptors.
  explicit LmadCompressor(unsigned Dims,
                          unsigned MaxLmads = DefaultMaxLmads);

  /// Feeds the next point of the stream.
  void addPoint(const Point &P);

  /// Convenience for 1-dimensional streams.
  void addValue(int64_t V) {
    assert(NumDims == 1 && "addValue on a multi-dimensional stream");
    addPoint(Point{V, 0, 0});
  }

  /// Returns the collected descriptors.
  const std::vector<Lmad> &lmads() const { return Descriptors; }

  /// Returns the number of points fed so far.
  uint64_t totalPoints() const { return Total; }

  /// Returns the number of points represented by descriptors.
  uint64_t capturedPoints() const { return Total - Overflow.Dropped; }

  /// Returns true when no point was discarded.
  bool fullyCaptured() const { return Overflow.Dropped == 0; }

  /// Returns the overflow summary (Dropped == 0 when none).
  const OverflowSummary &overflow() const { return Overflow; }

  /// Returns true once at least one point has been discarded.
  bool hasDiscards() const { return Overflow.Dropped != 0; }

  /// First discarded point. Meaningful only when hasDiscards(); together
  /// with lastDiscard() it lets the granularity chain be bridged across a
  /// segment boundary when two profiles of a split stream are merged.
  const Point &firstDiscard() const { return FirstDiscard; }

  /// Last discarded point. Meaningful only when hasDiscards().
  const Point &lastDiscard() const { return PrevDiscard; }

  /// Returns the descriptor cap.
  unsigned maxLmads() const { return MaxLmads; }

  /// Returns the stream dimensionality.
  unsigned dims() const { return NumDims; }

  /// Returns the serialized size of the profile entry for this stream:
  /// descriptor list plus (if any) the overflow summary, ULEB/SLEB128-
  /// encoded. These bytes are what Table 1's compression ratio counts.
  size_t serializedSizeBytes() const;

  /// Reconstructs the captured prefix of the stream by concatenating the
  /// descriptors in creation order; for tests of losslessness on fully
  /// captured streams. Discarding is sticky (once a point is dropped all
  /// later ones are), so the result is always an exact time-ordered
  /// prefix of the fed stream — the property segment merging relies on.
  std::vector<Point> reconstruct() const;

  /// Rebuilds a compressor mid-stream from a previously captured state,
  /// so a later segment's points can be fed through addPoint as if the
  /// stream had never been split. \p Descriptors, \p TotalPoints,
  /// \p Overflow and the discard endpoints must all come from one
  /// compressor with the same \p Dims and \p MaxLmads; \p First and
  /// \p Last are ignored when \p Overflow.Dropped == 0.
  static LmadCompressor resume(unsigned Dims, unsigned MaxLmads,
                               std::vector<Lmad> Descriptors,
                               uint64_t TotalPoints,
                               const OverflowSummary &Overflow,
                               const Point &First, const Point &Last);

  /// Folds the overflow summary of a continuation segment into this
  /// compressor, exactly as if the summarized points had been fed
  /// individually: Dropped adds, Min/Max widen, and the granularity
  /// chain is bridged across the boundary through \p TailFirst before
  /// adopting the tail's own gcd. \p TailLast becomes the new last
  /// discard. No-op when \p Tail.Dropped == 0.
  void foldOverflowTail(const OverflowSummary &Tail, const Point &TailFirst,
                        const Point &TailLast);

private:
  void startNewLmad(const Point &P);
  void discard(const Point &P);

  unsigned NumDims;
  unsigned MaxLmads;
  std::vector<Lmad> Descriptors;
  uint64_t Total = 0;
  OverflowSummary Overflow;
  bool HavePrevDiscard = false;
  Point FirstDiscard = {0, 0, 0};
  Point PrevDiscard = {0, 0, 0};
};

} // namespace lmad
} // namespace orp

#endif // ORP_LMAD_LMADCOMPRESSOR_H
