//===- trace/MetricsTicker.h - Periodic snapshot emission ------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A pass-through TraceSink that takes a telemetry snapshot every N
/// events, driving the CLIs' --metrics-interval option. Event-count
/// cadence (instead of wall time) keeps the emission deterministic: the
/// same trace produces snapshots at the same stream positions on every
/// run, and no timer thread is needed. Snapshots are taken on the
/// pipeline-driving thread, exactly as the registry's snapshot
/// discipline requires.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACE_METRICSTICKER_H
#define ORP_TRACE_METRICSTICKER_H

#include "telemetry/Registry.h"
#include "trace/Events.h"

#include <functional>

namespace orp {
namespace trace {

/// Counts events flowing past and hands a fresh MetricsSnapshot to the
/// emit callback every \p IntervalEvents events. Attach as an
/// additional raw sink; it never modifies the stream.
class MetricsTicker : public TraceSink {
public:
  using Emit = std::function<void(const telemetry::MetricsSnapshot &)>;

  MetricsTicker(uint64_t IntervalEvents, Emit Fn)
      : Interval(IntervalEvents ? IntervalEvents : 1), NextAt(Interval),
        Fn(std::move(Fn)) {}

  void onAccess(const AccessEvent &) override { tick(1); }
  void onAccessBatch(std::span<const AccessEvent> Events) override {
    tick(Events.size());
  }
  void onAlloc(const AllocEvent &) override { tick(1); }
  void onFree(const FreeEvent &) override { tick(1); }

  /// Number of events seen so far.
  uint64_t eventsSeen() const { return Events; }

private:
  void tick(uint64_t N) {
    Events += N;
    // A large batch may cross several boundaries; emit once per crossing
    // so the snapshot cadence stays stable regardless of batch size.
    while (Events >= NextAt) {
      NextAt += Interval;
      Fn(telemetry::Registry::global().snapshot());
    }
  }

  uint64_t Interval;
  uint64_t NextAt;
  uint64_t Events = 0;
  Emit Fn;
};

} // namespace trace
} // namespace orp

#endif // ORP_TRACE_METRICSTICKER_H
