//===- trace/InstructionRegistry.cpp - Static probe site tables ----------===//

#include "trace/InstructionRegistry.h"

#include <cassert>

using namespace orp;
using namespace orp::trace;

InstrId InstructionRegistry::addInstruction(std::string Name,
                                            AccessKind Kind) {
  Instrs.push_back(InstrInfo{std::move(Name), Kind});
  return static_cast<InstrId>(Instrs.size() - 1);
}

AllocSiteId InstructionRegistry::addAllocSite(std::string Name,
                                              std::string TypeName) {
  Sites.push_back(AllocSiteInfo{std::move(Name), std::move(TypeName)});
  return static_cast<AllocSiteId>(Sites.size() - 1);
}

const InstrInfo &InstructionRegistry::instruction(InstrId Id) const {
  assert(Id < Instrs.size() && "unknown instruction id");
  return Instrs[Id];
}

const AllocSiteInfo &InstructionRegistry::allocSite(AllocSiteId Id) const {
  assert(Id < Sites.size() && "unknown allocation site id");
  return Sites[Id];
}
