//===- trace/InstructionRegistry.h - Static probe site tables --*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tables of static probe sites. The paper instruments a binary by
/// inserting an instruction probe next to every load/store and an object
/// probe at every allocation/deallocation point; each probe carries a
/// static identifier. Workload analogues in this repository declare the
/// same identifiers here: one InstrId per source-level load/store site and
/// one AllocSiteId per allocation site. Allocation sites are what the
/// paper's OMC uses to form groups ("the profiler groups allocated dynamic
/// objects by static instruction", Section 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACE_INSTRUCTIONREGISTRY_H
#define ORP_TRACE_INSTRUCTIONREGISTRY_H

#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace trace {

/// Identifier of a static load/store instruction (probe site).
using InstrId = uint32_t;
/// Identifier of a static allocation site (object probe site).
using AllocSiteId = uint32_t;

/// Whether a memory instruction reads or writes.
enum class AccessKind : uint8_t { Load, Store };

/// Metadata for one static memory instruction.
struct InstrInfo {
  std::string Name;
  AccessKind Kind;
};

/// Metadata for one static allocation site.
struct AllocSiteInfo {
  std::string Name;     ///< E.g. "mcf: new arc".
  std::string TypeName; ///< Optional element type ("struct arc").
};

/// Registry of all static probe sites of one instrumented program.
class InstructionRegistry {
public:
  /// Registers a load/store site; returns its InstrId.
  InstrId addInstruction(std::string Name, AccessKind Kind);

  /// Registers an allocation site; returns its AllocSiteId.
  AllocSiteId addAllocSite(std::string Name, std::string TypeName = "");

  /// Returns metadata for \p Id.
  const InstrInfo &instruction(InstrId Id) const;

  /// Returns metadata for \p Id.
  const AllocSiteInfo &allocSite(AllocSiteId Id) const;

  /// Returns the number of registered instructions.
  size_t numInstructions() const { return Instrs.size(); }

  /// Returns the number of registered allocation sites.
  size_t numAllocSites() const { return Sites.size(); }

private:
  std::vector<InstrInfo> Instrs;
  std::vector<AllocSiteInfo> Sites;
};

} // namespace trace
} // namespace orp

#endif // ORP_TRACE_INSTRUCTIONREGISTRY_H
