//===- trace/Events.h - Probe event stream and sinks -----------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The probe event vocabulary (Figure 4 of the paper): instruction probes
/// produce AccessEvents, object probes produce Alloc/FreeEvents. A
/// TraceSink is anything that consumes the event stream — the CDC of a
/// profiler, a raw-address baseline, or a test buffer.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACE_EVENTS_H
#define ORP_TRACE_EVENTS_H

#include "trace/InstructionRegistry.h"

#include <cstdint>
#include <span>
#include <vector>

namespace orp {
namespace trace {

/// One executed load or store, as delivered by an instruction probe.
struct AccessEvent {
  InstrId Instr;   ///< Static instruction that executed.
  uint64_t Addr;   ///< Raw (simulated) address accessed.
  uint32_t Size;   ///< Access width in bytes.
  bool IsStore;    ///< True for stores, false for loads.
  uint64_t Time;   ///< Global access counter at this event.
};

/// One object creation, as delivered by an object probe.
struct AllocEvent {
  AllocSiteId Site; ///< Static allocation site (group key).
  uint64_t Addr;    ///< Start address of the object.
  uint64_t Size;    ///< Object size in bytes.
  uint64_t Time;    ///< Access-counter time of the allocation.
  bool IsStatic;    ///< True for statically allocated objects.
};

/// One object destruction.
struct FreeEvent {
  uint64_t Addr; ///< Start address of the object being destroyed.
  uint64_t Time; ///< Access-counter time of the deallocation.
};

/// Consumer of the probe event stream.
class TraceSink {
public:
  virtual ~TraceSink();

  /// Called for every executed load/store.
  virtual void onAccess(const AccessEvent &Event) = 0;

  /// Called with a run of consecutive accesses. The probe runtime
  /// (MemoryInterface) buffers accesses and delivers them through this
  /// entry point, amortizing one virtual dispatch over the whole batch;
  /// events arrive in execution order and carry their own timestamps.
  /// Default: forwards each event to onAccess(), so sinks that don't
  /// care about batching behave exactly as before.
  virtual void onAccessBatch(std::span<const AccessEvent> Events);

  /// Called when an object is created (heap alloc, or statics at startup).
  virtual void onAlloc(const AllocEvent &Event) = 0;

  /// Called when an object is destroyed.
  virtual void onFree(const FreeEvent &Event) = 0;

  /// Called once when the instrumented run finishes. Default: no-op.
  virtual void onFinish();
};

/// Sink that counts events; used for trace-volume metrics (Table 1's
/// compression baseline) and as a cheap "native-like" attachment.
class CountingSink : public TraceSink {
public:
  void onAccess(const AccessEvent &Event) override;
  void onAccessBatch(std::span<const AccessEvent> Events) override;
  void onAlloc(const AllocEvent &Event) override;
  void onFree(const FreeEvent &Event) override;

  uint64_t accesses() const { return Accesses; }
  uint64_t loads() const { return Loads; }
  uint64_t stores() const { return Stores; }
  uint64_t allocs() const { return Allocs; }
  uint64_t frees() const { return Frees; }

  /// Bytes an uncompressed trace of the observed accesses would occupy,
  /// at the canonical 12 bytes per record (4-byte instruction id plus
  /// 8-byte address), matching the "original data trace" of Table 1.
  uint64_t rawTraceBytes() const { return Accesses * 12; }

private:
  uint64_t Accesses = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  uint64_t Allocs = 0;
  uint64_t Frees = 0;
};

/// Sink that buffers the full event stream in memory; for tests and for
/// offline multi-pass analyses (the exact baselines replay from here).
/// Events are tagged with a private arrival sequence so replay reproduces
/// the exact original delivery order (timestamps alone cannot order an
/// alloc against a free that reuses its address within the same tick).
class BufferSink : public TraceSink {
public:
  void onAccess(const AccessEvent &Event) override;
  void onAccessBatch(std::span<const AccessEvent> Events) override;
  void onAlloc(const AllocEvent &Event) override;
  void onFree(const FreeEvent &Event) override;

  const std::vector<AccessEvent> &accesses() const { return AccessLog; }
  const std::vector<AllocEvent> &allocs() const { return AllocLog; }
  const std::vector<FreeEvent> &frees() const { return FreeLog; }

  /// Replays the buffered stream, in original delivery order, into \p Sink.
  void replayTo(TraceSink &Sink) const;

private:
  std::vector<AccessEvent> AccessLog;
  std::vector<AllocEvent> AllocLog;
  std::vector<FreeEvent> FreeLog;
  /// Arrival sequence numbers parallel to each log.
  std::vector<uint64_t> AccessSeq;
  std::vector<uint64_t> AllocSeq;
  std::vector<uint64_t> FreeSeq;
  uint64_t NextSeq = 0;
};

/// Sink that forwards every event to several downstream sinks.
class FanoutSink : public TraceSink {
public:
  /// Adds \p Sink as a downstream consumer; not owned.
  void addSink(TraceSink *Sink) { Sinks.push_back(Sink); }

  void onAccess(const AccessEvent &Event) override;
  void onAccessBatch(std::span<const AccessEvent> Events) override;
  void onAlloc(const AllocEvent &Event) override;
  void onFree(const FreeEvent &Event) override;
  void onFinish() override;

private:
  std::vector<TraceSink *> Sinks;
};

} // namespace trace
} // namespace orp

#endif // ORP_TRACE_EVENTS_H
