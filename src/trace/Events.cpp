//===- trace/Events.cpp - Probe event stream and sinks -------------------===//

#include "trace/Events.h"

using namespace orp;
using namespace orp::trace;

TraceSink::~TraceSink() = default;

void TraceSink::onAccessBatch(std::span<const AccessEvent> Events) {
  for (const AccessEvent &Event : Events)
    onAccess(Event);
}

void TraceSink::onFinish() {}

void CountingSink::onAccess(const AccessEvent &Event) {
  ++Accesses;
  if (Event.IsStore)
    ++Stores;
  else
    ++Loads;
}

void CountingSink::onAccessBatch(std::span<const AccessEvent> Events) {
  Accesses += Events.size();
  uint64_t BatchStores = 0;
  for (const AccessEvent &Event : Events)
    BatchStores += Event.IsStore ? 1 : 0;
  Stores += BatchStores;
  Loads += Events.size() - BatchStores;
}

void CountingSink::onAlloc(const AllocEvent &) { ++Allocs; }

void CountingSink::onFree(const FreeEvent &) { ++Frees; }

void BufferSink::onAccess(const AccessEvent &Event) {
  AccessLog.push_back(Event);
  AccessSeq.push_back(NextSeq++);
}

void BufferSink::onAccessBatch(std::span<const AccessEvent> Events) {
  AccessLog.insert(AccessLog.end(), Events.begin(), Events.end());
  for (size_t I = 0; I != Events.size(); ++I)
    AccessSeq.push_back(NextSeq++);
}

void BufferSink::onAlloc(const AllocEvent &Event) {
  AllocLog.push_back(Event);
  AllocSeq.push_back(NextSeq++);
}

void BufferSink::onFree(const FreeEvent &Event) {
  FreeLog.push_back(Event);
  FreeSeq.push_back(NextSeq++);
}

void BufferSink::replayTo(TraceSink &Sink) const {
  // Each log is sequence-sorted by construction, so a three-way merge on
  // the arrival sequence reproduces the original delivery order exactly.
  size_t AI = 0, LI = 0, FI = 0;
  while (AI < AccessLog.size() || LI < AllocLog.size() ||
         FI < FreeLog.size()) {
    uint64_t AS = AI < AccessSeq.size() ? AccessSeq[AI] : ~0ULL;
    uint64_t LS = LI < AllocSeq.size() ? AllocSeq[LI] : ~0ULL;
    uint64_t FS = FI < FreeSeq.size() ? FreeSeq[FI] : ~0ULL;
    if (LS < AS && LS < FS) {
      Sink.onAlloc(AllocLog[LI++]);
      continue;
    }
    if (FS < AS) {
      Sink.onFree(FreeLog[FI++]);
      continue;
    }
    Sink.onAccess(AccessLog[AI++]);
  }
  Sink.onFinish();
}

void FanoutSink::onAccess(const AccessEvent &Event) {
  for (TraceSink *Sink : Sinks)
    Sink->onAccess(Event);
}

void FanoutSink::onAccessBatch(std::span<const AccessEvent> Events) {
  for (TraceSink *Sink : Sinks)
    Sink->onAccessBatch(Events);
}

void FanoutSink::onAlloc(const AllocEvent &Event) {
  for (TraceSink *Sink : Sinks)
    Sink->onAlloc(Event);
}

void FanoutSink::onFree(const FreeEvent &Event) {
  for (TraceSink *Sink : Sinks)
    Sink->onFree(Event);
}

void FanoutSink::onFinish() {
  for (TraceSink *Sink : Sinks)
    Sink->onFinish();
}
