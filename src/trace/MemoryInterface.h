//===- trace/MemoryInterface.h - Instrumented program runtime --*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime surface that the workload analogues are "compiled" against.
/// Every load/store a workload performs on its simulated data goes through
/// load()/store(), which is exactly the paper's inserted instruction probe;
/// heapAlloc()/heapFree()/staticAlloc() are the object probes. Attached
/// TraceSinks receive the event stream; with no sinks attached the run is
/// the "native" run used as the dilation baseline (Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACE_MEMORYINTERFACE_H
#define ORP_TRACE_MEMORYINTERFACE_H

#include "memsim/Allocator.h"
#include "trace/Events.h"
#include "trace/InstructionRegistry.h"

#include <array>
#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace orp {
namespace trace {

/// Runtime for one instrumented (simulated) program execution.
///
/// Accesses are not delivered to the sinks one at a time: the probes
/// buffer into a fixed-size batch which is flushed when full and at
/// every event that could change the address map (alloc/free/finish).
/// Sinks therefore see accesses slightly later than they execute —
/// always in order, always carrying their true timestamps — and a sink
/// inspected mid-run must be preceded by flushAccesses().
class MemoryInterface {
public:
  /// Hard upper bound on the access batch (buffer is allocated inline).
  static constexpr size_t MaxBatchCapacity = 256;
  /// Default flush threshold; see bench/perf_components batch sweep.
  static constexpr size_t DefaultBatchCapacity = 128;

  /// Creates a runtime with a heap served by \p Policy. \p Seed models the
  /// environment-dependent layout noise of one particular run.
  explicit MemoryInterface(
      memsim::AllocPolicy Policy = memsim::AllocPolicy::FirstFit,
      uint64_t Seed = 0);

  ~MemoryInterface();

  /// Attaches \p Sink (not owned) to the probe event stream.
  void attachSink(TraceSink *Sink);

  /// Instruction probe: records a load by instruction \p Instr.
  void load(InstrId Instr, uint64_t Addr, uint32_t Size = 8) {
    record(Instr, Addr, Size, /*IsStore=*/false);
  }

  /// Instruction probe: records a store by instruction \p Instr.
  void store(InstrId Instr, uint64_t Addr, uint32_t Size = 8) {
    record(Instr, Addr, Size, /*IsStore=*/true);
  }

  /// Delivers all buffered accesses to the sinks now. Object probes and
  /// finish() flush implicitly; call this before inspecting sink state
  /// mid-run.
  void flushAccesses();

  /// Sets the flush threshold (clamped to [1, MaxBatchCapacity]);
  /// flushes pending accesses first. 1 reproduces per-event delivery.
  void setBatchCapacity(size_t N);

  /// Returns the current flush threshold.
  size_t batchCapacity() const { return BatchCapacity; }

  /// Object probe: allocates \p Size heap bytes at allocation site
  /// \p Site. Returns the object's address (0 on simulated OOM).
  uint64_t heapAlloc(AllocSiteId Site, uint64_t Size, uint64_t Align = 16);

  /// Object probe: frees the heap object at \p Addr.
  ///
  /// Freeing an address that is not a live heap payload — a stray
  /// pointer, a static, or a second free of the same object — is a
  /// diagnosed, counted no-op: the allocator is left untouched, no
  /// event reaches the sinks, and unknownFrees() is incremented. Real
  /// instrumented programs contain such frees, so the runtime must
  /// survive them; the counter keeps them visible. If accesses are
  /// batched when a (valid) free arrives, the batch is flushed first,
  /// so sinks always observe accesses before the free that follows
  /// them.
  void heapFree(uint64_t Addr);

  /// Returns the number of heapFree() calls ignored because their
  /// address was not a live heap payload (including double frees).
  uint64_t unknownFrees() const { return UnknownFrees; }

  /// Object probe for statics: places a global of \p Size bytes in the
  /// static segment and reports it allocated at program start. The paper
  /// inserts these probes "at the beginning ... of the program for all
  /// statically allocated objects".
  uint64_t staticAlloc(AllocSiteId Site, uint64_t Size, uint64_t Align = 8);

  /// Declares the run finished: emits frees for statics (the paper's
  /// program-end object probes) and forwards onFinish() to the sinks.
  void finish();

  /// \name Replay hooks
  /// Deliver a pre-recorded event verbatim to every attached sink,
  /// bypassing the simulated allocator and the live clock. Used by
  /// traceio::TraceReplayer to re-drive a session from a trace file;
  /// the event's recorded timestamp is forwarded unchanged and the
  /// clock is advanced so now() stays consistent with the recording.
  /// @{
  /// injectFree forwards the recorded free verbatim even when its
  /// address is unknown to the (untouched) simulated heap: the trace is
  /// the authority on what happened, and the OMC already diagnoses
  /// unknown frees downstream (OmcStats::UnknownFrees). Contrast with
  /// heapFree(), which filters unknown frees at the probe.
  void injectAccess(const AccessEvent &Event);
  void injectAlloc(const AllocEvent &Event);
  void injectFree(const FreeEvent &Event);

  /// Delivers a whole run of pre-recorded accesses as one span: any
  /// buffered singles are flushed first (order is preserved), then the
  /// span goes to every sink's onAccessBatch directly — no per-event
  /// copy through the batch buffer, no capacity limit. The columnar
  /// (v2) replay path hands each decoded between-boundaries slice here;
  /// profiles are byte-identical to per-event injection because sinks
  /// only depend on event order, never on batch boundaries (pinned by
  /// the batch-capacity sweep tests).
  void injectAccessBatch(std::span<const AccessEvent> Events);
  /// @}

  /// Returns the current value of the global access counter.
  uint64_t now() const { return Clock; }

  /// Returns the number of accesses recorded so far.
  uint64_t accessCount() const { return Clock; }

  /// Returns the heap allocator (e.g. for statistics).
  const memsim::SimAllocator &allocator() const { return *Heap; }

private:
  /// The instruction-probe fast path: stamps the event into the batch
  /// buffer and only crosses into virtual sink dispatch when the batch
  /// fills. Inline — this is the per-access cost behind Table 1.
  void record(InstrId Instr, uint64_t Addr, uint32_t Size, bool IsStore) {
    assert(!Finished && "access after finish()");
    if (!Sinks.empty()) {
      Batch[BatchLen++] = AccessEvent{Instr, Addr, Size, IsStore, Clock};
      if (BatchLen >= BatchCapacity)
        flushAccesses();
    }
    ++Clock;
  }

  std::unique_ptr<memsim::SimAllocator> Heap;
  std::vector<TraceSink *> Sinks;
  /// Access batch buffer (see class comment).
  std::array<AccessEvent, MaxBatchCapacity> Batch;
  size_t BatchLen = 0;
  size_t BatchCapacity = DefaultBatchCapacity;
  /// Global access counter; "a counter starting from 0 at the beginning of
  /// the program and incremented after every collected access" (Sec. 2.2).
  uint64_t Clock = 0;
  /// Bump cursor for the static segment.
  uint64_t StaticCursor;
  /// Live static objects, freed at finish().
  std::vector<uint64_t> StaticObjects;
  /// heapFree() calls ignored because the address was not live.
  uint64_t UnknownFrees = 0;
  bool Finished = false;
};

} // namespace trace
} // namespace orp

#endif // ORP_TRACE_MEMORYINTERFACE_H
