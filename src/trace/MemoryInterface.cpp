//===- trace/MemoryInterface.cpp - Instrumented program runtime ----------===//

#include "trace/MemoryInterface.h"

#include "memsim/AddressSpace.h"
#include "support/Error.h"

#include <cassert>

using namespace orp;
using namespace orp::trace;

MemoryInterface::MemoryInterface(memsim::AllocPolicy Policy, uint64_t Seed)
    : Heap(memsim::createAllocator(Policy, Seed)) {
  // Probe insertion grows the text segment and shifts static data; model
  // the shift with a seed-derived offset (paper, Section 1, artifact #3).
  uint64_t Shift = (Seed * 0x94d049bb133111ebULL >> 48) & 0x7f8;
  StaticCursor = memsim::AddressSpaceLayout::StaticBase + Shift;
}

MemoryInterface::~MemoryInterface() = default;

void MemoryInterface::attachSink(TraceSink *Sink) {
  assert(Sink && "null sink");
  // A sink attached mid-run must not receive accesses that executed
  // before it was attached.
  flushAccesses();
  Sinks.push_back(Sink);
}

void MemoryInterface::flushAccesses() {
  if (BatchLen == 0)
    return;
  std::span<const AccessEvent> Events(Batch.data(), BatchLen);
  for (TraceSink *Sink : Sinks)
    Sink->onAccessBatch(Events);
  BatchLen = 0;
}

void MemoryInterface::setBatchCapacity(size_t N) {
  flushAccesses();
  if (N < 1)
    N = 1;
  if (N > MaxBatchCapacity)
    N = MaxBatchCapacity;
  BatchCapacity = N;
}

uint64_t MemoryInterface::heapAlloc(AllocSiteId Site, uint64_t Size,
                                    uint64_t Align) {
  assert(!Finished && "allocation after finish()");
  uint64_t Addr = Heap->allocate(Size, Align);
  if (Addr == 0)
    return 0;
  if (!Sinks.empty()) {
    flushAccesses(); // Keep access/alloc order at the sinks.
    AllocEvent Event{Site, Addr, Size, Clock, /*IsStatic=*/false};
    for (TraceSink *Sink : Sinks)
      Sink->onAlloc(Event);
  }
  return Addr;
}

void MemoryInterface::heapFree(uint64_t Addr) {
  assert(!Finished && "free after finish()");
  // Unknown address (stray pointer, double free, static): diagnose and
  // ignore — see the header contract. The allocator itself treats an
  // unknown deallocate as fatal, so the liveness probe must come first.
  if (Heap->liveBlockSize(Addr) == 0) {
    ++UnknownFrees;
    return;
  }
  Heap->deallocate(Addr);
  if (!Sinks.empty()) {
    flushAccesses(); // Keep access/free order at the sinks.
    FreeEvent Event{Addr, Clock};
    for (TraceSink *Sink : Sinks)
      Sink->onFree(Event);
  }
}

uint64_t MemoryInterface::staticAlloc(AllocSiteId Site, uint64_t Size,
                                      uint64_t Align) {
  assert(!Finished && "static allocation after finish()");
  assert(Size > 0 && "zero-sized static object");
  assert(Align != 0 && (Align & (Align - 1)) == 0 && "bad alignment");
  StaticCursor = (StaticCursor + Align - 1) & ~(Align - 1);
  uint64_t Addr = StaticCursor;
  StaticCursor += Size;
  if (StaticCursor >= memsim::AddressSpaceLayout::StaticLimit)
    ORP_FATAL_ERROR("static segment overflow");
  StaticObjects.push_back(Addr);
  if (!Sinks.empty()) {
    flushAccesses();
    AllocEvent Event{Site, Addr, Size, Clock, /*IsStatic=*/true};
    for (TraceSink *Sink : Sinks)
      Sink->onAlloc(Event);
  }
  return Addr;
}

void MemoryInterface::injectAccess(const AccessEvent &Event) {
  assert(!Finished && "access after finish()");
  // Replayed accesses ride the same batch buffer as live ones; the
  // recorded timestamp travels inside the event.
  if (!Sinks.empty()) {
    Batch[BatchLen++] = Event;
    if (BatchLen >= BatchCapacity)
      flushAccesses();
  }
  // Live record() stamps the current clock and then advances it.
  if (Event.Time + 1 > Clock)
    Clock = Event.Time + 1;
}

void MemoryInterface::injectAccessBatch(std::span<const AccessEvent> Events) {
  assert(!Finished && "access after finish()");
  if (Events.empty())
    return;
  if (!Sinks.empty()) {
    flushAccesses(); // Keep order with any buffered single injections.
    for (TraceSink *Sink : Sinks)
      Sink->onAccessBatch(Events);
  }
  // Same clock rule as injectAccess, applied to the last event.
  if (Events.back().Time + 1 > Clock)
    Clock = Events.back().Time + 1;
}

void MemoryInterface::injectAlloc(const AllocEvent &Event) {
  assert(!Finished && "allocation after finish()");
  flushAccesses();
  for (TraceSink *Sink : Sinks)
    Sink->onAlloc(Event);
  if (Event.Time > Clock)
    Clock = Event.Time;
}

void MemoryInterface::injectFree(const FreeEvent &Event) {
  assert(!Finished && "free after finish()");
  flushAccesses();
  for (TraceSink *Sink : Sinks)
    Sink->onFree(Event);
  if (Event.Time > Clock)
    Clock = Event.Time;
}

void MemoryInterface::finish() {
  if (Finished)
    return;
  flushAccesses();
  Finished = true;
  if (!Sinks.empty()) {
    for (uint64_t Addr : StaticObjects) {
      FreeEvent Event{Addr, Clock};
      for (TraceSink *Sink : Sinks)
        Sink->onFree(Event);
    }
    for (TraceSink *Sink : Sinks)
      Sink->onFinish();
  }
}
