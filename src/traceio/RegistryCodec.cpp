//===- traceio/RegistryCodec.cpp - Probe-table payload codec -------------===//

#include "traceio/RegistryCodec.h"

#include "support/VarInt.h"

using namespace orp;
using namespace orp::traceio;

static void appendString(const std::string &S, std::vector<uint8_t> &Out) {
  encodeULEB128(S.size(), Out);
  Out.insert(Out.end(), S.begin(), S.end());
}

void traceio::appendRegistryPayload(
    const trace::InstructionRegistry &Registry, std::vector<uint8_t> &Out) {
  encodeULEB128(Registry.numInstructions(), Out);
  for (size_t I = 0; I != Registry.numInstructions(); ++I) {
    const trace::InstrInfo &Info =
        Registry.instruction(static_cast<trace::InstrId>(I));
    appendString(Info.Name, Out);
    Out.push_back(static_cast<uint8_t>(Info.Kind));
  }
  encodeULEB128(Registry.numAllocSites(), Out);
  for (size_t I = 0; I != Registry.numAllocSites(); ++I) {
    const trace::AllocSiteInfo &Info =
        Registry.allocSite(static_cast<trace::AllocSiteId>(I));
    appendString(Info.Name, Out);
    appendString(Info.TypeName, Out);
  }
}

void traceio::appendRegistryPayload(
    const std::vector<trace::InstrInfo> &Instrs,
    const std::vector<trace::AllocSiteInfo> &Sites,
    std::vector<uint8_t> &Out) {
  encodeULEB128(Instrs.size(), Out);
  for (const trace::InstrInfo &Info : Instrs) {
    appendString(Info.Name, Out);
    Out.push_back(static_cast<uint8_t>(Info.Kind));
  }
  encodeULEB128(Sites.size(), Out);
  for (const trace::AllocSiteInfo &Info : Sites) {
    appendString(Info.Name, Out);
    appendString(Info.TypeName, Out);
  }
}

bool traceio::parseRegistryPayload(const uint8_t *Data, size_t Len,
                                   std::vector<trace::InstrInfo> &Instrs,
                                   std::vector<trace::AllocSiteInfo> &Sites,
                                   std::string &Err) {
  Instrs.clear();
  Sites.clear();
  size_t Pos = 0;
  auto ReadString = [&](std::string &Out) {
    uint64_t StrLen;
    if (!tryDecodeULEB128(Data, Len, Pos, StrLen) || StrLen > Len - Pos)
      return false;
    Out.assign(Data + Pos, Data + Pos + StrLen);
    Pos += StrLen;
    return true;
  };

  uint64_t NumInstrs;
  if (!tryDecodeULEB128(Data, Len, Pos, NumInstrs)) {
    Err = "malformed instruction table";
    return false;
  }
  for (uint64_t I = 0; I != NumInstrs; ++I) {
    trace::InstrInfo Instr;
    if (!ReadString(Instr.Name) || Pos >= Len) {
      Err = "malformed instruction entry";
      return false;
    }
    Instr.Kind = static_cast<trace::AccessKind>(Data[Pos++]);
    Instrs.push_back(std::move(Instr));
  }
  uint64_t NumSites;
  if (!tryDecodeULEB128(Data, Len, Pos, NumSites)) {
    Err = "malformed allocation-site table";
    return false;
  }
  for (uint64_t I = 0; I != NumSites; ++I) {
    trace::AllocSiteInfo Site;
    if (!ReadString(Site.Name) || !ReadString(Site.TypeName)) {
      Err = "malformed allocation-site entry";
      return false;
    }
    Sites.push_back(std::move(Site));
  }
  if (Pos != Len) {
    Err = "trailing bytes";
    return false;
  }
  return true;
}
