//===- traceio/BlockCodec.h - Standalone event-block decode ----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decoder for one .orpt event block *payload*, usable outside a whole
/// trace file. Blocks decode independently — the writer resets the
/// address/time delta chains at every block boundary — so the same
/// payload bytes can arrive from a .orpt file (TraceReader) or from an
/// EVENTS frame of the orp-traced wire protocol (src/session) and
/// produce the identical event sequence.
///
/// Every failure carries the block index and the absolute byte offset
/// of the fault (\p BaseOffset plus the local position), so corruption
/// reports localize the bad byte, not just the bad file.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACEIO_BLOCKCODEC_H
#define ORP_TRACEIO_BLOCKCODEC_H

#include "traceio/TraceFormat.h"

#include <cstddef>
#include <functional>
#include <string>

namespace orp {
namespace traceio {

/// Verifies the CRC-32 of one event-block payload. On mismatch returns
/// false and sets \p Err to
/// "block <Index> at byte <BaseOffset>: checksum mismatch ...".
bool verifyBlockChecksum(const uint8_t *Payload, size_t Len, uint32_t Crc,
                         uint64_t BlockIndex, uint64_t BaseOffset,
                         std::string &Err);

/// Decodes the \p EventCount records of one event-block payload into
/// \p Fn, in delivery order. The delta-decoder state starts at zero
/// (block boundary contract). Returns false with \p Err set on any
/// malformed record; events delivered before the fault stand. \p
/// BlockIndex and \p BaseOffset (the payload's absolute position in
/// its file or stream, 0 when standalone) only label diagnostics:
/// "block <Index> at byte <abs>: malformed access record ...".
bool decodeEventBlock(const uint8_t *Payload, size_t Len,
                      uint64_t EventCount,
                      const std::function<void(const TraceEvent &)> &Fn,
                      std::string &Err, uint64_t BlockIndex = 0,
                      uint64_t BaseOffset = 0);

} // namespace traceio
} // namespace orp

#endif // ORP_TRACEIO_BLOCKCODEC_H
