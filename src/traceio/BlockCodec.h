//===- traceio/BlockCodec.h - Standalone event-block decode ----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Decoder for one .orpt event block *payload*, usable outside a whole
/// trace file. Blocks decode independently — the writer resets the
/// address/time delta chains at every block boundary — so the same
/// payload bytes can arrive from a .orpt file (TraceReader) or from an
/// EVENTS frame of the orp-traced wire protocol (src/session) and
/// produce the identical event sequence.
///
/// Every failure carries the block index and the absolute byte offset
/// of the fault (\p BaseOffset plus the local position), so corruption
/// reports localize the bad byte, not just the bad file.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACEIO_BLOCKCODEC_H
#define ORP_TRACEIO_BLOCKCODEC_H

#include "traceio/TraceFormat.h"

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace orp {
namespace trace {
class MemoryInterface;
} // namespace trace

namespace traceio {

/// Verifies the CRC-32 of one event-block payload. On mismatch returns
/// false and sets \p Err to
/// "block <Index> at byte <BaseOffset>: checksum mismatch ...".
[[nodiscard]] bool verifyBlockChecksum(const uint8_t *Payload, size_t Len, uint32_t Crc,
                         uint64_t BlockIndex, uint64_t BaseOffset,
                         std::string &Err);

/// Decodes the \p EventCount records of one event-block payload into
/// \p Fn, in delivery order. The delta-decoder state starts at zero
/// (block boundary contract). Returns false with \p Err set on any
/// malformed record; events delivered before the fault stand. \p
/// BlockIndex and \p BaseOffset (the payload's absolute position in
/// its file or stream, 0 when standalone) only label diagnostics:
/// "block <Index> at byte <abs>: malformed access record ...".
[[nodiscard]] bool decodeEventBlock(const uint8_t *Payload, size_t Len,
                      uint64_t EventCount,
                      const std::function<void(const TraceEvent &)> &Fn,
                      std::string &Err, uint64_t BlockIndex = 0,
                      uint64_t BaseOffset = 0);

/// One fully decoded v2 columnar block, shaped for batch injection:
/// every access in delivery order in one contiguous vector, with the
/// interspersed alloc/free events split out as boundaries. The replayer
/// hands each run of accesses between two boundaries to
/// MemoryInterface::injectAccessBatch as a single span — no per-event
/// dispatch — which is the point of the columnar layout.
struct DecodedBlock {
  /// An alloc or free, plus its position in the delivery order.
  struct Boundary {
    uint64_t AccessesBefore; ///< Accesses delivered before this event.
    TraceEvent E;            ///< Kind is Alloc or Free, never Access.
  };

  std::vector<trace::AccessEvent> Accesses; ///< All accesses, in order.
  std::vector<Boundary> Boundaries;         ///< All allocs/frees, in order.

  uint64_t events() const { return Accesses.size() + Boundaries.size(); }
  void clear() {
    Accesses.clear();
    Boundaries.clear();
  }
};

/// Decodes one v2 columnar block payload into \p Out (contents
/// replaced). Column-at-a-time: each column is decoded in its own tight
/// varint loop (decode*LEB128Fast) before the columns are zipped into
/// \p Out. Unlike the streaming v1 decoder nothing is delivered on
/// failure — \p Out is left empty and \p Err carries the fault
/// (truncated column, column length mismatch, overlong varint, unknown
/// opcode) with the same "block <Index> at byte <abs>" prefix as v1
/// diagnostics.
[[nodiscard]] bool decodeEventBlockV2(const uint8_t *Payload, size_t Len,
                        uint64_t EventCount, DecodedBlock &Out,
                        std::string &Err, uint64_t BlockIndex = 0,
                        uint64_t BaseOffset = 0);

/// Walks \p Block in original delivery order, reconstituting the flat
/// TraceEvent view (for tools and tests that want the v1-shaped stream
/// regardless of on-disk format).
void forEachDecodedEvent(const DecodedBlock &Block,
                         const std::function<void(const TraceEvent &)> &Fn);

/// Version-dispatching decode: v1 payloads stream through the original
/// record decoder, v2 payloads decode columnar and are then walked in
/// delivery order. The event sequence delivered to \p Fn is identical
/// for the same recorded stream in either format.
[[nodiscard]] bool decodeEventBlockAny(uint8_t Version, const uint8_t *Payload,
                         size_t Len, uint64_t EventCount,
                         const std::function<void(const TraceEvent &)> &Fn,
                         std::string &Err, uint64_t BlockIndex = 0,
                         uint64_t BaseOffset = 0);

/// Injects \p Block into \p Memory in delivery order: every run of
/// accesses between boundaries travels as one injectAccessBatch span,
/// allocs/frees go through injectAlloc/injectFree. Returns the number
/// of events injected (always Block.events()).
[[nodiscard]] uint64_t injectDecodedBlock(trace::MemoryInterface &Memory,
                            const DecodedBlock &Block);

} // namespace traceio
} // namespace orp

#endif // ORP_TRACEIO_BLOCKCODEC_H
