//===- traceio/TraceReplayer.cpp - Re-drive sessions from traces ---------===//

#include "traceio/TraceReplayer.h"

using namespace orp;
using namespace orp::traceio;

std::unique_ptr<core::ProfilingSession>
TraceReplayer::makeSession(core::UnknownAddressPolicy Unknown) const {
  auto Policy = static_cast<memsim::AllocPolicy>(Reader.info().AllocPolicy);
  return std::make_unique<core::ProfilingSession>(Policy,
                                                  Reader.info().Seed,
                                                  Unknown);
}

bool TraceReplayer::replayInto(core::ProfilingSession &Session,
                               bool CallFinish) {
  trace::InstructionRegistry &Registry = Session.registry();
  for (const trace::InstrInfo &Info : Reader.instructions())
    Registry.addInstruction(Info.Name, Info.Kind);
  for (const trace::AllocSiteInfo &Info : Reader.allocSites())
    Registry.addAllocSite(Info.Name, Info.TypeName);

  trace::MemoryInterface &Memory = Session.memory();
  Replayed = 0;
  bool Ok = Reader.forEachEvent([&](const TraceEvent &E) {
    switch (E.K) {
    case TraceEvent::Kind::Access:
      Memory.injectAccess(trace::AccessEvent{
          E.InstrOrSite, E.Addr, static_cast<uint32_t>(E.Size), E.IsStore,
          E.Time});
      break;
    case TraceEvent::Kind::Alloc:
      Memory.injectAlloc(
          trace::AllocEvent{E.InstrOrSite, E.Addr, E.Size, E.Time,
                            E.IsStatic});
      break;
    case TraceEvent::Kind::Free:
      Memory.injectFree(trace::FreeEvent{E.Addr, E.Time});
      break;
    }
    ++Replayed;
  });
  if (Ok && CallFinish)
    Session.finish();
  return Ok;
}
