//===- traceio/TraceReplayer.cpp - Re-drive sessions from traces ---------===//

#include "traceio/TraceReplayer.h"

#include "support/SpscQueue.h"
#include "support/WorkerPool.h"
#include "telemetry/Registry.h"

#include <atomic>

using namespace orp;
using namespace orp::traceio;

std::unique_ptr<core::ProfilingSession>
TraceReplayer::makeSession(core::UnknownAddressPolicy Unknown) const {
  auto Policy = static_cast<memsim::AllocPolicy>(Reader.info().AllocPolicy);
  return std::make_unique<core::ProfilingSession>(Policy,
                                                  Reader.info().Seed,
                                                  Unknown);
}

bool TraceReplayer::replayInto(core::ProfilingSession &Session,
                               bool CallFinish) {
  trace::InstructionRegistry &Registry = Session.registry();
  for (const trace::InstrInfo &Info : Reader.instructions())
    Registry.addInstruction(Info.Name, Info.Kind);
  for (const trace::AllocSiteInfo &Info : Reader.allocSites())
    Registry.addAllocSite(Info.Name, Info.TypeName);

  trace::MemoryInterface &Memory = Session.memory();
  telemetry::Registry &Reg = telemetry::Registry::global();
  telemetry::ScopedTimer ReplayTiming(Reg.timer("replay.total"));
  Replayed = 0;
  auto Inject = [&](const TraceEvent &E) {
    switch (E.K) {
    case TraceEvent::Kind::Access:
      Memory.injectAccess(trace::AccessEvent{
          E.InstrOrSite, E.Addr, static_cast<uint32_t>(E.Size), E.IsStore,
          E.Time});
      break;
    case TraceEvent::Kind::Alloc:
      Memory.injectAlloc(
          trace::AllocEvent{E.InstrOrSite, E.Addr, E.Size, E.Time,
                            E.IsStatic});
      break;
    case TraceEvent::Kind::Free:
      Memory.injectFree(trace::FreeEvent{E.Addr, E.Time});
      break;
    }
    ++Replayed;
  };

  // Replay covers blocks [B0, B1); checkpoint/resume callers restrict
  // the range, everything else replays the whole trace.
  const size_t NumBlocks = Reader.numEventBlocks();
  const size_t B0 = FirstBlock < NumBlocks ? FirstBlock : NumBlocks;
  const size_t B1 =
      EndBlock < B0 ? B0 : (EndBlock < NumBlocks ? EndBlock : NumBlocks);

  bool Ok;
  if (Reader.info().Version >= kFormatVersionV2) {
    // Columnar replay: each block decodes straight into contiguous
    // column slices (DecodedBlock) and every between-boundaries run of
    // accesses is injected as one span — whole-slice onAccessBatch
    // fan-out instead of per-event virtual dispatch. Delivery order is
    // identical to the per-event path, so profiles are byte-identical.
    if (Threads <= 1 || B1 - B0 < 2) {
      DecodedBlock Block;
      Ok = true;
      for (size_t B = B0; B != B1; ++B) {
        if (!Reader.decodeBlockColumns(B, Block)) {
          Ok = false;
          break;
        }
        Replayed += injectDecodedBlock(Memory, Block);
        if (BlockDone)
          BlockDone(B + 1);
      }
    } else {
      support::SpscQueue<DecodedBlock> Decoded(DecodeQueueDepth);
      std::atomic<bool> DecodeOk{true};
      support::ScopedThread Decoder([this, &Decoded, &DecodeOk, B0, B1] {
        DecodedBlock Block;
        for (size_t B = B0; B != B1; ++B) {
          if (!Reader.decodeBlockColumns(B, Block)) {
            DecodeOk.store(false, std::memory_order_release);
            break;
          }
          if (!Decoded.push(std::move(Block)))
            break; // Queue closed: the consumer is gone, stop decoding.
          Block = DecodedBlock();
        }
        Decoded.close();
      });
      DecodedBlock Block;
      // Blocks arrive in decode order, so the consumer's count names
      // the block just injected; the callback runs on this (injecting)
      // thread, as the session is single-threaded.
      size_t NextBlock = B0;
      while (Decoded.pop(Block)) {
        Replayed += injectDecodedBlock(Memory, Block);
        ++NextBlock;
        if (BlockDone)
          BlockDone(NextBlock);
      }
      Decoder.join();
      support::QueueTelemetry QT = Decoded.telemetry();
      Reg.gauge("replay.decode_queue.capacity")
          .set(static_cast<int64_t>(QT.Capacity));
      Reg.gauge("replay.decode_queue.high_watermark")
          .set(static_cast<int64_t>(QT.HighWatermark));
      Reg.gauge("replay.decode_queue.pushes")
          .set(static_cast<int64_t>(QT.Pushes));
      Reg.gauge("replay.decode_queue.push_stalls")
          .set(static_cast<int64_t>(QT.PushStalls));
      Ok = DecodeOk.load(std::memory_order_acquire);
    }
  } else if (Threads <= 1 || B1 - B0 < 2) {
    if (B0 == 0 && B1 == NumBlocks && !BlockDone) {
      Ok = Reader.forEachEvent(Inject);
    } else {
      std::vector<TraceEvent> Events;
      Ok = true;
      for (size_t B = B0; B != B1; ++B) {
        if (!Reader.decodeBlockEvents(B, Events)) {
          Ok = false;
          break;
        }
        for (const TraceEvent &E : Events)
          Inject(E);
        if (BlockDone)
          BlockDone(B + 1);
      }
    }
  } else {
    // Double-buffered replay: a worker decodes blocks ahead through a
    // bounded queue while this thread injects. Block order is queue
    // order, so event delivery order — and every downstream profile —
    // is identical to the serial path. The sinks are not thread-safe;
    // they are only ever touched from this thread.
    support::SpscQueue<std::vector<TraceEvent>> Decoded(DecodeQueueDepth);
    std::atomic<bool> DecodeOk{true};
    support::ScopedThread Decoder([this, &Decoded, &DecodeOk, B0, B1] {
      std::vector<TraceEvent> Events;
      for (size_t B = B0; B != B1; ++B) {
        if (!Reader.decodeBlockEvents(B, Events)) {
          DecodeOk.store(false, std::memory_order_release);
          break;
        }
        if (!Decoded.push(std::move(Events)))
          break; // Queue closed: the consumer is gone, stop decoding.
        Events = std::vector<TraceEvent>();
      }
      // Like forEachEvent: blocks decoded before a corrupt one stand.
      Decoded.close();
    });
    std::vector<TraceEvent> Block;
    size_t NextBlock = B0;
    while (Decoded.pop(Block)) {
      for (const TraceEvent &E : Block)
        Inject(E);
      ++NextBlock;
      if (BlockDone)
        BlockDone(NextBlock);
    }
    Decoder.join();
    // Publish the decode-ahead queue's final counters: its high
    // watermark vs capacity says whether the decoder kept ahead of the
    // injection loop, and PushStalls counts the times it outran us.
    support::QueueTelemetry QT = Decoded.telemetry();
    Reg.gauge("replay.decode_queue.capacity")
        .set(static_cast<int64_t>(QT.Capacity));
    Reg.gauge("replay.decode_queue.high_watermark")
        .set(static_cast<int64_t>(QT.HighWatermark));
    Reg.gauge("replay.decode_queue.pushes")
        .set(static_cast<int64_t>(QT.Pushes));
    Reg.gauge("replay.decode_queue.push_stalls")
        .set(static_cast<int64_t>(QT.PushStalls));
    Ok = DecodeOk.load(std::memory_order_acquire);
  }
  Reg.counter("replay.events").add(Replayed);
  if (Ok && CallFinish)
    Session.finish();
  return Ok;
}
