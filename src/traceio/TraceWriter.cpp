//===- traceio/TraceWriter.cpp - Streaming .orpt trace recorder ----------===//

#include "traceio/TraceWriter.h"

#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/VarInt.h"
#include "traceio/RegistryCodec.h"

using namespace orp;
using namespace orp::traceio;

TraceWriter::TraceWriter(std::string Path,
                         const trace::InstructionRegistry &Registry,
                         memsim::AllocPolicy Policy, uint64_t Seed,
                         size_t BlockBytes, uint8_t FormatVersion)
    : Path(std::move(Path)), Registry(Registry), Policy(Policy), Seed(Seed),
      BlockBytes(BlockBytes), FormatVersion(FormatVersion) {
  if (FormatVersion < kFormatVersionV1 || FormatVersion > kFormatVersionV2) {
    fail("unsupported format version " + std::to_string(FormatVersion));
    return;
  }
  File = std::fopen(this->Path.c_str(), "wb");
  if (!File) {
    fail("cannot open '" + this->Path + "' for writing");
    return;
  }
  // Provisional header with registry offset 0: a reader that sees it
  // knows the writer died before close().
  writeBytes(encodeHeader(0).data(), kHeaderSize);
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::fail(const std::string &Msg) {
  if (Err.empty())
    Err = Msg;
  if (File) {
    std::fclose(File);
    File = nullptr;
  }
}

void TraceWriter::writeBytes(const void *Data, size_t Size) {
  if (!File)
    return;
  if (std::fwrite(Data, 1, Size, File) != Size) {
    fail("write error on '" + Path + "'");
    return;
  }
  BytesOut += Size;
}

std::vector<uint8_t> TraceWriter::encodeHeader(uint64_t RegistryOffset) const {
  std::vector<uint8_t> Out;
  Out.reserve(kHeaderSize);
  Out.insert(Out.end(), kMagic, kMagic + 4);
  Out.push_back(FormatVersion);
  Out.push_back(RegistryOffset ? kFlagHasRegistry : 0);
  Out.push_back(static_cast<uint8_t>(Policy));
  Out.push_back(0); // reserved
  appendLE64(Seed, Out);
  appendLE64(RegistryOffset, Out);
  appendLE64(TotalEvents, Out);
  appendLE32(crc32(Out), Out);
  return Out;
}

size_t TraceWriter::pendingBlockBytes() const {
  if (FormatVersion >= kFormatVersionV2)
    return KindCol.size() + IdCol.size() + AddrCol.size() + TimeCol.size() +
           SizeCol.size();
  return Block.size();
}

void TraceWriter::flushBlock() {
  if (BlockEvents == 0) {
    PrevAddr = PrevTime = 0;
    return;
  }
  if (FormatVersion >= kFormatVersionV2) {
    // Assemble the five length-prefixed columns into one payload
    // (TraceFormat.h column order).
    Block.clear();
    Block.reserve(pendingBlockBytes() + 20);
    for (std::vector<uint8_t> *Col :
         {&KindCol, &IdCol, &AddrCol, &TimeCol, &SizeCol}) {
      encodeULEB128(Col->size(), Block);
      Block.insert(Block.end(), Col->begin(), Col->end());
      Col->clear();
    }
  }
  std::vector<uint8_t> Frame;
  Frame.reserve(16);
  Frame.push_back(kBlockEvents);
  encodeULEB128(Block.size(), Frame);
  encodeULEB128(BlockEvents, Frame);
  appendLE32(crc32(Block), Frame);
  writeBytes(Frame.data(), Frame.size());
  writeBytes(Block.data(), Block.size());
  Block.clear();
  BlockEvents = 0;
  PrevAddr = PrevTime = 0;
}

void TraceWriter::maybeFlush() {
  if (pendingBlockBytes() >= BlockBytes)
    flushBlock();
}

void TraceWriter::onAccess(const trace::AccessEvent &Event) {
  if (!File || Closed)
    return;
  uint8_t Tag = kOpAccess;
  if (Event.IsStore)
    Tag |= kTagStore;
  if (Event.Size == 8)
    Tag |= kTagSize8;
  if (FormatVersion >= kFormatVersionV2) {
    KindCol.push_back(Tag);
    encodeULEB128(Event.Instr, IdCol);
    encodeSLEB128(static_cast<int64_t>(Event.Addr - PrevAddr), AddrCol);
    encodeSLEB128(static_cast<int64_t>(Event.Time - PrevTime), TimeCol);
    if (Event.Size != 8)
      encodeULEB128(Event.Size, SizeCol);
  } else {
    Block.push_back(Tag);
    encodeULEB128(Event.Instr, Block);
    encodeSLEB128(static_cast<int64_t>(Event.Addr - PrevAddr), Block);
    encodeSLEB128(static_cast<int64_t>(Event.Time - PrevTime), Block);
    if (Event.Size != 8)
      encodeULEB128(Event.Size, Block);
  }
  PrevAddr = Event.Addr;
  PrevTime = Event.Time;
  ++BlockEvents;
  ++TotalEvents;
  maybeFlush();
}

void TraceWriter::onAlloc(const trace::AllocEvent &Event) {
  if (!File || Closed)
    return;
  uint8_t Tag = kOpAlloc;
  if (Event.IsStatic)
    Tag |= kTagStatic;
  if (FormatVersion >= kFormatVersionV2) {
    KindCol.push_back(Tag);
    encodeULEB128(Event.Site, IdCol);
    encodeSLEB128(static_cast<int64_t>(Event.Addr - PrevAddr), AddrCol);
    encodeSLEB128(static_cast<int64_t>(Event.Time - PrevTime), TimeCol);
    encodeULEB128(Event.Size, SizeCol);
  } else {
    Block.push_back(Tag);
    encodeULEB128(Event.Site, Block);
    encodeSLEB128(static_cast<int64_t>(Event.Addr - PrevAddr), Block);
    encodeULEB128(Event.Size, Block);
    encodeSLEB128(static_cast<int64_t>(Event.Time - PrevTime), Block);
  }
  PrevAddr = Event.Addr;
  PrevTime = Event.Time;
  ++BlockEvents;
  ++TotalEvents;
  maybeFlush();
}

void TraceWriter::onFree(const trace::FreeEvent &Event) {
  if (!File || Closed)
    return;
  if (FormatVersion >= kFormatVersionV2) {
    KindCol.push_back(kOpFree);
    encodeSLEB128(static_cast<int64_t>(Event.Addr - PrevAddr), AddrCol);
    encodeSLEB128(static_cast<int64_t>(Event.Time - PrevTime), TimeCol);
  } else {
    Block.push_back(kOpFree);
    encodeSLEB128(static_cast<int64_t>(Event.Addr - PrevAddr), Block);
    encodeSLEB128(static_cast<int64_t>(Event.Time - PrevTime), Block);
  }
  PrevAddr = Event.Addr;
  PrevTime = Event.Time;
  ++BlockEvents;
  ++TotalEvents;
  maybeFlush();
}

void TraceWriter::onFinish() { close(); }

std::vector<uint8_t> TraceWriter::encodeRegistry() const {
  std::vector<uint8_t> Out;
  appendRegistryPayload(Registry, Out);
  return Out;
}

bool TraceWriter::close() {
  if (Closed)
    return ok();
  Closed = true;
  if (!File)
    return false;
  flushBlock();
  uint64_t RegistryOffset = BytesOut;

  std::vector<uint8_t> Payload = encodeRegistry();
  std::vector<uint8_t> Frame;
  Frame.push_back(kBlockRegistry);
  encodeULEB128(Payload.size(), Frame);
  appendLE32(crc32(Payload), Frame);
  writeBytes(Frame.data(), Frame.size());
  writeBytes(Payload.data(), Payload.size());

  uint8_t End = kEndMarker;
  writeBytes(&End, 1);

  if (File && std::fseek(File, 0, SEEK_SET) != 0)
    fail("seek error on '" + Path + "'");
  if (File) {
    std::vector<uint8_t> Header = encodeHeader(RegistryOffset);
    if (std::fwrite(Header.data(), 1, kHeaderSize, File) != kHeaderSize)
      fail("write error on '" + Path + "'");
  }
  if (File) {
    if (std::fclose(File) != 0)
      fail("close error on '" + Path + "'");
    File = nullptr;
  }
  return ok();
}
