//===- traceio/TraceWriter.h - Streaming .orpt trace recorder --*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TraceSink that records the probe event stream to a .orpt file.
/// Attach to any ProfilingSession with addRawSink(); events are
/// delta+LEB128 encoded into checksummed blocks and streamed to disk as
/// blocks fill. close() (or onFinish(), or destruction) appends the
/// snapshot of the run's InstructionRegistry — complete only once the
/// workload has registered all its probe sites — and patches the fixed
/// header, which until then marks the file unfinalized.
///
/// I/O failures never throw; they latch an error message and turn the
/// writer into a sink-shaped no-op (query with ok()/error()).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACEIO_TRACEWRITER_H
#define ORP_TRACEIO_TRACEWRITER_H

#include "memsim/Allocator.h"
#include "trace/Events.h"
#include "trace/InstructionRegistry.h"
#include "traceio/TraceFormat.h"

#include <cstdio>
#include <string>
#include <vector>

namespace orp {
namespace traceio {

/// Records a probe event stream into a .orpt file.
class TraceWriter : public trace::TraceSink {
public:
  /// Default block payload size at which a block is flushed to disk.
  static constexpr size_t kDefaultBlockBytes = 64 * 1024;

  /// Opens \p Path for writing. \p Registry is the session registry whose
  /// final contents are snapshotted at close(); \p Policy and \p Seed are
  /// the run configuration recorded in the header so replays can recreate
  /// an identical session. \p FormatVersion selects the event payload
  /// encoding — kFormatVersionV2 columnar (default) or kFormatVersionV1
  /// interleaved for compatibility with old readers; the same event
  /// stream recorded at either version replays to byte-identical
  /// profiles.
  TraceWriter(std::string Path, const trace::InstructionRegistry &Registry,
              memsim::AllocPolicy Policy, uint64_t Seed,
              size_t BlockBytes = kDefaultBlockBytes,
              uint8_t FormatVersion = kFormatVersionV2);

  /// Closes the file if still open.
  ~TraceWriter() override;

  TraceWriter(const TraceWriter &) = delete;
  TraceWriter &operator=(const TraceWriter &) = delete;

  void onAccess(const trace::AccessEvent &Event) override;
  void onAlloc(const trace::AllocEvent &Event) override;
  void onFree(const trace::FreeEvent &Event) override;

  /// End of the instrumented run: finalizes the file (close()).
  void onFinish() override;

  /// Flushes the tail block, writes the registry section and end marker,
  /// patches the header and closes the file. Idempotent. Returns false
  /// when any write failed (see error()).
  bool close();

  /// True while no I/O error has occurred.
  bool ok() const { return Err.empty(); }

  /// The first I/O error, or empty.
  const std::string &error() const { return Err; }

  /// Events recorded so far.
  uint64_t eventsWritten() const { return TotalEvents; }

  /// Bytes written to disk so far (final after close()).
  uint64_t bytesWritten() const { return BytesOut; }

  /// The .orpt format version this writer emits.
  uint8_t formatVersion() const { return FormatVersion; }

private:
  void fail(const std::string &Msg);
  void writeBytes(const void *Data, size_t Size);
  void flushBlock();
  void maybeFlush();
  size_t pendingBlockBytes() const;
  std::vector<uint8_t> encodeHeader(uint64_t RegistryOffset) const;
  std::vector<uint8_t> encodeRegistry() const;

  std::string Path;
  const trace::InstructionRegistry &Registry;
  memsim::AllocPolicy Policy;
  uint64_t Seed;
  size_t BlockBytes;
  uint8_t FormatVersion;
  std::FILE *File = nullptr;
  std::string Err;
  bool Closed = false;

  /// Current v1 block payload (interleaved records).
  std::vector<uint8_t> Block;
  /// Current v2 block columns (TraceFormat.h column order); assembled
  /// into one length-prefixed payload at flush.
  std::vector<uint8_t> KindCol, IdCol, AddrCol, TimeCol, SizeCol;
  uint64_t BlockEvents = 0;
  /// Delta-encoder state; reset at every block boundary.
  uint64_t PrevAddr = 0;
  uint64_t PrevTime = 0;

  uint64_t TotalEvents = 0;
  uint64_t BytesOut = 0;
};

} // namespace traceio
} // namespace orp

#endif // ORP_TRACEIO_TRACEWRITER_H
