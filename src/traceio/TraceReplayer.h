//===- traceio/TraceReplayer.h - Re-drive sessions from traces -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a recorded .orpt trace into a fresh ProfilingSession: the
/// recorded probe-site tables are re-registered into the session's
/// InstructionRegistry and every event is injected, in original delivery
/// order and with original timestamps, into the session's sinks (CDC and
/// any attached raw sinks). Profiles built from a replayed trace are
/// bit-identical to the live in-process run — collection and analysis
/// can happen on different machines, at different times.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACEIO_TRACEREPLAYER_H
#define ORP_TRACEIO_TRACEREPLAYER_H

#include "core/ProfilingSession.h"
#include "traceio/TraceReader.h"

#include <functional>
#include <memory>
#include <string>

namespace orp {
namespace traceio {

/// Replays an opened TraceReader into profiling sessions.
class TraceReplayer {
public:
  /// Blocks a decode worker may buffer ahead of the injecting thread.
  static constexpr size_t DecodeQueueDepth = 2;

  /// \p Reader must have been open()ed successfully and must outlive
  /// the replayer.
  explicit TraceReplayer(TraceReader &Reader) : Reader(Reader) {}

  /// With \p N > 1, replayInto() double-buffers: a worker thread
  /// decodes the next .orpt blocks while this thread injects the
  /// current one. Event delivery order — and therefore every profile
  /// built from the replay — is unchanged; the session's sinks are
  /// only ever touched from the calling thread.
  void setThreads(unsigned N) { Threads = N; }

  /// Creates a session configured exactly like the recorded run (same
  /// allocator policy and environment seed, though replay never touches
  /// the allocator), with \p Unknown forwarded to the CDC.
  std::unique_ptr<core::ProfilingSession> makeSession(
      core::UnknownAddressPolicy Unknown =
          core::UnknownAddressPolicy::Drop) const;

  /// Restricts the next replayInto() to event blocks [\p First,
  /// \p End) — \p End is clamped to the block count. Blocks are the
  /// trace's only safe split points: events inside one are delta-coded
  /// against each other. Defaults to the whole trace.
  void setBlockRange(size_t First, size_t End) {
    FirstBlock = First;
    EndBlock = End;
  }

  /// Installs \p Cb, invoked on the injecting thread after each block's
  /// events have been delivered, with the index of the *next* block —
  /// i.e. the resume point a checkpoint taken now would encode. The
  /// callback may serialize session state freely: no decode worker ever
  /// touches the session.
  void setBlockCallback(std::function<void(size_t)> Cb) {
    BlockDone = std::move(Cb);
  }

  /// Re-registers the recorded probe sites into \p Session's registry
  /// and injects the full event stream. When \p CallFinish is set the
  /// session is finish()ed afterwards (the trace already contains the
  /// recorded run's static frees, so finishing only notifies sinks).
  /// Returns false with error() set when the trace is corrupt.
  [[nodiscard]] bool replayInto(core::ProfilingSession &Session, bool CallFinish = true);

  /// Events delivered by the last replayInto().
  uint64_t eventsReplayed() const { return Replayed; }

  /// The reader's error, or empty.
  const std::string &error() const { return Reader.error(); }

private:
  TraceReader &Reader;
  uint64_t Replayed = 0;
  unsigned Threads = 1;
  size_t FirstBlock = 0;
  size_t EndBlock = ~static_cast<size_t>(0);
  std::function<void(size_t)> BlockDone;
};

} // namespace traceio
} // namespace orp

#endif // ORP_TRACEIO_TRACEREPLAYER_H
