//===- traceio/TraceReader.h - .orpt trace parsing -------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Validating reader for .orpt traces. open() checks the magic, version,
/// header checksum, block framing, registry section and end marker;
/// forEachEvent() streams the decoded records block by block, verifying
/// each block's CRC before touching its payload. Trace files are
/// untrusted input: every failure mode (truncation, bit flips, bad
/// varints, trailing garbage) produces a clear error string instead of
/// an assert or undefined behavior.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACEIO_TRACEREADER_H
#define ORP_TRACEIO_TRACEREADER_H

#include "trace/InstructionRegistry.h"
#include "traceio/BlockCodec.h"
#include "traceio/TraceFormat.h"

#include <functional>
#include <string>
#include <vector>

namespace orp {
namespace traceio {

/// Parses and validates one .orpt file.
class TraceReader {
public:
  /// Loads \p Path and validates everything except event payload
  /// contents (those are checked checksum-first by forEachEvent).
  /// Returns false with error() set on any problem.
  [[nodiscard]] bool open(const std::string &Path);

  /// Structural validation of an in-memory image; used by open() and by
  /// tests that corrupt images without touching disk.
  [[nodiscard]] bool openImage(std::vector<uint8_t> Image, const std::string &Name);

  /// Header metadata and file statistics. Valid after open().
  const TraceInfo &info() const { return Info; }

  /// The recorded probe-site tables, in registration order.
  const std::vector<trace::InstrInfo> &instructions() const {
    return Instrs;
  }
  const std::vector<trace::AllocSiteInfo> &allocSites() const {
    return Sites;
  }

  /// Decodes every event in delivery order into \p Fn. Returns false
  /// with error() set on a corrupted payload; events already delivered
  /// before the corrupt block stand. Restartable (stateless).
  [[nodiscard]] bool forEachEvent(const std::function<void(const TraceEvent &)> &Fn);

  /// Number of indexed event blocks; valid after open().
  size_t numEventBlocks() const { return Blocks.size(); }

  /// Index-level statistics of one event block (no payload decode).
  struct BlockStats {
    uint64_t EventCount;  ///< Events declared by the block header.
    size_t PayloadBytes;  ///< Compressed payload size on disk.
  };

  /// Per-block statistics straight from the block index; valid after
  /// open(). Feeds `orp-trace info` without touching the payloads.
  std::vector<BlockStats> blockStats() const;

  /// Decodes block \p Index (CRC-checked first, like forEachEvent) into
  /// \p Out, replacing its contents. Blocks are independently decodable
  /// — the writer restarts the address/time delta chains per block —
  /// which is what lets TraceReplayer decode block N+1 on a worker
  /// while block N is being consumed. \p Index must be in range.
  /// Returns false with error() set on corruption.
  [[nodiscard]] bool decodeBlockEvents(size_t Index, std::vector<TraceEvent> &Out);

  /// Convenience: decodes the whole stream into a vector.
  [[nodiscard]] bool readAllEvents(std::vector<TraceEvent> &Out);

  /// Columnar decode of one v2 block (CRC-checked first) into \p Out,
  /// shaped for batch injection — see traceio::DecodedBlock. Only valid
  /// for v2 traces (info().Version >= kFormatVersionV2); the replayer
  /// routes v1 traces through decodeBlockEvents instead. \p Index must
  /// be in range. Returns false with error() set on corruption.
  [[nodiscard]] bool decodeBlockColumns(size_t Index, DecodedBlock &Out);

  /// A still-encoded view of one event block, for forwarding the
  /// payload verbatim — e.g. as an EVENTS frame of the orp-traced wire
  /// protocol. The pointer aliases the reader's image and is valid
  /// until the next open()/openImage(). \p Index must be in range.
  struct RawBlock {
    const uint8_t *Payload;
    size_t PayloadLen;
    uint64_t EventCount;
    uint32_t Crc;         ///< CRC-32 declared by the block header.
    uint64_t FileOffset;  ///< Absolute byte offset of the payload.
  };
  [[nodiscard]] RawBlock rawBlock(size_t Index) const;

  /// The first error encountered, or empty.
  const std::string &error() const { return Err; }

private:
  bool failed(const std::string &Msg);
  bool parseHeader();
  bool parseRegistry(uint64_t Offset);
  bool indexBlocks(uint64_t RegistryOffset);

  std::string Name;
  std::vector<uint8_t> Bytes;
  TraceInfo Info;
  std::vector<trace::InstrInfo> Instrs;
  std::vector<trace::AllocSiteInfo> Sites;

  /// One indexed event block: payload position/length and declared
  /// event count (CRC verified lazily in forEachEvent).
  struct BlockRef {
    size_t PayloadPos;
    size_t PayloadLen;
    uint64_t EventCount;
    uint32_t Crc;
  };
  std::vector<BlockRef> Blocks;
  std::string Err;
};

} // namespace traceio
} // namespace orp

#endif // ORP_TRACEIO_TRACEREADER_H
