//===- traceio/BlockCodec.cpp - Standalone event-block decode ------------===//

#include "traceio/BlockCodec.h"

#include "support/Checksum.h"
#include "support/VarInt.h"
#include "telemetry/Registry.h"
#include "trace/MemoryInterface.h"

using namespace orp;
using namespace orp::traceio;

namespace {

std::string where(uint64_t BlockIndex, uint64_t AbsOffset) {
  return "block " + std::to_string(BlockIndex) + " at byte " +
         std::to_string(AbsOffset);
}

/// Block-granularity decode instrumentation shared by both payload
/// decoders (one histogram sample + two counter bumps per block, not
/// per event). Safe from decode-ahead and session-scheduler workers:
/// the metrics are shard-atomic. The references resolve once.
struct DecodeMetrics {
  telemetry::Histogram &Ns;
  telemetry::Counter &Blocks;
  telemetry::Counter &Events;

  static DecodeMetrics &get() {
    static DecodeMetrics M{
        telemetry::Registry::global().histogram("traceio.block_decode_ns"),
        telemetry::Registry::global().counter("traceio.blocks_decoded"),
        telemetry::Registry::global().counter("traceio.events_decoded")};
    return M;
  }
};

} // namespace

bool traceio::verifyBlockChecksum(const uint8_t *Payload, size_t Len,
                                  uint32_t Crc, uint64_t BlockIndex,
                                  uint64_t BaseOffset, std::string &Err) {
  if (crc32(Payload, Len) == Crc)
    return true;
  Err = where(BlockIndex, BaseOffset) +
        ": checksum mismatch (corrupted file)";
  return false;
}

bool traceio::decodeEventBlock(
    const uint8_t *Payload, size_t Len, uint64_t EventCount,
    const std::function<void(const TraceEvent &)> &Fn, std::string &Err,
    uint64_t BlockIndex, uint64_t BaseOffset) {
  DecodeMetrics &Metrics = DecodeMetrics::get();
  telemetry::ScopedHistogramTimer Timing(Metrics.Ns);
  Metrics.Blocks.add();
  Metrics.Events.add(EventCount);

  size_t Pos = 0;
  uint64_t PrevAddr = 0, PrevTime = 0;
  auto Fail = [&](const std::string &Msg) {
    Err = where(BlockIndex, BaseOffset + Pos) + ": " + Msg;
    return false;
  };
  // Field readers that fold the decode status (truncated / overflow /
  // overlong) into the diagnostic, so a fuzzer-found corruption is
  // distinguishable from a short read.
  auto ReadU = [&](uint64_t &Out, const char *Record) {
    VarIntStatus St =
        decodeULEB128Checked(Payload, Len, Pos, Out);
    if (St == VarIntStatus::Ok)
      return true;
    return Fail(std::string("malformed ") + Record + " record (" +
                varIntStatusName(St) + " varint)");
  };
  auto ReadS = [&](int64_t &Out, const char *Record) {
    VarIntStatus St =
        decodeSLEB128Checked(Payload, Len, Pos, Out);
    if (St == VarIntStatus::Ok)
      return true;
    return Fail(std::string("malformed ") + Record + " record (" +
                varIntStatusName(St) + " varint)");
  };
  for (uint64_t I = 0; I != EventCount; ++I) {
    if (Pos >= Len)
      return Fail("truncated event payload");
    uint8_t Tag = Payload[Pos++];
    TraceEvent Event;
    uint64_t U;
    int64_t S;
    switch (Tag & kOpMask) {
    case kOpAccess:
      Event.K = TraceEvent::Kind::Access;
      Event.IsStore = (Tag & kTagStore) != 0;
      if (!ReadU(U, "access"))
        return false;
      Event.InstrOrSite = static_cast<uint32_t>(U);
      if (!ReadS(S, "access"))
        return false;
      Event.Addr = PrevAddr + static_cast<uint64_t>(S);
      if (!ReadS(S, "access"))
        return false;
      Event.Time = PrevTime + static_cast<uint64_t>(S);
      if (Tag & kTagSize8) {
        Event.Size = 8;
      } else if (!ReadU(U, "access")) {
        return false;
      } else {
        Event.Size = U;
      }
      break;
    case kOpAlloc:
      Event.K = TraceEvent::Kind::Alloc;
      Event.IsStatic = (Tag & kTagStatic) != 0;
      if (!ReadU(U, "alloc"))
        return false;
      Event.InstrOrSite = static_cast<uint32_t>(U);
      if (!ReadS(S, "alloc"))
        return false;
      Event.Addr = PrevAddr + static_cast<uint64_t>(S);
      if (!ReadU(U, "alloc"))
        return false;
      Event.Size = U;
      if (!ReadS(S, "alloc"))
        return false;
      Event.Time = PrevTime + static_cast<uint64_t>(S);
      break;
    case kOpFree:
      Event.K = TraceEvent::Kind::Free;
      if (!ReadS(S, "free"))
        return false;
      Event.Addr = PrevAddr + static_cast<uint64_t>(S);
      if (!ReadS(S, "free"))
        return false;
      Event.Time = PrevTime + static_cast<uint64_t>(S);
      break;
    default:
      return Fail("unknown event opcode " + std::to_string(Tag & kOpMask));
    }
    PrevAddr = Event.Addr;
    PrevTime = Event.Time;
    Fn(Event);
  }
  if (Pos != Len)
    return Fail("trailing bytes in event payload");
  return true;
}

bool traceio::decodeEventBlockV2(const uint8_t *Payload, size_t Len,
                                 uint64_t EventCount, DecodedBlock &Out,
                                 std::string &Err, uint64_t BlockIndex,
                                 uint64_t BaseOffset) {
  DecodeMetrics &Metrics = DecodeMetrics::get();
  telemetry::ScopedHistogramTimer Timing(Metrics.Ns);
  Metrics.Blocks.add();
  Metrics.Events.add(EventCount);

  Out.clear();
  auto FailAt = [&](size_t At, const std::string &Msg) {
    Err = where(BlockIndex, BaseOffset + At) + ": " + Msg;
    Out.clear();
    return false;
  };

  // Column directory: five uleb-length-prefixed byte ranges.
  struct Column {
    const uint8_t *Data;
    size_t Len;
    size_t Base; ///< Payload-relative offset, for diagnostics.
  };
  static constexpr const char *ColNames[5] = {"kind", "id", "address",
                                              "time", "size"};
  Column Cols[5];
  size_t Pos = 0;
  for (int C = 0; C != 5; ++C) {
    uint64_t ColLen;
    VarIntStatus St = decodeULEB128Checked(Payload, Len, Pos, ColLen);
    if (St != VarIntStatus::Ok)
      return FailAt(Pos, std::string("malformed ") + ColNames[C] +
                             " column header (" + varIntStatusName(St) +
                             " varint)");
    if (ColLen > Len - Pos)
      return FailAt(Pos, std::string("truncated ") + ColNames[C] +
                             " column: declares " + std::to_string(ColLen) +
                             " bytes, " + std::to_string(Len - Pos) +
                             " remain");
    Cols[C] = Column{Payload + Pos, static_cast<size_t>(ColLen), Pos};
    Pos += ColLen;
  }
  if (Pos != Len)
    return FailAt(Pos, "trailing bytes in event payload");

  const Column &Kinds = Cols[0], &Ids = Cols[1], &Addrs = Cols[2],
               &Times = Cols[3], &Sizes = Cols[4];

  // The kind column is one tag byte per event, so its byte length must
  // equal the block's declared event count exactly.
  if (Kinds.Len != EventCount)
    return FailAt(Kinds.Base,
                  "column length mismatch: kind column holds " +
                      std::to_string(Kinds.Len) +
                      " entries, block declares " +
                      std::to_string(EventCount));

  // Pass 1 over the tags: validate opcodes and size the other columns.
  uint64_t NumAccesses = 0, NumIds = 0, NumSizes = 0;
  for (size_t I = 0; I != Kinds.Len; ++I) {
    uint8_t Tag = Kinds.Data[I];
    switch (Tag & kOpMask) {
    case kOpAccess:
      ++NumAccesses;
      ++NumIds;
      if (!(Tag & kTagSize8))
        ++NumSizes;
      break;
    case kOpAlloc:
      ++NumIds;
      ++NumSizes;
      break;
    case kOpFree:
      break;
    default:
      return FailAt(Kinds.Base + I, "unknown event opcode " +
                                        std::to_string(Tag & kOpMask));
    }
  }

  // Per-column tight loops. Every iteration decodes one varint through
  // the unrolled 1-2 byte fast path and writes one slot of a flat
  // array: no tag dispatch, no callback, no cross-field dependency.
  // This is the loop shape the columnar layout exists for.
  auto DecodeUlebColumn = [&](const Column &Col, const char *Name,
                              uint64_t Count,
                              std::vector<uint64_t> &Vals) -> bool {
    Vals.resize(Count);
    size_t P = 0;
    for (uint64_t I = 0; I != Count; ++I) {
      uint64_t V;
      VarIntStatus St = decodeULEB128Fast(Col.Data, Col.Len, P, V);
      if (St != VarIntStatus::Ok)
        return FailAt(Col.Base + P, std::string("malformed ") + Name +
                                        " column (" + varIntStatusName(St) +
                                        " varint)");
      Vals[I] = V;
    }
    if (P != Col.Len)
      return FailAt(Col.Base + P,
                    "column length mismatch: " +
                        std::to_string(Col.Len - P) + " trailing bytes in " +
                        Name + " column");
    return true;
  };
  // Address/time deltas decode straight into running absolute values
  // (the per-block delta chain starts at zero, as in v1).
  auto DecodeSlebColumn = [&](const Column &Col, const char *Name,
                              uint64_t Count,
                              std::vector<uint64_t> &Vals) -> bool {
    Vals.resize(Count);
    size_t P = 0;
    uint64_t Prev = 0;
    for (uint64_t I = 0; I != Count; ++I) {
      int64_t Delta;
      VarIntStatus St = decodeSLEB128Fast(Col.Data, Col.Len, P, Delta);
      if (St != VarIntStatus::Ok)
        return FailAt(Col.Base + P, std::string("malformed ") + Name +
                                        " column (" + varIntStatusName(St) +
                                        " varint)");
      Prev += static_cast<uint64_t>(Delta);
      Vals[I] = Prev;
    }
    if (P != Col.Len)
      return FailAt(Col.Base + P,
                    "column length mismatch: " +
                        std::to_string(Col.Len - P) + " trailing bytes in " +
                        Name + " column");
    return true;
  };

  std::vector<uint64_t> IdVals, AddrVals, TimeVals, SizeVals;
  if (!DecodeUlebColumn(Ids, "id", NumIds, IdVals) ||
      !DecodeSlebColumn(Addrs, "address", EventCount, AddrVals) ||
      !DecodeSlebColumn(Times, "time", EventCount, TimeVals) ||
      !DecodeUlebColumn(Sizes, "size", NumSizes, SizeVals))
    return false;

  // Zip the columns back into delivery order. Blocks between alloc/free
  // boundaries are pure access runs — by far the common shape — so that
  // case gets a straight-line loop with no opcode dispatch.
  if (NumAccesses == EventCount) {
    Out.Accesses.resize(EventCount);
    trace::AccessEvent *A = Out.Accesses.data();
    size_t IdCur = 0, SizeCur = 0;
    for (uint64_t I = 0; I != EventCount; ++I) {
      uint8_t Tag = Kinds.Data[I];
      A[I].Instr = static_cast<trace::InstrId>(IdVals[IdCur++]);
      A[I].Addr = AddrVals[I];
      A[I].Size = static_cast<uint32_t>((Tag & kTagSize8) ? 8
                                                          : SizeVals[SizeCur++]);
      A[I].IsStore = (Tag & kTagStore) != 0;
      A[I].Time = TimeVals[I];
    }
    return true;
  }
  Out.Accesses.reserve(NumAccesses);
  Out.Boundaries.reserve(EventCount - NumAccesses);
  size_t IdCur = 0, SizeCur = 0;
  for (uint64_t I = 0; I != EventCount; ++I) {
    uint8_t Tag = Kinds.Data[I];
    switch (Tag & kOpMask) {
    case kOpAccess: {
      uint64_t Size = (Tag & kTagSize8) ? 8 : SizeVals[SizeCur++];
      Out.Accesses.push_back(trace::AccessEvent{
          static_cast<trace::InstrId>(IdVals[IdCur++]), AddrVals[I],
          static_cast<uint32_t>(Size), (Tag & kTagStore) != 0, TimeVals[I]});
      break;
    }
    case kOpAlloc: {
      TraceEvent E;
      E.K = TraceEvent::Kind::Alloc;
      E.InstrOrSite = static_cast<uint32_t>(IdVals[IdCur++]);
      E.Addr = AddrVals[I];
      E.Size = SizeVals[SizeCur++];
      E.Time = TimeVals[I];
      E.IsStatic = (Tag & kTagStatic) != 0;
      Out.Boundaries.push_back(
          DecodedBlock::Boundary{Out.Accesses.size(), E});
      break;
    }
    default: { // kOpFree; pass 1 rejected everything else.
      TraceEvent E;
      E.K = TraceEvent::Kind::Free;
      E.Addr = AddrVals[I];
      E.Time = TimeVals[I];
      Out.Boundaries.push_back(
          DecodedBlock::Boundary{Out.Accesses.size(), E});
      break;
    }
    }
  }
  return true;
}

void traceio::forEachDecodedEvent(
    const DecodedBlock &Block,
    const std::function<void(const TraceEvent &)> &Fn) {
  auto EmitAccess = [&](const trace::AccessEvent &A) {
    TraceEvent E;
    E.K = TraceEvent::Kind::Access;
    E.InstrOrSite = A.Instr;
    E.Addr = A.Addr;
    E.Size = A.Size;
    E.Time = A.Time;
    E.IsStore = A.IsStore;
    Fn(E);
  };
  size_t Cursor = 0;
  for (const DecodedBlock::Boundary &B : Block.Boundaries) {
    for (; Cursor != B.AccessesBefore; ++Cursor)
      EmitAccess(Block.Accesses[Cursor]);
    Fn(B.E);
  }
  for (; Cursor != Block.Accesses.size(); ++Cursor)
    EmitAccess(Block.Accesses[Cursor]);
}

bool traceio::decodeEventBlockAny(
    uint8_t Version, const uint8_t *Payload, size_t Len, uint64_t EventCount,
    const std::function<void(const TraceEvent &)> &Fn, std::string &Err,
    uint64_t BlockIndex, uint64_t BaseOffset) {
  if (Version < kFormatVersionV2)
    return decodeEventBlock(Payload, Len, EventCount, Fn, Err, BlockIndex,
                            BaseOffset);
  DecodedBlock Block;
  if (!decodeEventBlockV2(Payload, Len, EventCount, Block, Err, BlockIndex,
                          BaseOffset))
    return false;
  forEachDecodedEvent(Block, Fn);
  return true;
}

uint64_t traceio::injectDecodedBlock(trace::MemoryInterface &Memory,
                                     const DecodedBlock &Block) {
  const trace::AccessEvent *Accesses = Block.Accesses.data();
  size_t Cursor = 0;
  for (const DecodedBlock::Boundary &B : Block.Boundaries) {
    if (B.AccessesBefore > Cursor) {
      Memory.injectAccessBatch(std::span<const trace::AccessEvent>(
          Accesses + Cursor, B.AccessesBefore - Cursor));
      Cursor = B.AccessesBefore;
    }
    if (B.E.K == TraceEvent::Kind::Alloc)
      Memory.injectAlloc(trace::AllocEvent{B.E.InstrOrSite, B.E.Addr,
                                           B.E.Size, B.E.Time, B.E.IsStatic});
    else
      Memory.injectFree(trace::FreeEvent{B.E.Addr, B.E.Time});
  }
  if (Cursor < Block.Accesses.size())
    Memory.injectAccessBatch(std::span<const trace::AccessEvent>(
        Accesses + Cursor, Block.Accesses.size() - Cursor));
  return Block.events();
}
