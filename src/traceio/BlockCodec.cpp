//===- traceio/BlockCodec.cpp - Standalone event-block decode ------------===//

#include "traceio/BlockCodec.h"

#include "support/Checksum.h"
#include "support/VarInt.h"
#include "telemetry/Registry.h"

using namespace orp;
using namespace orp::traceio;

namespace {

std::string where(uint64_t BlockIndex, uint64_t AbsOffset) {
  return "block " + std::to_string(BlockIndex) + " at byte " +
         std::to_string(AbsOffset);
}

} // namespace

bool traceio::verifyBlockChecksum(const uint8_t *Payload, size_t Len,
                                  uint32_t Crc, uint64_t BlockIndex,
                                  uint64_t BaseOffset, std::string &Err) {
  if (crc32(Payload, Len) == Crc)
    return true;
  Err = where(BlockIndex, BaseOffset) +
        ": checksum mismatch (corrupted file)";
  return false;
}

bool traceio::decodeEventBlock(
    const uint8_t *Payload, size_t Len, uint64_t EventCount,
    const std::function<void(const TraceEvent &)> &Fn, std::string &Err,
    uint64_t BlockIndex, uint64_t BaseOffset) {
  // Block-granularity instrumentation (one histogram sample + two
  // counter bumps per block, not per event). Safe from decode-ahead and
  // session-scheduler workers: the metrics are shard-atomic. The
  // references are resolved once per process.
  static telemetry::Histogram &DecodeNs =
      telemetry::Registry::global().histogram("traceio.block_decode_ns");
  static telemetry::Counter &BlocksDecoded =
      telemetry::Registry::global().counter("traceio.blocks_decoded");
  static telemetry::Counter &EventsDecoded =
      telemetry::Registry::global().counter("traceio.events_decoded");
  telemetry::ScopedHistogramTimer Timing(DecodeNs);
  BlocksDecoded.add();
  EventsDecoded.add(EventCount);

  size_t Pos = 0;
  uint64_t PrevAddr = 0, PrevTime = 0;
  auto Fail = [&](const std::string &Msg) {
    Err = where(BlockIndex, BaseOffset + Pos) + ": " + Msg;
    return false;
  };
  // Field readers that fold the decode status (truncated / overflow /
  // overlong) into the diagnostic, so a fuzzer-found corruption is
  // distinguishable from a short read.
  auto ReadU = [&](uint64_t &Out, const char *Record) {
    VarIntStatus St =
        decodeULEB128Checked(Payload, Len, Pos, Out);
    if (St == VarIntStatus::Ok)
      return true;
    return Fail(std::string("malformed ") + Record + " record (" +
                varIntStatusName(St) + " varint)");
  };
  auto ReadS = [&](int64_t &Out, const char *Record) {
    VarIntStatus St =
        decodeSLEB128Checked(Payload, Len, Pos, Out);
    if (St == VarIntStatus::Ok)
      return true;
    return Fail(std::string("malformed ") + Record + " record (" +
                varIntStatusName(St) + " varint)");
  };
  for (uint64_t I = 0; I != EventCount; ++I) {
    if (Pos >= Len)
      return Fail("truncated event payload");
    uint8_t Tag = Payload[Pos++];
    TraceEvent Event;
    uint64_t U;
    int64_t S;
    switch (Tag & kOpMask) {
    case kOpAccess:
      Event.K = TraceEvent::Kind::Access;
      Event.IsStore = (Tag & kTagStore) != 0;
      if (!ReadU(U, "access"))
        return false;
      Event.InstrOrSite = static_cast<uint32_t>(U);
      if (!ReadS(S, "access"))
        return false;
      Event.Addr = PrevAddr + static_cast<uint64_t>(S);
      if (!ReadS(S, "access"))
        return false;
      Event.Time = PrevTime + static_cast<uint64_t>(S);
      if (Tag & kTagSize8) {
        Event.Size = 8;
      } else if (!ReadU(U, "access")) {
        return false;
      } else {
        Event.Size = U;
      }
      break;
    case kOpAlloc:
      Event.K = TraceEvent::Kind::Alloc;
      Event.IsStatic = (Tag & kTagStatic) != 0;
      if (!ReadU(U, "alloc"))
        return false;
      Event.InstrOrSite = static_cast<uint32_t>(U);
      if (!ReadS(S, "alloc"))
        return false;
      Event.Addr = PrevAddr + static_cast<uint64_t>(S);
      if (!ReadU(U, "alloc"))
        return false;
      Event.Size = U;
      if (!ReadS(S, "alloc"))
        return false;
      Event.Time = PrevTime + static_cast<uint64_t>(S);
      break;
    case kOpFree:
      Event.K = TraceEvent::Kind::Free;
      if (!ReadS(S, "free"))
        return false;
      Event.Addr = PrevAddr + static_cast<uint64_t>(S);
      if (!ReadS(S, "free"))
        return false;
      Event.Time = PrevTime + static_cast<uint64_t>(S);
      break;
    default:
      return Fail("unknown event opcode " + std::to_string(Tag & kOpMask));
    }
    PrevAddr = Event.Addr;
    PrevTime = Event.Time;
    Fn(Event);
  }
  if (Pos != Len)
    return Fail("trailing bytes in event payload");
  return true;
}
