//===- traceio/TraceReader.cpp - .orpt trace parsing ---------------------===//

#include "traceio/TraceReader.h"

#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/VarInt.h"
#include "telemetry/Registry.h"

#include <cstdio>

using namespace orp;
using namespace orp::traceio;

bool TraceReader::failed(const std::string &Msg) {
  if (Err.empty())
    Err = Name + ": " + Msg;
  return false;
}

bool TraceReader::open(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Name = Path;
    return failed("cannot open file");
  }
  std::vector<uint8_t> Image;
  uint8_t Buf[64 * 1024];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Image.insert(Image.end(), Buf, Buf + N);
  bool ReadErr = std::ferror(File) != 0;
  std::fclose(File);
  if (ReadErr) {
    Name = Path;
    return failed("read error");
  }
  return openImage(std::move(Image), Path);
}

bool TraceReader::openImage(std::vector<uint8_t> Image,
                            const std::string &FileName) {
  Name = FileName;
  Bytes = std::move(Image);
  Err.clear();
  Instrs.clear();
  Sites.clear();
  Blocks.clear();
  Info = TraceInfo{};
  Info.FileBytes = Bytes.size();

  if (!parseHeader())
    return false;
  uint64_t RegistryOffset = readLE64(Bytes.data() + 16);
  if (!indexBlocks(RegistryOffset))
    return false;
  if (!parseRegistry(RegistryOffset))
    return false;
  Info.NumBlocks = Blocks.size();
  Info.NumInstructions = Instrs.size();
  Info.NumAllocSites = Sites.size();
  return true;
}

bool TraceReader::parseHeader() {
  if (Bytes.size() < kHeaderSize)
    return failed("truncated file: shorter than the fixed header");
  for (unsigned I = 0; I != 4; ++I)
    if (Bytes[I] != kMagic[I])
      return failed("bad magic: not an .orpt trace");
  Info.Version = Bytes[4];
  if (Info.Version == 0 || Info.Version > kFormatVersion)
    return failed("unsupported format version " +
                  std::to_string(Info.Version));
  Info.Flags = Bytes[5];
  Info.AllocPolicy = Bytes[6];
  Info.Seed = readLE64(Bytes.data() + 8);
  Info.TotalEvents = readLE64(Bytes.data() + 24);
  uint32_t Want = readLE32(Bytes.data() + 32);
  uint32_t Got = crc32(Bytes.data(), 32);
  if (Want != Got)
    return failed("header checksum mismatch (corrupted file)");
  uint64_t RegistryOffset = readLE64(Bytes.data() + 16);
  if (RegistryOffset == 0)
    return failed("unfinalized trace: the writer never close()d it");
  if (RegistryOffset < kHeaderSize || RegistryOffset >= Bytes.size())
    return failed("registry offset out of bounds (truncated file?)");
  return true;
}

bool TraceReader::indexBlocks(uint64_t RegistryOffset) {
  size_t Pos = kHeaderSize;
  uint64_t Events = 0;
  while (Pos < RegistryOffset) {
    uint64_t BlockIndex = Blocks.size();
    auto Where = [&] { return "block " + std::to_string(BlockIndex); };
    if (Bytes[Pos] != kBlockEvents)
      return failed(Where() + ": unexpected section kind " +
                    std::to_string(Bytes[Pos]));
    ++Pos;
    uint64_t PayloadLen, EventCount;
    if (!tryDecodeULEB128(Bytes.data(), RegistryOffset, Pos, PayloadLen) ||
        !tryDecodeULEB128(Bytes.data(), RegistryOffset, Pos, EventCount))
      return failed(Where() + ": truncated block header");
    if (RegistryOffset - Pos < 4)
      return failed(Where() + ": truncated block header");
    uint32_t Crc = readLE32(Bytes.data() + Pos);
    Pos += 4;
    if (PayloadLen > RegistryOffset - Pos)
      return failed(Where() + ": payload extends past the registry "
                              "section (truncated file?)");
    Blocks.push_back(BlockRef{Pos, static_cast<size_t>(PayloadLen),
                              EventCount, Crc});
    Events += EventCount;
    Pos += PayloadLen;
  }
  if (Events != Info.TotalEvents)
    return failed("event count mismatch: header declares " +
                  std::to_string(Info.TotalEvents) + ", blocks hold " +
                  std::to_string(Events));
  return true;
}

bool TraceReader::parseRegistry(uint64_t Offset) {
  size_t Pos = Offset;
  const size_t Size = Bytes.size();
  if (Bytes[Pos] != kBlockRegistry)
    return failed("registry section: unexpected kind " +
                  std::to_string(Bytes[Pos]));
  ++Pos;
  uint64_t PayloadLen;
  if (!tryDecodeULEB128(Bytes.data(), Size, Pos, PayloadLen) ||
      Size - Pos < 4)
    return failed("registry section: truncated header");
  uint32_t Want = readLE32(Bytes.data() + Pos);
  Pos += 4;
  if (PayloadLen > Size - Pos)
    return failed("registry section: truncated payload");
  const size_t End = Pos + PayloadLen;
  if (crc32(Bytes.data() + Pos, PayloadLen) != Want)
    return failed("registry section: checksum mismatch (corrupted file)");
  if (End >= Size || Bytes[End] != kEndMarker)
    return failed("missing end marker (truncated file?)");
  if (End + 1 != Size)
    return failed("trailing garbage after end marker");

  auto ReadString = [&](std::string &Out) {
    uint64_t Len;
    if (!tryDecodeULEB128(Bytes.data(), End, Pos, Len) || Len > End - Pos)
      return false;
    Out.assign(Bytes.begin() + Pos, Bytes.begin() + Pos + Len);
    Pos += Len;
    return true;
  };

  uint64_t NumInstrs;
  if (!tryDecodeULEB128(Bytes.data(), End, Pos, NumInstrs))
    return failed("registry section: malformed instruction table");
  for (uint64_t I = 0; I != NumInstrs; ++I) {
    trace::InstrInfo Instr;
    if (!ReadString(Instr.Name) || Pos >= End)
      return failed("registry section: malformed instruction entry");
    Instr.Kind = static_cast<trace::AccessKind>(Bytes[Pos++]);
    Instrs.push_back(std::move(Instr));
  }
  uint64_t NumSites;
  if (!tryDecodeULEB128(Bytes.data(), End, Pos, NumSites))
    return failed("registry section: malformed allocation-site table");
  for (uint64_t I = 0; I != NumSites; ++I) {
    trace::AllocSiteInfo Site;
    if (!ReadString(Site.Name) || !ReadString(Site.TypeName))
      return failed("registry section: malformed allocation-site entry");
    Sites.push_back(std::move(Site));
  }
  if (Pos != End)
    return failed("registry section: trailing bytes");
  return true;
}

bool TraceReader::decodeBlock(
    size_t PayloadPos, size_t PayloadLen, uint64_t Count,
    uint64_t BlockIndex, const std::function<void(const TraceEvent &)> &Fn) {
  // Block-granularity instrumentation (one histogram sample + two
  // counter bumps per block, not per event). Safe from the decode-ahead
  // worker: the metrics are shard-atomic. The references are resolved
  // once per process.
  static telemetry::Histogram &DecodeNs =
      telemetry::Registry::global().histogram("traceio.block_decode_ns");
  static telemetry::Counter &BlocksDecoded =
      telemetry::Registry::global().counter("traceio.blocks_decoded");
  static telemetry::Counter &EventsDecoded =
      telemetry::Registry::global().counter("traceio.events_decoded");
  telemetry::ScopedHistogramTimer Timing(DecodeNs);
  BlocksDecoded.add();
  EventsDecoded.add(Count);

  auto Where = [&] { return "block " + std::to_string(BlockIndex); };
  const uint8_t *Data = Bytes.data();
  const size_t End = PayloadPos + PayloadLen;
  size_t Pos = PayloadPos;
  uint64_t PrevAddr = 0, PrevTime = 0;
  // Field readers that fold the decode status (truncated / overflow /
  // overlong) into the diagnostic, so a fuzzer-found corruption is
  // distinguishable from a short read.
  auto ReadU = [&](uint64_t &Out, const char *Record) {
    VarIntStatus St = decodeULEB128Checked(Data, End, Pos, Out);
    if (St == VarIntStatus::Ok)
      return true;
    return failed(Where() + ": malformed " + Record + " record (" +
                  varIntStatusName(St) + " varint)");
  };
  auto ReadS = [&](int64_t &Out, const char *Record) {
    VarIntStatus St = decodeSLEB128Checked(Data, End, Pos, Out);
    if (St == VarIntStatus::Ok)
      return true;
    return failed(Where() + ": malformed " + Record + " record (" +
                  varIntStatusName(St) + " varint)");
  };
  for (uint64_t I = 0; I != Count; ++I) {
    if (Pos >= End)
      return failed(Where() + ": truncated event payload");
    uint8_t Tag = Data[Pos++];
    TraceEvent Event;
    uint64_t U;
    int64_t S;
    switch (Tag & kOpMask) {
    case kOpAccess:
      Event.K = TraceEvent::Kind::Access;
      Event.IsStore = (Tag & kTagStore) != 0;
      if (!ReadU(U, "access"))
        return false;
      Event.InstrOrSite = static_cast<uint32_t>(U);
      if (!ReadS(S, "access"))
        return false;
      Event.Addr = PrevAddr + static_cast<uint64_t>(S);
      if (!ReadS(S, "access"))
        return false;
      Event.Time = PrevTime + static_cast<uint64_t>(S);
      if (Tag & kTagSize8) {
        Event.Size = 8;
      } else if (!ReadU(U, "access")) {
        return false;
      } else {
        Event.Size = U;
      }
      break;
    case kOpAlloc:
      Event.K = TraceEvent::Kind::Alloc;
      Event.IsStatic = (Tag & kTagStatic) != 0;
      if (!ReadU(U, "alloc"))
        return false;
      Event.InstrOrSite = static_cast<uint32_t>(U);
      if (!ReadS(S, "alloc"))
        return false;
      Event.Addr = PrevAddr + static_cast<uint64_t>(S);
      if (!ReadU(U, "alloc"))
        return false;
      Event.Size = U;
      if (!ReadS(S, "alloc"))
        return false;
      Event.Time = PrevTime + static_cast<uint64_t>(S);
      break;
    case kOpFree:
      Event.K = TraceEvent::Kind::Free;
      if (!ReadS(S, "free"))
        return false;
      Event.Addr = PrevAddr + static_cast<uint64_t>(S);
      if (!ReadS(S, "free"))
        return false;
      Event.Time = PrevTime + static_cast<uint64_t>(S);
      break;
    default:
      return failed(Where() + ": unknown event opcode " +
                    std::to_string(Tag & kOpMask));
    }
    PrevAddr = Event.Addr;
    PrevTime = Event.Time;
    Fn(Event);
  }
  if (Pos != End)
    return failed(Where() + ": trailing bytes in event payload");
  return true;
}

bool TraceReader::forEachEvent(
    const std::function<void(const TraceEvent &)> &Fn) {
  for (size_t B = 0; B != Blocks.size(); ++B) {
    const BlockRef &Ref = Blocks[B];
    if (crc32(Bytes.data() + Ref.PayloadPos, Ref.PayloadLen) != Ref.Crc)
      return failed("block " + std::to_string(B) +
                    ": checksum mismatch (corrupted file)");
    if (!decodeBlock(Ref.PayloadPos, Ref.PayloadLen, Ref.EventCount, B, Fn))
      return false;
  }
  return true;
}

bool TraceReader::decodeBlockEvents(size_t Index,
                                    std::vector<TraceEvent> &Out) {
  Out.clear();
  const BlockRef &Ref = Blocks[Index];
  if (crc32(Bytes.data() + Ref.PayloadPos, Ref.PayloadLen) != Ref.Crc)
    return failed("block " + std::to_string(Index) +
                  ": checksum mismatch (corrupted file)");
  Out.reserve(Ref.EventCount);
  return decodeBlock(Ref.PayloadPos, Ref.PayloadLen, Ref.EventCount, Index,
                     [&](const TraceEvent &E) { Out.push_back(E); });
}

std::vector<TraceReader::BlockStats> TraceReader::blockStats() const {
  std::vector<BlockStats> Stats;
  Stats.reserve(Blocks.size());
  for (const BlockRef &Ref : Blocks)
    Stats.push_back(BlockStats{Ref.EventCount, Ref.PayloadLen});
  return Stats;
}

bool TraceReader::readAllEvents(std::vector<TraceEvent> &Out) {
  Out.clear();
  Out.reserve(Info.TotalEvents);
  return forEachEvent([&](const TraceEvent &E) { Out.push_back(E); });
}
