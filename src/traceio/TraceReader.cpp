//===- traceio/TraceReader.cpp - .orpt trace parsing ---------------------===//

#include "traceio/TraceReader.h"

#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/VarInt.h"
#include "traceio/BlockCodec.h"
#include "traceio/RegistryCodec.h"

#include <cstdio>

using namespace orp;
using namespace orp::traceio;

bool TraceReader::failed(const std::string &Msg) {
  if (Err.empty())
    Err = Name + ": " + Msg;
  return false;
}

bool TraceReader::open(const std::string &Path) {
  std::FILE *File = std::fopen(Path.c_str(), "rb");
  if (!File) {
    Name = Path;
    return failed("cannot open file");
  }
  std::vector<uint8_t> Image;
  uint8_t Buf[64 * 1024];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), File)) > 0)
    Image.insert(Image.end(), Buf, Buf + N);
  bool ReadErr = std::ferror(File) != 0;
  std::fclose(File);
  if (ReadErr) {
    Name = Path;
    return failed("read error");
  }
  return openImage(std::move(Image), Path);
}

bool TraceReader::openImage(std::vector<uint8_t> Image,
                            const std::string &FileName) {
  Name = FileName;
  Bytes = std::move(Image);
  Err.clear();
  Instrs.clear();
  Sites.clear();
  Blocks.clear();
  Info = TraceInfo{};
  Info.FileBytes = Bytes.size();

  if (!parseHeader())
    return false;
  uint64_t RegistryOffset = readLE64(Bytes.data() + 16);
  if (!indexBlocks(RegistryOffset))
    return false;
  if (!parseRegistry(RegistryOffset))
    return false;
  Info.NumBlocks = Blocks.size();
  Info.NumInstructions = Instrs.size();
  Info.NumAllocSites = Sites.size();
  return true;
}

bool TraceReader::parseHeader() {
  if (Bytes.size() < kHeaderSize)
    return failed("truncated file: shorter than the fixed header");
  for (unsigned I = 0; I != 4; ++I)
    if (Bytes[I] != kMagic[I])
      return failed("bad magic: not an .orpt trace");
  Info.Version = Bytes[4];
  if (Info.Version < kFormatVersionV1 || Info.Version > kFormatVersionV2)
    return failed("unsupported format version " +
                  std::to_string(Info.Version));
  Info.Flags = Bytes[5];
  Info.AllocPolicy = Bytes[6];
  Info.Seed = readLE64(Bytes.data() + 8);
  Info.TotalEvents = readLE64(Bytes.data() + 24);
  uint32_t Want = readLE32(Bytes.data() + 32);
  uint32_t Got = crc32(Bytes.data(), 32);
  if (Want != Got)
    return failed("header checksum mismatch (corrupted file)");
  uint64_t RegistryOffset = readLE64(Bytes.data() + 16);
  if (RegistryOffset == 0)
    return failed("unfinalized trace: the writer never close()d it");
  if (RegistryOffset < kHeaderSize || RegistryOffset >= Bytes.size())
    return failed("registry offset out of bounds (truncated file?)");
  return true;
}

bool TraceReader::indexBlocks(uint64_t RegistryOffset) {
  size_t Pos = kHeaderSize;
  uint64_t Events = 0;
  while (Pos < RegistryOffset) {
    uint64_t BlockIndex = Blocks.size();
    auto Where = [&] {
      return "block " + std::to_string(BlockIndex) + " at byte " +
             std::to_string(Pos);
    };
    if (Bytes[Pos] != kBlockEvents)
      return failed(Where() + ": unexpected section kind " +
                    std::to_string(Bytes[Pos]));
    ++Pos;
    uint64_t PayloadLen, EventCount;
    if (!tryDecodeULEB128(Bytes.data(), RegistryOffset, Pos, PayloadLen) ||
        !tryDecodeULEB128(Bytes.data(), RegistryOffset, Pos, EventCount))
      return failed(Where() + ": truncated block header");
    if (RegistryOffset - Pos < 4)
      return failed(Where() + ": truncated block header");
    uint32_t Crc = readLE32(Bytes.data() + Pos);
    Pos += 4;
    if (PayloadLen > RegistryOffset - Pos)
      return failed(Where() + ": payload extends past the registry "
                              "section (truncated file?)");
    Blocks.push_back(BlockRef{Pos, static_cast<size_t>(PayloadLen),
                              EventCount, Crc});
    Events += EventCount;
    Pos += PayloadLen;
  }
  if (Events != Info.TotalEvents)
    return failed("event count mismatch: header declares " +
                  std::to_string(Info.TotalEvents) + ", blocks hold " +
                  std::to_string(Events));
  return true;
}

bool TraceReader::parseRegistry(uint64_t Offset) {
  size_t Pos = Offset;
  const size_t Size = Bytes.size();
  if (Bytes[Pos] != kBlockRegistry)
    return failed("registry section: unexpected kind " +
                  std::to_string(Bytes[Pos]));
  ++Pos;
  uint64_t PayloadLen;
  if (!tryDecodeULEB128(Bytes.data(), Size, Pos, PayloadLen) ||
      Size - Pos < 4)
    return failed("registry section: truncated header");
  uint32_t Want = readLE32(Bytes.data() + Pos);
  Pos += 4;
  if (PayloadLen > Size - Pos)
    return failed("registry section: truncated payload");
  const size_t End = Pos + PayloadLen;
  if (crc32(Bytes.data() + Pos, PayloadLen) != Want)
    return failed("registry section: checksum mismatch (corrupted file)");
  if (End >= Size || Bytes[End] != kEndMarker)
    return failed("missing end marker (truncated file?)");
  if (End + 1 != Size)
    return failed("trailing garbage after end marker");

  std::string PayloadErr;
  if (!parseRegistryPayload(Bytes.data() + Pos, PayloadLen, Instrs, Sites,
                            PayloadErr))
    return failed("registry section at byte " + std::to_string(Pos) + ": " +
                  PayloadErr);
  return true;
}

bool TraceReader::forEachEvent(
    const std::function<void(const TraceEvent &)> &Fn) {
  for (size_t B = 0; B != Blocks.size(); ++B) {
    const BlockRef &Ref = Blocks[B];
    std::string BlockErr;
    if (!verifyBlockChecksum(Bytes.data() + Ref.PayloadPos, Ref.PayloadLen,
                             Ref.Crc, B, Ref.PayloadPos, BlockErr) ||
        !decodeEventBlockAny(Info.Version, Bytes.data() + Ref.PayloadPos,
                             Ref.PayloadLen, Ref.EventCount, Fn, BlockErr, B,
                             Ref.PayloadPos))
      return failed(BlockErr);
  }
  return true;
}

bool TraceReader::decodeBlockEvents(size_t Index,
                                    std::vector<TraceEvent> &Out) {
  Out.clear();
  const BlockRef &Ref = Blocks[Index];
  Out.reserve(Ref.EventCount);
  std::string BlockErr;
  if (!verifyBlockChecksum(Bytes.data() + Ref.PayloadPos, Ref.PayloadLen,
                           Ref.Crc, Index, Ref.PayloadPos, BlockErr) ||
      !decodeEventBlockAny(Info.Version, Bytes.data() + Ref.PayloadPos,
                           Ref.PayloadLen, Ref.EventCount,
                           [&](const TraceEvent &E) { Out.push_back(E); },
                           BlockErr, Index, Ref.PayloadPos))
    return failed(BlockErr);
  return true;
}

bool TraceReader::decodeBlockColumns(size_t Index, DecodedBlock &Out) {
  const BlockRef &Ref = Blocks[Index];
  std::string BlockErr;
  if (!verifyBlockChecksum(Bytes.data() + Ref.PayloadPos, Ref.PayloadLen,
                           Ref.Crc, Index, Ref.PayloadPos, BlockErr) ||
      !decodeEventBlockV2(Bytes.data() + Ref.PayloadPos, Ref.PayloadLen,
                          Ref.EventCount, Out, BlockErr, Index,
                          Ref.PayloadPos))
    return failed(BlockErr);
  return true;
}

TraceReader::RawBlock TraceReader::rawBlock(size_t Index) const {
  const BlockRef &Ref = Blocks[Index];
  return RawBlock{Bytes.data() + Ref.PayloadPos, Ref.PayloadLen,
                  Ref.EventCount, Ref.Crc, Ref.PayloadPos};
}

std::vector<TraceReader::BlockStats> TraceReader::blockStats() const {
  std::vector<BlockStats> Stats;
  Stats.reserve(Blocks.size());
  for (const BlockRef &Ref : Blocks)
    Stats.push_back(BlockStats{Ref.EventCount, Ref.PayloadLen});
  return Stats;
}

bool TraceReader::readAllEvents(std::vector<TraceEvent> &Out) {
  Out.clear();
  Out.reserve(Info.TotalEvents);
  return forEachEvent([&](const TraceEvent &E) { Out.push_back(E); });
}
