//===- traceio/TraceFormat.h - The .orpt binary trace format ---*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk layout of an ORP trace (.orpt): a persistent, compact
/// record of one instrumented run's probe event stream, decoupling event
/// collection from translation/decomposition (the two halves of the
/// paper's Figure 4 framework). A recorded trace can be replayed into a
/// fresh ProfilingSession on any host and yields bit-identical profiles.
///
/// File layout (all fixed-width fields little-endian, see
/// support/Endian.h; all variable-width fields LEB128, see
/// support/VarInt.h):
///
///   FixedHeader (36 bytes)
///     [0]  magic "ORPT"
///     [4]  u8  version (1 or 2; the versions differ only in the event
///          payload encoding, selected per file)
///     [5]  u8  flags (kFlagHasRegistry)
///     [6]  u8  alloc policy (memsim::AllocPolicy)
///     [7]  u8  reserved (0)
///     [8]  u64 environment seed of the recorded run
///     [16] u64 registry section offset (0 => writer never finalized)
///     [24] u64 total event count
///     [32] u32 CRC-32 of header bytes [0, 32)
///   Event blocks, back to back, from offset 36 to the registry offset:
///     u8 kind (kBlockEvents) | uleb payloadLen | uleb eventCount |
///     u32 CRC-32 of payload | payload
///   Registry section at the registry offset:
///     u8 kind (kBlockRegistry) | uleb payloadLen | u32 CRC-32 | payload
///     payload: uleb numInstrs, per instr {uleb nameLen, name, u8 kind};
///              uleb numSites, per site {uleb nameLen, name,
///                                       uleb typeLen, type}
///   End marker: u8 kEndMarker, which must be the last byte of the file.
///
/// Event payload encoding, v1 (interleaved records). Addresses and
/// timestamps are delta-encoded against the previous record; delta
/// state resets to zero at every block boundary so blocks decode
/// independently (a corrupted block cannot poison its successors, and
/// future shard-parallel readers can start at any block). Each record
/// is a tag byte followed by fields:
///
///   access: tag kOpAccess | kTagStore? | kTagSize8?
///           uleb instr, sleb addrDelta, sleb timeDelta,
///           [uleb size when kTagSize8 is clear]
///   alloc:  tag kOpAlloc | kTagStatic?
///           uleb site, sleb addrDelta, uleb size, sleb timeDelta
///   free:   tag kOpFree
///           sleb addrDelta, sleb timeDelta
///
/// Event payload encoding, v2 (columnar). The same events, the same tag
/// vocabulary and delta rules as v1 — but struct-of-arrays: each field
/// lives in its own contiguous column so the decoder runs one tight,
/// branch-predictable varint loop per column instead of a per-record
/// tag dispatch (DESIGN.md section 15). Five length-prefixed columns,
/// in order:
///
///   kinds  uleb byteLen, then one v1 tag byte per event
///          (byteLen must equal the block's event count)
///   ids    uleb byteLen, then uleb instr/site per access and alloc
///          event, in event order (frees contribute nothing)
///   addrs  uleb byteLen, then sleb addrDelta per event (every kind)
///   times  uleb byteLen, then sleb timeDelta per event (every kind)
///   sizes  uleb byteLen, then uleb size per non-kTagSize8 access and
///          per alloc, in event order
///
/// A column whose declared entries end before byteLen is exhausted (or
/// that runs dry early) is a "column length mismatch" — distinct from a
/// truncated payload, so fuzzers can tell framing bugs from codec bugs.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACEIO_TRACEFORMAT_H
#define ORP_TRACEIO_TRACEFORMAT_H

#include "trace/Events.h"

#include <cstdint>

namespace orp {
namespace traceio {

/// File magic: "ORPT".
constexpr uint8_t kMagic[4] = {'O', 'R', 'P', 'T'};

/// The two on-disk format revisions: v1 interleaved records, v2
/// columnar blocks. Readers accept the whole [v1, v2] range and select
/// the payload decoder per file; writers default to v2 and can be asked
/// for v1 (`orp-trace record --format-version=1`). The format is
/// append-only versioned (new event kinds or header fields bump this).
constexpr uint8_t kFormatVersionV1 = 1;
constexpr uint8_t kFormatVersionV2 = 2;

/// Newest format version this build reads and the writer's default.
/// (Kept under the historical name: existing code and tests compare
/// reader/writer versions against "the" format version, which has
/// always meant the newest one.)
constexpr uint8_t kFormatVersion = kFormatVersionV2;

/// Size in bytes of the fixed file header.
constexpr size_t kHeaderSize = 36;

/// Header flag: a registry section is present.
constexpr uint8_t kFlagHasRegistry = 0x01;

/// Section kinds.
constexpr uint8_t kBlockEvents = 0x01;
constexpr uint8_t kBlockRegistry = 0x02;
constexpr uint8_t kEndMarker = 0xFF;

/// Record tag opcodes (low 3 bits of the tag byte).
constexpr uint8_t kOpAccess = 0x00;
constexpr uint8_t kOpAlloc = 0x01;
constexpr uint8_t kOpFree = 0x02;
constexpr uint8_t kOpMask = 0x07;

/// Tag modifier bits.
constexpr uint8_t kTagStore = 0x08;  ///< Access is a store.
constexpr uint8_t kTagSize8 = 0x10;  ///< Access width is 8 (elided field).
constexpr uint8_t kTagStatic = 0x08; ///< Alloc is a static object.

/// One decoded trace record, in original delivery order. A flat struct
/// rather than a variant: readers switch on Kind and use the fields that
/// apply (AccessEvent fields for Access, AllocEvent fields for Alloc...).
struct TraceEvent {
  enum class Kind : uint8_t { Access, Alloc, Free } K;
  uint32_t InstrOrSite = 0; ///< InstrId (access) or AllocSiteId (alloc).
  uint64_t Addr = 0;
  uint64_t Size = 0; ///< Access width or object size.
  uint64_t Time = 0;
  bool IsStore = false;  ///< Access only.
  bool IsStatic = false; ///< Alloc only.
};

/// Parsed fixed-header metadata plus file statistics.
struct TraceInfo {
  uint8_t Version = 0;
  uint8_t Flags = 0;
  uint8_t AllocPolicy = 0;
  uint64_t Seed = 0;
  uint64_t TotalEvents = 0;
  uint64_t NumBlocks = 0;
  uint64_t FileBytes = 0;
  uint64_t NumInstructions = 0;
  uint64_t NumAllocSites = 0;
};

} // namespace traceio
} // namespace orp

#endif // ORP_TRACEIO_TRACEFORMAT_H
