//===- traceio/RegistryCodec.h - Probe-table payload codec -----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Encoder/decoder for the .orpt registry *payload* — the instruction
/// and allocation-site tables that give event ids their names. The same
/// byte layout travels inside a trace file's registry section
/// (TraceWriter/TraceReader) and inside an OPEN frame of the orp-traced
/// wire protocol (src/session), so a session opened over the wire names
/// its probe sites identically to one replayed from disk.
///
/// Layout: uleb numInstrs, then per instruction {uleb nameLen, name,
/// u8 kind}; uleb numSites, then per site {uleb nameLen, name,
/// uleb typeLen, type}. Framing (section kind, length, CRC) is the
/// carrier's business, not this codec's.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TRACEIO_REGISTRYCODEC_H
#define ORP_TRACEIO_REGISTRYCODEC_H

#include "trace/InstructionRegistry.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace traceio {

/// Appends the registry-payload encoding of \p Registry to \p Out.
void appendRegistryPayload(const trace::InstructionRegistry &Registry,
                           std::vector<uint8_t> &Out);

/// Appends the registry-payload encoding of already-extracted tables
/// (e.g. TraceReader::instructions()/allocSites()) to \p Out.
void appendRegistryPayload(const std::vector<trace::InstrInfo> &Instrs,
                           const std::vector<trace::AllocSiteInfo> &Sites,
                           std::vector<uint8_t> &Out);

/// Parses one registry payload into \p Instrs / \p Sites (replacing
/// their contents). Returns false with \p Err set on malformed input;
/// messages are unprefixed ("malformed instruction entry") so callers
/// can label the carrier ("registry section: ...", "OPEN frame: ...").
bool parseRegistryPayload(const uint8_t *Data, size_t Len,
                          std::vector<trace::InstrInfo> &Instrs,
                          std::vector<trace::AllocSiteInfo> &Sites,
                          std::string &Err);

} // namespace traceio
} // namespace orp

#endif // ORP_TRACEIO_REGISTRYCODEC_H
