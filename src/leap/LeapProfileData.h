//===- leap/LeapProfileData.h - Serializable LEAP profiles -----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A LEAP profile as a standalone artifact: the paper's workflow runs
/// the profiler once and then applies post-processors offline ("two
/// different post-processors use these LMADs..."). LeapProfileData is
/// the detached representation — the (instruction, group)-indexed LMAD
/// sets, overflow summaries and instruction counters — with a compact
/// LEB128 byte serialization whose size is exactly what
/// LeapProfiler::serializedSizeBytes() accounts.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_LEAP_LEAPPROFILEDATA_H
#define ORP_LEAP_LEAPPROFILEDATA_H

#include "core/Decomposition.h"
#include "leap/Leap.h"
#include "lmad/LmadCompressor.h"

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace orp {
namespace leap {

/// One detached (instruction, group) substream record.
struct SubstreamData {
  std::vector<lmad::Lmad> Lmads;
  lmad::OverflowSummary Overflow;
  uint64_t TotalPoints = 0;

  bool operator==(const SubstreamData &O) const;
};

/// A LEAP profile detached from its profiler.
class LeapProfileData {
public:
  /// Captures the state of \p Profiler.
  static LeapProfileData fromProfiler(const LeapProfiler &Profiler);

  /// Serializes to bytes (ULEB/SLEB128 based).
  std::vector<uint8_t> serialize() const;

  /// Parses a serialize()d image. Asserts on malformed input in debug
  /// builds (profiles are trusted, locally produced artifacts).
  static LeapProfileData deserialize(const std::vector<uint8_t> &Bytes);

  /// Substreams, unordered. serialize() emits them in sorted key order,
  /// so the byte image stays independent of insertion/hash order.
  const std::unordered_map<core::VerticalKey, SubstreamData,
                           core::VerticalKeyHash> &
  substreams() const {
    return Substreams;
  }

  /// Per-instruction execution summaries, unordered.
  const std::unordered_map<trace::InstrId, InstrSummary> &
  instructions() const {
    return Instrs;
  }

  bool operator==(const LeapProfileData &O) const;

private:
  std::unordered_map<core::VerticalKey, SubstreamData, core::VerticalKeyHash>
      Substreams;
  std::unordered_map<trace::InstrId, InstrSummary> Instrs;
};

} // namespace leap
} // namespace orp

#endif // ORP_LEAP_LEAPPROFILEDATA_H
