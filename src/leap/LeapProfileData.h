//===- leap/LeapProfileData.h - Serializable LEAP profiles -----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A LEAP profile as a standalone artifact: the paper's workflow runs
/// the profiler once and then applies post-processors offline ("two
/// different post-processors use these LMADs..."). LeapProfileData is
/// the detached representation — the (instruction, group)-indexed LMAD
/// sets, overflow summaries and instruction counters — with a compact
/// LEB128 byte serialization whose size is exactly what
/// LeapProfiler::serializedSizeBytes() accounts.
///
/// Profiles are mergeable (DESIGN.md section 17):
///  - mergeSequential folds the profile of a later trace segment into
///    the profile of the earlier one. Because descriptor capture is an
///    exact stream prefix, the merge replays the later segment's
///    captured points through a resumed compressor and is byte-exact:
///    profiling a trace in checkpointed segments and merging reproduces
///    the unsplit profile bit for bit.
///  - mergeUnion folds profiles of independent runs. Descriptor sets
///    union and are re-bounded to the cap by a canonical total order;
///    the fold is associative and commutative, so N-way merges give the
///    same bytes in any order or grouping.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_LEAP_LEAPPROFILEDATA_H
#define ORP_LEAP_LEAPPROFILEDATA_H

#include "core/Decomposition.h"
#include "leap/Leap.h"
#include "lmad/LmadCompressor.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace orp {
namespace leap {

/// One detached (instruction, group) substream record.
struct SubstreamData {
  std::vector<lmad::Lmad> Lmads;
  lmad::OverflowSummary Overflow;
  uint64_t TotalPoints = 0;
  /// Discard endpoints; meaningful only when Overflow.Dropped != 0.
  /// They let mergeSequential bridge the granularity chain across the
  /// segment boundary.
  lmad::Point FirstDiscard = {0, 0, 0};
  lmad::Point LastDiscard = {0, 0, 0};

  bool operator==(const SubstreamData &O) const;
};

/// A LEAP profile detached from its profiler.
class LeapProfileData {
public:
  /// On-disk format: "LEAP" magic, one version byte, a little-endian
  /// CRC-32 of the payload, then the LEB128 payload.
  static constexpr char kMagic[4] = {'L', 'E', 'A', 'P'};
  static constexpr uint8_t kFormatVersion = 2;
  static constexpr size_t kHeaderSize = 4 + 1 + 4;

  /// Captures the state of \p Profiler.
  static LeapProfileData fromProfiler(const LeapProfiler &Profiler);

  /// Serializes to bytes (header plus ULEB/SLEB128 payload).
  std::vector<uint8_t> serialize() const;

  /// Parses a serialize()d image. Returns false (with a diagnostic in
  /// \p Err) on any malformed input — bad magic, version, checksum,
  /// truncation, counts inconsistent with the remaining bytes — and
  /// never reads out of bounds: profile files are untrusted input.
  [[nodiscard]] static bool deserialize(const std::vector<uint8_t> &Bytes,
                                        LeapProfileData &Out,
                                        std::string &Err);

  /// Folds \p Next, the profile of the trace segment that immediately
  /// follows this one, into this profile. Requires equal descriptor
  /// caps. Byte-exact — serialize() of the result equals the profile of
  /// the unsplit run — whenever each substream's later segment captured
  /// at least to the unsplit capture horizon (always true when the
  /// earlier segment saturated its cap or the later one fully
  /// captured); a later segment that overflowed earlier degrades that
  /// substream to a coarser but conservative overflow summary.
  [[nodiscard]] bool mergeSequential(const LeapProfileData &Next,
                                     std::string &Err);

  /// Folds \p Other, the profile of an independent run, into this
  /// profile. Requires equal descriptor caps. Associative and
  /// commutative: any merge order yields identical bytes.
  [[nodiscard]] bool mergeUnion(const LeapProfileData &Other,
                                std::string &Err);

  /// Returns the per-substream descriptor cap the profile was built
  /// with.
  unsigned maxLmads() const { return MaxLmads; }

  /// Substreams, unordered. serialize() emits them in sorted key order,
  /// so the byte image stays independent of insertion/hash order.
  const std::unordered_map<core::VerticalKey, SubstreamData,
                           core::VerticalKeyHash> &
  substreams() const {
    return Substreams;
  }

  /// Per-instruction execution summaries, unordered.
  const std::unordered_map<trace::InstrId, InstrSummary> &
  instructions() const {
    return Instrs;
  }

  bool operator==(const LeapProfileData &O) const;

private:
  unsigned MaxLmads = lmad::LmadCompressor::DefaultMaxLmads;
  std::unordered_map<core::VerticalKey, SubstreamData, core::VerticalKeyHash>
      Substreams;
  std::unordered_map<trace::InstrId, InstrSummary> Instrs;
};

} // namespace leap
} // namespace orp

#endif // ORP_LEAP_LEAPPROFILEDATA_H
