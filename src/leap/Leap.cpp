//===- leap/Leap.cpp - Loss-enhanced access profiler ---------------------===//

#include "leap/Leap.h"

#include "leap/LeapProfileData.h"
#include "support/Statistics.h"
#include "support/VarInt.h"

#include <set>
#include <string>

using namespace orp;
using namespace orp::leap;

LeapProfiler::LeapProfiler(unsigned MaxLmads, unsigned Threads)
    : MaxLmads(MaxLmads),
      Decomposer(
          [MaxLmads](core::VerticalKey) {
            return std::make_unique<LeapSubstream>(MaxLmads);
          },
          Threads),
      Collector(telemetry::Registry::global().addCollector(
          [this](telemetry::Registry &R) {
            R.gauge("leap.tuples").set(static_cast<int64_t>(Tuples));
            R.gauge("leap.instructions")
                .set(static_cast<int64_t>(Instrs.size()));
            // numSubstreams() reads the merged map, which is only valid
            // once this thread owns the substreams again.
            if (!Decomposer.threaded())
              R.gauge("leap.substreams")
                  .set(static_cast<int64_t>(Decomposer.numSubstreams()));
            std::vector<support::WorkerTelemetry> WT =
                Decomposer.workerTelemetry();
            for (size_t I = 0; I != WT.size(); ++I) {
              std::string P =
                  "leap.worker." + std::to_string(I) + ".";
              R.gauge(P + "queue_depth")
                  .set(static_cast<int64_t>(WT[I].Queue.Depth));
              R.gauge(P + "queue_high_watermark")
                  .set(static_cast<int64_t>(WT[I].Queue.HighWatermark));
              R.gauge(P + "queue_pushes")
                  .set(static_cast<int64_t>(WT[I].Queue.Pushes));
              R.gauge(P + "queue_push_stalls")
                  .set(static_cast<int64_t>(WT[I].Queue.PushStalls));
              R.gauge(P + "busy_ns")
                  .set(static_cast<int64_t>(WT[I].BusyNanos));
            }
          })) {}

void LeapProfiler::consume(const core::OrTuple &Tuple) {
  ++Tuples;
  InstrSummary &Summary = Instrs[Tuple.Instr];
  ++Summary.ExecCount;
  if (Tuple.IsStore)
    ++Summary.StoreCount;
  Decomposer.consume(Tuple);
}

void LeapProfiler::forEachSubstream(
    const std::function<void(const core::VerticalKey &,
                             const lmad::LmadCompressor &)> &Fn) const {
  Decomposer.forEach([&](const core::VerticalKey &Key,
                         const core::SubstreamConsumer &Sub) {
    Fn(Key, static_cast<const LeapSubstream &>(Sub).compressor());
  });
}

const lmad::LmadCompressor *
LeapProfiler::lookup(const core::VerticalKey &Key) const {
  const core::SubstreamConsumer *Sub = Decomposer.lookup(Key);
  if (!Sub)
    return nullptr;
  return &static_cast<const LeapSubstream &>(*Sub).compressor();
}

size_t LeapProfiler::serializedSizeBytes() const {
  size_t Size = LeapProfileData::kHeaderSize;
  Size += sizeULEB128(MaxLmads);
  Size += sizeULEB128(Decomposer.numSubstreams());
  forEachSubstream([&](const core::VerticalKey &Key,
                       const lmad::LmadCompressor &Compressor) {
    Size += sizeULEB128(Key.Instr);
    Size += sizeULEB128(Key.Group);
    Size += sizeULEB128(Compressor.totalPoints());
    Size += Compressor.serializedSizeBytes();
  });
  Size += sizeULEB128(Instrs.size());
  // orp-lint: allow(unordered-serial): order-independent size sum.
  for (const auto &[Instr, Summary] : Instrs) {
    Size += sizeULEB128(Instr);
    Size += sizeULEB128(Summary.ExecCount);
    Size += sizeULEB128(Summary.StoreCount);
  }
  return Size;
}

double LeapProfiler::accessesCapturedPercent() const {
  uint64_t Captured = 0;
  uint64_t Total = 0;
  forEachSubstream([&](const core::VerticalKey &,
                       const lmad::LmadCompressor &Compressor) {
    Captured += Compressor.capturedPoints();
    Total += Compressor.totalPoints();
  });
  return percentOf(static_cast<double>(Captured),
                   static_cast<double>(Total));
}

double LeapProfiler::instructionsCapturedPercent() const {
  if (Instrs.empty())
    return 0.0;
  std::set<trace::InstrId> Overflowed;
  forEachSubstream([&](const core::VerticalKey &Key,
                       const lmad::LmadCompressor &Compressor) {
    if (!Compressor.fullyCaptured())
      Overflowed.insert(Key.Instr);
  });
  uint64_t Full = Instrs.size() - Overflowed.size();
  return percentOf(static_cast<double>(Full),
                   static_cast<double>(Instrs.size()));
}
