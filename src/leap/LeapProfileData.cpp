//===- leap/LeapProfileData.cpp - Serializable LEAP profiles -------------===//

#include "leap/LeapProfileData.h"

#include "support/Checksum.h"
#include "support/Endian.h" // orp-lint: allow(endian-io)
#include "support/VarInt.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace orp;
using namespace orp::leap;

bool SubstreamData::operator==(const SubstreamData &O) const {
  if (TotalPoints != O.TotalPoints || Lmads.size() != O.Lmads.size())
    return false;
  for (size_t I = 0; I != Lmads.size(); ++I) {
    const lmad::Lmad &A = Lmads[I];
    const lmad::Lmad &B = O.Lmads[I];
    if (A.Dims != B.Dims || A.Count != B.Count || A.Start != B.Start ||
        A.Stride != B.Stride)
      return false;
  }
  if (Overflow.Dropped != O.Overflow.Dropped ||
      Overflow.Min != O.Overflow.Min || Overflow.Max != O.Overflow.Max ||
      Overflow.Granularity != O.Overflow.Granularity)
    return false;
  // The discard endpoints only carry information when points dropped.
  if (Overflow.Dropped != 0 &&
      (FirstDiscard != O.FirstDiscard || LastDiscard != O.LastDiscard))
    return false;
  return true;
}

bool LeapProfileData::operator==(const LeapProfileData &O) const {
  // The maps are unordered; compare by lookup, not by iteration order.
  if (MaxLmads != O.MaxLmads || Substreams.size() != O.Substreams.size() ||
      Instrs.size() != O.Instrs.size())
    return false;
  // orp-lint: allow(unordered-serial): order-independent comparison.
  for (const auto &[Instr, Summary] : Instrs) {
    auto It = O.Instrs.find(Instr);
    if (It == O.Instrs.end() ||
        It->second.ExecCount != Summary.ExecCount ||
        It->second.StoreCount != Summary.StoreCount)
      return false;
  }
  for (const auto &[Key, Sub] : Substreams) {
    auto It = O.Substreams.find(Key);
    if (It == O.Substreams.end() || !(It->second == Sub))
      return false;
  }
  return true;
}

LeapProfileData
LeapProfileData::fromProfiler(const LeapProfiler &Profiler) {
  LeapProfileData Data;
  Data.MaxLmads = Profiler.maxLmads();
  Profiler.forEachSubstream([&](const core::VerticalKey &Key,
                                const lmad::LmadCompressor &Compressor) {
    SubstreamData Sub;
    Sub.Lmads = Compressor.lmads();
    Sub.Overflow = Compressor.overflow();
    Sub.TotalPoints = Compressor.totalPoints();
    Sub.FirstDiscard = Compressor.firstDiscard();
    Sub.LastDiscard = Compressor.lastDiscard();
    Data.Substreams.emplace(Key, std::move(Sub));
  });
  for (const auto &[Instr, Summary] : Profiler.instructions())
    Data.Instrs.emplace(Instr, Summary);
  return Data;
}

std::vector<uint8_t> LeapProfileData::serialize() const {
  std::vector<uint8_t> Out;
  Out.reserve(64);
  for (char C : kMagic)
    Out.push_back(static_cast<uint8_t>(C));
  Out.push_back(kFormatVersion);
  appendLE32(0, Out); // Payload CRC, patched below.

  // Emit in sorted key order: the byte image must not depend on the
  // unordered containers' iteration order.
  std::vector<const std::pair<const core::VerticalKey, SubstreamData> *>
      SortedSubs;
  SortedSubs.reserve(Substreams.size());
  // orp-analyze: allow(unordered-serialize): feeds the sort below.
  for (const auto &Entry : Substreams)
    SortedSubs.push_back(&Entry);
  std::sort(SortedSubs.begin(), SortedSubs.end(),
            [](const auto *A, const auto *B) { return A->first < B->first; });

  encodeULEB128(MaxLmads, Out);
  encodeULEB128(Substreams.size(), Out);
  for (const auto *Entry : SortedSubs) {
    const core::VerticalKey &Key = Entry->first;
    const SubstreamData &Sub = Entry->second;
    encodeULEB128(Key.Instr, Out);
    encodeULEB128(Key.Group, Out);
    encodeULEB128(Sub.TotalPoints, Out);
    encodeULEB128(Sub.Lmads.size(), Out);
    for (const lmad::Lmad &L : Sub.Lmads) {
      for (unsigned D = 0; D != 3; ++D) {
        encodeSLEB128(L.Start[D], Out);
        encodeSLEB128(L.Stride[D], Out);
      }
      encodeULEB128(L.Count, Out);
    }
    Out.push_back(Sub.Overflow.Dropped != 0 ? 1 : 0);
    if (Sub.Overflow.Dropped != 0) {
      encodeULEB128(Sub.Overflow.Dropped, Out);
      for (unsigned D = 0; D != 3; ++D) {
        encodeSLEB128(Sub.Overflow.Min[D], Out);
        encodeSLEB128(Sub.Overflow.Max[D], Out);
        encodeSLEB128(Sub.Overflow.Granularity[D], Out);
      }
      for (unsigned D = 0; D != 3; ++D) {
        encodeSLEB128(Sub.FirstDiscard[D], Out);
        encodeSLEB128(Sub.LastDiscard[D], Out);
      }
    }
  }
  std::vector<const std::pair<const trace::InstrId, InstrSummary> *>
      SortedInstrs;
  SortedInstrs.reserve(Instrs.size());
  // orp-lint: allow(unordered-serial): feeds the sort below.
  for (const auto &Entry : Instrs)
    SortedInstrs.push_back(&Entry);
  std::sort(SortedInstrs.begin(), SortedInstrs.end(),
            [](const auto *A, const auto *B) { return A->first < B->first; });

  encodeULEB128(Instrs.size(), Out);
  for (const auto *Entry : SortedInstrs) {
    encodeULEB128(Entry->first, Out);
    encodeULEB128(Entry->second.ExecCount, Out);
    encodeULEB128(Entry->second.StoreCount, Out);
  }

  uint32_t Crc = crc32(Out.data() + kHeaderSize, Out.size() - kHeaderSize);
  for (unsigned I = 0; I != 4; ++I)
    Out[5 + I] = static_cast<uint8_t>(Crc >> (8 * I));
  return Out;
}

namespace {

/// Cursor over an untrusted payload: every read is bounds-checked and
/// the first failure is latched into an error string.
struct PayloadCursor {
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  std::string &Err;

  PayloadCursor(const uint8_t *Data, size_t Size, std::string &Err)
      : Data(Data), Size(Size), Err(Err) {}

  size_t remaining() const { return Size - Pos; }

  bool fail(const char *What, VarIntStatus Status) {
    Err = std::string("leap profile: ") + What + ": " +
          varIntStatusName(Status) + " varint";
    return false;
  }

  [[nodiscard]] bool readU(const char *What, uint64_t &Value) {
    VarIntStatus S = decodeULEB128Checked(Data, Size, Pos, Value);
    if (S != VarIntStatus::Ok)
      return fail(What, S);
    return true;
  }

  [[nodiscard]] bool readS(const char *What, int64_t &Value) {
    VarIntStatus S = decodeSLEB128Checked(Data, Size, Pos, Value);
    if (S != VarIntStatus::Ok)
      return fail(What, S);
    return true;
  }

  [[nodiscard]] bool readByte(const char *What, uint8_t &Value) {
    if (Pos >= Size) {
      Err = std::string("leap profile: ") + What + ": truncated";
      return false;
    }
    Value = Data[Pos++];
    return true;
  }
};

} // namespace

bool LeapProfileData::deserialize(const std::vector<uint8_t> &Bytes,
                                  LeapProfileData &Out, std::string &Err) {
  Out = LeapProfileData();
  if (Bytes.size() < kHeaderSize) {
    Err = "leap profile: truncated header";
    return false;
  }
  for (unsigned I = 0; I != 4; ++I)
    if (Bytes[I] != static_cast<uint8_t>(kMagic[I])) {
      Err = "leap profile: bad magic";
      return false;
    }
  if (Bytes[4] != kFormatVersion) {
    Err = "leap profile: unsupported format version " +
          std::to_string(Bytes[4]);
    return false;
  }
  uint32_t Stored = readLE32(Bytes.data() + 5);
  uint32_t Actual =
      crc32(Bytes.data() + kHeaderSize, Bytes.size() - kHeaderSize);
  if (Stored != Actual) {
    Err = "leap profile: checksum mismatch";
    return false;
  }

  PayloadCursor C(Bytes.data(), Bytes.size(), Err);
  C.Pos = kHeaderSize;
  uint64_t MaxLmads = 0;
  if (!C.readU("descriptor cap", MaxLmads))
    return false;
  if (MaxLmads == 0 || MaxLmads > (1u << 20)) {
    Err = "leap profile: implausible descriptor cap " +
          std::to_string(MaxLmads);
    return false;
  }
  Out.MaxLmads = static_cast<unsigned>(MaxLmads);

  uint64_t NumSubs = 0;
  if (!C.readU("substream count", NumSubs))
    return false;
  // Each substream record occupies at least 5 payload bytes, so a count
  // beyond that bound cannot be satisfied by the remaining input.
  if (NumSubs > C.remaining() / 5 + 1) {
    Err = "leap profile: substream count " + std::to_string(NumSubs) +
          " exceeds remaining bytes";
    return false;
  }
  for (uint64_t S = 0; S != NumSubs; ++S) {
    core::VerticalKey Key;
    uint64_t Instr = 0, Group = 0;
    if (!C.readU("substream instruction", Instr) ||
        !C.readU("substream group", Group))
      return false;
    Key.Instr = static_cast<trace::InstrId>(Instr);
    Key.Group = static_cast<omc::GroupId>(Group);
    SubstreamData Sub;
    uint64_t NumLmads = 0;
    if (!C.readU("substream points", Sub.TotalPoints) ||
        !C.readU("descriptor count", NumLmads))
      return false;
    if (NumLmads > MaxLmads) {
      Err = "leap profile: descriptor count " + std::to_string(NumLmads) +
            " exceeds the cap " + std::to_string(MaxLmads);
      return false;
    }
    // A descriptor is at least 7 bytes (six SLEB fields plus a count).
    if (NumLmads > C.remaining() / 7 + 1) {
      Err = "leap profile: descriptor count exceeds remaining bytes";
      return false;
    }
    Sub.Lmads.reserve(NumLmads);
    uint64_t CapturedPoints = 0;
    for (uint64_t L = 0; L != NumLmads; ++L) {
      lmad::Lmad M;
      M.Dims = 3;
      for (unsigned D = 0; D != 3; ++D)
        if (!C.readS("descriptor start", M.Start[D]) ||
            !C.readS("descriptor stride", M.Stride[D]))
          return false;
      if (!C.readU("descriptor length", M.Count))
        return false;
      if (M.Count == 0) {
        Err = "leap profile: empty descriptor";
        return false;
      }
      CapturedPoints += M.Count;
      Sub.Lmads.push_back(M);
    }
    uint8_t HasOverflow = 0;
    if (!C.readByte("overflow flag", HasOverflow))
      return false;
    if (HasOverflow > 1) {
      Err = "leap profile: bad overflow flag";
      return false;
    }
    if (HasOverflow) {
      if (!C.readU("dropped count", Sub.Overflow.Dropped))
        return false;
      if (Sub.Overflow.Dropped == 0) {
        Err = "leap profile: overflow record with zero dropped points";
        return false;
      }
      for (unsigned D = 0; D != 3; ++D)
        if (!C.readS("overflow min", Sub.Overflow.Min[D]) ||
            !C.readS("overflow max", Sub.Overflow.Max[D]) ||
            !C.readS("overflow granularity", Sub.Overflow.Granularity[D]))
          return false;
      for (unsigned D = 0; D != 3; ++D)
        if (!C.readS("first discard", Sub.FirstDiscard[D]) ||
            !C.readS("last discard", Sub.LastDiscard[D]))
          return false;
    }
    // Every point is either inside a descriptor or dropped; anything
    // else means the image was not produced by a compressor.
    if (Sub.TotalPoints != CapturedPoints + Sub.Overflow.Dropped) {
      Err = "leap profile: point accounting mismatch (total " +
            std::to_string(Sub.TotalPoints) + ", captured " +
            std::to_string(CapturedPoints) + ", dropped " +
            std::to_string(Sub.Overflow.Dropped) + ")";
      return false;
    }
    if (!Out.Substreams.emplace(Key, std::move(Sub)).second) {
      Err = "leap profile: duplicate substream key";
      return false;
    }
  }
  uint64_t NumInstrs = 0;
  if (!C.readU("instruction count", NumInstrs))
    return false;
  // Each instruction row is at least 3 payload bytes.
  if (NumInstrs > C.remaining() / 3 + 1) {
    Err = "leap profile: instruction count exceeds remaining bytes";
    return false;
  }
  for (uint64_t I = 0; I != NumInstrs; ++I) {
    uint64_t Instr = 0;
    InstrSummary Summary;
    if (!C.readU("instruction id", Instr) ||
        !C.readU("exec count", Summary.ExecCount) ||
        !C.readU("store count", Summary.StoreCount))
      return false;
    if (Summary.StoreCount > Summary.ExecCount) {
      Err = "leap profile: store count exceeds exec count";
      return false;
    }
    if (!Out.Instrs.emplace(static_cast<trace::InstrId>(Instr), Summary)
             .second) {
      Err = "leap profile: duplicate instruction id";
      return false;
    }
  }
  if (C.Pos != Bytes.size()) {
    Err = "leap profile: trailing bytes";
    return false;
  }
  return true;
}

bool LeapProfileData::mergeSequential(const LeapProfileData &Next,
                                      std::string &Err) {
  if (MaxLmads != Next.MaxLmads) {
    Err = "merge: descriptor caps differ (" + std::to_string(MaxLmads) +
          " vs " + std::to_string(Next.MaxLmads) + ")";
    return false;
  }
  // orp-lint: allow(unordered-serial): the fold is per-key, independent
  // of iteration order.
  for (const auto &[Key, Right] : Next.Substreams) {
    auto It = Substreams.find(Key);
    if (It == Substreams.end()) {
      Substreams.emplace(Key, Right);
      continue;
    }
    SubstreamData &Left = It->second;
    // Resume the left segment's compressor exactly where it stopped and
    // replay the right segment's captured prefix through it. Capture is
    // a strict stream prefix (discarding is sticky), so this reproduces
    // the unsplit compressor state bit for bit; the right segment's
    // dropped tail then folds in arithmetically.
    lmad::LmadCompressor Compressor = lmad::LmadCompressor::resume(
        /*Dims=*/3, MaxLmads, std::move(Left.Lmads), Left.TotalPoints,
        Left.Overflow, Left.FirstDiscard, Left.LastDiscard);
    for (const lmad::Lmad &L : Right.Lmads)
      for (uint64_t K = 0; K != L.Count; ++K)
        Compressor.addPoint(L.pointAt(K));
    Compressor.foldOverflowTail(Right.Overflow, Right.FirstDiscard,
                                Right.LastDiscard);
    Left.Lmads = Compressor.lmads();
    Left.Overflow = Compressor.overflow();
    Left.TotalPoints = Compressor.totalPoints();
    Left.FirstDiscard = Compressor.firstDiscard();
    Left.LastDiscard = Compressor.lastDiscard();
  }
  for (const auto &[Instr, Summary] : Next.Instrs) {
    InstrSummary &Mine = Instrs[Instr];
    Mine.ExecCount += Summary.ExecCount;
    Mine.StoreCount += Summary.StoreCount;
  }
  return true;
}

namespace {

/// Canonical total order over descriptors for the union merge: most
/// points first, ties broken lexicographically. Any fixed total order
/// keeps staged top-K folds associative; this one keeps the densest
/// patterns.
bool unionDescLess(const lmad::Lmad &A, const lmad::Lmad &B) {
  if (A.Count != B.Count)
    return A.Count > B.Count;
  if (A.Start != B.Start)
    return A.Start < B.Start;
  return A.Stride < B.Stride;
}

/// Folds a descriptor displaced from the capped union into the overflow
/// summary, the same way its points would summarize individually: the
/// point count adds, the two endpoints widen min/max, and the stride
/// magnitudes join the granularity gcd.
void foldDescriptorIntoOverflow(const lmad::Lmad &L,
                                lmad::OverflowSummary &O) {
  lmad::Point First = L.pointAt(0);
  lmad::Point Last = L.pointAt(L.Count - 1);
  if (O.Dropped == 0) {
    O.Min = First;
    O.Max = First;
  }
  for (unsigned D = 0; D != 3; ++D) {
    O.Min[D] = std::min({O.Min[D], First[D], Last[D]});
    O.Max[D] = std::max({O.Max[D], First[D], Last[D]});
    if (L.Count > 1) {
      uint64_t Mag = static_cast<uint64_t>(
          L.Stride[D] < 0 ? -static_cast<uint64_t>(L.Stride[D])
                          : static_cast<uint64_t>(L.Stride[D]));
      O.Granularity[D] = static_cast<int64_t>(
          std::gcd(static_cast<uint64_t>(O.Granularity[D]), Mag));
    }
  }
  O.Dropped += L.Count;
}

} // namespace

bool LeapProfileData::mergeUnion(const LeapProfileData &Other,
                                 std::string &Err) {
  if (MaxLmads != Other.MaxLmads) {
    Err = "merge: descriptor caps differ (" + std::to_string(MaxLmads) +
          " vs " + std::to_string(Other.MaxLmads) + ")";
    return false;
  }
  // orp-lint: allow(unordered-serial): the fold is per-key, independent
  // of iteration order.
  for (const auto &[Key, Theirs] : Other.Substreams) {
    auto It = Substreams.find(Key);
    if (It == Substreams.end()) {
      Substreams.emplace(Key, Theirs);
      continue;
    }
    SubstreamData &Mine = It->second;
    std::vector<lmad::Lmad> Union = std::move(Mine.Lmads);
    Union.insert(Union.end(), Theirs.Lmads.begin(), Theirs.Lmads.end());
    std::sort(Union.begin(), Union.end(), unionDescLess);

    lmad::OverflowSummary O;
    // Seed the summary fold with both inputs' overflow (min/max widen,
    // gcd of granularities, dropped counts add); all three operations
    // are associative and commutative.
    const lmad::OverflowSummary *Inputs[2] = {&Mine.Overflow,
                                              &Theirs.Overflow};
    for (const lmad::OverflowSummary *In : Inputs) {
      if (In->Dropped == 0)
        continue;
      if (O.Dropped == 0) {
        O = *In;
        continue;
      }
      for (unsigned D = 0; D != 3; ++D) {
        O.Min[D] = std::min(O.Min[D], In->Min[D]);
        O.Max[D] = std::max(O.Max[D], In->Max[D]);
        O.Granularity[D] = static_cast<int64_t>(
            std::gcd(static_cast<uint64_t>(O.Granularity[D]),
                     static_cast<uint64_t>(In->Granularity[D])));
      }
      O.Dropped += In->Dropped;
    }
    if (Union.size() > MaxLmads) {
      for (size_t I = MaxLmads; I != Union.size(); ++I)
        foldDescriptorIntoOverflow(Union[I], O);
      Union.resize(MaxLmads);
    }
    Mine.Lmads = std::move(Union);
    Mine.Overflow = O;
    Mine.TotalPoints += Theirs.TotalPoints;
    // Independent runs have no inter-segment ordering; pin the discard
    // endpoints to the summary extremes so the result is canonical.
    Mine.FirstDiscard = O.Min;
    Mine.LastDiscard = O.Max;
  }
  for (const auto &[Instr, Summary] : Other.Instrs) {
    InstrSummary &Mine = Instrs[Instr];
    Mine.ExecCount += Summary.ExecCount;
    Mine.StoreCount += Summary.StoreCount;
  }
  return true;
}
