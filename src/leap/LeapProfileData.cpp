//===- leap/LeapProfileData.cpp - Serializable LEAP profiles -------------===//

#include "leap/LeapProfileData.h"

#include "support/VarInt.h"

#include <algorithm>
#include <cassert>

using namespace orp;
using namespace orp::leap;

bool SubstreamData::operator==(const SubstreamData &O) const {
  if (TotalPoints != O.TotalPoints || Lmads.size() != O.Lmads.size())
    return false;
  for (size_t I = 0; I != Lmads.size(); ++I) {
    const lmad::Lmad &A = Lmads[I];
    const lmad::Lmad &B = O.Lmads[I];
    if (A.Dims != B.Dims || A.Count != B.Count || A.Start != B.Start ||
        A.Stride != B.Stride)
      return false;
  }
  return Overflow.Dropped == O.Overflow.Dropped &&
         Overflow.Min == O.Overflow.Min && Overflow.Max == O.Overflow.Max &&
         Overflow.Granularity == O.Overflow.Granularity;
}

bool LeapProfileData::operator==(const LeapProfileData &O) const {
  // The maps are unordered; compare by lookup, not by iteration order.
  if (Substreams.size() != O.Substreams.size() ||
      Instrs.size() != O.Instrs.size())
    return false;
  // orp-lint: allow(unordered-serial): order-independent comparison.
  for (const auto &[Instr, Summary] : Instrs) {
    auto It = O.Instrs.find(Instr);
    if (It == O.Instrs.end() ||
        It->second.ExecCount != Summary.ExecCount ||
        It->second.IsStore != Summary.IsStore)
      return false;
  }
  for (const auto &[Key, Sub] : Substreams) {
    auto It = O.Substreams.find(Key);
    if (It == O.Substreams.end() || !(It->second == Sub))
      return false;
  }
  return true;
}

LeapProfileData
LeapProfileData::fromProfiler(const LeapProfiler &Profiler) {
  LeapProfileData Data;
  Profiler.forEachSubstream([&](const core::VerticalKey &Key,
                                const lmad::LmadCompressor &Compressor) {
    SubstreamData Sub;
    Sub.Lmads = Compressor.lmads();
    Sub.Overflow = Compressor.overflow();
    Sub.TotalPoints = Compressor.totalPoints();
    Data.Substreams.emplace(Key, std::move(Sub));
  });
  for (const auto &[Instr, Summary] : Profiler.instructions())
    Data.Instrs.emplace(Instr, Summary);
  return Data;
}

std::vector<uint8_t> LeapProfileData::serialize() const {
  std::vector<uint8_t> Out;
  // Emit in sorted key order: the byte image must not depend on the
  // unordered containers' iteration order.
  std::vector<const std::pair<const core::VerticalKey, SubstreamData> *>
      SortedSubs;
  SortedSubs.reserve(Substreams.size());
  // orp-analyze: allow(unordered-serialize): feeds the sort below.
  for (const auto &Entry : Substreams)
    SortedSubs.push_back(&Entry);
  std::sort(SortedSubs.begin(), SortedSubs.end(),
            [](const auto *A, const auto *B) { return A->first < B->first; });

  encodeULEB128(Substreams.size(), Out);
  for (const auto *Entry : SortedSubs) {
    const core::VerticalKey &Key = Entry->first;
    const SubstreamData &Sub = Entry->second;
    encodeULEB128(Key.Instr, Out);
    encodeULEB128(Key.Group, Out);
    encodeULEB128(Sub.TotalPoints, Out);
    encodeULEB128(Sub.Lmads.size(), Out);
    for (const lmad::Lmad &L : Sub.Lmads) {
      for (unsigned D = 0; D != 3; ++D) {
        encodeSLEB128(L.Start[D], Out);
        encodeSLEB128(L.Stride[D], Out);
      }
      encodeULEB128(L.Count, Out);
    }
    Out.push_back(Sub.Overflow.Dropped != 0 ? 1 : 0);
    if (Sub.Overflow.Dropped != 0) {
      encodeULEB128(Sub.Overflow.Dropped, Out);
      for (unsigned D = 0; D != 3; ++D) {
        encodeSLEB128(Sub.Overflow.Min[D], Out);
        encodeSLEB128(Sub.Overflow.Max[D], Out);
        encodeSLEB128(Sub.Overflow.Granularity[D], Out);
      }
    }
  }
  std::vector<const std::pair<const trace::InstrId, InstrSummary> *>
      SortedInstrs;
  SortedInstrs.reserve(Instrs.size());
  // orp-lint: allow(unordered-serial): feeds the sort below.
  for (const auto &Entry : Instrs)
    SortedInstrs.push_back(&Entry);
  std::sort(SortedInstrs.begin(), SortedInstrs.end(),
            [](const auto *A, const auto *B) { return A->first < B->first; });

  encodeULEB128(Instrs.size(), Out);
  for (const auto *Entry : SortedInstrs) {
    encodeULEB128(Entry->first, Out);
    encodeULEB128(Entry->second.ExecCount, Out);
    Out.push_back(Entry->second.IsStore ? 1 : 0);
  }
  return Out;
}

LeapProfileData
LeapProfileData::deserialize(const std::vector<uint8_t> &Bytes) {
  LeapProfileData Data;
  size_t Pos = 0;
  uint64_t NumSubs = decodeULEB128(Bytes, Pos);
  for (uint64_t S = 0; S != NumSubs; ++S) {
    core::VerticalKey Key;
    Key.Instr = static_cast<trace::InstrId>(decodeULEB128(Bytes, Pos));
    Key.Group = static_cast<omc::GroupId>(decodeULEB128(Bytes, Pos));
    SubstreamData Sub;
    Sub.TotalPoints = decodeULEB128(Bytes, Pos);
    uint64_t NumLmads = decodeULEB128(Bytes, Pos);
    Sub.Lmads.reserve(NumLmads);
    for (uint64_t L = 0; L != NumLmads; ++L) {
      lmad::Lmad M;
      M.Dims = 3;
      for (unsigned D = 0; D != 3; ++D) {
        M.Start[D] = decodeSLEB128(Bytes, Pos);
        M.Stride[D] = decodeSLEB128(Bytes, Pos);
      }
      M.Count = decodeULEB128(Bytes, Pos);
      Sub.Lmads.push_back(M);
    }
    assert(Pos < Bytes.size() && "truncated profile");
    bool HasOverflow = Bytes[Pos++] != 0;
    if (HasOverflow) {
      Sub.Overflow.Dropped = decodeULEB128(Bytes, Pos);
      for (unsigned D = 0; D != 3; ++D) {
        Sub.Overflow.Min[D] = decodeSLEB128(Bytes, Pos);
        Sub.Overflow.Max[D] = decodeSLEB128(Bytes, Pos);
        Sub.Overflow.Granularity[D] = decodeSLEB128(Bytes, Pos);
      }
    }
    Data.Substreams.emplace(Key, std::move(Sub));
  }
  uint64_t NumInstrs = decodeULEB128(Bytes, Pos);
  for (uint64_t I = 0; I != NumInstrs; ++I) {
    trace::InstrId Instr =
        static_cast<trace::InstrId>(decodeULEB128(Bytes, Pos));
    InstrSummary Summary;
    Summary.ExecCount = decodeULEB128(Bytes, Pos);
    assert(Pos < Bytes.size() && "truncated profile");
    Summary.IsStore = Bytes[Pos++] != 0;
    Data.Instrs.emplace(Instr, Summary);
  }
  assert(Pos == Bytes.size() && "trailing bytes in profile");
  return Data;
}
