//===- leap/Leap.h - Loss-enhanced access profiler -------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LEAP, the paper's lossy profiler (Section 4): "the SCC decomposes the
/// stream vertically by instruction id and then by group to get a number
/// of (object, offset, time) streams. These streams are then sent to a
/// linear compressor" with a bounded number of LMADs ("we chose a
/// maximum of 30 LMADs for a given (instruction-id, group) pair").
/// Overflowing streams degrade to an initial-part sample plus min/max/
/// granularity summary, which is what makes the profiler lossy.
///
/// The profile is "indexed by load and store instructions": per
/// instruction, LEAP also keeps exact execution counts (needed as the
/// denominator of the paper's memory dependence frequency).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_LEAP_LEAP_H
#define ORP_LEAP_LEAP_H

#include "core/Decomposition.h"
#include "core/ObjectRelative.h"
#include "lmad/LmadCompressor.h"
#include "telemetry/Registry.h"

#include <cstdint>
#include <functional>
#include <unordered_map>

namespace orp {
namespace leap {

/// One (instruction, group) substream: a 3-dimensional LMAD compressor
/// over (object, offset, time) points.
class LeapSubstream : public core::SubstreamConsumer {
public:
  explicit LeapSubstream(unsigned MaxLmads)
      : Compressor(/*Dims=*/3, MaxLmads) {}

  void append(const core::OrTuple &Tuple) override {
    Compressor.addPoint(lmad::Point{
        static_cast<int64_t>(Tuple.Object),
        static_cast<int64_t>(Tuple.Offset),
        static_cast<int64_t>(Tuple.Time)});
  }

  /// Returns the LMAD set of this substream.
  const lmad::LmadCompressor &compressor() const { return Compressor; }

private:
  lmad::LmadCompressor Compressor;
};

/// Dimension indices of the (object, offset, time) points LEAP stores.
enum LeapDim : unsigned { DimObject = 0, DimOffset = 1, DimTime = 2 };

/// Per-instruction aggregate kept alongside the LMAD sets. Loads and
/// stores are counted separately: an instruction that issues both (for
/// example a read-modify-write probe site) keeps both tallies, instead
/// of the kind of whichever access happened to arrive last. Both
/// counters fold by addition when profiles are merged.
struct InstrSummary {
  uint64_t ExecCount = 0;  ///< Accesses executed (profiled stream only).
  uint64_t StoreCount = 0; ///< Of those, how many were stores.

  /// An instruction is classified as a store if it ever stored.
  bool isStore() const { return StoreCount != 0; }
};

/// The LEAP profiler: attach as an OrTupleConsumer to a Cdc.
class LeapProfiler : public core::OrTupleConsumer {
public:
  /// With \p Threads > 1, the (instruction, group) substreams are
  /// sharded by hash across that many worker threads (DESIGN.md
  /// section 10); the profile is identical either way. The accessors
  /// below must not be called before finish() in threaded mode.
  explicit LeapProfiler(
      unsigned MaxLmads = lmad::LmadCompressor::DefaultMaxLmads,
      unsigned Threads = 1);

  void consume(const core::OrTuple &Tuple) override;
  void finish() override { Decomposer.finish(); }

  /// Returns the number of tuples profiled.
  uint64_t tuplesSeen() const { return Tuples; }

  /// Returns the per-substream descriptor cap this profiler runs with.
  unsigned maxLmads() const { return MaxLmads; }

  /// Returns per-instruction aggregates (instructions that executed).
  const std::unordered_map<trace::InstrId, InstrSummary> &
  instructions() const {
    return Instrs;
  }

  /// Iterates all (instruction, group) LMAD sets in key order.
  void forEachSubstream(
      const std::function<void(const core::VerticalKey &,
                               const lmad::LmadCompressor &)> &Fn) const;

  /// Returns the LMAD set for \p Key, or nullptr.
  const lmad::LmadCompressor *lookup(const core::VerticalKey &Key) const;

  /// Serialized size of the whole profile: substream keys, LMAD sets,
  /// overflow summaries and instruction counters. Numerator-denominator
  /// of Table 1's compression ratio.
  size_t serializedSizeBytes() const;

  /// Percentage of all profiled accesses represented inside LMADs
  /// (Table 1, "Accesses captured").
  double accessesCapturedPercent() const;

  /// Percentage of instructions whose every substream was fully captured
  /// (Table 1, "Instructions captured").
  double instructionsCapturedPercent() const;

private:
  unsigned MaxLmads;
  core::VerticalDecomposer Decomposer;
  std::unordered_map<trace::InstrId, InstrSummary> Instrs;
  uint64_t Tuples = 0;
  /// Publishes tuple/substream/instruction counts (substreams only once
  /// this thread owns them — serial mode or after finish()) and shard-
  /// worker queue counters into leap.* gauges at snapshot time.
  telemetry::CollectorHandle Collector;
};

} // namespace leap
} // namespace orp

#endif // ORP_LEAP_LEAP_H
