//===- workloads/VprA.cpp - 175.vpr analogue -----------------------------===//
//
// FPGA place-and-route analogue (placement phase). Memory behavior
// class: cell objects moved by simulated annealing, a static occupancy
// grid with scattered update stores, and net objects whose inline pin
// arrays are walked to evaluate bounding-box cost — a mix of short
// strided runs (pin arrays) and data-dependent cell dereferences.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"

#include <vector>

using namespace orp;
using namespace orp::workloads;
using trace::AccessKind;

namespace {

constexpr uint64_t CellSize = 48;
constexpr uint64_t CellXOff = 0;
constexpr uint64_t CellYOff = 8;
constexpr uint64_t CellNetAOff = 16;
constexpr uint64_t CellNetBOff = 24;
constexpr uint64_t CellCostOff = 32;
constexpr uint64_t NetHeader = 16; ///< Pin count + bbox cache.
constexpr uint64_t PinSize = 8;

class VprA final : public Workload {
public:
  const char *name() const override { return "175.vpr-a"; }

  uint64_t run(trace::MemoryInterface &M, trace::InstructionRegistry &R,
               const WorkloadConfig &C) override {
    trace::InstrId StCellInitX = R.addInstruction("vpr:init cell->x",
                                                  AccessKind::Store);
    trace::InstrId StCellInitY = R.addInstruction("vpr:init cell->y",
                                                  AccessKind::Store);
    trace::InstrId StNetInit = R.addInstruction("vpr:init net pin",
                                                AccessKind::Store);
    trace::InstrId LdCellX = R.addInstruction("vpr:load cell->x",
                                              AccessKind::Load);
    trace::InstrId LdCellY = R.addInstruction("vpr:load cell->y",
                                              AccessKind::Load);
    trace::InstrId LdCellNet = R.addInstruction("vpr:load cell->net",
                                                AccessKind::Load);
    trace::InstrId LdNetPins = R.addInstruction("vpr:load net->npins",
                                                AccessKind::Load);
    trace::InstrId LdPin = R.addInstruction("vpr:load net->pin[k]",
                                            AccessKind::Load);
    trace::InstrId LdPinX = R.addInstruction("vpr:load pincell->x",
                                             AccessKind::Load);
    trace::InstrId LdPinY = R.addInstruction("vpr:load pincell->y",
                                             AccessKind::Load);
    trace::InstrId LdGrid = R.addInstruction("vpr:load grid[x][y]",
                                             AccessKind::Load);
    trace::InstrId StGridClear = R.addInstruction("vpr:clear grid[x][y]",
                                                  AccessKind::Store);
    trace::InstrId StGridSet = R.addInstruction("vpr:set grid[x][y]",
                                                AccessKind::Store);
    trace::InstrId StCellX = R.addInstruction("vpr:store cell->x",
                                              AccessKind::Store);
    trace::InstrId StCellY = R.addInstruction("vpr:store cell->y",
                                              AccessKind::Store);
    trace::InstrId LdSweepX = R.addInstruction("vpr:cache load cell->x",
                                               AccessKind::Load);
    trace::InstrId LdSweepY = R.addInstruction("vpr:cache load cell->y",
                                               AccessKind::Load);
    trace::InstrId StCellCost = R.addInstruction("vpr:store cell->cost",
                                                 AccessKind::Store);
    trace::InstrId LdCellCost = R.addInstruction("vpr:load cell->cost",
                                                 AccessKind::Load);
    trace::InstrId StNetBbox = R.addInstruction("vpr:store net->bbox",
                                                AccessKind::Store);
    trace::InstrId LdNetBbox = R.addInstruction("vpr:load net->bbox",
                                                AccessKind::Load);

    trace::AllocSiteId CellSite = R.addAllocSite("vpr:new cell",
                                                 "struct cell");
    trace::AllocSiteId NetSite = R.addAllocSite("vpr:new net",
                                                "struct net");
    trace::AllocSiteId GridSite = R.addAllocSite("vpr:grid",
                                                 "int32_t[32][32]");

    const uint64_t GridDim = 32;
    const uint64_t NumCells = 600;
    const uint64_t NumNets = 400;
    const uint64_t Moves = 11000 * C.Scale;

    Rng Gen(C.Seed * 0x1bd7 + 17);

    // Real placement state.
    std::vector<int64_t> X(NumCells), Y(NumCells);
    std::vector<uint32_t> NetA(NumCells), NetB(NumCells);
    std::vector<std::vector<uint32_t>> NetPins(NumNets);
    std::vector<int32_t> Grid(GridDim * GridDim, -1);

    uint64_t GridAddr = M.staticAlloc(GridSite, GridDim * GridDim * 8, 16);

    std::vector<uint64_t> CellAddr(NumCells), NetAddr(NumNets);
    for (uint64_t N = 0; N != NumNets; ++N) {
      uint64_t Pins = 3 + Gen.nextBelow(6);
      NetAddr[N] = M.heapAlloc(NetSite, NetHeader + Pins * PinSize, 16);
      NetPins[N].resize(Pins);
    }
    // Initial placement: a shuffled slot list gives each cell a free
    // slot without a rejection loop (straight-line init body).
    std::vector<uint64_t> Slots(GridDim * GridDim);
    for (uint64_t I = 0; I != Slots.size(); ++I)
      Slots[I] = I;
    Gen.shuffle(Slots);
    // Like the real vpr, the block (cell) array is one malloc'd block.
    uint64_t CellBase = M.heapAlloc(CellSite, NumCells * CellSize, 16);
    for (uint64_t Cell = 0; Cell != NumCells; ++Cell) {
      CellAddr[Cell] = CellBase + Cell * CellSize;
      uint64_t Slot = Slots[Cell];
      Grid[Slot] = static_cast<int32_t>(Cell);
      X[Cell] = static_cast<int64_t>(Slot % GridDim);
      Y[Cell] = static_cast<int64_t>(Slot / GridDim);
      NetA[Cell] = static_cast<uint32_t>(Gen.nextBelow(NumNets));
      NetB[Cell] = static_cast<uint32_t>(Gen.nextBelow(NumNets));
      M.store(StCellInitX, CellAddr[Cell] + CellXOff, 8);
      M.store(StCellInitY, CellAddr[Cell] + CellYOff, 8);
      NetPins[NetA[Cell]][Gen.nextBelow(NetPins[NetA[Cell]].size())] =
          static_cast<uint32_t>(Cell);
      NetPins[NetB[Cell]][Gen.nextBelow(NetPins[NetB[Cell]].size())] =
          static_cast<uint32_t>(Cell);
    }
    for (uint64_t N = 0; N != NumNets; ++N)
      for (uint64_t K = 0; K != NetPins[N].size(); ++K)
        M.store(StNetInit, NetAddr[N] + NetHeader + K * PinSize, 8);

    // Bounding-box cost of one net, probing every pin's cell.
    auto NetCost = [&](uint32_t Net) {
      int64_t MinX = GridDim, MaxX = 0, MinY = GridDim, MaxY = 0;
      M.load(LdNetPins, NetAddr[Net], 8);
      for (uint64_t K = 0; K != NetPins[Net].size(); ++K) {
        uint32_t Pin = NetPins[Net][K];
        M.load(LdPin, NetAddr[Net] + NetHeader + K * PinSize, 8);
        int64_t Px = X[Pin];
        M.load(LdPinX, CellAddr[Pin] + CellXOff, 8);
        int64_t Py = Y[Pin];
        M.load(LdPinY, CellAddr[Pin] + CellYOff, 8);
        MinX = Px < MinX ? Px : MinX;
        MaxX = Px > MaxX ? Px : MaxX;
        MinY = Py < MinY ? Py : MinY;
        MaxY = Py > MaxY ? Py : MaxY;
      }
      return (MaxX - MinX) + (MaxY - MinY);
    };

    // Annealing moves.
    uint64_t Checksum = 0;
    std::vector<int64_t> Cost(NumCells, 0);
    for (uint64_t Move = 0; Move != Moves; ++Move) {
      // Periodic cost-cache refresh: recompute each cell's cached cost
      // from its position (regular producer sweep), then accumulate the
      // total placement cost (regular consumer sweep) — the cadence a
      // real annealer uses to re-normalize its temperature schedule.
      if (Move % 2048 == 0) {
        // Refresh the per-net bounding-box cache: compute (variable
        // work), then write and re-read the caches in straight-line
        // sweeps, as vpr's recompute_bb_cost does.
        std::vector<int64_t> Bbox(NumNets);
        for (uint64_t N = 0; N != NumNets; ++N)
          Bbox[N] = NetCost(static_cast<uint32_t>(N));
        for (uint64_t N = 0; N != NumNets; ++N)
          M.store(StNetBbox, NetAddr[N] + 8, 8);
        int64_t BboxTotal = 0;
        for (uint64_t N = 0; N != NumNets; ++N) {
          BboxTotal += Bbox[N];
          M.load(LdNetBbox, NetAddr[N] + 8, 8);
        }
        Checksum += static_cast<uint64_t>(BboxTotal);
        for (uint64_t Cl = 0; Cl != NumCells; ++Cl) {
          int64_t Px = X[Cl];
          M.load(LdSweepX, CellAddr[Cl] + CellXOff, 8);
          int64_t Py = Y[Cl];
          M.load(LdSweepY, CellAddr[Cl] + CellYOff, 8);
          Cost[Cl] = Px + Py * 2;
          M.store(StCellCost, CellAddr[Cl] + CellCostOff, 8);
        }
        int64_t Total = 0;
        for (uint64_t Cl = 0; Cl != NumCells; ++Cl) {
          Total += Cost[Cl];
          M.load(LdCellCost, CellAddr[Cl] + CellCostOff, 8);
        }
        Checksum += static_cast<uint64_t>(Total);
      }
      uint32_t Cell = static_cast<uint32_t>(Gen.nextBelow(NumCells));
      int64_t OldX = X[Cell];
      M.load(LdCellX, CellAddr[Cell] + CellXOff, 8);
      int64_t OldY = Y[Cell];
      M.load(LdCellY, CellAddr[Cell] + CellYOff, 8);
      uint64_t NewSlot = Gen.nextBelow(GridDim * GridDim);
      int32_t Occupant = Grid[NewSlot];
      M.load(LdGrid, GridAddr + NewSlot * 8, 8);
      if (Occupant >= 0)
        continue; // Occupied; reject cheaply.

      uint32_t NA = NetA[Cell];
      M.load(LdCellNet, CellAddr[Cell] + CellNetAOff, 8);
      uint32_t NB = NetB[Cell];
      M.load(LdCellNet, CellAddr[Cell] + CellNetBOff, 8);
      int64_t Before = NetCost(NA) + NetCost(NB);

      // Tentatively move.
      int64_t NewX = static_cast<int64_t>(NewSlot % GridDim);
      int64_t NewY = static_cast<int64_t>(NewSlot / GridDim);
      X[Cell] = NewX;
      Y[Cell] = NewY;
      int64_t After = NetCost(NA) + NetCost(NB);

      bool Accept = After <= Before || Gen.nextBool(0.15);
      if (Accept) {
        Grid[static_cast<uint64_t>(OldY) * GridDim + OldX] = -1;
        M.store(StGridClear,
                GridAddr + (static_cast<uint64_t>(OldY) * GridDim + OldX) *
                               8,
                8);
        Grid[NewSlot] = static_cast<int32_t>(Cell);
        M.store(StGridSet, GridAddr + NewSlot * 8, 8);
        M.store(StCellX, CellAddr[Cell] + CellXOff, 8);
        M.store(StCellY, CellAddr[Cell] + CellYOff, 8);
        Checksum += static_cast<uint64_t>(After);
      } else {
        X[Cell] = OldX;
        Y[Cell] = OldY;
      }
    }

    M.heapFree(CellBase);
    for (uint64_t N = 0; N != NumNets; ++N)
      M.heapFree(NetAddr[N]);
    return Checksum;
  }
};

} // namespace

std::unique_ptr<Workload> orp::workloads::createVprA() {
  return std::make_unique<VprA>();
}
