//===- workloads/CraftyA.cpp - 186.crafty analogue -----------------------===//
//
// Chess-engine analogue. Memory behavior class: a small, hot static
// board array hammered by make/unmake stores and evaluation loads
// (high-frequency read-after-write within a tiny footprint), a large
// transposition table probed at hash-random indices with occasional
// replacement stores, and a mid-size history table with load-modify-
// store updates.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"

#include <vector>

using namespace orp;
using namespace orp::workloads;
using trace::AccessKind;

namespace {

class CraftyA final : public Workload {
public:
  const char *name() const override { return "186.crafty-a"; }

  uint64_t run(trace::MemoryInterface &M, trace::InstructionRegistry &R,
               const WorkloadConfig &C) override {
    trace::InstrId StBoardInit = R.addInstruction("crafty:init board[sq]",
                                                  AccessKind::Store);
    trace::InstrId LdBoardFrom = R.addInstruction("crafty:load board[from]",
                                                  AccessKind::Load);
    trace::InstrId LdBoardTo = R.addInstruction("crafty:load board[to]",
                                                AccessKind::Load);
    trace::InstrId StBoardMakeTo = R.addInstruction(
        "crafty:make board[to]", AccessKind::Store);
    trace::InstrId StBoardMakeFrom = R.addInstruction(
        "crafty:make board[from]", AccessKind::Store);
    trace::InstrId StBoardUnmakeFrom = R.addInstruction(
        "crafty:unmake board[from]", AccessKind::Store);
    trace::InstrId StBoardUnmakeTo = R.addInstruction(
        "crafty:unmake board[to]", AccessKind::Store);
    trace::InstrId LdEval = R.addInstruction("crafty:eval load board[sq]",
                                             AccessKind::Load);
    trace::InstrId LdTt = R.addInstruction("crafty:probe tt[h]",
                                           AccessKind::Load);
    trace::InstrId StTt = R.addInstruction("crafty:store tt[h]",
                                           AccessKind::Store);
    trace::InstrId LdHist = R.addInstruction("crafty:load history[m]",
                                             AccessKind::Load);
    trace::InstrId StHist = R.addInstruction("crafty:store history[m]",
                                             AccessKind::Store);
    trace::InstrId LdHistDecay = R.addInstruction(
        "crafty:decay load history[m]", AccessKind::Load);
    trace::InstrId StHistDecay = R.addInstruction(
        "crafty:decay store history[m]", AccessKind::Store);
    trace::InstrId StZobInit = R.addInstruction("crafty:init zobrist[i]",
                                                AccessKind::Store);
    trace::InstrId LdZob = R.addInstruction("crafty:load zobrist[p][sq]",
                                            AccessKind::Load);
    trace::InstrId StPsqInit = R.addInstruction("crafty:init psq[i]",
                                                AccessKind::Store);
    trace::InstrId LdPsq = R.addInstruction("crafty:load psq[p][sq]",
                                            AccessKind::Load);

    trace::AllocSiteId BoardSite = R.addAllocSite("crafty:board",
                                                  "int64_t[64]");
    trace::AllocSiteId TtSite = R.addAllocSite("crafty:transposition",
                                               "tt_entry[]");
    trace::AllocSiteId HistSite = R.addAllocSite("crafty:history",
                                                 "int32_t[]");
    trace::AllocSiteId ZobSite = R.addAllocSite("crafty:zobrist",
                                                "uint64_t[13*64]");
    trace::AllocSiteId PsqSite = R.addAllocSite("crafty:piece-square",
                                                "int32_t[13*64]");

    const uint64_t TtEntries = 32768;
    const uint64_t HistEntries = 4096;
    const uint64_t Searches = 6000 * C.Scale;

    Rng Gen(C.Seed * 0xc4af + 11);

    std::vector<int64_t> Board(64);
    std::vector<uint64_t> Tt(TtEntries, 0);
    std::vector<int32_t> Hist(HistEntries, 0);

    uint64_t BoardAddr = M.staticAlloc(BoardSite, 64 * 8, 16);
    uint64_t TtAddr = M.staticAlloc(TtSite, TtEntries * 16, 16);
    uint64_t HistAddr = M.staticAlloc(HistSite, HistEntries * 4, 16);
    uint64_t ZobAddr = M.staticAlloc(ZobSite, 13 * 64 * 8, 16);
    std::vector<uint64_t> Zob(13 * 64);
    for (uint64_t I = 0; I != Zob.size(); ++I) {
      Zob[I] = Gen.next();
      M.store(StZobInit, ZobAddr + I * 8, 8);
    }
    uint64_t PsqAddr = M.staticAlloc(PsqSite, 13 * 64 * 4, 16);
    std::vector<int32_t> Psq(13 * 64);
    for (uint64_t I = 0; I != Psq.size(); ++I) {
      Psq[I] = static_cast<int32_t>((I % 64) & 7) - 3;
      M.store(StPsqInit, PsqAddr + I * 4, 4);
    }

    for (unsigned Sq = 0; Sq != 64; ++Sq) {
      Board[Sq] = static_cast<int64_t>(Gen.nextBelow(13));
      M.store(StBoardInit, BoardAddr + Sq * 8, 8);
    }

    uint64_t Checksum = 0;
    uint64_t PosHash = C.Seed * 0x2545f4914f6cdd1dULL;
    for (uint64_t Search = 0; Search != Searches; ++Search) {
      // Periodic history decay (crafty halves its history counters at
      // regular intervals): a regular load-modify-store sweep.
      if (Search % 1024 == 0) {
        for (uint64_t I = 0; I != HistEntries; ++I) {
          int32_t H = Hist[I];
          M.load(LdHistDecay, HistAddr + I * 4, 4);
          Hist[I] = H / 2;
          M.store(StHistDecay, HistAddr + I * 4, 4);
        }
      }
      unsigned From = static_cast<unsigned>(Gen.nextBelow(64));
      unsigned To = static_cast<unsigned>(Gen.nextBelow(64));
      int64_t Piece = Board[From];
      M.load(LdBoardFrom, BoardAddr + From * 8, 8);
      int64_t Captured = Board[To];
      M.load(LdBoardTo, BoardAddr + To * 8, 8);

      // Make the move.
      Board[To] = Piece;
      M.store(StBoardMakeTo, BoardAddr + To * 8, 8);
      Board[From] = 0;
      M.store(StBoardMakeFrom, BoardAddr + From * 8, 8);
      uint64_t ZobSlot = static_cast<uint64_t>(Piece) * 64 + To;
      PosHash ^= Zob[ZobSlot];
      M.load(LdZob, ZobAddr + ZobSlot * 8, 8);
      Checksum += static_cast<uint64_t>(
          static_cast<int64_t>(Psq[ZobSlot]) & 0xf);
      M.load(LdPsq, PsqAddr + ZobSlot * 4, 4);

      // Transposition probe.
      uint64_t Slot = PosHash % TtEntries;
      uint64_t Entry = Tt[Slot];
      M.load(LdTt, TtAddr + Slot * 16, 8);
      int64_t Score;
      if (Entry >> 16 == PosHash >> 16) {
        Score = static_cast<int64_t>(Entry & 0xffff) - 32768;
        Checksum += 1; // TT hit.
      } else {
        // Evaluate: strided sweep of the whole board.
        Score = 0;
        for (unsigned Sq = 0; Sq != 64; ++Sq) {
          Score += Board[Sq] * ((Sq & 7) - 3);
          M.load(LdEval, BoardAddr + Sq * 8, 8);
        }
        Tt[Slot] = (PosHash & ~0xffffULL) |
                   static_cast<uint64_t>((Score + 32768) & 0xffff);
        M.store(StTt, TtAddr + Slot * 16, 8);
      }

      // History heuristic update (load-modify-store).
      uint64_t HistIdx = (static_cast<uint64_t>(From) * 64 + To) %
                         HistEntries;
      int32_t H = Hist[HistIdx];
      M.load(LdHist, HistAddr + HistIdx * 4, 4);
      Hist[HistIdx] = H + static_cast<int32_t>(Score & 7) - 3;
      M.store(StHist, HistAddr + HistIdx * 4, 4);

      // Unmake the move (restores the position most of the time).
      if (Score < 0 || (Search & 3) != 0) {
        Board[From] = Piece;
        M.store(StBoardUnmakeFrom, BoardAddr + From * 8, 8);
        Board[To] = Captured;
        M.store(StBoardUnmakeTo, BoardAddr + To * 8, 8);
        PosHash = PosHash * 0x9e3779b97f4a7c15ULL + 1;
      }
      Checksum += static_cast<uint64_t>(Score & 0xff);
    }

    return Checksum;
  }
};

} // namespace

std::unique_ptr<Workload> orp::workloads::createCraftyA() {
  return std::make_unique<CraftyA>();
}
