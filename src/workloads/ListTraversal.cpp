//===- workloads/ListTraversal.cpp - Figures 1-3 micro-workload ----------===//
//
// The paper's running example: a linked list is built (with interleaved
// unrelated allocations so its nodes are scattered through the heap the
// way Figure 1 shows), then repeatedly traversed and updated. Two
// instructions dominate: the data-field load (offset 0) and the
// next-pointer load (offset 8) — apparently structureless in the raw
// address stream, perfectly regular object-relatively (Figure 3).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"

#include <vector>

using namespace orp;
using namespace orp::workloads;
using trace::AccessKind;

namespace {

constexpr uint64_t NodeSize = 24;
constexpr uint64_t DataOff = 0;
constexpr uint64_t NextOff = 8;

class ListTraversal final : public Workload {
public:
  const char *name() const override { return "list-traversal"; }

  uint64_t run(trace::MemoryInterface &M, trace::InstructionRegistry &R,
               const WorkloadConfig &C) override {
    trace::InstrId StInitData = R.addInstruction("list:init node->data",
                                                 AccessKind::Store);
    trace::InstrId StInitNext = R.addInstruction("list:init node->next",
                                                 AccessKind::Store);
    trace::InstrId LdData = R.addInstruction("list:load node->data",
                                             AccessKind::Load);
    trace::InstrId LdNext = R.addInstruction("list:load node->next",
                                             AccessKind::Load);
    trace::InstrId StData = R.addInstruction("list:store node->data",
                                             AccessKind::Store);

    trace::AllocSiteId NodeSite = R.addAllocSite("list:new node",
                                                 "struct node");
    trace::AllocSiteId NoiseSite = R.addAllocSite("list:noise alloc",
                                                  "char[]");

    const uint64_t Nodes = 64 * C.Scale;
    const unsigned Traversals = 80;

    Rng Gen(C.Seed * 0x115f + 29);

    std::vector<uint64_t> NodeAddr(Nodes);
    std::vector<int64_t> Data(Nodes);
    std::vector<uint64_t> Noise;
    for (uint64_t N = 0; N != Nodes; ++N) {
      NodeAddr[N] = M.heapAlloc(NodeSite, NodeSize, 16);
      Data[N] = static_cast<int64_t>(Gen.nextBelow(1000));
      M.store(StInitData, NodeAddr[N] + DataOff, 8);
      if (N > 0)
        M.store(StInitNext, NodeAddr[N - 1] + NextOff, 8);
      // Interleave unrelated allocations (and free some) so that list
      // nodes do not sit contiguously in the raw heap.
      if (Gen.nextBool(0.6)) {
        Noise.push_back(M.heapAlloc(NoiseSite, 8 + Gen.nextBelow(80), 16));
        if (Noise.size() > 4 && Gen.nextBool(0.5)) {
          uint64_t Victim = Gen.nextBelow(Noise.size());
          M.heapFree(Noise[Victim]);
          Noise[Victim] = Noise.back();
          Noise.pop_back();
        }
      }
    }

    // Traverse and update: while(node) { use(node->data); node=node->next }
    uint64_t Checksum = 0;
    for (unsigned T = 0; T != Traversals; ++T) {
      for (uint64_t N = 0; N != Nodes; ++N) {
        Checksum += static_cast<uint64_t>(Data[N]);
        M.load(LdData, NodeAddr[N] + DataOff, 8);
        M.load(LdNext, NodeAddr[N] + NextOff, 8);
        if ((Data[N] & 7) == static_cast<int64_t>(T & 7)) {
          Data[N] += 3;
          M.store(StData, NodeAddr[N] + DataOff, 8);
        }
      }
    }

    for (uint64_t Addr : Noise)
      M.heapFree(Addr);
    for (uint64_t N = 0; N != Nodes; ++N)
      M.heapFree(NodeAddr[N]);
    return Checksum;
  }
};

} // namespace

std::unique_ptr<Workload> orp::workloads::createListTraversal() {
  return std::make_unique<ListTraversal>();
}
