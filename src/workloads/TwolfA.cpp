//===- workloads/TwolfA.cpp - 300.twolf analogue -------------------------===//
//
// Standard-cell place/route analogue. Memory behavior class: cells kept
// in doubly-linked per-row lists; annealing moves unlink a cell,
// pointer-walk the destination row to an ordered insertion point, and
// relink — producing the dense pointer-field read-after-write traffic
// and heap-order-dependent traversals twolf is known for.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"

#include <vector>

using namespace orp;
using namespace orp::workloads;
using trace::AccessKind;

namespace {

constexpr uint64_t CellSize = 64;
constexpr uint64_t CellXOff = 0;
constexpr uint64_t CellWidthOff = 8;
constexpr uint64_t CellPrevOff = 16;
constexpr uint64_t CellNextOff = 24;
constexpr uint64_t CellRowOff = 32;

class TwolfA final : public Workload {
public:
  const char *name() const override { return "300.twolf-a"; }

  uint64_t run(trace::MemoryInterface &M, trace::InstructionRegistry &R,
               const WorkloadConfig &C) override {
    trace::InstrId StCellInitX = R.addInstruction("twolf:init cell->x",
                                                  AccessKind::Store);
    trace::InstrId StCellInitW = R.addInstruction(
        "twolf:init cell->width", AccessKind::Store);
    trace::InstrId LdPrev = R.addInstruction("twolf:load cell->prev",
                                             AccessKind::Load);
    trace::InstrId LdNext = R.addInstruction("twolf:load cell->next",
                                             AccessKind::Load);
    trace::InstrId StPrev = R.addInstruction("twolf:store cell->prev",
                                             AccessKind::Store);
    trace::InstrId StNext = R.addInstruction("twolf:store cell->next",
                                             AccessKind::Store);
    trace::InstrId LdRowHead = R.addInstruction("twolf:load rowhead[r]",
                                                AccessKind::Load);
    trace::InstrId StRowHead = R.addInstruction("twolf:store rowhead[r]",
                                                AccessKind::Store);
    trace::InstrId LdWalkNext = R.addInstruction("twolf:walk cell->next",
                                                 AccessKind::Load);
    trace::InstrId LdWalkX = R.addInstruction("twolf:walk cell->x",
                                              AccessKind::Load);
    trace::InstrId StCellX = R.addInstruction("twolf:store cell->x",
                                              AccessKind::Store);
    trace::InstrId StCellRow = R.addInstruction("twolf:store cell->row",
                                                AccessKind::Store);
    trace::InstrId LdCostX = R.addInstruction("twolf:cost load cell->x",
                                              AccessKind::Load);
    trace::InstrId LdCostW = R.addInstruction(
        "twolf:cost load cell->width", AccessKind::Load);
    trace::InstrId LdSnapX = R.addInstruction("twolf:snapshot load x",
                                              AccessKind::Load);
    trace::InstrId StSnap = R.addInstruction("twolf:store snapshot[i]",
                                             AccessKind::Store);
    trace::InstrId LdSnap = R.addInstruction("twolf:load snapshot[i]",
                                             AccessKind::Load);
    trace::InstrId StWlInit = R.addInstruction("twolf:init wltab[i]",
                                               AccessKind::Store);
    trace::InstrId LdWl = R.addInstruction("twolf:load wltab[x]",
                                           AccessKind::Load);

    trace::AllocSiteId CellSite = R.addAllocSite("twolf:new cell",
                                                 "struct cell");
    trace::AllocSiteId RowSite = R.addAllocSite("twolf:rowhead",
                                                "int32_t[]");
    trace::AllocSiteId SnapSite = R.addAllocSite("twolf:best placement",
                                                 "int64_t[]");
    trace::AllocSiteId WlSite = R.addAllocSite("twolf:wirelength table",
                                               "int32_t[]");

    const uint64_t NumRows = 16;
    const uint64_t NumCells = 512;
    const uint64_t Moves = 4200 * C.Scale;

    Rng Gen(C.Seed * 0x2f01 + 23);

    // Index-based real state; -1 is the null link.
    std::vector<int32_t> Prev(NumCells, -1), Next(NumCells, -1);
    std::vector<int32_t> Row(NumCells, -1);
    std::vector<int64_t> X(NumCells), Width(NumCells);
    std::vector<int32_t> RowHead(NumRows, -1);

    uint64_t RowHeadAddr = M.staticAlloc(RowSite, NumRows * 8, 16);
    uint64_t SnapAddr = M.staticAlloc(SnapSite, NumCells * 8, 16);
    std::vector<int64_t> Snapshot(NumCells, 0);
    // Wirelength penalty table (twolf precomputes such tables).
    const uint64_t WlEntries = 1024;
    uint64_t WlAddr = M.staticAlloc(WlSite, WlEntries * 4, 16);
    std::vector<int32_t> Wl(WlEntries);
    for (uint64_t I = 0; I != WlEntries; ++I) {
      Wl[I] = static_cast<int32_t>(I * 3 + (I >> 4));
      M.store(StWlInit, WlAddr + I * 4, 4);
    }
    std::vector<uint64_t> CellAddr(NumCells);

    // Build rows: cells inserted in random order, kept x-sorted.
    auto InsertSorted = [&](uint32_t Cell, uint32_t R2) {
      int32_t Cur = RowHead[R2];
      M.load(LdRowHead, RowHeadAddr + R2 * 8, 8);
      int32_t Last = -1;
      unsigned WalkCap = 64;
      while (Cur >= 0 && WalkCap-- != 0) {
        int64_t CurX = X[Cur];
        M.load(LdWalkX, CellAddr[Cur] + CellXOff, 8);
        if (CurX >= X[Cell])
          break;
        Last = Cur;
        Cur = Next[Cur];
        M.load(LdWalkNext, CellAddr[Last] + CellNextOff, 8);
      }
      // Link between Last and Cur.
      Prev[Cell] = Last;
      M.store(StPrev, CellAddr[Cell] + CellPrevOff, 8);
      Next[Cell] = Cur;
      M.store(StNext, CellAddr[Cell] + CellNextOff, 8);
      if (Last >= 0) {
        Next[Last] = static_cast<int32_t>(Cell);
        M.store(StNext, CellAddr[Last] + CellNextOff, 8);
      } else {
        RowHead[R2] = static_cast<int32_t>(Cell);
        M.store(StRowHead, RowHeadAddr + R2 * 8, 8);
      }
      if (Cur >= 0) {
        Prev[Cur] = static_cast<int32_t>(Cell);
        M.store(StPrev, CellAddr[Cur] + CellPrevOff, 8);
      }
      Row[Cell] = static_cast<int32_t>(R2);
      M.store(StCellRow, CellAddr[Cell] + CellRowOff, 8);
    };

    // Phase 1: allocate and initialize every cell (straight-line body,
    // as twolf's readcells does).
    for (uint64_t Cell = 0; Cell != NumCells; ++Cell) {
      CellAddr[Cell] = M.heapAlloc(CellSite, CellSize, 16);
      X[Cell] = static_cast<int64_t>(Gen.nextBelow(4096));
      Width[Cell] = 8 + static_cast<int64_t>(Gen.nextBelow(48));
      M.store(StCellInitX, CellAddr[Cell] + CellXOff, 8);
      M.store(StCellInitW, CellAddr[Cell] + CellWidthOff, 8);
    }
    // Phase 2: build the row lists.
    for (uint64_t Cell = 0; Cell != NumCells; ++Cell)
      InsertSorted(static_cast<uint32_t>(Cell),
                   static_cast<uint32_t>(Gen.nextBelow(NumRows)));

    auto Unlink = [&](uint32_t Cell) {
      int32_t P = Prev[Cell];
      M.load(LdPrev, CellAddr[Cell] + CellPrevOff, 8);
      int32_t N = Next[Cell];
      M.load(LdNext, CellAddr[Cell] + CellNextOff, 8);
      if (P >= 0) {
        Next[P] = N;
        M.store(StNext, CellAddr[P] + CellNextOff, 8);
      } else {
        RowHead[Row[Cell]] = N;
        M.store(StRowHead,
                RowHeadAddr + static_cast<uint64_t>(Row[Cell]) * 8, 8);
      }
      if (N >= 0) {
        Prev[N] = P;
        M.store(StPrev, CellAddr[N] + CellPrevOff, 8);
      }
    };

    // Annealing: move a random cell to a random row at a random x.
    uint64_t Checksum = 0;
    for (uint64_t Move = 0; Move != Moves; ++Move) {
      uint32_t Cell = static_cast<uint32_t>(Gen.nextBelow(NumCells));
      Unlink(Cell);
      X[Cell] = static_cast<int64_t>(Gen.nextBelow(4096));
      M.store(StCellX, CellAddr[Cell] + CellXOff, 8);
      uint64_t WlSlot = static_cast<uint64_t>(X[Cell]) % WlEntries;
      Checksum += static_cast<uint64_t>(Wl[WlSlot]);
      M.load(LdWl, WlAddr + WlSlot * 4, 4);
      InsertSorted(Cell, static_cast<uint32_t>(Gen.nextBelow(NumRows)));

      // Periodic best-placement snapshot: save every cell position into
      // the checkpoint array and re-read it as the new best cost
      // baseline (twolf checkpoints its best placement the same way).
      if (Move % 1024 == 0) {
        for (uint64_t Cl = 0; Cl != NumCells; ++Cl) {
          int64_t Px = X[Cl];
          M.load(LdSnapX, CellAddr[Cl] + CellXOff, 8);
          Snapshot[Cl] = Px;
          M.store(StSnap, SnapAddr + Cl * 8, 8);
        }
        int64_t Best = 0;
        for (uint64_t Cl = 0; Cl != NumCells; ++Cl) {
          Best += Snapshot[Cl];
          M.load(LdSnap, SnapAddr + Cl * 8, 8);
        }
        Checksum += static_cast<uint64_t>(Best);
      }
      // Periodic row-cost evaluation: walk one row summing extents.
      if ((Move & 7) == 0) {
        uint32_t R2 = static_cast<uint32_t>(Gen.nextBelow(NumRows));
        int32_t Cur = RowHead[R2];
        M.load(LdRowHead, RowHeadAddr + R2 * 8, 8);
        unsigned WalkCap = 48;
        int64_t Cost = 0;
        while (Cur >= 0 && WalkCap-- != 0) {
          Cost += X[Cur];
          M.load(LdCostX, CellAddr[Cur] + CellXOff, 8);
          Cost += Width[Cur];
          M.load(LdCostW, CellAddr[Cur] + CellWidthOff, 8);
          int32_t Following = Next[Cur];
          M.load(LdWalkNext, CellAddr[Cur] + CellNextOff, 8);
          Cur = Following;
        }
        Checksum += static_cast<uint64_t>(Cost);
      }
    }

    for (uint64_t Cell = 0; Cell != NumCells; ++Cell)
      M.heapFree(CellAddr[Cell]);
    return Checksum;
  }
};

} // namespace

std::unique_ptr<Workload> orp::workloads::createTwolfA() {
  return std::make_unique<TwolfA>();
}
