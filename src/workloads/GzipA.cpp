//===- workloads/GzipA.cpp - 164.gzip analogue ---------------------------===//
//
// LZ77-style compressor analogue. Memory behavior class: large static
// buffers swept with unit stride (input window, output buffer), a hash
// head table probed and updated at data-dependent indices (the classic
// gzip chain-head structure), and short backward match scans. Dominant
// dependences: head-table store -> head-table load, window fill ->
// window scan, output store -> output flush load.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"

#include <vector>

using namespace orp;
using namespace orp::workloads;
using trace::AccessKind;

namespace {

class GzipA final : public Workload {
public:
  const char *name() const override { return "164.gzip-a"; }

  uint64_t run(trace::MemoryInterface &M, trace::InstructionRegistry &R,
               const WorkloadConfig &C) override {
    // Probe sites (static loads/stores of the "compiled" program).
    trace::InstrId StWinFill = R.addInstruction("gzip:fill window[i]",
                                                AccessKind::Store);
    trace::InstrId LdWinCur = R.addInstruction("gzip:load window[pos]",
                                               AccessKind::Load);
    trace::InstrId LdWinLook = R.addInstruction("gzip:load window[pos+k]",
                                                AccessKind::Load);
    trace::InstrId LdWinMatch = R.addInstruction("gzip:load window[cand+k]",
                                                 AccessKind::Load);
    trace::InstrId LdHead = R.addInstruction("gzip:load head[h]",
                                             AccessKind::Load);
    trace::InstrId StHead = R.addInstruction("gzip:store head[h]",
                                             AccessKind::Store);
    trace::InstrId StOut = R.addInstruction("gzip:store out[opos]",
                                            AccessKind::Store);
    trace::InstrId LdOut = R.addInstruction("gzip:flush load out[k]",
                                            AccessKind::Load);
    trace::InstrId StCrcInit = R.addInstruction("gzip:init crctab[i]",
                                                AccessKind::Store);
    trace::InstrId LdCrcTab = R.addInstruction("gzip:load crctab[c]",
                                               AccessKind::Load);
    trace::InstrId StLitInit = R.addInstruction("gzip:init litcode[c]",
                                                AccessKind::Store);
    trace::InstrId LdLitCode = R.addInstruction("gzip:load litcode[c]",
                                                AccessKind::Load);

    trace::AllocSiteId WindowSite = R.addAllocSite("gzip:window",
                                                   "uint8_t[]");
    trace::AllocSiteId HeadSite = R.addAllocSite("gzip:head", "int32_t[]");
    trace::AllocSiteId OutSite = R.addAllocSite("gzip:out", "uint8_t[]");
    trace::AllocSiteId CrcSite = R.addAllocSite("gzip:crctab",
                                                "uint32_t[256]");
    trace::AllocSiteId LitSite = R.addAllocSite("gzip:litcode",
                                                "uint16_t[286]");

    const uint64_t WindowSize = 48 * 1024 * C.Scale;
    const uint64_t HeadEntries = 4096;

    // Real data (the computation) and parallel simulated addresses (the
    // profiled address space).
    std::vector<uint8_t> Window(WindowSize);
    std::vector<int32_t> Head(HeadEntries, -1);
    std::vector<uint8_t> Out;
    Out.reserve(WindowSize);

    uint64_t WindowAddr = M.staticAlloc(WindowSite, WindowSize, 16);
    uint64_t CrcAddr = M.staticAlloc(CrcSite, 256 * 4, 16);
    std::vector<uint32_t> CrcTab(256);
    for (unsigned I = 0; I != 256; ++I) {
      uint32_t Crc = I;
      for (int B = 0; B != 8; ++B)
        Crc = (Crc >> 1) ^ ((Crc & 1) ? 0xedb88320u : 0);
      CrcTab[I] = Crc;
      M.store(StCrcInit, CrcAddr + I * 4, 4);
    }
    uint64_t LitAddr = M.staticAlloc(LitSite, 286 * 2, 16);
    std::vector<uint16_t> LitCode(286);
    for (unsigned I = 0; I != 286; ++I) {
      LitCode[I] = static_cast<uint16_t>(I * 5 + 2);
      M.store(StLitInit, LitAddr + I * 2, 2);
    }
    uint64_t HeadAddr = M.staticAlloc(HeadSite, HeadEntries * 4, 16);
    uint64_t OutAddr = M.heapAlloc(OutSite, WindowSize + 1024, 16);

    // Generate compressible pseudo-text: random phrases over a small
    // alphabet, re-emitted with repetition.
    Rng Gen(C.Seed * 0x9e37 + 1);
    {
      std::vector<std::vector<uint8_t>> Phrases;
      for (int P = 0; P != 24; ++P) {
        std::vector<uint8_t> Phrase(4 + Gen.nextBelow(12));
        for (uint8_t &B : Phrase)
          B = static_cast<uint8_t>('a' + Gen.nextBelow(16));
        Phrases.push_back(std::move(Phrase));
      }
      uint64_t I = 0;
      while (I < WindowSize) {
        const std::vector<uint8_t> &Phrase = Gen.pick(Phrases);
        for (uint8_t B : Phrase) {
          if (I >= WindowSize)
            break;
          Window[I] = B;
          M.store(StWinFill, WindowAddr + I, 1);
          ++I;
        }
      }
    }

    // Deflate-style scan: hash the current byte context, probe and
    // update the chain head, attempt a short match, emit output.
    uint64_t Checksum = 0;
    uint64_t OutPos = 0;
    uint32_t Hash = 0;
    for (uint64_t Pos = 0; Pos + 4 < WindowSize; ++Pos) {
      uint8_t Cur = Window[Pos];
      M.load(LdWinCur, WindowAddr + Pos, 1);
      Hash = ((Hash << 5) ^ Cur) & (HeadEntries - 1);

      int32_t Cand = Head[Hash];
      M.load(LdHead, HeadAddr + Hash * 4, 4);
      Head[Hash] = static_cast<int32_t>(Pos);
      M.store(StHead, HeadAddr + Hash * 4, 4);

      unsigned MatchLen = 0;
      if (Cand >= 0 && static_cast<uint64_t>(Cand) < Pos) {
        while (MatchLen < 8 && Pos + MatchLen + 4 < WindowSize) {
          uint8_t A = Window[Cand + MatchLen];
          M.load(LdWinMatch, WindowAddr + Cand + MatchLen, 1);
          uint8_t B = Window[Pos + MatchLen];
          M.load(LdWinLook, WindowAddr + Pos + MatchLen, 1);
          if (A != B)
            break;
          ++MatchLen;
        }
      }

      if (MatchLen >= 3) {
        // Emit a (length, distance) token.
        Out.push_back(static_cast<uint8_t>(0x80 | MatchLen));
        M.store(StOut, OutAddr + OutPos, 1);
        ++OutPos;
        Out.push_back(static_cast<uint8_t>(Pos - Cand));
        M.store(StOut, OutAddr + OutPos, 1);
        ++OutPos;
        Pos += MatchLen - 1; // The scan loop adds the final +1.
        Checksum += MatchLen * 131 + static_cast<uint8_t>(Pos - Cand);
      } else {
        Out.push_back(Cur);
        M.store(StOut, OutAddr + OutPos, 1);
        ++OutPos;
        Checksum += Cur + LitCode[Cur];
        M.load(LdLitCode, LitAddr + static_cast<uint64_t>(Cur) * 2, 2);
      }
    }

    // Flush: CRC the produced output (table-driven, as gzip does).
    uint32_t Crc = ~0u;
    for (uint64_t K = 0; K != OutPos; ++K) {
      uint8_t Byte = Out[K];
      M.load(LdOut, OutAddr + K, 1);
      unsigned Slot = (Crc ^ Byte) & 0xff;
      Crc = (Crc >> 8) ^ CrcTab[Slot];
      M.load(LdCrcTab, CrcAddr + Slot * 4, 4);
    }
    Checksum += Crc;

    M.heapFree(OutAddr);
    return Checksum;
  }
};

} // namespace

std::unique_ptr<Workload> orp::workloads::createGzipA() {
  return std::make_unique<GzipA>();
}
