//===- workloads/Bzip2A.cpp - 256.bzip2 analogue -------------------------===//
//
// Block-sorting compressor analogue. Memory behavior class: large heap
// block buffers written and re-read with unit stride, a tiny hot
// counting array with intense load-modify-store traffic, a rank/pointer
// array with scattered permutation stores, and a permuted gather pass
// (load block[ptr[i]]), the BWT access that defeats linear prediction.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"

#include <vector>

using namespace orp;
using namespace orp::workloads;
using trace::AccessKind;

namespace {

class Bzip2A final : public Workload {
public:
  const char *name() const override { return "256.bzip2-a"; }

  uint64_t run(trace::MemoryInterface &M, trace::InstructionRegistry &R,
               const WorkloadConfig &C) override {
    trace::InstrId StBlockFill = R.addInstruction("bzip2:fill block[i]",
                                                  AccessKind::Store);
    trace::InstrId LdBlockCount = R.addInstruction(
        "bzip2:count load block[i]", AccessKind::Load);
    trace::InstrId LdCounts = R.addInstruction("bzip2:load counts[c]",
                                               AccessKind::Load);
    trace::InstrId StCounts = R.addInstruction("bzip2:store counts[c]",
                                               AccessKind::Store);
    trace::InstrId LdPrefix = R.addInstruction("bzip2:prefix load counts[c]",
                                               AccessKind::Load);
    trace::InstrId StPrefix = R.addInstruction(
        "bzip2:prefix store counts[c]", AccessKind::Store);
    trace::InstrId LdBlockScatter = R.addInstruction(
        "bzip2:scatter load block[i]", AccessKind::Load);
    trace::InstrId StPtr = R.addInstruction("bzip2:store ptr[rank]",
                                            AccessKind::Store);
    trace::InstrId LdPtr = R.addInstruction("bzip2:load ptr[i]",
                                            AccessKind::Load);
    trace::InstrId LdBlockGather = R.addInstruction(
        "bzip2:gather load block[ptr[i]]", AccessKind::Load);
    trace::InstrId StOut = R.addInstruction("bzip2:store out[i]",
                                            AccessKind::Store);
    trace::InstrId LdOutCrc = R.addInstruction("bzip2:crc load out[i]",
                                               AccessKind::Load);
    trace::InstrId StCodeInit = R.addInstruction("bzip2:init codetab[c]",
                                                 AccessKind::Store);
    trace::InstrId LdCodeTab = R.addInstruction("bzip2:load codetab[c]",
                                                AccessKind::Load);

    trace::AllocSiteId BlockSite = R.addAllocSite("bzip2:block",
                                                  "uint8_t[]");
    trace::AllocSiteId PtrSite = R.addAllocSite("bzip2:ptr", "uint32_t[]");
    trace::AllocSiteId OutSite = R.addAllocSite("bzip2:out", "uint8_t[]");
    trace::AllocSiteId CountsSite = R.addAllocSite("bzip2:counts",
                                                   "uint32_t[256]");
    trace::AllocSiteId CodeSite = R.addAllocSite("bzip2:codetab",
                                                 "uint16_t[256]");

    const uint64_t BlockSize = 24 * 1024;
    const unsigned Blocks = static_cast<unsigned>(3 * C.Scale);

    Rng Gen(C.Seed * 0xb21b + 13);

    std::vector<uint8_t> Block(BlockSize);
    std::vector<uint32_t> Ptr(BlockSize);
    std::vector<uint8_t> Out(BlockSize);
    std::vector<uint32_t> Counts(256);

    uint64_t CountsAddr = M.staticAlloc(CountsSite, 256 * 4, 16);
    uint64_t CodeAddr = M.staticAlloc(CodeSite, 256 * 2, 16);
    std::vector<uint16_t> CodeTab(256);
    for (unsigned I = 0; I != 256; ++I) {
      CodeTab[I] = static_cast<uint16_t>(I * 7 + 1);
      M.store(StCodeInit, CodeAddr + I * 2, 2);
    }
    uint64_t Checksum = 0;

    for (unsigned B = 0; B != Blocks; ++B) {
      // Fresh buffers per block, as bzip2 allocates per work unit.
      uint64_t BlockAddr = M.heapAlloc(BlockSite, BlockSize, 16);
      uint64_t PtrAddr = M.heapAlloc(PtrSite, BlockSize * 4, 16);
      uint64_t OutAddr = M.heapAlloc(OutSite, BlockSize, 16);

      // Fill the block with skewed text-like bytes.
      for (uint64_t I = 0; I != BlockSize; ++I) {
        uint64_t Raw = Gen.nextBelow(96);
        Block[I] = static_cast<uint8_t>(Raw < 64 ? 'a' + (Raw & 15)
                                                 : ' ' + (Raw & 31));
        M.store(StBlockFill, BlockAddr + I, 1);
      }

      // Counting pass over the hot 256-entry array.
      for (auto &Cnt : Counts)
        Cnt = 0;
      for (uint64_t I = 0; I != BlockSize; ++I) {
        uint8_t Ch = Block[I];
        M.load(LdBlockCount, BlockAddr + I, 1);
        uint32_t Old = Counts[Ch];
        M.load(LdCounts, CountsAddr + Ch * 4, 4);
        Counts[Ch] = Old + 1;
        M.store(StCounts, CountsAddr + Ch * 4, 4);
      }

      // Exclusive prefix sum (strided load-modify-store over counts).
      uint32_t Running = 0;
      for (unsigned Ch = 0; Ch != 256; ++Ch) {
        uint32_t Cnt = Counts[Ch];
        M.load(LdPrefix, CountsAddr + Ch * 4, 4);
        Counts[Ch] = Running;
        M.store(StPrefix, CountsAddr + Ch * 4, 4);
        Running += Cnt;
      }

      // Rank scatter: ptr[rank(ch)] = i.
      for (uint64_t I = 0; I != BlockSize; ++I) {
        uint8_t Ch = Block[I];
        M.load(LdBlockScatter, BlockAddr + I, 1);
        uint32_t Rank = Counts[Ch]++;
        M.store(StPtr, PtrAddr + static_cast<uint64_t>(Rank) * 4, 4);
        Ptr[Rank] = static_cast<uint32_t>(I);
      }

      // Permuted gather (the cache-hostile BWT reconstruction read).
      for (uint64_t I = 0; I != BlockSize; ++I) {
        uint32_t Src = Ptr[I];
        M.load(LdPtr, PtrAddr + I * 4, 4);
        uint8_t Ch = Block[Src];
        M.load(LdBlockGather, BlockAddr + Src, 1);
        Out[I] = Ch;
        M.store(StOut, OutAddr + I, 1);
        Checksum = Checksum * 31 + Ch;
      }

      // CRC pass over the produced block (bzip2 checksums each block),
      // folding in the symbol's code-table entry.
      for (uint64_t I = 0; I != BlockSize; ++I) {
        uint8_t Ch = Out[I];
        M.load(LdOutCrc, OutAddr + I, 1);
        Checksum = Checksum * 131 + Ch + CodeTab[Ch];
        M.load(LdCodeTab, CodeAddr + Ch * 2, 2);
      }

      M.heapFree(OutAddr);
      M.heapFree(PtrAddr);
      M.heapFree(BlockAddr);
    }

    return Checksum;
  }
};

} // namespace

std::unique_ptr<Workload> orp::workloads::createBzip2A() {
  return std::make_unique<Bzip2A>();
}
