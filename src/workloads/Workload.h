//===- workloads/Workload.h - SPEC2000 workload analogues ------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper evaluates on 7 SPEC2000 integer benchmarks (164.gzip,
/// 175.vpr, 181.mcf, 186.crafty, 197.parser, 256.bzip2, 300.twolf) with
/// training inputs on an Itanium workstation. Those binaries and inputs
/// are not available here; per the reproduction's substitution rule,
/// each benchmark is replaced by a workload analogue that (a) performs
/// real computation on real data so that native-vs-instrumented timing
/// (Table 1's dilation) is meaningful, and (b) imitates the memory-
/// behavior class the original is known for — see each workload's file
/// header. All memory traffic flows through trace::MemoryInterface
/// probes, exactly as the paper's inserted assembly probes would report
/// it.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_WORKLOADS_WORKLOAD_H
#define ORP_WORKLOADS_WORKLOAD_H

#include "trace/InstructionRegistry.h"
#include "trace/MemoryInterface.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace orp {
namespace workloads {

/// Per-run workload parameters.
struct WorkloadConfig {
  /// Multiplies the amount of work (1 = the default "training" size,
  /// several hundred thousand accesses).
  uint64_t Scale = 1;
  /// Input seed; different seeds model different program inputs.
  uint64_t Seed = 42;
};

/// One instrumented benchmark program.
class Workload {
public:
  virtual ~Workload();

  /// Returns the analogue's name, e.g. "164.gzip-a".
  virtual const char *name() const = 0;

  /// Executes the workload against \p Memory, registering its static
  /// probe sites in \p Registry. Returns a checksum of the computation
  /// (so "native" runs cannot be optimized away and runs can be compared
  /// for determinism). Does not call Memory.finish().
  virtual uint64_t run(trace::MemoryInterface &Memory,
                       trace::InstructionRegistry &Registry,
                       const WorkloadConfig &Config) = 0;
};

/// Factory functions for each analogue.
std::unique_ptr<Workload> createGzipA();
std::unique_ptr<Workload> createVprA();
std::unique_ptr<Workload> createMcfA();
std::unique_ptr<Workload> createCraftyA();
std::unique_ptr<Workload> createParserA();
std::unique_ptr<Workload> createBzip2A();
std::unique_ptr<Workload> createTwolfA();

/// The linked-list micro-workload of the paper's Figures 1-3.
std::unique_ptr<Workload> createListTraversal();

/// Returns fresh instances of the 7 SPEC2000 analogues, in the paper's
/// table order.
std::vector<std::unique_ptr<Workload>> createSpecAnalogues();

/// Returns a fresh instance by name ("164.gzip-a", ..., "list-traversal"),
/// or null when the name is unknown.
std::unique_ptr<Workload> createWorkloadByName(const std::string &Name);

} // namespace workloads
} // namespace orp

#endif // ORP_WORKLOADS_WORKLOAD_H
