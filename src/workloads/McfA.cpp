//===- workloads/McfA.cpp - 181.mcf analogue -----------------------------===//
//
// Network-simplex analogue. Memory behavior class: bulk-allocated node
// and arc objects; sequential sweeps over the arc set (regular in both
// raw and object-relative space) dereferencing tail/head node pointers
// (data-dependent, the pointer-chasing that makes mcf notoriously
// cache-hostile). Dominant dependences: node-potential stores -> node-
// potential loads, arc-flow stores -> arc-flow loads across passes.
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"

#include <vector>

using namespace orp;
using namespace orp::workloads;
using trace::AccessKind;

namespace {

/// Field offsets within the simulated node and arc records.
constexpr uint64_t NodeSize = 64;
constexpr uint64_t NodePotentialOff = 0;
constexpr uint64_t NodeDepthOff = 8;
constexpr uint64_t ArcSize = 48;
constexpr uint64_t ArcCostOff = 0;
constexpr uint64_t ArcTailOff = 8;
constexpr uint64_t ArcHeadOff = 16;
constexpr uint64_t ArcFlowOff = 24;
constexpr uint64_t ArcKeyOff = 32;

class McfA final : public Workload {
public:
  const char *name() const override { return "181.mcf-a"; }

  uint64_t run(trace::MemoryInterface &M, trace::InstructionRegistry &R,
               const WorkloadConfig &C) override {
    trace::InstrId StNodeInitPot = R.addInstruction(
        "mcf:init node->potential", AccessKind::Store);
    trace::InstrId StNodeInitDepth = R.addInstruction(
        "mcf:init node->depth", AccessKind::Store);
    trace::InstrId StArcInitCost = R.addInstruction(
        "mcf:init arc->cost", AccessKind::Store);
    trace::InstrId StArcInitTail = R.addInstruction(
        "mcf:init arc->tail", AccessKind::Store);
    trace::InstrId StArcInitHead = R.addInstruction(
        "mcf:init arc->head", AccessKind::Store);
    trace::InstrId LdArcCost = R.addInstruction("mcf:load arc->cost",
                                                AccessKind::Load);
    trace::InstrId LdArcTail = R.addInstruction("mcf:load arc->tail",
                                                AccessKind::Load);
    trace::InstrId LdArcHead = R.addInstruction("mcf:load arc->head",
                                                AccessKind::Load);
    trace::InstrId LdTailPot = R.addInstruction(
        "mcf:load tail->potential", AccessKind::Load);
    trace::InstrId LdHeadPot = R.addInstruction(
        "mcf:load head->potential", AccessKind::Load);
    trace::InstrId StArcFlow = R.addInstruction("mcf:store arc->flow",
                                                AccessKind::Store);
    trace::InstrId LdArcFlow = R.addInstruction("mcf:load arc->flow",
                                                AccessKind::Load);
    trace::InstrId StNodePot = R.addInstruction(
        "mcf:store head->potential", AccessKind::Store);
    trace::InstrId LdNodeDepth = R.addInstruction("mcf:load node->depth",
                                                  AccessKind::Load);
    trace::InstrId StNodePot2 = R.addInstruction(
        "mcf:refresh node->potential", AccessKind::Store);
    trace::InstrId StNetIn = R.addInstruction("mcf:store netbuf[i]",
                                              AccessKind::Store);
    trace::InstrId LdNetIn = R.addInstruction("mcf:parse load netbuf[i]",
                                              AccessKind::Load);
    trace::InstrId LdSortCost = R.addInstruction(
        "mcf:sort load arc->cost", AccessKind::Load);
    trace::InstrId StArcKey = R.addInstruction("mcf:store arc->key",
                                               AccessKind::Store);
    trace::InstrId LdArcKey = R.addInstruction("mcf:load arc->key",
                                               AccessKind::Load);

    trace::AllocSiteId NodeSite = R.addAllocSite("mcf:new node",
                                                 "struct node");
    trace::AllocSiteId ArcSite = R.addAllocSite("mcf:new arc", "struct arc");
    trace::AllocSiteId NetBufSite = R.addAllocSite("mcf:netbuf",
                                                   "int32_t[]");

    const uint64_t NumNodes = 2000 * C.Scale;
    const uint64_t NumArcs = 4 * NumNodes;
    const unsigned Passes = 6;

    Rng Gen(C.Seed * 0x7177 + 3);

    // Real program state.
    std::vector<int64_t> Potential(NumNodes);
    std::vector<int64_t> Depth(NumNodes);
    std::vector<uint32_t> Tail(NumArcs), Head(NumArcs);
    std::vector<int64_t> Cost(NumArcs), Flow(NumArcs, 0);

    // "Read the network file": fill a parse buffer sequentially, then
    // re-read it while building the graph (mcf's read_min does this).
    uint64_t NetBufAddr = M.heapAlloc(NetBufSite, NumArcs * 4, 16);
    std::vector<int32_t> NetBuf(NumArcs);
    for (uint64_t I = 0; I != NumArcs; ++I) {
      NetBuf[I] = static_cast<int32_t>(Gen.nextBelow(1 << 20));
      M.store(StNetIn, NetBufAddr + I * 4, 4);
    }

    // Simulated objects: like the real mcf, the node and arc sets are
    // each one big calloc block; individual records are offsets within
    // those two objects (cf. the paper's footnote on treating allocation
    // pools as single objects).
    uint64_t NodeBase = M.heapAlloc(NodeSite, NumNodes * NodeSize, 16);
    uint64_t ArcBase = M.heapAlloc(ArcSite, NumArcs * ArcSize, 16);
    std::vector<uint64_t> NodeAddr(NumNodes), ArcAddr(NumArcs);
    for (uint64_t N = 0; N != NumNodes; ++N) {
      NodeAddr[N] = NodeBase + N * NodeSize;
      Potential[N] = static_cast<int64_t>(Gen.nextBelow(1000));
      Depth[N] = 0;
      M.store(StNodeInitPot, NodeAddr[N] + NodePotentialOff, 8);
      M.store(StNodeInitDepth, NodeAddr[N] + NodeDepthOff, 8);
    }
    for (uint64_t A = 0; A != NumArcs; ++A) {
      ArcAddr[A] = ArcBase + A * ArcSize;
      int32_t Parsed = NetBuf[A];
      M.load(LdNetIn, NetBufAddr + A * 4, 4);
      Tail[A] = static_cast<uint32_t>(
          static_cast<uint64_t>(Parsed) % NumNodes);
      Head[A] = static_cast<uint32_t>(Gen.nextBelow(NumNodes));
      Cost[A] = static_cast<int64_t>(Gen.nextBelow(200)) - 100;
      M.store(StArcInitCost, ArcAddr[A] + ArcCostOff, 8);
      M.store(StArcInitTail, ArcAddr[A] + ArcTailOff, 8);
      M.store(StArcInitHead, ArcAddr[A] + ArcHeadOff, 8);
    }

    // Basis-ordering pass (mcf's price-out builds sort keys the same
    // way): straight-line sweep reading each arc's cost, writing its key.
    std::vector<int64_t> ArcKey(NumArcs);
    uint64_t Checksum = 0;
    for (uint64_t A = 0; A != NumArcs; ++A) {
      int64_t K = Cost[A];
      M.load(LdSortCost, ArcAddr[A] + ArcCostOff, 8);
      ArcKey[A] = K * 4 + static_cast<int64_t>(A & 3);
      M.store(StArcKey, ArcAddr[A] + ArcKeyOff, 8);
    }

    // Simplex-flavored passes: sweep the arc set, price with the node
    // potentials, push flow on negative reduced cost, update potentials.
    for (unsigned Pass = 0; Pass != Passes; ++Pass) {
      for (uint64_t A = 0; A != NumArcs; ++A) {
        M.load(LdArcCost, ArcAddr[A] + ArcCostOff, 8);
        uint32_t T = Tail[A];
        M.load(LdArcTail, ArcAddr[A] + ArcTailOff, 8);
        uint32_t H = Head[A];
        M.load(LdArcHead, ArcAddr[A] + ArcHeadOff, 8);
        int64_t TP = Potential[T];
        M.load(LdTailPot, NodeAddr[T] + NodePotentialOff, 8);
        int64_t HP = Potential[H];
        M.load(LdHeadPot, NodeAddr[H] + NodePotentialOff, 8);
        int64_t Reduced = Cost[A] + TP - HP;
        if (Reduced < 0) {
          int64_t Old = Flow[A];
          M.load(LdArcFlow, ArcAddr[A] + ArcFlowOff, 8);
          Flow[A] = Old + 1;
          M.store(StArcFlow, ArcAddr[A] + ArcFlowOff, 8);
          Potential[H] += (-Reduced) >> 3;
          M.store(StNodePot, NodeAddr[H] + NodePotentialOff, 8);
          Checksum += static_cast<uint64_t>(-Reduced);
        }
      }
      // Potential refresh sweep over the node set.
      for (uint64_t N = 0; N != NumNodes; ++N) {
        int64_t D = Depth[N];
        M.load(LdNodeDepth, NodeAddr[N] + NodeDepthOff, 8);
        Potential[N] -= D + static_cast<int64_t>(Pass);
        M.store(StNodePot2, NodeAddr[N] + NodePotentialOff, 8);
      }
    }

    for (uint64_t N = 0; N != NumNodes; ++N)
      Checksum += static_cast<uint64_t>(Potential[N]) * 7;

    // Final report: consume the sort keys (straight-line sweep).
    for (uint64_t A = 0; A != NumArcs; ++A) {
      Checksum += static_cast<uint64_t>(ArcKey[A]) & 0xff;
      M.load(LdArcKey, ArcAddr[A] + ArcKeyOff, 8);
    }

    M.heapFree(NetBufAddr);
    M.heapFree(ArcBase);
    M.heapFree(NodeBase);
    return Checksum;
  }
};

} // namespace

std::unique_ptr<Workload> orp::workloads::createMcfA() {
  return std::make_unique<McfA>();
}
