//===- workloads/ParserA.cpp - 197.parser analogue -----------------------===//
//
// Link-grammar parser analogue. Memory behavior class: a persistent
// dictionary binary tree descended per word (pointer chasing with
// read-after-write counter updates), plus heavy per-sentence allocation
// and freeing of small parse nodes — the alloc/free churn that makes
// raw heap addresses of parser famously unstable (freed addresses are
// immediately reused for unrelated nodes).
//
//===----------------------------------------------------------------------===//

#include "workloads/Workload.h"

#include "support/Random.h"

#include <algorithm>
#include <vector>

using namespace orp;
using namespace orp::workloads;
using trace::AccessKind;

namespace {

constexpr uint64_t DictNodeSize = 40;
constexpr uint64_t DictKeyOff = 0;
constexpr uint64_t DictLeftOff = 8;
constexpr uint64_t DictRightOff = 16;
constexpr uint64_t DictCountOff = 24;

constexpr uint64_t ParseNodeSize = 32;
constexpr uint64_t ParseWordOff = 0;
constexpr uint64_t ParseNextOff = 8;
constexpr uint64_t ParseLinkOff = 16;

class ParserA final : public Workload {
public:
  const char *name() const override { return "197.parser-a"; }

  uint64_t run(trace::MemoryInterface &M, trace::InstructionRegistry &R,
               const WorkloadConfig &C) override {
    trace::InstrId StDictInit = R.addInstruction("parser:init dict node",
                                                 AccessKind::Store);
    trace::InstrId LdDictKey = R.addInstruction("parser:load dict->key",
                                                AccessKind::Load);
    trace::InstrId LdDictLeft = R.addInstruction("parser:load dict->left",
                                                 AccessKind::Load);
    trace::InstrId LdDictRight = R.addInstruction("parser:load dict->right",
                                                  AccessKind::Load);
    trace::InstrId LdDictCount = R.addInstruction("parser:load dict->count",
                                                  AccessKind::Load);
    trace::InstrId StDictCount = R.addInstruction("parser:store dict->count",
                                                  AccessKind::Store);
    trace::InstrId StParseWord = R.addInstruction("parser:store pn->word",
                                                  AccessKind::Store);
    trace::InstrId StParseNext = R.addInstruction("parser:store pn->next",
                                                  AccessKind::Store);
    trace::InstrId LdParseNext = R.addInstruction("parser:load pn->next",
                                                  AccessKind::Load);
    trace::InstrId LdParseWord = R.addInstruction("parser:load pn->word",
                                                  AccessKind::Load);
    trace::InstrId StParseLink = R.addInstruction("parser:store pn->link",
                                                  AccessKind::Store);
    trace::InstrId LdParseLink = R.addInstruction("parser:load pn->link",
                                                  AccessKind::Load);
    trace::InstrId StMorphInit = R.addInstruction("parser:init morph[i]",
                                                  AccessKind::Store);
    trace::InstrId LdMorph = R.addInstruction("parser:load morph[w]",
                                              AccessKind::Load);

    trace::AllocSiteId DictSite = R.addAllocSite("parser:new dict node",
                                                 "struct dict_node");
    // The real 197.parser allocates parse nodes from its own xalloc
    // arena, released wholesale after each sentence. Per the paper's
    // Section 3.1 footnote ("we choose to treat custom alloc pools as
    // single objects"), the pool is one object and parse nodes are
    // offsets within it.
    trace::AllocSiteId PoolSite = R.addAllocSite("parser:xalloc pool",
                                                 "char[]");
    trace::AllocSiteId MorphSite = R.addAllocSite("parser:morph table",
                                                  "uint8_t[]");

    const uint64_t DictWords = 400;
    const uint64_t Sentences = 320 * C.Scale;
    const uint64_t PoolBytes = 64 * ParseNodeSize;

    Rng Gen(C.Seed * 0xbadd + 7);

    // Dictionary: unbalanced BST over hashed word ids (index-based real
    // data, one simulated heap object per tree node).
    std::vector<uint64_t> Key;
    std::vector<int32_t> Left, Right;
    std::vector<uint64_t> Count;
    std::vector<uint64_t> DictAddr;
    // Phase 1: allocate and initialize one node per distinct word
    // (straight-line body). Phase 2: link the BST (index updates only;
    // the link fields are not touched again until lookups).
    {
      std::vector<uint64_t> Raw;
      for (uint64_t I = 0; I != DictWords; ++I)
        Raw.push_back(Gen.nextBelow(1 << 20));
      std::sort(Raw.begin(), Raw.end());
      Raw.erase(std::unique(Raw.begin(), Raw.end()), Raw.end());
      Rng Shuffler(C.Seed * 0x5eed + 31);
      Shuffler.shuffle(Raw);
      for (uint64_t W : Raw) {
        uint64_t Addr = M.heapAlloc(DictSite, DictNodeSize, 16);
        M.store(StDictInit, Addr + DictKeyOff, 8);
        Key.push_back(W);
        Left.push_back(-1);
        Right.push_back(-1);
        Count.push_back(0);
        DictAddr.push_back(Addr);
      }
      for (size_t N = 1; N != Key.size(); ++N) {
        int32_t At = 0;
        for (;;) {
          int32_t &Next = Key[N] < Key[At] ? Left[At] : Right[At];
          if (Next < 0) {
            Next = static_cast<int32_t>(N);
            break;
          }
          At = Next;
        }
      }
    }

    // Word lookup: BST descent with probes, bumping the usage counter.
    uint64_t Checksum = 0;
    auto Lookup = [&](uint64_t W) {
      int32_t At = 0;
      while (At >= 0) {
        uint64_t K = Key[At];
        M.load(LdDictKey, DictAddr[At] + DictKeyOff, 8);
        if (W == K) {
          Checksum += Count[At];
          M.load(LdDictCount, DictAddr[At] + DictCountOff, 8);
          ++Count[At];
          M.store(StDictCount, DictAddr[At] + DictCountOff, 8);
          return At;
        }
        if (W < K) {
          M.load(LdDictLeft, DictAddr[At] + DictLeftOff, 8);
          At = Left[At];
        } else {
          M.load(LdDictRight, DictAddr[At] + DictRightOff, 8);
          At = Right[At];
        }
      }
      return int32_t(-1);
    };

    // Sentences: carve a chain of parse nodes from the arena, run a
    // linking pass (store link fields), a verification pass (reload
    // them), then reset the arena — the next sentence reuses the same
    // pool bytes, the classic churn that scrambles raw addresses.
    uint64_t PoolAddr = M.heapAlloc(PoolSite, PoolBytes, 16);
    // Morphology/suffix classification table, consulted once per word.
    const uint64_t MorphEntries = 512;
    uint64_t MorphAddr = M.staticAlloc(MorphSite, MorphEntries, 16);
    std::vector<uint8_t> Morph(MorphEntries);
    for (uint64_t I = 0; I != MorphEntries; ++I) {
      Morph[I] = static_cast<uint8_t>(I * 11);
      M.store(StMorphInit, MorphAddr + I, 1);
    }
    // Natural text is Zipf-distributed: a handful of words dominate, so
    // the same dictionary descents repeat over and over.
    auto ZipfWord = [&]() {
      double U = Gen.nextDouble();
      double Skew = U * U * U * U;
      auto Rank = static_cast<size_t>(Skew * static_cast<double>(Key.size()));
      return Key[Rank >= Key.size() ? Key.size() - 1 : Rank];
    };
    for (uint64_t S = 0; S != Sentences; ++S) {
      uint64_t Len = 8 + Gen.nextBelow(24);
      std::vector<uint64_t> Nodes(Len);
      std::vector<uint64_t> Words(Len);
      for (uint64_t I = 0; I != Len; ++I) {
        Nodes[I] = PoolAddr + I * ParseNodeSize; // Arena bump pointer.
        Words[I] = ZipfWord();
        M.store(StParseWord, Nodes[I] + ParseWordOff, 8);
        Checksum += Morph[Words[I] % MorphEntries];
        M.load(LdMorph, MorphAddr + Words[I] % MorphEntries, 1);
        if (I > 0)
          M.store(StParseNext, Nodes[I - 1] + ParseNextOff, 8);
        Lookup(Words[I]);
      }
      // Linking pass: walk the chain, check word-pair compatibility in
      // the dictionary (link grammars consult the dictionary per bigram,
      // which keeps parsing dictionary-dominated), link matching nodes.
      for (uint64_t I = 0; I + 1 < Len; ++I) {
        M.load(LdParseNext, Nodes[I] + ParseNextOff, 8);
        M.load(LdParseWord, Nodes[I + 1] + ParseWordOff, 8);
        uint64_t Bigram = (Words[I] * 31 + Words[I + 1]) % 64;
        Lookup(Key[Bigram]);
        Lookup(Key[(Bigram * 17 + Words[I]) % 64]);
        if ((Words[I] ^ Words[I + 1]) & 1) {
          M.store(StParseLink, Nodes[I] + ParseLinkOff, 8);
          Checksum += Words[I] & 0xff;
        }
      }
      // Verification pass: reload links in order.
      for (uint64_t I = 0; I != Len; ++I)
        M.load(LdParseLink, Nodes[I] + ParseLinkOff, 8);
      // Sentence done: the arena is reset (no per-node frees; the next
      // sentence overwrites the same bytes).
    }

    M.heapFree(PoolAddr);
    for (uint64_t Addr : DictAddr)
      M.heapFree(Addr);
    return Checksum;
  }
};

} // namespace

std::unique_ptr<Workload> orp::workloads::createParserA() {
  return std::make_unique<ParserA>();
}
