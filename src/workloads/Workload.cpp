//===- workloads/Workload.cpp - Workload registry ------------------------===//

#include "workloads/Workload.h"

using namespace orp;
using namespace orp::workloads;

Workload::~Workload() = default;

std::vector<std::unique_ptr<Workload>>
orp::workloads::createSpecAnalogues() {
  std::vector<std::unique_ptr<Workload>> All;
  All.push_back(createGzipA());
  All.push_back(createVprA());
  All.push_back(createMcfA());
  All.push_back(createCraftyA());
  All.push_back(createParserA());
  All.push_back(createBzip2A());
  All.push_back(createTwolfA());
  return All;
}

std::unique_ptr<Workload>
orp::workloads::createWorkloadByName(const std::string &Name) {
  if (Name == "164.gzip-a")
    return createGzipA();
  if (Name == "175.vpr-a")
    return createVprA();
  if (Name == "181.mcf-a")
    return createMcfA();
  if (Name == "186.crafty-a")
    return createCraftyA();
  if (Name == "197.parser-a")
    return createParserA();
  if (Name == "256.bzip2-a")
    return createBzip2A();
  if (Name == "300.twolf-a")
    return createTwolfA();
  if (Name == "list-traversal")
    return createListTraversal();
  return nullptr;
}
