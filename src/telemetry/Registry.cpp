//===- telemetry/Registry.cpp - Named metric registry ---------------------===//

#include "telemetry/Registry.h"

#include "support/LogSink.h"
#include "support/ThreadSafety.h"

#include <atomic>
#include <map>
#include <memory>
#include <utility>
#include <vector>

using namespace orp;
using namespace orp::telemetry;

namespace {
/// Global recording switch (see Metric.h). Default on: instrumentation
/// should observe a normal run without any flag.
std::atomic<bool> RecordingEnabled{true};

/// Next shard to hand out; threads claim one on first use.
std::atomic<uint64_t> NextShard{0};
} // namespace

bool telemetry::enabled() {
  return RecordingEnabled.load(std::memory_order_relaxed);
}

void telemetry::setEnabled(bool On) {
  RecordingEnabled.store(On, std::memory_order_relaxed);
}

size_t detail::threadShard() {
  thread_local size_t Shard =
      static_cast<size_t>(NextShard.fetch_add(1, std::memory_order_relaxed)) %
      kShards;
  return Shard;
}

namespace {

/// A test-and-set spinlock carrying the capability attribute, so the
/// registry's locking discipline is checked under -Wthread-safety like
/// the support-layer Mutex. (This file is one of the sanctioned
/// non-relaxed-atomics sites; see orp-analyze's atomics check.)
class ORP_CAPABILITY("mutex") SpinLock {
public:
  void lock() ORP_ACQUIRE() ORP_NO_THREAD_SAFETY_ANALYSIS {
    while (Flag.test_and_set(std::memory_order_acquire)) {
    }
  }
  void unlock() ORP_RELEASE() ORP_NO_THREAD_SAFETY_ANALYSIS {
    Flag.clear(std::memory_order_release);
  }

private:
  std::atomic_flag Flag = ATOMIC_FLAG_INIT;
};

} // namespace

/// Registry internals. Registration, collector management and snapshot
/// are all cold paths, so a spinlock is plenty (and keeps std::mutex
/// confined to src/support per lint rule R5). Metrics live in node-based
/// maps: references handed out stay valid as the maps grow.
struct Registry::Impl {
  SpinLock Lock;

  std::map<std::string, std::unique_ptr<Counter>> Counters
      ORP_GUARDED_BY(Lock);
  std::map<std::string, std::unique_ptr<Gauge>> Gauges
      ORP_GUARDED_BY(Lock);
  std::map<std::string, std::unique_ptr<Histogram>> Histograms
      ORP_GUARDED_BY(Lock);
  std::map<std::string, std::unique_ptr<PhaseTimer>> Timers
      ORP_GUARDED_BY(Lock);

  struct Collector {
    uint64_t Id;
    std::function<void(Registry &)> Fn;
  };
  std::vector<Collector> Collectors ORP_GUARDED_BY(Lock);
  uint64_t NextCollectorId ORP_GUARDED_BY(Lock) = 1;

  /// Scoped spinlock guard.
  struct ORP_SCOPED_CAPABILITY Guard {
    Impl &I;
    explicit Guard(Impl &I) ORP_ACQUIRE(I.Lock) : I(I) { I.Lock.lock(); }
    ~Guard() ORP_RELEASE() { I.Lock.unlock(); }
  };

  /// Finds or creates the metric named \p Name in \p Table.
  template <typename M>
  M &lookupOrCreate(std::map<std::string, std::unique_ptr<M>> &Table,
                    const std::string &Name) ORP_EXCLUDES(Lock) {
    Guard G(*this);
    std::unique_ptr<M> &Slot = Table[Name];
    if (!Slot)
      Slot = std::make_unique<M>();
    return *Slot;
  }
};

Registry::Registry() : I(std::make_unique<Impl>()) {}

Registry::~Registry() = default;

Registry &Registry::global() {
  static Registry R;
  return R;
}

Counter &Registry::counter(const std::string &Name) {
  return I->lookupOrCreate(I->Counters, Name);
}

Gauge &Registry::gauge(const std::string &Name) {
  return I->lookupOrCreate(I->Gauges, Name);
}

Histogram &Registry::histogram(const std::string &Name) {
  return I->lookupOrCreate(I->Histograms, Name);
}

PhaseTimer &Registry::timer(const std::string &Name) {
  return I->lookupOrCreate(I->Timers, Name);
}

CollectorHandle Registry::addCollector(std::function<void(Registry &)> Fn) {
  Impl::Guard G(*I);
  uint64_t Id = I->NextCollectorId++;
  I->Collectors.push_back({Id, std::move(Fn)});
  return CollectorHandle(this, Id);
}

void Registry::removeCollector(uint64_t Id) {
  Impl::Guard G(*I);
  for (size_t N = 0; N != I->Collectors.size(); ++N)
    if (I->Collectors[N].Id == Id) {
      I->Collectors.erase(I->Collectors.begin() + N);
      return;
    }
}

void CollectorHandle::release() {
  if (Owner)
    Owner->removeCollector(Id);
  Owner = nullptr;
}

MetricsSnapshot Registry::snapshot() {
  // Run the collectors outside the spinlock: they call back into
  // counter()/gauge() which take it. Copy the list first so a collector
  // registering another collector can't invalidate the iteration.
  std::vector<std::function<void(Registry &)>> Fns;
  {
    Impl::Guard G(*I);
    Fns.reserve(I->Collectors.size());
    for (const Impl::Collector &C : I->Collectors)
      Fns.push_back(C.Fn);
  }
  for (const auto &Fn : Fns)
    Fn(*this);

  // Fold the support log sink's per-level counts in, so every snapshot
  // reports diagnostics traffic without the sink depending on this
  // module (support sits below telemetry in the layering).
  static const char *const LogNames[support::kNumLogLevels] = {
      "log.info", "log.warn", "log.error", "log.fatal"};
  for (unsigned L = 0; L != support::kNumLogLevels; ++L) {
    uint64_t N = support::logMessageCount(static_cast<support::LogLevel>(L));
    Gauge &G = gauge(LogNames[L]);
    G.set(static_cast<int64_t>(N));
  }

  MetricsSnapshot S;
  Impl::Guard G(*I);
  S.Counters.reserve(I->Counters.size());
  for (const auto &KV : I->Counters)
    S.Counters.push_back({KV.first, KV.second->value()});
  S.Gauges.reserve(I->Gauges.size());
  for (const auto &KV : I->Gauges)
    S.Gauges.push_back({KV.first, KV.second->value()});
  S.Histograms.reserve(I->Histograms.size());
  for (const auto &KV : I->Histograms) {
    MetricsSnapshot::HistogramValue H;
    H.Name = KV.first;
    H.Bounds.reserve(Histogram::kBuckets);
    H.Buckets.reserve(Histogram::kBuckets);
    for (size_t B = 0; B != Histogram::kBuckets; ++B) {
      H.Bounds.push_back(Histogram::bucketBound(B));
      H.Buckets.push_back(KV.second->bucketCount(B));
    }
    H.Count = KV.second->count();
    H.Sum = KV.second->sum();
    S.Histograms.push_back(std::move(H));
  }
  S.Timers.reserve(I->Timers.size());
  for (const auto &KV : I->Timers)
    S.Timers.push_back({KV.first, KV.second->count(), KV.second->totalNanos()});
  return S;
}

void Registry::resetValues() {
  Impl::Guard G(*I);
  for (auto &KV : I->Counters)
    KV.second->reset();
  for (auto &KV : I->Gauges)
    KV.second->reset();
  for (auto &KV : I->Histograms)
    KV.second->reset();
  for (auto &KV : I->Timers)
    KV.second->reset();
}
