//===- telemetry/Snapshot.h - Aggregated metrics snapshot ------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MetricsSnapshot: the aggregated, plain-data view of every registered
/// metric at one point in time, with JSON and Prometheus text
/// exporters. Snapshots are value types — take one, then format or
/// diff it without holding anything in the registry.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TELEMETRY_SNAPSHOT_H
#define ORP_TELEMETRY_SNAPSHOT_H

#include <cstdint>
#include <string>
#include <vector>

namespace orp {
namespace telemetry {

/// Aggregated state of every metric in a registry at snapshot time.
/// Each section is sorted by name, so two snapshots of the same
/// registry serialize identically modulo values.
struct MetricsSnapshot {
  /// Exporter format version, bumped on breaking layout changes.
  static constexpr unsigned kVersion = 1;

  struct CounterValue {
    std::string Name;
    uint64_t Value = 0;
  };

  struct GaugeValue {
    std::string Name;
    int64_t Value = 0;
  };

  struct HistogramValue {
    std::string Name;
    /// Per-bucket counts; Bounds[i] is the inclusive upper bound of
    /// Buckets[i], the final bucket being unbounded.
    std::vector<uint64_t> Bounds;
    std::vector<uint64_t> Buckets;
    uint64_t Count = 0;
    uint64_t Sum = 0;
  };

  struct TimerValue {
    std::string Name;
    uint64_t Count = 0;
    uint64_t TotalNanos = 0;
  };

  std::vector<CounterValue> Counters;
  std::vector<GaugeValue> Gauges;
  std::vector<HistogramValue> Histograms;
  std::vector<TimerValue> Timers;

  /// Serializes to a JSON object:
  ///   {"version":1,
  ///    "counters":{name:value,...},
  ///    "gauges":{name:value,...},
  ///    "histograms":{name:{"count":..,"sum":..,
  ///                        "buckets":[{"le":bound,"count":n},...]},...},
  ///    "timers":{name:{"count":..,"total_ns":..},...}}
  /// Deterministic: keys appear in sorted order. \p Pretty adds
  /// newlines and two-space indentation.
  std::string toJson(bool Pretty = true) const;

  /// Serializes to the Prometheus text exposition format. Metric names
  /// are prefixed "orp_" and dots become underscores; histograms emit
  /// cumulative _bucket{le=...} series plus _count and _sum, timers
  /// emit name_count and name_ns_total.
  std::string toPrometheus() const;

  /// Looks up a counter by exact name; returns 0 when absent.
  uint64_t counter(const std::string &Name) const;

  /// Looks up a gauge by exact name; returns 0 when absent.
  int64_t gauge(const std::string &Name) const;

  /// Returns the subset of metrics whose name starts with \p Prefix
  /// (sections stay sorted). The per-session view served by orp-traced:
  /// filterByPrefix("session.<name>.").
  MetricsSnapshot filterByPrefix(const std::string &Prefix) const;
};

/// Serialization applied by writeSnapshot().
enum class SnapshotFormat {
  Json,        ///< Pretty-printed JSON object (toJson(true)).
  JsonCompact, ///< One-line JSON (toJson(false)) — interval/JSONL mode.
  Prometheus,  ///< Prometheus text exposition (toPrometheus()).
};

/// Writes \p S to \p Path in \p Format; "-" means stdout. \p Append
/// appends to an existing file (the --metrics-interval JSONL stream)
/// instead of truncating. Returns false with \p Err set on I/O errors.
bool writeSnapshot(const MetricsSnapshot &S, const std::string &Path,
                   SnapshotFormat Format, bool Append, std::string &Err);

} // namespace telemetry
} // namespace orp

#endif // ORP_TELEMETRY_SNAPSHOT_H
