//===- telemetry/Snapshot.cpp - Snapshot exporters ------------------------===//

#include "telemetry/Snapshot.h"

// orp-lint: allow(endian-io): writeSnapshot() emits already-serialized
// text (JSON / Prometheus exposition); there are no fixed-width binary
// fields to byte-order.

#include <algorithm>
#include <cstdio>

using namespace orp;
using namespace orp::telemetry;

namespace {

/// Minimal JSON string escaping. Metric names are ASCII identifiers in
/// practice; this covers the worst case anyway.
std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string u64(uint64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%llu", static_cast<unsigned long long>(V));
  return Buf;
}

std::string i64(int64_t V) {
  char Buf[24];
  std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
  return Buf;
}

/// Tiny incremental JSON writer handling commas and optional
/// pretty-printing, so the exporter body reads linearly.
class JsonWriter {
public:
  explicit JsonWriter(bool Pretty) : Pretty(Pretty) {}

  void openObject() {
    value("{");
    ++Depth;
    First = true;
  }
  void closeObject() {
    --Depth;
    if (!First)
      newline();
    Out += '}';
    First = false;
  }
  void openArray() {
    value("[");
    ++Depth;
    First = true;
  }
  void closeArray() {
    --Depth;
    if (!First)
      newline();
    Out += ']';
    First = false;
  }

  /// Starts a "key": entry (comma-separated from the previous one).
  void key(const std::string &K) {
    comma();
    newline();
    Out += '"';
    Out += jsonEscape(K);
    Out += Pretty ? "\": " : "\":";
    Pending = true;
  }

  /// Emits a raw value token (number, or an opening brace via
  /// openObject()).
  void value(const std::string &V) {
    if (!Pending) {
      comma();
      if (Depth > 0)
        newline();
    }
    Pending = false;
    Out += V;
    First = false;
  }

  std::string take() { return std::move(Out); }

private:
  void comma() {
    if (!First)
      Out += ',';
  }
  void newline() {
    if (!Pretty)
      return;
    Out += '\n';
    Out.append(static_cast<size_t>(Depth) * 2, ' ');
  }

  std::string Out;
  bool Pretty;
  bool First = true;
  bool Pending = false;
  int Depth = 0;
};

/// Prometheus-safe metric name: "orp_" prefix, dots and dashes to
/// underscores.
std::string promName(const std::string &Name) {
  std::string Out = "orp_";
  Out.reserve(Name.size() + 4);
  for (char C : Name)
    Out += (C == '.' || C == '-') ? '_' : C;
  return Out;
}

} // namespace

std::string MetricsSnapshot::toJson(bool Pretty) const {
  JsonWriter W(Pretty);
  W.openObject();
  W.key("version");
  W.value(u64(kVersion));

  W.key("counters");
  W.openObject();
  for (const CounterValue &C : Counters) {
    W.key(C.Name);
    W.value(u64(C.Value));
  }
  W.closeObject();

  W.key("gauges");
  W.openObject();
  for (const GaugeValue &G : Gauges) {
    W.key(G.Name);
    W.value(i64(G.Value));
  }
  W.closeObject();

  W.key("histograms");
  W.openObject();
  for (const HistogramValue &H : Histograms) {
    W.key(H.Name);
    W.openObject();
    W.key("count");
    W.value(u64(H.Count));
    W.key("sum");
    W.value(u64(H.Sum));
    W.key("buckets");
    W.openArray();
    for (size_t B = 0; B != H.Buckets.size(); ++B) {
      // Skip empty buckets: 32 fixed buckets per histogram would bury
      // the signal; "le": null marks the unbounded overflow bucket.
      if (!H.Buckets[B])
        continue;
      W.openObject();
      W.key("le");
      bool Unbounded = B + 1 == H.Buckets.size();
      W.value(Unbounded ? "null" : u64(H.Bounds[B]));
      W.key("count");
      W.value(u64(H.Buckets[B]));
      W.closeObject();
    }
    W.closeArray();
    W.closeObject();
  }
  W.closeObject();

  W.key("timers");
  W.openObject();
  for (const TimerValue &T : Timers) {
    W.key(T.Name);
    W.openObject();
    W.key("count");
    W.value(u64(T.Count));
    W.key("total_ns");
    W.value(u64(T.TotalNanos));
    W.closeObject();
  }
  W.closeObject();

  W.closeObject();
  std::string Out = W.take();
  Out += '\n';
  return Out;
}

std::string MetricsSnapshot::toPrometheus() const {
  std::string Out;
  for (const CounterValue &C : Counters) {
    std::string N = promName(C.Name);
    Out += "# TYPE " + N + " counter\n";
    Out += N + " " + u64(C.Value) + "\n";
  }
  for (const GaugeValue &G : Gauges) {
    std::string N = promName(G.Name);
    Out += "# TYPE " + N + " gauge\n";
    Out += N + " " + i64(G.Value) + "\n";
  }
  for (const HistogramValue &H : Histograms) {
    std::string N = promName(H.Name);
    Out += "# TYPE " + N + " histogram\n";
    uint64_t Cum = 0;
    for (size_t B = 0; B != H.Buckets.size(); ++B) {
      Cum += H.Buckets[B];
      bool Unbounded = B + 1 == H.Buckets.size();
      // Emit only the buckets that advance the cumulative count, plus
      // the mandatory +Inf bucket.
      if (!H.Buckets[B] && !Unbounded)
        continue;
      Out += N + "_bucket{le=\"" +
             (Unbounded ? std::string("+Inf") : u64(H.Bounds[B])) + "\"} " +
             u64(Cum) + "\n";
    }
    Out += N + "_count " + u64(H.Count) + "\n";
    Out += N + "_sum " + u64(H.Sum) + "\n";
  }
  for (const TimerValue &T : Timers) {
    std::string N = promName(T.Name);
    Out += "# TYPE " + N + "_count counter\n";
    Out += N + "_count " + u64(T.Count) + "\n";
    Out += "# TYPE " + N + "_ns_total counter\n";
    Out += N + "_ns_total " + u64(T.TotalNanos) + "\n";
  }
  return Out;
}

uint64_t MetricsSnapshot::counter(const std::string &Name) const {
  for (const CounterValue &C : Counters)
    if (C.Name == Name)
      return C.Value;
  return 0;
}

int64_t MetricsSnapshot::gauge(const std::string &Name) const {
  for (const GaugeValue &G : Gauges)
    if (G.Name == Name)
      return G.Value;
  return 0;
}

MetricsSnapshot
MetricsSnapshot::filterByPrefix(const std::string &Prefix) const {
  auto Matches = [&](const std::string &Name) {
    return Name.compare(0, Prefix.size(), Prefix) == 0;
  };
  MetricsSnapshot Out;
  for (const CounterValue &C : Counters)
    if (Matches(C.Name))
      Out.Counters.push_back(C);
  for (const GaugeValue &G : Gauges)
    if (Matches(G.Name))
      Out.Gauges.push_back(G);
  for (const HistogramValue &H : Histograms)
    if (Matches(H.Name))
      Out.Histograms.push_back(H);
  for (const TimerValue &T : Timers)
    if (Matches(T.Name))
      Out.Timers.push_back(T);
  return Out;
}

bool telemetry::writeSnapshot(const MetricsSnapshot &S,
                              const std::string &Path, SnapshotFormat Format,
                              bool Append, std::string &Err) {
  std::string Text;
  switch (Format) {
  case SnapshotFormat::Json:
    Text = S.toJson(true);
    break;
  case SnapshotFormat::JsonCompact:
    Text = S.toJson(false);
    break;
  case SnapshotFormat::Prometheus:
    Text = S.toPrometheus();
    break;
  }
  if (Path == "-") {
    std::fwrite(Text.data(), 1, Text.size(), stdout);
    return true;
  }
  std::FILE *Out = std::fopen(Path.c_str(), Append ? "ab" : "wb");
  if (!Out) {
    Err = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), Out) == Text.size();
  if (std::fclose(Out) != 0)
    Ok = false;
  if (!Ok)
    Err = "short write to '" + Path + "'";
  return Ok;
}
