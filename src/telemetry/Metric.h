//===- telemetry/Metric.h - Sharded lock-free metric cells -----*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metric primitives behind the telemetry registry: monotonic
/// counters, gauges, fixed-bucket histograms and phase timers.
///
/// Hot-path cost model: an increment is one relaxed atomic RMW on a
/// per-thread shard (no locks, no shared cache line between threads in
/// the common case). Aggregation happens only at snapshot time, which
/// walks every shard and sums. Nothing here allocates after
/// construction.
///
/// Sharding: each metric owns kShards cache-line-aligned cells. A
/// thread picks its shard once (thread-local round-robin assignment)
/// and keeps hitting it, so two pipeline threads bump different cache
/// lines. Eight shards cover the pipeline's worst case (1 driver + 4
/// WHOMP dimension workers + LEAP shards); collisions beyond that are
/// correct, just slower.
///
/// The global enabled() switch gates recording, not registration:
/// metrics exist either way, and with telemetry off an increment is a
/// relaxed load + branch. Profiled output never depends on any of
/// these values — they are observation only.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TELEMETRY_METRIC_H
#define ORP_TELEMETRY_METRIC_H

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace orp {
namespace telemetry {

/// Process-wide switch gating metric recording. Defaults to on; the
/// benchmark harness flips it off to measure the disabled-path cost.
/// Reads are relaxed — flipping mid-run is safe but takes effect on
/// each thread "soon", not instantaneously.
bool enabled();

/// Turns metric recording on or off.
void setEnabled(bool On);

namespace detail {
/// Shard count per metric. Power of two so the modulo folds to a mask.
constexpr size_t kShards = 8;

/// Cache-line size used for shard alignment (true for every target we
/// build on; over-aligning merely wastes a little space).
constexpr size_t kCacheLine = 64;

/// Returns this thread's shard index in [0, kShards). Assigned
/// round-robin on first use per thread.
size_t threadShard();

/// One padded counter cell. The padding keeps neighbouring shards on
/// distinct cache lines so concurrent increments don't false-share.
struct alignas(kCacheLine) Cell {
  std::atomic<uint64_t> V{0};
};
} // namespace detail

/// Monotonic counter. add() is a single relaxed fetch_add on the
/// calling thread's shard; value() sums all shards.
class Counter {
public:
  Counter() = default;
  Counter(const Counter &) = delete;
  Counter &operator=(const Counter &) = delete;

  /// Adds \p N (hot path). No-op while telemetry is disabled.
  void add(uint64_t N = 1) {
    if (!enabled())
      return;
    Cells[detail::threadShard()].V.fetch_add(N, std::memory_order_relaxed);
  }

  /// Sums the shards. Exact when the writers are quiescent; otherwise a
  /// consistent-enough monotone reading (never observes a decrease).
  uint64_t value() const {
    uint64_t Sum = 0;
    for (const detail::Cell &C : Cells)
      Sum += C.V.load(std::memory_order_relaxed);
    return Sum;
  }

  /// Zeroes every shard (test/bench support; not thread-safe against
  /// concurrent add()).
  void reset() {
    for (detail::Cell &C : Cells)
      C.V.store(0, std::memory_order_relaxed);
  }

private:
  detail::Cell Cells[detail::kShards];
};

/// Point-in-time signed value (queue depth, live objects, utilization
/// per mille). Writers race by design: set() is last-writer-wins,
/// updateMax() keeps the largest value ever offered.
class Gauge {
public:
  Gauge() = default;
  Gauge(const Gauge &) = delete;
  Gauge &operator=(const Gauge &) = delete;

  /// Stores \p V (gated on enabled() like every recording op).
  void set(int64_t V) {
    if (!enabled())
      return;
    Value.store(V, std::memory_order_relaxed);
  }

  /// Adds \p Delta to the current value.
  void add(int64_t Delta) {
    if (!enabled())
      return;
    Value.fetch_add(Delta, std::memory_order_relaxed);
  }

  /// Raises the gauge to \p V if it is currently lower.
  void updateMax(int64_t V) {
    if (!enabled())
      return;
    int64_t Cur = Value.load(std::memory_order_relaxed);
    while (Cur < V && !Value.compare_exchange_weak(
                          Cur, V, std::memory_order_relaxed,
                          std::memory_order_relaxed)) {
    }
  }

  int64_t value() const { return Value.load(std::memory_order_relaxed); }

  void reset() { Value.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> Value{0};
};

/// Histogram over power-of-two buckets: bucket i counts samples whose
/// value needs i significand bits, i.e. upper bounds 0, 1, 3, 7, ...,
/// 2^30-1, +inf. Fixed 32 buckets — wide enough for nanosecond
/// latencies and byte sizes alike without configuration.
class Histogram {
public:
  static constexpr size_t kBuckets = 32;

  Histogram() = default;
  Histogram(const Histogram &) = delete;
  Histogram &operator=(const Histogram &) = delete;

  /// Maps \p V to its bucket: 0 -> 0, otherwise 1 + floor(log2(V)),
  /// clamped to the last (overflow) bucket.
  static size_t bucketOf(uint64_t V) {
    size_t B = 0;
    while (V) {
      ++B;
      V >>= 1;
    }
    return B < kBuckets ? B : kBuckets - 1;
  }

  /// Inclusive upper bound of bucket \p I (2^I - 1); the last bucket is
  /// unbounded and reported as +inf by the exporters.
  static uint64_t bucketBound(size_t I) {
    return (I + 1 >= 64) ? ~uint64_t(0) : ((uint64_t(1) << I) - 1);
  }

  /// Records one sample (hot path): two relaxed fetch_adds on this
  /// thread's shard row.
  void record(uint64_t V) {
    if (!enabled())
      return;
    size_t S = detail::threadShard();
    Rows[S].B[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    Sums[S].V.fetch_add(V, std::memory_order_relaxed);
  }

  /// Sums bucket \p I across shards.
  uint64_t bucketCount(size_t I) const {
    uint64_t Sum = 0;
    for (const Row &R : Rows)
      Sum += R.B[I].load(std::memory_order_relaxed);
    return Sum;
  }

  /// Total number of recorded samples.
  uint64_t count() const {
    uint64_t Sum = 0;
    for (size_t I = 0; I != kBuckets; ++I)
      Sum += bucketCount(I);
    return Sum;
  }

  /// Sum of all recorded sample values.
  uint64_t sum() const {
    uint64_t Total = 0;
    for (const detail::Cell &C : Sums)
      Total += C.V.load(std::memory_order_relaxed);
    return Total;
  }

  void reset() {
    for (Row &R : Rows)
      for (std::atomic<uint64_t> &B : R.B)
        B.store(0, std::memory_order_relaxed);
    for (detail::Cell &C : Sums)
      C.V.store(0, std::memory_order_relaxed);
  }

private:
  /// One shard's bucket row, padded out to its own cache lines.
  struct alignas(detail::kCacheLine) Row {
    std::atomic<uint64_t> B[kBuckets]{};
  };

  Row Rows[detail::kShards];
  detail::Cell Sums[detail::kShards];
};

/// Accumulates (invocation count, total wall nanoseconds) for a named
/// pipeline phase. Use ScopedTimer to time a scope.
class PhaseTimer {
public:
  PhaseTimer() = default;
  PhaseTimer(const PhaseTimer &) = delete;
  PhaseTimer &operator=(const PhaseTimer &) = delete;

  /// Records one completed phase run of \p Nanos wall time.
  void record(uint64_t Nanos) {
    if (!enabled())
      return;
    size_t S = detail::threadShard();
    Counts[S].V.fetch_add(1, std::memory_order_relaxed);
    Totals[S].V.fetch_add(Nanos, std::memory_order_relaxed);
  }

  uint64_t count() const {
    uint64_t Sum = 0;
    for (const detail::Cell &C : Counts)
      Sum += C.V.load(std::memory_order_relaxed);
    return Sum;
  }

  uint64_t totalNanos() const {
    uint64_t Sum = 0;
    for (const detail::Cell &C : Totals)
      Sum += C.V.load(std::memory_order_relaxed);
    return Sum;
  }

  void reset() {
    for (detail::Cell &C : Counts)
      C.V.store(0, std::memory_order_relaxed);
    for (detail::Cell &C : Totals)
      C.V.store(0, std::memory_order_relaxed);
  }

private:
  detail::Cell Counts[detail::kShards];
  detail::Cell Totals[detail::kShards];
};

/// RAII timer: records the enclosing scope's wall time into a
/// PhaseTimer on destruction. Skips the clock reads entirely while
/// telemetry is disabled.
class ScopedTimer {
public:
  explicit ScopedTimer(PhaseTimer &T)
      : Timer(&T), Armed(enabled()),
        Start(Armed ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point()) {}

  ScopedTimer(const ScopedTimer &) = delete;
  ScopedTimer &operator=(const ScopedTimer &) = delete;

  ~ScopedTimer() {
    if (!Armed)
      return;
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    Timer->record(static_cast<uint64_t>(Ns));
  }

private:
  PhaseTimer *Timer;
  bool Armed;
  std::chrono::steady_clock::time_point Start;
};

/// RAII timer recording the enclosing scope's wall nanoseconds as one
/// Histogram sample — use when the latency *distribution* matters
/// (e.g. per-block decode times), not just the total.
class ScopedHistogramTimer {
public:
  explicit ScopedHistogramTimer(Histogram &H)
      : Hist(&H), Armed(enabled()),
        Start(Armed ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point()) {}

  ScopedHistogramTimer(const ScopedHistogramTimer &) = delete;
  ScopedHistogramTimer &operator=(const ScopedHistogramTimer &) = delete;

  ~ScopedHistogramTimer() {
    if (!Armed)
      return;
    auto Ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - Start)
                  .count();
    Hist->record(static_cast<uint64_t>(Ns));
  }

private:
  Histogram *Hist;
  bool Armed;
  std::chrono::steady_clock::time_point Start;
};

} // namespace telemetry
} // namespace orp

#endif // ORP_TELEMETRY_METRIC_H
