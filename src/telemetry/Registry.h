//===- telemetry/Registry.h - Named metric registry ------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide metric registry. Modules obtain metrics by name
/// once (cold: registration takes a spinlock) and then record through
/// the returned reference lock-free forever — metrics are never
/// destroyed until the registry is.
///
/// Two ways to get data in:
///
///   * Direct metrics (counter()/gauge()/histogram()/timer()): for
///     events recorded where they happen — per-batch, per-block,
///     per-phase. The hot path is the sharded relaxed atomic in
///     Metric.h.
///
///   * Collectors (addCollector()): for modules that already keep
///     their own plain counters on the thread that owns them (OMC
///     stats, Sequitur slab counts, queue telemetry). A collector is a
///     callback run at snapshot() time that publishes those aggregates
///     into gauges. This keeps per-access paths at a plain member
///     increment — cheaper than any atomic — at the price of a
///     snapshot discipline:
///
/// Snapshot discipline: snapshot() runs the collectors on the calling
/// thread. Call it from the thread driving the pipeline (between
/// batches, or after finish()), or while the pipeline is quiescent.
/// Collectors read module state that is only guaranteed coherent from
/// that thread.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_TELEMETRY_REGISTRY_H
#define ORP_TELEMETRY_REGISTRY_H

#include "telemetry/Metric.h"
#include "telemetry/Snapshot.h"

#include <functional>
#include <memory>
#include <string>

namespace orp {
namespace telemetry {

class Registry;

/// RAII registration of a snapshot-time collector callback. The
/// callback stays installed until the handle is destroyed or
/// release()d; handles are movable so modules can hold them as
/// members.
class CollectorHandle {
public:
  CollectorHandle() = default;
  CollectorHandle(CollectorHandle &&O) noexcept
      : Owner(O.Owner), Id(O.Id) {
    O.Owner = nullptr;
  }
  CollectorHandle &operator=(CollectorHandle &&O) noexcept {
    if (this != &O) {
      release();
      Owner = O.Owner;
      Id = O.Id;
      O.Owner = nullptr;
    }
    return *this;
  }
  CollectorHandle(const CollectorHandle &) = delete;
  CollectorHandle &operator=(const CollectorHandle &) = delete;
  ~CollectorHandle() { release(); }

  /// Unregisters the collector now (idempotent).
  void release();

private:
  friend class Registry;
  CollectorHandle(Registry *Owner, uint64_t Id) : Owner(Owner), Id(Id) {}

  Registry *Owner = nullptr;
  uint64_t Id = 0;
};

/// Named registry of counters, gauges, histograms and phase timers.
///
/// Lookup-or-create is the cold path (spinlock + map); the returned
/// references are stable for the registry's lifetime, so callers cache
/// them and the hot path never touches the registry again.
class Registry {
public:
  Registry();
  ~Registry();
  Registry(const Registry &) = delete;
  Registry &operator=(const Registry &) = delete;

  /// The process-wide registry used by the pipeline instrumentation.
  static Registry &global();

  /// Returns the counter named \p Name, creating it on first use.
  Counter &counter(const std::string &Name);

  /// Returns the gauge named \p Name, creating it on first use.
  Gauge &gauge(const std::string &Name);

  /// Returns the histogram named \p Name, creating it on first use.
  Histogram &histogram(const std::string &Name);

  /// Returns the phase timer named \p Name, creating it on first use.
  PhaseTimer &timer(const std::string &Name);

  /// Installs \p Fn to run at the start of every snapshot(); use it to
  /// publish module-local aggregates into gauges. The registration
  /// lives until the returned handle dies. Collectors run in
  /// registration order; two collectors writing the same gauge are
  /// last-writer-wins.
  CollectorHandle addCollector(std::function<void(Registry &)> Fn);

  /// Runs the collectors, then aggregates every metric into a plain
  /// snapshot. See the snapshot discipline in the file comment. Also
  /// folds the support log sink's per-level message counts in as
  /// log.{info,warn,error,fatal} counters.
  MetricsSnapshot snapshot();

  /// Zeroes every metric's value (names and registrations survive).
  /// Test/bench support; call only while recording threads are
  /// quiescent.
  void resetValues();

private:
  friend class CollectorHandle;
  void removeCollector(uint64_t Id);

  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace telemetry
} // namespace orp

#endif // ORP_TELEMETRY_REGISTRY_H
