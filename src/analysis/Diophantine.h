//===- analysis/Diophantine.h - Integer linear equation solving -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "omega-test-like linear programming" machinery of the paper's
/// Section 4.2.1: detecting location conflicts between two LMADs means
/// solving, over the integers,
///
///     start1 + stride1 * k1 = start2 + stride2 * k2,
///     0 <= k1 < count1,  0 <= k2 < count2
///
/// simultaneously in every tuple dimension, with a time-order side
/// constraint. The solution set of each equation over (k1, k2) is empty,
/// a lattice line, or the whole plane; systems are solved by successive
/// restriction. (Hoeflinger & Paek, "A comparative analysis of
/// dependence testing mechanisms", is the reference the paper cites.)
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ANALYSIS_DIOPHANTINE_H
#define ORP_ANALYSIS_DIOPHANTINE_H

#include <cstdint>
#include <optional>

namespace orp {
namespace analysis {

/// Result of extended Euclid: G = gcd(A, B) (G >= 0) with
/// A * X + B * Y == G.
struct ExtGcd {
  int64_t G;
  int64_t X;
  int64_t Y;
};

/// Computes the extended gcd of \p A and \p B (either may be negative or
/// zero; gcd(0, 0) == 0).
ExtGcd extendedGcd(int64_t A, int64_t B);

/// The solution set of a system of linear equations over (K1, K2) in Z^2.
struct Solution2D {
  enum class Kind {
    Empty, ///< No integer solutions.
    Point, ///< Exactly (P1, P2).
    Line,  ///< (P1, P2) + T * (U1, U2) for all integer T.
    Plane, ///< Every (K1, K2).
  };

  Kind K = Kind::Plane;
  int64_t P1 = 0;
  int64_t P2 = 0;
  int64_t U1 = 0;
  int64_t U2 = 0;

  static Solution2D empty() { return {Kind::Empty, 0, 0, 0, 0}; }
  static Solution2D plane() { return {Kind::Plane, 0, 0, 0, 0}; }
  static Solution2D point(int64_t P1, int64_t P2) {
    return {Kind::Point, P1, P2, 0, 0};
  }
  static Solution2D line(int64_t P1, int64_t P2, int64_t U1, int64_t U2) {
    return {Kind::Line, P1, P2, U1, U2};
  }
};

/// Returns the integer solutions of A*K1 + B*K2 == C.
Solution2D solveLinear2(int64_t A, int64_t B, int64_t C);

/// Restricts \p Current by the additional equation A*K1 + B*K2 == C.
Solution2D restrict2(const Solution2D &Current, int64_t A, int64_t B,
                     int64_t C);

/// A closed integer interval; empty when Lo > Hi.
struct IntInterval {
  int64_t Lo;
  int64_t Hi;

  bool empty() const { return Lo > Hi; }
  /// Number of integers in the interval (0 when empty).
  uint64_t size() const {
    return empty() ? 0 : static_cast<uint64_t>(Hi - Lo) + 1;
  }
  IntInterval intersect(const IntInterval &O) const {
    return {Lo > O.Lo ? Lo : O.Lo, Hi < O.Hi ? Hi : O.Hi};
  }
};

/// Returns the integers T with Lo <= P + U*T <= Hi, or std::nullopt when
/// that set is all of Z (U == 0 and P in range). Returns an empty
/// interval when no T qualifies.
std::optional<IntInterval> boundParameter(int64_t P, int64_t U, int64_t Lo,
                                          int64_t Hi);

/// Returns the integers T with P + U*T <= Bound (strict form is obtained
/// by passing Bound-1), or std::nullopt for all of Z.
std::optional<IntInterval> upperBoundParameter(int64_t P, int64_t U,
                                               int64_t Bound);

} // namespace analysis
} // namespace orp

#endif // ORP_ANALYSIS_DIOPHANTINE_H
