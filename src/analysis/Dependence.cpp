//===- analysis/Dependence.cpp - LEAP MDF post-processor -----------------===//

#include "analysis/Dependence.h"

#include "analysis/Diophantine.h"
#include "core/Decomposition.h"

#include <algorithm>
#include <cassert>
#include <vector>

using namespace orp;
using namespace orp::analysis;
using leap::DimObject;
using leap::DimOffset;
using leap::DimTime;

namespace {

constexpr int64_t Huge = int64_t(1) << 62;

int64_t floorDiv128(__int128 A, __int128 B) {
  assert(B != 0 && "division by zero");
  __int128 Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  if (Q > Huge)
    return Huge;
  if (Q < -Huge)
    return -Huge;
  return static_cast<int64_t>(Q);
}

int64_t ceilDiv128(__int128 A, __int128 B) {
  assert(B != 0 && "division by zero");
  __int128 Q = A / B;
  if ((A % B != 0) && ((A < 0) == (B < 0)))
    ++Q;
  if (Q > Huge)
    return Huge;
  if (Q < -Huge)
    return -Huge;
  return static_cast<int64_t>(Q);
}

/// Time of the K-th point of \p L (128-bit to avoid overflow with
/// unclamped lattice parameters).
__int128 timeAt(const lmad::Lmad &L, __int128 K) {
  return static_cast<__int128>(L.Start[DimTime]) +
         static_cast<__int128>(L.Stride[DimTime]) * K;
}

} // namespace

void orp::analysis::collectConflictRuns(const lmad::Lmad &Store,
                                        const lmad::Lmad &Load,
                                        std::vector<ConflictRun> &Out) {
  assert(Store.Dims == 3 && Load.Dims == 3 && "expected 3-d LEAP LMADs");
  if (Store.Count == 0 || Load.Count == 0)
    return;

  // Location equality in the object and offset dimensions:
  //   Store.Stride[d]*k1 - Load.Stride[d]*k2 = Load.Start[d]-Store.Start[d]
  Solution2D Sol = Solution2D::plane();
  for (unsigned D : {static_cast<unsigned>(DimObject),
                     static_cast<unsigned>(DimOffset)}) {
    Sol = restrict2(Sol, Store.Stride[D], -Load.Stride[D],
                    Load.Start[D] - Store.Start[D]);
    if (Sol.K == Solution2D::Kind::Empty)
      return;
  }

  int64_t N1 = static_cast<int64_t>(Store.Count) - 1;
  int64_t N2 = static_cast<int64_t>(Load.Count) - 1;

  switch (Sol.K) {
  case Solution2D::Kind::Empty:
    return;

  case Solution2D::Kind::Point: {
    if (Sol.P1 < 0 || Sol.P1 > N1 || Sol.P2 < 0 || Sol.P2 > N2)
      return;
    if (timeAt(Store, Sol.P1) < timeAt(Load, Sol.P2))
      Out.push_back(ConflictRun{Sol.P2, Sol.P2, 1});
    return;
  }

  case Solution2D::Kind::Plane: {
    // Every store execution hits the same single location as every load
    // execution (all location strides zero). A load at k2 conflicts iff
    // the earliest store precedes it. Time strides are non-negative by
    // construction (timestamps increase), so the earliest store is k1=0.
    __int128 StoreMin = timeAt(Store, 0);
    __int128 C0 = timeAt(Load, 0);
    int64_t Ct = Load.Stride[DimTime];
    if (Ct == 0) {
      if (C0 > StoreMin)
        Out.push_back(ConflictRun{0, N2, 1});
      return;
    }
    int64_t KMin = floorDiv128(StoreMin - C0, Ct) + 1;
    KMin = std::max<int64_t>(KMin, 0);
    if (KMin <= N2)
      Out.push_back(ConflictRun{KMin, N2, 1});
    return;
  }

  case Solution2D::Kind::Line: {
    // Parameterized family (k1, k2) = (P1 + U1*T, P2 + U2*T).
    IntInterval T{-Huge, Huge};
    if (auto B1 = boundParameter(Sol.P1, Sol.U1, 0, N1))
      T = T.intersect(*B1);
    if (auto B2 = boundParameter(Sol.P2, Sol.U2, 0, N2))
      T = T.intersect(*B2);
    if (T.empty())
      return;

    // Read-after-write: storeTime(k1(T)) < loadTime(k2(T)), i.e.
    // C0 + C1*T <= -1 with
    __int128 C0 = timeAt(Store, Sol.P1) - timeAt(Load, Sol.P2);
    __int128 C1 =
        static_cast<__int128>(Store.Stride[DimTime]) * Sol.U1 -
        static_cast<__int128>(Load.Stride[DimTime]) * Sol.U2;
    if (C1 == 0) {
      if (C0 >= 0)
        return;
    } else if (C1 > 0) {
      T = T.intersect(IntInterval{-Huge, floorDiv128(-1 - C0, C1)});
    } else {
      T = T.intersect(IntInterval{ceilDiv128(-1 - C0, C1), Huge});
    }
    if (T.empty())
      return;

    if (Sol.U2 == 0) {
      Out.push_back(ConflictRun{Sol.P2, Sol.P2, 1});
      return;
    }
    // k2 = P2 + U2*T over the T interval: an arithmetic progression.
    int64_t K2A = Sol.P2 + Sol.U2 * T.Lo;
    int64_t K2B = Sol.P2 + Sol.U2 * T.Hi;
    int64_t Step = Sol.U2 < 0 ? -Sol.U2 : Sol.U2;
    Out.push_back(ConflictRun{std::min(K2A, K2B), std::max(K2A, K2B),
                              Step});
    return;
  }
  }
}

namespace {

/// Number of elements of the progression Lo, Lo+Step, ..., Hi that fall
/// inside the closed interval [A, B].
uint64_t progressionInRange(const ConflictRun &Run, int64_t A, int64_t B) {
  int64_t Lo = std::max(Run.Lo, A);
  int64_t Hi = std::min(Run.Hi, B);
  if (Lo > Hi)
    return 0;
  // First element >= Lo and last element <= Hi, on the Run grid.
  int64_t KMin = (Lo - Run.Lo + Run.Step - 1) / Run.Step;
  int64_t KMax = (Hi - Run.Lo) / Run.Step;
  return KMax >= KMin ? static_cast<uint64_t>(KMax - KMin) + 1 : 0;
}

} // namespace

uint64_t orp::analysis::countUnionConflicts(std::vector<ConflictRun> Runs) {
  if (Runs.empty())
    return 0;
  // Merge the unit-step runs into disjoint intervals.
  std::vector<ConflictRun> Unit, Coarse;
  for (const ConflictRun &R : Runs) {
    if (R.Step == 1 || R.Lo == R.Hi)
      Unit.push_back(ConflictRun{R.Lo, R.Hi, 1});
    else
      Coarse.push_back(R);
  }
  std::sort(Unit.begin(), Unit.end(),
            [](const ConflictRun &A, const ConflictRun &B) {
              return A.Lo < B.Lo;
            });
  std::vector<ConflictRun> Merged;
  for (const ConflictRun &R : Unit) {
    if (!Merged.empty() && R.Lo <= Merged.back().Hi + 1)
      Merged.back().Hi = std::max(Merged.back().Hi, R.Hi);
    else
      Merged.push_back(R);
  }
  uint64_t Count = 0;
  for (const ConflictRun &R : Merged)
    Count += R.size();
  // Coarse runs: count the elements not already covered by the merged
  // unit intervals. Overlap between two coarse runs is not deduplicated
  // (upper bound; see header).
  for (const ConflictRun &R : Coarse) {
    uint64_t Covered = 0;
    for (const ConflictRun &I : Merged)
      Covered += progressionInRange(R, I.Lo, I.Hi);
    Count += R.size() - Covered;
  }
  return Count;
}

uint64_t orp::analysis::countConflictingLoads(const lmad::Lmad &Store,
                                              const lmad::Lmad &Load) {
  std::vector<ConflictRun> Runs;
  collectConflictRuns(Store, Load, Runs);
  return countUnionConflicts(std::move(Runs));
}

MdfMap LeapDependenceAnalyzer::computeMdf() const {
  // Bucket substreams by group so only same-group pairs are intersected.
  struct SubRef {
    trace::InstrId Instr;
    const lmad::LmadCompressor *Compressor;
    bool IsStore;
  };
  std::map<omc::GroupId, std::vector<SubRef>> ByGroup;
  const auto &Instrs = Profile.instructions();
  Profile.forEachSubstream([&](const core::VerticalKey &Key,
                               const lmad::LmadCompressor &Compressor) {
    auto It = Instrs.find(Key.Instr);
    assert(It != Instrs.end() && "substream for unseen instruction");
    ByGroup[Key.Group].push_back(
        SubRef{Key.Instr, &Compressor, It->second.isStore()});
  });

  // Conflict counts only ever range over the points the LMADs captured,
  // so the frequency denominator must be the captured load executions as
  // well: once a stream overflows its descriptor budget, the captured
  // prefix acts as a sample and the ratio extrapolates the rate (the
  // paper's "sample of the initial part of the original data stream").
  // For fully captured streams this equals the exact #conflicts /
  // #executions formula.
  std::map<InstrPair, uint64_t> Conflicts;
  std::unordered_map<trace::InstrId, uint64_t> CapturedLoadExecs;
  Profile.forEachSubstream([&](const core::VerticalKey &Key,
                               const lmad::LmadCompressor &Compressor) {
    if (!Instrs.at(Key.Instr).isStore())
      CapturedLoadExecs[Key.Instr] += Compressor.capturedPoints();
  });

  for (const auto &[Group, Subs] : ByGroup) {
    for (const SubRef &St : Subs) {
      if (!St.IsStore)
        continue;
      for (const SubRef &Ld : Subs) {
        if (Ld.IsStore)
          continue;
        // For each load descriptor, union the conflict runs across all
        // store descriptors so a load execution conflicting with several
        // store fragments is counted once.
        uint64_t Count = 0;
        for (const lmad::Lmad &B : Ld.Compressor->lmads()) {
          std::vector<ConflictRun> Runs;
          for (const lmad::Lmad &A : St.Compressor->lmads())
            collectConflictRuns(A, B, Runs);
          Count += countUnionConflicts(std::move(Runs));
        }
        if (Count != 0)
          Conflicts[{St.Instr, Ld.Instr}] += Count;
      }
    }
  }

  MdfMap Result;
  for (const auto &[Pair, Count] : Conflicts) {
    uint64_t Execs = CapturedLoadExecs.at(Pair.second);
    assert(Execs > 0 && "conflicting load without captured executions");
    uint64_t Capped = std::min(Count, Execs);
    Result[Pair] = static_cast<double>(Capped) / static_cast<double>(Execs);
  }
  return Result;
}
