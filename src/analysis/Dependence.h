//===- analysis/Dependence.h - LEAP MDF post-processor ---------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory-dependence post-processor applied to collected LMADs
/// (Section 4.2.1). For every (store, load) pair whose substreams share
/// a group, conflicts are detected by solving
///
///     start1 + stride1*k1 = start2 + stride2*k2,
///     k1 < count1, k2 < count2
///
/// in the object and offset dimensions simultaneously, with the
/// read-after-write side condition time_store(k1) < time_load(k2);
/// "because of the linear structure of LMADs, the above computation can
/// be sped up using some omega-test-like linear programming algorithms".
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ANALYSIS_DEPENDENCE_H
#define ORP_ANALYSIS_DEPENDENCE_H

#include "analysis/Mdf.h"
#include "leap/Leap.h"
#include "lmad/Lmad.h"

#include <cstdint>

namespace orp {
namespace analysis {

/// One arithmetic progression of conflicting load indices within a load
/// descriptor's index space: Lo, Lo+Step, ..., Hi (Step >= 1, Lo <= Hi).
struct ConflictRun {
  int64_t Lo;
  int64_t Hi;
  int64_t Step;

  /// Number of indices in the run.
  uint64_t size() const {
    return static_cast<uint64_t>((Hi - Lo) / Step) + 1;
  }
};

/// Appends to \p Out the runs of load indices (k2 of \p Load) whose
/// execution reads a location that some execution of \p Store wrote at
/// an earlier time. Both descriptors must be 3-dimensional
/// (object, offset, time) LMADs from the same group.
void collectConflictRuns(const lmad::Lmad &Store, const lmad::Lmad &Load,
                         std::vector<ConflictRun> &Out);

/// Returns the number of distinct indices covered by \p Runs. Unit-step
/// runs and single points are deduplicated exactly; overlap between two
/// different coarser-step runs is not deduplicated (rare in practice;
/// the result is then an upper bound).
uint64_t countUnionConflicts(std::vector<ConflictRun> Runs);

/// Returns how many of the load executions described by \p Load read a
/// location that the store executions described by \p Store wrote at an
/// earlier time.
uint64_t countConflictingLoads(const lmad::Lmad &Store,
                               const lmad::Lmad &Load);

/// MDF estimator over a LEAP profile.
class LeapDependenceAnalyzer {
public:
  explicit LeapDependenceAnalyzer(const leap::LeapProfiler &Profile)
      : Profile(Profile) {}

  /// Computes estimated MDF for every (store, load) instruction pair
  /// with at least one detected conflict. Conflict counts are summed
  /// over same-group LMAD-set pairs and capped at the load's execution
  /// count.
  MdfMap computeMdf() const;

private:
  const leap::LeapProfiler &Profile;
};

} // namespace analysis
} // namespace orp

#endif // ORP_ANALYSIS_DEPENDENCE_H
