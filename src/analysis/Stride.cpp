//===- analysis/Stride.cpp - Strongly-strided instruction finder ---------===//

#include "analysis/Stride.h"

#include "core/Decomposition.h"

#include <unordered_map>

using namespace orp;
using namespace orp::analysis;

StrideMap orp::analysis::findStronglyStrided(
    const leap::LeapProfiler &Profile, double Threshold) {
  // Per instruction: total within-object strided steps and per-stride
  // step counts.
  struct Acc {
    uint64_t TotalSteps = 0;
    std::unordered_map<int64_t, uint64_t> PerStride;
  };
  std::unordered_map<trace::InstrId, Acc> ByInstr;

  Profile.forEachSubstream([&](const core::VerticalKey &Key,
                               const lmad::LmadCompressor &Compressor) {
    Acc &A = ByInstr[Key.Instr];
    for (const lmad::Lmad &L : Compressor.lmads()) {
      if (L.Count < 2)
        continue;
      // Only within-object runs count (identical group and object IDs).
      if (L.Stride[leap::DimObject] != 0)
        continue;
      uint64_t Steps = L.Count - 1;
      A.TotalSteps += Steps;
      A.PerStride[L.Stride[leap::DimOffset]] += Steps;
    }
  });

  StrideMap Result;
  for (const auto &[Instr, A] : ByInstr) {
    if (A.TotalSteps == 0)
      continue;
    int64_t BestStride = 0;
    uint64_t BestSteps = 0;
    for (const auto &[Stride, Steps] : A.PerStride)
      if (Steps > BestSteps || (Steps == BestSteps && Stride < BestStride)) {
        BestStride = Stride;
        BestSteps = Steps;
      }
    double Share =
        static_cast<double>(BestSteps) / static_cast<double>(A.TotalSteps);
    if (Share >= Threshold)
      Result[Instr] = StrideInfo{BestStride, Share};
  }
  return Result;
}
