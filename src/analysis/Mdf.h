//===- analysis/Mdf.h - Memory dependence frequency types ------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shared types for the paper's Application 1 (Section 4.2.1). The
/// memory dependence frequency of a (store, load) instruction pair is
///
///     MDF(st, ld) = #conflicts with st / total #executions of ld
///
/// where the pair conflicts on one load execution when the store wrote
/// the load's location at any earlier time (read-after-write).
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ANALYSIS_MDF_H
#define ORP_ANALYSIS_MDF_H

#include "trace/InstructionRegistry.h"

#include <map>
#include <utility>

namespace orp {
namespace analysis {

/// A (store instruction, load instruction) pair.
using InstrPair = std::pair<trace::InstrId, trace::InstrId>;

/// MDF per pair, as a frequency in [0, 1]. Pairs with zero frequency are
/// omitted.
using MdfMap = std::map<InstrPair, double>;

} // namespace analysis
} // namespace orp

#endif // ORP_ANALYSIS_MDF_H
