//===- analysis/HotStreams.cpp - Hot data stream extraction --------------===//

#include "analysis/HotStreams.h"

#include <algorithm>

using namespace orp;
using namespace orp::analysis;

std::vector<HotStream> orp::analysis::extractHotStreams(
    const sequitur::SequiturGrammar &Grammar,
    const HotStreamOptions &Options) {
  std::vector<HotStream> Streams;
  for (const auto &RS : Grammar.ruleStats()) {
    if (RS.Id == 0)
      continue; // The start rule is the whole input, not a repeat.
    if (RS.Occurrences < Options.MinOccurrences ||
        RS.ExpandedLength < Options.MinLength)
      continue;
    HotStream H;
    H.RuleId = RS.Id;
    H.Length = RS.ExpandedLength;
    H.Occurrences = RS.Occurrences;
    H.Heat = RS.ExpandedLength * RS.Occurrences;
    H.Prefix = RS.Prefix;
    Streams.push_back(std::move(H));
  }
  std::sort(Streams.begin(), Streams.end(),
            [](const HotStream &A, const HotStream &B) {
              return A.Heat > B.Heat;
            });

  // Trim to the coverage target. Rules nest, so summed heat can exceed
  // the input length; the target is interpreted against the input size.
  if (Options.CoverageTarget < 1.0 && !Streams.empty()) {
    double Budget = Options.CoverageTarget *
                    static_cast<double>(Grammar.inputLength());
    double Acc = 0.0;
    size_t Keep = 0;
    while (Keep < Streams.size() && Acc < Budget)
      Acc += static_cast<double>(Streams[Keep++].Heat);
    Streams.resize(Keep);
  }
  return Streams;
}
