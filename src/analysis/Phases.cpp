//===- analysis/Phases.cpp - Phase-cognizant profiling -------------------===//

#include "analysis/Phases.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace orp;
using namespace orp::analysis;

PhaseDetector::PhaseDetector(uint64_t IntervalSize, double Threshold)
    : IntervalSize(IntervalSize), Threshold(Threshold) {
  assert(IntervalSize > 0 && "interval must be non-empty");
}

void PhaseDetector::consume(const core::OrTuple &Tuple) {
  if (CurrentCount == 0 && !HaveOpenPhase)
    CurrentStart = Tuple.Time;
  ++Current[Tuple.Group];
  ++CurrentCount;
  if (CurrentCount == IntervalSize)
    sealInterval();
}

void PhaseDetector::finish() {
  if (CurrentCount > 0)
    sealInterval();
}

double PhaseDetector::distance(const Signature &A, const Signature &B) {
  uint64_t TotalA = 0, TotalB = 0;
  for (const auto &[G, C] : A)
    TotalA += C;
  for (const auto &[G, C] : B)
    TotalB += C;
  if (TotalA == 0 || TotalB == 0)
    return 2.0;
  double D = 0.0;
  auto IA = A.begin();
  auto IB = B.begin();
  while (IA != A.end() || IB != B.end()) {
    if (IB == B.end() || (IA != A.end() && IA->first < IB->first)) {
      D += static_cast<double>(IA->second) / TotalA;
      ++IA;
    } else if (IA == A.end() || IB->first < IA->first) {
      D += static_cast<double>(IB->second) / TotalB;
      ++IB;
    } else {
      D += std::fabs(static_cast<double>(IA->second) / TotalA -
                     static_cast<double>(IB->second) / TotalB);
      ++IA;
      ++IB;
    }
  }
  return D;
}

unsigned PhaseDetector::classify(const Signature &Sig) {
  for (unsigned C = 0; C != ClassCentroids.size(); ++C)
    if (distance(ClassCentroids[C], Sig) <= Threshold)
      return C;
  ClassCentroids.push_back(Sig);
  return NextClass++;
}

void PhaseDetector::sealInterval() {
  uint64_t IntervalEnd = CurrentStart; // Refined below from counts.
  (void)IntervalEnd;
  bool NewPhase =
      !HaveOpenPhase || distance(LastSignature, Current) > Threshold;

  if (NewPhase) {
    Phase P;
    P.StartTime = CurrentStart;
    P.EndTime = CurrentStart;
    P.Accesses = 0;
    P.ClassId = classify(Current);
    Phases.push_back(P);
    HaveOpenPhase = true;
  }

  Phase &Open = Phases.back();
  Open.Accesses += CurrentCount;
  Open.EndTime = CurrentStart + Open.Accesses;

  // Merge the interval's counts into the phase's dominant-group view.
  std::map<omc::GroupId, uint64_t> Merged;
  for (const auto &[G, Share] : Open.DominantGroups)
    Merged[G] = static_cast<uint64_t>(
        Share * static_cast<double>(Open.Accesses - CurrentCount));
  for (const auto &[G, C] : Current)
    Merged[G] += C;
  Open.DominantGroups.clear();
  for (const auto &[G, C] : Merged)
    Open.DominantGroups.emplace_back(
        G, static_cast<double>(C) / static_cast<double>(Open.Accesses));
  std::sort(Open.DominantGroups.begin(), Open.DominantGroups.end(),
            [](const auto &A, const auto &B) {
              return A.second > B.second;
            });
  if (Open.DominantGroups.size() > 4)
    Open.DominantGroups.resize(4);

  LastSignature = std::move(Current);
  Current.clear();
  CurrentStart += CurrentCount;
  CurrentCount = 0;
}
