//===- analysis/MdfError.cpp - MDF error distributions -------------------===//

#include "analysis/MdfError.h"

#include <cmath>

using namespace orp;
using namespace orp::analysis;

MdfComparison orp::analysis::compareMdf(const MdfMap &Exact,
                                        const MdfMap &Estimated) {
  MdfComparison Cmp;
  for (const auto &[Pair, ExactFreq] : Exact) {
    auto It = Estimated.find(Pair);
    double EstFreq = It == Estimated.end() ? 0.0 : It->second;
    double ErrorPct = (EstFreq - ExactFreq) * 100.0;
    ++Cmp.DependentPairs;
    if (std::fabs(ErrorPct) < 0.5)
      ++Cmp.ExactlyCorrect;
    Cmp.ErrorHist.add(ErrorPct);
  }
  for (const auto &[Pair, EstFreq] : Estimated) {
    (void)EstFreq;
    if (!Exact.count(Pair))
      ++Cmp.FalsePositivePairs;
  }
  return Cmp;
}
