//===- analysis/Phases.h - Phase-cognizant profiling -----------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's future-work item: "Another avenue to explore is to make
/// use of recent results on phase detection and prediction [Sherwood et
/// al., ISCA 2003] to profile references in a phase cognizant manner."
///
/// This implements the basic-block-vector idea adapted to the
/// object-relative stream: the run is cut into fixed-size intervals;
/// each interval is summarized by the distribution of accesses over
/// groups (its signature); a phase boundary is declared where
/// consecutive signatures' Manhattan distance exceeds a threshold, and
/// similar intervals are clustered into recurring phase classes.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ANALYSIS_PHASES_H
#define ORP_ANALYSIS_PHASES_H

#include "core/ObjectRelative.h"

#include <cstdint>
#include <map>
#include <vector>

namespace orp {
namespace analysis {

/// One detected phase: a maximal run of similar intervals.
struct Phase {
  uint64_t StartTime;  ///< Timestamp of the phase's first access.
  uint64_t EndTime;    ///< Timestamp just past the phase's last access.
  uint64_t Accesses;   ///< Accesses inside the phase.
  unsigned ClassId;    ///< Recurring phase class (similar phases share it).
  /// The phase's dominant groups with their access shares (descending).
  std::vector<std::pair<omc::GroupId, double>> DominantGroups;
};

/// Streaming phase detector; attach as an OrTupleConsumer.
class PhaseDetector : public core::OrTupleConsumer {
public:
  /// \p IntervalSize is the number of accesses per signature interval;
  /// \p Threshold the normalized Manhattan distance (0..2) above which
  /// consecutive intervals belong to different phases.
  explicit PhaseDetector(uint64_t IntervalSize = 10000,
                         double Threshold = 0.5);

  void consume(const core::OrTuple &Tuple) override;
  void finish() override;

  /// Returns the detected phases; finish() must have been called.
  const std::vector<Phase> &phases() const { return Phases; }

  /// Returns the number of distinct recurring phase classes.
  unsigned numClasses() const { return NextClass; }

private:
  using Signature = std::map<omc::GroupId, uint64_t>;

  /// Normalized Manhattan distance between two signatures (0..2).
  static double distance(const Signature &A, const Signature &B);

  /// Closes the current interval; opens/extends phases as needed.
  void sealInterval();

  /// Assigns a recurring class to the signature (nearest stored
  /// centroid within the threshold, else a fresh class).
  unsigned classify(const Signature &Sig);

  uint64_t IntervalSize;
  double Threshold;
  Signature Current;
  uint64_t CurrentCount = 0;
  uint64_t CurrentStart = 0;
  bool HaveOpenPhase = false;
  Signature LastSignature;
  std::vector<Phase> Phases;
  std::vector<Signature> ClassCentroids;
  unsigned NextClass = 0;
};

} // namespace analysis
} // namespace orp

#endif // ORP_ANALYSIS_PHASES_H
