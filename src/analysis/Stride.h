//===- analysis/Stride.h - Strongly-strided instruction finder -*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Application 2 (Section 4.2.2): identify strongly-strided
/// instructions — "an instruction for which one stride accounts for
/// >= 70% of its total accesses" (the definition of Wu, PLDI 2002) —
/// from a LEAP profile with "a trivial post-process which examines all
/// offset strides captured for a given instruction", considering "only
/// those strongly strided instructions within objects (i.e. with
/// identical group and object IDs)".
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ANALYSIS_STRIDE_H
#define ORP_ANALYSIS_STRIDE_H

#include "leap/Leap.h"
#include "trace/InstructionRegistry.h"

#include <cstdint>
#include <map>

namespace orp {
namespace analysis {

/// The default strong-stride share threshold from the paper.
constexpr double StrongStrideThreshold = 0.70;

/// Verdict for one instruction.
struct StrideInfo {
  int64_t Stride = 0;  ///< The dominant stride.
  double Share = 0.0;  ///< Fraction of strided steps it accounts for.
};

/// Map from instruction to its dominant-stride verdict; instructions not
/// strongly strided are omitted.
using StrideMap = std::map<trace::InstrId, StrideInfo>;

/// Extracts strongly-strided instructions from a LEAP profile: for each
/// instruction, LMADs that stay within one object (object stride 0)
/// contribute Count-1 steps of their offset stride; an instruction is
/// strongly strided when one stride's share of the captured steps
/// reaches \p Threshold.
StrideMap findStronglyStrided(const leap::LeapProfiler &Profile,
                              double Threshold = StrongStrideThreshold);

} // namespace analysis
} // namespace orp

#endif // ORP_ANALYSIS_STRIDE_H
