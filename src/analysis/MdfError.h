//===- analysis/MdfError.h - MDF error distributions -----------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the error distributions of Figures 6-8: for every dependent
/// (store, load) pair found by a lossless reference profiler, the error
/// of a lossy profiler's estimate in percentage points, bucketed at 10%
/// granularity around an exactly-correct center bucket.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ANALYSIS_MDFERROR_H
#define ORP_ANALYSIS_MDFERROR_H

#include "analysis/Mdf.h"
#include "support/Histogram.h"

#include <cstdint>

namespace orp {
namespace analysis {

/// Error distribution of an estimated MDF map against the exact one.
struct MdfComparison {
  /// 21 buckets of width 10 centered at -100, -90, ..., 0, ..., +100.
  Histogram ErrorHist{-105.0, 105.0, 21};
  uint64_t DependentPairs = 0;      ///< Pairs with exact MDF > 0.
  uint64_t ExactlyCorrect = 0;      ///< |error| < 0.5 percentage points.
  uint64_t FalsePositivePairs = 0;  ///< Estimated > 0 but exact == 0.

  /// Fraction of dependent pairs whose frequency is completely correct
  /// or off by no more than 10% (the paper's headline metric).
  double fractionCorrectOrWithin10() const {
    return ErrorHist.fractionIn(-10.0, 10.0);
  }
};

/// Compares \p Estimated against \p Exact over all dependent pairs
/// (error = estimated - exact, in percentage points; a missed pair
/// counts as estimate 0, i.e. error -100 * exact frequency).
MdfComparison compareMdf(const MdfMap &Exact, const MdfMap &Estimated);

} // namespace analysis
} // namespace orp

#endif // ORP_ANALYSIS_MDFERROR_H
