//===- analysis/HotStreams.h - Hot data stream extraction ------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hot-data-stream mining over WHOMP grammars. The paper positions the
/// OMSG as input to "a class of correlation-based memory optimizations
/// including clustering, custom heap allocation, and hot data stream
/// prefetching" (Section 3.2, citing Chilimbi & Hirzel, PLDI 2002). A
/// hot data stream is a frequently repeated subsequence of the access
/// stream; in grammar form these are exactly the rules whose
/// heat — occurrence count times expanded length — is large. Because
/// Sequitur rules are non-overlapping exact repeats, extraction is a
/// linear pass over the grammar.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_ANALYSIS_HOTSTREAMS_H
#define ORP_ANALYSIS_HOTSTREAMS_H

#include "sequitur/Sequitur.h"

#include <cstdint>
#include <vector>

namespace orp {
namespace analysis {

/// One extracted hot data stream.
struct HotStream {
  uint64_t RuleId;      ///< Grammar rule the stream comes from.
  uint64_t Length;      ///< Terminals per repetition.
  uint64_t Occurrences; ///< Repetitions in the input.
  uint64_t Heat;        ///< Occurrences * Length (coverage in symbols).
  /// The stream's leading symbols (capped; enough for prefetch seeds).
  std::vector<uint64_t> Prefix;
};

/// Extraction parameters.
struct HotStreamOptions {
  /// Minimum repetitions for a stream to qualify.
  uint64_t MinOccurrences = 2;
  /// Minimum terminals per repetition (too-short streams are noise).
  uint64_t MinLength = 2;
  /// Keep streams whose cumulative heat covers this fraction of the
  /// input (most-heated first); 1.0 keeps all qualifying streams.
  double CoverageTarget = 0.9;
};

/// Mines \p Grammar for hot data streams, hottest first.
std::vector<HotStream> extractHotStreams(
    const sequitur::SequiturGrammar &Grammar,
    const HotStreamOptions &Options = HotStreamOptions());

} // namespace analysis
} // namespace orp

#endif // ORP_ANALYSIS_HOTSTREAMS_H
