//===- analysis/Diophantine.cpp - Integer linear equation solving --------===//

#include "analysis/Diophantine.h"

#include "support/Error.h"

#include <cassert>

using namespace orp;
using namespace orp::analysis;

namespace {

/// Sentinel magnitude for half-line parameter intervals; callers always
/// intersect with a bounded box before counting.
constexpr int64_t Huge = int64_t(1) << 62;

int64_t floorDiv(int64_t A, int64_t B) {
  assert(B != 0 && "division by zero");
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) != (B < 0)))
    --Q;
  return Q;
}

int64_t ceilDiv(int64_t A, int64_t B) {
  assert(B != 0 && "division by zero");
  int64_t Q = A / B;
  if ((A % B != 0) && ((A < 0) == (B < 0)))
    ++Q;
  return Q;
}

int64_t narrow(__int128 V) {
  assert(V <= static_cast<__int128>(Huge) &&
         V >= -static_cast<__int128>(Huge) && "solution out of range");
  return static_cast<int64_t>(V);
}

} // namespace

ExtGcd orp::analysis::extendedGcd(int64_t A, int64_t B) {
  int64_t OldR = A, R = B;
  int64_t OldS = 1, S = 0;
  int64_t OldT = 0, T = 1;
  while (R != 0) {
    int64_t Q = OldR / R;
    int64_t Tmp = OldR - Q * R;
    OldR = R;
    R = Tmp;
    Tmp = OldS - Q * S;
    OldS = S;
    S = Tmp;
    Tmp = OldT - Q * T;
    OldT = T;
    T = Tmp;
  }
  if (OldR < 0) {
    OldR = -OldR;
    OldS = -OldS;
    OldT = -OldT;
  }
  return ExtGcd{OldR, OldS, OldT};
}

Solution2D orp::analysis::solveLinear2(int64_t A, int64_t B, int64_t C) {
  if (A == 0 && B == 0)
    return C == 0 ? Solution2D::plane() : Solution2D::empty();
  if (A == 0) {
    if (C % B != 0)
      return Solution2D::empty();
    return Solution2D::line(0, C / B, 1, 0);
  }
  if (B == 0) {
    if (C % A != 0)
      return Solution2D::empty();
    return Solution2D::line(C / A, 0, 0, 1);
  }

  ExtGcd E = extendedGcd(A, B);
  if (C % E.G != 0)
    return Solution2D::empty();
  int64_t U1 = B / E.G;
  int64_t U2 = -(A / E.G);
  // Particular solution, shifted along the direction so that P1 lands in
  // [0, |U1|); this keeps all coordinates small.
  __int128 M = static_cast<__int128>(C) / E.G;
  __int128 P1Wide = static_cast<__int128>(E.X) * M;
  int64_t AbsU1 = U1 < 0 ? -U1 : U1;
  __int128 P1Norm = P1Wide % AbsU1;
  if (P1Norm < 0)
    P1Norm += AbsU1;
  int64_t P1 = narrow(P1Norm);
  // Recover P2 exactly from the equation: B*P2 = C - A*P1.
  __int128 Rem = static_cast<__int128>(C) - static_cast<__int128>(A) * P1;
  assert(Rem % B == 0 && "particular solution inconsistent");
  int64_t P2 = narrow(Rem / B);
  return Solution2D::line(P1, P2, U1, U2);
}

Solution2D orp::analysis::restrict2(const Solution2D &Current, int64_t A,
                                    int64_t B, int64_t C) {
  switch (Current.K) {
  case Solution2D::Kind::Empty:
    return Current;
  case Solution2D::Kind::Plane:
    return solveLinear2(A, B, C);
  case Solution2D::Kind::Point: {
    __int128 Lhs = static_cast<__int128>(A) * Current.P1 +
                   static_cast<__int128>(B) * Current.P2;
    return Lhs == C ? Current : Solution2D::empty();
  }
  case Solution2D::Kind::Line: {
    __int128 Coeff = static_cast<__int128>(A) * Current.U1 +
                     static_cast<__int128>(B) * Current.U2;
    __int128 Rhs = static_cast<__int128>(C) -
                   static_cast<__int128>(A) * Current.P1 -
                   static_cast<__int128>(B) * Current.P2;
    if (Coeff == 0)
      return Rhs == 0 ? Current : Solution2D::empty();
    if (Rhs % Coeff != 0)
      return Solution2D::empty();
    __int128 T = Rhs / Coeff;
    return Solution2D::point(
        narrow(Current.P1 + static_cast<__int128>(Current.U1) * T),
        narrow(Current.P2 + static_cast<__int128>(Current.U2) * T));
  }
  }
  ORP_UNREACHABLE("unknown solution kind");
}

std::optional<IntInterval>
orp::analysis::boundParameter(int64_t P, int64_t U, int64_t Lo, int64_t Hi) {
  if (U == 0) {
    if (P >= Lo && P <= Hi)
      return std::nullopt; // All of Z.
    return IntInterval{1, 0};
  }
  if (U > 0)
    return IntInterval{ceilDiv(Lo - P, U), floorDiv(Hi - P, U)};
  return IntInterval{ceilDiv(Hi - P, U), floorDiv(Lo - P, U)};
}

std::optional<IntInterval>
orp::analysis::upperBoundParameter(int64_t P, int64_t U, int64_t Bound) {
  if (U == 0) {
    if (P <= Bound)
      return std::nullopt; // All of Z.
    return IntInterval{1, 0};
  }
  if (U > 0)
    return IntInterval{-Huge, floorDiv(Bound - P, U)};
  return IntInterval{ceilDiv(Bound - P, U), Huge};
}
