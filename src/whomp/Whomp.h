//===- whomp/Whomp.h - Whole-stream memory profiler ------------*- C++ -*-===//
//
// Part of the ORP reproduction of "Exposing Memory Access Regularities
// Using Object-Relative Memory Profiling" (CGO 2004).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// WHOMP, the paper's lossless whole-stream memory profiler (Section 3):
/// the translated object-relative stream is decomposed horizontally
/// "along all four dimensions (instruction ID, group, object and offset)"
/// and "each of these streams is then fed into a separate Sequitur
/// compressor". The result is the object-relative multi-dimensional
/// Sequitur grammar (OMSG), compared against the conventional raw-address
/// Sequitur grammar (RASG, in src/baseline) in Figure 5.
///
//===----------------------------------------------------------------------===//

#ifndef ORP_WHOMP_WHOMP_H
#define ORP_WHOMP_WHOMP_H

#include "core/Decomposition.h"
#include "core/ObjectRelative.h"
#include "sequitur/Sequitur.h"
#include "telemetry/Registry.h"

#include <array>
#include <cstddef>
#include <memory>

namespace orp {
namespace whomp {

/// StreamCompressor adapter over a Sequitur grammar.
class SequiturStreamCompressor : public core::StreamCompressor {
public:
  void append(uint64_t Symbol) override { Grammar.append(Symbol); }
  void appendBatch(std::span<const uint64_t> Symbols) override {
    // One virtual call for the whole run; the grammar's digram table and
    // arena stay hot across the inner loop.
    for (uint64_t Symbol : Symbols)
      Grammar.append(Symbol);
  }
  size_t serializedSizeBytes() const override {
    return Grammar.serializedSizeBytes();
  }

  /// Returns the underlying grammar.
  const sequitur::SequiturGrammar &grammar() const { return Grammar; }

private:
  sequitur::SequiturGrammar Grammar;
};

/// Serialized per-dimension sizes of an OMSG.
struct OmsgSizes {
  size_t Instr = 0;
  size_t Group = 0;
  size_t Object = 0;
  size_t Offset = 0;

  /// Total OMSG size.
  size_t total() const { return Instr + Group + Object + Offset; }
};

/// The WHOMP profiler: an object-relative tuple consumer producing an
/// OMSG. Attach to a Cdc (see core::ProfilingSession).
class WhompProfiler : public core::OrTupleConsumer {
public:
  /// With \p Threads > 1, each of the four dimension grammars runs on
  /// its own worker thread (DESIGN.md section 10). The OMSG is
  /// byte-identical either way; at most four workers are ever used,
  /// larger values are equivalent to 4. Periodic level-2 grammar
  /// validation is deferred to finish() in threaded mode — the workers
  /// own the grammars until then.
  explicit WhompProfiler(unsigned Threads = 1);

  void consume(const core::OrTuple &Tuple) override;
  void consumeBatch(std::span<const core::OrTuple> Tuples) override;
  void finish() override;

  /// Returns the number of tuples compressed.
  uint64_t tuplesSeen() const { return Tuples; }

  /// Returns the grammar of one OMSG dimension. \p D must be one of
  /// Instruction, Group, Object, Offset.
  const sequitur::SequiturGrammar &grammarFor(core::Dimension D) const;

  /// Returns the serialized per-dimension and total sizes.
  OmsgSizes sizes() const;

private:
  /// Level-2 checked builds only: runs GrammarValidator over all four
  /// dimension grammars and aborts (checkFailed) on any violation.
  /// \p When labels the report ("periodic" / "finish").
  void validateGrammars(const char *When) const;

  core::HorizontalDecomposer Decomposer;
  uint64_t Tuples = 0;
  /// Tuple count at which the next periodic level-2 validation fires.
  uint64_t NextValidateAt;
  /// Publishes grammar occupancy (serial mode / after finish) and
  /// dimension-worker queue counters into whomp.* gauges at snapshot
  /// time. While the workers own the grammars, only the worker/queue
  /// numbers — which are safe to sample from any thread — are emitted.
  telemetry::CollectorHandle Collector;
};

} // namespace whomp
} // namespace orp

#endif // ORP_WHOMP_WHOMP_H
