//===- whomp/OmsgStats.cpp - Mergeable OMSG statistics -------------------===//

#include "whomp/OmsgStats.h"

#include "sequitur/Sequitur.h"
#include "support/Checksum.h"
#include "support/Endian.h" // orp-lint: allow(endian-io)
#include "support/VarInt.h"

using namespace orp;
using namespace orp::whomp;

OmsgStats OmsgStats::fromArchive(const OmsgArchive &Archive) {
  OmsgStats Stats;
  Stats.Runs = 1;
  Stats.AccessCount = Archive.accessCount();
  Stats.ObjectCount = Archive.objects().size();
  const auto &Streams = Archive.dimensionStreams();
  const auto &Images = Archive.grammarImages();
  for (size_t D = 0; D != Streams.size(); ++D) {
    DimensionStats Dim;
    Dim.InputLength = Streams[D].size();
    Dim.GrammarBytes = D < Images.size() ? Images[D].size() : 0;
    sequitur::SequiturGrammar Grammar;
    Grammar.appendAll(Streams[D]);
    Dim.RuleCount = Grammar.numRules();
    Dim.BodySymbols = Grammar.totalBodySymbols();
    for (const auto &Rule : Grammar.ruleStats(/*PrefixCap=*/0)) {
      unsigned Bucket = 0;
      for (uint64_t V = Rule.Occurrences; V > 1; V >>= 1)
        ++Bucket;
      if (Bucket >= DimensionStats::kSpectrumBuckets)
        Bucket = DimensionStats::kSpectrumBuckets - 1;
      ++Dim.HotRuleSpectrum[Bucket];
    }
    Stats.Dims.push_back(Dim);
  }
  return Stats;
}

bool OmsgStats::merge(const OmsgStats &Other, std::string &Err) {
  if (Dims.empty() && Runs == 0) {
    *this = Other;
    return true;
  }
  if (Dims.size() != Other.Dims.size()) {
    Err = "stats merge: dimension counts differ (" +
          std::to_string(Dims.size()) + " vs " +
          std::to_string(Other.Dims.size()) + ")";
    return false;
  }
  Runs += Other.Runs;
  AccessCount += Other.AccessCount;
  ObjectCount += Other.ObjectCount;
  for (size_t D = 0; D != Dims.size(); ++D) {
    Dims[D].InputLength += Other.Dims[D].InputLength;
    Dims[D].GrammarBytes += Other.Dims[D].GrammarBytes;
    Dims[D].RuleCount += Other.Dims[D].RuleCount;
    Dims[D].BodySymbols += Other.Dims[D].BodySymbols;
    for (unsigned B = 0; B != DimensionStats::kSpectrumBuckets; ++B)
      Dims[D].HotRuleSpectrum[B] += Other.Dims[D].HotRuleSpectrum[B];
  }
  return true;
}

std::vector<uint8_t> OmsgStats::serialize() const {
  std::vector<uint8_t> Out;
  Out.reserve(64);
  for (char C : kMagic)
    Out.push_back(static_cast<uint8_t>(C));
  Out.push_back(kFormatVersion);
  appendLE32(0, Out); // Payload CRC, patched below.
  encodeULEB128(Runs, Out);
  encodeULEB128(AccessCount, Out);
  encodeULEB128(ObjectCount, Out);
  encodeULEB128(Dims.size(), Out);
  for (const DimensionStats &Dim : Dims) {
    encodeULEB128(Dim.InputLength, Out);
    encodeULEB128(Dim.GrammarBytes, Out);
    encodeULEB128(Dim.RuleCount, Out);
    encodeULEB128(Dim.BodySymbols, Out);
    encodeULEB128(DimensionStats::kSpectrumBuckets, Out);
    for (uint64_t Count : Dim.HotRuleSpectrum)
      encodeULEB128(Count, Out);
  }
  uint32_t Crc = crc32(Out.data() + kHeaderSize, Out.size() - kHeaderSize);
  for (unsigned I = 0; I != 4; ++I)
    Out[5 + I] = static_cast<uint8_t>(Crc >> (8 * I));
  return Out;
}

bool OmsgStats::deserialize(const std::vector<uint8_t> &Bytes,
                            OmsgStats &Out, std::string &Err) {
  Out = OmsgStats();
  if (Bytes.size() < kHeaderSize) {
    Err = "OMSG stats: truncated header";
    return false;
  }
  for (unsigned I = 0; I != 4; ++I)
    if (Bytes[I] != static_cast<uint8_t>(kMagic[I])) {
      Err = "OMSG stats: bad magic";
      return false;
    }
  if (Bytes[4] != kFormatVersion) {
    Err = "OMSG stats: unsupported format version " +
          std::to_string(Bytes[4]);
    return false;
  }
  uint32_t Stored = readLE32(Bytes.data() + 5);
  if (crc32(Bytes.data() + kHeaderSize, Bytes.size() - kHeaderSize) !=
      Stored) {
    Err = "OMSG stats: checksum mismatch";
    return false;
  }
  size_t Pos = kHeaderSize;
  auto ReadU = [&](const char *What, uint64_t &Value) {
    VarIntStatus S =
        decodeULEB128Checked(Bytes.data(), Bytes.size(), Pos, Value);
    if (S != VarIntStatus::Ok) {
      Err = std::string("OMSG stats: ") + What + ": " +
            varIntStatusName(S) + " varint";
      return false;
    }
    return true;
  };
  uint64_t NumDims = 0;
  if (!ReadU("run count", Out.Runs) ||
      !ReadU("access count", Out.AccessCount) ||
      !ReadU("object count", Out.ObjectCount) ||
      !ReadU("dimension count", NumDims))
    return false;
  // Each dimension block needs at least 5 + kSpectrumBuckets bytes.
  if (NumDims > (Bytes.size() - Pos) /
                    (5 + DimensionStats::kSpectrumBuckets) + 1) {
    Err = "OMSG stats: dimension count exceeds remaining bytes";
    return false;
  }
  Out.Dims.reserve(NumDims);
  for (uint64_t D = 0; D != NumDims; ++D) {
    DimensionStats Dim;
    uint64_t Buckets = 0;
    if (!ReadU("input length", Dim.InputLength) ||
        !ReadU("grammar bytes", Dim.GrammarBytes) ||
        !ReadU("rule count", Dim.RuleCount) ||
        !ReadU("body symbols", Dim.BodySymbols) ||
        !ReadU("bucket count", Buckets))
      return false;
    if (Buckets != DimensionStats::kSpectrumBuckets) {
      Err = "OMSG stats: unexpected spectrum bucket count " +
            std::to_string(Buckets);
      return false;
    }
    for (unsigned B = 0; B != DimensionStats::kSpectrumBuckets; ++B)
      if (!ReadU("spectrum bucket", Dim.HotRuleSpectrum[B]))
        return false;
    Out.Dims.push_back(Dim);
  }
  if (Pos != Bytes.size()) {
    Err = "OMSG stats: trailing bytes";
    return false;
  }
  return true;
}
