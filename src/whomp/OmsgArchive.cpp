//===- whomp/OmsgArchive.cpp - Detached OMSG profiles --------------------===//

#include "whomp/OmsgArchive.h"

#include "support/Checksum.h"
#include "support/Endian.h"
#include "support/Error.h"
#include "support/VarInt.h"

#include <cassert>

using namespace orp;
using namespace orp::whomp;

namespace {

const core::Dimension Dims[] = {
    core::Dimension::Instruction, core::Dimension::Group,
    core::Dimension::Object, core::Dimension::Offset};

} // namespace

OmsgArchive OmsgArchive::build(const WhompProfiler &Profiler,
                               const omc::ObjectManager *Omc) {
  OmsgArchive Archive;
  for (core::Dimension D : Dims) {
    const auto &Grammar = Profiler.grammarFor(D);
    Archive.GrammarImages.push_back(Grammar.serialize());
    Archive.Streams.push_back(Grammar.expandAll());
  }
  if (Omc) {
    for (const auto &Rec : Omc->records())
      Archive.Aux.push_back(ObjectAux{Rec.Group, Rec.Serial, Rec.Size,
                                      Rec.AllocTime, Rec.FreeTime});
  }
  return Archive;
}

// Header layout: [magic 4]["version" u8][payload CRC-32, LE u32]; the
// payload (everything after the 9-byte header) is LEB128-encoded and so
// byte-order free by construction.
constexpr size_t kArchiveHeaderSize = 9;

std::vector<uint8_t> OmsgArchive::serialize() const {
  std::vector<uint8_t> Out;
  // Seed capacity past the header. Also keeps GCC 12's stringop-overflow
  // tracking from misreading the first tiny growth as an overflow.
  Out.reserve(64);
  Out.insert(Out.end(), kMagic, kMagic + 4);
  Out.push_back(kFormatVersion);
  appendLE32(0, Out); // payload checksum, patched below
  encodeULEB128(GrammarImages.size(), Out);
  for (const auto &Image : GrammarImages) {
    encodeULEB128(Image.size(), Out);
    Out.insert(Out.end(), Image.begin(), Image.end());
  }
  encodeULEB128(Aux.size(), Out);
  for (const ObjectAux &Row : Aux) {
    encodeULEB128(Row.Group, Out);
    encodeULEB128(Row.Serial, Out);
    encodeULEB128(Row.Size, Out);
    encodeULEB128(Row.AllocTime, Out);
    // Live-forever is common and huge; store a presence flag instead.
    bool Freed = Row.FreeTime != omc::ObjectManager::kLiveForever;
    Out.push_back(Freed ? 1 : 0);
    if (Freed)
      encodeULEB128(Row.FreeTime, Out);
  }
  uint32_t Crc = crc32(Out.data() + kArchiveHeaderSize,
                       Out.size() - kArchiveHeaderSize);
  for (unsigned I = 0; I != 4; ++I)
    Out[5 + I] = static_cast<uint8_t>(Crc >> (8 * I));
  return Out;
}

bool OmsgArchive::deserialize(const std::vector<uint8_t> &Bytes,
                              OmsgArchive &Out, std::string &Err) {
  Out = OmsgArchive();
  if (Bytes.size() < kArchiveHeaderSize) {
    Err = "OMSG archive: truncated header";
    return false;
  }
  for (unsigned I = 0; I != 4; ++I)
    if (Bytes[I] != kMagic[I]) {
      Err = "OMSG archive: bad magic";
      return false;
    }
  if (Bytes[4] == 0 || Bytes[4] > kFormatVersion) {
    Err = "OMSG archive: unsupported format version " +
          std::to_string(Bytes[4]);
    return false;
  }
  uint32_t Want = readLE32(Bytes.data() + 5);
  if (crc32(Bytes.data() + kArchiveHeaderSize,
            Bytes.size() - kArchiveHeaderSize) != Want) {
    Err = "OMSG archive: checksum mismatch (corrupted image)";
    return false;
  }

  size_t Pos = kArchiveHeaderSize;
  auto ReadU = [&](const char *What, uint64_t &Value) {
    VarIntStatus S =
        decodeULEB128Checked(Bytes.data(), Bytes.size(), Pos, Value);
    if (S != VarIntStatus::Ok) {
      Err = std::string("OMSG archive: ") + What + ": " +
            varIntStatusName(S) + " varint";
      return false;
    }
    return true;
  };
  uint64_t NumGrammars = 0;
  if (!ReadU("grammar count", NumGrammars))
    return false;
  // Each grammar needs at least its length byte; larger counts cannot be
  // satisfied and would size the reserve below from hostile input.
  if (NumGrammars > Bytes.size() - Pos) {
    Err = "OMSG archive: grammar count exceeds remaining bytes";
    return false;
  }
  Out.GrammarImages.reserve(NumGrammars);
  Out.Streams.reserve(NumGrammars);
  for (uint64_t G = 0; G != NumGrammars; ++G) {
    uint64_t Len = 0;
    if (!ReadU("grammar image length", Len))
      return false;
    if (Len > Bytes.size() - Pos) {
      Err = "OMSG archive: grammar image overruns the buffer";
      return false;
    }
    std::vector<uint8_t> Image(Bytes.begin() + Pos,
                               Bytes.begin() + Pos + Len);
    Pos += Len;
    std::vector<uint64_t> Stream;
    if (!sequitur::SequiturGrammar::deserializeAndExpandChecked(
            Image.data(), Image.size(), Stream, Err))
      return false;
    Out.Streams.push_back(std::move(Stream));
    Out.GrammarImages.push_back(std::move(Image));
  }
  uint64_t NumAux = 0;
  if (!ReadU("object count", NumAux))
    return false;
  // Each aux row is at least 5 payload bytes.
  if (NumAux > (Bytes.size() - Pos) / 5 + 1) {
    Err = "OMSG archive: object count exceeds remaining bytes";
    return false;
  }
  Out.Aux.reserve(NumAux);
  for (uint64_t I = 0; I != NumAux; ++I) {
    ObjectAux Row;
    uint64_t Group = 0;
    if (!ReadU("object group", Group) ||
        !ReadU("object serial", Row.Serial) ||
        !ReadU("object size", Row.Size) ||
        !ReadU("object alloc time", Row.AllocTime))
      return false;
    Row.Group = static_cast<omc::GroupId>(Group);
    if (Pos >= Bytes.size()) {
      Err = "OMSG archive: truncated object row";
      return false;
    }
    uint8_t Freed = Bytes[Pos++];
    if (Freed > 1) {
      Err = "OMSG archive: bad freed flag";
      return false;
    }
    Row.FreeTime = omc::ObjectManager::kLiveForever;
    if (Freed && !ReadU("object free time", Row.FreeTime))
      return false;
    Out.Aux.push_back(Row);
  }
  if (Pos != Bytes.size()) {
    Err = "OMSG archive: trailing bytes";
    return false;
  }
  return true;
}

bool OmsgArchive::mergeSequential(
    const std::vector<const OmsgArchive *> &Segments, OmsgArchive &Out,
    std::string &Err) {
  Out = OmsgArchive();
  if (Segments.empty())
    return true;
  size_t NumStreams = Segments.front()->Streams.size();
  for (const OmsgArchive *Seg : Segments)
    if (Seg->Streams.size() != NumStreams) {
      Err = "OMSG merge: segment dimension counts differ (" +
            std::to_string(NumStreams) + " vs " +
            std::to_string(Seg->Streams.size()) + ")";
      return false;
    }
  for (size_t D = 0; D != NumStreams; ++D) {
    // Sequitur is deterministic and streaming: feeding the concatenated
    // terminal sequence through a fresh grammar yields exactly the
    // grammar the unsplit run would have built.
    sequitur::SequiturGrammar Grammar;
    std::vector<uint64_t> Stream;
    for (const OmsgArchive *Seg : Segments)
      Stream.insert(Stream.end(), Seg->Streams[D].begin(),
                    Seg->Streams[D].end());
    Grammar.appendAll(Stream);
    Out.GrammarImages.push_back(Grammar.serialize());
    Out.Streams.push_back(std::move(Stream));
  }
  // A checkpointed segment's OMC carries every record from the start of
  // the trace, so the last segment's aux table is the full table.
  Out.Aux = Segments.back()->Aux;
  return true;
}
